GO ?= go

.PHONY: ci vet build test race fuzz-short fuzz bench bench-capture bench-smoke golden trace-determinism chaos overload obs obs-live arena testnet soak

## ci: the full pre-merge gate — vet, build, tests under the race
## detector, the fuzz seed corpora in short mode, the event-trace
## replication check, the chaos, overload, observability (sim and
## live), arena, testnet and soak gates, and the bench-capture smoke
## check.
ci: vet build race fuzz-short trace-determinism chaos overload obs obs-live arena testnet soak bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz-short: run every Fuzz* target's checked-in seed corpus only
## (no mutation) across all packages — fast, deterministic, suitable
## for CI.
fuzz-short:
	$(GO) test -run '^Fuzz' ./...

## fuzz: actually mutate for a bounded time (override FUZZTIME and
## FUZZTARGET/FUZZPKG to steer).
FUZZTIME ?= 30s
FUZZTARGET ?= FuzzMaxminConvergence
FUZZPKG ?= ./internal/maxmin
fuzz:
	$(GO) test -run '^$$' -fuzz $(FUZZTARGET) -fuzztime $(FUZZTIME) $(FUZZPKG)

## bench: run every benchmark in the repository, in every package that
## has one. Timings scroll by; use bench-capture to record them.
BENCHPKGS = . ./internal/admission ./internal/dataplane ./internal/des \
	./internal/eventbus ./internal/maxmin ./internal/obs \
	./internal/obs/live ./internal/reserve ./internal/sched \
	./internal/strategy ./internal/testnet ./internal/wire
bench:
	$(GO) test -bench . -benchmem -run '^$$' $(BENCHPKGS)

## bench-capture: run the fixed-iteration benchmark suite per area and
## append one trajectory entry to each BENCH_<area>.json at the repo
## root, printing a comparison against the previous entry (>20% moves
## are flagged). Set NOTE to label the entry.
NOTE ?=
bench-capture:
	$(GO) run ./cmd/benchcap -root . -note '$(NOTE)'

## bench-smoke: health check for the capture harness itself — one
## iteration per benchmark, parsed by benchx, written to a throwaway
## directory. No timing assertions; it only proves the harness and
## every captured benchmark still build, run and parse.
bench-smoke:
	$(GO) run ./cmd/benchcap -smoke

## trace-determinism: the event-stream replication gate — the full JSONL
## trace of every reservation mode must be byte-identical at any worker
## count.
trace-determinism:
	$(GO) test -run 'TraceDeterminism' ./internal/sim

## chaos: the fault-injection recovery gate — chaos scenarios run under
## the race detector, recovery invariants are audited, and the pinned
## seed-1 fault trace must not drift.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/sim
	$(GO) test -race ./internal/faults

## overload: the overload-control gate — the load-ramp scenarios run
## under the race detector, the degrade-before-drop invariant is
## audited, and the pinned seed-1 overload trace must not drift.
overload:
	$(GO) test -race -run 'Overload' ./internal/sim
	$(GO) test -race ./internal/overload

## obs: the observability gate — the zero-perturbation guarantee, the
## instrument/span determinism checks, and the pinned seed-1 snapshot
## goldens, all under the race detector.
obs:
	$(GO) test -race -run 'Obs' ./internal/sim
	$(GO) test -race ./internal/obs

## obs-live: the live-plane observability gate — arming the wire
## recorders must leave the controller and node traces byte-identical
## (the zero-perturbation pin), the armed loopback run's cluster
## snapshot and span export must match the checked-in golden
## byte-for-byte, the disabled hook path must stay allocation-free,
## and the shared telemetry endpoints (armsim and armnode alike) must
## serve metrics, health, span tails and profiles correctly.
obs-live:
	$(GO) test -run 'TestLiveObs|TestDisabledPathZeroAlloc' -count=1 ./internal/testnet ./internal/obs/live
	$(GO) test -race ./internal/obs/live ./internal/telemetry
	$(GO) test -race -run 'Telemetry' ./cmd/armsim ./cmd/armnode

## arena: the strategy-seam gate — the head-to-head roster runs under
## the race detector (worker-count determinism, the pinned seed-1
## comparative snapshot, the default pair's equivalence to the plain
## campus run) alongside the strategy package's property and
## dispatch-cost tests.
arena:
	$(GO) test -race -run 'Arena' ./internal/sim
	$(GO) test -race ./internal/strategy

## testnet: the live-vs-sim oracle — the scripted campus scenario run
## over the loopback wire fabric must produce a controller trace
## byte-identical to the pure simulation, deterministic node traces,
## and a clean final audit. Socket-free (the UDP cluster test runs in
## `race` but skips under -short).
testnet:
	$(GO) test -run 'TestLoopback' -count=1 ./internal/testnet
	$(GO) test -race -count=1 ./internal/clock ./internal/testnet

## soak: the chaos-soak gate — a short deterministic soak (generated
## workload, rotating fault plans covering loss, reordering, a
## partition and a crash/restart) whose per-epoch audits must be clean
## and whose JSONL report must match the checked-in golden
## byte-for-byte. Includes the zero-cost proof that an empty netfaults
## plan leaves the loopback traces untouched.
soak:
	$(GO) test -run 'TestSoak|TestNetfaultsEmptyPlan' -count=1 ./internal/testnet

## golden: regenerate the checked-in CLI fixtures after an intentional
## output change.
golden:
	$(GO) test ./cmd/paperfigs -update
	$(GO) test ./internal/sim -run TestChaosTraceGolden -update-chaos
	$(GO) test ./internal/sim -run TestOverloadTraceGolden -update-overload
	$(GO) test ./internal/sim -run TestObsSnapshotGolden -update-obs
	$(GO) test ./internal/sim -run TestArenaSnapshotGolden -update-arena
	$(GO) test ./internal/testnet -run TestSoakGolden -update-soak
	$(GO) test ./internal/testnet -run TestLiveObsSnapshotGolden -update-live
