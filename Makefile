GO ?= go

.PHONY: ci vet build test race fuzz-short fuzz bench golden trace-determinism chaos overload obs

## ci: the full pre-merge gate — vet, build, tests under the race
## detector, the fuzz seed corpora in short mode, the event-trace
## replication check, and the chaos, overload and observability gates.
ci: vet build race fuzz-short trace-determinism chaos overload obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz-short: run every Fuzz* target's checked-in seed corpus only
## (no mutation) across all packages — fast, deterministic, suitable
## for CI.
fuzz-short:
	$(GO) test -run '^Fuzz' ./...

## fuzz: actually mutate for a bounded time (override FUZZTIME and
## FUZZTARGET/FUZZPKG to steer).
FUZZTIME ?= 30s
FUZZTARGET ?= FuzzMaxminConvergence
FUZZPKG ?= ./internal/maxmin
fuzz:
	$(GO) test -run '^$$' -fuzz $(FUZZTARGET) -fuzztime $(FUZZTIME) $(FUZZPKG)

bench:
	$(GO) test -bench . -benchmem -run '^$$' . ./internal/eventbus ./internal/obs

## trace-determinism: the event-stream replication gate — the full JSONL
## trace of every reservation mode must be byte-identical at any worker
## count.
trace-determinism:
	$(GO) test -run 'TraceDeterminism' ./internal/sim

## chaos: the fault-injection recovery gate — chaos scenarios run under
## the race detector, recovery invariants are audited, and the pinned
## seed-1 fault trace must not drift.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/sim
	$(GO) test -race ./internal/faults

## overload: the overload-control gate — the load-ramp scenarios run
## under the race detector, the degrade-before-drop invariant is
## audited, and the pinned seed-1 overload trace must not drift.
overload:
	$(GO) test -race -run 'Overload' ./internal/sim
	$(GO) test -race ./internal/overload

## obs: the observability gate — the zero-perturbation guarantee, the
## instrument/span determinism checks, and the pinned seed-1 snapshot
## goldens, all under the race detector.
obs:
	$(GO) test -race -run 'Obs' ./internal/sim
	$(GO) test -race ./internal/obs

## golden: regenerate the checked-in CLI fixtures after an intentional
## output change.
golden:
	$(GO) test ./cmd/paperfigs -update
	$(GO) test ./internal/sim -run TestChaosTraceGolden -update-chaos
	$(GO) test ./internal/sim -run TestOverloadTraceGolden -update-overload
	$(GO) test ./internal/sim -run TestObsSnapshotGolden -update-obs
