GO ?= go

.PHONY: ci vet build test race fuzz-short fuzz bench golden

## ci: the full pre-merge gate — vet, build, tests under the race
## detector, and the fuzz seed corpora in short mode.
ci: vet build race fuzz-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz-short: run every Fuzz* target's checked-in seed corpus only
## (no mutation) — fast, deterministic, suitable for CI.
fuzz-short:
	$(GO) test -run '^Fuzz' ./internal/maxmin

## fuzz: actually mutate for a bounded time (override FUZZTIME).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMaxminConvergence -fuzztime $(FUZZTIME) ./internal/maxmin

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

## golden: regenerate the checked-in CLI fixtures after an intentional
## output change.
golden:
	$(GO) test ./cmd/paperfigs -update
