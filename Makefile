GO ?= go

.PHONY: ci vet build test race fuzz-short fuzz bench golden trace-determinism chaos

## ci: the full pre-merge gate — vet, build, tests under the race
## detector, the fuzz seed corpora in short mode, the event-trace
## replication check, and the chaos recovery gate.
ci: vet build race fuzz-short trace-determinism chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz-short: run every Fuzz* target's checked-in seed corpus only
## (no mutation) — fast, deterministic, suitable for CI.
fuzz-short:
	$(GO) test -run '^Fuzz' ./internal/maxmin ./internal/faults

## fuzz: actually mutate for a bounded time (override FUZZTIME).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMaxminConvergence -fuzztime $(FUZZTIME) ./internal/maxmin

bench:
	$(GO) test -bench . -benchmem -run '^$$' . ./internal/eventbus

## trace-determinism: the event-stream replication gate — the full JSONL
## trace of every reservation mode must be byte-identical at any worker
## count.
trace-determinism:
	$(GO) test -run 'TraceDeterminism' ./internal/sim

## chaos: the fault-injection recovery gate — chaos scenarios run under
## the race detector, recovery invariants are audited, and the pinned
## seed-1 fault trace must not drift.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/sim
	$(GO) test -race ./internal/faults

## golden: regenerate the checked-in CLI fixtures after an intentional
## output change.
golden:
	$(GO) test ./cmd/paperfigs -update
	$(GO) test ./internal/sim -run TestChaosTraceGolden -update-chaos
