// Command tracegen generates mobility traces in the repository's CSV
// interchange format (time,portable,from,to), for replay by
// `armsim -mobility-trace` or external analysis.
//
// Usage:
//
//	tracegen -model officeweek > week.csv        # §7.1-calibrated office trace
//	tracegen -model meeting -students 55 > lab.csv
//	tracegen -model randomwalk -topology campus -portables 30 -duration 7200
package main

import (
	"flag"
	"fmt"
	"os"

	"armnet"
	"armnet/internal/mobility"
	"armnet/internal/randx"
)

func main() {
	model := flag.String("model", "officeweek", "trace model: officeweek, meeting, randomwalk")
	seed := flag.Int64("seed", 1, "random seed")
	students := flag.Int("students", 35, "meeting model: class size")
	walkBys := flag.Int("walkbys", 400, "meeting model: corridor through-traffic")
	topo := flag.String("topology", "campus", "randomwalk model: campus, figure4, meetingwing")
	portables := flag.Int("portables", 20, "randomwalk model: population")
	duration := flag.Float64("duration", 3600, "randomwalk model: horizon (s)")
	dwell := flag.Float64("dwell", 180, "randomwalk model: mean dwell (s)")
	flag.Parse()

	tr, err := generate(*model, *seed, *students, *walkBys, *topo, *portables, *duration, *dwell)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(model string, seed int64, students, walkBys int, topo string, portables int, duration, dwell float64) (*mobility.Trace, error) {
	rng := randx.New(seed)
	switch model {
	case "officeweek":
		return mobility.OfficeWeek(mobility.PaperOfficeWeek("faculty", []string{"stu-a", "stu-b", "stu-c"}), rng)
	case "meeting":
		cfg := mobility.MeetingClassConfig{
			Students:   students,
			Start:      3600,
			End:        3600 + 50*60,
			WalkBys:    walkBys,
			WalkByPeak: true,
		}
		return mobility.MeetingClass(cfg, rng)
	case "randomwalk":
		var env *armnet.Environment
		var err error
		switch topo {
		case "campus":
			env, err = armnet.BuildCampus()
		case "figure4":
			env, err = armnet.BuildFigure4("faculty", []string{"stu-a", "stu-b", "stu-c"})
		case "meetingwing":
			env, err = armnet.BuildMeetingWing(1.6e6)
		default:
			return nil, fmt.Errorf("unknown topology %q", topo)
		}
		if err != nil {
			return nil, err
		}
		names := make([]string, portables)
		for i := range names {
			names[i] = fmt.Sprintf("p%02d", i)
		}
		return mobility.RandomWalk(env.Universe, names, dwell, duration, rng)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
