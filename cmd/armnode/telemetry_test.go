package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"armnet/internal/obs/live"
	"armnet/internal/telemetry"
	"armnet/internal/wire"
)

func telemetryGet(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// TestArmnodeTelemetryEndpoints mounts the armnode adapter on the
// shared handler without binding a port: live controller and node
// recorders feed /metrics as one cluster merge, /healthz tracks epoch
// progress through the epochCounter writer, /spans tails the wire
// spans.
func TestArmnodeTelemetryEndpoints(t *testing.T) {
	ctl := live.NewController(func() float64 { return 1.5 })
	rec := live.NewNodeRecorder("west")
	nt := &nodeTelemetry{mode: "soak", ctl: ctl, recs: []*live.NodeRecorder{rec}, total: 3}
	h := telemetry.NewHandler(nt.options())

	// Before any traffic, /metrics already answers — the RTT histogram
	// skeletons are registered at construction — but no counter series
	// exists yet.
	if code, body := telemetryGet(t, h, "/metrics"); code != 200 || strings.Contains(body, "_total") {
		t.Fatalf("empty metrics: %d %q", code, body)
	}
	code, body := telemetryGet(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, `"mode":"soak"`) || !strings.Contains(body, `"complete":false`) {
		t.Fatalf("healthz: %d %q", code, body)
	}

	// Feed both sides of the wire and one closed lease span.
	ctl.FrameTx("west", wire.Advertise{}, 40, true)
	ctl.LeaseRenew("west", 1.0, 1.2, true)
	rec.FrameRx(wire.TAdvertise, 40)
	if code, body = telemetryGet(t, h, "/metrics"); code != 200 ||
		!strings.Contains(body, `armnet_wire_frames_tx_total{kind="advertise",node="west"} 1`) ||
		!strings.Contains(body, `armnet_wire_frames_rx_total{kind="advertise",node="west"} 1`) {
		t.Fatalf("cluster metrics missing tx/rx series: %d %q", code, body)
	}
	if code, body = telemetryGet(t, h, "/spans?n=5"); code != 200 ||
		!strings.Contains(body, "wire-lease") {
		t.Fatalf("span tail: %d %q", code, body)
	}
	if code, _ = telemetryGet(t, h, "/spans?n=oops"); code != 400 {
		t.Fatalf("bad n: %d", code)
	}
	if code, _ = telemetryGet(t, h, "/no-such"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}

	// Two epoch-report lines bump /healthz; finish completes it.
	if _, err := (epochCounter{nt}).Write([]byte("{\"epoch\":0}\n{\"epoch\":1}\n")); err != nil {
		t.Fatal(err)
	}
	if _, body = telemetryGet(t, h, "/healthz"); !strings.Contains(body, `"done":2`) {
		t.Fatalf("epoch progress: %q", body)
	}
	nt.finish()
	if _, body = telemetryGet(t, h, "/healthz"); !strings.Contains(body, `"complete":true`) {
		t.Fatalf("finish: %q", body)
	}
}

// TestArmnodeTelemetryNodeMode covers the controller-less shape node
// mode runs: a lone NodeRecorder, nil *live.Controller — /spans must
// serve empty, not panic.
func TestArmnodeTelemetryNodeMode(t *testing.T) {
	rec := live.NewNodeRecorder("east")
	nt := &nodeTelemetry{mode: "node", ctl: nil, recs: []*live.NodeRecorder{rec}, total: 1}
	h := telemetry.NewHandler(nt.options())

	rec.FrameRx(wire.THello, 12)
	code, body := telemetryGet(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, `armnet_wire_frames_rx_total{kind="hello",node="east"} 1`) {
		t.Fatalf("node metrics: %d %q", code, body)
	}
	if code, body = telemetryGet(t, h, "/spans"); code != 200 || body != "" {
		t.Fatalf("nil-controller spans: %d %q", code, body)
	}
}
