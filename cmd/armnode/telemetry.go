package main

import (
	"sync"

	"armnet/internal/obs/live"
	"armnet/internal/telemetry"
)

// nodeTelemetry adapts one armnode mode's live recorders to the shared
// telemetry server (-telemetry-addr). Every mode serves the same four
// endpoints; what backs them differs by role:
//
//   - node: the agent's own receive-side recorder (frames/bytes rx,
//     malformed, oversized, restarts) — no controller, so /spans is empty
//   - controller / orchestrate: the controller recorder — tx counters,
//     RTT histograms, and the cross-node wire spans
//   - soak: the always-armed soak recorder, scrapeable mid-run, with
//     /healthz counting finished epochs
//
// The recorders are mutex-guarded internally, so the scrape path needs
// no coordination with the run beyond this read-only adapter.
type nodeTelemetry struct {
	mu          sync.Mutex
	mode        string
	ctl         *live.Controller
	recs        []*live.NodeRecorder
	done, total int
	srv         *telemetry.Server
}

// newNodeTelemetry binds addr and starts serving immediately. total is
// the /healthz work unit count (epochs for soak, 1 for one-shot modes).
func newNodeTelemetry(addr, mode string, total int, ctl *live.Controller, recs ...*live.NodeRecorder) (*nodeTelemetry, error) {
	t := &nodeTelemetry{mode: mode, ctl: ctl, recs: recs, total: total}
	srv, err := telemetry.Serve(addr, t.options())
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return t, nil
}

// options wires the recorders into the shared endpoint; split out from
// newNodeTelemetry so tests can mount the handlers on httptest without
// binding a real port.
func (t *nodeTelemetry) options() telemetry.Options {
	return telemetry.Options{
		Metrics: func() ([]byte, error) {
			snap, err := live.ClusterSnapshot(t.ctl, t.recs)
			if err != nil || snap == nil {
				return nil, err
			}
			return snap.Prometheus(), nil
		},
		Health: func() any {
			t.mu.Lock()
			defer t.mu.Unlock()
			return map[string]any{
				"mode": t.mode, "done": t.done, "total": t.total,
				"complete": t.done >= t.total,
			}
		},
		Spans: func() []byte { return t.ctl.SpansJSONL() },
	}
}

// bump marks work units finished; soak wires it per epoch report line,
// one-shot modes call finish once.
func (t *nodeTelemetry) bump(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done += n
}

// finish marks the run complete on /healthz.
func (t *nodeTelemetry) finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = t.total
}

// close stops the server.
func (t *nodeTelemetry) close() { t.srv.Close() }

// epochCounter is the io.Writer runSoak hands to SoakConfig.Out when
// telemetry is armed: every epoch report arrives as one JSONL line, so
// counting newlines drives the /healthz progress counter. The bytes
// themselves are discarded — the caller still gets the full stream from
// SoakResult.ReportJSONL.
type epochCounter struct{ t *nodeTelemetry }

func (c epochCounter) Write(p []byte) (int, error) {
	lines := 0
	for _, b := range p {
		if b == '\n' {
			lines++
		}
	}
	c.t.bump(lines)
	return len(p), nil
}
