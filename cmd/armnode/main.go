// Command armnode runs the live-mode testnet: the signal and maxmin
// control protocols over real UDP between processes, checked against the
// deterministic simulation.
//
// Modes:
//
//	armnode -mode loopback
//	    Run the scripted scenario twice in-process — pure simulation and
//	    loopback wire fabric — and diff the controller traces. The
//	    single-binary correctness check (no sockets).
//
//	armnode -mode node -name west [-listen 127.0.0.1:0] [-trace west.jsonl]
//	    Serve one node agent over UDP until a shutdown frame arrives,
//	    then write its JSONL trace. Prints "LISTEN <addr>" once bound.
//
//	armnode -mode controller -peers core=ADDR,east=ADDR,west=ADDR
//	    Drive the scripted scenario over UDP against running node
//	    agents.
//
//	armnode -mode orchestrate [-dir DIR]
//	    The full 3-process cluster: spawn one armnode per agent, run the
//	    controller against them, collect their traces, and diff the live
//	    run against the loopback reference. Any agent dying early reaps
//	    the whole cluster and fails the run.
//
//	armnode -mode soak [-soak-epochs N] [-seed S] [-plan FILE] [-out FILE]
//	    Run the deterministic chaos soak: a generated workload on the
//	    loopback fabric under a rotating netfaults plan, each epoch
//	    audited for leaked holds, ledger conservation, and rate
//	    convergence. Exits non-zero on any violation.
//
// Every mode except loopback accepts -telemetry-addr, which serves the
// shared diagnostics endpoint (/metrics, /healthz, /spans,
// /debug/pprof) backed by the mode's live wire recorders for the
// duration of the run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"armnet/internal/clock"
	"armnet/internal/netfaults"
	"armnet/internal/obs/live"
	"armnet/internal/testnet"
)

func main() {
	var (
		mode    = flag.String("mode", "loopback", "loopback | node | controller | orchestrate | soak")
		name    = flag.String("name", "", "agent name (node mode)")
		listen  = flag.String("listen", "127.0.0.1:0", "UDP listen address (node mode)")
		trace   = flag.String("trace", "", "trace output file (node mode; empty = stdout)")
		peers   = flag.String("peers", "", "comma-separated name=addr list (controller mode)")
		dir     = flag.String("dir", "", "working directory for traces (orchestrate mode; empty = temp)")
		horizon = flag.Float64("horizon", 2.5, "wall-clock settle horizon in seconds (controller/orchestrate)")
		epochs  = flag.Int("soak-epochs", 0, "soak epoch count (soak mode; 0 = default)")
		seed    = flag.Int64("seed", 42, "workload and fault seed (soak mode)")
		plan    = flag.String("plan", "", "netfaults plan file (soak mode; empty = default rotation)")
		out     = flag.String("out", "", "soak report JSONL file (soak mode; empty = stdout)")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /spans, /debug/pprof on this address (empty = off)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "loopback":
		err = runLoopback()
	case "node":
		err = runNode(*name, *listen, *trace, *telAddr)
	case "controller":
		_, err = runController(*peers, *horizon, *telAddr)
	case "orchestrate":
		err = runOrchestrate(*dir, *horizon, *telAddr)
	case "soak":
		err = runSoak(*epochs, *seed, *plan, *out, *telAddr)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "armnode:", err)
		os.Exit(1)
	}
}

// runLoopback is the in-process oracle: sim vs loopback controller
// traces must be byte-identical and both audits clean.
func runLoopback() error {
	sim, err := testnet.Run(testnet.Config{Mode: testnet.ModeSim})
	if err != nil {
		return err
	}
	loop, err := testnet.Run(testnet.Config{Mode: testnet.ModeLoopback})
	if err != nil {
		return err
	}
	if d := testnet.DiffTraces(sim.ControllerTrace, loop.ControllerTrace); d != "" {
		return fmt.Errorf("controller trace diverged from sim reference:\n%s", d)
	}
	if err := clean(sim); err != nil {
		return err
	}
	if err := clean(loop); err != nil {
		return err
	}
	report("loopback", loop)
	fmt.Printf("trace: %d controller events identical to sim reference\n",
		testnet.TraceEvents(loop.ControllerTrace))
	return nil
}

// runNode serves one agent until shutdown, then writes its trace.
func runNode(name, listen, traceFile, telAddr string) error {
	if name == "" {
		return fmt.Errorf("node mode needs -name")
	}
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return err
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer pc.Close()
	var rec *live.NodeRecorder
	if telAddr != "" {
		rec = live.NewNodeRecorder(name)
		tel, err := newNodeTelemetry(telAddr, "node", 1, nil, rec)
		if err != nil {
			return err
		}
		fmt.Printf("armnode: telemetry on http://%s\n", tel.srv.Addr())
		defer tel.close()
		defer tel.finish()
	}
	fmt.Printf("LISTEN %s\n", pc.LocalAddr())
	node := testnet.NewNode(name, clock.NewWall())
	node.SetObs(rec)
	if err := node.ServeUDP(pc); err != nil {
		return err
	}
	tr, err := node.Trace()
	if err != nil {
		return err
	}
	if traceFile == "" {
		_, err = os.Stdout.Write(tr)
		return err
	}
	return os.WriteFile(traceFile, tr, 0o644)
}

// runController drives the scenario over UDP against running agents.
func runController(peerList string, horizon float64, telAddr string) (*testnet.Result, error) {
	peers := map[string]string{}
	for _, kv := range strings.Split(peerList, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want name=addr)", kv)
		}
		peers[k] = v
	}
	cfg := testnet.Config{Mode: testnet.ModeUDP, Peers: peers, Horizon: horizon}
	var tel *nodeTelemetry
	if telAddr != "" {
		ctl := live.NewController(nil)
		cfg.Obs = ctl
		var err error
		if tel, err = newNodeTelemetry(telAddr, "controller", 1, ctl); err != nil {
			return nil, err
		}
		fmt.Printf("armnode: telemetry on http://%s\n", tel.srv.Addr())
		defer tel.close()
	}
	res, err := testnet.Run(cfg)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		tel.finish()
	}
	if err := clean(res); err != nil {
		return res, err
	}
	report("udp", res)
	return res, nil
}

// runOrchestrate spawns one armnode process per agent, runs the
// controller, and diffs the cluster's traces against the loopback
// reference.
func runOrchestrate(dir string, horizon float64, telAddr string) error {
	ref, err := testnet.Run(testnet.Config{Mode: testnet.ModeLoopback})
	if err != nil {
		return err
	}
	ctrlCfg := testnet.Config{Mode: testnet.ModeUDP, Horizon: horizon}
	var tel *nodeTelemetry
	if telAddr != "" {
		ctl := live.NewController(nil)
		ctrlCfg.Obs = ctl
		if tel, err = newNodeTelemetry(telAddr, "orchestrate", 1, ctl); err != nil {
			return err
		}
		fmt.Printf("armnode: telemetry on http://%s\n", tel.srv.Addr())
		defer tel.close()
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	if dir == "" {
		dir, err = os.MkdirTemp("", "armnode")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	agents := []string{"core", "east", "west"}
	peers := map[string]string{}
	procs := map[string]*exec.Cmd{}
	killAll := func() {
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	}
	defer killAll()

	// Every child gets a reaper goroutine feeding one exit channel, so a
	// node dying at any point — before, during, or after the controller
	// run — is observed instead of leaving zombies behind.
	type exit struct {
		agent string
		err   error
	}
	exits := make(chan exit, len(agents))
	for _, a := range agents {
		cmd := exec.Command(self, "-mode", "node", "-name", a,
			"-trace", filepath.Join(dir, a+".jsonl"))
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn %s: %w", a, err)
		}
		procs[a] = cmd
		go func(a string, cmd *exec.Cmd) { exits <- exit{a, cmd.Wait()} }(a, cmd)
		addr, err := awaitListen(stdout)
		if err != nil {
			killAll()
			return fmt.Errorf("%s never bound: %w", a, err)
		}
		peers[a] = addr
		fmt.Printf("spawned %s (pid %d) on %s\n", a, cmd.Process.Pid, addr)
	}

	// Run the controller concurrently with the exit watch: a node that
	// exits before shutdown — cleanly or not — reaps the whole cluster
	// and fails the run.
	type ctrl struct {
		res *testnet.Result
		err error
	}
	ctrlDone := make(chan ctrl, 1)
	ctrlCfg.Peers = peers
	go func() {
		res, err := testnet.Run(ctrlCfg)
		ctrlDone <- ctrl{res, err}
	}()
	// A clean node exit only ever follows the controller's shutdown frame,
	// so it races harmlessly with Run returning; an error exit at any
	// point reaps the cluster and fails the orchestration.
	var res *testnet.Result
	reaped := 0
	for res == nil {
		select {
		case ev := <-exits:
			if ev.err != nil {
				killAll()
				return fmt.Errorf("node %s died mid-run: %v", ev.agent, ev.err)
			}
			reaped++
		case c := <-ctrlDone:
			if c.err != nil {
				killAll()
				return c.err
			}
			res = c.res
		}
	}
	for reaped < len(agents) {
		select {
		case ev := <-exits:
			reaped++
			if ev.err != nil {
				killAll()
				return fmt.Errorf("node %s exited: %v", ev.agent, ev.err)
			}
		case <-time.After(10 * time.Second):
			killAll()
			return fmt.Errorf("%d node(s) never exited after shutdown", len(agents)-reaped)
		}
	}
	if tel != nil {
		tel.finish()
	}
	if err := clean(res); err != nil {
		return err
	}
	report("cluster", res)

	traces := map[string][]byte{}
	for _, a := range agents {
		tr, err := os.ReadFile(filepath.Join(dir, a+".jsonl"))
		if err != nil {
			return err
		}
		traces[a] = tr
	}
	if res.FrameDrops > 0 {
		fmt.Printf("skipping frame diff: %d drops triggered retransmission\n", res.FrameDrops)
		return nil
	}
	if diffs := testnet.DiffNodeFrames(traces, ref.NodeTraces); len(diffs) > 0 {
		return fmt.Errorf("live frame multisets diverge from loopback reference: %v", diffs)
	}
	fmt.Printf("trace: per-node frame multisets identical to loopback reference\n")
	return nil
}

// runSoak drives the chaos soak and writes the epoch report JSONL.
func runSoak(epochs int, seed int64, planFile, outFile, telAddr string) error {
	cfg := testnet.SoakConfig{Epochs: epochs, Seed: seed}
	if planFile != "" {
		data, err := os.ReadFile(planFile)
		if err != nil {
			return err
		}
		plan, err := netfaults.ParsePlanString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", planFile, err)
		}
		cfg.Plans = []*netfaults.Plan{plan}
	}
	if telAddr != "" {
		total := epochs
		if total <= 0 {
			total = testnet.DefaultSoakEpochs
		}
		ctl := live.NewController(nil)
		cfg.Obs = ctl
		tel, err := newNodeTelemetry(telAddr, "soak", total, ctl)
		if err != nil {
			return err
		}
		fmt.Printf("armnode: telemetry on http://%s\n", tel.srv.Addr())
		defer tel.close()
		// Every epoch report lands on cfg.Out as it is produced, driving
		// the /healthz progress counter mid-soak.
		cfg.Out = epochCounter{tel}
	}
	res, err := testnet.RunSoak(cfg)
	if err != nil {
		return err
	}
	if outFile == "" {
		if _, err := os.Stdout.Write(res.ReportJSONL); err != nil {
			return err
		}
	} else if err := os.WriteFile(outFile, res.ReportJSONL, 0o644); err != nil {
		return err
	}
	fs := res.Run.Faults
	fmt.Printf("soak: %d epochs, %d commits, %d aborts, faults drop=%d dup=%d delay=%d reorder=%d partition=%d crash=%d reclaim=%d\n",
		len(res.Reports), res.Run.Commits, res.Run.Aborted,
		fs.Drops, fs.Dups, fs.Delays, fs.Reorders, fs.PartitionDrops, fs.Crashes, fs.LeaseReclaims)
	if len(res.Violations) > 0 {
		return fmt.Errorf("soak failed audit: %s", strings.Join(res.Violations, "; "))
	}
	fmt.Println("soak: every epoch audit clean")
	return nil
}

// awaitListen reads the child's LISTEN line (with a deadline).
func awaitListen(r interface{ Read([]byte) (int, error) }) (string, error) {
	type lineErr struct {
		line string
		err  error
	}
	ch := make(chan lineErr, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				ch <- lineErr{line: addr}
				return
			}
		}
		ch <- lineErr{err: fmt.Errorf("stdout closed: %v", sc.Err())}
	}()
	select {
	case le := <-ch:
		return le.line, le.err
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("timeout")
	}
}

func clean(res *testnet.Result) error {
	if len(res.Violations) > 0 {
		return fmt.Errorf("%v run failed audit: %s", res.Mode, strings.Join(res.Violations, "; "))
	}
	return nil
}

func report(label string, res *testnet.Result) {
	fmt.Printf("%s: %d commits, %d aborts, %d frames (%d dropped), live=%v, audit clean\n",
		label, res.Commits, res.Aborted, res.FramesSent, res.FrameDrops, res.Live)
}
