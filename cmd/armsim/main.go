// Command armsim runs an integrated resource-management scenario: a
// population of portables random-walks over a chosen topology while each
// holds a QoS-bounded connection; the full control loop (admission,
// prediction, advance reservation, adaptation, handoff) runs on the
// discrete-event simulator and the final metrics are printed.
//
// Usage:
//
//	armsim -topology campus -portables 24 -duration 3600 -mode predictive
//	armsim -topology figure4 -mode brute-force -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"armnet"
	"armnet/internal/mobility"
	"armnet/internal/randx"
	"armnet/internal/stats"
)

// tracePath, when set, replays a CSV trace instead of generating one.
var tracePath string

func main() {
	topo := flag.String("topology", "campus", "topology: campus, figure4, meetingwing, corridor")
	portables := flag.Int("portables", 24, "number of portables")
	duration := flag.Float64("duration", 3600, "simulated seconds")
	dwell := flag.Float64("dwell", 180, "mean cell dwell time (s)")
	seed := flag.Int64("seed", 1, "random seed")
	modeName := flag.String("mode", "predictive", "reservation mode: predictive, brute-force, none")
	topoFile := flag.String("topology-file", "", "build the environment from a JSON spec instead of a named topology")
	bmin := flag.Float64("bmin", 32e3, "connection b_min (bits/s)")
	bmax := flag.Float64("bmax", 128e3, "connection b_max (bits/s)")
	flag.StringVar(&tracePath, "trace", "", "replay a CSV mobility trace (see cmd/tracegen) instead of generating one")
	flag.Parse()

	if err := run(*topo, *topoFile, *portables, *duration, *dwell, *seed, *modeName, *bmin, *bmax); err != nil {
		fmt.Fprintln(os.Stderr, "armsim:", err)
		os.Exit(1)
	}
}

func run(topo, topoFile string, portables int, duration, dwell float64, seed int64, modeName string, bmin, bmax float64) error {
	var env *armnet.Environment
	var err error
	if topoFile != "" {
		f, ferr := os.Open(topoFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		env, err = armnet.EnvironmentFromJSON(f)
		topo = topoFile
	} else {
		switch topo {
		case "campus":
			env, err = armnet.BuildCampus()
		case "figure4":
			env, err = armnet.BuildFigure4("faculty", []string{"stu-a", "stu-b", "stu-c"})
		case "meetingwing":
			env, err = armnet.BuildMeetingWing(1.6e6)
		case "corridor":
			env, err = armnet.BuildCorridor(6, 1.6e6)
		default:
			return fmt.Errorf("unknown topology %q", topo)
		}
	}
	if err != nil {
		return err
	}
	var mode = armnet.ModePredictive
	switch modeName {
	case "predictive":
	case "brute-force":
		mode = armnet.ModeBruteForce
	case "none":
		mode = armnet.ModeNone
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	net, err := armnet.NewNetwork(env, armnet.Config{Seed: seed, Mode: mode})
	if err != nil {
		return err
	}

	// Mobility: replay a recorded trace, or generate a random walk.
	var trace *mobility.Trace
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = mobility.ReadCSV(f)
		if err != nil {
			return err
		}
		if d := trace.Duration(); d > duration {
			duration = d
		}
	} else {
		names := make([]string, portables)
		for i := range names {
			names[i] = fmt.Sprintf("p%02d", i)
		}
		var err error
		trace, err = mobility.RandomWalk(env.Universe, names, dwell, duration, randx.New(seed+1))
		if err != nil {
			return err
		}
	}
	req := armnet.Request{
		Bandwidth: armnet.Bounds{Min: bmin, Max: bmax},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: bmin / 4, Rho: bmin},
	}
	for _, mv := range trace.Moves {
		mv := mv
		net.Schedule(mv.Time, func() {
			if mv.From == "" {
				if err := net.PlacePortable(mv.Portable, mv.To); err == nil {
					_, _ = net.OpenConnection(mv.Portable, req)
				}
				return
			}
			_ = net.HandoffPortable(mv.Portable, mv.To)
		})
	}
	if err := net.RunUntil(duration); err != nil {
		return err
	}

	m := net.Metrics()
	fmt.Printf("topology=%s portables=%d duration=%.0fs mode=%s seed=%d\n",
		topo, portables, duration, mode, seed)
	tb := stats.Table{Header: []string{"metric", "value"}}
	for _, name := range m.Counter.Names() {
		tb.AddRow(name, m.Counter.Get(name))
	}
	fmt.Print(tb.String())
	if tried := m.Counter.Get(armnet.CtrHandoffTried); tried > 0 {
		fmt.Printf("handoff drop rate: %.4f\n", m.Counter.Ratio(armnet.CtrHandoffDropped, armnet.CtrHandoffTried))
	}
	mgr := net.Manager()
	if mgr.Latency.Predicted.N()+mgr.Latency.Unpredicted.N() > 0 {
		fmt.Printf("handoff latency: predicted %.1fms (n=%d), unpredicted %.1fms (n=%d)\n",
			mgr.Latency.Predicted.Mean()*1e3, mgr.Latency.Predicted.N(),
			mgr.Latency.Unpredicted.Mean()*1e3, mgr.Latency.Unpredicted.N())
	}
	if req := m.Counter.Get(armnet.CtrNewRequested); req > 0 {
		fmt.Printf("new-connection block rate: %.4f\n", m.Counter.Ratio(armnet.CtrNewBlocked, armnet.CtrNewRequested))
	}
	return nil
}
