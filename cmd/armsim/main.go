// Command armsim runs an integrated resource-management scenario: a
// population of portables random-walks over a chosen topology while each
// holds a QoS-bounded connection; the full control loop (admission,
// prediction, advance reservation, adaptation, handoff) runs on the
// discrete-event simulator and the final metrics are printed.
//
// Usage:
//
//	armsim -topology campus -portables 24 -duration 3600 -mode predictive
//	armsim -topology figure4 -mode brute-force -seed 7
//	armsim -topology campus -replications 16 -parallel 8
//
// With -replications R the scenario runs R times under decorrelated seeds
// derived from -seed (replication 0 keeps it), fanned across -parallel
// workers. Replication is deterministic: the per-replication table is
// identical at any worker count; pool stats (wall time, speedup) print to
// stderr.
//
// With -trace FILE every control-plane event (admission decisions,
// handoffs, holds/commits/aborts, reservations, rate changes, …) is
// written to FILE as JSON Lines, stamped with simulated time and a
// per-run sequence number. Replications append in replication order, so
// the file is byte-identical at any -parallel value. Use -mobility-trace
// to replay a recorded CSV movement trace (see cmd/tracegen) instead of
// generating a random walk.
//
// With -fault-plan FILE the run executes a deterministic fault-injection
// schedule (see internal/faults for the grammar): control messages are
// dropped, duplicated, or delayed probabilistically, and components —
// links, cells, zone profile servers, the signaling plane — fail and
// recover at scheduled times. Connections then open through the
// signaling plane so setups are exposed to message faults; tune it with
// -signal-timeout and -signal-retries:
//
//	armsim -topology campus -fault-plan chaos.plan -trace - -seed 1
//
// With -overload-policy FILE (or the literal "default") the staged
// overload-control subsystem is armed (see internal/overload for the
// policy grammar): per-cell utilization detection, degrade cascades,
// priority load shedding, and a signaling circuit breaker. The report
// then includes setups-shed, degrade-cascades, breaker-trips and
// breaker-fast-fails counters:
//
//	armsim -topology campus -overload-policy default -portables 48
//
// The strategy flags swap the paper's algorithms for registered rivals:
// -allocator selects the rate-allocation protocol (maxmin is the paper's
// §5.3.1 ADVERTISE/UPDATE protocol; erica is the single-round-trip
// explicit-rate scheme) and -admitter the admission control (table2 is
// the paper's test battery; measured is headroom-based measurement
// admission). -arena ignores -replications and instead runs every
// allocator/admitter pair head-to-head over the *identical* campus
// workload, printing a comparative table (utilization, drops, blocking,
// control overhead):
//
//	armsim -allocator erica -admitter measured -portables 24
//	armsim -arena -seed 1 -portables 24 -bmin 256e3 -bmax 1.2e6
//
// The observability flags arm the deterministic instrument and span
// layer (zero cost and zero perturbation when off): -summary prints the
// paper-§7-style results digest; -obs-snapshot/-obs-json write the
// merged instrument snapshot (Prometheus text / JSON, byte-identical at
// any -parallel value); -spans streams connection lifecycle spans as
// JSONL; -telemetry-addr serves a live wall-clock endpoint (/metrics,
// /healthz, /spans tail, /debug/pprof) while the replications run,
// lingering -telemetry-linger seconds after they finish:
//
//	armsim -replications 8 -parallel 4 -summary -obs-snapshot run.prom
//	armsim -telemetry-addr 127.0.0.1:9090 -replications 16 -telemetry-linger 60
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"armnet"
	"armnet/internal/mobility"
	"armnet/internal/randx"
	"armnet/internal/runner"
	"armnet/internal/stats"
)

func main() {
	topo := flag.String("topology", "campus", "topology: campus, figure4, meetingwing, corridor")
	portables := flag.Int("portables", 24, "number of portables")
	duration := flag.Float64("duration", 3600, "simulated seconds")
	dwell := flag.Float64("dwell", 180, "mean cell dwell time (s)")
	seed := flag.Int64("seed", 1, "random seed")
	modeName := flag.String("mode", "predictive", "reservation mode: predictive, brute-force, none")
	allocator := flag.String("allocator", "", "rate-allocation strategy (default maxmin, the paper's protocol); see armnet.Allocators")
	admitter := flag.String("admitter", "", "admission-control strategy (default table2, the paper's tests); see armnet.Admitters")
	arena := flag.Bool("arena", false, "run every allocator/admitter pair head-to-head over the identical campus workload and print the comparative table")
	topoFile := flag.String("topology-file", "", "build the environment from a JSON spec instead of a named topology")
	bmin := flag.Float64("bmin", 32e3, "connection b_min (bits/s)")
	bmax := flag.Float64("bmax", 128e3, "connection b_max (bits/s)")
	mobilityTrace := flag.String("mobility-trace", "", "replay a CSV mobility trace (see cmd/tracegen) instead of generating one")
	tracePath := flag.String("trace", "", "write the control-plane event stream as JSON Lines to this file (- for stdout)")
	faultPlan := flag.String("fault-plan", "", "inject faults from this plan file (drop/dup/delay rules and timed outages); connections then open through the signaling plane")
	overloadPolicy := flag.String("overload-policy", "", "arm staged overload control from this policy file (see internal/overload for the grammar); 'default' uses the built-in policy")
	signalTimeout := flag.Float64("signal-timeout", 0, "signaling setup deadline in seconds (0 = scale with route hop count)")
	signalRetries := flag.Int("signal-retries", 0, "per-hop control-message retransmission budget (0 = default)")
	replications := flag.Int("replications", 1, "independent scenario replications under derived seeds")
	parallel := flag.Int("parallel", 1, "worker count for replications (0 = GOMAXPROCS); output is identical at any worker count")
	obsFlag := flag.Bool("obs", false, "arm the deterministic observability layer (implied by the flags below)")
	obsSnapshot := flag.String("obs-snapshot", "", "write the merged instrument snapshot as Prometheus text to this file (- for stdout)")
	obsJSON := flag.String("obs-json", "", "write the merged instrument snapshot as JSON to this file (- for stdout)")
	spansPath := flag.String("spans", "", "write the JSONL connection-lifecycle spans to this file (- for stdout); replications append in order")
	summary := flag.Bool("summary", false, "print the paper-§7-style results summary derived from the merged snapshot")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live wall-clock telemetry on this address (/metrics, /healthz, /spans, /debug/pprof)")
	telemetryLinger := flag.Float64("telemetry-linger", 0, "keep the telemetry endpoint up this many wall-clock seconds after the run finishes")
	flag.Parse()

	sc := scenario{
		topo: *topo, topoFile: *topoFile,
		portables: *portables, duration: *duration, dwell: *dwell,
		modeName: *modeName, bmin: *bmin, bmax: *bmax,
		allocator: *allocator, admitter: *admitter, arena: *arena,
		mobilityPath: *mobilityTrace, tracePath: *tracePath,
		faultPath: *faultPlan, overloadPath: *overloadPolicy,
		sigTimeout: *signalTimeout, sigRetries: *signalRetries,
		obsSnapshotPath: *obsSnapshot, obsJSONPath: *obsJSON,
		spansPath: *spansPath, summary: *summary,
		telemetryAddr: *telemetryAddr, telemetryLinger: *telemetryLinger,
	}
	// Any consumer of the observability layer arms it.
	sc.obs = *obsFlag || sc.obsSnapshotPath != "" || sc.obsJSONPath != "" ||
		sc.spansPath != "" || sc.summary || sc.telemetryAddr != ""
	if err := run(sc, *seed, *replications, *parallel, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "armsim:", err)
		os.Exit(1)
	}
}

// scenario describes one armsim configuration. It carries only immutable
// inputs; every replication builds its own environment, network and trace
// so that concurrent trials share no mutable state.
type scenario struct {
	topo, topoFile string
	topoJSON       []byte // parsed per replication (envs are mutable)
	portables      int
	duration       float64
	dwell          float64
	modeName       string
	mode           armnet.ReservationMode
	bmin, bmax     float64
	allocator      string
	admitter       string
	arena          bool
	mobilityPath   string
	trace          *mobility.Trace // replayed read-only when set
	tracePath      string          // JSONL event-trace destination ("" = off)
	faultPath      string
	faults         *armnet.FaultPlan // parsed once; injectors only read it
	overloadPath   string
	overload       *armnet.OverloadPolicy // parsed once; controllers copy it
	sigTimeout     float64
	sigRetries     int

	// Observability outputs. obs is set when any of them is requested;
	// an armed layer changes nothing about the simulation (the event
	// trace stays byte-identical), it only adds exports.
	obs             bool
	obsSnapshotPath string
	obsJSONPath     string
	spansPath       string
	summary         bool
	telemetryAddr   string
	telemetryLinger float64
}

// prepare resolves the mode, loads the optional topology spec and replay
// trace once, and validates the inputs shared by every replication.
func (sc *scenario) prepare() error {
	sc.mode = armnet.ModePredictive
	switch sc.modeName {
	case "predictive":
	case "brute-force":
		sc.mode = armnet.ModeBruteForce
	case "none":
		sc.mode = armnet.ModeNone
	default:
		return fmt.Errorf("unknown mode %q", sc.modeName)
	}
	if sc.topoFile != "" {
		data, err := os.ReadFile(sc.topoFile)
		if err != nil {
			return err
		}
		sc.topoJSON = data
		sc.topo = sc.topoFile
	}
	if sc.faultPath != "" {
		f, err := os.Open(sc.faultPath)
		if err != nil {
			return err
		}
		sc.faults, err = armnet.ParseFaultPlan(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if sc.overloadPath != "" {
		if sc.overloadPath == "default" {
			def := armnet.DefaultOverloadPolicy()
			sc.overload = &def
		} else {
			f, err := os.Open(sc.overloadPath)
			if err != nil {
				return err
			}
			sc.overload, err = armnet.ParseOverloadPolicy(f)
			f.Close()
			if err != nil {
				return err
			}
		}
	}
	if sc.mobilityPath != "" {
		f, err := os.Open(sc.mobilityPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sc.trace, err = mobility.ReadCSV(f)
		if err != nil {
			return err
		}
		if d := sc.trace.Duration(); d > sc.duration {
			sc.duration = d
		}
	}
	return nil
}

// buildEnv constructs a fresh environment for one replication. Environments
// record portable placements, so they must never be shared across trials.
func (sc scenario) buildEnv() (*armnet.Environment, error) {
	if sc.topoJSON != nil {
		return armnet.EnvironmentFromJSON(bytes.NewReader(sc.topoJSON))
	}
	switch sc.topo {
	case "campus":
		return armnet.BuildCampus()
	case "figure4":
		return armnet.BuildFigure4("faculty", []string{"stu-a", "stu-b", "stu-c"})
	case "meetingwing":
		return armnet.BuildMeetingWing(1.6e6)
	case "corridor":
		return armnet.BuildCorridor(6, 1.6e6)
	default:
		return nil, fmt.Errorf("unknown topology %q", sc.topo)
	}
}

// replication is one finished trial: the network for reporting plus its
// optional JSONL event trace and observability exports.
type replication struct {
	net   *armnet.Network
	trace []byte
	snap  *armnet.ObsSnapshot
	spans []byte
}

// runOnce executes one self-contained replication under the given seed and
// returns the finished network for reporting.
func (sc scenario) runOnce(seed int64) (replication, error) {
	env, err := sc.buildEnv()
	if err != nil {
		return replication{}, err
	}
	cfg := armnet.Config{Seed: seed, Mode: sc.mode, Faults: sc.faults, Overload: sc.overload,
		Allocator: sc.allocator, Admitter: sc.admitter}
	cfg.Signal.Timeout = sc.sigTimeout
	cfg.Signal.MaxRetries = sc.sigRetries
	var spanBuf bytes.Buffer
	if sc.obs {
		opts := &armnet.ObsOptions{}
		if sc.spansPath != "" || sc.telemetryAddr != "" {
			opts.Spans = &spanBuf
		}
		cfg.Obs = opts
	}
	net, err := armnet.NewNetwork(env, cfg)
	if err != nil {
		return replication{}, err
	}
	var traceBuf bytes.Buffer
	var rec *armnet.EventRecorder
	if sc.tracePath != "" {
		rec = net.Trace(&traceBuf)
	}
	// Mobility: replay the recorded trace, or generate a random walk.
	trace := sc.trace
	if trace == nil {
		names := make([]string, sc.portables)
		for i := range names {
			names[i] = fmt.Sprintf("p%02d", i)
		}
		trace, err = mobility.RandomWalk(env.Universe, names, sc.dwell, sc.duration, randx.New(seed+1))
		if err != nil {
			return replication{}, err
		}
	}
	req := armnet.Request{
		Bandwidth: armnet.Bounds{Min: sc.bmin, Max: sc.bmax},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: sc.bmin / 4, Rho: sc.bmin},
	}
	// Under a fault plan, connections open through the signaling plane so
	// setup messages are exposed to the plan's drop/dup/delay rules; the
	// instantaneous path stays the default because it keeps uninjected
	// traces byte-identical to earlier releases.
	open := func(portable string) { _, _ = net.OpenConnection(portable, req) }
	if !sc.faults.Empty() {
		open = func(portable string) {
			_ = net.OpenConnectionAsync(portable, req, func(string, error) {})
		}
	}
	for _, mv := range trace.Moves {
		mv := mv
		net.Schedule(mv.Time, func() {
			if mv.From == "" {
				if err := net.PlacePortable(mv.Portable, mv.To); err == nil {
					open(mv.Portable)
				}
				return
			}
			_ = net.HandoffPortable(mv.Portable, mv.To)
		})
	}
	if err := net.RunUntil(sc.duration); err != nil {
		return replication{}, err
	}
	if rec != nil && rec.Err() != nil {
		return replication{}, rec.Err()
	}
	rep := replication{net: net, trace: traceBuf.Bytes()}
	if o := net.Observer(); o != nil {
		o.Finish(sc.duration)
		if err := o.SpanErr(); err != nil {
			return replication{}, err
		}
		rep.snap = o.Snapshot()
		rep.spans = spanBuf.Bytes()
	}
	return rep, nil
}

// run executes the scenario (optionally replicated) and prints the report.
func run(sc scenario, seed int64, replications, parallel int, out, statsOut io.Writer) error {
	if err := sc.prepare(); err != nil {
		return err
	}
	if sc.arena {
		return runArena(sc, seed, parallel, out, statsOut)
	}
	if replications <= 0 {
		replications = 1
	}
	seeds := runner.Seeds(seed, replications)
	prog := runner.NewProgress(replications)
	ctx := runner.WithProgress(context.Background(), prog)
	var tel *armsimTelemetry
	if sc.telemetryAddr != "" {
		var err error
		tel, err = newTelemetry(sc.telemetryAddr, replications, prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(statsOut, "armsim: telemetry on http://%s\n", tel.srv.Addr())
		defer func() {
			if sc.telemetryLinger > 0 {
				fmt.Fprintf(statsOut, "armsim: telemetry lingering %.0fs\n", sc.telemetryLinger)
				time.Sleep(time.Duration(sc.telemetryLinger * float64(time.Second)))
			}
			tel.close()
		}()
	}
	reps, st, err := runner.Map(ctx, parallel, replications,
		func(_ context.Context, i int) (replication, error) {
			rep, err := sc.runOnce(seeds[i])
			if err == nil && tel != nil {
				tel.publish(i, rep.snap, rep.spans)
			}
			return rep, err
		})
	if err != nil {
		return err
	}
	if sc.tracePath != "" {
		if err := writeTrace(sc.tracePath, reps, out); err != nil {
			return err
		}
	}
	if sc.obs {
		if err := writeObs(sc, reps, out); err != nil {
			return err
		}
	}
	if replications == 1 {
		printDetailed(out, sc, seeds[0], reps[0].net)
		return nil
	}
	fmt.Fprintf(out, "topology=%s portables=%d duration=%.0fs mode=%s seed=%d replications=%d\n",
		sc.topo, sc.portables, sc.duration, sc.mode, seed, replications)
	tb := stats.Table{Header: []string{"seed", "handoffs", "drop-rate", "block-rate", "reservations", "pool-claims"}}
	var dropSum, blockSum float64
	for i, rep := range reps {
		c := rep.net.Metrics().Counter
		drop := c.Ratio(armnet.CtrHandoffDropped, armnet.CtrHandoffTried)
		block := c.Ratio(armnet.CtrNewBlocked, armnet.CtrNewRequested)
		dropSum += drop
		blockSum += block
		tb.AddRow(seeds[i], c.Get(armnet.CtrHandoffTried), drop, block,
			c.Get(armnet.CtrAdvanceResv), c.Get(armnet.CtrPoolClaims))
	}
	fmt.Fprint(out, tb.String())
	n := float64(replications)
	fmt.Fprintf(out, "mean drop rate: %.4f  mean block rate: %.4f\n", dropSum/n, blockSum/n)
	fmt.Fprintf(statsOut, "armsim: %s\n", st)
	return nil
}

// runArena runs the head-to-head strategy roster over the identical
// campus workload and prints the comparative snapshot. Only the campus
// workload is supported: the arena's claim is "same workload, different
// strategies", and the campus scenario is the calibrated one.
func runArena(sc scenario, seed int64, parallel int, out, statsOut io.Writer) error {
	if sc.topo != "campus" || sc.topoJSON != nil {
		return fmt.Errorf("-arena runs the campus workload; drop -topology/-topology-file")
	}
	cfg := armnet.ArenaConfig{
		Seed: seed, Portables: sc.portables, Duration: sc.duration,
		Dwell: sc.dwell, Mode: sc.mode, BMin: sc.bmin, BMax: sc.bmax,
	}
	entries, st, err := armnet.RunArenaSweep(context.Background(), cfg, parallel)
	if err != nil {
		return err
	}
	if _, err := out.Write(armnet.RenderArena(cfg, entries)); err != nil {
		return err
	}
	fmt.Fprintf(statsOut, "armsim: %s\n", st)
	return nil
}

// writeObs merges the per-replication snapshots in replication order —
// deterministic regardless of -parallel — and writes the requested
// exports.
func writeObs(sc scenario, reps []replication, stdout io.Writer) error {
	snaps := make([]*armnet.ObsSnapshot, len(reps))
	for i, rep := range reps {
		snaps[i] = rep.snap
	}
	merged, err := armnet.MergeObsSnapshots(snaps)
	if err != nil {
		return err
	}
	if merged == nil {
		return fmt.Errorf("observability armed but no snapshot was produced")
	}
	if sc.obsSnapshotPath != "" {
		if err := writeFileOrStdout(sc.obsSnapshotPath, merged.Prometheus(), stdout); err != nil {
			return err
		}
	}
	if sc.obsJSONPath != "" {
		if err := writeFileOrStdout(sc.obsJSONPath, merged.JSON(), stdout); err != nil {
			return err
		}
	}
	if sc.spansPath != "" {
		var joined bytes.Buffer
		for _, rep := range reps {
			joined.Write(rep.spans)
		}
		if err := writeFileOrStdout(sc.spansPath, joined.Bytes(), stdout); err != nil {
			return err
		}
	}
	if sc.summary {
		printSummary(stdout, merged)
	}
	return nil
}

func writeFileOrStdout(path string, data []byte, stdout io.Writer) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printSummary renders the paper-§7-style digest of the merged snapshot.
func printSummary(out io.Writer, snap *armnet.ObsSnapshot) {
	s := snap.Summary()
	fmt.Fprintf(out, "summary (over %d run(s)):\n", snap.Runs)
	tb := stats.Table{Header: []string{"result", "value"}}
	tb.AddRow("connection requests", fmt.Sprintf("%.0f", s.Requests))
	tb.AddRow("admitted", fmt.Sprintf("%.0f", s.Admitted))
	tb.AddRow("blocked", fmt.Sprintf("%.0f", s.Blocked))
	tb.AddRow("block rate", fmt.Sprintf("%.4f", s.BlockRate))
	tb.AddRow("handoffs attempted", fmt.Sprintf("%.0f", s.Handoffs))
	tb.AddRow("handoffs dropped", fmt.Sprintf("%.0f", s.Dropped))
	tb.AddRow("drop rate", fmt.Sprintf("%.4f", s.DropRate))
	tb.AddRow("bandwidth availability", fmt.Sprintf("%.4f", s.Availability))
	tb.AddRow("adaptations per conn", fmt.Sprintf("%.2f", s.MeanAdaptation))
	if s.SetupP50 > 0 || s.SetupP99 > 0 {
		tb.AddRow("setup latency p50/p99", fmt.Sprintf("%.1fms / %.1fms", s.SetupP50*1e3, s.SetupP99*1e3))
	}
	if s.InterruptP50 > 0 || s.InterruptP99 > 0 {
		tb.AddRow("handoff interruption p50/p99", fmt.Sprintf("%.1fms / %.1fms", s.InterruptP50*1e3, s.InterruptP99*1e3))
	}
	fmt.Fprint(out, tb.String())
}

// writeTrace concatenates the per-replication JSONL event traces in
// replication order — deterministic regardless of -parallel — to the
// given path ("-" selects stdout).
func writeTrace(path string, reps []replication, stdout io.Writer) error {
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for _, rep := range reps {
		if _, err := w.Write(rep.trace); err != nil {
			return err
		}
	}
	return nil
}

// printDetailed reports a single replication in full.
func printDetailed(out io.Writer, sc scenario, seed int64, net *armnet.Network) {
	m := net.Metrics()
	fmt.Fprintf(out, "topology=%s portables=%d duration=%.0fs mode=%s seed=%d\n",
		sc.topo, sc.portables, sc.duration, sc.mode, seed)
	tb := stats.Table{Header: []string{"metric", "value"}}
	for _, name := range m.Counter.Names() {
		tb.AddRow(name, m.Counter.Get(name))
	}
	fmt.Fprint(out, tb.String())
	if tried := m.Counter.Get(armnet.CtrHandoffTried); tried > 0 {
		fmt.Fprintf(out, "handoff drop rate: %.4f\n", m.Counter.Ratio(armnet.CtrHandoffDropped, armnet.CtrHandoffTried))
	}
	mgr := net.Manager()
	if mgr.Latency.Predicted.N()+mgr.Latency.Unpredicted.N() > 0 {
		fmt.Fprintf(out, "handoff latency: predicted %.1fms (n=%d), unpredicted %.1fms (n=%d)\n",
			mgr.Latency.Predicted.Mean()*1e3, mgr.Latency.Predicted.N(),
			mgr.Latency.Unpredicted.Mean()*1e3, mgr.Latency.Unpredicted.N())
	}
	if req := m.Counter.Get(armnet.CtrNewRequested); req > 0 {
		fmt.Fprintf(out, "new-connection block rate: %.4f\n", m.Counter.Ratio(armnet.CtrNewBlocked, armnet.CtrNewRequested))
	}
}
