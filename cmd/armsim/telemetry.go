package main

import (
	"sync"

	"armnet"
	"armnet/internal/runner"
	"armnet/internal/telemetry"
)

// armsimTelemetry is the optional wall-clock observation window into a
// running armsim invocation (-telemetry-addr). It never feeds anything
// back into the simulation: replications publish their finished
// snapshots and span streams into a mutex-guarded store, and the shared
// telemetry server's handlers only read it, so scraping cannot perturb
// the deterministic results.
//
// Endpoints (served by internal/telemetry):
//
//	/metrics  Prometheus text of the replications merged so far
//	          (merged in replication order — the same bytes the
//	          -obs-snapshot file will contain once all are done)
//	/healthz  JSON progress: {"done":N,"total":M,"complete":bool}
//	/spans    tail of the JSONL span stream (?n=lines, default 100)
//	/debug/pprof/...  the standard Go profiles
type armsimTelemetry struct {
	mu    sync.Mutex
	snaps []*armnet.ObsSnapshot // indexed by replication
	spans [][]byte              // indexed by replication
	prog  *runner.Progress
	srv   *telemetry.Server
}

// newTelemetry binds the listener and starts serving immediately, so the
// endpoint answers (with empty data) before the first replication lands.
func newTelemetry(addr string, replications int, prog *runner.Progress) (*armsimTelemetry, error) {
	t := &armsimTelemetry{
		snaps: make([]*armnet.ObsSnapshot, replications),
		spans: make([][]byte, replications),
		prog:  prog,
	}
	srv, err := telemetry.Serve(addr, t.options())
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return t, nil
}

// options wires the replication store into the shared endpoint; split
// out from newTelemetry so tests can mount the handlers on httptest
// without binding a real port.
func (t *armsimTelemetry) options() telemetry.Options {
	return telemetry.Options{
		Metrics: func() ([]byte, error) {
			snap, err := t.merged()
			if err != nil {
				return nil, err
			}
			if snap == nil {
				return nil, nil
			}
			return snap.Prometheus(), nil
		},
		Health: func() any {
			done, total := t.prog.Done(), t.prog.Total()
			return map[string]any{
				"done": done, "total": total, "complete": done >= total,
			}
		},
		Spans: func() []byte {
			t.mu.Lock()
			defer t.mu.Unlock()
			var joined []byte
			for _, s := range t.spans {
				joined = append(joined, s...)
			}
			return joined
		},
	}
}

// publish stores one finished replication's exports.
func (t *armsimTelemetry) publish(i int, snap *armnet.ObsSnapshot, spans []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.snaps) {
		t.snaps[i] = snap
		t.spans[i] = spans
	}
}

// merged folds the snapshots published so far, in replication order.
func (t *armsimTelemetry) merged() (*armnet.ObsSnapshot, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return armnet.MergeObsSnapshots(t.snaps)
}

// close stops the server.
func (t *armsimTelemetry) close() { t.srv.Close() }
