package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"armnet"
	"armnet/internal/runner"
)

// telemetry is the optional wall-clock observation window into a running
// armsim invocation (-telemetry-addr). It never feeds anything back into
// the simulation: replications publish their finished snapshots and span
// streams into a mutex-guarded store, and HTTP handlers only read it, so
// scraping cannot perturb the deterministic results.
//
// Endpoints:
//
//	/metrics  Prometheus text of the replications merged so far
//	          (merged in replication order — the same bytes the
//	          -obs-snapshot file will contain once all are done)
//	/healthz  JSON progress: {"done":N,"total":M,"complete":bool}
//	/spans    tail of the JSONL span stream (?n=lines, default 100)
//	/debug/pprof/...  the standard Go profiles
type telemetry struct {
	mu    sync.Mutex
	snaps []*armnet.ObsSnapshot // indexed by replication
	spans [][]byte              // indexed by replication
	prog  *runner.Progress
	srv   *http.Server
	addr  string
}

// newTelemetry binds the listener and starts serving immediately, so the
// endpoint answers (with empty data) before the first replication lands.
func newTelemetry(addr string, replications int, prog *runner.Progress) (*telemetry, error) {
	t := &telemetry{
		snaps: make([]*armnet.ObsSnapshot, replications),
		spans: make([][]byte, replications),
		prog:  prog,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.metrics)
	mux.HandleFunc("/healthz", t.healthz)
	mux.HandleFunc("/spans", t.spansTail)
	// pprof registers on its own mux here, not the global default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.addr = ln.Addr().String()
	t.srv = &http.Server{Handler: mux}
	go func() { _ = t.srv.Serve(ln) }()
	return t, nil
}

// publish stores one finished replication's exports.
func (t *telemetry) publish(i int, snap *armnet.ObsSnapshot, spans []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.snaps) {
		t.snaps[i] = snap
		t.spans[i] = spans
	}
}

// merged folds the snapshots published so far, in replication order.
func (t *telemetry) merged() (*armnet.ObsSnapshot, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return armnet.MergeObsSnapshots(t.snaps)
}

func (t *telemetry) metrics(w http.ResponseWriter, _ *http.Request) {
	snap, err := t.merged()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if snap != nil {
		_, _ = w.Write(snap.Prometheus())
	}
}

func (t *telemetry) healthz(w http.ResponseWriter, _ *http.Request) {
	done, total := t.prog.Done(), t.prog.Total()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"done": done, "total": total, "complete": done >= total,
	})
}

func (t *telemetry) spansTail(w http.ResponseWriter, r *http.Request) {
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, fmt.Sprintf("bad n %q", v), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	t.mu.Lock()
	joined := bytes.Join(t.spans, nil)
	t.mu.Unlock()
	lines := bytes.SplitAfter(joined, []byte("\n"))
	// SplitAfter leaves a trailing empty element when the stream ends in \n.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = w.Write(bytes.Join(lines, nil))
}

// close stops the server; in-flight handlers are cut off, which is fine
// for a diagnostics endpoint.
func (t *telemetry) close() { _ = t.srv.Close() }
