package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"armnet/internal/obs"
	"armnet/internal/runner"
	"armnet/internal/telemetry"
)

func telemetryGet(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

func snapWith(name string, v float64) *obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter(name, nil).Add(v)
	return reg.Snapshot()
}

// TestArmsimTelemetryEndpoints mounts the armsim store on the shared
// handler without binding a port: replications publish, /metrics serves
// the merge so far, /healthz tracks progress, /spans tails the joined
// stream.
func TestArmsimTelemetryEndpoints(t *testing.T) {
	st := &armsimTelemetry{
		snaps: make([]*obs.Snapshot, 2),
		spans: make([][]byte, 2),
		prog:  runner.NewProgress(2),
	}
	h := telemetry.NewHandler(st.options())

	// Before any replication lands, the endpoints answer with empty data.
	if code, body := telemetryGet(t, h, "/metrics"); code != 200 || body != "" {
		t.Fatalf("empty metrics: %d %q", code, body)
	}
	code, body := telemetryGet(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, `"complete":false`) {
		t.Fatalf("healthz: %d %q", code, body)
	}

	st.publish(0, snapWith("armnet_sim_commits_total", 3), []byte("{\"span\":0}\n"))
	st.publish(1, snapWith("armnet_sim_commits_total", 4), []byte("{\"span\":1}\n"))

	if code, body = telemetryGet(t, h, "/metrics"); code != 200 ||
		!strings.Contains(body, "armnet_sim_commits_total 7") {
		t.Fatalf("merged metrics: %d %q", code, body)
	}
	if code, body = telemetryGet(t, h, "/spans?n=1"); code != 200 || body != "{\"span\":1}\n" {
		t.Fatalf("span tail: %d %q", code, body)
	}
	if code, _ = telemetryGet(t, h, "/spans?n=bogus"); code != 400 {
		t.Fatalf("bad n: %d", code)
	}
	if code, _ = telemetryGet(t, h, "/no-such"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}

	// Out-of-range publishes are dropped, not stored.
	st.publish(7, snapWith("x_total", 1), nil)
	if _, body = telemetryGet(t, h, "/metrics"); strings.Contains(body, "x_total") {
		t.Fatal("out-of-range publish leaked into the merge")
	}
}
