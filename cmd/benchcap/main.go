// Command benchcap captures the repository's benchmark trajectory: it
// runs the benchmark suite area by area with fixed iteration counts,
// parses the `testing.B` output with internal/benchx, and appends one
// entry per area to the BENCH_<area>.json files at the repository root.
// Re-running appends a new trajectory point — it never overwrites — so
// the files accumulate the performance history PR-over-PR, and every
// capture prints a comparison against the previous entry that flags
// >20% regressions.
//
// Usage:
//
//	benchcap [-root dir] [-areas des,maxmin,...] [-note label]
//	benchcap -smoke        # 1-iteration parse-only health check (CI)
//
// Fixed iteration counts (not fixed durations) keep captures cheap and
// make iters a meaningful column; wall-clock comparability across
// machines is judged by the recorded cpu/go_version context fields.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"armnet/internal/benchx"
)

// area is one captured benchmark family: a package, a -bench pattern,
// and the fixed iteration count it runs with.
type area struct {
	Name      string // BENCH_<Name>.json
	Pkg       string // go test package path(s), space-separated, relative to -root
	Pattern   string // -bench regexp
	Benchtime string // fixed -benchtime, always an Nx count
}

// areas is the closed capture set. sim is the whole-world area: the
// campus end-to-end and runner-sweep throughput benchmarks plus the
// grid scale scenario, each a full simulation per iteration.
var areas = []area{
	{Name: "des", Pkg: "./internal/des", Pattern: ".", Benchtime: "50000x"},
	{Name: "admission", Pkg: "./internal/admission", Pattern: ".", Benchtime: "2000x"},
	{Name: "maxmin", Pkg: "./internal/maxmin", Pattern: ".", Benchtime: "500x"},
	{Name: "eventbus", Pkg: "./internal/eventbus", Pattern: ".", Benchtime: "100000x"},
	{Name: "obs", Pkg: "./internal/obs ./internal/obs/live", Pattern: ".", Benchtime: "1000x"},
	{Name: "wire", Pkg: "./internal/wire ./internal/testnet", Pattern: ".", Benchtime: "1000x"},
	{Name: "sim", Pkg: ".", Pattern: "CampusEndToEnd|RunnerSweep|ScaleGridBuilding", Benchtime: "1x"},
	{Name: "arena", Pkg: ".", Pattern: "ArenaHeadToHead", Benchtime: "1x"},
}

func main() {
	var (
		root         = flag.String("root", ".", "repository root: where `go test` runs and BENCH files live")
		areaList     = flag.String("areas", "", "comma-separated areas to capture (default: all)")
		out          = flag.String("out", "", "directory for BENCH_<area>.json files (default: -root)")
		note         = flag.String("note", "", "free-form label recorded on each appended entry")
		benchtime    = flag.String("benchtime", "", "override every area's fixed -benchtime (e.g. 1x)")
		threshold    = flag.Float64("threshold", benchx.DefaultThreshold, "fractional change flagged as regression/improvement")
		smoke        = flag.Bool("smoke", false, "health check: run 1 iteration per benchmark, parse, write nothing")
		failOnRegres = flag.Bool("fail-on-regress", false, "exit non-zero when any benchmark regressed beyond -threshold")
	)
	flag.Parse()

	selected, err := selectAreas(*areaList)
	if err != nil {
		fatal(err)
	}
	outDir := *out
	if outDir == "" {
		outDir = *root
	}
	if *smoke {
		tmp, err := os.MkdirTemp("", "benchcap-smoke-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		outDir = tmp
		*benchtime = "1x"
		*note = "smoke"
	}

	rev := gitRevision(*root)
	regressed := false
	for _, a := range selected {
		bt := a.Benchtime
		if *benchtime != "" {
			bt = *benchtime
		}
		fmt.Printf("== area %s: go test -bench %q -benchtime %s %s\n", a.Name, a.Pattern, bt, a.Pkg)
		parsed, err := runArea(*root, a, bt)
		if err != nil {
			fatal(err)
		}
		entry := benchx.Entry{
			CapturedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			Revision:   rev,
			Note:       *note,
			CPU:        parsed.CPU,
			Pkg:        parsed.Pkg,
			Results:    benchx.MergeResults(parsed.Results),
		}
		path := filepath.Join(outDir, "BENCH_"+a.Name+".json")
		traj, err := benchx.Load(path, a.Name)
		if err != nil {
			fatal(err)
		}
		if last := traj.Last(); last != nil && !*smoke {
			deltas := benchx.Compare(last.Results, entry.Results, *threshold)
			fmt.Printf("-- vs previous entry (%s%s):\n%s", last.CapturedAt, noteSuffix(last.Note), benchx.Report(deltas))
			if len(benchx.Regressions(deltas)) > 0 {
				regressed = true
			}
		}
		traj.Append(entry)
		if err := traj.Save(path); err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s: %d benchmarks, entry %d appended to %s\n",
			a.Name, len(entry.Results), len(traj.Entries), path)
	}
	if *smoke {
		fmt.Printf("smoke ok: %d areas captured and parsed\n", len(selected))
	}
	if regressed && *failOnRegres {
		fatal(fmt.Errorf("benchmark regression beyond %.0f%% threshold", *threshold*100))
	}
}

// runArea executes one area's fixed-iteration bench run and parses it.
// The raw output is echoed on failure so a broken benchmark is
// diagnosable from the capture log alone.
func runArea(root string, a area, benchtime string) (benchx.Parsed, error) {
	cmd := exec.Command("go", append([]string{"test", "-run", "^$", "-bench", a.Pattern,
		"-benchmem", "-benchtime", benchtime}, strings.Fields(a.Pkg)...)...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	runErr := cmd.Run()
	parsed, parseErr := benchx.Parse(bytes.NewReader(buf.Bytes()))
	if parseErr != nil {
		if runErr != nil {
			return benchx.Parsed{}, fmt.Errorf("area %s: %v\n%s", a.Name, runErr, buf.String())
		}
		return benchx.Parsed{}, fmt.Errorf("area %s: %v\n%s", a.Name, parseErr, buf.String())
	}
	if runErr != nil {
		return benchx.Parsed{}, fmt.Errorf("area %s: go test: %v\n%s", a.Name, runErr, buf.String())
	}
	return parsed, nil
}

func selectAreas(list string) ([]area, error) {
	if list == "" {
		return areas, nil
	}
	byName := map[string]area{}
	for _, a := range areas {
		byName[a.Name] = a
	}
	var out []area
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown area %q (have: %s)", name, strings.Join(areaNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func areaNames() []string {
	out := make([]string, len(areas))
	for i, a := range areas {
		out[i] = a.Name
	}
	return out
}

// gitRevision records the short commit hash for the entry's context
// line; a repo without git (or a dirty tree) is not an error.
func gitRevision(root string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	status := exec.Command("git", "status", "--porcelain")
	status.Dir = root
	if s, err := status.Output(); err == nil && len(bytes.TrimSpace(s)) > 0 {
		rev += "+dirty"
	}
	return rev
}

func noteSuffix(note string) string {
	if note == "" {
		return ""
	}
	return ", " + note
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcap:", err)
	os.Exit(1)
}
