package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// runGolden executes the named experiments exactly as `paperfigs -exp
// <name> -seed <seed>` would and returns the stdout bytes. Worker-pool
// stats are discarded: they carry wall-clock timings and must never be
// part of the comparable output.
func runGolden(t *testing.T, names []string, seed int64, parallel int) []byte {
	t.Helper()
	var buf bytes.Buffer
	o := opts{seed: seed, horizon: 200, walkBys: 400, parallel: parallel, out: &buf, statsOut: io.Discard}
	if err := runExperiments(names, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTable2Golden pins `paperfigs -exp table2 -seed 1` to a checked-in
// fixture so experiment refactors cannot silently drift the paper's
// admission table.
func TestTable2Golden(t *testing.T) {
	got := runGolden(t, []string{"table2"}, 1, 1)
	golden := filepath.Join("testdata", "table2.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/paperfigs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("table2 output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestCampusTraceGolden pins the head of the seed-1 predictive campus
// event trace (the stream `paperfigs -exp campus -trace FILE` writes) to
// a checked-in fixture: any drift in event taxonomy, payload encoding,
// stamping, or publication order of the control plane shows up as a diff
// here. Only the first lines are pinned to keep the fixture reviewable;
// full-trace determinism is covered by internal/sim.
func TestCampusTraceGolden(t *testing.T) {
	const head = 50
	trace, err := campusTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(trace, []byte("\n"))
	if len(lines) < head {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	got := bytes.Join(lines[:head], nil)
	golden := filepath.Join("testdata", "campustrace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/paperfigs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("campus event trace drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestTheorem1OutputIdenticalAcrossWorkers is the CLI-level replication
// check: the rows printed for -exp theorem1 must be byte-identical at any
// -parallel value.
func TestTheorem1OutputIdenticalAcrossWorkers(t *testing.T) {
	base := runGolden(t, []string{"theorem1"}, 1, 1)
	for _, workers := range []int{2, 8, 0} {
		if got := runGolden(t, []string{"theorem1"}, 1, workers); !bytes.Equal(got, base) {
			t.Fatalf("-parallel %d output differs from -parallel 1:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, base)
		}
	}
}

// TestResolveExperiments covers the -exp flag parser.
func TestResolveExperiments(t *testing.T) {
	names, err := resolveExperiments("all")
	if err != nil || len(names) != len(experimentOrder) {
		t.Fatalf("all: names=%v err=%v", names, err)
	}
	names, err = resolveExperiments("table2,theorem1")
	if err != nil || len(names) != 2 || names[0] != "table2" || names[1] != "theorem1" {
		t.Fatalf("list: names=%v err=%v", names, err)
	}
	if _, err := resolveExperiments("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	for _, name := range experimentOrder {
		if _, ok := runners[name]; !ok {
			t.Fatalf("experimentOrder entry %q has no runner", name)
		}
	}
}
