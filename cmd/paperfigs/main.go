// Command paperfigs regenerates every table and figure of the paper's
// evaluation section and prints the same rows/series the paper reports.
//
// Usage:
//
//	paperfigs -exp all            # run everything
//	paperfigs -exp fig5 -seed 7   # one experiment, chosen seed
//	paperfigs -exp fig6 -horizon 400
//	paperfigs -exp theorem1 -parallel 8   # fan trials across 8 workers
//
// Experiments: table1, table2, fig2, fig4, fig5, fig6, theorem1, campus,
// tth, bounds, corridor, all.
//
// Multi-trial experiments (theorem1, campus, tth) fan their independent
// trials across -parallel workers. Replication is deterministic: the rows
// printed to stdout are byte-identical at any worker count, so figures can
// be regenerated at full speed and diffed against archived output. The
// worker-pool stats (wall time, speedup) go to stderr, keeping stdout
// clean for comparison.
//
// With -trace FILE the campus experiment additionally writes its
// predictive-mode run as a JSONL control-plane event trace (one stamped
// event per line) — the stream the campustrace golden test pins.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"armnet"
	"armnet/internal/profile"
	"armnet/internal/sched"
	"armnet/internal/stats"
)

// opts carries the flag values and output streams through the experiment
// runners. Deterministic experiment rows go to out; timing-dependent
// worker-pool stats go to statsOut so out stays byte-comparable.
type opts struct {
	seed      int64
	horizon   float64
	walkBys   int
	parallel  int
	tracePath string
	obsPath   string
	out       io.Writer
	statsOut  io.Writer
}

// experimentOrder is the -exp all sequence.
var experimentOrder = []string{
	"table1", "table2", "fig2", "fig4", "fig5", "fig6",
	"theorem1", "campus", "tth", "bounds", "corridor",
}

// runners maps experiment names to their implementations.
var runners = map[string]func(opts) error{
	"table1":   table1,
	"table2":   table2,
	"fig2":     fig2,
	"fig4":     fig4,
	"fig5":     fig5,
	"fig6":     fig6,
	"theorem1": theorem1,
	"campus":   campus,
	"tth":      tth,
	"bounds":   bounds,
	"corridor": corridor,
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experimentOrder, ", ")+", all")
	seed := flag.Int64("seed", 1, "random seed")
	horizon := flag.Float64("horizon", 200, "figure-6 simulation horizon (seconds)")
	walkBys := flag.Int("walkbys", 400, "figure-5 corridor through-traffic volume")
	parallel := flag.Int("parallel", 1, "worker count for multi-trial experiments (0 = GOMAXPROCS); output is identical at any worker count")
	tracePath := flag.String("trace", "", "write the campus experiment's predictive-mode run as a JSONL event trace to this file")
	obsPath := flag.String("obs-snapshot", "", "write the campus experiment's predictive-mode instrument snapshot as Prometheus text to this file")
	flag.Parse()

	o := opts{
		seed: *seed, horizon: *horizon, walkBys: *walkBys, parallel: *parallel,
		tracePath: *tracePath, obsPath: *obsPath,
		out: os.Stdout, statsOut: os.Stderr,
	}
	names, err := resolveExperiments(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := runExperiments(names, o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// resolveExperiments expands the -exp flag into the list of runner names.
func resolveExperiments(exp string) ([]string, error) {
	if exp == "all" {
		return experimentOrder, nil
	}
	var names []string
	for _, name := range strings.Split(exp, ",") {
		if _, ok := runners[name]; !ok {
			return nil, fmt.Errorf("unknown experiment %q (have: %s, all)", name, strings.Join(experimentOrder, ", "))
		}
		names = append(names, name)
	}
	return names, nil
}

// runExperiments executes the named experiments against o in order.
func runExperiments(names []string, o opts) error {
	for _, name := range names {
		fmt.Fprintf(o.out, "==== %s ====\n", name)
		if err := runners[name](o); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(o.out)
	}
	return nil
}

// table1 builds live profiles on the campus and prints their contents per
// cell class — the structure of the paper's Table 1.
func table1(o opts) error {
	env, err := armnet.BuildFigure4("faculty", []string{"stu-a", "stu-b", "stu-c"})
	if err != nil {
		return err
	}
	fmt.Fprintln(o.out, "cell profiles (type, handoff activity, contents):")
	tb := stats.Table{Header: []string{"cell", "class", "omega(c)", "eta(c)"}}
	for _, c := range env.Universe.Cells() {
		occ := strings.Join(c.Occupants, ",")
		if occ == "" {
			occ = "-"
		}
		nbs := make([]string, 0)
		for _, n := range c.Neighbors() {
			nbs = append(nbs, string(n))
		}
		tb.AddRow(string(c.ID), c.Class.String(), occ, strings.Join(nbs, ","))
	}
	fmt.Fprint(o.out, tb.String())
	// Portable-profile triplet demonstration.
	pp := profile.NewPortableProfile("faculty", 100)
	pp.Record(profile.Handoff{Portable: "faculty", Prev: "C", From: "D", To: "A"})
	next, ok := pp.Predict("C", "D")
	fmt.Fprintf(o.out, "portable profile triplet: <prev=C, cur=D> -> next-prd-cell=%s (ok=%v)\n", next, ok)
	return nil
}

func table2(o opts) error {
	for _, d := range []sched.Discipline{sched.DisciplineWFQ, sched.DisciplineRCSP} {
		r, err := armnet.RunTable2(armnet.Table2Config{Discipline: d})
		if err != nil {
			return err
		}
		fmt.Fprint(o.out, r.String())
	}
	return nil
}

func fig2(o opts) error {
	r, err := armnet.RunFigure2(armnet.Figure2Config{Seed: o.seed, Students: 40})
	if err != nil {
		return err
	}
	fmt.Fprintln(o.out, "handoff activity in a lounge (meeting room), per 5-minute slot:")
	fmt.Fprint(o.out, r.String())
	return nil
}

func fig4(o opts) error {
	r, err := armnet.RunFigure4(armnet.Figure4Config{Seed: o.seed})
	if err != nil {
		return err
	}
	fmt.Fprint(o.out, r.String())
	return nil
}

func fig5(o opts) error {
	rs, err := armnet.RunFigure5Comparison(o.seed, o.walkBys)
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"students", "offered-load", "algorithm", "drops", "handoffs"}}
	for _, r := range rs {
		tb.AddRow(r.Students, fmt.Sprintf("%.0f%%", r.OfferedLoad*100), r.Algorithm.String(), r.Drops, r.HandoffAttempts)
	}
	fmt.Fprintln(o.out, "paper: 35 students @59% -> brute-force 2, aggregation 0, meeting-room 0 drops")
	fmt.Fprintln(o.out, "       55 students @94% -> brute-force 7, aggregation 4, meeting-room 0 drops")
	fmt.Fprint(o.out, tb.String())
	// Figure 5(a): handoffs into the classroom around the start.
	last := rs[len(rs)-1]
	fmt.Fprintln(o.out, "fig 5(a): handoffs into the classroom per minute (55-student run):")
	printSpark(o.out, last.IntoRoom, 50, 75)
	fmt.Fprintln(o.out, "fig 5(c): handoffs out of the classroom per minute:")
	printSpark(o.out, last.OutOfRoom, 100, 125)
	return nil
}

func printSpark(w io.Writer, series []int, lo, hi int) {
	if hi > len(series) {
		hi = len(series)
	}
	if lo < 0 || lo >= hi {
		lo = 0
	}
	for i := lo; i < hi; i++ {
		fmt.Fprintf(w, "  min %3d |%s %d\n", i, strings.Repeat("#", series[i]), series[i])
	}
}

func fig6(o opts) error {
	curves, err := armnet.RunFigure6Sweep(o.seed, nil, nil, o.horizon)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.out, "P_d vs P_b family over the window T (paper: curves for small T dominate;")
	fmt.Fprintln(o.out, "all curves coincide at large P_d):")
	for _, c := range curves {
		fmt.Fprintf(o.out, "T = %v\n", c.T)
		tb := stats.Table{Header: []string{"P_QOS", "P_d", "P_b", "mean-reserved"}}
		for _, p := range c.Points {
			tb.AddRow(p.PQoS, p.Pd, p.Pb, p.MeanReserved)
		}
		fmt.Fprint(o.out, tb.String())
	}
	return nil
}

// campusCfg is the campus experiment's configuration at a given seed
// (mode left zero = predictive; the comparison runner overrides it).
func campusCfg(seed int64) armnet.CampusConfig {
	return armnet.CampusConfig{Seed: seed, Portables: 24, Duration: 2400}
}

// campusTrace reruns the predictive-mode campus scenario with a JSONL
// event recorder attached and returns the trace bytes (-trace flag and
// the campustrace golden test).
func campusTrace(seed int64) ([]byte, error) {
	_, trace, err := armnet.RunCampusTrace(campusCfg(seed))
	return trace, err
}

// campus is the extension experiment: the integrated manager under the
// three reservation modes on random-walk mobility, one worker per mode.
func campus(o opts) error {
	rs, st, err := armnet.RunCampusComparisonParallel(context.Background(), campusCfg(o.seed), o.parallel)
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"mode", "drop-rate", "block-rate", "reservations", "pool-claims", "pred-share", "lat-pred(ms)", "lat-unpred(ms)"}}
	for _, r := range rs {
		tb.AddRow(r.Mode.String(), r.DropRate, r.BlockRate, r.AdvanceReservations, r.PoolClaims,
			r.PredictedShare, r.PredictedLatency*1e3, r.UnpredictedLatency*1e3)
	}
	fmt.Fprint(o.out, tb.String())
	fmt.Fprintf(o.statsOut, "campus: %s\n", st)
	if o.tracePath != "" {
		trace, err := campusTrace(o.seed)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.tracePath, trace, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.statsOut, "campus: wrote event trace to %s\n", o.tracePath)
	}
	if o.obsPath != "" {
		_, snap, err := armnet.RunCampusObs(campusCfg(o.seed))
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.obsPath, snap.Prometheus(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.statsOut, "campus: wrote instrument snapshot to %s\n", o.obsPath)
	}
	return nil
}

// tth sweeps the static/mobile threshold T_th (DESIGN.md's ablation), one
// worker per threshold point.
func tth(o opts) error {
	points, st, err := armnet.RunTthSensitivityParallel(context.Background(), campusCfg(o.seed), nil, o.parallel)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.out, "T_th sensitivity (small T_th flips portables static early):")
	tb := stats.Table{Header: []string{"T_th(s)", "drop-rate", "block-rate", "reservations", "pool-claims", "pred-share"}}
	for _, p := range points {
		tb.AddRow(p.Tth, p.DropRate, p.BlockRate, p.AdvanceReservations, p.PoolClaims, p.PredictedShare)
	}
	fmt.Fprint(o.out, tb.String())
	fmt.Fprintf(o.statsOut, "tth: %s\n", st)
	return nil
}

// bounds is the extension experiment quantifying §2.1: loose QoS bounds
// vs rigid reservations on a fading wireless link.
func bounds(o opts) error {
	loose, rigid, err := armnet.RunBounds(armnet.BoundsConfig{Seed: o.seed})
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"scenario", "admitted", "overcommit-time", "mean-utilization"}}
	tb.AddRow("loose [b_min,b_max]", loose.Admitted, loose.OvercommitFraction, loose.MeanUtilization)
	tb.AddRow("rigid (midpoint)", rigid.Admitted, rigid.OvercommitFraction, rigid.MeanUtilization)
	fmt.Fprint(o.out, tb.String())
	return nil
}

// corridor validates §6.1's linear-movement claim.
func corridor(o opts) error {
	r, err := armnet.RunCorridor(o.seed, 6, 200)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "corridor linear prediction: %d transits, accuracy %.3f\n", r.Transits, r.Accuracy())
	return nil
}

func theorem1(o opts) error {
	for _, refined := range []bool{false, true} {
		r, st, err := armnet.RunTheorem1Parallel(context.Background(), armnet.Theorem1Config{
			Seed: o.seed, Instances: 20, Refined: refined, Perturb: true,
		}, o.parallel)
		if err != nil {
			return err
		}
		fmt.Fprintln(o.out, r.String())
		fmt.Fprintf(o.statsOut, "theorem1 refined=%v: %s\n", refined, st)
	}
	return nil
}
