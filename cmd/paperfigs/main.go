// Command paperfigs regenerates every table and figure of the paper's
// evaluation section and prints the same rows/series the paper reports.
//
// Usage:
//
//	paperfigs -exp all            # run everything
//	paperfigs -exp fig5 -seed 7   # one experiment, chosen seed
//	paperfigs -exp fig6 -horizon 400
//
// Experiments: table1, table2, fig2, fig4, fig5, fig6, theorem1, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"armnet"
	"armnet/internal/profile"
	"armnet/internal/sched"
	"armnet/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig2, fig4, fig5, fig6, theorem1, all")
	seed := flag.Int64("seed", 1, "random seed")
	horizon := flag.Float64("horizon", 200, "figure-6 simulation horizon (seconds)")
	walkBys := flag.Int("walkbys", 400, "figure-5 corridor through-traffic volume")
	flag.Parse()

	runners := map[string]func() error{
		"table1":   func() error { return table1(*seed) },
		"table2":   table2,
		"fig2":     func() error { return fig2(*seed) },
		"fig4":     func() error { return fig4(*seed) },
		"fig5":     func() error { return fig5(*seed, *walkBys) },
		"fig6":     func() error { return fig6(*seed, *horizon) },
		"theorem1": func() error { return theorem1(*seed) },
		"campus":   func() error { return campus(*seed) },
		"bounds":   func() error { return bounds(*seed) },
		"corridor": func() error { return corridor(*seed) },
	}
	order := []string{"table1", "table2", "fig2", "fig4", "fig5", "fig6", "theorem1", "campus", "bounds", "corridor"}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have: %s, all)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			toRun = append(toRun, name)
		}
	}
	for _, name := range toRun {
		fmt.Printf("==== %s ====\n", name)
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// table1 builds live profiles on the campus and prints their contents per
// cell class — the structure of the paper's Table 1.
func table1(seed int64) error {
	_ = seed
	env, err := armnet.BuildFigure4("faculty", []string{"stu-a", "stu-b", "stu-c"})
	if err != nil {
		return err
	}
	fmt.Println("cell profiles (type, handoff activity, contents):")
	tb := stats.Table{Header: []string{"cell", "class", "omega(c)", "eta(c)"}}
	for _, c := range env.Universe.Cells() {
		occ := strings.Join(c.Occupants, ",")
		if occ == "" {
			occ = "-"
		}
		nbs := make([]string, 0)
		for _, n := range c.Neighbors() {
			nbs = append(nbs, string(n))
		}
		tb.AddRow(string(c.ID), c.Class.String(), occ, strings.Join(nbs, ","))
	}
	fmt.Print(tb.String())
	// Portable-profile triplet demonstration.
	pp := profile.NewPortableProfile("faculty", 100)
	pp.Record(profile.Handoff{Portable: "faculty", Prev: "C", From: "D", To: "A"})
	next, ok := pp.Predict("C", "D")
	fmt.Printf("portable profile triplet: <prev=C, cur=D> -> next-prd-cell=%s (ok=%v)\n", next, ok)
	return nil
}

func table2() error {
	for _, d := range []sched.Discipline{sched.DisciplineWFQ, sched.DisciplineRCSP} {
		r, err := armnet.RunTable2(armnet.Table2Config{Discipline: d})
		if err != nil {
			return err
		}
		fmt.Print(r.String())
	}
	return nil
}

func fig2(seed int64) error {
	r, err := armnet.RunFigure2(armnet.Figure2Config{Seed: seed, Students: 40})
	if err != nil {
		return err
	}
	fmt.Println("handoff activity in a lounge (meeting room), per 5-minute slot:")
	fmt.Print(r.String())
	return nil
}

func fig4(seed int64) error {
	r, err := armnet.RunFigure4(armnet.Figure4Config{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	return nil
}

func fig5(seed int64, walkBys int) error {
	rs, err := armnet.RunFigure5Comparison(seed, walkBys)
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"students", "offered-load", "algorithm", "drops", "handoffs"}}
	for _, r := range rs {
		tb.AddRow(r.Students, fmt.Sprintf("%.0f%%", r.OfferedLoad*100), r.Algorithm.String(), r.Drops, r.HandoffAttempts)
	}
	fmt.Println("paper: 35 students @59% -> brute-force 2, aggregation 0, meeting-room 0 drops")
	fmt.Println("       55 students @94% -> brute-force 7, aggregation 4, meeting-room 0 drops")
	fmt.Print(tb.String())
	// Figure 5(a): handoffs into the classroom around the start.
	last := rs[len(rs)-1]
	fmt.Println("fig 5(a): handoffs into the classroom per minute (55-student run):")
	printSpark(last.IntoRoom, 50, 75)
	fmt.Println("fig 5(c): handoffs out of the classroom per minute:")
	printSpark(last.OutOfRoom, 100, 125)
	return nil
}

func printSpark(series []int, lo, hi int) {
	if hi > len(series) {
		hi = len(series)
	}
	if lo < 0 || lo >= hi {
		lo = 0
	}
	for i := lo; i < hi; i++ {
		fmt.Printf("  min %3d |%s %d\n", i, strings.Repeat("#", series[i]), series[i])
	}
}

func fig6(seed int64, horizon float64) error {
	curves, err := armnet.RunFigure6Sweep(seed, nil, nil, horizon)
	if err != nil {
		return err
	}
	fmt.Println("P_d vs P_b family over the window T (paper: curves for small T dominate;")
	fmt.Println("all curves coincide at large P_d):")
	for _, c := range curves {
		fmt.Printf("T = %v\n", c.T)
		tb := stats.Table{Header: []string{"P_QOS", "P_d", "P_b", "mean-reserved"}}
		for _, p := range c.Points {
			tb.AddRow(p.PQoS, p.Pd, p.Pb, p.MeanReserved)
		}
		fmt.Print(tb.String())
	}
	return nil
}

// campus is the extension experiment: the integrated manager under the
// three reservation modes on random-walk mobility.
func campus(seed int64) error {
	rs, err := armnet.RunCampusComparison(armnet.CampusConfig{Seed: seed, Portables: 24, Duration: 2400})
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"mode", "drop-rate", "block-rate", "reservations", "pool-claims", "pred-share", "lat-pred(ms)", "lat-unpred(ms)"}}
	for _, r := range rs {
		tb.AddRow(r.Mode.String(), r.DropRate, r.BlockRate, r.AdvanceReservations, r.PoolClaims,
			r.PredictedShare, r.PredictedLatency*1e3, r.UnpredictedLatency*1e3)
	}
	fmt.Print(tb.String())
	return nil
}

// bounds is the extension experiment quantifying §2.1: loose QoS bounds
// vs rigid reservations on a fading wireless link.
func bounds(seed int64) error {
	loose, rigid, err := armnet.RunBounds(armnet.BoundsConfig{Seed: seed})
	if err != nil {
		return err
	}
	tb := stats.Table{Header: []string{"scenario", "admitted", "overcommit-time", "mean-utilization"}}
	tb.AddRow("loose [b_min,b_max]", loose.Admitted, loose.OvercommitFraction, loose.MeanUtilization)
	tb.AddRow("rigid (midpoint)", rigid.Admitted, rigid.OvercommitFraction, rigid.MeanUtilization)
	fmt.Print(tb.String())
	return nil
}

// corridor validates §6.1's linear-movement claim.
func corridor(seed int64) error {
	r, err := armnet.RunCorridor(seed, 6, 200)
	if err != nil {
		return err
	}
	fmt.Printf("corridor linear prediction: %d transits, accuracy %.3f\n", r.Transits, r.Accuracy())
	return nil
}

func theorem1(seed int64) error {
	for _, refined := range []bool{false, true} {
		r, err := armnet.RunTheorem1(armnet.Theorem1Config{
			Seed: seed, Instances: 20, Refined: refined, Perturb: true,
		})
		if err != nil {
			return err
		}
		fmt.Println(r.String())
	}
	return nil
}
