package armnet_test

import (
	"fmt"

	"armnet"
)

// ExampleNetwork shows the core loop: place a portable, open a
// QoS-bounded connection, let it adapt while static, and hand off.
func ExampleNetwork() {
	env, _ := armnet.BuildCampus()
	net, _ := armnet.NewNetwork(env, armnet.Config{Seed: 42, Tth: 120})

	_ = net.PlacePortable("alice", "off-1")
	id, _ := net.OpenConnection("alice", armnet.Request{
		Bandwidth: armnet.Bounds{Min: 64e3, Max: 256e3},
		Delay:     2, Jitter: 2, Loss: 0.02,
		Traffic: armnet.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	})
	fmt.Printf("admitted at %.0f b/s\n", net.Connection(id).Bandwidth)

	_ = net.RunUntil(300) // past T_th: alice is static, upgraded
	fmt.Printf("%s portable at %.0f b/s\n",
		net.Portable("alice").Mobility, net.Connection(id).Bandwidth)

	_ = net.HandoffPortable("alice", "cor-w1")
	fmt.Printf("after handoff: %.0f b/s in %s\n",
		net.Connection(id).Bandwidth, net.Portable("alice").Cell)
	// Output:
	// admitted at 64000 b/s
	// static portable at 256000 b/s
	// after handoff: 64000 b/s in cor-w1
}

// ExampleRunTable2 regenerates the Table 2 admission rows for a 3-hop
// path under WFQ.
func ExampleRunTable2() {
	r, _ := armnet.RunTable2(armnet.Table2Config{})
	fmt.Printf("admitted=%v bandwidth=%.0f hops=%d\n",
		r.Admitted, r.Bandwidth, len(r.Hops))
	fmt.Printf("delay floor %.4fs within bound %.1fs\n",
		r.DelayFloor, r.Config.Request.Delay)
	// Output:
	// admitted=true bandwidth=64000 hops=3
	// delay floor 0.6408s within bound 2.0s
}

// ExampleErlangB evaluates the analytic blocking probability used to
// validate the Figure 6 simulator.
func ExampleErlangB() {
	fmt.Printf("%.4f\n", armnet.ErlangB(6, 10))
	// Output:
	// 0.0431
}
