// Dataplane: close the loop between admission control and packets on the
// wire. A connection is admitted with Table-2 guarantees; its traffic then
// runs on the packet-level data path (per-link WFQ servers, wireless
// loss), with a greedy competitor alongside. The measured delay and loss
// must sit inside the admitted bounds — and do.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.PlacePortable("alice", "off-1"); err != nil {
		log.Fatal(err)
	}
	req := armnet.Request{
		Bandwidth: armnet.Bounds{Min: 256e3, Max: 256e3},
		Delay:     2, Jitter: 2, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: 32e3, Rho: 256e3},
	}
	id, err := net.OpenConnection("alice", req)
	if err != nil {
		log.Fatal(err)
	}
	conn := net.Connection(id)

	dp, err := net.NewDataplane(armnet.DataplaneOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if err := dp.StartFlow(id, conn.Route, conn.Bandwidth, req.Traffic); err != nil {
		log.Fatal(err)
	}
	// A greedy best-effort competitor on the same path, sourcing far
	// beyond its share: WFQ must protect alice.
	if err := dp.StartFlow("greedy", conn.Route, 1.3e6, armnet.TrafficSpec{Sigma: 64e3, Rho: 3e6}); err != nil {
		log.Fatal(err)
	}

	if err := net.RunUntil(30); err != nil {
		log.Fatal(err)
	}
	st := dp.Stats(id)
	fmt.Printf("admitted: bandwidth %.0f b/s, delay bound %.3fs, loss bound %.3f\n",
		conn.Bandwidth, req.Delay, req.Loss)
	fmt.Printf("measured: %d packets delivered\n", st.Delivered)
	fmt.Printf("          delay mean %.4fs  max %.4fs  (bound %.3fs)\n",
		st.Delay.Mean(), st.Delay.Max(), req.Delay)
	fmt.Printf("          loss %.4f (bound %.3f)\n", st.LossRate(), req.Loss)
	if st.Delay.Max() <= req.Delay && st.LossRate() <= req.Loss {
		fmt.Println("the admitted QoS held on the wire despite the greedy competitor.")
	} else {
		fmt.Println("BOUND VIOLATED — this should never print.")
	}
}
