// Meetingroom: the booking-calendar policy of §6.2.1 on the integrated
// network. A meeting is registered in the campus meeting room; the base
// station advance-reserves attendee slots ahead of the start, shrinks the
// reservation as attendees arrive, and asks the neighbors to hold
// bandwidth for the departures at the conclusion.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 3, SlotDuration: 60})
	if err != nil {
		log.Fatal(err)
	}

	const start, end = 1800.0, 3600.0
	const attendees = 10
	if err := net.RegisterMeeting("meet", armnet.Meeting{Start: start, End: end, Attendees: attendees}); err != nil {
		log.Fatal(err)
	}

	mgr := net.Manager()
	wireless := func(cell armnet.CellID) float64 {
		bs := env.Universe.Cell(cell).BaseStation
		return mgr.Ledger().Link(env.Backbone.Link(bs, armnet.AirNode(cell)).ID).AdvanceReserved
	}
	report := func(label string) {
		room := wireless("meet")
		var neighbors float64
		for _, nid := range env.Universe.Cell("meet").Neighbors() {
			neighbors += wireless(nid)
		}
		fmt.Printf("t=%5.0fs  %-28s room-reserved=%8.0f b/s  neighbor-reserved=%8.0f b/s\n",
			net.Now(), label, room, neighbors)
	}

	// Attendees trickle in around the start.
	for i := 0; i < attendees; i++ {
		i := i
		at := start - 300 + float64(i)*40
		net.Schedule(at, func() {
			id := fmt.Sprintf("att-%d", i)
			if err := net.PlacePortable(id, "cor-e1"); err != nil {
				return
			}
			// Each attendee carries a 16 kb/s audio connection.
			_, _ = net.OpenConnection(id, armnet.Request{
				Bandwidth: armnet.Bounds{Min: 16e3, Max: 64e3},
				Delay:     5, Jitter: 5, Loss: 0.05,
				Traffic: armnet.TrafficSpec{Sigma: 4e3, Rho: 16e3},
			})
			_ = net.HandoffPortable(id, "meet")
		})
	}
	// And leave after the end.
	for i := 0; i < attendees; i++ {
		i := i
		net.Schedule(end+30+float64(i)*20, func() {
			_ = net.HandoffPortable(fmt.Sprintf("att-%d", i), "cor-e1")
		})
	}

	checkpoints := []struct {
		t     float64
		label string
	}{
		{start - 700, "before the lead-in window"},
		{start - 500, "lead-in: full N_m reserved"},
		{start - 100, "most attendees arrived"},
		{start + 400, "post-start release expired"},
		{end - 100, "conclusion: neighbors reserve"},
		{end + 1000, "end release expired"},
	}
	for _, cp := range checkpoints {
		cp := cp
		net.Schedule(cp.t, func() { report(cp.label) })
	}
	if err := net.RunUntil(end + 1200); err != nil {
		log.Fatal(err)
	}

	m := net.Metrics().Counter
	fmt.Printf("\nhandoffs: %d attempted, %d dropped\n",
		m.Get(armnet.CtrHandoffTried), m.Get(armnet.CtrHandoffDropped))
}
