// Overload: pack one campus cell far past its downlink capacity and
// watch the staged overload controller respond. Early arrivals adapt up
// toward b_max; as utilization crosses the degrade watermark their
// excess is cascaded back to b_min, then new setups are shed by
// priority — and through all of it a roaming portable hands off into
// the hot cell without being dropped, which the auditor proves.
package main

import (
	"errors"
	"fmt"
	"log"

	"armnet"
)

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	pol := armnet.DefaultOverloadPolicy()
	net, err := armnet.NewNetwork(env, armnet.Config{
		Seed: 1,
		// Aggressive static classification: the crowd sits still, so
		// their connections become adaptable — and degradable — fast.
		Tth:      60,
		Overload: &pol,
	})
	if err != nil {
		log.Fatal(err)
	}
	aud := net.OverloadAuditor()

	req := armnet.Request{
		Bandwidth: armnet.Bounds{Min: 160e3, Max: 320e3},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: 40e3, Rho: 160e3},
	}
	// Twelve portables crowd into off-1, ten seconds apart, two
	// connections each: 24 × 160 kb/s of guaranteed minimum against a
	// 1.6 Mb/s downlink. The cell must escalate.
	for i := 0; i < 12; i++ {
		who := fmt.Sprintf("p%02d", i)
		at := float64(i) * 10
		net.Schedule(at, func() {
			if err := net.PlacePortable(who, "off-1"); err != nil {
				log.Fatal(err)
			}
			report := func(err error) {
				switch {
				case errors.Is(err, armnet.ErrBusy):
					fmt.Printf("t=%5.1fs %s: breaker open, fast-failed\n", net.Now(), who)
				case err != nil:
					fmt.Printf("t=%5.1fs %s: refused: %v\n", net.Now(), who, err)
				}
			}
			for c := 0; c < 2; c++ {
				if err := net.OpenConnectionAsync(who, req, func(id string, err error) { report(err) }); err != nil {
					report(err)
				}
			}
		})
	}
	// The roamer holds a connection in the neighboring office and hands
	// off into the packed cell at peak load. Degrade-before-drop says
	// the cascade must free its minimum before anyone considers a drop.
	if err := net.PlacePortable("roamer", "off-2"); err != nil {
		log.Fatal(err)
	}
	if _, err := net.OpenConnection("roamer", req); err != nil {
		log.Fatal(err)
	}
	net.Schedule(130, func() {
		if err := net.HandoffPortable("roamer", "off-1"); err != nil {
			fmt.Printf("t=%5.1fs roamer: handoff failed: %v\n", net.Now(), err)
		} else {
			fmt.Printf("t=%5.1fs roamer: handed off into the overloaded cell\n", net.Now())
		}
	})

	if err := net.RunUntil(300); err != nil {
		log.Fatal(err)
	}

	c := net.Metrics().Counter
	fmt.Printf("\ndegrade cascades:   %d\n", c.Get(armnet.CtrDegradeCascades))
	fmt.Printf("setups shed:        %d\n", c.Get(armnet.CtrShedSetups))
	fmt.Printf("breaker trips:      %d\n", c.Get(armnet.CtrBreakerTrips))
	fmt.Printf("breaker fast-fails: %d\n", c.Get(armnet.CtrBreakerFastFails))
	fmt.Printf("handoffs dropped:   %d\n", c.Get(armnet.CtrHandoffDropped))

	if len(aud.Violations) > 0 {
		fmt.Println("\ndegrade-before-drop VIOLATED:")
		for _, v := range aud.Violations {
			fmt.Println(" ", v)
		}
		return
	}
	fmt.Println("\ndegrade-before-drop holds: every drop was a last resort")
}
