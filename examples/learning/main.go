// Learning: the §6.4 learning process. A building is commissioned with no
// cell classes configured — every cell starts unknown and uses the default
// reservation algorithm. As portables move, the zone profile servers
// aggregate handoffs; LearnClasses then infers each cell's class from its
// behaviour: the office from its tiny regular population, the corridors
// from their consistent pass-through movement.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	// An unlabeled wing: in reality an office, two corridor segments and
	// a lounge — but the network does not know that yet.
	u := armnet.NewUniverse()
	u.MustAddCell(armnet.Cell{ID: "room-1", Class: armnet.ClassUnknown, Capacity: 1.6e6,
		Occupants: []string{"prof"}})
	for _, id := range []armnet.CellID{"hall-1", "hall-2", "commons"} {
		u.MustAddCell(armnet.Cell{ID: id, Class: armnet.ClassUnknown, Capacity: 1.6e6})
	}
	u.MustConnect("room-1", "hall-1")
	u.MustConnect("hall-1", "hall-2")
	u.MustConnect("hall-2", "commons")
	bb, hosts, err := armnet.BuildBackbone(u, armnet.BackboneOptions{})
	if err != nil {
		log.Fatal(err)
	}
	env := &armnet.Environment{Universe: u, Backbone: bb, Hosts: hosts}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("before observation:")
	for _, c := range u.Cells() {
		fmt.Printf("  %-8s %s\n", c.ID, c.Class)
	}

	// The professor commutes commons <-> room-1 through the halls, over
	// and over; anonymous visitors pass through the halls both ways.
	if err := net.PlacePortable("prof", "commons"); err != nil {
		log.Fatal(err)
	}
	walk := func(id string, path ...armnet.CellID) {
		for _, c := range path {
			_ = net.HandoffPortable(id, c)
		}
	}
	for day := 0; day < 25; day++ {
		walk("prof", "hall-2", "hall-1", "room-1")
		walk("prof", "hall-1", "hall-2", "commons")
	}
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("visitor-%d", i)
		if i%2 == 0 {
			if err := net.PlacePortable(id, "commons"); err != nil {
				log.Fatal(err)
			}
			walk(id, "hall-2", "hall-1")
			walk(id, "hall-2", "commons")
		} else {
			if err := net.PlacePortable(id, "hall-1"); err != nil {
				log.Fatal(err)
			}
			walk(id, "hall-2", "commons")
		}
		net.RemovePortable(id)
	}

	changed := net.LearnClasses()
	fmt.Printf("\nlearning pass classified %d cells:\n", len(changed))
	for _, c := range u.Cells() {
		fmt.Printf("  %-8s %s\n", c.ID, c.Class)
	}
}
