// Campus: the paper's Figure 4 environment with profile-based prediction.
// Regular occupants commute between the corridor and their offices for a
// simulated workweek; the profile servers learn their habits, and we
// report how often the three-level predictor places the advance
// reservation in the right cell — versus the brute-force baseline that
// reserves in every neighbor.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	res, err := armnet.RunFigure4(armnet.Figure4Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ECE-building workweek (calibrated to the paper's measured handoffs)")
	fmt.Println()
	fmt.Print(res.String())
	fmt.Println()

	waste := float64(res.Crowd.BruteForceCells) / float64(res.Crowd.ReservedCells)
	fmt.Printf("brute force reserves %.1fx more cells than prediction for the anonymous crowd.\n", waste)
	fmt.Println()
	fmt.Println("paper's conclusions reproduced:")
	fmt.Printf("  (a) deterministic reservation for office occupants is valid: faculty %.0f%%, students %.0f%% accurate\n",
		res.Faculty.Accuracy()*100, res.Students.Accuracy()*100)
	fmt.Printf("  (b) brute-force advance reservation in all neighbors is extremely wasteful (%.0fx)\n", waste)
}
