// Faults: run the campus under a deterministic chaos schedule — a lossy
// control plane, a cell outage, and a signaling-plane crash — then audit
// the recovery invariants. The network retransmits lost setup messages,
// reclaims crash-orphaned holds by lease, and re-ADVERTISEs until the
// maxmin allocation re-converges; the auditor proves no resources leaked.
package main

import (
	"fmt"
	"log"
	"strings"

	"armnet"
)

const plan = `
# 10% of all control messages vanish, setup and adaptation alike.
drop any 0.1
# Office 2 loses power for a minute mid-run, then comes back.
at 120 cell-out off-2 for 60
# The signaling plane crashes, stranding in-flight tentative holds.
at 300 crash-signaling
`

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	fp, err := armnet.ParseFaultPlan(strings.NewReader(plan))
	if err != nil {
		log.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{
		Seed:   1,
		Faults: fp,
		// Crash-orphaned holds are reclaimed 10 simulated seconds after
		// their session dies.
		Signal: armnet.SignalOptions{HoldLease: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small population, each opening a connection through the
	// signaling plane — the path the fault plan perturbs.
	placements := []struct {
		who  string
		cell armnet.CellID
	}{
		{"alice", "off-1"}, {"bob", "off-2"}, {"carol", "cor-w1"}, {"dave", "cor-e1"},
	}
	for _, p := range placements {
		who := p.who
		if err := net.PlacePortable(who, p.cell); err != nil {
			log.Fatal(err)
		}
		err := net.OpenConnectionAsync(who, armnet.Request{
			Bandwidth: armnet.Bounds{Min: 64e3, Max: 256e3},
			Delay:     5, Jitter: 5, Loss: 0.05,
			Traffic: armnet.TrafficSpec{Sigma: 16e3, Rho: 64e3},
		}, func(id string, err error) {
			if err != nil {
				fmt.Printf("t=%6.3fs %s: setup failed: %v\n", net.Now(), who, err)
				return
			}
			fmt.Printf("t=%6.3fs %s: admitted as %s\n", net.Now(), who, id)
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	if err := net.RunUntil(600); err != nil {
		log.Fatal(err)
	}

	c := net.Metrics().Counter
	fmt.Printf("\nfaults injected:      %d\n", c.Get(armnet.CtrFaultsInjected))
	fmt.Printf("retransmissions:      %d\n", c.Get(armnet.CtrRetransmits))
	fmt.Printf("holds reclaimed:      %d\n", c.Get(armnet.CtrReclaimedHolds))
	fmt.Printf("re-advertise kicks:   %d\n", c.Get(armnet.CtrReadvertises))

	// Audit the recovery invariants: conservation, no leaked holds, no
	// allocations owned by dead connections.
	mgr := net.Manager()
	aud := &armnet.FaultAuditor{
		Ledger:       mgr.Ledger(),
		PendingHolds: mgr.SignalPlane().PendingTotal,
		LiveConns:    mgr.ConnIDs,
	}
	if v := aud.CheckFinal(); len(v) > 0 {
		fmt.Println("\nrecovery invariants VIOLATED:")
		for _, s := range v {
			fmt.Println(" ", s)
		}
		return
	}
	fmt.Println("\nrecovery invariants hold: nothing leaked, ledger conserved")
}
