// Quickstart: open a QoS-bounded connection, watch the network adapt it
// between b_min and b_max as the portable settles (static) and moves
// (mobile) — the paper's core loop in a dozen lines.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 42, Tth: 120})
	if err != nil {
		log.Fatal(err)
	}

	// Alice appears in her office and opens a video connection with
	// loose QoS bounds: she needs at least 64 kb/s and can use 256 kb/s.
	if err := net.PlacePortable("alice", "off-1"); err != nil {
		log.Fatal(err)
	}
	id, err := net.OpenConnection("alice", armnet.Request{
		Bandwidth: armnet.Bounds{Min: 64e3, Max: 256e3},
		Delay:     2, Jitter: 2, Loss: 0.02,
		Traffic: armnet.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%4.0fs admitted at %6.0f b/s (mobile: held at b_min)\n",
		net.Now(), net.Connection(id).Bandwidth)

	// After T_th seconds in one cell Alice is classified static and the
	// adaptation protocol upgrades her toward b_max.
	if err := net.RunUntil(300); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%4.0fs %s, allocation %6.0f b/s (upgraded toward b_max)\n",
		net.Now(), net.Portable("alice").Mobility, net.Connection(id).Bandwidth)

	// She walks into the corridor: the handoff keeps the connection alive
	// at its guaranteed minimum.
	if err := net.HandoffPortable("alice", "cor-w1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%4.0fs handed off to %s, allocation %6.0f b/s (back to b_min)\n",
		net.Now(), net.Portable("alice").Cell, net.Connection(id).Bandwidth)

	m := net.Metrics().Counter
	fmt.Printf("handoffs: %d ok, %d dropped; adaptation updates: %d\n",
		m.Get(armnet.CtrHandoffOK), m.Get(armnet.CtrHandoffDropped), m.Get(armnet.CtrAdaptUpdates))
}
