// Arena: the head-to-head strategy comparison. Every registered
// allocator/admitter pair runs the *identical* loaded campus workload —
// same seed, same mobility trace, same QoS demands — so the table's
// differences are attributable to the strategies alone. Table 2 + maxmin
// (the paper's own pair) buys the lowest handoff-drop rate and the
// highest committed utilization at the price of more blocking and an
// order of magnitude more control packets; the measurement-based
// admitter flips that trade, and ERICA cuts the packet budget without
// moving the admission outcomes.
package main

import (
	"fmt"
	"log"
	"os"

	"armnet"
)

func main() {
	fmt.Printf("registered allocators: %v\n", armnet.Allocators())
	fmt.Printf("registered admitters:  %v\n\n", armnet.Admitters())

	cfg := armnet.ArenaConfig{
		Seed:      1,
		Portables: 24,
		Duration:  900,
		// Demands that actually load the 1.6 Mb/s cells; an uncontended
		// workload renders every strategy identical.
		BMin: 256e3,
		BMax: 1.2e6,
	}
	entries, err := armnet.RunArena(cfg)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(armnet.RenderArena(cfg, entries))

	best := entries[0]
	for _, e := range entries[1:] {
		if e.DropRate < best.DropRate ||
			(e.DropRate == best.DropRate && e.Control.Messages < best.Control.Messages) {
			best = e
		}
	}
	fmt.Printf("\nfewest dropped handoffs (control packets as tiebreak): %s\n", best.Pair.Label())
}
