// Adaptation: the §5.3 bandwidth adaptation loop under a time-varying
// wireless channel. Three static portables share one 1.6 Mb/s cell with
// loose QoS bounds; a Gilbert–Elliott-style capacity process degrades the
// air interface, and the distributed maxmin protocol re-converges the
// allocations after every change — never below any connection's b_min.
package main

import (
	"fmt"
	"log"

	"armnet"
)

func main() {
	env, err := armnet.BuildCampus()
	if err != nil {
		log.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 9, Tth: 60})
	if err != nil {
		log.Fatal(err)
	}

	// Three users in the same office cell, one connection each.
	req := armnet.Request{
		Bandwidth: armnet.Bounds{Min: 100e3, Max: 1.2e6},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: 25e3, Rho: 100e3},
	}
	var ids []string
	for _, who := range []string{"ana", "ben", "cho"} {
		if err := net.PlacePortable(who, "off-1"); err != nil {
			log.Fatal(err)
		}
		id, err := net.OpenConnection(who, req)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	mgr := net.Manager()
	wireless := env.Backbone.Link(env.Universe.Cell("off-1").BaseStation, armnet.AirNode("off-1")).ID
	report := func(label string) {
		fmt.Printf("t=%5.0fs  %-34s", net.Now(), label)
		for i, id := range ids {
			fmt.Printf("  c%d=%7.0f", i, net.Connection(id).Bandwidth)
		}
		fmt.Println(" b/s")
	}

	// Let everyone become static and adapt up, then degrade the channel
	// twice and restore it.
	net.Schedule(200, func() { report("static, adapted to fair shares") })
	net.Schedule(300, func() {
		_ = mgr.Adpt.CapacityChanged(wireless, 900e3)
	})
	net.Schedule(500, func() { report("capacity degraded to 900 kb/s") })
	net.Schedule(600, func() {
		_ = mgr.Adpt.CapacityChanged(wireless, 400e3)
	})
	net.Schedule(800, func() { report("deep fade: 400 kb/s") })
	net.Schedule(900, func() {
		_ = mgr.Adpt.CapacityChanged(wireless, 1.6e6)
	})
	net.Schedule(1200, func() { report("channel restored to 1.6 Mb/s") })

	if err := net.RunUntil(1300); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptation updates committed: %d\n",
		net.Metrics().Counter.Get(armnet.CtrAdaptUpdates))
	fmt.Println("note: every allocation stayed at or above b_min = 100 kb/s —")
	fmt.Println("the paper's QoS bound held through every capacity change.")
}
