package armnet_test

import (
	"errors"
	"testing"

	"armnet"
	"armnet/internal/core"
)

func demoRequest() armnet.Request {
	return armnet.Request{
		Bandwidth: armnet.Bounds{Min: 64e3, Max: 256e3},
		Delay:     2, Jitter: 2, Loss: 0.02,
		Traffic: armnet.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	}
}

func TestQuickstartFlow(t *testing.T) {
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 42, Tth: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := net.OpenConnection("alice", demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	c := net.Connection(id)
	if c == nil || c.Bandwidth < 64e3 {
		t.Fatalf("connection = %+v", c)
	}
	// Let alice become static; adaptation should lift her toward b_max.
	if err := net.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if net.Portable("alice").Mobility != armnet.Static {
		t.Fatal("alice not static after T_th")
	}
	if got := net.Connection(id).Bandwidth; got <= 64e3 {
		t.Fatalf("no upgrade: %v", got)
	}
	// Move: back to mobile, connection survives, drops to b_min.
	if err := net.HandoffPortable("alice", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	if net.Portable("alice").Mobility != armnet.Mobile {
		t.Fatal("alice not mobile after handoff")
	}
	m := net.Metrics()
	if m.Counter.Get(armnet.CtrHandoffOK) != 1 {
		t.Fatalf("handoff counter = %d", m.Counter.Get(armnet.CtrHandoffOK))
	}
	if err := net.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedConnectionsWrapSentinel(t *testing.T) {
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PlacePortable("greedy", "off-1"); err != nil {
		t.Fatal(err)
	}
	// 1.6 Mb/s cell: the second 1 Mb/s connection cannot fit.
	big := armnet.Request{
		Bandwidth: armnet.Bounds{Min: 1e6, Max: 1e6},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: armnet.TrafficSpec{Sigma: 1e5, Rho: 1e6},
	}
	if _, err := net.OpenConnection("greedy", big); err != nil {
		t.Fatal(err)
	}
	_, err = net.OpenConnection("greedy", big)
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestScheduleDrivesScenario(t *testing.T) {
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	net.Schedule(10, func() { _ = net.HandoffPortable("bob", "cor-w1") })
	net.Schedule(20, func() { _ = net.HandoffPortable("bob", "cor-w2") })
	if err := net.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if got := net.Portable("bob").Cell; got != "cor-w2" {
		t.Fatalf("bob at %s, want cor-w2", got)
	}
	if net.Now() != 30 {
		t.Fatalf("Now = %v", net.Now())
	}
}

func TestMeetingThroughFacade(t *testing.T) {
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.RegisterMeeting("meet", armnet.Meeting{Start: 1200, End: 2400, Attendees: 8}); err != nil {
		t.Fatal(err)
	}
	if err := net.RegisterMeeting("off-1", armnet.Meeting{Start: 1200, End: 2400, Attendees: 8}); err == nil {
		t.Fatal("meeting in office accepted")
	}
	if err := net.RunUntil(700); err != nil {
		t.Fatal(err)
	}
	mgr := net.Manager()
	wl := mgr.Ledger().Links()
	found := false
	for _, ls := range wl {
		if ls.AdvanceReserved > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no advance reservation appeared during the lead-in window")
	}
}

func TestExperimentsAccessibleFromFacade(t *testing.T) {
	if _, err := armnet.RunTable2(armnet.Table2Config{}); err != nil {
		t.Fatal(err)
	}
	r, err := armnet.RunFigure6(armnet.Figure6Config{Seed: 1, T: 0.05, PQoS: 0.1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if r.NewArrivals == 0 {
		t.Fatal("no arrivals in facade figure-6 run")
	}
	if _, err := armnet.RunFigure2(armnet.Figure2Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 2, Tth: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.PlacePortable("a", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := net.OpenConnection("a", demoRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Watcher fires on adaptation.
	fired := 0
	if err := net.WatchBandwidth(id, func(float64) { fired++ }); err != nil {
		t.Fatal(err)
	}
	// Channel variation drives adaptation.
	if _, err := net.AttachChannel("off-1", []float64{1.6e6, 800e3}, 50); err != nil {
		t.Fatal(err)
	}
	if err := net.RunUntil(600); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("bandwidth watcher never fired")
	}
	// Renegotiation through the facade.
	if err := net.Renegotiate(id, armnet.Bounds{Min: 32e3, Max: 128e3}); err != nil {
		t.Fatal(err)
	}
	if got := net.Connection(id).Req.Bandwidth.Min; got != 32e3 {
		t.Fatalf("renegotiated min = %v", got)
	}
	// LearnClasses is a no-op on a fully labeled campus.
	if changed := net.LearnClasses(); len(changed) != 0 {
		t.Fatalf("learned on labeled campus: %v", changed)
	}
	// Async setup through the facade.
	done := false
	if err := net.OpenConnectionAsync("a", demoRequest(), func(string, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := net.RunUntil(601); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("async setup never completed")
	}
}

func TestLedgerInvariantsAfterBusyRun(t *testing.T) {
	// After a busy integrated run, no link's guaranteed minimums may
	// exceed its capacity and no allocation may sit below its minimum.
	r, err := armnet.RunCampus(armnet.CampusConfig{Seed: 8, Portables: 30, Duration: 1500, Dwell: 90})
	if err != nil {
		t.Fatal(err)
	}
	if r.Handoffs == 0 {
		t.Fatal("no handoffs")
	}
	// Re-run with direct access to inspect the ledger.
	env, err := armnet.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	net, err := armnet.NewNetwork(env, armnet.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := string(rune('a' + i))
		if err := net.PlacePortable(id, "cor-w1"); err != nil {
			t.Fatal(err)
		}
		_, _ = net.OpenConnection(id, demoRequest())
	}
	if err := net.RunUntil(900); err != nil {
		t.Fatal(err)
	}
	for _, ls := range net.Manager().Ledger().Links() {
		if ls.SumMin() > ls.Capacity+1e-6 {
			t.Fatalf("link %s overcommitted on minimums: %v > %v", ls.Link.ID, ls.SumMin(), ls.Capacity)
		}
		for _, id := range ls.Conns() {
			a := ls.Alloc(id)
			if a.Cur < a.Min-1e-9 {
				t.Fatalf("allocation below minimum on %s: %v < %v", ls.Link.ID, a.Cur, a.Min)
			}
		}
	}
}
