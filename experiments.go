package armnet

import (
	"armnet/internal/runner"
	"armnet/internal/sim"
)

// This file re-exports the experiment harnesses that regenerate the
// paper's tables and figures, so downstream users (and the repository's
// own cmd/paperfigs and benchmarks) can run them through the public API.

// Experiment configurations and results.
type (
	// Figure4Config / Figure4Result: §7.1 office next-cell prediction on
	// the calibrated ECE-building trace.
	Figure4Config = sim.Figure4Config
	Figure4Result = sim.Figure4Result

	// Figure5Config / Figure5Result: §7.1 meeting-room reservation
	// comparison (brute force vs aggregation vs booking calendar).
	Figure5Config = sim.Figure5Config
	Figure5Result = sim.Figure5Result
	Fig5Algorithm = sim.Fig5Algorithm

	// Figure6Config / Figure6Result: §7.2 probabilistic default
	// reservation P_d/P_b tradeoff.
	Figure6Config = sim.Figure6Config
	Figure6Result = sim.Figure6Result
	Figure6Curve  = sim.Figure6Curve

	// Table2Config / Table2Result: the admission-test rows.
	Table2Config = sim.Table2Config
	Table2Result = sim.Table2Result

	// Theorem1Config / Theorem1Result: event-driven maxmin convergence.
	Theorem1Config = sim.Theorem1Config
	Theorem1Result = sim.Theorem1Result

	// Figure2Config / Figure2Result: lounge handoff-activity profile.
	Figure2Config = sim.Figure2Config
	Figure2Result = sim.Figure2Result

	// CampusConfig / CampusResult: integrated campus scenario comparing
	// reservation modes (extension experiment: drop/block rates and
	// handoff signaling latency, predicted vs unpredicted).
	CampusConfig = sim.CampusConfig
	CampusResult = sim.CampusResult

	// TthPoint is one sample of the T_th sensitivity ablation.
	TthPoint = sim.TthPoint

	// ArenaConfig / ArenaEntry / StrategyPair: the head-to-head strategy
	// arena — every registered allocator/admitter pair runs the
	// *identical* campus workload (same seed, mobility and demands) and
	// the entries compare outcome against control-plane cost.
	ArenaConfig  = sim.ArenaConfig
	ArenaEntry   = sim.ArenaEntry
	StrategyPair = sim.StrategyPair

	// GridConfig / GridResult: scale scenario on a rows×cols building.
	GridConfig = sim.GridConfig
	GridResult = sim.GridResult

	// BoundsConfig / BoundsResult: §2.1 loose-vs-rigid QoS quantified.
	BoundsConfig = sim.BoundsConfig
	BoundsResult = sim.BoundsResult

	// CorridorResult: §6.1 linear-movement prediction accuracy.
	CorridorResult = sim.CorridorResult

	// RunStats reports trial counts, wall time and speedup for the
	// parallel experiment runners.
	RunStats = runner.Stats
)

// Figure 5 algorithm selectors.
const (
	AlgBruteForce  = sim.AlgBruteForce
	AlgAggregation = sim.AlgAggregation
	AlgMeetingRoom = sim.AlgMeetingRoom
)

// Experiment runners.
var (
	RunFigure2           = sim.RunFigure2
	RunFigure4           = sim.RunFigure4
	RunFigure5           = sim.RunFigure5
	RunFigure5Comparison = sim.RunFigure5Comparison
	RunFigure6           = sim.RunFigure6
	RunFigure6Sweep      = sim.RunFigure6Sweep
	RunTable2            = sim.RunTable2
	RunTheorem1          = sim.RunTheorem1
	RunCampus            = sim.RunCampus
	RunCampusComparison  = sim.RunCampusComparison
	// RunCampusTrace is RunCampus plus the run's full JSONL event trace
	// (one control-plane event per line, stamped with time and sequence).
	RunCampusTrace = sim.RunCampusTrace
	// RunCampusObs is RunCampus with the observability layer armed: it
	// additionally returns the run's deterministic instrument snapshot.
	RunCampusObs = sim.RunCampusObs
	// RunCampusObsSweep replicates the observed campus scenario under
	// derived seeds and merges the snapshots in replication order; the
	// merged snapshot is identical at any worker count.
	RunCampusObsSweep = sim.RunCampusObsSweep
	// RunArena / RunArenaSweep run the strategy roster (serially / over a
	// worker pool); RenderArena renders the stable comparative table and
	// DefaultArenaPairs is the built-in roster.
	RunArena          = sim.RunArena
	RunArenaSweep     = sim.RunArenaSweep
	RenderArena       = sim.RenderArena
	DefaultArenaPairs = sim.DefaultArenaPairs
	RunTthSensitivity = sim.RunTthSensitivity
	RunGrid           = sim.RunGrid
	RunBounds         = sim.RunBounds
	RunCorridor       = sim.RunCorridor
	// ErlangB is the analytic blocking formula used to validate the
	// Figure 6 simulator.
	ErlangB = sim.ErlangB

	// Parallel experiment runners: independent trials fanned across a
	// worker pool with deterministic replication — the same seed yields
	// bit-identical results at any worker count (workers <= 0 selects
	// GOMAXPROCS).
	RunCampusComparisonParallel = sim.RunCampusComparisonParallel
	RunTthSensitivityParallel   = sim.RunTthSensitivityParallel
	RunGridSweep                = sim.RunGridSweep
	RunTheorem1Parallel         = sim.RunTheorem1Parallel
	// SplitSeed derives decorrelated per-trial seeds from a master seed;
	// TrialSeeds returns the first n of them (trial 0 keeps the master).
	SplitSeed  = runner.SplitSeed
	TrialSeeds = runner.Seeds
)
