package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Inc("a")
	c.Add("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("zero") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if got := c.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names = %v", got)
	}
	if r := c.Ratio("a", "b"); math.Abs(r-0.4) > 1e-12 {
		t.Fatalf("ratio = %v", r)
	}
	if r := c.Ratio("a", "nothing"); r != 0 {
		t.Fatalf("ratio with zero denominator = %v", r)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance is 4; unbiased = 4*8/7.
	if math.Abs(w.Var()-32.0/7) > 1e-9 {
		t.Fatalf("var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 1) // value 1 on [0, 2)
	tw.Set(2, 3) // value 3 on [2, 4)
	if got := tw.Mean(4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", got)
	}
	tw.Add(4, -2) // value 1 on [4, 6)
	if got := tw.Mean(6); math.Abs(got-(1*2+3*2+1*2)/6.0) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if tw.Value() != 1 {
		t.Fatalf("value = %v", tw.Value())
	}
	var empty TimeWeighted
	if empty.Mean(10) != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.5)
	h.Observe(5.5)
	h.Observe(5.6)
	h.Observe(-3)  // clamps to first bin
	h.Observe(100) // clamps to last bin
	if h.Bin(0) != 2 || h.Bin(5) != 2 || h.Bin(9) != 1 {
		t.Fatalf("bins = %v", h.Bins())
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if c := h.BinCenter(5); math.Abs(c-5.5) > 1e-12 {
		t.Fatalf("center = %v", c)
	}
	if q := h.Quantile(0.5); q < 0 || q > 10 {
		t.Fatalf("quantile = %v", q)
	}
}

func TestTable(t *testing.T) {
	tb := Table{Header: []string{"alg", "drops"}}
	tb.AddRow("brute-force", 7)
	tb.AddRow("meeting-room", 0)
	tb.AddRow("float", 0.123456)
	s := tb.String()
	if !strings.Contains(s, "brute-force") || !strings.Contains(s, "drops") {
		t.Fatalf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "0.1235") {
		t.Fatalf("float not trimmed to 4 significant digits:\n%s", s)
	}
}

// Property: Welford mean matches the naive mean.
func TestQuickWelfordMean(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			x := float64(r)
			w.Observe(x)
			sum += x
		}
		return math.Abs(w.Mean()-sum/float64(len(raw))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram preserves total counts.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(raw []int16) bool {
		h, err := NewHistogram(-100, 100, 17)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Observe(float64(r))
		}
		total := int64(0)
		for _, b := range h.Bins() {
			total += b
		}
		return total == int64(len(raw)) && h.N() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
