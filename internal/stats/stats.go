// Package stats provides the measurement primitives the experiments use:
// counters, time-weighted averages (for utilization), online moment
// accumulators, fixed-bin histograms, and a small fixed-width table
// printer for regenerating the paper's result rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter counts events by name.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Inc adds one to the named count.
func (c *Counter) Inc(name string) { c.counts[name]++ }

// Add adds delta to the named count.
func (c *Counter) Add(name string, delta int64) { c.counts[name] += delta }

// Get returns the named count (zero when never touched).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns all counted names, sorted.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.counts))
	for n := range c.counts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ratio returns Get(num)/Get(den), or 0 when the denominator is zero.
func (c *Counter) Ratio(num, den string) float64 {
	d := c.Get(den)
	if d == 0 {
		return 0
	}
	return float64(c.Get(num)) / float64(d)
}

// Welford accumulates mean and variance online.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (zero when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (zero for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (zero when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (zero when empty).
func (w *Welford) Max() float64 { return w.max }

// TimeWeighted integrates a piecewise-constant signal over simulated time,
// e.g. link utilization or number of active connections.
type TimeWeighted struct {
	last     float64 // last set value
	lastTime float64
	area     float64
	started  bool
	start    float64
}

// Set records the signal value at time t.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.start = t
	} else if t > tw.lastTime {
		tw.area += tw.last * (t - tw.lastTime)
	}
	tw.last = v
	tw.lastTime = t
}

// Add shifts the signal by delta at time t (convenient for gauges).
func (tw *TimeWeighted) Add(t, delta float64) { tw.Set(t, tw.last+delta) }

// Mean returns the time-weighted mean over [start, t].
func (tw *TimeWeighted) Mean(t float64) float64 {
	if !tw.started || t <= tw.start {
		return 0
	}
	area := tw.area
	if t > tw.lastTime {
		area += tw.last * (t - tw.lastTime)
	}
	return area / (t - tw.start)
}

// Value returns the current signal value.
func (tw *TimeWeighted) Value() float64 { return tw.last }

// Histogram is a fixed-width-bin histogram over [Lo, Hi); out-of-range
// samples land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	bins   []int64
	n      int64
}

// NewHistogram returns a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram bounds inverted [%v, %v)", lo, hi)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, bins)}, nil
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// Bins returns a copy of all bin counts.
func (h *Histogram) Bins() []int64 { return append([]int64(nil), h.bins...) }

// N returns the total number of samples.
func (h *Histogram) N() int64 { return h.n }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + w*(float64(i)+0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from bins.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.Lo
	}
	target := int64(q * float64(h.n))
	acc := int64(0)
	for i, c := range h.bins {
		acc += c
		if acc > target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}

// Table renders aligned rows for terminal output of experiment results.
type Table struct {
	Header []string
	rows   [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Header != nil {
		measure(t.Header)
	}
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		b.WriteString("\n")
	}
	if t.Header != nil {
		writeRow(t.Header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
