package profile

import (
	"math"
	"sort"

	"armnet/internal/topology"
)

// ClassifyOptions tunes the learning process of §6.4, by which a profile
// server categorizes a cell with no configured class from its observed
// handoff behaviour.
type ClassifyOptions struct {
	// MinHandoffs is the evidence floor below which the cell stays
	// unknown (default 30).
	MinHandoffs int
	// OfficeMaxVisitors is the largest distinct-visitor population an
	// office can have (default 8).
	OfficeMaxVisitors int
	// OfficeTopShare is the minimum arrival share of the top 4 visitors
	// for the office label (default 0.8).
	OfficeTopShare float64
	// CorridorConsistency is the minimum fraction of departures that
	// follow the cell's dominant prev→next mapping (default 0.7).
	CorridorConsistency float64
	// SpikeRatio is the max-slot/mean-slot activity ratio above which a
	// lounge is labeled a meeting room (default 4).
	SpikeRatio float64
	// CafeteriaCV is the coefficient of variation of slot activity below
	// which a lounge is labeled a cafeteria (default 0.8).
	CafeteriaCV float64
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.MinHandoffs <= 0 {
		o.MinHandoffs = 30
	}
	if o.OfficeMaxVisitors <= 0 {
		o.OfficeMaxVisitors = 8
	}
	if o.OfficeTopShare <= 0 {
		o.OfficeTopShare = 0.8
	}
	if o.CorridorConsistency <= 0 {
		o.CorridorConsistency = 0.7
	}
	if o.SpikeRatio <= 0 {
		o.SpikeRatio = 4
	}
	if o.CafeteriaCV <= 0 {
		o.CafeteriaCV = 0.8
	}
	return o
}

// Classify runs the learning process on a cell profile and returns the
// inferred class. The decision order mirrors the paper's taxonomy:
// offices are small closed populations, corridors carry consistent
// pass-through movement, and lounges split by the shape of their slot
// activity (spiky → meeting room, smooth → cafeteria, else default).
// ClassUnknown is returned while evidence is insufficient.
func Classify(c *CellProfile, opts ClassifyOptions) topology.Class {
	opts = opts.withDefaults()
	totalArrivals := 0
	for _, v := range c.visitors {
		totalArrivals += v
	}
	if totalArrivals+len(c.history) < opts.MinHandoffs {
		return topology.ClassUnknown
	}

	// Office: few distinct visitors dominated by regulars.
	if c.Visitors() > 0 && c.Visitors() <= opts.OfficeMaxVisitors &&
		c.TopVisitorShare(4) >= opts.OfficeTopShare {
		return topology.ClassOffice
	}

	// Corridor: departures consistently continue in the direction of
	// travel — for each known previous cell, one next cell dominates,
	// and movement rarely bounces back where it came from.
	if consistency, backflow := directionality(c); consistency >= opts.CorridorConsistency && backflow < 0.3 {
		return topology.ClassCorridor
	}

	// Lounge subclasses from slot-activity shape.
	act := slotSeries(c)
	if len(act) >= 3 {
		mean, cv, peak := seriesStats(act)
		if mean > 0 {
			if peak/mean >= opts.SpikeRatio {
				return topology.ClassMeetingRoom
			}
			if cv <= opts.CafeteriaCV {
				return topology.ClassCafeteria
			}
		}
	}
	return topology.ClassLoungeDefault
}

// directionality measures how predictable departures are given the
// arrival direction: the weighted share of departures that follow the
// dominant prev→next mapping, and the share that return to prev.
func directionality(c *CellProfile) (consistency, backflow float64) {
	total, dominant, back := 0, 0, 0
	for prev, m := range c.byPrev {
		if prev == "" {
			continue
		}
		best := 0
		for next, n := range m {
			total += n
			if n > best {
				best = n
			}
			if next == prev {
				back += n
			}
		}
		dominant += best
	}
	if total == 0 {
		return 0, 0
	}
	return float64(dominant) / float64(total), float64(back) / float64(total)
}

// slotSeries returns the activity (arrivals + departures) of every slot
// seen, in slot order, including interior empty slots.
func slotSeries(c *CellProfile) []float64 {
	slots := map[int64]float64{}
	for s, n := range c.departures {
		slots[s] += float64(n)
	}
	for s, n := range c.arrivals {
		slots[s] += float64(n)
	}
	if len(slots) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(slots))
	for s := range slots {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	lo, hi := keys[0], keys[len(keys)-1]
	out := make([]float64, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, slots[s])
	}
	return out
}

// seriesStats returns mean, coefficient of variation, and peak.
func seriesStats(xs []float64) (mean, cv, peak float64) {
	for _, x := range xs {
		mean += x
		if x > peak {
			peak = x
		}
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0, peak
	}
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	cv = math.Sqrt(varsum/float64(len(xs))) / mean
	return mean, cv, peak
}
