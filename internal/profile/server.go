package profile

import (
	"fmt"
	"sort"

	"armnet/internal/topology"
)

// ServerOptions configures a zone profile server.
type ServerOptions struct {
	// NpP is the portable-profile history limit (default 100).
	NpP int
	// NpC is the cell-profile history limit (default 500).
	NpC int
	// SlotDuration is the activity slot width in seconds (default 60).
	SlotDuration float64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.NpP <= 0 {
		o.NpP = 100
	}
	if o.NpC <= 0 {
		o.NpC = 500
	}
	if o.SlotDuration <= 0 {
		o.SlotDuration = 60
	}
	return o
}

// Server is a zone profile server (§3.4.3): it owns the cell profiles of
// every cell in its zone and the portable profiles of every portable
// currently in the zone, updating both on every handoff report from the
// base stations.
type Server struct {
	Zone string
	opts ServerOptions

	cells     map[topology.CellID]*CellProfile
	portables map[string]*PortableProfile
}

// NewServer creates a profile server for the given zone cells.
func NewServer(zone string, cells []topology.CellID, opts ServerOptions) *Server {
	s := &Server{
		Zone:      zone,
		opts:      opts.withDefaults(),
		cells:     make(map[topology.CellID]*CellProfile),
		portables: make(map[string]*PortableProfile),
	}
	for _, c := range cells {
		s.cells[c] = NewCellProfile(c, s.opts.NpC, s.opts.SlotDuration)
	}
	return s
}

// AddCell registers a cell profile after construction (e.g. topology
// growth); existing profiles are preserved.
func (s *Server) AddCell(c topology.CellID) {
	if _, ok := s.cells[c]; !ok {
		s.cells[c] = NewCellProfile(c, s.opts.NpC, s.opts.SlotDuration)
	}
}

// Cell returns the cell profile, or nil when the cell is outside the zone.
func (s *Server) Cell(c topology.CellID) *CellProfile { return s.cells[c] }

// Portable returns the portable profile, creating it on first reference —
// a portable entering the zone starts with an empty (or imported) profile.
func (s *Server) Portable(id string) *PortableProfile {
	p, ok := s.portables[id]
	if !ok {
		p = NewPortableProfile(id, s.opts.NpP)
		s.portables[id] = p
	}
	return p
}

// Portables returns the IDs of portables with profiles, sorted.
func (s *Server) Portables() []string {
	out := make([]string, 0, len(s.portables))
	for id := range s.portables {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RecordHandoff is the update message a base station sends on every
// handoff. The departure is folded into the From cell's profile (when in
// zone), the arrival into the To cell's, and the triplet into the
// portable's profile.
func (s *Server) RecordHandoff(h Handoff) {
	if h.From == h.To {
		return // not a handoff
	}
	if cp, ok := s.cells[h.From]; ok {
		cp.RecordDeparture(h)
	}
	if cp, ok := s.cells[h.To]; ok {
		cp.RecordArrival(h)
	}
	s.Portable(h.Portable).Record(h)
}

// PredictByPortable is the first-level prediction of §6: look up the
// portable's own <prev, cur> → next triplet.
func (s *Server) PredictByPortable(portable string, prev, cur topology.CellID) (topology.CellID, bool) {
	p, ok := s.portables[portable]
	if !ok {
		return "", false
	}
	if next, ok := p.Predict(prev, cur); ok {
		return next, true
	}
	return p.PredictAnyPrev(cur)
}

// PredictByCell is the second-level aggregate prediction of §6: the
// cell's own handoff history conditioned on the previous cell.
func (s *Server) PredictByCell(cur, prev topology.CellID) (topology.CellID, bool) {
	cp, ok := s.cells[cur]
	if !ok {
		return "", false
	}
	return cp.Predict(prev)
}

// HandoffDistribution exposes the {j, p_j} table for reservation sizing.
func (s *Server) HandoffDistribution(cur, prev topology.CellID) map[topology.CellID]float64 {
	cp, ok := s.cells[cur]
	if !ok {
		return nil
	}
	return cp.Probabilities(prev)
}

// ExportPortable removes and returns a portable's profile, for transfer
// to the next zone's server when the portable crosses a zone boundary
// (the base-station cache handover of §3.4.3).
func (s *Server) ExportPortable(id string) (*PortableProfile, error) {
	p, ok := s.portables[id]
	if !ok {
		return nil, fmt.Errorf("profile: portable %s unknown in zone %s", id, s.Zone)
	}
	delete(s.portables, id)
	return p, nil
}

// ImportPortable installs a profile exported from another zone.
func (s *Server) ImportPortable(p *PortableProfile) {
	if p != nil {
		s.portables[p.ID] = p
	}
}
