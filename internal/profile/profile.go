// Package profile implements the paper's profiles and profile servers
// (§3.4.3, Table 1). A portable's profile aggregates its last N_pP
// handoffs into <previous cell, current cell> → next-predicted-cell
// triplets; a cell's profile aggregates its last N_pC handoffs into
// <previous cell → P(next neighbor)> tables plus slotted handoff counts
// that feed the lounge predictors of §6.2. One ProfileServer per zone owns
// both and answers the two prediction levels of §6.
package profile

import (
	"fmt"
	"math"
	"sort"

	"armnet/internal/topology"
)

// Handoff is one observed handoff event: the portable moved From → To,
// and Prev was its cell before From ("" when unknown, e.g. first
// appearance).
type Handoff struct {
	Portable string
	Prev     topology.CellID
	From     topology.CellID
	To       topology.CellID
	Time     float64
}

// transKey indexes the portable triplet table.
type transKey struct {
	prev, cur topology.CellID
}

// PortableProfile is the per-portable aggregated handoff history.
type PortableProfile struct {
	ID string
	// history keeps the last NpP transitions in arrival order.
	history []Handoff
	limit   int
	counts  map[transKey]map[topology.CellID]int
}

// NewPortableProfile returns an empty profile bounded to limit handoffs.
func NewPortableProfile(id string, limit int) *PortableProfile {
	if limit <= 0 {
		limit = 100
	}
	return &PortableProfile{
		ID:     id,
		limit:  limit,
		counts: make(map[transKey]map[topology.CellID]int),
	}
}

// Record folds one handoff into the profile, expiring the oldest entry
// beyond the history limit.
func (p *PortableProfile) Record(h Handoff) {
	p.history = append(p.history, h)
	k := transKey{h.Prev, h.From}
	m := p.counts[k]
	if m == nil {
		m = make(map[topology.CellID]int)
		p.counts[k] = m
	}
	m[h.To]++
	if len(p.history) > p.limit {
		old := p.history[0]
		p.history = p.history[1:]
		ok := transKey{old.Prev, old.From}
		if m := p.counts[ok]; m != nil {
			m[old.To]--
			if m[old.To] <= 0 {
				delete(m, old.To)
			}
			if len(m) == 0 {
				delete(p.counts, ok)
			}
		}
	}
}

// Len returns the number of retained handoffs.
func (p *PortableProfile) Len() int { return len(p.history) }

// Predict returns the next-predicted-cell for the portable given its
// previous and current cells — the Table 1 <prev, cur, next-prd-cell>
// lookup. ok is false when the profile has no matching history.
func (p *PortableProfile) Predict(prev, cur topology.CellID) (topology.CellID, bool) {
	m := p.counts[transKey{prev, cur}]
	if len(m) == 0 {
		return "", false
	}
	return argmaxCell(m), true
}

// PredictAnyPrev aggregates over all previous cells — the fallback when
// the portable's previous cell is unknown.
func (p *PortableProfile) PredictAnyPrev(cur topology.CellID) (topology.CellID, bool) {
	agg := map[topology.CellID]int{}
	for k, m := range p.counts {
		if k.cur != cur {
			continue
		}
		for to, n := range m {
			agg[to] += n
		}
	}
	if len(agg) == 0 {
		return "", false
	}
	return argmaxCell(agg), true
}

// argmaxCell picks the highest-count cell, breaking ties lexicographically
// so predictions are deterministic.
func argmaxCell(m map[topology.CellID]int) topology.CellID {
	var best topology.CellID
	bestN := -1
	ids := make([]topology.CellID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m[id] > bestN {
			best, bestN = id, m[id]
		}
	}
	return best
}

// CellProfile is the per-cell aggregated handoff history: who leaves the
// cell for which neighbor, keyed by where they came from, plus slotted
// departure/arrival counts for the lounge predictors.
type CellProfile struct {
	Cell  topology.CellID
	Class topology.Class

	limit   int
	history []Handoff
	// byPrev[prev][next] counts departures to next given arrival from prev.
	byPrev map[topology.CellID]map[topology.CellID]int
	// total[next] counts departures to next regardless of prev.
	total map[topology.CellID]int

	// Slotted activity for §6.2 predictors.
	slotDur    float64
	departures map[int64]int
	arrivals   map[int64]int
	// visitors counts handoffs into the cell per portable (office
	// regularity detection for the learning process).
	visitors map[string]int
}

// NewCellProfile returns an empty cell profile.
// slotDur is the time-slot width for activity counting (default 60 s).
func NewCellProfile(cell topology.CellID, limit int, slotDur float64) *CellProfile {
	if limit <= 0 {
		limit = 500
	}
	if slotDur <= 0 {
		slotDur = 60
	}
	return &CellProfile{
		Cell:       cell,
		limit:      limit,
		slotDur:    slotDur,
		byPrev:     make(map[topology.CellID]map[topology.CellID]int),
		total:      make(map[topology.CellID]int),
		departures: make(map[int64]int),
		arrivals:   make(map[int64]int),
		visitors:   make(map[string]int),
	}
}

// Slot converts a time to its slot index.
func (c *CellProfile) Slot(t float64) int64 { return int64(math.Floor(t / c.slotDur)) }

// SlotDuration returns the slot width in seconds.
func (c *CellProfile) SlotDuration() float64 { return c.slotDur }

// RecordDeparture folds in a handoff out of this cell (h.From == c.Cell).
func (c *CellProfile) RecordDeparture(h Handoff) {
	c.history = append(c.history, h)
	m := c.byPrev[h.Prev]
	if m == nil {
		m = make(map[topology.CellID]int)
		c.byPrev[h.Prev] = m
	}
	m[h.To]++
	c.total[h.To]++
	c.departures[c.Slot(h.Time)]++
	if len(c.history) > c.limit {
		old := c.history[0]
		c.history = c.history[1:]
		if m := c.byPrev[old.Prev]; m != nil {
			m[old.To]--
			if m[old.To] <= 0 {
				delete(m, old.To)
			}
			if len(m) == 0 {
				delete(c.byPrev, old.Prev)
			}
		}
		c.total[old.To]--
		if c.total[old.To] <= 0 {
			delete(c.total, old.To)
		}
	}
}

// RecordArrival notes a handoff into this cell (h.To == c.Cell).
func (c *CellProfile) RecordArrival(h Handoff) {
	c.arrivals[c.Slot(h.Time)]++
	c.visitors[h.Portable]++
}

// Len returns the retained departure-history length.
func (c *CellProfile) Len() int { return len(c.history) }

// Predict returns the most likely next cell for a portable that entered
// from prev, falling back to the aggregate distribution when prev is
// unknown to the profile.
func (c *CellProfile) Predict(prev topology.CellID) (topology.CellID, bool) {
	if m := c.byPrev[prev]; len(m) > 0 {
		return argmaxCell(m), true
	}
	if len(c.total) > 0 {
		return argmaxCell(c.total), true
	}
	return "", false
}

// Probabilities returns the Table 1 {j, p_j} handoff distribution over
// next cells given the previous cell (aggregate when prev is unknown).
func (c *CellProfile) Probabilities(prev topology.CellID) map[topology.CellID]float64 {
	src := c.byPrev[prev]
	if len(src) == 0 {
		src = c.total
	}
	n := 0
	for _, v := range src {
		n += v
	}
	out := make(map[topology.CellID]float64, len(src))
	if n == 0 {
		return out
	}
	for id, v := range src {
		out[id] = float64(v) / float64(n)
	}
	return out
}

// DeparturesIn returns the number of recorded departures in slot s.
func (c *CellProfile) DeparturesIn(s int64) int { return c.departures[s] }

// ArrivalsIn returns the number of recorded arrivals in slot s.
func (c *CellProfile) ArrivalsIn(s int64) int { return c.arrivals[s] }

// RecentDepartures returns the departure counts for the k slots ending at
// (and including) the slot of time t, oldest first — the n_{t-2}, n_{t-1},
// n_t series the cafeteria least-squares predictor consumes.
func (c *CellProfile) RecentDepartures(t float64, k int) []int {
	s := c.Slot(t)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[k-1-i] = c.departures[s-int64(i)]
	}
	return out
}

// RecentArrivals returns the arrival counts for the k slots ending at the
// slot of time t, oldest first — the series the cafeteria self-reservation
// predictor consumes.
func (c *CellProfile) RecentArrivals(t float64, k int) []int {
	s := c.Slot(t)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[k-1-i] = c.arrivals[s-int64(i)]
	}
	return out
}

// Visitors returns the number of distinct portables seen entering.
func (c *CellProfile) Visitors() int { return len(c.visitors) }

// TopVisitorShare returns the fraction of arrivals contributed by the k
// most frequent visitors — near 1 for an office with regular occupants.
func (c *CellProfile) TopVisitorShare(k int) float64 {
	if len(c.visitors) == 0 {
		return 0
	}
	counts := make([]int, 0, len(c.visitors))
	total := 0
	for _, v := range c.visitors {
		counts = append(counts, v)
		total += v
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < k && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(total)
}

// String summarizes the profile for diagnostics.
func (c *CellProfile) String() string {
	return fmt.Sprintf("cell %s (%s): %d departures recorded, %d visitors",
		c.Cell, c.Class, len(c.history), len(c.visitors))
}
