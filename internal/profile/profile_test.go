package profile

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/randx"
	"armnet/internal/topology"
)

func TestPortableProfilePredict(t *testing.T) {
	p := NewPortableProfile("alice", 10)
	if _, ok := p.Predict("C", "D"); ok {
		t.Fatal("empty profile predicted")
	}
	// 3 handoffs C->D->A, 1 handoff C->D->B.
	for i := 0; i < 3; i++ {
		p.Record(Handoff{Portable: "alice", Prev: "C", From: "D", To: "A"})
	}
	p.Record(Handoff{Portable: "alice", Prev: "C", From: "D", To: "B"})
	next, ok := p.Predict("C", "D")
	if !ok || next != "A" {
		t.Fatalf("predict = %v/%v, want A", next, ok)
	}
	// Different prev: unknown -> falls back via PredictAnyPrev.
	if _, ok := p.Predict("E", "D"); ok {
		t.Fatal("unknown prev predicted directly")
	}
	next, ok = p.PredictAnyPrev("D")
	if !ok || next != "A" {
		t.Fatalf("any-prev predict = %v/%v, want A", next, ok)
	}
}

func TestPortableProfileExpiry(t *testing.T) {
	p := NewPortableProfile("bob", 4)
	// Fill with A-predictions, then push them out with B-predictions.
	for i := 0; i < 4; i++ {
		p.Record(Handoff{Prev: "C", From: "D", To: "A"})
	}
	for i := 0; i < 4; i++ {
		p.Record(Handoff{Prev: "C", From: "D", To: "B"})
	}
	if p.Len() != 4 {
		t.Fatalf("history len = %d, want 4", p.Len())
	}
	next, ok := p.Predict("C", "D")
	if !ok || next != "B" {
		t.Fatalf("after expiry predict = %v, want B", next)
	}
}

func TestPortableProfileDeterministicTies(t *testing.T) {
	p := NewPortableProfile("tie", 10)
	p.Record(Handoff{Prev: "C", From: "D", To: "B"})
	p.Record(Handoff{Prev: "C", From: "D", To: "A"})
	next, ok := p.Predict("C", "D")
	if !ok || next != "A" {
		t.Fatalf("tie broken to %v, want lexicographic A", next)
	}
}

func TestCellProfilePredictAndProbabilities(t *testing.T) {
	c := NewCellProfile("D", 200, 60)
	// From C, departures: 94 to A, 20 to B, 13 to F.
	for i := 0; i < 94; i++ {
		c.RecordDeparture(Handoff{Prev: "C", From: "D", To: "A", Time: float64(i)})
	}
	for i := 0; i < 20; i++ {
		c.RecordDeparture(Handoff{Prev: "C", From: "D", To: "B", Time: float64(i)})
	}
	for i := 0; i < 13; i++ {
		c.RecordDeparture(Handoff{Prev: "C", From: "D", To: "F", Time: float64(i)})
	}
	next, ok := c.Predict("C")
	if !ok || next != "A" {
		t.Fatalf("predict = %v, want A", next)
	}
	probs := c.Probabilities("C")
	if math.Abs(probs["A"]-94.0/127) > 1e-9 {
		t.Fatalf("P(A) = %v, want %v", probs["A"], 94.0/127)
	}
	// Unknown prev falls back to aggregate.
	next, ok = c.Predict("X")
	if !ok || next != "A" {
		t.Fatalf("aggregate predict = %v, want A", next)
	}
	if got := c.Probabilities("X")["A"]; math.Abs(got-94.0/127) > 1e-9 {
		t.Fatalf("aggregate P(A) = %v", got)
	}
}

func TestCellProfileSlots(t *testing.T) {
	c := NewCellProfile("M", 100, 60)
	// Departures at t=10, 70, 75, 130.
	for _, tm := range []float64{10, 70, 75, 130} {
		c.RecordDeparture(Handoff{Prev: "x", From: "M", To: "y", Time: tm})
	}
	if c.DeparturesIn(0) != 1 || c.DeparturesIn(1) != 2 || c.DeparturesIn(2) != 1 {
		t.Fatalf("slot counts = %d %d %d", c.DeparturesIn(0), c.DeparturesIn(1), c.DeparturesIn(2))
	}
	recent := c.RecentDepartures(130, 3)
	if recent[0] != 1 || recent[1] != 2 || recent[2] != 1 {
		t.Fatalf("recent = %v, want [1 2 1]", recent)
	}
	c.RecordArrival(Handoff{Portable: "p1", To: "M", Time: 65})
	if c.ArrivalsIn(1) != 1 {
		t.Fatalf("arrivals in slot 1 = %d", c.ArrivalsIn(1))
	}
}

func TestCellProfileVisitorShare(t *testing.T) {
	c := NewCellProfile("A", 100, 60)
	for i := 0; i < 90; i++ {
		c.RecordArrival(Handoff{Portable: "regular", To: "A"})
	}
	for i := 0; i < 10; i++ {
		c.RecordArrival(Handoff{Portable: fmt.Sprintf("guest%d", i), To: "A"})
	}
	if c.Visitors() != 11 {
		t.Fatalf("visitors = %d", c.Visitors())
	}
	if share := c.TopVisitorShare(1); math.Abs(share-0.9) > 1e-9 {
		t.Fatalf("top share = %v", share)
	}
}

func TestServerRecordAndPredictLevels(t *testing.T) {
	s := NewServer("z", []topology.CellID{"C", "D", "A", "B"}, ServerOptions{})
	// Alice's pattern: C->D->A.
	for i := 0; i < 5; i++ {
		s.RecordHandoff(Handoff{Portable: "alice", Prev: "", From: "C", To: "D", Time: float64(i)})
		s.RecordHandoff(Handoff{Portable: "alice", Prev: "C", From: "D", To: "A", Time: float64(i) + 0.5})
	}
	// Crowd pattern through D goes to B.
	for i := 0; i < 20; i++ {
		s.RecordHandoff(Handoff{Portable: fmt.Sprintf("p%d", i), Prev: "C", From: "D", To: "B", Time: float64(i)})
	}
	// Level 1: portable profile wins for alice.
	next, ok := s.PredictByPortable("alice", "C", "D")
	if !ok || next != "A" {
		t.Fatalf("portable prediction = %v, want A", next)
	}
	// Level 2: cell profile reflects the crowd.
	next, ok = s.PredictByCell("D", "C")
	if !ok || next != "B" {
		t.Fatalf("cell prediction = %v, want B", next)
	}
	// Unknown portable: no level-1 prediction.
	if _, ok := s.PredictByPortable("stranger", "C", "D"); ok {
		t.Fatal("stranger predicted at level 1")
	}
	dist := s.HandoffDistribution("D", "C")
	if math.Abs(dist["B"]-20.0/25) > 1e-9 {
		t.Fatalf("distribution = %v", dist)
	}
}

func TestServerIgnoresSelfHandoffs(t *testing.T) {
	s := NewServer("z", []topology.CellID{"C"}, ServerOptions{})
	s.RecordHandoff(Handoff{Portable: "a", From: "C", To: "C"})
	if s.Cell("C").Len() != 0 {
		t.Fatal("self-handoff recorded")
	}
}

func TestServerExportImport(t *testing.T) {
	s1 := NewServer("z1", []topology.CellID{"C", "D"}, ServerOptions{})
	s2 := NewServer("z2", []topology.CellID{"E"}, ServerOptions{})
	s1.RecordHandoff(Handoff{Portable: "alice", Prev: "C", From: "D", To: "E", Time: 1})
	p, err := s1.ExportPortable("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.ExportPortable("alice"); err == nil {
		t.Fatal("double export succeeded")
	}
	s2.ImportPortable(p)
	next, ok := s2.PredictByPortable("alice", "C", "D")
	if !ok || next != "E" {
		t.Fatalf("imported prediction = %v/%v, want E", next, ok)
	}
}

func TestClassifyOffice(t *testing.T) {
	c := NewCellProfile("A", 500, 60)
	// One regular occupant entering and leaving many times.
	for i := 0; i < 40; i++ {
		c.RecordArrival(Handoff{Portable: "prof", To: "A", Time: float64(i * 100)})
		c.RecordDeparture(Handoff{Portable: "prof", Prev: "D", From: "A", To: "D", Time: float64(i*100 + 50)})
	}
	if got := Classify(c, ClassifyOptions{}); got != topology.ClassOffice {
		t.Fatalf("classified as %v, want office", got)
	}
}

func TestClassifyCorridor(t *testing.T) {
	c := NewCellProfile("D", 500, 60)
	rng := randx.New(1)
	// Many distinct portables passing straight through: C->D->E and
	// E->D->C.
	for i := 0; i < 120; i++ {
		p := fmt.Sprintf("p%d", i)
		tm := float64(i) * 30
		c.RecordArrival(Handoff{Portable: p, To: "D", Time: tm})
		if rng.Bernoulli(0.5) {
			c.RecordDeparture(Handoff{Portable: p, Prev: "C", From: "D", To: "E", Time: tm + 5})
		} else {
			c.RecordDeparture(Handoff{Portable: p, Prev: "E", From: "D", To: "C", Time: tm + 5})
		}
	}
	if got := Classify(c, ClassifyOptions{}); got != topology.ClassCorridor {
		t.Fatalf("classified as %v, want corridor", got)
	}
}

func TestClassifyMeetingRoom(t *testing.T) {
	c := NewCellProfile("M", 500, 60)
	// Handoff bursts around t=0 and t=3600, silence between.
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("s%d", i)
		c.RecordArrival(Handoff{Portable: p, To: "M", Time: float64(i % 5)})
		c.RecordDeparture(Handoff{Portable: p, Prev: "c1", From: "M", To: "c1", Time: 3600 + float64(i%5)})
	}
	// A trickle in between so the series is not empty.
	c.RecordArrival(Handoff{Portable: "late", To: "M", Time: 1800})
	if got := Classify(c, ClassifyOptions{}); got != topology.ClassMeetingRoom {
		t.Fatalf("classified as %v, want meeting room", got)
	}
}

func TestClassifyCafeteria(t *testing.T) {
	c := NewCellProfile("cafe", 2000, 60)
	rng := randx.New(2)
	// Steady stream of distinct visitors from two directions with
	// balanced onward movement (low directionality), smooth in time.
	n := 0
	for slot := 0; slot < 40; slot++ {
		for k := 0; k < 10; k++ {
			p := fmt.Sprintf("v%d", n)
			n++
			tm := float64(slot*60 + k*6)
			c.RecordArrival(Handoff{Portable: p, To: "cafe", Time: tm})
			prev := topology.CellID("c1")
			if rng.Bernoulli(0.5) {
				prev = "c2"
			}
			// Departures split evenly, including back where they came
			// from, so corridor consistency stays low.
			var to topology.CellID
			switch rng.Intn(3) {
			case 0:
				to = "c1"
			case 1:
				to = "c2"
			default:
				to = "c3"
			}
			c.RecordDeparture(Handoff{Portable: p, Prev: prev, From: "cafe", To: to, Time: tm + 30})
		}
	}
	if got := Classify(c, ClassifyOptions{}); got != topology.ClassCafeteria {
		t.Fatalf("classified as %v, want cafeteria", got)
	}
}

func TestClassifyUnknownWhenSparse(t *testing.T) {
	c := NewCellProfile("x", 100, 60)
	c.RecordArrival(Handoff{Portable: "p", To: "x", Time: 1})
	if got := Classify(c, ClassifyOptions{}); got != topology.ClassUnknown {
		t.Fatalf("classified as %v with 1 sample, want unknown", got)
	}
}

// Property: cell-profile probabilities always sum to ~1 when history
// exists, and every probability is in (0, 1].
func TestQuickProbabilitiesNormalized(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := randx.New(seed)
		c := NewCellProfile("D", 50, 60)
		total := int(n%60) + 1
		nexts := []topology.CellID{"A", "B", "F", "G"}
		for i := 0; i < total; i++ {
			c.RecordDeparture(Handoff{
				Prev: "C",
				From: "D",
				To:   nexts[rng.Intn(len(nexts))],
				Time: float64(i),
			})
		}
		probs := c.Probabilities("C")
		sum := 0.0
		for _, p := range probs {
			if p <= 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: portable profile history never exceeds its limit and
// predictions always name a cell seen in retained history.
func TestQuickPortableHistoryBound(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := randx.New(seed)
		limit := int(n%20) + 1
		p := NewPortableProfile("x", limit)
		cells := []topology.CellID{"A", "B", "C", "D"}
		for i := 0; i < 100; i++ {
			p.Record(Handoff{
				Prev: cells[rng.Intn(4)],
				From: cells[rng.Intn(4)],
				To:   cells[rng.Intn(4)],
			})
			if p.Len() > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerAddCellAndSlotDuration(t *testing.T) {
	s := NewServer("z", []topology.CellID{"A"}, ServerOptions{SlotDuration: 30})
	s.AddCell("B")
	if s.Cell("B") == nil {
		t.Fatal("AddCell did not register")
	}
	if got := s.Cell("B").SlotDuration(); got != 30 {
		t.Fatalf("slot duration = %v", got)
	}
	// Re-adding preserves the existing profile.
	s.Cell("B").RecordArrival(Handoff{Portable: "p", To: "B", Time: 1})
	s.AddCell("B")
	if s.Cell("B").Visitors() != 1 {
		t.Fatal("AddCell clobbered existing profile")
	}
	if s.Cell("ghost") != nil {
		t.Fatal("unknown cell returned")
	}
	if got := s.Portables(); len(got) != 0 {
		t.Fatalf("portables = %v", got)
	}
}
