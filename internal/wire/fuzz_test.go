package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode is the codec's robustness target: Decode must never
// panic on arbitrary bytes, must never hand back data larger than the
// frame that claimed it (no length-prefix-driven over-allocation), and
// must be canonical — any frame it accepts re-encodes to exactly the
// same bytes.
func FuzzWireDecode(f *testing.F) {
	for _, m := range everyMessage() {
		frame, err := Encode(9, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 6, Version, byte(TShutdown), 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, seq, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted frames decode only strings the frame physically
		// carried: total decoded string bytes can never exceed the input.
		budget := len(data)
		for _, s := range decodedStrings(m) {
			if len(s) > budget {
				t.Fatalf("decoded %d string bytes from a %d-byte frame", len(s), len(data))
			}
		}
		// Canonical: re-encoding reproduces the input byte-for-byte.
		again, err := Encode(seq, m)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, again)
		}
	})
}

func decodedStrings(m Message) []string {
	switch v := m.(type) {
	case Hello:
		return []string{v.Node}
	case SignalSetup:
		return []string{v.Conn}
	case SignalCommit:
		return []string{v.Conn}
	case SignalAbort:
		return []string{v.Conn, v.Reason}
	case Advertise:
		return []string{v.Conn}
	case Update:
		return []string{v.Conn}
	case LeaseRenew:
		return []string{v.Conn}
	case Resync:
		return []string{v.Conn}
	default:
		return nil
	}
}
