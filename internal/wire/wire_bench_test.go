package wire

import (
	"testing"

	"armnet/internal/raceflag"
)

// The codec sits on the live hot path: every protocol hop crosses it
// twice (encode at the controller, decode at the node) plus the ack
// pair. The benchmarks pin its per-message cost; AppendFrame with a
// reused buffer is the zero-allocation path the transport uses.

var benchMsg = Advertise{Conn: "portable-17:2", Hop: 5, Round: 4, Stamp: 1.2345e6}

func BenchmarkWireEncode(b *testing.B) {
	buf := make([]byte, 0, MaxFrame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], uint32(i), benchMsg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	frame, err := Encode(7, benchMsg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeAllocFree pins AppendFrame's zero-allocation contract with
// a warm buffer.
func TestEncodeAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	buf := make([]byte, 0, MaxFrame)
	var m Message = benchMsg // box once; the transport holds Messages boxed
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendFrame(buf[:0], 1, m)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame with warm buffer: %v allocs/op, want 0", allocs)
	}
}
