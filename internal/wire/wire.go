// Package wire is the binary codec for the control-plane messages the
// signal and maxmin protocols exchange when they run over a real
// transport (internal/testnet, cmd/armnode). One frame carries one
// message:
//
//	0:2   uint16 BE  payload length (bytes after this prefix)
//	2     uint8      version (currently 1)
//	3     uint8      message type
//	4:8   uint32 BE  sender sequence number
//	8:    body       type-specific fields
//
// Body fields are fixed-width big-endian: float64 as IEEE-754 bits,
// hop/round counters as uint16, strings as uint16 length + bytes. A
// frame maps one-to-one onto a UDP datagram; the redundant length
// prefix lets receivers reject truncated or concatenated datagrams and
// lets the same frames travel a byte stream unchanged.
//
// Decode is total: any byte slice either yields a valid message or an
// error — never a panic — and claimed lengths are validated against the
// bytes actually present before any allocation, so a malformed frame
// cannot make the decoder allocate more than the frame's own size.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the current frame format version.
const Version = 1

// MaxFrame bounds a whole encoded frame. It comfortably exceeds any
// message the protocols produce while keeping every frame well inside a
// single unfragmented UDP datagram.
const MaxFrame = 1024

// maxString bounds any encoded string field (connection IDs, node
// names, abort reasons).
const maxString = 255

// Type identifies a message. The set is closed; it covers every control
// message the signal plane (setup, commit confirmation, abort) and the
// maxmin protocol (ADVERTISE, UPDATE) send, plus transport handshake
// and teardown.
type Type uint8

const (
	// THello announces a node joining the testnet.
	THello Type = iota + 1
	// TAck acknowledges receipt of the frame with the echoed sequence.
	TAck
	// TSignalSetup is one forward-pass hop of a setup session placing a
	// tentative hold.
	TSignalSetup
	// TSignalCommit is one reverse-pass hop of the commit confirmation.
	TSignalCommit
	// TSignalAbort tears tentative holds down after a failure.
	TSignalAbort
	// TAdvertise is one hop of a maxmin ADVERTISE sweep.
	TAdvertise
	// TUpdate is one hop of a maxmin UPDATE commit.
	TUpdate
	// TShutdown asks a node process to exit after acking.
	TShutdown
	// TLeaseRenew renews the hold lease covering one live connection's
	// reservation on the receiving node's links (or, with an empty
	// connection, acts as a pure liveness heartbeat). An agent that
	// stops acking renewals is declared dead after the miss budget and
	// the controller reclaims the leases — releasing the reservations
	// routed over the agent's links instead of leaking them.
	TLeaseRenew
	// TResync replays one live connection's reservation state to an
	// agent that restarted (or healed from a partition) with an empty
	// mirror — the re-LISTEN handshake's state transfer.
	TResync

	typeCount = iota + 1
)

var typeNames = [typeCount]string{
	THello:        "hello",
	TAck:          "ack",
	TSignalSetup:  "signal-setup",
	TSignalCommit: "signal-commit",
	TSignalAbort:  "signal-abort",
	TAdvertise:    "advertise",
	TUpdate:       "update",
	TShutdown:     "shutdown",
	TLeaseRenew:   "lease-renew",
	TResync:       "resync",
}

// String returns the stable wire name (used in node traces).
func (t Type) String() string {
	if t == 0 || int(t) >= typeCount {
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
	return typeNames[t]
}

// Decode errors.
var (
	ErrShort    = errors.New("wire: frame truncated")
	ErrLength   = errors.New("wire: length prefix mismatch")
	ErrVersion  = errors.New("wire: unsupported version")
	ErrType     = errors.New("wire: unknown message type")
	ErrTrailing = errors.New("wire: trailing bytes after message")
	ErrTooLong  = errors.New("wire: frame exceeds MaxFrame")
	ErrString   = errors.New("wire: string field too long")
)

// Message is the sealed payload interface: exactly the types in this
// file implement it.
type Message interface {
	// WireType identifies the concrete message.
	WireType() Type
}

// Hello announces a node to the controller (and doubles as a liveness
// probe: the controller retries it until the node acks).
type Hello struct {
	Node string
}

// Ack acknowledges the frame whose sequence number it echoes.
type Ack struct {
	AckSeq uint32
}

// SignalSetup carries one forward-pass hop of a setup session: the node
// owning the link records it and acks; the hold itself lives in the
// controller's plane (the protocol state machine is untouched).
type SignalSetup struct {
	Conn      string
	Hop       uint16
	Bandwidth float64
}

// SignalCommit carries one reverse-pass hop of the commit confirmation.
type SignalCommit struct {
	Conn      string
	Hop       uint16
	Bandwidth float64
}

// SignalAbort carries a rollback sweep hop.
type SignalAbort struct {
	Conn   string
	Hop    uint16
	Reason string
}

// Advertise carries one hop of a maxmin ADVERTISE sweep.
type Advertise struct {
	Conn  string
	Hop   uint16
	Round uint16
	Stamp float64
}

// Update carries one hop of a maxmin UPDATE commit.
type Update struct {
	Conn string
	Hop  uint16
	Rate float64
}

// Shutdown asks the receiving node process to exit after acking.
type Shutdown struct{}

// LeaseRenew renews the hold lease for one live connection whose
// reservation crosses the receiving agent's links. Conn may be empty:
// a bare heartbeat probing agent liveness when no connection is routed
// through it. TTL is the lease duration in seconds from receipt — a
// relative coordinate, so controller and node wall clocks need not
// agree on an epoch. The node prunes mirrored connections whose lease
// lapses, so a controller partitioned away cannot pin node-side state
// forever.
type LeaseRenew struct {
	Conn      string
	Bandwidth float64
	TTL       float64
}

// Resync replays one live connection's reservation to an agent whose
// mirror state was lost (crash/restart) or may have decayed
// (partition): the state-transfer half of the re-LISTEN handshake. It
// carries the same lease TTL a renewal would.
type Resync struct {
	Conn      string
	Bandwidth float64
	TTL       float64
}

func (Hello) WireType() Type        { return THello }
func (Ack) WireType() Type          { return TAck }
func (SignalSetup) WireType() Type  { return TSignalSetup }
func (SignalCommit) WireType() Type { return TSignalCommit }
func (SignalAbort) WireType() Type  { return TSignalAbort }
func (Advertise) WireType() Type    { return TAdvertise }
func (Update) WireType() Type       { return TUpdate }
func (Shutdown) WireType() Type     { return TShutdown }
func (LeaseRenew) WireType() Type   { return TLeaseRenew }
func (Resync) WireType() Type       { return TResync }

// headerLen is the fixed frame overhead before the body.
const headerLen = 8

// Encode builds a complete frame for m with the given sequence number.
func Encode(seq uint32, m Message) ([]byte, error) {
	return AppendFrame(nil, seq, m)
}

// AppendFrame appends m's frame to dst and returns the extended slice —
// the allocation-free path when the caller reuses a buffer.
func AppendFrame(dst []byte, seq uint32, m Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, Version, byte(m.WireType()))
	dst = binary.BigEndian.AppendUint32(dst, seq)
	var err error
	switch v := m.(type) {
	case Hello:
		dst, err = appendString(dst, v.Node)
	case Ack:
		dst = binary.BigEndian.AppendUint32(dst, v.AckSeq)
	case SignalSetup:
		dst, err = appendString(dst, v.Conn)
		dst = binary.BigEndian.AppendUint16(dst, v.Hop)
		dst = appendFloat(dst, v.Bandwidth)
	case SignalCommit:
		dst, err = appendString(dst, v.Conn)
		dst = binary.BigEndian.AppendUint16(dst, v.Hop)
		dst = appendFloat(dst, v.Bandwidth)
	case SignalAbort:
		dst, err = appendString(dst, v.Conn)
		dst = binary.BigEndian.AppendUint16(dst, v.Hop)
		if err == nil {
			dst, err = appendString(dst, v.Reason)
		}
	case Advertise:
		dst, err = appendString(dst, v.Conn)
		dst = binary.BigEndian.AppendUint16(dst, v.Hop)
		dst = binary.BigEndian.AppendUint16(dst, v.Round)
		dst = appendFloat(dst, v.Stamp)
	case Update:
		dst, err = appendString(dst, v.Conn)
		dst = binary.BigEndian.AppendUint16(dst, v.Hop)
		dst = appendFloat(dst, v.Rate)
	case Shutdown:
	case LeaseRenew:
		dst, err = appendString(dst, v.Conn)
		dst = appendFloat(dst, v.Bandwidth)
		dst = appendFloat(dst, v.TTL)
	case Resync:
		dst, err = appendString(dst, v.Conn)
		dst = appendFloat(dst, v.Bandwidth)
		dst = appendFloat(dst, v.TTL)
	default:
		return dst[:start], fmt.Errorf("%w: %T", ErrType, m)
	}
	if err != nil {
		return dst[:start], err
	}
	payload := len(dst) - start - 2
	if len(dst)-start > MaxFrame {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrTooLong, len(dst)-start)
	}
	binary.BigEndian.PutUint16(dst[start:], uint16(payload))
	return dst, nil
}

// Decode parses one complete frame. The frame must be consumed exactly:
// trailing bytes, truncation, or a length prefix that disagrees with
// the slice are errors, never panics.
func Decode(frame []byte) (Message, uint32, error) {
	if len(frame) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrShort, len(frame))
	}
	if len(frame) > MaxFrame {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTooLong, len(frame))
	}
	if got := int(binary.BigEndian.Uint16(frame)); got != len(frame)-2 {
		return nil, 0, fmt.Errorf("%w: prefix says %d, frame holds %d", ErrLength, got, len(frame)-2)
	}
	if frame[2] != Version {
		return nil, 0, fmt.Errorf("%w: %d", ErrVersion, frame[2])
	}
	typ := Type(frame[3])
	seq := binary.BigEndian.Uint32(frame[4:8])
	d := decoder{buf: frame[headerLen:]}
	var m Message
	switch typ {
	case THello:
		m = Hello{Node: d.string()}
	case TAck:
		m = Ack{AckSeq: d.uint32()}
	case TSignalSetup:
		m = SignalSetup{Conn: d.string(), Hop: d.uint16(), Bandwidth: d.float()}
	case TSignalCommit:
		m = SignalCommit{Conn: d.string(), Hop: d.uint16(), Bandwidth: d.float()}
	case TSignalAbort:
		m = SignalAbort{Conn: d.string(), Hop: d.uint16(), Reason: d.string()}
	case TAdvertise:
		m = Advertise{Conn: d.string(), Hop: d.uint16(), Round: d.uint16(), Stamp: d.float()}
	case TUpdate:
		m = Update{Conn: d.string(), Hop: d.uint16(), Rate: d.float()}
	case TShutdown:
		m = Shutdown{}
	case TLeaseRenew:
		m = LeaseRenew{Conn: d.string(), Bandwidth: d.float(), TTL: d.float()}
	case TResync:
		m = Resync{Conn: d.string(), Bandwidth: d.float(), TTL: d.float()}
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrType, uint8(typ))
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if len(d.buf) != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf))
	}
	return m, seq, nil
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > maxString {
		return dst, fmt.Errorf("%w: %d bytes", ErrString, len(s))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// decoder consumes body fields with latched error state, so field reads
// chain without per-field checks and a short buffer degrades to zero
// values plus an error rather than a panic.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("%w: need %d more bytes", ErrShort, n-len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) float() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// string reads a length-prefixed string. The claimed length is checked
// against both the string bound and the bytes actually remaining before
// the copy, so a hostile prefix cannot trigger a large allocation.
func (d *decoder) string() string {
	n := int(d.uint16())
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.err = fmt.Errorf("%w: claims %d bytes", ErrString, n)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
