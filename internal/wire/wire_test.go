package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// everyMessage returns one representative of every message type —
// appended to, the exhaustiveness test below fails if a new Type has no
// entry here.
func everyMessage() []Message {
	return []Message{
		Hello{Node: "west"},
		Ack{AckSeq: 7},
		SignalSetup{Conn: "alice:0", Hop: 3, Bandwidth: 256e3},
		SignalCommit{Conn: "alice:0", Hop: 9, Bandwidth: 1.2e6},
		SignalAbort{Conn: "bob:2", Hop: 1, Reason: "hop-rejected"},
		Advertise{Conn: "carol:1", Hop: 5, Round: 4, Stamp: 987654.321},
		Update{Conn: "dave:3", Hop: 2, Rate: 1.6e6},
		Shutdown{},
		LeaseRenew{Conn: "alice:0", Bandwidth: 256e3, TTL: 4.25},
		Resync{Conn: "dave:3", Bandwidth: 300e3, TTL: 9.5},
	}
}

// TestRoundTripEveryType pins Encode∘Decode = identity for every
// message type, including seq, and that the type table is exhaustive.
func TestRoundTripEveryType(t *testing.T) {
	covered := map[Type]bool{}
	for i, m := range everyMessage() {
		seq := uint32(1000 + i)
		frame, err := Encode(seq, m)
		if err != nil {
			t.Fatalf("Encode(%T): %v", m, err)
		}
		got, gotSeq, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(%T): %v", m, err)
		}
		if gotSeq != seq {
			t.Fatalf("%T: seq %d, want %d", m, gotSeq, seq)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %#v, want %#v", got, m)
		}
		covered[m.WireType()] = true
	}
	for typ := Type(1); int(typ) < typeCount; typ++ {
		if !covered[typ] {
			t.Errorf("no round-trip coverage for %s", typ)
		}
		if strings.HasPrefix(typ.String(), "Type(") {
			t.Errorf("type %d has no name", typ)
		}
	}
}

// TestRoundTripEdgeValues exercises the encoding corners: empty
// strings, maximum-length strings, zero/negative/NaN floats, and the
// extremes of the integer fields.
func TestRoundTripEdgeValues(t *testing.T) {
	long := strings.Repeat("x", maxString)
	msgs := []Message{
		Hello{Node: ""},
		Hello{Node: long},
		SignalAbort{Conn: "", Hop: math.MaxUint16, Reason: long},
		Update{Conn: "c", Hop: 0, Rate: math.Inf(1)},
		Update{Conn: "c", Hop: 0, Rate: -0.0},
		Advertise{Conn: "c", Hop: 0, Round: math.MaxUint16, Stamp: math.SmallestNonzeroFloat64},
		Ack{AckSeq: math.MaxUint32},
		LeaseRenew{Conn: "", Bandwidth: 0, TTL: math.Inf(1)},
		Resync{Conn: long, Bandwidth: -0.0, TTL: 0},
	}
	for _, m := range msgs {
		frame, err := Encode(math.MaxUint32, m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		got, seq, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(%#v): %v", m, err)
		}
		if seq != math.MaxUint32 {
			t.Fatalf("seq = %d", seq)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %#v, want %#v", got, m)
		}
	}
	// NaN round-trips by bit pattern (DeepEqual rejects NaN == NaN).
	frame, err := Encode(1, Update{Conn: "c", Rate: math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.(Update).Rate) {
		t.Fatalf("NaN did not survive: %v", got.(Update).Rate)
	}
}

func TestEncodeRejectsOversizedString(t *testing.T) {
	_, err := Encode(1, Hello{Node: strings.Repeat("x", maxString+1)})
	if !errors.Is(err, ErrString) {
		t.Fatalf("err = %v, want ErrString", err)
	}
}

// TestDecodeMalformed pins the error classes: Decode never panics and
// classifies each corruption.
func TestDecodeMalformed(t *testing.T) {
	good, err := Encode(42, SignalSetup{Conn: "alice:0", Hop: 1, Bandwidth: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrShort},
		{"header-only-truncated", good[:5], ErrShort},
		{"body-truncated", good[:len(good)-3], ErrLength},
		{"trailing", append(append([]byte(nil), good...), 0xFF), ErrLength},
		{"bad-version", mutate(good, 2, 99), ErrVersion},
		{"bad-type", mutate(good, 3, 200), ErrType},
		{"zero-type", mutate(good, 3, 0), ErrType},
		{"oversized", make([]byte, MaxFrame+1), ErrTooLong},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A length prefix that lies about the payload (consistent with the
	// slice, inconsistent with the fields) must fail cleanly too.
	short := append([]byte(nil), good[:headerLen+1]...)
	binary.BigEndian.PutUint16(short, uint16(len(short)-2))
	if _, _, err := Decode(short); !errors.Is(err, ErrShort) {
		t.Errorf("lying prefix: err = %v, want ErrShort", err)
	}

	// A string length claiming more than the remaining bytes must not
	// allocate or succeed.
	hello, _ := Encode(1, Hello{Node: "ab"})
	binary.BigEndian.PutUint16(hello[headerLen:], 500) // claims 500 bytes, has 2
	if _, _, err := Decode(hello); err == nil {
		t.Error("hostile string length decoded successfully")
	}
}

// TestDecodeRejectsTrailingBody pins exact consumption: extra body
// bytes hidden behind a consistent length prefix are an error.
func TestDecodeRejectsTrailingBody(t *testing.T) {
	frame, _ := Encode(1, Shutdown{})
	frame = append(frame, 0xAB)
	binary.BigEndian.PutUint16(frame, uint16(len(frame)-2))
	if _, _, err := Decode(frame); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func mutate(frame []byte, at int, v byte) []byte {
	out := append([]byte(nil), frame...)
	out[at] = v
	return out
}
