package core

import (
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/eventbus"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

// OpenConnection admits a new downlink connection from a wired host to
// the portable with the given QoS bounds. It returns the connection ID on
// success and ErrRejected (wrapped with the reason) when admission fails.
//
// A request with zero bandwidth bounds (req.BestEffort()) bypasses
// admission control entirely (§4: "if no QoS parameters are specified,
// the network will provide best-effort service"): the connection is
// tracked with no reservation, is never blocked, and never causes a
// handoff drop — it simply uses whatever capacity is left over.
func (m *Manager) OpenConnection(portable string, req qos.Request) (string, error) {
	p, ok := m.portables[portable]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownPortable, portable)
	}
	eventbus.Pub(m.Bus, eventbus.ConnectionRequested{Portable: portable})
	// Overload shedding applies before any resources are touched;
	// best-effort requests are exempt (they hold nothing, §4 never
	// blocks them).
	if !req.BestEffort() {
		if err := m.allowSetup(p); err != nil {
			return "", err
		}
	}
	host := m.Env.Hosts[m.Rng.Intn(len(m.Env.Hosts))]
	route, err := m.Env.Backbone.ShortestPath(host, topology.AirNode(p.Cell))
	if err != nil {
		return "", err
	}
	connID := fmt.Sprintf("conn-%d", m.nextConn)
	m.nextConn++
	if req.BestEffort() {
		eventbus.Pub(m.Bus, eventbus.ConnectionAdmitted{Conn: connID, Portable: portable, BestEffort: true})
		c := &Connection{ID: connID, Portable: portable, Req: req, Host: host, Route: route}
		m.conns[connID] = c
		p.conns[connID] = true
		return connID, nil
	}
	res, err := m.Adm.Admit(admission.Test{
		ConnID:     connID,
		Req:        req,
		Route:      route,
		Kind:       admission.KindNew,
		Mobility:   p.Mobility,
		Discipline: m.Cfg.Discipline,
		LMax:       m.Cfg.LMax,
	})
	if err != nil {
		return "", err
	}
	if !res.Admitted {
		eventbus.Pub(m.Bus, eventbus.ConnectionBlocked{Portable: portable, Reason: res.Reason})
		return "", fmt.Errorf("%w: %s at %s", ErrRejected, res.Reason, res.FailedLink)
	}
	eventbus.Pub(m.Bus, eventbus.ConnectionAdmitted{Conn: connID, Portable: portable, Bandwidth: res.Bandwidth})
	c := &Connection{
		ID: connID, Portable: portable, Req: req,
		Host: host, Route: route, Bandwidth: res.Bandwidth,
	}
	m.conns[connID] = c
	p.conns[connID] = true
	if m.Adpt != nil {
		if err := m.Adpt.Register(connID, route, req.Bandwidth, p.Mobility); err != nil {
			return "", err
		}
	}
	m.setupMulticast(c, p.Cell)
	m.refreshAdvance(p)
	m.adjustPools(p.Cell)
	return connID, nil
}

// CloseConnection releases a connection everywhere.
func (m *Manager) CloseConnection(connID string) error {
	c, ok := m.conns[connID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConn, connID)
	}
	eventbus.Pub(m.Bus, eventbus.ConnectionClosed{Conn: connID, Portable: c.Portable})
	m.ledger.Release(connID, c.Route)
	m.releaseMulticast(c)
	if m.Adpt != nil {
		m.Adpt.Unregister(connID)
	}
	delete(m.conns, connID)
	delete(m.rateWatchers, connID)
	if p := m.portables[c.Portable]; p != nil {
		delete(p.conns, connID)
		m.refreshAdvance(p)
	}
	return nil
}

// setupMulticast builds the wired multicast tree toward the base stations
// of the current cell's neighbors and reserves b_min on its wired links
// where possible. Failure is never fatal (§4: "the failure of the
// end-to-end test along any route will not cause the forced termination
// of the connection").
func (m *Manager) setupMulticast(c *Connection, cell topology.CellID) {
	u := m.Env.Universe
	cc := u.Cell(cell)
	if cc == nil {
		return
	}
	var dsts []topology.NodeID
	for _, nid := range cc.Neighbors() {
		dsts = append(dsts, u.Cell(nid).BaseStation)
	}
	tree, err := m.Env.Backbone.Multicast(c.Host, dsts)
	if err != nil {
		return
	}
	c.Multicast = &tree
	// Reserve b_min on each branch with a best-effort admission test.
	for _, dst := range sortedNodeIDs(tree.Branches) {
		route := tree.Branches[dst]
		if len(route.Links) == 0 {
			continue
		}
		_, _ = m.Adm.Admit(admission.Test{
			ConnID:     c.ID + "@mc:" + string(dst),
			Req:        c.Req,
			Route:      route,
			Kind:       admission.KindNew,
			Mobility:   qos.Mobile,
			Discipline: m.Cfg.Discipline,
			LMax:       m.Cfg.LMax,
		})
	}
}

func sortedNodeIDs(m map[topology.NodeID]topology.Route) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// releaseMulticast frees the multicast branch reservations.
func (m *Manager) releaseMulticast(c *Connection) {
	if c.Multicast == nil {
		return
	}
	for dst, route := range c.Multicast.Branches {
		m.ledger.Release(c.ID+"@mc:"+string(dst), route)
	}
	c.Multicast = nil
}

// HandoffPortable executes a handoff of the portable into the given
// neighboring cell: every connection is re-admitted over the new route
// (consuming advance reservations when present, dipping into the B_dyn
// pool for unpredicted moves of static portables), the profile servers
// are updated, the static timer restarts, and a fresh advance reservation
// is placed per the §6 prediction.
func (m *Manager) HandoffPortable(id string, to topology.CellID) error {
	p, ok := m.portables[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPortable, id)
	}
	toCell := m.Env.Universe.Cell(to)
	if toCell == nil {
		return fmt.Errorf("%w: %s", ErrUnknownCell, to)
	}
	if to == p.Cell {
		return nil
	}
	from := p.Cell
	// Was this move predicted (advance reservation waiting in `to`)?
	_, predicted := p.reservedCells[to]
	// Sudden movement of a static portable: unpredicted by definition,
	// allowed to claim the pool.
	kind := admission.KindHandoff
	if !predicted {
		kind = admission.KindPoolClaim
		eventbus.Pub(m.Bus, eventbus.PoolClaim{Portable: id, From: string(from), To: string(to)})
	}
	// Update counters for meeting rooms.
	m.noteMeetingDeparture(id, from)
	m.noteMeetingArrival(id, to)

	// Report the handoff to the profile machinery before re-admission,
	// mirroring the base station's update message.
	m.Pred.RecordHandoff(profileHandoff(p, to, m.Sim.Now()))

	// Score the pending §6 prediction against the actual destination —
	// before clearAdvance discards the note.
	m.resolvePrediction(p, to)

	// Clear this portable's old advance reservations (including the one
	// in `to`, which the re-admission below consumes via the ledger).
	m.clearAdvance(p)

	for _, connID := range p.Conns() {
		c := m.conns[connID]
		eventbus.Pub(m.Bus, eventbus.HandoffAttempt{
			Conn: connID, Portable: id,
			From: string(from), To: string(to), Predicted: predicted,
		})
		newRoute, err := m.Env.Backbone.ShortestPath(c.Host, topology.AirNode(to))
		if err != nil {
			m.dropConnection(c, p)
			continue
		}
		m.recordHandoffLatency(c, newRoute, predicted)
		if c.Req.BestEffort() {
			// Best-effort connections carry no reservation: they follow
			// the portable unconditionally.
			c.Route = newRoute
			eventbus.Pub(m.Bus, eventbus.HandoffOutcome{Conn: connID, Portable: id})
			continue
		}
		// Release the old path first (the portable has left the cell),
		// then admit on the new one.
		m.ledger.Release(connID, c.Route)
		test := admission.Test{
			ConnID:     connID,
			Req:        c.Req,
			Route:      newRoute,
			Kind:       kind,
			Mobility:   qos.Mobile,
			Discipline: m.Cfg.Discipline,
			LMax:       m.Cfg.LMax,
		}
		res, err := m.Adm.Admit(test)
		if err == nil && !res.Admitted && m.Ovl != nil && res.FailedLink != "" {
			// Degrade before drop: cap every adaptable connection on the
			// contended link at b_min, then re-test once. Dropping an
			// ongoing connection is the worst outcome the paper knows
			// (§6); excess bandwidth must go first.
			if m.degradeLink(res.FailedLink) > 0 {
				res, err = m.Adm.Admit(test)
			}
		}
		if err != nil || !res.Admitted {
			m.dropConnection(c, p)
			continue
		}
		eventbus.Pub(m.Bus, eventbus.HandoffOutcome{Conn: connID, Portable: id})
		if m.Adpt != nil {
			m.Adpt.Unregister(connID)
		}
		m.releaseMulticast(c)
		c.Route = newRoute
		c.Bandwidth = res.Bandwidth
		if m.Adpt != nil {
			_ = m.Adpt.Register(connID, newRoute, c.Req.Bandwidth, qos.Mobile)
		}
		m.setupMulticast(c, to)
	}

	p.Prev = from
	p.Cell = to
	p.arrivedAt = m.Sim.Now()
	m.becomeMobile(p)
	m.armStaticTimer(p)
	m.refreshAdvance(p)
	m.adjustPools(to)
	m.adjustPools(from)
	return nil
}

// dropConnection force-terminates a connection that failed its handoff
// admission. The drop log lives in Metrics, which hears about it through
// the HandoffOutcome event.
func (m *Manager) dropConnection(c *Connection, p *Portable) {
	eventbus.Pub(m.Bus, eventbus.HandoffOutcome{Conn: c.ID, Portable: p.ID, Dropped: true})
	m.ledger.Release(c.ID, c.Route)
	m.releaseMulticast(c)
	if m.Adpt != nil {
		m.Adpt.Unregister(c.ID)
	}
	delete(m.conns, c.ID)
	delete(m.rateWatchers, c.ID)
	delete(p.conns, c.ID)
}
