package core

import (
	"fmt"

	"armnet/internal/adapt"
	"armnet/internal/eventbus"
	"armnet/internal/predict"
	"armnet/internal/profile"
	"armnet/internal/qos"
	"armnet/internal/reserve"
	"armnet/internal/sortx"
	"armnet/internal/topology"
)

// PerUserBW is the planning bandwidth for aggregate (per-head) advance
// reservations: the expectation of the paper's workload mix, 0.75·16 kb/s
// + 0.25·64 kb/s.
const PerUserBW = 28e3

func profileHandoff(p *Portable, to topology.CellID, now float64) profile.Handoff {
	return profile.Handoff{
		Portable: p.ID,
		Prev:     p.Prev,
		From:     p.Cell,
		To:       to,
		Time:     now,
	}
}

// ---- Advance reservation bookkeeping ----
//
// Several sources write advance reservations into the same wireless link:
// per-portable predictions, lounge policies, meeting calendars. The book
// tracks each source's amount so one source's update never clobbers
// another's; the ledger sees the sum.

func (m *Manager) bookSet(link topology.LinkID, source string, amount float64) {
	if link == "" {
		return
	}
	entries := m.book[link]
	if entries == nil {
		if amount <= 0 {
			return
		}
		entries = make(map[string]float64)
		m.book[link] = entries
	}
	if amount <= 0 {
		delete(entries, source)
	} else {
		entries[source] = amount
	}
	// Sorted sum: the total feeds admission and excess capacity, and a
	// map-order float sum drifts in the last ulp between runs.
	total := 0.0
	for _, s := range sortx.Keys(entries) {
		total += entries[s]
	}
	_ = m.ledger.SetAdvance(link, total)
}

// clearAdvance removes every per-portable advance reservation of p,
// along with any outcome-pending prediction note (a withdrawn
// reservation is a withdrawn prediction; resolvePrediction must run
// first when a handoff is being scored).
func (m *Manager) clearAdvance(p *Portable) {
	source := "portable:" + p.ID
	for cell := range p.reservedCells {
		m.bookSet(m.downlink(cell), source, 0)
		delete(p.reservedCells, cell)
	}
	if m.lastPred != nil {
		delete(m.lastPred, p.ID)
	}
}

// refreshAdvance recomputes the portable's advance reservation per the
// configured mode. Static portables never hold advance reservations
// (§3.4.2); mobile ones reserve the sum of their connections' b_min.
func (m *Manager) refreshAdvance(p *Portable) {
	m.clearAdvance(p)
	if p.Mobility != qos.Mobile || len(p.conns) == 0 || m.Cfg.Mode == ModeNone {
		return
	}
	demand := 0.0
	for id := range p.conns {
		demand += m.conns[id].Req.Bandwidth.Min
	}
	if demand <= 0 {
		return
	}
	source := "portable:" + p.ID
	place := func(cell topology.CellID) {
		m.bookSet(m.downlink(cell), source, demand)
		p.reservedCells[cell] = demand
		eventbus.Pub(m.Bus, eventbus.AdvanceReservation{
			Cell: string(cell), Portable: p.ID, Amount: demand,
		})
	}
	switch m.Cfg.Mode {
	case ModeBruteForce:
		for _, nid := range m.Env.Universe.Cell(p.Cell).Neighbors() {
			place(nid)
		}
	default: // ModePredictive
		d := m.Pred.NextCell(p.ID, p.Prev, p.Cell)
		if m.Obs != nil {
			m.notePrediction(p, d)
		}
		if d.Action == predict.ActionReserve {
			place(d.Target)
		}
		// ActionDefault is handled in aggregate by evaluatePolicies.
	}
}

// ---- Meetings ----

// RegisterMeeting attaches a booking-calendar entry to a meeting room.
func (m *Manager) RegisterMeeting(room topology.CellID, mt reserve.Meeting) error {
	cell := m.Env.Universe.Cell(room)
	if cell == nil {
		return fmt.Errorf("%w: %s", ErrUnknownCell, room)
	}
	if cell.Class != topology.ClassMeetingRoom {
		return fmt.Errorf("core: cell %s is %s, not a meeting room", room, cell.Class)
	}
	pol, err := reserve.NewMeetingPolicy(mt, reserve.DefaultMeetingConfig())
	if err != nil {
		return err
	}
	m.meetings[room] = append(m.meetings[room], &meetingState{
		policy:  pol,
		arrived: make(map[string]bool),
		left:    make(map[string]bool),
	})
	return nil
}

func (m *Manager) noteMeetingArrival(portable string, cell topology.CellID) {
	for _, ms := range m.meetings[cell] {
		mt := ms.policy.Meeting
		now := m.Sim.Now()
		if now >= mt.Start-ms.policy.Config.LeadIn && now < mt.End {
			ms.arrived[portable] = true
		}
	}
}

func (m *Manager) noteMeetingDeparture(portable string, cell topology.CellID) {
	for _, ms := range m.meetings[cell] {
		if !ms.arrived[portable] {
			continue
		}
		now := m.Sim.Now()
		if now >= ms.policy.Meeting.End-ms.policy.Config.LeadOut {
			ms.left[portable] = true
		}
	}
}

// ---- Periodic policy evaluation ----

// evaluatePolicies runs once per slot: meeting calendars, cafeteria
// least-squares forecasts, and default-lounge one-step/probabilistic
// reservations (§6.2–6.3). Predictive mode only.
func (m *Manager) evaluatePolicies() {
	if m.Cfg.Mode != ModePredictive {
		return
	}
	now := m.Sim.Now()
	// The lounge forecasters read slotted history; evaluation happens at
	// slot boundaries, so "the current slot" (n_t in §6.2) is the slot
	// that just completed, one slot behind the wall clock.
	ref := now - m.Cfg.SlotDuration
	if ref < 0 {
		ref = 0
	}
	u := m.Env.Universe
	for _, cell := range u.Cells() {
		switch cell.Class {
		case topology.ClassMeetingRoom:
			m.evaluateMeetings(cell, now)
		case topology.ClassCafeteria:
			srv := m.Pred.ServerFor(cell.ID)
			if srv == nil {
				continue
			}
			cp := srv.Cell(cell.ID)
			if cp == nil {
				continue
			}
			plan := reserve.CafeteriaPlan(u, cp, ref, PerUserBW)
			m.applyLoungePlan(cell, plan)
		case topology.ClassLoungeDefault:
			srv := m.Pred.ServerFor(cell.ID)
			if srv == nil {
				continue
			}
			cp := srv.Cell(cell.ID)
			if cp == nil {
				continue
			}
			plan, hasDefault := reserve.DefaultPlan(u, cp, ref, PerUserBW)
			if hasDefault {
				plan.Self = m.probabilisticSelf(cell)
			}
			m.applyLoungePlan(cell, plan)
		}
	}
}

func (m *Manager) evaluateMeetings(cell *topology.Cell, now float64) {
	tag := "meeting:" + string(cell.ID)
	roomTotal := 0.0
	neighborTotal := 0.0
	active := m.meetings[cell.ID][:0]
	for _, ms := range m.meetings[cell.ID] {
		roomTotal += float64(ms.policy.RoomSlots(now, len(ms.arrived))) * PerUserBW
		neighborTotal += float64(ms.policy.NeighborSlots(now, len(ms.arrived), len(ms.left))) * PerUserBW
		if ms.policy.Active(now) {
			active = append(active, ms)
		}
	}
	m.meetings[cell.ID] = active
	if total := roomTotal + neighborTotal; total > 0 {
		eventbus.Pub(m.Bus, eventbus.PolicyReservation{
			Cell: string(cell.ID), Source: tag, Amount: total,
		})
	}
	m.bookSet(m.downlink(cell.ID), tag, roomTotal)
	// Split the departure reservation over the neighbors by the cell's
	// handoff distribution.
	srv := m.Pred.ServerFor(cell.ID)
	var probs map[topology.CellID]float64
	if srv != nil {
		probs = srv.HandoffDistribution(cell.ID, "")
	}
	split := predict.SplitForecast(neighborTotal, probs, cell.Neighbors())
	for _, nid := range cell.Neighbors() {
		m.bookSet(m.downlink(nid), tag, split[nid])
	}
}

func (m *Manager) applyLoungePlan(cell *topology.Cell, plan reserve.LoungePlan) {
	tag := "policy:" + string(cell.ID)
	if total := plan.Total(); total > 0 {
		eventbus.Pub(m.Bus, eventbus.PolicyReservation{
			Cell: string(cell.ID), Source: tag, Amount: total,
		})
	}
	for _, nid := range cell.Neighbors() {
		m.bookSet(m.downlink(nid), tag, plan.Neighbor[nid])
	}
	m.bookSet(m.downlink(cell.ID), tag+":self", plan.Self)
}

// probabilisticSelf applies §6.3 in aggregate for a default lounge with
// default neighbors: a single synthetic class at PerUserBW granularity,
// occupancy = connections in the cell, neighbor occupancy = connections
// in the default neighbors.
func (m *Manager) probabilisticSelf(cell *topology.Cell) float64 {
	capUnits := int(cell.Capacity / PerUserBW)
	if capUnits <= 0 {
		return 0
	}
	classes := []reserve.ClassState{{Bandwidth: 1, Mu: 1.0 / 600, Handoff: 0.5}}
	n := []int{m.connsInCell(cell.ID)}
	s := 0
	for _, nid := range cell.Neighbors() {
		if nc := m.Env.Universe.Cell(nid); nc != nil && nc.Class == topology.ClassLoungeDefault {
			s += m.connsInCell(nid)
		}
	}
	plan, err := reserve.ProbabilisticPlan(classes, n, []int{s}, capUnits, m.Cfg.SlotDuration, 0.05)
	if err != nil && plan.MaxConns == nil {
		return 0
	}
	return float64(plan.Reserved) * PerUserBW
}

func (m *Manager) connsInCell(cell topology.CellID) int {
	n := 0
	for _, p := range m.portables {
		if p.Cell == cell {
			n += len(p.conns)
		}
	}
	return n
}

// ---- Pool adjustment (§5.3) ----

// adjustPools recomputes the B_dyn fraction of the given cell and its
// neighbors: each cell's pool must absorb the largest allocation of any
// static portable's connection residing in its neighborhood.
func (m *Manager) adjustPools(cell topology.CellID) {
	u := m.Env.Universe
	c := u.Cell(cell)
	if c == nil {
		return
	}
	targets := append([]topology.CellID{cell}, c.Neighbors()...)
	for _, t := range targets {
		tc := u.Cell(t)
		if tc == nil {
			continue
		}
		maxAlloc := 0.0
		for _, nid := range tc.Neighbors() {
			for _, p := range m.portablesInCell(nid) {
				if p.Mobility != qos.Static {
					continue
				}
				for id := range p.conns {
					if bw := m.conns[id].Bandwidth; bw > maxAlloc {
						maxAlloc = bw
					}
				}
			}
		}
		if ls := m.ledger.Link(m.downlink(t)); ls != nil {
			ls.PoolFraction = adapt.PoolFraction(maxAlloc, ls.Capacity, m.Cfg.PoolMin, m.Cfg.PoolMax)
		}
	}
}

func (m *Manager) portablesInCell(cell topology.CellID) []*Portable {
	var out []*Portable
	for _, id := range sortx.Keys(m.portables) {
		if p := m.portables[id]; p.Cell == cell {
			out = append(out, p)
		}
	}
	return out
}
