package core

import (
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/profile"
	"armnet/internal/qos"
	"armnet/internal/topology"
	"armnet/internal/wireless"
)

// Renegotiate performs application-initiated adaptation (§4.2, §5.3):
// the application asks for new QoS bounds and "the network essentially
// treats it as a new connection request" — the connection is re-admitted
// over its current route with the new bounds. On failure the old
// reservation is restored untouched and the error wraps ErrRejected.
func (m *Manager) Renegotiate(connID string, bounds qos.Bounds) error {
	c, ok := m.conns[connID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConn, connID)
	}
	if err := bounds.Validate(); err != nil {
		return err
	}
	p := m.portables[c.Portable]
	if p == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPortable, c.Portable)
	}
	newReq := c.Req
	newReq.Bandwidth = bounds
	// Release, then attempt admission with the new bounds; roll back on
	// failure.
	m.ledger.Release(connID, c.Route)
	res, err := m.Adm.Admit(admission.Test{
		ConnID:     connID,
		Req:        newReq,
		Route:      c.Route,
		Kind:       admission.KindNew,
		Mobility:   p.Mobility,
		Discipline: m.Cfg.Discipline,
		LMax:       m.Cfg.LMax,
	})
	if err == nil && !res.Admitted {
		// Restore the previous reservation.
		restored, rerr := m.Adm.Admit(admission.Test{
			ConnID:     connID,
			Req:        c.Req,
			Route:      c.Route,
			Kind:       admission.KindNew,
			Mobility:   p.Mobility,
			Discipline: m.Cfg.Discipline,
			LMax:       m.Cfg.LMax,
		})
		if rerr != nil || !restored.Admitted {
			// The old reservation cannot fail to restore (it just fit),
			// but guard anyway: drop the connection rather than leak.
			m.dropConnection(c, p)
			return fmt.Errorf("%w: renegotiation failed and restore impossible", ErrRejected)
		}
		return fmt.Errorf("%w: %s at %s", ErrRejected, res.Reason, res.FailedLink)
	}
	if err != nil {
		return err
	}
	c.Req = newReq
	c.Bandwidth = res.Bandwidth
	if m.Adpt != nil {
		m.Adpt.Unregister(connID)
		if err := m.Adpt.Register(connID, c.Route, bounds, p.Mobility); err != nil {
			return err
		}
	}
	m.refreshAdvance(p)
	return nil
}

// AttachChannel models the time-varying effective capacity of a cell's
// air interface (§2.1): a capacity process is scheduled on the simulator
// and every change flows into the ledger and — via eq. (2)'s triggers —
// into the adaptation protocol. Returns the process for inspection.
func (m *Manager) AttachChannel(cell topology.CellID, levels []float64, dwellMean float64) (*wireless.CapacityProcess, error) {
	link := m.downlink(cell)
	if link == "" {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCell, cell)
	}
	cp, err := wireless.NewCapacityProcess(levels, dwellMean, nil, m.Rng)
	if err != nil {
		return nil, err
	}
	cp.PublishTo(m.Bus, string(link))
	cp.Attach(m.Sim, func(capacity float64) {
		if m.Adpt != nil {
			_ = m.Adpt.CapacityChanged(link, capacity)
			return
		}
		_ = m.ledger.SetCapacity(link, capacity)
	})
	m.channels[cell] = cp
	return cp, nil
}

// LearnClasses runs the §6.4 learning process: for every cell whose
// configured class is unknown, the zone profile server's observed handoff
// history is classified (office / corridor / lounge subclasses) and the
// universe updated. It returns the cells whose class changed. Cells with
// insufficient evidence stay unknown and keep using the default
// reservation algorithm.
func (m *Manager) LearnClasses(opts profile.ClassifyOptions) []topology.CellID {
	var changed []topology.CellID
	for _, cell := range m.Env.Universe.Cells() {
		if cell.Class != topology.ClassUnknown {
			continue
		}
		srv := m.Pred.ServerFor(cell.ID)
		if srv == nil {
			continue
		}
		cp := srv.Cell(cell.ID)
		if cp == nil {
			continue
		}
		if got := profile.Classify(cp, opts); got != topology.ClassUnknown {
			cell.Class = got
			cp.Class = got
			changed = append(changed, cell.ID)
		}
	}
	return changed
}
