package core

import (
	"errors"
	"fmt"
	"testing"

	"armnet/internal/des"
	"armnet/internal/qos"
	"armnet/internal/reserve"
	"armnet/internal/topology"
)

func req(min, max float64) qos.Request {
	return qos.Request{
		Bandwidth: qos.Bounds{Min: min, Max: max},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: qos.TrafficSpec{Sigma: min / 4, Rho: min},
	}
}

func newCampus(t *testing.T, cfg Config) (*des.Simulator, *Manager) {
	t.Helper()
	env, err := topology.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	m, err := NewManager(sim, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, m
}

func TestPlaceOpenClose(t *testing.T) {
	sim, m := newCampus(t, Config{})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	if err := m.PlacePortable("alice", "off-1"); err == nil {
		t.Fatal("double placement accepted")
	}
	if err := m.PlacePortable("bob", "nowhere"); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("unknown cell error = %v", err)
	}
	id, err := m.OpenConnection("alice", req(16e3, 64e3))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Connection(id)
	if c == nil || c.Portable != "alice" {
		t.Fatalf("connection not tracked: %+v", c)
	}
	if c.Bandwidth < 16e3 {
		t.Fatalf("bandwidth = %v", c.Bandwidth)
	}
	if c.Multicast == nil {
		t.Fatal("multicast tree not set up")
	}
	// Ledger holds the wireless allocation.
	wl := m.Ledger().Link(m.downlink("off-1"))
	if wl.Alloc(id) == nil {
		t.Fatal("no wireless allocation")
	}
	if err := m.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
	if wl.Alloc(id) != nil {
		t.Fatal("allocation survives close")
	}
	if err := m.CloseConnection(id); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double close error = %v", err)
	}
	_ = sim
}

func TestOpenConnectionUnknownPortable(t *testing.T) {
	_, m := newCampus(t, Config{})
	if _, err := m.OpenConnection("ghost", req(16e3, 64e3)); !errors.Is(err, ErrUnknownPortable) {
		t.Fatalf("err = %v", err)
	}
}

func TestMobilePortableGetsAdvanceReservation(t *testing.T) {
	_, m := newCampus(t, Config{})
	// dave is a regular occupant of off-3; placed in the corridor the
	// level-2 office rule nominates off-3.
	if err := m.PlacePortable("dave", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("dave", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	p := m.Portable("dave")
	if _, ok := p.reservedCells["off-3"]; !ok {
		t.Fatalf("no advance reservation in off-3: %v", p.reservedCells)
	}
	if got := m.Ledger().Link(m.downlink("off-3")).AdvanceReserved; got != 16e3 {
		t.Fatalf("advance on off-3 = %v, want 16k", got)
	}
}

func TestBruteForceReservesEverywhere(t *testing.T) {
	_, m := newCampus(t, Config{Mode: ModeBruteForce})
	if err := m.PlacePortable("x", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("x", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	p := m.Portable("x")
	neighbors := m.Env.Universe.Cell("cor-e1").Neighbors()
	if len(p.reservedCells) != len(neighbors) {
		t.Fatalf("brute force reserved in %d cells, want %d", len(p.reservedCells), len(neighbors))
	}
}

func TestModeNoneReservesNothing(t *testing.T) {
	_, m := newCampus(t, Config{Mode: ModeNone})
	if err := m.PlacePortable("x", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("x", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Portable("x").reservedCells); n != 0 {
		t.Fatalf("mode none reserved in %d cells", n)
	}
}

func TestStaticTimerFlipsAndClearsReservations(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 100})
	if err := m.PlacePortable("dave", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("dave", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	if m.Portable("dave").Mobility != qos.Mobile {
		t.Fatal("fresh portable not mobile")
	}
	if err := sim.RunUntil(150); err != nil {
		t.Fatal(err)
	}
	p := m.Portable("dave")
	if p.Mobility != qos.Static {
		t.Fatal("portable did not become static after T_th")
	}
	if len(p.reservedCells) != 0 {
		t.Fatalf("static portable still holds advance reservations: %v", p.reservedCells)
	}
	if got := m.Ledger().Link(m.downlink("off-3")).AdvanceReserved; got != 0 {
		t.Fatalf("advance reservation not released: %v", got)
	}
}

func TestStaticConnectionUpgradesTowardMax(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 100})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(100e3, 800e3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	c := m.Connection(id)
	if c.Bandwidth <= 100e3 {
		t.Fatalf("static connection stuck at %v, want adaptation toward b_max", c.Bandwidth)
	}
	if m.Met.Counter.Get(CtrAdaptUpdates) == 0 {
		t.Fatal("no adaptation updates recorded")
	}
}

func TestHandoffSucceedsAndReroutes(t *testing.T) {
	sim, m := newCampus(t, Config{})
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("bob", req(16e3, 64e3))
	if err != nil {
		t.Fatal(err)
	}
	oldRoute := m.Connection(id).Route.String()
	if err := m.HandoffPortable("bob", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	p := m.Portable("bob")
	if p.Cell != "cor-w1" || p.Prev != "off-2" {
		t.Fatalf("position = %s prev %s", p.Cell, p.Prev)
	}
	newRoute := m.Connection(id).Route.String()
	if newRoute == oldRoute {
		t.Fatal("route did not change on handoff")
	}
	if m.Met.Counter.Get(CtrHandoffOK) != 1 || m.Met.Counter.Get(CtrHandoffDropped) != 0 {
		t.Fatalf("handoff counters wrong: %v", m.Met.Counter)
	}
	// Old wireless link released, new one allocated.
	if m.Ledger().Link(m.downlink("off-2")).Alloc(id) != nil {
		t.Fatal("old allocation not released")
	}
	if m.Ledger().Link(m.downlink("cor-w1")).Alloc(id) == nil {
		t.Fatal("new allocation missing")
	}
	_ = sim
}

func TestHandoffToSameCellIsNoop(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	if err := m.HandoffPortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	if m.Met.Counter.Get(CtrHandoffTried) != 0 {
		t.Fatal("self-handoff counted")
	}
}

func TestHandoffDropUnderOverload(t *testing.T) {
	_, m := newCampus(t, Config{Mode: ModeNone})
	// Fill cor-w1 nearly to the brim (the B_dyn pool keeps the last
	// slice away from new connections).
	for i := 0; i < 15; i++ {
		pid := fmt.Sprintf("p%d", i)
		if err := m.PlacePortable(pid, "cor-w1"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.OpenConnection(pid, req(100e3, 100e3)); err != nil {
			t.Fatal(err)
		}
	}
	// A newcomer whose connection exceeds the leftover capacity hands
	// off into the loaded cell.
	if err := m.PlacePortable("mover", "off-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("mover", req(200e3, 200e3)); err != nil {
		t.Fatal(err)
	}
	if err := m.HandoffPortable("mover", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	if m.Met.Counter.Get(CtrHandoffDropped) != 1 {
		t.Fatalf("drops = %d, want 1", m.Met.Counter.Get(CtrHandoffDropped))
	}
	if len(m.Met.Drops) != 1 {
		t.Fatalf("drop list = %v", m.Met.Drops)
	}
	// The portable moved anyway; its connection is gone.
	if got := len(m.Portable("mover").conns); got != 0 {
		t.Fatalf("mover still holds %d connections", got)
	}
}

func TestHandoffUpdatesProfiles(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.HandoffPortable("bob", "cor-w1"); err != nil {
			t.Fatal(err)
		}
		if err := m.HandoffPortable("bob", "off-2"); err != nil {
			t.Fatal(err)
		}
	}
	srv := m.Pred.ServerFor("off-2")
	next, ok := srv.PredictByPortable("bob", "off-2", "cor-w1")
	if !ok || next != "off-2" {
		t.Fatalf("profile prediction = %v/%v, want off-2", next, ok)
	}
}

func TestRegisterMeetingValidation(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.RegisterMeeting("off-1", reserve.Meeting{Start: 1000, End: 2000, Attendees: 5}); err == nil {
		t.Fatal("meeting in an office accepted")
	}
	if err := m.RegisterMeeting("meet", reserve.Meeting{Start: 1000, End: 2000, Attendees: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestMeetingReservationLifecycle(t *testing.T) {
	sim, m := newCampus(t, Config{SlotDuration: 60})
	mt := reserve.Meeting{Start: 1200, End: 2400, Attendees: 10}
	if err := m.RegisterMeeting("meet", mt); err != nil {
		t.Fatal(err)
	}
	wl := m.downlink("meet")
	// Before the lead-in: nothing reserved.
	if err := sim.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Link(wl).AdvanceReserved; got != 0 {
		t.Fatalf("early reservation = %v", got)
	}
	// Inside the lead-in window: 10 attendee slots at PerUserBW.
	if err := sim.RunUntil(700); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Link(wl).AdvanceReserved; got != 10*PerUserBW {
		t.Fatalf("lead-in reservation = %v, want %v", got, 10*PerUserBW)
	}
	// Attendees arrive: the room reservation shrinks.
	for i := 0; i < 4; i++ {
		pid := fmt.Sprintf("att%d", i)
		if err := m.PlacePortable(pid, "cor-e1"); err != nil {
			t.Fatal(err)
		}
		if err := m.HandoffPortable(pid, "meet"); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunUntil(1300); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Link(wl).AdvanceReserved; got != 6*PerUserBW {
		t.Fatalf("reservation after 4 arrivals = %v, want %v", got, 6*PerUserBW)
	}
	// After the post-start release timer everything is freed.
	if err := sim.RunUntil(1600); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Link(wl).AdvanceReserved; got != 0 {
		t.Fatalf("reservation after start release = %v", got)
	}
	// Around the conclusion the neighbors hold the departure reservation.
	if err := sim.RunUntil(2350); err != nil {
		t.Fatal(err)
	}
	neighborTotal := 0.0
	for _, nid := range m.Env.Universe.Cell("meet").Neighbors() {
		neighborTotal += m.Ledger().Link(m.downlink(nid)).AdvanceReserved
	}
	if neighborTotal != 4*PerUserBW {
		t.Fatalf("neighbor departure reservation = %v, want %v", neighborTotal, 4*PerUserBW)
	}
	// Long after the end-release timer: all clear again.
	if err := sim.RunUntil(2400 + 1000); err != nil {
		t.Fatal(err)
	}
	neighborTotal = 0
	for _, nid := range m.Env.Universe.Cell("meet").Neighbors() {
		neighborTotal += m.Ledger().Link(m.downlink(nid)).AdvanceReserved
	}
	if neighborTotal != 0 {
		t.Fatalf("neighbor reservation not released: %v", neighborTotal)
	}
}

func TestRemovePortableCleansUp(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("dave", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("dave", req(16e3, 64e3))
	if err != nil {
		t.Fatal(err)
	}
	m.RemovePortable("dave")
	if m.Connection(id) != nil {
		t.Fatal("connection survives portable removal")
	}
	if m.Portable("dave") != nil {
		t.Fatal("portable still tracked")
	}
	if got := m.Ledger().Link(m.downlink("off-3")).AdvanceReserved; got != 0 {
		t.Fatalf("advance reservation leaked: %v", got)
	}
	m.RemovePortable("dave") // idempotent
}

func TestPoolAdjustsWithStaticNeighbors(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 50})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("alice", req(200e3, 400e3)); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	// alice is static in off-1; neighbor cor-w1's pool must cover her
	// allocation (>= 200k/1.6M = 12.5%, above the 5% floor).
	m.adjustPools("off-1")
	frac := m.Ledger().Link(m.downlink("cor-w1")).PoolFraction
	if frac < 0.125-1e-9 {
		t.Fatalf("pool fraction = %v, want >= 12.5%%", frac)
	}
	if frac > 0.20 {
		t.Fatalf("pool fraction above ceiling: %v", frac)
	}
}

func TestMetricsAccounting(t *testing.T) {
	_, m := newCampus(t, Config{Mode: ModeNone})
	if err := m.PlacePortable("x", "off-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("x", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	// Saturate to force a block: off-1 is 1.6 Mb/s.
	for i := 0; i < 200; i++ {
		_, _ = m.OpenConnection("x", req(64e3, 64e3))
	}
	c := m.Met.Counter
	if c.Get(CtrNewAdmitted)+c.Get(CtrNewBlocked) != c.Get(CtrNewRequested) {
		t.Fatalf("admission accounting inconsistent: %v admitted, %v blocked, %v requested",
			c.Get(CtrNewAdmitted), c.Get(CtrNewBlocked), c.Get(CtrNewRequested))
	}
	if c.Get(CtrNewBlocked) == 0 {
		t.Fatal("saturation produced no blocks")
	}
}
