package core

import (
	"armnet/internal/eventbus"
	"armnet/internal/stats"
	"armnet/internal/topology"
)

// Handoff latency model (§4.3, footnote 5): a *predicted* handoff finds
// resources advance-reserved in the target cell and completes with local
// signaling only (base station ↔ base station through their common
// switch); an *unpredicted* handoff (wrong prediction, or sudden movement
// of a static portable) must run a fresh end-to-end admission test over
// the whole route before traffic flows — "this might cause some handoff
// delay, but it reduces the handoff dropping".
//
// The latency is charged per control-message hop at the backbone's
// propagation delays; we track the distributions separately so the
// predicted-vs-unpredicted gap — the benefit advance reservation buys —
// is measurable.

// LatencyStats holds the handoff latency distributions.
type LatencyStats struct {
	// Predicted is the latency of handoffs that consumed an advance
	// reservation.
	Predicted stats.Welford
	// Unpredicted is the latency of handoffs that required end-to-end
	// re-admission (pool claims).
	Unpredicted stats.Welford
}

// latency returns per-hop control RTT along a route: two passes (forward
// test, reverse reserve) over each link's propagation delay, plus a fixed
// per-hop processing charge.
func signalingLatency(route topology.Route) float64 {
	const perHopProcessing = 200e-6 // 200 µs per switch, era-appropriate
	d := 0.0
	for _, l := range route.Links {
		d += 2 * (l.PropDelay + perHopProcessing)
	}
	return d
}

// localHandoffLatency is the cost of a reservation-backed handoff: one
// exchange between the old and new base stations through their common
// switch (constant in our builder topologies).
func localHandoffLatency() float64 {
	const bsToSwitch = 1e-3
	const perHopProcessing = 200e-6
	return 2 * 2 * (bsToSwitch + perHopProcessing)
}

// recordHandoffLatency publishes one handoff's latency; the Latency
// distributions are subscribers and fold it in from the event.
func (m *Manager) recordHandoffLatency(c *Connection, route topology.Route, predicted bool) float64 {
	var d float64
	if predicted {
		d = localHandoffLatency()
	} else {
		d = signalingLatency(route)
	}
	eventbus.Pub(m.Bus, eventbus.HandoffLatency{
		Conn: c.ID, Portable: c.Portable, Predicted: predicted, Latency: d,
	})
	return d
}
