package core

import (
	"strings"
	"testing"
)

// TestCtrNamesExhaustive pins the counter-name table against the enum:
// adding a Ctr without a ctrNames entry silently produces "" and an
// unreadable report row, so every value must have a unique, well-formed
// name.
func TestCtrNamesExhaustive(t *testing.T) {
	seen := make(map[string]Ctr, ctrCount)
	for c := 0; c < ctrCount; c++ {
		name := Ctr(c).String()
		if name == "" {
			t.Errorf("Ctr(%d) has no name entry", c)
			continue
		}
		if strings.HasPrefix(name, "Ctr(") {
			t.Errorf("Ctr(%d) renders as fallback %q", c, name)
		}
		if name != strings.TrimSpace(name) {
			t.Errorf("Ctr(%d) name %q has surrounding whitespace", c, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Ctr(%d) and Ctr(%d) share the name %q", c, prev, name)
		}
		seen[name] = Ctr(c)
	}
	// Out-of-range values must fall back, not panic or alias a real name.
	for _, bad := range []Ctr{-1, Ctr(ctrCount), Ctr(ctrCount + 7)} {
		if got := bad.String(); !strings.HasPrefix(got, "Ctr(") {
			t.Errorf("out-of-range %d renders %q, want Ctr(...) fallback", int(bad), got)
		}
	}
}
