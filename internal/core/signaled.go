package core

import (
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/eventbus"
	"armnet/internal/qos"
	"armnet/internal/signal"
	"armnet/internal/topology"
)

// SignalPlane lazily constructs the signaling plane (§5.1's round-trip
// setup as timed control messages with tentative holds). Its hold/commit/
// abort milestones are published on the manager's bus.
func (m *Manager) SignalPlane() *signal.Plane {
	if m.sigPlane == nil {
		opts := m.Cfg.Signal
		opts.Bus = m.Bus
		m.sigPlane = signal.NewPlane(m.Sim, m.Adm, m.ledger, opts)
	}
	return m.sigPlane
}

// OpenConnectionAsync opens a connection through the signaling plane: the
// request travels the route as control messages (forward test with
// tentative holds, destination evaluation, reverse commit), and done is
// invoked at the simulated completion time with the connection ID or the
// failure. Unlike OpenConnection, concurrent setups race realistically
// and setup latency is charged.
//
// If the portable hands off while setup is in flight, the freshly
// committed reservation targets a cell the portable has left; the setup
// is then aborted (resources released, reported as rejected) — the
// application retries, as it would in a real system.
func (m *Manager) OpenConnectionAsync(portable string, req qos.Request, done func(connID string, err error)) error {
	p, ok := m.portables[portable]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPortable, portable)
	}
	if done == nil {
		return fmt.Errorf("core: nil completion callback")
	}
	eventbus.Pub(m.Bus, eventbus.ConnectionRequested{Portable: portable})
	// Overload shedding and the circuit breaker fail fast here, before
	// any signaling is queued; best-effort requests are exempt.
	if !req.BestEffort() {
		if err := m.allowSetup(p); err != nil {
			return err
		}
	}
	host := m.Env.Hosts[m.Rng.Intn(len(m.Env.Hosts))]
	route, err := m.Env.Backbone.ShortestPath(host, topology.AirNode(p.Cell))
	if err != nil {
		return err
	}
	connID := fmt.Sprintf("conn-%d", m.nextConn)
	m.nextConn++
	if req.BestEffort() {
		eventbus.Pub(m.Bus, eventbus.ConnectionAdmitted{Conn: connID, Portable: portable, BestEffort: true})
		c := &Connection{ID: connID, Portable: portable, Req: req, Host: host, Route: route}
		m.conns[connID] = c
		p.conns[connID] = true
		done(connID, nil)
		return nil
	}
	originCell := p.Cell
	m.SignalPlane().Setup(admission.Test{
		ConnID:     connID,
		Req:        req,
		Route:      route,
		Kind:       admission.KindNew,
		Mobility:   p.Mobility,
		Discipline: m.Cfg.Discipline,
		LMax:       m.Cfg.LMax,
	}, func(r signal.Result) {
		// Every finished session feeds the circuit breaker's sliding
		// failure window (and decides its half-open probes).
		if m.Ovl != nil {
			m.Ovl.RecordSetupOutcome(r.Err != nil)
		}
		if r.Err != nil {
			eventbus.Pub(m.Bus, eventbus.ConnectionBlocked{Portable: portable, Reason: r.Err.Error()})
			done("", fmt.Errorf("%w: %v", ErrRejected, r.Err))
			return
		}
		// The plane committed the reservation; make sure the world did
		// not shift under us.
		if cur, ok := m.portables[portable]; !ok || cur.Cell != originCell {
			m.ledger.Release(connID, route)
			eventbus.Pub(m.Bus, eventbus.ConnectionBlocked{Portable: portable, Reason: "portable moved during setup"})
			done("", fmt.Errorf("%w: portable moved during setup", ErrRejected))
			return
		}
		eventbus.Pub(m.Bus, eventbus.ConnectionAdmitted{Conn: connID, Portable: portable, Bandwidth: r.Admission.Bandwidth})
		c := &Connection{
			ID: connID, Portable: portable, Req: req,
			Host: host, Route: route, Bandwidth: r.Admission.Bandwidth,
		}
		m.conns[connID] = c
		p.conns[connID] = true
		if m.Adpt != nil {
			if err := m.Adpt.Register(connID, route, req.Bandwidth, p.Mobility); err != nil {
				done("", err)
				return
			}
		}
		m.setupMulticast(c, p.Cell)
		m.refreshAdvance(p)
		m.adjustPools(p.Cell)
		done(connID, nil)
	})
	return nil
}
