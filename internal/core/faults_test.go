package core

import (
	"bytes"
	"strings"
	"testing"

	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/faults"
	"armnet/internal/signal"
	"armnet/internal/topology"
)

func mustPlan(t *testing.T, text string) *faults.Plan {
	t.Helper()
	p, err := faults.ParsePlan(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCellOutageTerminatesAndRestores(t *testing.T) {
	sim, m := newCampus(t, Config{
		Faults: mustPlan(t, "at 5 cell-out off-1\nat 12 cell-restore off-1"),
	})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(64e3, 128e3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if m.Connection(id) != nil {
		t.Fatal("connection survived its cell's outage")
	}
	if _, err := m.OpenConnection("alice", req(64e3, 128e3)); err == nil {
		t.Fatal("admission succeeded into a failed cell")
	}
	if err := sim.RunUntil(13); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("alice", req(64e3, 128e3)); err != nil {
		t.Fatalf("admission failed after restoration: %v", err)
	}
	if got := m.Met.Counter.Get(CtrFaultsInjected); got != 2 {
		t.Fatalf("faults-injected = %d, want 2 (outage + restore)", got)
	}
	// The ledger must satisfy conservation throughout (the auditor
	// re-checked on both component faults via Watch).
	aud := &faults.Auditor{Ledger: m.Ledger(), LiveConns: m.ConnIDs}
	if v := aud.CheckFinal(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestSignalingCrashLeaseReclaimsHolds(t *testing.T) {
	sim, m := newCampus(t, Config{
		Signal: signal.Options{HopProcessing: 0.1, HoldLease: 0.5},
		Faults: mustPlan(t, "at 0.25 crash-signaling"),
	})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	completed := false
	if err := m.OpenConnectionAsync("alice", req(64e3, 128e3), func(string, error) {
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(0.3); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("setup completed before the crash despite slow hops")
	}
	if m.SignalPlane().PendingTotal() == 0 {
		t.Fatal("crash left no orphaned holds — the scenario lost its teeth")
	}
	if err := sim.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Fatal("crashed session's callback fired")
	}
	if got := m.SignalPlane().PendingTotal(); got != 0 {
		t.Fatalf("holds not reclaimed by lease: %v bits/s", got)
	}
	if m.Met.Counter.Get(CtrReclaimedHolds) == 0 {
		t.Fatal("reclaimed-holds counter never moved")
	}
	aud := &faults.Auditor{
		Ledger:       m.Ledger(),
		PendingHolds: m.SignalPlane().PendingTotal,
		LiveConns:    m.ConnIDs,
	}
	if v := aud.CheckFinal(); len(v) != 0 {
		t.Fatalf("invariant violations after recovery: %v", v)
	}
}

// chaosWorkload is a fixed deterministic scenario used for trace
// comparisons.
func chaosWorkload(t *testing.T, sim *des.Simulator, m *Manager) {
	t.Helper()
	for _, p := range []struct {
		id   string
		cell topology.CellID
	}{{"alice", "off-1"}, {"bob", "cor-w1"}} {
		if err := m.PlacePortable(p.id, p.cell); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"alice", "bob"} {
		id := id
		if err := m.OpenConnectionAsync(id, req(64e3, 256e3), func(string, error) {}); err != nil {
			t.Fatal(err)
		}
	}
	sim.At(10, func() { _ = m.HandoffPortable("bob", "cor-w2") })
	if err := sim.RunUntil(30); err != nil {
		t.Fatal(err)
	}
}

func runTraced(t *testing.T, cfg Config) []byte {
	t.Helper()
	env, err := topology.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	m, err := NewManager(sim, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	eventbus.AttachRecorder(m.Bus, &buf)
	chaosWorkload(t, sim, m)
	return buf.Bytes()
}

// TestEmptyFaultPlanIsZeroCost pins the zero-cost-abstraction contract:
// a nil plan, an empty plan, and a comments-only plan must produce
// byte-identical event traces.
func TestEmptyFaultPlanIsZeroCost(t *testing.T) {
	base := runTraced(t, Config{Seed: 7})
	if len(base) == 0 {
		t.Fatal("workload produced no events")
	}
	empty := runTraced(t, Config{Seed: 7, Faults: &faults.Plan{}})
	if !bytes.Equal(base, empty) {
		t.Fatal("empty fault plan perturbed the event trace")
	}
	comments := runTraced(t, Config{Seed: 7, Faults: mustPlan(t, "# nothing\n")})
	if !bytes.Equal(base, comments) {
		t.Fatal("comments-only fault plan perturbed the event trace")
	}
}

// TestFaultPlanIsDeterministic pins injection determinism: identical
// (plan, seed) pairs must produce byte-identical traces, and the plan
// must actually perturb the run.
func TestFaultPlanIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Faults: mustPlan(t, "drop signal 0.3\ndrop maxmin 0.2\nat 15 cell-out off-1")}
	a := runTraced(t, cfg)
	b := runTraced(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("identical chaos runs diverged")
	}
	clean := runTraced(t, Config{Seed: 7})
	if bytes.Equal(a, clean) {
		t.Fatal("fault plan had no observable effect")
	}
}
