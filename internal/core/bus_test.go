package core

import (
	"testing"

	"armnet/internal/eventbus"
	"armnet/internal/qos"
)

// signalLog captures the signaling milestones of async setups in
// publication order.
type signalLog struct {
	recs []eventbus.Record
}

func newSignalLog(bus *eventbus.Bus) *signalLog {
	l := &signalLog{}
	bus.Subscribe(func(r eventbus.Record) { l.recs = append(l.recs, r) },
		eventbus.KindSignalHold, eventbus.KindSignalCommit, eventbus.KindSignalAbort)
	return l
}

// TestAsyncSetupEmitsHoldCommitPairs pins the hold/commit contract of the
// signaling plane on the bus: a successful OpenConnectionAsync publishes
// one SignalHold per route hop (tentative holds placed on the forward
// pass) strictly before a single SignalCommit for the same connection,
// and no abort.
func TestAsyncSetupEmitsHoldCommitPairs(t *testing.T) {
	sim, m := newCampus(t, Config{})
	log := newSignalLog(m.Bus)
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	var gotID string
	if err := m.OpenConnectionAsync("alice", req(64e3, 128e3), func(id string, err error) {
		if err != nil {
			t.Fatalf("setup failed: %v", err)
		}
		gotID = id
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if gotID == "" {
		t.Fatal("setup never completed")
	}
	var holds []eventbus.SignalHold
	var commits []eventbus.SignalCommit
	for _, r := range log.recs {
		switch ev := r.Event.(type) {
		case eventbus.SignalHold:
			if len(commits) > 0 {
				t.Fatalf("hold published after commit (seq %d)", r.Seq)
			}
			holds = append(holds, ev)
		case eventbus.SignalCommit:
			commits = append(commits, ev)
		case eventbus.SignalAbort:
			t.Fatalf("unexpected abort: %+v", ev)
		}
	}
	if len(holds) == 0 {
		t.Fatal("no tentative holds published")
	}
	if len(commits) != 1 {
		t.Fatalf("commits = %d, want 1", len(commits))
	}
	route := m.Connection(gotID).Route
	if len(holds) != len(route.Links) {
		t.Fatalf("holds = %d, want one per route hop (%d)", len(holds), len(route.Links))
	}
	for i, h := range holds {
		if h.Conn != gotID {
			t.Fatalf("hold %d for %q, want %q", i, h.Conn, gotID)
		}
		if h.Link != string(route.Links[i].ID) {
			t.Fatalf("hold %d on %s, want route hop %s", i, h.Link, route.Links[i].ID)
		}
	}
	if commits[0].Conn != gotID || commits[0].Latency <= 0 {
		t.Fatalf("commit = %+v", commits[0])
	}
}

// TestAsyncSetupEmitsHoldAbortPair covers the failure side: a request
// whose bandwidth fits every hop (so forward holds succeed) but whose
// delay bound is unachievable fails the destination's Table 2 evaluation,
// so the holds must be followed by exactly one SignalAbort — after every
// hold, for the same connection, with an end-to-end reason — and no
// commit.
func TestAsyncSetupEmitsHoldAbortPair(t *testing.T) {
	sim, m := newCampus(t, Config{})
	log := newSignalLog(m.Bus)
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	impossible := qos.Request{
		Bandwidth: qos.Bounds{Min: 64e3, Max: 128e3},
		Delay:     1e-9, Jitter: 5, Loss: 0.05,
		Traffic: qos.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	}
	called := false
	if err := m.OpenConnectionAsync("bob", impossible, func(id string, err error) {
		called = true
		if err == nil {
			t.Fatalf("impossible delay bound admitted as %s", id)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("completion callback never ran")
	}
	var holds, commits, aborts int
	var lastHoldSeq, abortSeq uint64
	var conn string
	for _, r := range log.recs {
		switch ev := r.Event.(type) {
		case eventbus.SignalHold:
			holds++
			lastHoldSeq = r.Seq
			conn = ev.Conn
		case eventbus.SignalCommit:
			commits++
		case eventbus.SignalAbort:
			aborts++
			abortSeq = r.Seq
			if ev.Conn != conn {
				t.Fatalf("abort for %q, holds for %q", ev.Conn, conn)
			}
			if len(ev.Reason) < len("end-to-end:") || ev.Reason[:len("end-to-end:")] != "end-to-end:" {
				t.Fatalf("abort reason %q, want end-to-end:*", ev.Reason)
			}
		}
	}
	if holds == 0 || aborts != 1 || commits != 0 {
		t.Fatalf("holds=%d commits=%d aborts=%d, want holds>0 commits=0 aborts=1", holds, commits, aborts)
	}
	if abortSeq <= lastHoldSeq {
		t.Fatalf("abort (seq %d) not after last hold (seq %d)", abortSeq, lastHoldSeq)
	}
}
