package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"armnet/internal/des"
	"armnet/internal/profile"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

func TestRenegotiateUpgrade(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 50})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(64e3, 128e3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Renegotiate(id, qos.Bounds{Min: 200e3, Max: 600e3}); err != nil {
		t.Fatal(err)
	}
	c := m.Connection(id)
	if c.Req.Bandwidth.Min != 200e3 {
		t.Fatalf("bounds not updated: %+v", c.Req.Bandwidth)
	}
	if c.Bandwidth < 200e3 {
		t.Fatalf("allocation %v below new b_min", c.Bandwidth)
	}
	// Adaptation honors the new bounds once static.
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if got := m.Connection(id).Bandwidth; got <= 200e3 || got > 600e3 {
		t.Fatalf("adapted allocation %v outside new bounds", got)
	}
}

func TestRenegotiateRejectionRollsBack(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(64e3, 128e3))
	if err != nil {
		t.Fatal(err)
	}
	// Ask for more than the cell can hold.
	err = m.Renegotiate(id, qos.Bounds{Min: 2e6, Max: 3e6})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// The old reservation survives intact.
	c := m.Connection(id)
	if c == nil || c.Req.Bandwidth.Min != 64e3 {
		t.Fatalf("rollback failed: %+v", c)
	}
	wl := m.Ledger().Link(m.downlink("off-1"))
	if a := wl.Alloc(id); a == nil || a.Min != 64e3 {
		t.Fatalf("ledger state after rollback: %+v", a)
	}
}

func TestRenegotiateUnknownConn(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.Renegotiate("ghost", qos.Bounds{Min: 1, Max: 2}); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("err = %v", err)
	}
}

func TestConflictResolutionSqueezesAdaptedConnections(t *testing.T) {
	// §5.2 case (b): ongoing static connections have absorbed all the
	// excess; a new connection arrives that fits within the b_min head
	// room only after the others are squeezed back. Admission must
	// accept it, and adaptation must re-settle everyone within capacity.
	sim, m := newCampus(t, Config{Tth: 50, PoolMin: 1e-9, PoolMax: 1e-9})
	for _, who := range []string{"a", "b"} {
		if err := m.PlacePortable(who, "off-1"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.OpenConnection(who, req(100e3, 1.6e6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	wl := m.Ledger().Link(m.downlink("off-1"))
	if wl.SumCur() < 1.5e6 {
		t.Fatalf("excess not absorbed: %v", wl.SumCur())
	}
	// Newcomer needs 400k minimum — only available by squeezing.
	if err := m.PlacePortable("c", "off-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("c", req(400e3, 800e3)); err != nil {
		t.Fatalf("conflict resolution failed to admit: %v", err)
	}
	if err := sim.RunUntil(600); err != nil {
		t.Fatal(err)
	}
	// Everyone fits again and no one is below b_min.
	if got := wl.SumCur(); got > wl.Capacity+1e-6 {
		t.Fatalf("capacity exceeded after resettle: %v > %v", got, wl.Capacity)
	}
	for _, id := range wl.Conns() {
		a := wl.Alloc(id)
		if a.Cur < a.Min-1e-9 {
			t.Fatalf("connection %s squeezed below b_min: %v < %v", id, a.Cur, a.Min)
		}
	}
}

func TestAttachChannelDrivesAdaptation(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 50})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(100e3, 1.6e6))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.AttachChannel("off-1", []float64{1.6e6, 800e3, 400e3}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AttachChannel("nowhere", []float64{1e6}, 10); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if err := sim.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	wl := m.Ledger().Link(m.downlink("off-1"))
	// Ledger capacity tracks the process.
	if math.Abs(wl.Capacity-cp.Capacity()) > 1e-9 {
		t.Fatalf("ledger capacity %v != channel %v", wl.Capacity, cp.Capacity())
	}
	// The connection was adapted and never sits above the current
	// capacity by more than the in-flight protocol slack.
	c := m.Connection(id)
	if c.Bandwidth < 100e3 {
		t.Fatalf("allocation below b_min: %v", c.Bandwidth)
	}
	if m.Met.Counter.Get(CtrAdaptUpdates) < 2 {
		t.Fatalf("channel variation produced %d adaptation updates", m.Met.Counter.Get(CtrAdaptUpdates))
	}
}

func TestLearnClassesFromHandoffs(t *testing.T) {
	// Build a universe with an unknown cell that behaves like a corridor.
	u := topology.NewUniverse()
	u.MustAddCell(topology.Cell{ID: "x", Class: topology.ClassUnknown, Capacity: 1.6e6})
	u.MustAddCell(topology.Cell{ID: "l", Class: topology.ClassCorridor, Capacity: 1.6e6})
	u.MustAddCell(topology.Cell{ID: "r", Class: topology.ClassCorridor, Capacity: 1.6e6})
	u.MustConnect("l", "x")
	u.MustConnect("x", "r")
	b, hosts, err := topology.BuildBackbone(u, topology.BackboneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env := &topology.Environment{Universe: u, Backbone: b, Hosts: hosts}
	m, err := newManagerForTest(env)
	if err != nil {
		t.Fatal(err)
	}
	// Many distinct portables pass straight through x.
	for i := 0; i < 80; i++ {
		pid := fmt.Sprintf("p%d", i)
		from, to := topology.CellID("l"), topology.CellID("r")
		if i%2 == 1 {
			from, to = "r", "l"
		}
		if err := m.PlacePortable(pid, from); err != nil {
			t.Fatal(err)
		}
		if err := m.HandoffPortable(pid, "x"); err != nil {
			t.Fatal(err)
		}
		if err := m.HandoffPortable(pid, to); err != nil {
			t.Fatal(err)
		}
		m.RemovePortable(pid)
	}
	changed := m.LearnClasses(profile.ClassifyOptions{})
	if len(changed) != 1 || changed[0] != "x" {
		t.Fatalf("changed = %v, want [x]", changed)
	}
	if got := u.Cell("x").Class; got != topology.ClassCorridor {
		t.Fatalf("learned class = %v, want corridor", got)
	}
	// Second run: nothing left to learn.
	if changed := m.LearnClasses(profile.ClassifyOptions{}); len(changed) != 0 {
		t.Fatalf("relearn changed %v", changed)
	}
}

func newManagerForTest(env *topology.Environment) (*Manager, error) {
	return NewManager(des.New(), env, Config{})
}

func TestHandoffLatencySplit(t *testing.T) {
	_, m := newCampus(t, Config{})
	// dave (occupant of off-3) in cor-e1: prediction reserves off-3.
	if err := m.PlacePortable("dave", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenConnection("dave", req(16e3, 64e3)); err != nil {
		t.Fatal(err)
	}
	// Predicted move into off-3.
	if err := m.HandoffPortable("dave", "off-3"); err != nil {
		t.Fatal(err)
	}
	if m.Latency.Predicted.N() != 1 {
		t.Fatalf("predicted latency samples = %d", m.Latency.Predicted.N())
	}
	// Unpredicted move back (no reservation waits in cor-e1 for this hop
	// unless prediction placed one; dave's prediction from off-3 is
	// no-reserve because he is a regular occupant at home).
	if err := m.HandoffPortable("dave", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	if m.Latency.Unpredicted.N() != 1 {
		t.Fatalf("unpredicted latency samples = %d", m.Latency.Unpredicted.N())
	}
	// End-to-end signaling must cost more than the local exchange.
	if m.Latency.Unpredicted.Mean() <= m.Latency.Predicted.Mean() {
		t.Fatalf("unpredicted (%v) not slower than predicted (%v)",
			m.Latency.Unpredicted.Mean(), m.Latency.Predicted.Mean())
	}
}

func TestBestEffortConnections(t *testing.T) {
	_, m := newCampus(t, Config{Mode: ModeNone})
	if err := m.PlacePortable("be", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	// Fill the cell completely with guaranteed traffic.
	for i := 0; i < 15; i++ {
		pid := fmt.Sprintf("g%d", i)
		if err := m.PlacePortable(pid, "cor-w1"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.OpenConnection(pid, req(100e3, 100e3)); err != nil {
			t.Fatal(err)
		}
	}
	// Best-effort opens anyway.
	id, err := m.OpenConnection("be", qos.Request{})
	if err != nil {
		t.Fatalf("best-effort rejected: %v", err)
	}
	c := m.Connection(id)
	if c.Bandwidth != 0 {
		t.Fatalf("best-effort has a reservation: %v", c.Bandwidth)
	}
	// No ledger allocation anywhere.
	for _, ls := range m.Ledger().Links() {
		if ls.Alloc(id) != nil {
			t.Fatalf("best-effort allocated on %s", ls.Link.ID)
		}
	}
	// Handoff into the saturated cell never drops it.
	if err := m.HandoffPortable("be", "cor-w2"); err != nil {
		t.Fatal(err)
	}
	if err := m.HandoffPortable("be", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	if m.Met.Counter.Get(CtrHandoffDropped) != 0 {
		t.Fatal("best-effort connection dropped")
	}
	if got := m.Connection(id).Route.Dest(); got != topology.AirNode("cor-w1") {
		t.Fatalf("route not updated: %s", got)
	}
	if err := m.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
}

func TestOpenConnectionAsync(t *testing.T) {
	sim, m := newCampus(t, Config{})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	var gotID string
	var gotErr error
	doneAt := -1.0
	if err := m.OpenConnectionAsync("alice", req(64e3, 128e3), func(id string, err error) {
		gotID, gotErr = id, err
		doneAt = sim.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if gotID != "" {
		t.Fatal("callback fired synchronously")
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatalf("setup failed: %v", gotErr)
	}
	if doneAt <= 0 {
		t.Fatal("no setup latency charged")
	}
	c := m.Connection(gotID)
	if c == nil || c.Bandwidth < 64e3 {
		t.Fatalf("connection = %+v", c)
	}
	if err := m.OpenConnectionAsync("ghost", req(1, 2), func(string, error) {}); !errors.Is(err, ErrUnknownPortable) {
		t.Fatalf("unknown portable err = %v", err)
	}
}

func TestOpenConnectionAsyncAbortsIfPortableMoves(t *testing.T) {
	sim, m := newCampus(t, Config{})
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	called := false
	if err := m.OpenConnectionAsync("bob", req(64e3, 128e3), func(id string, err error) {
		called = true
		gotErr = err
	}); err != nil {
		t.Fatal(err)
	}
	// Move bob before the signaling round trip (~ms) completes.
	sim.At(1e-4, func() { _ = m.HandoffPortable("bob", "cor-w1") })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("callback never fired")
	}
	if !errors.Is(gotErr, ErrRejected) {
		t.Fatalf("err = %v, want rejection after mid-setup move", gotErr)
	}
	// Nothing leaked on the original route's wireless hop.
	if got := len(m.Ledger().Link(m.downlink("off-2")).Conns()); got != 0 {
		t.Fatalf("allocations leaked: %d", got)
	}
}

func TestOpenConnectionAsyncConcurrentRace(t *testing.T) {
	sim, m := newCampus(t, Config{})
	for _, who := range []string{"a", "b"} {
		if err := m.PlacePortable(who, "off-1"); err != nil {
			t.Fatal(err)
		}
	}
	// Two concurrent 1 Mb/s setups on a 1.6 Mb/s cell: exactly one wins.
	wins, losses := 0, 0
	for _, who := range []string{"a", "b"} {
		if err := m.OpenConnectionAsync(who, req(1e6, 1e6), func(id string, err error) {
			if err == nil {
				wins++
			} else {
				losses++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if wins != 1 || losses != 1 {
		t.Fatalf("wins=%d losses=%d, want 1/1", wins, losses)
	}
}

func TestLoungePoliciesDriveReservations(t *testing.T) {
	// Walk a steady stream of portables through the campus cafeteria so
	// its slotted history ramps; the periodic policy evaluation must ask
	// the neighbors to advance-reserve for the forecast handoffs.
	sim, m := newCampus(t, Config{SlotDuration: 60})
	n := 0
	// Every 15 s a new visitor enters the cafeteria from cor-e1 and
	// leaves toward lounge 40 s later.
	sim.Every(15, func() {
		id := fmt.Sprintf("v%d", n)
		n++
		if err := m.PlacePortable(id, "cor-e1"); err != nil {
			return
		}
		if err := m.HandoffPortable(id, "cafe"); err != nil {
			return
		}
		sim.After(40, func() {
			_ = m.HandoffPortable(id, "lounge")
			m.RemovePortable(id)
		})
	})
	if err := sim.RunUntil(600); err != nil {
		t.Fatal(err)
	}
	// The cafeteria's least-squares forecast should have placed policy
	// reservations in at least one neighbor's wireless link.
	total := 0.0
	for _, nid := range m.Env.Universe.Cell("cafe").Neighbors() {
		total += m.Ledger().Link(m.downlink(nid)).AdvanceReserved
	}
	if total <= 0 {
		t.Fatal("cafeteria policy placed no neighbor reservations")
	}
	// And because the cafeteria adjoins a default lounge, it must also
	// self-reserve for predicted arrivals.
	if got := m.Ledger().Link(m.downlink("cafe")).AdvanceReserved; got <= 0 {
		t.Fatalf("cafeteria self-reservation = %v", got)
	}
	// The default lounge, having a cafeteria neighbor but no default
	// neighbor, forecasts departures one-step.
	// (Its neighbor reservations appear once it has departures.)
}

func TestMulticastReservationLifecycle(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("bob", "off-2"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("bob", req(16e3, 64e3))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Connection(id)
	if c.Multicast == nil || len(c.Multicast.Branches) == 0 {
		t.Fatal("no multicast tree")
	}
	// Branch reservations exist on the wired links toward each neighbor
	// base station.
	found := 0
	for dst, route := range c.Multicast.Branches {
		mcID := id + "@mc:" + string(dst)
		for _, l := range route.Links {
			if m.Ledger().Link(l.ID).Alloc(mcID) != nil {
				found++
				break
			}
		}
	}
	if found == 0 {
		t.Fatal("no multicast branch reservations committed")
	}
	// Handoff rebuilds the tree for the new neighborhood.
	oldBranches := c.Multicast.Branches
	if err := m.HandoffPortable("bob", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	c = m.Connection(id)
	if c.Multicast == nil {
		t.Fatal("multicast tree lost on handoff")
	}
	// Old branch reservations are gone.
	for dst, route := range oldBranches {
		mcID := id + "@mc:" + string(dst)
		for _, l := range route.Links {
			if m.Ledger().Link(l.ID).Alloc(mcID) != nil {
				t.Fatalf("stale multicast reservation for %s on %s", mcID, l.ID)
			}
		}
	}
	// Close releases everything.
	if err := m.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
	for _, ls := range m.Ledger().Links() {
		for _, cid := range ls.Conns() {
			t.Fatalf("allocation %s survives close on %s", cid, ls.Link.ID)
		}
	}
}

func TestZoneCrossingMigratesProfile(t *testing.T) {
	_, m := newCampus(t, Config{})
	if err := m.PlacePortable("eve", "cor-w2"); err != nil {
		t.Fatal(err)
	}
	// West -> east crossing.
	if err := m.HandoffPortable("eve", "cor-e1"); err != nil {
		t.Fatal(err)
	}
	east := m.Pred.Servers["east"]
	found := false
	for _, id := range east.Portables() {
		if id == "eve" {
			found = true
		}
	}
	if !found {
		t.Fatal("profile did not migrate to the east zone server")
	}
	// And back again.
	if err := m.HandoffPortable("eve", "cor-w2"); err != nil {
		t.Fatal(err)
	}
	west := m.Pred.Servers["west"]
	found = false
	for _, id := range west.Portables() {
		if id == "eve" {
			found = true
		}
	}
	if !found {
		t.Fatal("profile did not migrate back to the west zone server")
	}
}

func TestWatchBandwidth(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 50})
	if err := m.PlacePortable("alice", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("alice", req(100e3, 800e3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WatchBandwidth("nope", func(float64) {}); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("err = %v", err)
	}
	var seen []float64
	if err := m.WatchBandwidth(id, func(bw float64) { seen = append(seen, bw) }); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("watcher never fired")
	}
	if last := seen[len(seen)-1]; last <= 100e3 {
		t.Fatalf("last watched bandwidth = %v", last)
	}
	// Removing the watcher stops notifications.
	if err := m.WatchBandwidth(id, nil); err != nil {
		t.Fatal(err)
	}
	before := len(seen)
	wl := m.downlink("off-1")
	_ = m.Adpt.CapacityChanged(wl, 800e3)
	if err := sim.RunUntil(600); err != nil {
		t.Fatal(err)
	}
	if len(seen) != before {
		t.Fatal("watcher fired after removal")
	}
}

func TestDisableAdaptation(t *testing.T) {
	sim, m := newCampus(t, Config{Tth: 50, DisableAdaptation: true})
	if m.Adpt != nil {
		t.Fatal("adaptation manager built despite DisableAdaptation")
	}
	if err := m.PlacePortable("a", "off-1"); err != nil {
		t.Fatal(err)
	}
	id, err := m.OpenConnection("a", req(100e3, 800e3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	// No adaptation: the connection stays at its admitted bandwidth.
	if got := m.Connection(id).Bandwidth; got != 100e3 {
		t.Fatalf("bandwidth = %v without adaptation", got)
	}
	// Handoffs and closure still work.
	if err := m.HandoffPortable("a", "cor-w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
	// Channel attach falls back to plain ledger updates.
	if _, err := m.AttachChannel("off-1", []float64{1.6e6, 800e3}, 30); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(500); err != nil {
		t.Fatal(err)
	}
}
