package core

import (
	"armnet/internal/obs"
	"armnet/internal/predict"
	"armnet/internal/topology"
)

// predNote is the outcome-pending movement prediction of one portable:
// what the §6 machinery last predicted, remembered until the next
// handoff resolves it. Tracked only when observability is armed.
type predNote struct {
	level     string // "portable", "cell", "default"
	class     string // zone class of the cell the prediction was made in
	target    string // predicted next cell (ActionReserve only)
	hasTarget bool
}

// armObs attaches the observability layer: one catch-all bus subscriber
// plus read-only taps into the ledger and the maxmin protocol. The
// observer never publishes, schedules, or draws randomness, so traces
// are byte-identical with it on or off.
func (m *Manager) armObs(opts obs.Options) {
	m.lastPred = make(map[string]predNote)
	src := obs.Sources{
		CellUtilization: m.cellUtilization,
		OverloadArmed:   m.Cfg.Overload != nil,
	}
	if m.Adpt != nil {
		src.Bottlenecks = func() []obs.LinkBottleneck {
			sizes := m.Adpt.Alloc.Bottlenecks()
			out := make([]obs.LinkBottleneck, len(sizes))
			for i, s := range sizes {
				out[i] = obs.LinkBottleneck{Link: s.Link, Size: s.Size}
			}
			return out
		}
	}
	m.Obs = obs.New(m.Bus, src, opts)
}

// cellUtilization reports every cell's committed downlink utilization —
// (guaranteed minima + advance reservations) / capacity, the same
// pressure ratio the overload controller escalates on. Universe.Cells
// is sorted by ID, so the slice order is deterministic.
func (m *Manager) cellUtilization() []obs.CellUtil {
	cells := m.Env.Universe.Cells()
	out := make([]obs.CellUtil, 0, len(cells))
	for _, c := range cells {
		ls := m.ledger.Link(m.downlink(c.ID))
		if ls == nil || ls.Capacity <= 0 {
			continue
		}
		out = append(out, obs.CellUtil{
			Cell: string(c.ID),
			Util: (ls.SumMin() + ls.AdvanceReserved) / ls.Capacity,
		})
	}
	return out
}

// notePrediction records the decision refreshAdvance just made so the
// next handoff can be scored against it.
func (m *Manager) notePrediction(p *Portable, d predict.Decision) {
	note := predNote{}
	if c := m.Env.Universe.Cell(p.Cell); c != nil {
		note.class = c.Class.String()
	}
	switch d.Action {
	case predict.ActionReserve:
		note.target = string(d.Target)
		note.hasTarget = true
		if d.Level == predict.LevelPortable {
			note.level = "portable"
		} else {
			note.level = "cell"
		}
	case predict.ActionNoReserve:
		// Level-2 "stays in office" rule: a prediction that the portable
		// does not move, so any handoff resolves it as a miss.
		note.level = "cell"
	default:
		note.level = "default"
	}
	m.lastPred[p.ID] = note
}

// resolvePrediction scores the pending prediction against the actual
// handoff destination. Must run before clearAdvance discards the note.
func (m *Manager) resolvePrediction(p *Portable, to topology.CellID) {
	if m.Obs == nil {
		return
	}
	note, ok := m.lastPred[p.ID]
	if !ok {
		return
	}
	delete(m.lastPred, p.ID)
	m.Obs.RecordPrediction(note.level, note.class, note.hasTarget && note.target == string(to))
}
