package core

import (
	"fmt"
	"sort"

	"armnet/internal/topology"
)

// This file makes *Manager a faults.Driver: the execution backend for
// the timed component faults of a fault plan. Each primitive maps the
// plan's abstract action onto the integrated system — terminating
// connections through the same paths real departures take, so the
// ledger, adaptation protocol, and metrics all observe the failure.

// FailLink marks a backbone link down. Connections routed over it are
// forcibly terminated (released everywhere, reported as closed), the
// link stops admitting, and its excess is withdrawn from adaptation.
// Failing an already-down link is a no-op.
func (m *Manager) FailLink(link string) error {
	id := topology.LinkID(link)
	ls := m.ledger.Link(id)
	if ls == nil {
		return fmt.Errorf("core: unknown link %s", link)
	}
	if ls.Down {
		return nil
	}
	ls.Down = true
	for _, connID := range m.sortedConnIDs() {
		if routeUses(m.conns[connID].Route, id) {
			_ = m.CloseConnection(connID)
		}
	}
	if m.Adpt != nil {
		_ = m.Adpt.SyncLink(id)
	}
	return nil
}

// RestoreLink brings a failed link back into service and re-advertises
// its excess capacity to the adaptation protocol.
func (m *Manager) RestoreLink(link string) error {
	id := topology.LinkID(link)
	ls := m.ledger.Link(id)
	if ls == nil {
		return fmt.Errorf("core: unknown link %s", link)
	}
	if !ls.Down {
		return nil
	}
	ls.Down = false
	if m.Adpt != nil {
		_ = m.Adpt.SyncLink(id)
	}
	return nil
}

// FailCell takes a cell out of service by failing its wireless downlink:
// the cell's connections terminate and no setup or handoff into the cell
// can admit until restoration.
func (m *Manager) FailCell(cell string) error {
	link := m.downlink(topology.CellID(cell))
	if link == "" {
		return fmt.Errorf("%w: %s", ErrUnknownCell, cell)
	}
	return m.FailLink(string(link))
}

// RestoreCell returns a failed cell to service.
func (m *Manager) RestoreCell(cell string) error {
	link := m.downlink(topology.CellID(cell))
	if link == "" {
		return fmt.Errorf("%w: %s", ErrUnknownCell, cell)
	}
	return m.RestoreLink(string(link))
}

// CrashZone crashes a zone's profile server with total state loss (warm
// restart with empty histories). Predictions degrade to the default
// level until profiles rebuild; the per-slot policy evaluation re-derives
// lounge reservations from live state, so advance reservations self-heal.
func (m *Manager) CrashZone(zone string) error {
	return m.Pred.CrashZone(zone)
}

// Blackout forces the cell's attached wireless channel to its worst
// capacity level for the given duration. The cell must have a channel
// from AttachChannel.
func (m *Manager) Blackout(cell string, duration float64) error {
	cp := m.channels[topology.CellID(cell)]
	if cp == nil {
		return fmt.Errorf("core: no channel attached to cell %s", cell)
	}
	cp.Blackout(m.Sim, duration)
	return nil
}

// CrashSignaling crashes the signaling plane: in-flight setups are
// abandoned with their tentative holds left orphaned (reclaimed later by
// the hold lease, when configured — otherwise they leak and the fault
// auditor flags them).
func (m *Manager) CrashSignaling() error {
	m.SignalPlane().Crash()
	return nil
}

// ConnIDs returns the IDs of all live connections, sorted — the
// liveness oracle fault auditors check ledger allocations against.
func (m *Manager) ConnIDs() []string { return m.sortedConnIDs() }

func (m *Manager) sortedConnIDs() []string {
	out := make([]string, 0, len(m.conns))
	for id := range m.conns {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func routeUses(r topology.Route, id topology.LinkID) bool {
	for _, l := range r.Links {
		if l.ID == id {
			return true
		}
	}
	return false
}
