// Package core integrates the paper's resource-management algorithms into
// the single framework of its Figure 1: admission control with QoS bounds
// (Table 2), static/mobile portable classification (§3.4.2), profile-based
// next-cell prediction (§6), advance reservation with per-class policies,
// the B_dyn pool, multicast route pre-setup on the wired backbone (§4),
// and maxmin bandwidth adaptation for static portables (§5.3).
//
// The Manager is the public heart of the library: place portables, open
// connections with QoS bounds, feed it mobility events, and it runs the
// whole control loop on the discrete-event simulator.
package core

import (
	"errors"
	"fmt"

	"armnet/internal/adapt"
	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/faults"
	"armnet/internal/maxmin"
	"armnet/internal/obs"
	"armnet/internal/overload"
	"armnet/internal/predict"
	"armnet/internal/profile"
	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/reserve"
	"armnet/internal/sched"
	"armnet/internal/signal"
	"armnet/internal/sortx"
	"armnet/internal/strategy"
	"armnet/internal/topology"
	"armnet/internal/wireless"
)

// ReservationMode selects the advance-reservation strategy — the knob the
// paper's §7.1 comparison turns.
type ReservationMode int

const (
	// ModePredictive is the paper's algorithm: profile-based next-cell
	// prediction plus per-class policies.
	ModePredictive ReservationMode = iota
	// ModeBruteForce reserves in every neighboring cell of a mobile
	// portable (the conservative baseline of [7]).
	ModeBruteForce
	// ModeNone performs no advance reservation (handoffs compete as
	// unpredicted pool claims).
	ModeNone
)

// String implements fmt.Stringer.
func (m ReservationMode) String() string {
	switch m {
	case ModePredictive:
		return "predictive"
	case ModeBruteForce:
		return "brute-force"
	case ModeNone:
		return "none"
	default:
		return fmt.Sprintf("ReservationMode(%d)", int(m))
	}
}

// Config parameterizes a Manager.
type Config struct {
	// Seed drives every random draw. Every int64 is a valid, distinct
	// seed — including 0, the zero-value default.
	Seed int64
	// Tth is the static/mobile threshold in seconds (default 300).
	Tth float64
	// PoolMin and PoolMax bound the B_dyn fraction (defaults 0.05/0.20).
	PoolMin, PoolMax float64
	// Mode selects the advance reservation strategy.
	Mode ReservationMode
	// Discipline selects the buffer formulas for admission.
	Discipline sched.Discipline
	// LMax is the maximum packet size in bits (default admission's).
	LMax float64
	// SlotDuration is the lounge policy evaluation period (default 60 s).
	SlotDuration float64
	// Adaptation enables §5.3 bandwidth adaptation (default on).
	DisableAdaptation bool
	// Allocator names the registered rate-allocation strategy ("maxmin",
	// "erica"); empty selects the paper's maxmin protocol.
	Allocator string
	// Admitter names the registered admission strategy ("table2",
	// "measured"); empty selects the paper's Table 2 test.
	Admitter string
	// Proto tunes the rate-allocation protocol (the knobs are shared by
	// every registered allocator: hop delay, δ threshold, fault delivery,
	// retransmission, periodic repair).
	Proto maxmin.ProtocolOptions
	// Profiles tunes the profile servers.
	Profiles profile.ServerOptions
	// Signal tunes the signaling plane (timeout scaling, retransmission,
	// hold leases). The manager forces its Bus; under a fault plan it
	// also forces the delivery hook.
	Signal signal.Options
	// Faults, when non-nil and non-empty, arms deterministic fault
	// injection: the plan's message rules filter signaling and
	// adaptation control packets, and its timed component faults are
	// scheduled at construction time (so build the manager at simulated
	// time zero). A nil or empty plan costs nothing — no RNG draws, no
	// extra events.
	Faults *faults.Plan
	// Overload, when non-nil, arms the staged overload-control
	// subsystem (degrade cascades, priority load shedding, signaling
	// circuit breaker) over every cell's wireless downlink. A nil
	// policy costs nothing — no timers, no events, byte-identical
	// traces.
	Overload *overload.Policy
	// Obs, when non-nil, arms the deterministic observability layer:
	// lifecycle span reconstruction and sim-time instruments, exported
	// as snapshots (Manager.Obs). Nil costs nothing — no subscription,
	// no samples, byte-identical traces; and because the observer never
	// publishes or draws randomness, enabling it leaves the event trace
	// byte-identical too.
	Obs *obs.Options
}

func (c Config) withDefaults() Config {
	if c.Tth <= 0 {
		c.Tth = 300
	}
	if c.PoolMin <= 0 {
		c.PoolMin = 0.05
	}
	if c.PoolMax <= 0 {
		c.PoolMax = 0.20
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = 60
	}
	return c
}

// Portable is the manager's view of one mobile host.
type Portable struct {
	ID   string
	Cell topology.CellID
	Prev topology.CellID
	// Mobility is the current static/mobile classification.
	Mobility qos.Mobility

	arrivedAt   float64
	staticTimer *des.Event
	conns       map[string]bool
	// reservedCells are the cells currently holding advance reservations
	// for this portable.
	reservedCells map[topology.CellID]float64
}

// Conns returns the portable's connection IDs, sorted.
func (p *Portable) Conns() []string {
	return sortx.Keys(p.conns)
}

// Connection is one admitted end-to-end connection. Connections are
// modeled downlink (wired host → portable), the direction that stresses
// the cell in the paper's workloads.
type Connection struct {
	ID       string
	Portable string
	Req      qos.Request
	Host     topology.NodeID
	Route    topology.Route
	// Bandwidth is the current allocation b_j.
	Bandwidth float64
	// Multicast is the wired pre-setup tree toward neighbor base
	// stations (nil when setup failed — never fatal, per §4).
	Multicast *topology.MulticastTree
}

// Manager is the integrated resource manager.
type Manager struct {
	Sim *des.Simulator
	Env *topology.Environment
	Cfg Config
	Rng *randx.Rand
	// Adm is the admission strategy every setup, handoff, and
	// renegotiation goes through (Table 2 by default, Config.Admitter
	// selects rivals).
	Adm strategy.Admitter
	// Bus carries every control-plane decision as a typed event; Met,
	// Latency, and the bandwidth watchers are its built-in subscribers.
	Bus  *eventbus.Bus
	Adpt *adapt.Manager
	Pred *predict.Predictor
	Met  *Metrics
	// Latency tracks handoff signaling latency, split by whether the
	// handoff was predicted (advance-reserved) or not.
	Latency LatencyStats
	// Inj is the armed fault injector; nil without a fault plan.
	Inj *faults.Injector
	// Ovl is the armed overload controller; nil without a policy.
	Ovl *overload.Controller
	// Obs is the armed observability layer; nil without Config.Obs.
	Obs *obs.Observer

	portables map[string]*Portable
	conns     map[string]*Connection
	nextConn  int
	// advance bookkeeping: per wireless link, per source tag, bits/s.
	book map[topology.LinkID]map[string]float64
	// meetings per room cell.
	meetings map[topology.CellID][]*meetingState
	// sigPlane is the lazily built signaling plane (SignalPlane).
	sigPlane *signal.Plane
	// rateWatchers holds per-connection bandwidth-change callbacks (the
	// application runtime-support hook of §4 / [14]).
	rateWatchers map[string]func(bandwidth float64)
	// channels registers attached wireless capacity processes per cell,
	// so blackout faults can reach them.
	channels map[topology.CellID]*wireless.CapacityProcess
	// lastPred holds each portable's outcome-pending prediction; nil
	// unless observability is armed.
	lastPred map[string]predNote
	// ledger is the shared reservation ledger every strategy books into.
	ledger *admission.Ledger
}

type meetingState struct {
	policy  *reserve.MeetingPolicy
	arrived map[string]bool
	left    map[string]bool
}

// Errors.
var (
	ErrUnknownPortable = errors.New("core: unknown portable")
	ErrUnknownCell     = errors.New("core: unknown cell")
	ErrRejected        = errors.New("core: connection rejected")
	ErrUnknownConn     = errors.New("core: unknown connection")
)

// NewManager wires the full system over an environment.
func NewManager(sim *des.Simulator, env *topology.Environment, cfg Config) (*Manager, error) {
	if sim == nil || env == nil {
		return nil, fmt.Errorf("core: nil simulator or environment")
	}
	if len(env.Hosts) == 0 {
		return nil, fmt.Errorf("core: environment has no wired hosts")
	}
	cfg = cfg.withDefaults()
	lg := admission.NewLedger(env.Backbone)
	bus := eventbus.New(sim)
	m := &Manager{
		Sim:          sim,
		Env:          env,
		Cfg:          cfg,
		Rng:          randx.New(cfg.Seed),
		Bus:          bus,
		ledger:       lg,
		Pred:         predict.New(env.Universe, cfg.Profiles),
		Met:          NewMetrics(bus),
		portables:    make(map[string]*Portable),
		conns:        make(map[string]*Connection),
		book:         make(map[topology.LinkID]map[string]float64),
		meetings:     make(map[topology.CellID][]*meetingState),
		rateWatchers: make(map[string]func(float64)),
		channels:     make(map[topology.CellID]*wireless.CapacityProcess),
	}
	adm, err := strategy.NewAdmitter(cfg.Admitter, lg, bus)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m.Adm = adm
	// Fault injection is wired before the protocol stacks are built so
	// their delivery hooks are in place from the first control message.
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		m.Inj = faults.NewInjector(cfg.Faults, cfg.Seed, bus)
		m.Cfg.Proto.Deliver = m.Inj.DeliverMaxmin
		m.Cfg.Signal.Deliver = m.Inj.DeliverSignal
	}
	// Built-in subscribers beyond Metrics: the handoff-latency
	// distributions and the per-connection bandwidth watchers. They are
	// registered after Metrics so a watcher callback observes counters
	// already updated for the event that triggered it (the ordering the
	// pre-bus implementation had).
	bus.Subscribe(func(r eventbus.Record) {
		ev := r.Event.(eventbus.HandoffLatency)
		if ev.Predicted {
			m.Latency.Predicted.Observe(ev.Latency)
		} else {
			m.Latency.Unpredicted.Observe(ev.Latency)
		}
	}, eventbus.KindHandoffLatency)
	bus.Subscribe(func(r eventbus.Record) {
		ev := r.Event.(eventbus.BandwidthChange)
		if w := m.rateWatchers[ev.Conn]; w != nil {
			w(ev.Bandwidth)
		}
	}, eventbus.KindBandwidthChange)
	if !cfg.DisableAdaptation {
		// The allocator is constructed exactly here — where the maxmin
		// protocol was built pre-seam — so its construction-time timers
		// (the re-ADVERTISE ticker) keep their position in the event
		// schedule and default-pair traces stay byte-identical.
		alloc, err := strategy.NewAllocator(cfg.Allocator, sim, m.Cfg.Proto)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.Adpt, err = adapt.NewManagerWith(sim, lg, alloc)
		if err != nil {
			return nil, err
		}
		m.Adpt.Alloc.SetBus(bus)
		m.Adpt.OnRate = func(connID string, bw float64) {
			if c, ok := m.conns[connID]; ok {
				c.Bandwidth = bw
				eventbus.Pub(bus, eventbus.BandwidthChange{Conn: connID, Bandwidth: bw})
			}
		}
	}
	// Initialize B_dyn pools at the floor fraction on every wireless
	// downlink; the pool rule of §5.3 adjusts them as load appears.
	for _, c := range env.Universe.Cells() {
		if ls := lg.Link(m.downlink(c.ID)); ls != nil {
			ls.PoolFraction = cfg.PoolMin
		}
	}
	// Periodic lounge-policy evaluation.
	sim.Every(cfg.SlotDuration, m.evaluatePolicies)
	// Overload control (overload.go): armed only under a policy, so the
	// nil default adds no timers and no events.
	if cfg.Overload != nil {
		if err := cfg.Overload.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.armOverload(*cfg.Overload)
	}
	// Observability (obs.go): armed after every publishing layer and
	// built-in subscriber is wired, so the observer is the last
	// subscriber and sees the same stream the trace recorder does.
	if cfg.Obs != nil {
		m.armObs(*cfg.Obs)
	}
	// Schedule the plan's timed component faults, executed through the
	// manager's own Driver implementation (faultdriver.go).
	if m.Inj != nil {
		m.Inj.Arm(sim, m)
	}
	return m, nil
}

// downlink returns the wireless downlink (bs → air) of a cell.
func (m *Manager) downlink(cell topology.CellID) topology.LinkID {
	c := m.Env.Universe.Cell(cell)
	if c == nil {
		return ""
	}
	l := m.Env.Backbone.Link(c.BaseStation, topology.AirNode(cell))
	if l == nil {
		return ""
	}
	return l.ID
}

// Portable returns the tracked portable, or nil.
func (m *Manager) Portable(id string) *Portable { return m.portables[id] }

// Connection returns the tracked connection, or nil.
func (m *Manager) Connection(id string) *Connection { return m.conns[id] }

// Ledger exposes the underlying reservation ledger (read-mostly).
func (m *Manager) Ledger() *admission.Ledger { return m.ledger }

// WatchBandwidth registers a callback invoked whenever the network adapts
// the connection's bandwidth — the hook an adaptive application (e.g. a
// layered video codec) uses to switch encoding rates (§3.2, [14]).
// A nil callback removes the watcher. Unknown connections error.
func (m *Manager) WatchBandwidth(connID string, fn func(bandwidth float64)) error {
	if _, ok := m.conns[connID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConn, connID)
	}
	if fn == nil {
		delete(m.rateWatchers, connID)
		return nil
	}
	m.rateWatchers[connID] = fn
	return nil
}

// PlacePortable introduces a portable in a cell (initial placement, not a
// handoff). The portable starts mobile; the static timer is armed.
func (m *Manager) PlacePortable(id string, cell topology.CellID) error {
	if m.Env.Universe.Cell(cell) == nil {
		return fmt.Errorf("%w: %s", ErrUnknownCell, cell)
	}
	if _, ok := m.portables[id]; ok {
		return fmt.Errorf("core: portable %s already placed", id)
	}
	p := &Portable{
		ID: id, Cell: cell, Mobility: qos.Mobile,
		arrivedAt:     m.Sim.Now(),
		conns:         make(map[string]bool),
		reservedCells: make(map[topology.CellID]float64),
	}
	m.portables[id] = p
	m.armStaticTimer(p)
	m.noteMeetingArrival(p.ID, cell)
	return nil
}

// RemovePortable tears down a portable and all its connections.
func (m *Manager) RemovePortable(id string) {
	p, ok := m.portables[id]
	if !ok {
		return
	}
	for _, cid := range p.Conns() {
		_ = m.CloseConnection(cid)
	}
	m.clearAdvance(p)
	if p.staticTimer != nil {
		p.staticTimer.Cancel()
	}
	delete(m.portables, id)
}

// armStaticTimer (re)arms the T_th timer that flips the portable to
// static if it stays put.
func (m *Manager) armStaticTimer(p *Portable) {
	if p.staticTimer != nil {
		p.staticTimer.Cancel()
	}
	p.staticTimer = m.Sim.After(m.Cfg.Tth, func() {
		p.staticTimer = nil
		m.becomeStatic(p)
	})
}

// becomeStatic applies the §3.4.2 static rules: drop advance
// reservations elsewhere, upgrade connections toward b_max.
func (m *Manager) becomeStatic(p *Portable) {
	p.Mobility = qos.Static
	m.clearAdvance(p)
	if m.Adpt != nil {
		// Sorted: SetMobility(Static) kicks adaptation sessions, and the
		// session start order is observable in the event trace.
		for _, cid := range p.Conns() {
			_ = m.Adpt.SetMobility(cid, qos.Static)
		}
	}
	m.adjustPools(p.Cell)
}

// becomeMobile applies the mobile rules on movement.
func (m *Manager) becomeMobile(p *Portable) {
	if p.Mobility == qos.Mobile {
		return
	}
	p.Mobility = qos.Mobile
	if m.Adpt != nil {
		for _, cid := range p.Conns() {
			_ = m.Adpt.SetMobility(cid, qos.Mobile)
		}
	}
}
