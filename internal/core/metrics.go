package core

import (
	"fmt"
	"sort"
	"strings"

	"armnet/internal/eventbus"
)

// Ctr is a typed counter identifier. The manager itself never increments
// counters: it publishes events on the bus, and Metrics — a built-in
// subscriber — folds them into this closed set.
type Ctr int

// Counters maintained by Metrics.
const (
	CtrNewRequested Ctr = iota
	CtrNewAdmitted
	CtrNewBlocked
	CtrHandoffTried
	CtrHandoffOK
	CtrHandoffDropped
	CtrAdaptUpdates
	CtrAdvanceResv
	CtrPoolClaims
	CtrFaultsInjected
	CtrRetransmits
	CtrReclaimedHolds
	CtrReadvertises
	CtrShedSetups
	CtrDegradeCascades
	CtrBreakerTrips
	CtrBreakerFastFails

	ctrCount int = iota
)

var ctrNames = [ctrCount]string{
	CtrNewRequested:   "new-requested",
	CtrNewAdmitted:    "new-admitted",
	CtrNewBlocked:     "new-blocked",
	CtrHandoffTried:   "handoff-attempted",
	CtrHandoffOK:      "handoff-succeeded",
	CtrHandoffDropped: "handoff-dropped",
	CtrAdaptUpdates:   "adaptation-updates",
	CtrAdvanceResv:    "advance-reservations",
	CtrPoolClaims:     "pool-claims",
	CtrFaultsInjected: "faults-injected",
	CtrRetransmits:    "control-retransmits",
	CtrReclaimedHolds: "reclaimed-holds",
	CtrReadvertises:   "readvertise-kicks",
	// Overload control: sheds exclude breaker fast-fails, which get
	// their own counter; cascades count "degrade" actions only.
	CtrShedSetups:       "setups-shed",
	CtrDegradeCascades:  "degrade-cascades",
	CtrBreakerTrips:     "breaker-trips",
	CtrBreakerFastFails: "breaker-fast-fails",
}

// String returns the stable report name (the strings the pre-enum API
// used, so printed tables are unchanged).
func (c Ctr) String() string {
	if c < 0 || int(c) >= ctrCount {
		return fmt.Sprintf("Ctr(%d)", int(c))
	}
	return ctrNames[c]
}

// CounterSet is a fixed-size tally over the Ctr enum.
type CounterSet struct {
	counts [ctrCount]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{} }

// Inc adds one to the counter.
func (s *CounterSet) Inc(c Ctr) { s.counts[c]++ }

// Add adds delta to the counter.
func (s *CounterSet) Add(c Ctr, delta int64) { s.counts[c] += delta }

// Get returns the counter's value.
func (s *CounterSet) Get(c Ctr) int64 { return s.counts[c] }

// Ratio returns num/den, or 0 when den is 0.
func (s *CounterSet) Ratio(num, den Ctr) float64 {
	d := s.counts[den]
	if d == 0 {
		return 0
	}
	return float64(s.counts[num]) / float64(d)
}

// Names returns the counters with nonzero values, sorted by report name —
// the same contract the string-keyed counter map offered, so report
// loops render identical tables.
func (s *CounterSet) Names() []Ctr {
	out := make([]Ctr, 0, ctrCount)
	for c := 0; c < ctrCount; c++ {
		if s.counts[c] != 0 {
			out = append(out, Ctr(c))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// String renders "name=value" pairs sorted by name.
func (s *CounterSet) String() string {
	var b strings.Builder
	for i, c := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c, s.counts[c])
	}
	return b.String()
}

// Metrics aggregates the manager's observable outcomes. It is a bus
// subscriber: construct it with NewMetrics and it stays current as the
// control plane publishes.
type Metrics struct {
	Counter *CounterSet
	// Drops lists dropped connection IDs in order.
	Drops []string
}

// NewMetrics subscribes a fresh metrics aggregate to the bus.
func NewMetrics(bus *eventbus.Bus) *Metrics {
	m := &Metrics{Counter: NewCounterSet()}
	bus.Subscribe(m.observe,
		eventbus.KindConnectionRequested,
		eventbus.KindConnectionAdmitted,
		eventbus.KindConnectionBlocked,
		eventbus.KindHandoffAttempt,
		eventbus.KindHandoffOutcome,
		eventbus.KindPoolClaim,
		eventbus.KindAdvanceReservation,
		eventbus.KindBandwidthChange,
		eventbus.KindFaultMessage,
		eventbus.KindFaultComponent,
		eventbus.KindControlRetransmit,
		eventbus.KindHoldReclaimed,
		eventbus.KindReadvertise,
		eventbus.KindSetupShed,
		eventbus.KindDegradeCascade,
		eventbus.KindBreakerState,
	)
	return m
}

func (m *Metrics) observe(r eventbus.Record) {
	switch ev := r.Event.(type) {
	case eventbus.ConnectionRequested:
		m.Counter.Inc(CtrNewRequested)
	case eventbus.ConnectionAdmitted:
		m.Counter.Inc(CtrNewAdmitted)
	case eventbus.ConnectionBlocked:
		m.Counter.Inc(CtrNewBlocked)
	case eventbus.HandoffAttempt:
		m.Counter.Inc(CtrHandoffTried)
	case eventbus.HandoffOutcome:
		if ev.Dropped {
			m.Counter.Inc(CtrHandoffDropped)
			m.Drops = append(m.Drops, ev.Conn)
		} else {
			m.Counter.Inc(CtrHandoffOK)
		}
	case eventbus.PoolClaim:
		m.Counter.Inc(CtrPoolClaims)
	case eventbus.AdvanceReservation:
		m.Counter.Inc(CtrAdvanceResv)
	case eventbus.BandwidthChange:
		m.Counter.Inc(CtrAdaptUpdates)
	case eventbus.FaultMessage:
		m.Counter.Inc(CtrFaultsInjected)
	case eventbus.FaultComponent:
		m.Counter.Inc(CtrFaultsInjected)
	case eventbus.ControlRetransmit:
		m.Counter.Inc(CtrRetransmits)
	case eventbus.HoldReclaimed:
		m.Counter.Inc(CtrReclaimedHolds)
	case eventbus.Readvertise:
		m.Counter.Add(CtrReadvertises, int64(ev.Kicked))
	case eventbus.SetupShed:
		if ev.Reason == "breaker-open" {
			m.Counter.Inc(CtrBreakerFastFails)
		} else {
			m.Counter.Inc(CtrShedSetups)
		}
	case eventbus.DegradeCascade:
		if ev.Action == "degrade" {
			m.Counter.Inc(CtrDegradeCascades)
		}
	case eventbus.BreakerState:
		if ev.To == "open" {
			m.Counter.Inc(CtrBreakerTrips)
		}
	}
}
