package core

import (
	"fmt"
	"strings"

	"armnet/internal/eventbus"
	"armnet/internal/overload"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

// armOverload wires the overload controller over every cell's wireless
// downlink. It runs only when Config.Overload is non-nil, so a nil
// policy arms no timers, subscribes nothing, and publishes nothing.
func (m *Manager) armOverload(pol overload.Policy) {
	m.Ovl = overload.NewController(m.Sim, m.ledger, m.Bus, pol, overload.Hooks{
		// The signaling plane is built lazily; until a setup exists the
		// queue is empty and nothing has retransmitted, so the hooks
		// must not force construction.
		QueueDepth: func() int {
			if m.sigPlane == nil {
				return 0
			}
			return m.sigPlane.InFlight()
		},
		Retransmits: func() int {
			if m.sigPlane == nil {
				return 0
			}
			return m.sigPlane.Retransmits
		},
		Degrade: func(_ topology.CellID, link topology.LinkID) int { return m.degradeLink(link) },
		Restore: func(_ topology.CellID, link topology.LinkID) int { return m.restoreLink(link) },
	})
	cells := m.Env.Universe.Cells()
	links := make([]overload.CellLink, 0, len(cells))
	for _, c := range cells {
		if l := m.downlink(c.ID); l != "" {
			links = append(links, overload.CellLink{Cell: c.ID, Link: l})
		}
	}
	m.Ovl.Start(links)
}

// setupClass classifies a new setup for priority shedding (handoffs are
// classified at the call site; they never reach the shed path).
func (m *Manager) setupClass(p *Portable) overload.Class {
	if p.Mobility == qos.Static {
		return overload.ClassNewStatic
	}
	return overload.ClassNewMobile
}

// allowSetup asks the overload controller whether a new setup may
// proceed; with no controller everything passes. On refusal it returns
// the rejection error: ErrBusy-wrapped for breaker fast-fails.
func (m *Manager) allowSetup(p *Portable) error {
	if m.Ovl == nil {
		return nil
	}
	ok, reason := m.Ovl.AllowSetup(m.setupClass(p), p.Cell, p.ID)
	if ok {
		return nil
	}
	eventbus.Pub(m.Bus, eventbus.ConnectionBlocked{Portable: p.ID, Reason: reason})
	if reason == "breaker-open" {
		return fmt.Errorf("%w: %w", ErrRejected, overload.ErrBusy)
	}
	return fmt.Errorf("%w: overload %s", ErrRejected, reason)
}

// degradeLink caps every degradable connection crossing the link at
// b_min — the §5 rule that adaptable connections give their excess back
// before anyone is dropped. Returns the number newly capped.
func (m *Manager) degradeLink(link topology.LinkID) int {
	if m.Adpt == nil || link == "" {
		return 0
	}
	n := 0
	for _, id := range m.sortedConnIDs() {
		if !routeUses(m.conns[id].Route, link) {
			continue
		}
		if m.Adpt.Degrade(id) {
			n++
			eventbus.Pub(m.Bus, eventbus.DegradeCascade{Conn: id, Link: string(link), Action: "degrade"})
		}
	}
	return n
}

// restoreLink lifts the cascade once the cell has left overload.
func (m *Manager) restoreLink(link topology.LinkID) int {
	if m.Adpt == nil || link == "" {
		return 0
	}
	n := 0
	for _, id := range m.sortedConnIDs() {
		if !routeUses(m.conns[id].Route, link) {
			continue
		}
		if m.Adpt.Restore(id) {
			n++
			eventbus.Pub(m.Bus, eventbus.DegradeCascade{Conn: id, Link: string(link), Action: "restore"})
		}
	}
	return n
}

// DegradableConn reports whether a degrade cascade could still reclaim
// bandwidth from the allocation id — the oracle the overload auditor
// checks dropped handoffs against. Multicast legs ("<conn>@mc:<dst>")
// resolve to their owning connection.
func (m *Manager) DegradableConn(id string) bool {
	if m.Adpt == nil {
		return false
	}
	if i := strings.Index(id, "@"); i >= 0 {
		id = id[:i]
	}
	return m.Adpt.Degradable(id)
}

// OverloadAuditor subscribes a degrade-before-drop invariant checker
// wired to this manager and returns it; inspect Violations after the
// run.
func (m *Manager) OverloadAuditor() *overload.Auditor {
	a := &overload.Auditor{Ledger: m.ledger, Degradable: m.DegradableConn}
	a.Watch(m.Bus)
	return a
}
