package benchx

import (
	"fmt"
	"strings"
)

// DefaultThreshold is the fractional change beyond which Compare flags
// a delta: 20% slower is a regression, 20% faster an improvement.
const DefaultThreshold = 0.20

// Delta is one benchmark metric compared across two trajectory entries.
type Delta struct {
	// Name is the benchmark, Metric the compared unit ("ns/op" or
	// "allocs/op").
	Name   string
	Metric string
	// Before and After are the previous and current values.
	Before float64
	After  float64
	// Change is the fractional change (After-Before)/Before; +0.25
	// means 25% worse. It is 0 when Before is 0 and After is 0, and
	// +Inf-free: a 0→nonzero move is reported as Change=1.
	Change float64
	// Regression and Improvement flag changes beyond the threshold.
	Regression  bool
	Improvement bool
}

// Compare matches current results against previous ones by benchmark
// name and reports a Delta per (benchmark, metric) pair, in current
// order: ns/op always, allocs/op whenever either side reports any.
// Benchmarks present on only one side are skipped — a renamed or new
// benchmark has no trajectory to regress against.
func Compare(prev, cur []Result, threshold float64) []Delta {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	byName := make(map[string]Result, len(prev))
	for _, r := range prev {
		byName[r.Name] = r
	}
	var out []Delta
	for _, c := range cur {
		p, ok := byName[c.Name]
		if !ok {
			continue
		}
		out = append(out, delta(c.Name, "ns/op", p.NsPerOp, c.NsPerOp, threshold))
		if p.AllocsPerOp != 0 || c.AllocsPerOp != 0 {
			out = append(out, delta(c.Name, "allocs/op", p.AllocsPerOp, c.AllocsPerOp, threshold))
		}
	}
	return out
}

func delta(name, metric string, before, after, threshold float64) Delta {
	d := Delta{Name: name, Metric: metric, Before: before, After: after}
	switch {
	case before == 0 && after == 0:
		// no change
	case before == 0:
		d.Change = 1
	default:
		d.Change = (after - before) / before
	}
	d.Regression = d.Change > threshold
	d.Improvement = d.Change < -threshold
	return d
}

// Regressions filters deltas down to the flagged regressions.
func Regressions(ds []Delta) []Delta {
	var out []Delta
	for _, d := range ds {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Report renders deltas as an aligned text table, one line per
// (benchmark, metric), with REGRESSION / improved flags. It is the
// human-readable face of the trajectory: benchcap prints it after every
// capture.
func Report(ds []Delta) string {
	if len(ds) == 0 {
		return "no comparable benchmarks\n"
	}
	var b strings.Builder
	nameW := len("benchmark")
	for _, d := range ds {
		if n := len(d.Name); n > nameW {
			nameW = n
		}
	}
	fmt.Fprintf(&b, "%-*s  %-9s  %14s  %14s  %8s\n", nameW, "benchmark", "metric", "before", "after", "change")
	for _, d := range ds {
		flag := ""
		if d.Regression {
			flag = "  REGRESSION"
		} else if d.Improvement {
			flag = "  improved"
		}
		fmt.Fprintf(&b, "%-*s  %-9s  %14.6g  %14.6g  %+7.1f%%%s\n",
			nameW, d.Name, d.Metric, d.Before, d.After, d.Change*100, flag)
	}
	return b.String()
}
