package benchx

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Entry is one trajectory point: the results of one capture plus the
// context needed to judge comparability later (toolchain, CPU, git
// revision, when it was taken).
type Entry struct {
	// CapturedAt is an RFC3339 UTC timestamp.
	CapturedAt string `json:"captured_at"`
	// GoVersion is runtime.Version() of the capturing toolchain.
	GoVersion string `json:"go_version,omitempty"`
	// Revision is the git revision the capture ran against, when known.
	Revision string `json:"revision,omitempty"`
	// Note is a free-form label ("baseline", "post 4-ary heap", ...).
	Note string `json:"note,omitempty"`
	// CPU and Pkg come from the bench output header.
	CPU string `json:"cpu,omitempty"`
	Pkg string `json:"pkg,omitempty"`
	// Results holds one merged result per benchmark.
	Results []Result `json:"results"`
}

// Trajectory is the accumulated benchmark history of one area — the
// content of a BENCH_<area>.json file. Entries are append-only and
// chronological: Entries[0] is the first baseline ever captured,
// Entries[len-1] the most recent.
type Trajectory struct {
	Area    string  `json:"area"`
	Entries []Entry `json:"entries"`
}

// Last returns the most recent entry, or nil for an empty trajectory.
func (t *Trajectory) Last() *Entry {
	if len(t.Entries) == 0 {
		return nil
	}
	return &t.Entries[len(t.Entries)-1]
}

// Append adds one capture to the trajectory.
func (t *Trajectory) Append(e Entry) { t.Entries = append(t.Entries, e) }

// Load reads a trajectory file. A missing file is not an error: it
// yields an empty trajectory for the given area, so the first capture
// bootstraps the file.
func Load(path, area string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{Area: area}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchx: read %s: %w", path, err)
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("benchx: parse %s: %w", path, err)
	}
	if t.Area == "" {
		t.Area = area
	} else if area != "" && t.Area != area {
		return nil, fmt.Errorf("benchx: %s holds area %q, expected %q", path, t.Area, area)
	}
	return &t, nil
}

// Save writes the trajectory atomically (temp file + rename) so an
// interrupted capture never truncates the accumulated history.
func (t *Trajectory) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: encode %s: %w", path, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return fmt.Errorf("benchx: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("benchx: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("benchx: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("benchx: rename %s: %w", path, err)
	}
	return nil
}
