package benchx

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: armnet/internal/des
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleAndFire 	  100000	       102.7 ns/op	      48 B/op	       1 allocs/op
BenchmarkHeapChurn-8     	  100000	       342.5 ns/op	      48 B/op	       1 allocs/op
BenchmarkFigure2LoungeActivity-4   	     100	  12345 ns/op	        12.00 peak-handoffs/slot	      24 B/op	       2 allocs/op
PASS
ok  	armnet/internal/des	0.062s
`

func TestParseSampleOutput(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if p.Pkg != "armnet/internal/des" {
		t.Errorf("pkg = %q", p.Pkg)
	}
	if !strings.Contains(p.CPU, "Xeon") {
		t.Errorf("cpu = %q", p.CPU)
	}
	want := []Result{
		{Name: "BenchmarkScheduleAndFire", Iters: 100000, NsPerOp: 102.7, BytesPerOp: 48, AllocsPerOp: 1},
		{Name: "BenchmarkHeapChurn", Procs: 8, Iters: 100000, NsPerOp: 342.5, BytesPerOp: 48, AllocsPerOp: 1},
		{Name: "BenchmarkFigure2LoungeActivity", Procs: 4, Iters: 100, NsPerOp: 12345,
			BytesPerOp: 24, AllocsPerOp: 2, Metrics: map[string]float64{"peak-handoffs/slot": 12}},
	}
	if !reflect.DeepEqual(p.Results, want) {
		t.Errorf("results mismatch:\n got %+v\nwant %+v", p.Results, want)
	}
}

func TestParseCustomMetricsOnly(t *testing.T) {
	out := "BenchmarkTheorem1Convergence-2   	      50	  98765.4 ns/op	        33.60 messages/instance\nPASS\n"
	p, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	r := p.Results[0]
	if r.Metrics["messages/instance"] != 33.6 || r.NsPerOp != 98765.4 {
		t.Errorf("bad parse: %+v", r)
	}
}

func TestParseFailedBuild(t *testing.T) {
	out := `# armnet/internal/des [armnet/internal/des.test]
internal/des/des.go:10:2: undefined: frobnicate
FAIL	armnet/internal/des [build failed]
FAIL
`
	if _, err := Parse(strings.NewReader(out)); err == nil {
		t.Fatal("want error on build failure")
	} else if !strings.Contains(err.Error(), "build failed") {
		t.Errorf("error should quote the FAIL line: %v", err)
	}
}

func TestParseFailedBenchmark(t *testing.T) {
	out := `BenchmarkTable2AdmissionWFQ 	  100	  5000 ns/op
--- FAIL: BenchmarkTable2AdmissionRCSP
    bench_test.go:30: admission failed
FAIL
exit status 1
FAIL	armnet	0.5s
`
	if _, err := Parse(strings.NewReader(out)); err == nil {
		t.Fatal("want error when a benchmark failed mid-run")
	}
}

func TestParseEmptyOutput(t *testing.T) {
	out := "goos: linux\nPASS\nok  	armnet	0.001s\n"
	if _, err := Parse(strings.NewReader(out)); err == nil {
		t.Fatal("want error when no benchmark matched")
	}
}

func TestMergeResultsWeightedMeanAndIdempotence(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkX", Iters: 100, NsPerOp: 100, AllocsPerOp: 2, Metrics: map[string]float64{"events/s": 10}},
		{Name: "BenchmarkY", Iters: 10, NsPerOp: 7},
		{Name: "BenchmarkX", Iters: 300, NsPerOp: 200, AllocsPerOp: 2, Metrics: map[string]float64{"events/s": 30}},
	}
	got := MergeResults(in)
	if len(got) != 2 {
		t.Fatalf("want 2 merged results, got %d", len(got))
	}
	x := got[0]
	if x.Name != "BenchmarkX" || x.Iters != 400 {
		t.Errorf("bad merged identity: %+v", x)
	}
	if math.Abs(x.NsPerOp-175) > 1e-9 { // (100*100 + 200*300) / 400
		t.Errorf("ns/op weighted mean = %v, want 175", x.NsPerOp)
	}
	if math.Abs(x.Metrics["events/s"]-25) > 1e-9 {
		t.Errorf("metric weighted mean = %v, want 25", x.Metrics["events/s"])
	}
	again := MergeResults(got)
	if !reflect.DeepEqual(again, got) {
		t.Errorf("merge not idempotent:\n got %+v\nthen %+v", got, again)
	}
	// Merging must not mutate its input's metric maps.
	if in[0].Metrics["events/s"] != 10 {
		t.Errorf("input mutated: %+v", in[0])
	}
}

func TestTrajectoryAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_des.json")
	first, err := Load(path, "des")
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Entries) != 0 || first.Area != "des" {
		t.Fatalf("fresh trajectory wrong: %+v", first)
	}
	first.Append(Entry{CapturedAt: "2026-08-08T00:00:00Z", Note: "baseline",
		Results: []Result{{Name: "BenchmarkScheduleAndFire", Iters: 1000, NsPerOp: 100, AllocsPerOp: 1}}})
	if err := first.Save(path); err != nil {
		t.Fatal(err)
	}

	second, err := Load(path, "des")
	if err != nil {
		t.Fatal(err)
	}
	second.Append(Entry{CapturedAt: "2026-08-08T01:00:00Z", Note: "post-opt",
		Results: []Result{{Name: "BenchmarkScheduleAndFire", Iters: 1000, NsPerOp: 80}}})
	if err := second.Save(path); err != nil {
		t.Fatal(err)
	}

	final, err := Load(path, "des")
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Entries) != 2 {
		t.Fatalf("append must accumulate, got %d entries", len(final.Entries))
	}
	if final.Entries[0].Note != "baseline" || final.Entries[1].Note != "post-opt" {
		t.Errorf("entry order lost: %+v", final.Entries)
	}
	if final.Last().Results[0].NsPerOp != 80 {
		t.Errorf("last entry wrong: %+v", final.Last())
	}
}

func TestLoadAreaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_des.json")
	tr := &Trajectory{Area: "des"}
	tr.Append(Entry{CapturedAt: "2026-08-08T00:00:00Z"})
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, "maxmin"); err == nil {
		t.Fatal("want error appending area maxmin onto a des file")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	prev := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 4},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkC", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkGone", NsPerOp: 1},
	}
	cur := []Result{
		{Name: "BenchmarkA", NsPerOp: 130, AllocsPerOp: 4}, // 30% slower
		{Name: "BenchmarkB", NsPerOp: 75},                  // 25% faster
		{Name: "BenchmarkC", NsPerOp: 101, AllocsPerOp: 0}, // allocs eliminated
		{Name: "BenchmarkNew", NsPerOp: 1},
	}
	ds := Compare(prev, cur, 0.20)
	byKey := map[string]Delta{}
	for _, d := range ds {
		byKey[d.Name+" "+d.Metric] = d
	}
	cases := []struct {
		key         string
		regression  bool
		improvement bool
	}{
		{"BenchmarkA ns/op", true, false},
		{"BenchmarkA allocs/op", false, false},
		{"BenchmarkB ns/op", false, true},
		{"BenchmarkC ns/op", false, false},
		{"BenchmarkC allocs/op", false, true},
	}
	for _, c := range cases {
		d, ok := byKey[c.key]
		if !ok {
			t.Errorf("missing delta %q", c.key)
			continue
		}
		if d.Regression != c.regression || d.Improvement != c.improvement {
			t.Errorf("%s: regression=%v improvement=%v, want %v/%v",
				c.key, d.Regression, d.Improvement, c.regression, c.improvement)
		}
	}
	if _, ok := byKey["BenchmarkGone ns/op"]; ok {
		t.Error("vanished benchmark must not be compared")
	}
	if _, ok := byKey["BenchmarkNew ns/op"]; ok {
		t.Error("new benchmark has no baseline to compare")
	}
	if got := len(Regressions(ds)); got != 1 {
		t.Errorf("want exactly 1 regression, got %d", got)
	}
	rep := Report(ds)
	if !strings.Contains(rep, "REGRESSION") || !strings.Contains(rep, "improved") {
		t.Errorf("report missing flags:\n%s", rep)
	}
}

func TestReportEmpty(t *testing.T) {
	if rep := Report(nil); !strings.Contains(rep, "no comparable") {
		t.Errorf("empty report = %q", rep)
	}
}
