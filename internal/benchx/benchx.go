// Package benchx is the repository's benchmark-capture toolkit: it
// parses `go test -bench` output into structured results, accumulates
// them as a machine-readable trajectory (one JSON file per benchmark
// area, one entry appended per capture), and compares consecutive
// entries so speedups and regressions are visible PR-over-PR instead of
// anecdotal.
//
// The trajectory files (`BENCH_<area>.json` at the repository root,
// written by cmd/benchcap) are the performance ledger the ROADMAP's
// "10x more simulated portables per wall-clock second" goal is measured
// against: every capture appends, never overwrites, so the full history
// of ns/op and allocs/op per benchmark travels with the repo.
package benchx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the benchmark's name (with the
// trailing -GOMAXPROCS suffix split off into Procs), its iteration
// count, and every reported value. The three standard units get typed
// fields; custom b.ReportMetric units land in Metrics verbatim.
type Result struct {
	// Name is the benchmark function name, e.g. "BenchmarkWaterFillSmall".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 when the line carried none).
	Procs int `json:"procs,omitempty"`
	// Iters is the measured iteration count (b.N).
	Iters int64 `json:"iters"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem.
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	// Metrics holds custom b.ReportMetric units, e.g. "events/s".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parsed is the structured form of one `go test -bench` invocation's
// output: the benchmark results plus the context header lines.
type Parsed struct {
	// Pkg is the first "pkg:" header seen, e.g. "armnet/internal/des".
	Pkg string
	// CPU is the "cpu:" header, for judging cross-machine comparability.
	CPU string
	// Results holds one entry per benchmark line, in output order.
	Results []Result
}

// Parse reads `go test -bench` output and returns the structured
// results. It fails loudly on the two silent-rot modes a capture
// harness must not paper over: output that contains test or build
// failures (FAIL lines, "[build failed]") and output with no benchmark
// lines at all (a pattern that matched nothing).
func Parse(r io.Reader) (Parsed, error) {
	var p Parsed
	var failures []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "pkg:"):
			if p.Pkg == "" {
				p.Pkg = strings.TrimSpace(strings.TrimPrefix(trimmed, "pkg:"))
			}
		case strings.HasPrefix(trimmed, "cpu:"):
			if p.CPU == "" {
				p.CPU = strings.TrimSpace(strings.TrimPrefix(trimmed, "cpu:"))
			}
		case strings.HasPrefix(trimmed, "--- FAIL"), strings.HasPrefix(trimmed, "FAIL"):
			failures = append(failures, trimmed)
		case strings.HasPrefix(trimmed, "Benchmark"):
			res, ok, err := parseLine(trimmed)
			if err != nil {
				return Parsed{}, err
			}
			if ok {
				p.Results = append(p.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Parsed{}, fmt.Errorf("benchx: reading bench output: %w", err)
	}
	if len(failures) > 0 {
		return Parsed{}, fmt.Errorf("benchx: bench run failed: %s", strings.Join(failures, "; "))
	}
	if len(p.Results) == 0 {
		return Parsed{}, fmt.Errorf("benchx: no benchmark results in output")
	}
	return p, nil
}

// parseLine parses one "BenchmarkName-8  N  v unit  v unit ..." line.
// Lines that merely start with "Benchmark" but are not result lines
// (e.g. "BenchmarkFoo" alone on the line while the run is in flight)
// report ok=false rather than an error.
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false, nil
	}
	res := Result{Name: fields[0]}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil && procs > 0 {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res.Iters = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchx: bad value %q in line %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return res, true, nil
}

// MergeResults combines duplicate (Name, Procs) results — as produced
// by -count>1 runs — into one result per benchmark: iteration-weighted
// means for all per-op values and summed iteration counts. Results keep
// first-appearance order, and merging already-merged results is a
// no-op, which is what lets a capture be re-parsed and re-merged
// without drift.
func MergeResults(rs []Result) []Result {
	type key struct {
		name  string
		procs int
	}
	idx := map[key]int{}
	var out []Result
	for _, r := range rs {
		k := key{r.Name, r.Procs}
		j, seen := idx[k]
		if !seen {
			idx[k] = len(out)
			// Deep-copy Metrics so merging never aliases the input.
			if r.Metrics != nil {
				m := make(map[string]float64, len(r.Metrics))
				for u, v := range r.Metrics {
					m[u] = v
				}
				r.Metrics = m
			}
			out = append(out, r)
			continue
		}
		a := &out[j]
		wa, wb := float64(a.Iters), float64(r.Iters)
		if wa+wb == 0 {
			continue
		}
		mean := func(x, y float64) float64 { return (x*wa + y*wb) / (wa + wb) }
		a.NsPerOp = mean(a.NsPerOp, r.NsPerOp)
		a.BytesPerOp = mean(a.BytesPerOp, r.BytesPerOp)
		a.AllocsPerOp = mean(a.AllocsPerOp, r.AllocsPerOp)
		for u, v := range r.Metrics {
			if a.Metrics == nil {
				a.Metrics = map[string]float64{}
			}
			if _, ok := a.Metrics[u]; ok {
				a.Metrics[u] = mean(a.Metrics[u], v)
			} else {
				a.Metrics[u] = v
			}
		}
		a.Iters += r.Iters
	}
	return out
}
