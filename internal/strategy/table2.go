package strategy

import (
	"armnet/internal/admission"
	"armnet/internal/eventbus"
)

func init() {
	RegisterAdmitter(DefaultAdmitter, func(lg *admission.Ledger, bus *eventbus.Bus) Admitter {
		c := admission.NewController(lg)
		c.Bus = bus
		return &table2Admitter{c: c}
	})
}

// table2Admitter adapts the paper's Table 2 round-trip admission test to
// the Admitter seam — another pure forwarding shim over the pre-seam
// concrete controller.
type table2Admitter struct{ c *admission.Controller }

func (t *table2Admitter) Name() string { return DefaultAdmitter }

func (t *table2Admitter) Admit(ts admission.Test) (admission.Result, error) { return t.c.Admit(ts) }
