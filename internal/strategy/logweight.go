package strategy

import (
	"fmt"
	"math"

	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/maxmin"
	"armnet/internal/sortx"
)

func init() {
	RegisterAllocator("logweight", NewLogWeight)
}

// NewLogWeight builds the logarithmic-weight proportional-sharing
// allocator (after Robert & Véber's log-weighted bandwidth sharing).
// It reuses ERICA's single explicit-rate round trip but replaces the
// equal fair share with a weighted one: every connection carries the
// weight
//
//	w_c = 1 + log(1 + demand_c)
//
// and each switch offers
//
//	μ_l(c) = max(C_l · w_c / Σ_j w_j, C_l − Σ_{j≠c} recorded_j)
//
// — the larger of the *log-weighted* share and the capacity left over
// by everyone else. The logarithm bounds the favoritism: a connection
// demanding 10× the bandwidth earns only a slightly larger floor, so
// saturated links split capacity nearly evenly while still tilting
// toward heavy flows. On a saturated link whose sharers are all
// demand-uncapped the fixed point is exactly the weighted proportional
// split C_l · w_c / Σ_j w_j; the arena quantifies how that compares to
// max-min and ERICA on blocking, adaptation, and overhead.
//
// The constructor honors the shared ProtocolOptions knobs the same way
// ERICA does: HopDelay, Delta (the eq. 2 trigger threshold and kick
// tolerance), the Deliver fault hook with MaxRetries/RetryBase
// retransmission, and the periodic ReadvertisePeriod repair loop.
// RoundTrips and Refined are ignored — one round trip, no M(l) sets.
func NewLogWeight(sim *des.Simulator, opts maxmin.ProtocolOptions) Allocator {
	if opts.HopDelay <= 0 {
		opts.HopDelay = 1e-3
	}
	if opts.Delta < 0 {
		opts.Delta = 0
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 20 * opts.HopDelay
	}
	a := &logAllocator{
		sim:    sim,
		opts:   opts,
		links:  make(map[string]*logLink),
		conns:  make(map[string]*logConn),
		active: make(map[string]bool),
		dirty:  make(map[string]bool),
	}
	if opts.ReadvertisePeriod > 0 {
		sim.Every(opts.ReadvertisePeriod, a.readvertise)
	}
	return a
}

// logWeight is the Robert–Véber weight: 1 + log(1 + demand). The +1
// floor keeps zero-demand connections schedulable and the log keeps the
// spread between light and heavy flows bounded.
func logWeight(demand float64) float64 { return 1 + math.Log1p(demand) }

type logAllocator struct {
	sim      *des.Simulator
	opts     maxmin.ProtocolOptions
	bus      *eventbus.Bus
	onUpdate func(conn string, rate float64)

	links map[string]*logLink
	conns map[string]*logConn

	messages, sessions, retransmits, readvertises int

	active map[string]bool // per-connection session in flight
	dirty  map[string]bool // session requested while one was active
}

type logLink struct {
	capacity float64
	// recorded is the last stamped rate the switch saw per connection.
	recorded map[string]float64
}

type logConn struct {
	id     string
	path   []string
	demand float64
	weight float64
	rate   float64
}

// offer is the log-weighted explicit rate for one connection at one
// switch: max(weighted share, capacity minus everyone else's recorded
// load), clamped non-negative. Sorted iteration keeps the float sums
// stable run to run.
func (a *logAllocator) offer(l *logLink, conn string) float64 {
	if len(l.recorded) == 0 {
		return l.capacity
	}
	others, wsum, w := 0.0, 0.0, 0.0
	for _, id := range sortx.Keys(l.recorded) {
		wc := a.conns[id].weight
		wsum += wc
		if id == conn {
			w = wc
		} else {
			others += l.recorded[id]
		}
	}
	mu := l.capacity - others
	if share := l.capacity * w / wsum; share > mu {
		mu = share
	}
	if mu < 0 {
		mu = 0
	}
	return mu
}

func (a *logAllocator) Name() string { return "logweight" }

func (a *logAllocator) AddLink(name string, capacity float64) error {
	if _, ok := a.links[name]; ok {
		return fmt.Errorf("logweight: duplicate link %s", name)
	}
	if capacity < 0 {
		return fmt.Errorf("%w: %s = %v", maxmin.ErrBadCapacity, name, capacity)
	}
	a.links[name] = &logLink{capacity: capacity, recorded: make(map[string]float64)}
	return nil
}

func (a *logAllocator) AddSession(s Session) error {
	if _, ok := a.conns[s.ID]; ok {
		return fmt.Errorf("%w: %s", maxmin.ErrDuplicateConn, s.ID)
	}
	if len(s.Path) == 0 {
		return fmt.Errorf("%w: %s", maxmin.ErrEmptyPath, s.ID)
	}
	for _, l := range s.Path {
		if _, ok := a.links[l]; !ok {
			return fmt.Errorf("%w: %s uses %s", maxmin.ErrUnknownLink, s.ID, l)
		}
	}
	if s.Demand < 0 {
		return fmt.Errorf("%w: %s", maxmin.ErrBadDemand, s.ID)
	}
	c := &logConn{id: s.ID, path: dedupPath(s.Path), demand: s.Demand, weight: logWeight(s.Demand)}
	a.conns[s.ID] = c
	for _, l := range c.path {
		a.links[l].recorded[s.ID] = 0
	}
	return nil
}

func (a *logAllocator) RemoveSession(id string) {
	c, ok := a.conns[id]
	if !ok {
		return
	}
	for _, l := range c.path {
		delete(a.links[l].recorded, id)
	}
	delete(a.conns, id)
	delete(a.active, id)
	delete(a.dirty, id)
}

func (a *logAllocator) Kick(id string) bool { return a.startSession(id) }

// CapacityChanged applies the eq. (2) trigger: decreases always adapt,
// increases only above δ. Like ERICA there are no bottleneck sets, so
// the switch kicks every connection whose committed rate drifted from
// its current explicit-rate offer.
func (a *logAllocator) CapacityChanged(link string, capacity float64) (int, error) {
	l, ok := a.links[link]
	if !ok {
		return 0, fmt.Errorf("%w: %s", maxmin.ErrUnknownLink, link)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("%w: %s = %v", maxmin.ErrBadCapacity, link, capacity)
	}
	old := l.capacity
	if capacity > old && capacity-old <= a.opts.Delta {
		return 0, nil
	}
	l.capacity = capacity
	started := 0
	for _, id := range sortx.Keys(l.recorded) {
		if a.drifted(a.conns[id]) && a.startSession(id) {
			started++
		}
	}
	return started, nil
}

func (a *logAllocator) Rates() map[string]float64 {
	out := make(map[string]float64, len(a.conns))
	for id, c := range a.conns {
		out[id] = c.rate
	}
	return out
}

func (a *logAllocator) Bottlenecks() []LinkBottleneck { return nil }

func (a *logAllocator) Stats() ControlStats {
	return ControlStats{
		Messages:     a.messages,
		Sessions:     a.sessions,
		Retransmits:  a.retransmits,
		Readvertises: a.readvertises,
	}
}

func (a *logAllocator) SetOnUpdate(fn func(conn string, rate float64)) { a.onUpdate = fn }

func (a *logAllocator) SetBus(bus *eventbus.Bus) { a.bus = bus }

func (a *logAllocator) tol() float64 {
	if a.opts.Delta > 0 {
		return a.opts.Delta
	}
	return 1e-9
}

// fairOffer is the rate a fresh sweep would stamp for the connection
// right now: min(demand, min_l μ_l(conn)).
func (a *logAllocator) fairOffer(c *logConn) float64 {
	offer := c.demand
	for _, l := range c.path {
		if mu := a.offer(a.links[l], c.id); mu < offer {
			offer = mu
		}
	}
	return offer
}

// drifted reports whether the connection's committed rate deviates from
// its current offer beyond tolerance — the kick criterion shared by the
// cascade, the capacity trigger, and the periodic repair loop.
func (a *logAllocator) drifted(c *logConn) bool {
	if c == nil {
		return false
	}
	if math.Abs(a.fairOffer(c)-c.rate) > a.tol() {
		return true
	}
	// A lost sweep can strand a stale recorded rate mid-path even when
	// the end-to-end offer already matches the committed rate.
	for _, l := range c.path {
		if math.Abs(a.links[l].recorded[c.id]-c.rate) > a.tol() {
			return true
		}
	}
	return false
}

// readvertise is the periodic repair loop: kick every quiescent
// connection that drifted from its offer (the recovery path for
// sessions lost to control-plane faults).
func (a *logAllocator) readvertise() {
	kicked := 0
	for _, id := range sortx.Keys(a.conns) {
		if a.active[id] {
			continue
		}
		if a.drifted(a.conns[id]) && a.startSession(id) {
			kicked++
		}
	}
	if kicked > 0 {
		a.readvertises += kicked
		eventbus.Pub(a.bus, eventbus.Readvertise{Kicked: kicked})
	}
}

func (a *logAllocator) startSession(id string) bool {
	if _, ok := a.conns[id]; !ok {
		return false
	}
	if a.active[id] {
		a.dirty[id] = true
		return false
	}
	a.active[id] = true
	a.sessions++
	a.runSweep(id, 0)
	return true
}

// retryControl schedules a retransmission of a lost sweep with
// exponential backoff; false when the budget is exhausted.
func (a *logAllocator) retryControl(id string, hop, attempt int, resend func(attempt int)) bool {
	if attempt >= a.opts.MaxRetries {
		return false
	}
	a.retransmits++
	eventbus.Pub(a.bus, eventbus.ControlRetransmit{Proto: "logweight", Conn: id, Hop: hop, Attempt: attempt + 1})
	backoff := a.opts.RetryBase * float64(int(1)<<attempt)
	a.sim.PostAfter(backoff, func() { resend(attempt + 1) })
	return true
}

// runSweep performs the single explicit-rate round trip: the control
// packet clamps its stamp at every switch out and back, then the source
// commits with an UPDATE. A hop lost to the delivery hook leaves
// partial recorded state (like a real lost packet) and is resent after
// backoff.
func (a *logAllocator) runSweep(id string, attempt int) {
	c, ok := a.conns[id]
	if !ok {
		a.finishSession(id)
		a.maybeConverged()
		return
	}
	stamp := c.demand
	travel := 0.0
	hop := 0
	for pass := 0; pass < 2; pass++ {
		order := c.path
		if pass == 1 {
			order = reversedPath(c.path)
		}
		for _, lname := range order {
			a.messages++
			travel += a.opts.HopDelay
			if d := a.opts.Deliver; d != nil {
				drop, extra := d(id, hop, false)
				if drop {
					if !a.retryControl(id, hop, attempt, func(n int) { a.runSweep(id, n) }) {
						a.finishSession(id)
						a.maybeConverged()
					}
					return
				}
				travel += extra
			}
			hop++
			l := a.links[lname]
			if mu := a.offer(l, id); mu < stamp {
				stamp = mu
			}
			l.recorded[id] = stamp
		}
	}
	final := stamp
	eventbus.Pub(a.bus, eventbus.AdaptationRound{Conn: id, Round: 1, Stamp: final})
	a.sim.PostAfter(travel, func() { a.sendUpdate(id, final, 0) })
}

// sendUpdate commits the stamped rate at every switch and fires the
// rate observer; a committed change cascades to drifted neighbors.
func (a *logAllocator) sendUpdate(id string, rate float64, attempt int) {
	c, ok := a.conns[id]
	if !ok {
		a.finishSession(id)
		a.maybeConverged()
		return
	}
	travel := 0.0
	for i, lname := range c.path {
		a.messages++
		travel += a.opts.HopDelay
		if d := a.opts.Deliver; d != nil {
			drop, extra := d(id, i, true)
			if drop {
				if !a.retryControl(id, i, attempt, func(n int) { a.sendUpdate(id, rate, n) }) {
					a.finishSession(id)
					a.maybeConverged()
				}
				return
			}
			travel += extra
		}
		a.links[lname].recorded[id] = rate
	}
	a.sim.PostAfter(travel, func() {
		changed := math.Abs(c.rate-rate) > 1e-9*(1+math.Abs(rate))
		c.rate = rate
		if changed && a.onUpdate != nil {
			a.onUpdate(id, rate)
		}
		a.finishSession(id)
		if changed {
			a.cascade(id)
		}
		a.maybeConverged()
	})
}

func (a *logAllocator) finishSession(id string) {
	delete(a.active, id)
	if a.dirty[id] {
		delete(a.dirty, id)
		a.startSession(id)
	}
}

// maybeConverged publishes convergence when the allocator goes
// quiescent (reusing the MaxminConverged kind — the closed eventbus set
// is shared by every allocator; the obs instruments read it
// generically).
func (a *logAllocator) maybeConverged() {
	if len(a.active) == 0 && len(a.dirty) == 0 && a.sessions > 0 {
		eventbus.Pub(a.bus, eventbus.MaxminConverged{Sessions: a.sessions, Messages: a.messages})
	}
}

// cascade kicks every connection sharing a link with id whose committed
// rate drifted from its fresh offer. Sessions that commit an unchanged
// rate do not cascade, which is what terminates the ripple.
func (a *logAllocator) cascade(id string) {
	c, ok := a.conns[id]
	if !ok {
		return
	}
	targets := map[string]bool{}
	for _, lname := range c.path {
		l := a.links[lname]
		for _, other := range sortx.Keys(l.recorded) {
			if other != id && a.drifted(a.conns[other]) {
				targets[other] = true
			}
		}
	}
	for _, t := range sortx.Keys(targets) {
		a.startSession(t)
	}
}
