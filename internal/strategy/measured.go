package strategy

import (
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/eventbus"
)

func init() {
	RegisterAdmitter("measured", func(lg *admission.Ledger, bus *eventbus.Bus) Admitter {
		return &measuredAdmitter{lg: lg, bus: bus}
	})
}

// measuredHeadroom is the utilization target: a flow is admitted only if
// the measured aggregate plus its b_min stays under this fraction of
// link capacity. The 5% slack is the admitter's only hedge against
// measurement staleness and unpredicted handoffs.
const measuredHeadroom = 0.95

// measuredAdmitter is a Jaramillo–Ying-style measurement-based admission
// test: capacity-region-free, with no Table 2 rows. Each link admits on
// a single measured quantity — the currently allocated aggregate ΣCur,
// which (unlike Table 2's ΣMin) includes the excess the allocator has
// handed out — against a fixed headroom target:
//
//	admit  iff  ΣCur_l + b_min ≤ headroom × C_l  on every route link.
//
// Delay, jitter, buffer, and loss bounds are never checked (the scheme
// trusts the headroom to keep queues short), advance reservations and
// the B_dyn pool are not withheld from new flows, and the committed
// allocation is exactly b_min with no buffer booking. Handoffs still
// consume the advance reservation so the §6 machinery stays conserved.
//
// The bookable-minimum invariant holds by construction: ΣCur ≥ ΣMin, so
// an admitted flow always fits ΣMin + b_min ≤ C_l.
type measuredAdmitter struct {
	lg  *admission.Ledger
	bus *eventbus.Bus
}

func (m *measuredAdmitter) Name() string { return "measured" }

// Admit runs the measurement test on every route link and commits b_min
// on success; on failure no state changes.
func (m *measuredAdmitter) Admit(t admission.Test) (admission.Result, error) {
	res, err := m.admit(t)
	if err == nil {
		eventbus.Pub(m.bus, eventbus.AdmissionDecision{
			Conn:      t.ConnID,
			Class:     t.Kind.String(),
			Admitted:  res.Admitted,
			Reason:    res.Reason,
			Link:      string(res.FailedLink),
			Bandwidth: res.Bandwidth,
		})
	}
	return res, err
}

func (m *measuredAdmitter) admit(t admission.Test) (admission.Result, error) {
	if err := t.Req.Validate(); err != nil {
		return admission.Result{}, fmt.Errorf("%w: %v", admission.ErrValidation, err)
	}
	if t.ConnID == "" {
		return admission.Result{}, fmt.Errorf("%w: empty connection id", admission.ErrValidation)
	}
	if len(t.Route.Links) == 0 {
		return admission.Result{}, fmt.Errorf("%w: empty route", admission.ErrValidation)
	}
	bmin := t.Req.Bandwidth.Min
	var res admission.Result
	states := make([]*admission.LinkState, 0, len(t.Route.Links))
	for _, link := range t.Route.Links {
		ls := m.lg.Link(link.ID)
		if ls == nil {
			return admission.Result{}, fmt.Errorf("%w: %s", admission.ErrUnknownLink, link.ID)
		}
		if ls.Down || ls.SumCur()+bmin > ls.Capacity*measuredHeadroom {
			res.Reason = admission.ReasonBandwidth
			res.FailedLink = link.ID
			return res, nil
		}
		states = append(states, ls)
	}
	res.Bandwidth = bmin
	for _, ls := range states {
		if t.Kind == admission.KindHandoff || t.Kind == admission.KindPoolClaim {
			take := bmin
			if take > ls.AdvanceReserved {
				take = ls.AdvanceReserved
			}
			ls.AdvanceReserved -= take
		}
		ls.Book(t.ConnID, admission.Alloc{Min: bmin, Cur: bmin})
	}
	res.Admitted = true
	return res, nil
}
