package strategy

import (
	"fmt"
	"math"

	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/maxmin"
	"armnet/internal/sortx"
)

func init() {
	RegisterAllocator("erica", NewErica)
}

// NewErica builds the ERICA-style fair-share allocator (after Fahmy &
// Jain's ABR switch scheme). Where the paper's maxmin protocol needs
// four ADVERTISE round trips before an UPDATE commits, ERICA stamps a
// single explicit-rate sweep: each switch offers
//
//	μ_l(i) = max(C_l / N_l, C_l − Σ_{j≠i} recorded_j)
//
// — the larger of the equal fair share and the capacity left over by
// everyone else — and the source commits min(demand, min_l μ_l(i)) after
// one out-and-back pass. Convergence takes more cascaded sessions than
// maxmin's synchronized rounds (rates transiently overshoot before
// neighbors record them), but each session costs a quarter of the
// control packets; the arena quantifies that trade.
//
// The constructor honors the shared ProtocolOptions knobs: HopDelay,
// Delta (the eq. 2 trigger threshold and kick tolerance), the Deliver
// fault hook with MaxRetries/RetryBase retransmission, and the periodic
// ReadvertisePeriod repair loop. RoundTrips and Refined are ignored —
// ERICA has exactly one round trip and no M(l) sets.
func NewErica(sim *des.Simulator, opts maxmin.ProtocolOptions) Allocator {
	if opts.HopDelay <= 0 {
		opts.HopDelay = 1e-3
	}
	if opts.Delta < 0 {
		opts.Delta = 0
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 20 * opts.HopDelay
	}
	a := &ericaAllocator{
		sim:    sim,
		opts:   opts,
		links:  make(map[string]*ericaLink),
		conns:  make(map[string]*ericaConn),
		active: make(map[string]bool),
		dirty:  make(map[string]bool),
	}
	if opts.ReadvertisePeriod > 0 {
		sim.Every(opts.ReadvertisePeriod, a.readvertise)
	}
	return a
}

type ericaAllocator struct {
	sim      *des.Simulator
	opts     maxmin.ProtocolOptions
	bus      *eventbus.Bus
	onUpdate func(conn string, rate float64)

	links map[string]*ericaLink
	conns map[string]*ericaConn

	messages, sessions, retransmits, readvertises int

	active map[string]bool // per-connection session in flight
	dirty  map[string]bool // session requested while one was active
}

type ericaLink struct {
	capacity float64
	// recorded is the last stamped rate the switch saw per connection.
	recorded map[string]float64
}

type ericaConn struct {
	id     string
	path   []string
	demand float64
	rate   float64
}

// offer is ERICA's explicit rate for one connection at one switch:
// max(fair share, capacity minus everyone else's recorded load),
// clamped non-negative. Sorted iteration keeps the float sum stable.
func (l *ericaLink) offer(conn string) float64 {
	n := len(l.recorded)
	if n == 0 {
		return l.capacity
	}
	others := 0.0
	for _, id := range sortx.Keys(l.recorded) {
		if id != conn {
			others += l.recorded[id]
		}
	}
	mu := l.capacity - others
	if fair := l.capacity / float64(n); fair > mu {
		mu = fair
	}
	if mu < 0 {
		mu = 0
	}
	return mu
}

func (a *ericaAllocator) Name() string { return "erica" }

func (a *ericaAllocator) AddLink(name string, capacity float64) error {
	if _, ok := a.links[name]; ok {
		return fmt.Errorf("erica: duplicate link %s", name)
	}
	if capacity < 0 {
		return fmt.Errorf("%w: %s = %v", maxmin.ErrBadCapacity, name, capacity)
	}
	a.links[name] = &ericaLink{capacity: capacity, recorded: make(map[string]float64)}
	return nil
}

func (a *ericaAllocator) AddSession(s Session) error {
	if _, ok := a.conns[s.ID]; ok {
		return fmt.Errorf("%w: %s", maxmin.ErrDuplicateConn, s.ID)
	}
	if len(s.Path) == 0 {
		return fmt.Errorf("%w: %s", maxmin.ErrEmptyPath, s.ID)
	}
	for _, l := range s.Path {
		if _, ok := a.links[l]; !ok {
			return fmt.Errorf("%w: %s uses %s", maxmin.ErrUnknownLink, s.ID, l)
		}
	}
	if s.Demand < 0 {
		return fmt.Errorf("%w: %s", maxmin.ErrBadDemand, s.ID)
	}
	c := &ericaConn{id: s.ID, path: dedupPath(s.Path), demand: s.Demand}
	a.conns[s.ID] = c
	for _, l := range c.path {
		a.links[l].recorded[s.ID] = 0
	}
	return nil
}

func (a *ericaAllocator) RemoveSession(id string) {
	c, ok := a.conns[id]
	if !ok {
		return
	}
	for _, l := range c.path {
		delete(a.links[l].recorded, id)
	}
	delete(a.conns, id)
	delete(a.active, id)
	delete(a.dirty, id)
}

func (a *ericaAllocator) Kick(id string) bool { return a.startSession(id) }

// CapacityChanged applies the eq. (2) trigger: decreases always adapt,
// increases only above δ. ERICA has no bottleneck sets, so the switch
// kicks every connection whose committed rate drifted from its current
// explicit-rate offer.
func (a *ericaAllocator) CapacityChanged(link string, capacity float64) (int, error) {
	l, ok := a.links[link]
	if !ok {
		return 0, fmt.Errorf("%w: %s", maxmin.ErrUnknownLink, link)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("%w: %s = %v", maxmin.ErrBadCapacity, link, capacity)
	}
	old := l.capacity
	if capacity > old && capacity-old <= a.opts.Delta {
		return 0, nil
	}
	l.capacity = capacity
	started := 0
	for _, id := range sortx.Keys(l.recorded) {
		if a.drifted(a.conns[id]) && a.startSession(id) {
			started++
		}
	}
	return started, nil
}

func (a *ericaAllocator) Rates() map[string]float64 {
	out := make(map[string]float64, len(a.conns))
	for id, c := range a.conns {
		out[id] = c.rate
	}
	return out
}

func (a *ericaAllocator) Bottlenecks() []LinkBottleneck { return nil }

func (a *ericaAllocator) Stats() ControlStats {
	return ControlStats{
		Messages:     a.messages,
		Sessions:     a.sessions,
		Retransmits:  a.retransmits,
		Readvertises: a.readvertises,
	}
}

func (a *ericaAllocator) SetOnUpdate(fn func(conn string, rate float64)) { a.onUpdate = fn }

func (a *ericaAllocator) SetBus(bus *eventbus.Bus) { a.bus = bus }

func (a *ericaAllocator) tol() float64 {
	if a.opts.Delta > 0 {
		return a.opts.Delta
	}
	return 1e-9
}

// fairOffer is the rate a fresh sweep would stamp for the connection
// right now: min(demand, min_l μ_l(conn)).
func (a *ericaAllocator) fairOffer(c *ericaConn) float64 {
	offer := c.demand
	for _, l := range c.path {
		if mu := a.links[l].offer(c.id); mu < offer {
			offer = mu
		}
	}
	return offer
}

// drifted reports whether the connection's committed rate deviates from
// its current offer beyond tolerance — the kick criterion shared by the
// cascade, the capacity trigger, and the periodic repair loop.
func (a *ericaAllocator) drifted(c *ericaConn) bool {
	if c == nil {
		return false
	}
	if math.Abs(a.fairOffer(c)-c.rate) > a.tol() {
		return true
	}
	// A lost sweep can strand a stale recorded rate mid-path even when
	// the end-to-end offer already matches the committed rate.
	for _, l := range c.path {
		if math.Abs(a.links[l].recorded[c.id]-c.rate) > a.tol() {
			return true
		}
	}
	return false
}

// readvertise is the periodic repair loop: kick every quiescent
// connection that drifted from its offer (the recovery path for sessions
// lost to control-plane faults).
func (a *ericaAllocator) readvertise() {
	kicked := 0
	for _, id := range sortx.Keys(a.conns) {
		if a.active[id] {
			continue
		}
		if a.drifted(a.conns[id]) && a.startSession(id) {
			kicked++
		}
	}
	if kicked > 0 {
		a.readvertises += kicked
		eventbus.Pub(a.bus, eventbus.Readvertise{Kicked: kicked})
	}
}

func (a *ericaAllocator) startSession(id string) bool {
	if _, ok := a.conns[id]; !ok {
		return false
	}
	if a.active[id] {
		a.dirty[id] = true
		return false
	}
	a.active[id] = true
	a.sessions++
	a.runSweep(id, 0)
	return true
}

// retryControl schedules a retransmission of a lost sweep with
// exponential backoff; false when the budget is exhausted.
func (a *ericaAllocator) retryControl(id string, hop, attempt int, resend func(attempt int)) bool {
	if attempt >= a.opts.MaxRetries {
		return false
	}
	a.retransmits++
	eventbus.Pub(a.bus, eventbus.ControlRetransmit{Proto: "erica", Conn: id, Hop: hop, Attempt: attempt + 1})
	backoff := a.opts.RetryBase * float64(int(1)<<attempt)
	a.sim.PostAfter(backoff, func() { resend(attempt + 1) })
	return true
}

// runSweep performs ERICA's single explicit-rate round trip: the control
// packet clamps its stamp at every switch out and back, then the source
// commits with an UPDATE. A hop lost to the delivery hook leaves partial
// recorded state (like a real lost packet) and is resent after backoff.
func (a *ericaAllocator) runSweep(id string, attempt int) {
	c, ok := a.conns[id]
	if !ok {
		a.finishSession(id)
		a.maybeConverged()
		return
	}
	stamp := c.demand
	travel := 0.0
	hop := 0
	for pass := 0; pass < 2; pass++ {
		order := c.path
		if pass == 1 {
			order = reversedPath(c.path)
		}
		for _, lname := range order {
			a.messages++
			travel += a.opts.HopDelay
			if d := a.opts.Deliver; d != nil {
				drop, extra := d(id, hop, false)
				if drop {
					if !a.retryControl(id, hop, attempt, func(n int) { a.runSweep(id, n) }) {
						a.finishSession(id)
						a.maybeConverged()
					}
					return
				}
				travel += extra
			}
			hop++
			l := a.links[lname]
			if mu := l.offer(id); mu < stamp {
				stamp = mu
			}
			l.recorded[id] = stamp
		}
	}
	final := stamp
	eventbus.Pub(a.bus, eventbus.AdaptationRound{Conn: id, Round: 1, Stamp: final})
	a.sim.PostAfter(travel, func() { a.sendUpdate(id, final, 0) })
}

// sendUpdate commits the stamped rate at every switch and fires the
// rate observer; a committed change cascades to drifted neighbors.
func (a *ericaAllocator) sendUpdate(id string, rate float64, attempt int) {
	c, ok := a.conns[id]
	if !ok {
		a.finishSession(id)
		a.maybeConverged()
		return
	}
	travel := 0.0
	for i, lname := range c.path {
		a.messages++
		travel += a.opts.HopDelay
		if d := a.opts.Deliver; d != nil {
			drop, extra := d(id, i, true)
			if drop {
				if !a.retryControl(id, i, attempt, func(n int) { a.sendUpdate(id, rate, n) }) {
					a.finishSession(id)
					a.maybeConverged()
				}
				return
			}
			travel += extra
		}
		a.links[lname].recorded[id] = rate
	}
	a.sim.PostAfter(travel, func() {
		changed := math.Abs(c.rate-rate) > 1e-9*(1+math.Abs(rate))
		c.rate = rate
		if changed && a.onUpdate != nil {
			a.onUpdate(id, rate)
		}
		a.finishSession(id)
		if changed {
			a.cascade(id)
		}
		a.maybeConverged()
	})
}

func (a *ericaAllocator) finishSession(id string) {
	delete(a.active, id)
	if a.dirty[id] {
		delete(a.dirty, id)
		a.startSession(id)
	}
}

// maybeConverged publishes convergence when the allocator goes quiescent
// (reusing the MaxminConverged kind — the closed eventbus set is shared
// by every allocator; the obs maxmin instruments read it generically).
func (a *ericaAllocator) maybeConverged() {
	if len(a.active) == 0 && len(a.dirty) == 0 && a.sessions > 0 {
		eventbus.Pub(a.bus, eventbus.MaxminConverged{Sessions: a.sessions, Messages: a.messages})
	}
}

// cascade kicks every connection sharing a link with id whose committed
// rate drifted from its fresh offer. Sessions that commit an unchanged
// rate do not cascade, which is what terminates the ripple.
func (a *ericaAllocator) cascade(id string) {
	c, ok := a.conns[id]
	if !ok {
		return
	}
	targets := map[string]bool{}
	for _, lname := range c.path {
		l := a.links[lname]
		for _, other := range sortx.Keys(l.recorded) {
			if other != id && a.drifted(a.conns[other]) {
				targets[other] = true
			}
		}
	}
	for _, t := range sortx.Keys(targets) {
		a.startSession(t)
	}
}

func dedupPath(path []string) []string {
	seen := make(map[string]bool, len(path))
	out := make([]string, 0, len(path))
	for _, l := range path {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func reversedPath(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
