// Package strategy carves the paper's hard-wired resource-management
// algorithms into pluggable seams. Two interfaces cover the decisions
// the core connection lifecycle delegates:
//
//   - Allocator: how excess bandwidth is (re)distributed among admitted
//     connections — the paper's §5.3.1 distributed maxmin
//     ADVERTISE/UPDATE protocol is the default implementation;
//   - Admitter: whether a connection may be admitted and how much is
//     committed — the paper's Table 2 round-trip test is the default.
//
// Rival strategies from the related work register themselves under
// stable names ("erica", an ABR-style fair-share switch allocator after
// Fahmy & Jain; "measured", a capacity-region-free measurement-based
// admitter after Jaramillo & Ying), and sim.RunArena races registered
// pairs head-to-head over the identical seeded workload.
//
// The registry is populated at init time and read-only afterwards, so
// lookups are safe from concurrent replications. The default pair is
// behavior-preserving by construction: it routes every call to the same
// concrete code paths core used before the seam existed, keeping event
// traces byte-identical.
package strategy

import (
	"fmt"
	"sort"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/maxmin"
)

// Session is one adaptable connection registered with an Allocator: its
// link path and the excess demand (b_max - b_min) it can absorb.
type Session struct {
	ID     string
	Path   []string
	Demand float64
}

// LinkBottleneck reports the size of one link's bottleneck set — the
// observability tap behind the obs maxmin instruments. Allocators
// without a bottleneck-set notion return nil.
type LinkBottleneck struct {
	Link string
	Size int
}

// ControlStats counts an allocator's control-plane work: the currency of
// the arena's overhead comparison.
type ControlStats struct {
	// Messages is the control-packet hop count (ADVERTISE + UPDATE).
	Messages int
	// Sessions counts adaptation sessions started.
	Sessions int
	// Retransmits counts control sweeps resent after a loss.
	Retransmits int
	// Readvertises counts connections kicked by periodic repair.
	Readvertises int
}

// Allocator is the rate-allocation strategy seam. Implementations run
// on the discrete-event simulator, must be deterministic (sorted
// iteration, no wall clock, no map-order publishes), and commit rate
// changes through the OnUpdate callback; the adaptation layer turns
// those into ledger allocations.
type Allocator interface {
	// Name is the registry name ("maxmin", "erica", ...).
	Name() string
	// AddLink registers a link with its current excess capacity.
	AddLink(name string, capacity float64) error
	// AddSession registers an adaptable connection.
	AddSession(s Session) error
	// RemoveSession drops a connection and frees its recorded state.
	RemoveSession(id string)
	// Kick starts an adaptation session for one connection (connection
	// setup, degrade restore). Reports whether a session started.
	Kick(id string) bool
	// CapacityChanged tells the allocator a link's excess capacity
	// changed (eq. 2 trigger); returns the number of sessions started.
	CapacityChanged(link string, capacity float64) (int, error)
	// Rates returns the currently committed excess rate per connection.
	Rates() map[string]float64
	// Bottlenecks exports per-link bottleneck-set sizes, or nil.
	Bottlenecks() []LinkBottleneck
	// Stats returns the control-plane work counters.
	Stats() ControlStats
	// SetOnUpdate installs the committed-rate observer. Must be set
	// before the first session runs.
	SetOnUpdate(fn func(conn string, rate float64))
	// SetBus installs the event bus for AdaptationRound / converged /
	// retransmit events. A nil bus publishes nothing.
	SetBus(bus *eventbus.Bus)
}

// Admitter is the admission-control strategy seam: the atomic test-and-
// commit every new connection, handoff, and renegotiation goes through.
// Implementations book committed allocations into the shared admission
// ledger (the single source of truth the allocators, the overload
// controller, and the auditors all read), so the conservation invariants
// of faults.Auditor hold under any strategy.
type Admitter interface {
	// Name is the registry name ("table2", "measured", ...).
	Name() string
	// Admit runs the full admission round trip. On success the
	// connection's allocation is committed to every link of the route;
	// on failure no state changes.
	Admit(t admission.Test) (admission.Result, error)
}

// AllocatorFactory builds an Allocator over a simulator. The maxmin
// protocol options double as the generic control-plane tuning knobs
// (hop delay, δ threshold, retry budget, fault-delivery hook, periodic
// repair), which every allocator honors.
type AllocatorFactory func(sim *des.Simulator, opts maxmin.ProtocolOptions) Allocator

// AdmitterFactory builds an Admitter over the shared ledger; decisions
// are published on the bus (nil publishes nothing).
type AdmitterFactory func(lg *admission.Ledger, bus *eventbus.Bus) Admitter

// Default strategy names: the paper's own algorithms.
const (
	DefaultAllocator = "maxmin"
	DefaultAdmitter  = "table2"
)

var (
	allocators = map[string]AllocatorFactory{}
	admitters  = map[string]AdmitterFactory{}
)

// RegisterAllocator installs an allocator factory under a name.
// Duplicate names panic: registration is an init-time programming act.
func RegisterAllocator(name string, f AllocatorFactory) {
	if name == "" || f == nil {
		panic("strategy: empty allocator registration")
	}
	if _, ok := allocators[name]; ok {
		panic("strategy: duplicate allocator " + name)
	}
	allocators[name] = f
}

// RegisterAdmitter installs an admitter factory under a name.
func RegisterAdmitter(name string, f AdmitterFactory) {
	if name == "" || f == nil {
		panic("strategy: empty admitter registration")
	}
	if _, ok := admitters[name]; ok {
		panic("strategy: duplicate admitter " + name)
	}
	admitters[name] = f
}

// NewAllocator builds the named allocator ("" selects the default).
func NewAllocator(name string, sim *des.Simulator, opts maxmin.ProtocolOptions) (Allocator, error) {
	if name == "" {
		name = DefaultAllocator
	}
	f, ok := allocators[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown allocator %q (have: %v)", name, Allocators())
	}
	return f(sim, opts), nil
}

// NewAdmitter builds the named admitter ("" selects the default).
func NewAdmitter(name string, lg *admission.Ledger, bus *eventbus.Bus) (Admitter, error) {
	if name == "" {
		name = DefaultAdmitter
	}
	f, ok := admitters[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown admitter %q (have: %v)", name, Admitters())
	}
	return f(lg, bus), nil
}

// Allocators lists the registered allocator names, sorted.
func Allocators() []string { return sortedNames(allocators) }

// Admitters lists the registered admitter names, sorted.
func Admitters() []string { return sortedNames(admitters) }

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
