package strategy_test

import (
	"fmt"
	"math"
	"testing"

	"armnet/internal/adapt"
	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/faults"
	"armnet/internal/maxmin"
	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/strategy"
	"armnet/internal/topology"
)

// TestAdmittersNeverAdmitUnbookable is the strategy seam's safety
// property: whatever policy an Admitter implements, a flow it admits
// must be bookable — after every admission, each route link carries
// ΣMin ≤ Capacity and the ledger passes the faults auditor's
// conservation check. A rival admitter may block more or fewer flows
// than Table 2, but it may never oversubscribe the committed minima.
func TestAdmittersNeverAdmitUnbookable(t *testing.T) {
	for _, name := range strategy.Admitters() {
		t.Run(name, func(t *testing.T) {
			b := topology.NewBackbone()
			for _, id := range []topology.NodeID{"h", "bs", "air"} {
				b.MustAddNode(topology.Node{ID: id})
			}
			b.MustAddDuplex(topology.Link{From: "h", To: "bs", Capacity: 3e6, PropDelay: 1e-3})
			b.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: 1.6e6, Wireless: true})
			route, err := b.ShortestPath("h", "air")
			if err != nil {
				t.Fatal(err)
			}
			lg := admission.NewLedger(b)
			adm, err := strategy.NewAdmitter(name, lg, nil)
			if err != nil {
				t.Fatal(err)
			}
			auditor := &faults.Auditor{Ledger: lg}
			rng := randx.New(int64(len(name))*1000 + 42)
			live := []string{}
			admitted, next := 0, 0
			for op := 0; op < 400; op++ {
				if len(live) > 0 && rng.Float64() < 0.3 {
					i := rng.Intn(len(live))
					lg.Release(live[i], route)
					live = append(live[:i], live[i+1:]...)
					continue
				}
				bmin := 50e3 + rng.Float64()*350e3
				kind := []admission.Kind{admission.KindNew, admission.KindHandoff,
					admission.KindPoolClaim}[rng.Intn(3)]
				mob := []qos.Mobility{qos.Mobile, qos.Static}[rng.Intn(2)]
				next++
				id := fmt.Sprintf("c%d", next)
				res, err := adm.Admit(admission.Test{
					ConnID: id,
					Req: qos.Request{
						Bandwidth: qos.Bounds{Min: bmin, Max: bmin * (1 + 3*rng.Float64())},
						Delay:     0.5 + 4*rng.Float64(),
						Jitter:    0.5 + 4*rng.Float64(),
						Loss:      0.05,
						Traffic:   qos.TrafficSpec{Sigma: bmin / 4, Rho: bmin},
					},
					Route: route, Kind: kind, Mobility: mob,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Admitted {
					continue
				}
				admitted++
				live = append(live, id)
				for _, l := range route.Links {
					ls := lg.Link(l.ID)
					if ls.SumMin() > ls.Capacity+1e-6 {
						t.Fatalf("op %d: %s admitted %s and oversubscribed %s: ΣMin %v > capacity %v",
							op, name, id, l.ID, ls.SumMin(), ls.Capacity)
					}
				}
				if n := auditor.CheckConservation(); n != 0 {
					t.Fatalf("op %d: conservation violated after admitting %s: %v",
						op, id, auditor.Violations)
				}
			}
			if admitted == 0 {
				t.Fatalf("%s admitted nothing over 400 random ops; property is vacuous", name)
			}
		})
	}
}

// TestDegradeRestoreRoundTripUnderEachAllocator: the overload cascade's
// degrade/restore cycle must round-trip under every registered
// Allocator — a degraded connection drops to b_min in the ledger, and a
// restore returns the system to the exact pre-degrade allocation.
func TestDegradeRestoreRoundTripUnderEachAllocator(t *testing.T) {
	for _, name := range strategy.Allocators() {
		t.Run(name, func(t *testing.T) {
			b := topology.NewBackbone()
			for _, id := range []topology.NodeID{"h", "bs", "air"} {
				b.MustAddNode(topology.Node{ID: id})
			}
			b.MustAddDuplex(topology.Link{From: "h", To: "bs", Capacity: 10e6, PropDelay: 1e-3})
			b.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: 1.6e6, Wireless: true})
			route, err := b.ShortestPath("h", "air")
			if err != nil {
				t.Fatal(err)
			}
			sim := des.New()
			lg := admission.NewLedger(b)
			ctl := admission.NewController(lg)
			alloc, err := strategy.NewAllocator(name, sim, maxmin.ProtocolOptions{Refined: true})
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := adapt.NewManagerWith(sim, lg, alloc)
			if err != nil {
				t.Fatal(err)
			}
			req := qos.Request{
				Bandwidth: qos.Bounds{Min: 100e3, Max: 1e6},
				Delay:     5, Jitter: 5, Loss: 0.05,
				Traffic: qos.TrafficSpec{Sigma: 10e3, Rho: 100e3},
			}
			for _, id := range []string{"a", "b"} {
				res, err := ctl.Admit(admission.Test{ConnID: id, Req: req, Route: route, Mobility: qos.Static})
				if err != nil || !res.Admitted {
					t.Fatalf("admit %s: %+v %v", id, res, err)
				}
				if err := mgr.Register(id, route, req.Bandwidth, qos.Static); err != nil {
					t.Fatal(err)
				}
			}
			if err := sim.RunUntil(60); err != nil {
				t.Fatal(err)
			}
			before := map[string]float64{}
			for _, id := range []string{"a", "b"} {
				v, err := mgr.Allocation(id)
				if err != nil {
					t.Fatal(err)
				}
				if v <= req.Bandwidth.Min {
					t.Fatalf("%s: allocation[%s] = %v never adapted above b_min", name, id, v)
				}
				before[id] = v
			}
			if !mgr.Degrade("a") {
				t.Fatalf("%s: Degrade(a) refused", name)
			}
			if !mgr.Degraded("a") {
				t.Fatalf("%s: a not marked degraded", name)
			}
			if err := sim.RunUntil(120); err != nil {
				t.Fatal(err)
			}
			if v, _ := mgr.Allocation("a"); v != req.Bandwidth.Min {
				t.Fatalf("%s: degraded allocation[a] = %v, want b_min %v", name, v, req.Bandwidth.Min)
			}
			if v, _ := mgr.Allocation("b"); v < before["b"]-1 {
				t.Fatalf("%s: b lost bandwidth (%v -> %v) while a was degraded", name, before["b"], v)
			}
			if !mgr.Restore("a") {
				t.Fatalf("%s: Restore(a) refused", name)
			}
			if mgr.Degraded("a") {
				t.Fatalf("%s: a still marked degraded after restore", name)
			}
			if err := sim.RunUntil(240); err != nil {
				t.Fatal(err)
			}
			for _, id := range []string{"a", "b"} {
				v, err := mgr.Allocation(id)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(v-before[id]) > 1e3 {
					t.Fatalf("%s: allocation[%s] = %v after restore, want pre-degrade %v",
						name, id, v, before[id])
				}
			}
		})
	}
}
