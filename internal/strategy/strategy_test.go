package strategy_test

import (
	"math"
	"strings"
	"testing"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/qos"
	"armnet/internal/strategy"
	"armnet/internal/topology"
)

func TestRegistryDefaultsAndErrors(t *testing.T) {
	sim := des.New()
	a, err := strategy.NewAllocator("", sim, maxmin.ProtocolOptions{})
	if err != nil || a.Name() != strategy.DefaultAllocator {
		t.Fatalf("empty allocator name -> %v, %v; want default %q", a, err, strategy.DefaultAllocator)
	}
	if _, err := strategy.NewAllocator("nope", sim, maxmin.ProtocolOptions{}); err == nil ||
		!strings.Contains(err.Error(), "maxmin") {
		t.Fatalf("unknown allocator error should list registered names, got %v", err)
	}
	lg := admission.NewLedger(topology.NewBackbone())
	d, err := strategy.NewAdmitter("", lg, nil)
	if err != nil || d.Name() != strategy.DefaultAdmitter {
		t.Fatalf("empty admitter name -> %v, %v; want default %q", d, err, strategy.DefaultAdmitter)
	}
	if _, err := strategy.NewAdmitter("nope", lg, nil); err == nil ||
		!strings.Contains(err.Error(), "table2") {
		t.Fatalf("unknown admitter error should list registered names, got %v", err)
	}
	for name, got := range map[string][]string{
		"allocators": strategy.Allocators(),
		"admitters":  strategy.Admitters(),
	} {
		if len(got) < 2 {
			t.Fatalf("%s registry has %d entries, want the default plus a rival", name, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("%s list not sorted: %v", name, got)
			}
		}
	}
}

// TestEricaFairShare: on a single shared bottleneck, the explicit-rate
// sweep must converge to the equal split, respect demand caps, and track
// capacity changes — the same fixed points as max-min, reached with one
// round trip per session.
func TestEricaFairShare(t *testing.T) {
	sim := des.New()
	a, err := strategy.NewAllocator("erica", sim, maxmin.ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("wl", 9e6); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := a.AddSession(strategy.Session{ID: id, Path: []string{"wl"}, Demand: 9e6}); err != nil {
			t.Fatal(err)
		}
		a.Kick(id) // the add-then-kick contract adapt.Register follows
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	for id, r := range a.Rates() {
		if math.Abs(r-3e6) > 1 {
			t.Fatalf("rate[%s] = %v, want 3e6 equal split", id, r)
		}
	}
	// A demand-capped session keeps only its demand; the others keep at
	// least the equal fair share and the link stays feasible. (ERICA's
	// offer rule max(C/N, C−Σothers) admits *unequal* fixed points once
	// the link saturates — unlike maxmin it only guarantees the C/N
	// floor. That fairness gap is precisely what the arena quantifies.)
	a.RemoveSession("c")
	if err := a.AddSession(strategy.Session{ID: "c", Path: []string{"wl"}, Demand: 1e6}); err != nil {
		t.Fatal(err)
	}
	a.Kick("c")
	if err := sim.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	checkEricaInvariants(t, a.Rates(), 9e6, "c", 1e6)
	// A capacity drop re-sweeps the drifted sessions down to feasibility.
	if _, err := a.CapacityChanged("wl", 5e6); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	checkEricaInvariants(t, a.Rates(), 5e6, "c", 1e6)
	st := a.Stats()
	if st.Sessions == 0 || st.Messages == 0 {
		t.Fatalf("erica reported no control work: %+v", st)
	}
	// One round trip per sweep: messages stay far below maxmin's
	// four-round-trip protocol (>= 4 * 2 hops * sessions).
	if st.Messages >= 4*2*st.Sessions {
		t.Fatalf("erica spent %d messages over %d sessions — not a single-round-trip protocol",
			st.Messages, st.Sessions)
	}
}

// checkEricaInvariants asserts ERICA's convergence guarantees on a
// single saturated bottleneck: the capped session gets exactly its
// demand, every uncapped session gets at least the equal fair share
// C/N, and the committed rates stay feasible.
func checkEricaInvariants(t *testing.T, rates map[string]float64, capacity float64, capped string, cap float64) {
	t.Helper()
	sum, fair := 0.0, capacity/float64(len(rates))
	for id, r := range rates {
		sum += r
		if id == capped {
			if math.Abs(r-cap) > 1 {
				t.Fatalf("rate[%s] = %v, want demand cap %v", id, r, cap)
			}
		} else if r < fair-1 {
			t.Fatalf("rate[%s] = %v below the C/N floor %v", id, r, fair)
		}
	}
	if sum > capacity+1 {
		t.Fatalf("committed rates sum to %v > capacity %v", sum, capacity)
	}
}

// TestLogWeightProportionalShares: on a saturated single bottleneck
// whose sharers are all demand-uncapped, the log-weight allocator must
// converge to the exact Robert–Véber weighted proportional split
// C·w_c/Σw — tilted toward the heavy flow, but only logarithmically.
func TestLogWeightProportionalShares(t *testing.T) {
	sim := des.New()
	a, err := strategy.NewAllocator("logweight", sim, maxmin.ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("wl", 6e6); err != nil {
		t.Fatal(err)
	}
	demands := map[string]float64{"heavy": 8e6, "light": 2e6}
	for _, id := range []string{"heavy", "light"} {
		if err := a.AddSession(strategy.Session{ID: id, Path: []string{"wl"}, Demand: demands[id]}); err != nil {
			t.Fatal(err)
		}
		a.Kick(id)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// light (demand 2e6) is capped below its weighted share, so the fixed
	// point is heavy = C − 2e6, light = demand.
	rates := a.Rates()
	if r := rates["light"]; math.Abs(r-2e6) > 1 {
		t.Fatalf("rate[light] = %v, want demand cap 2e6", r)
	}
	if r := rates["heavy"]; math.Abs(r-4e6) > 1 {
		t.Fatalf("rate[heavy] = %v, want leftover 4e6", r)
	}
	// Drop capacity so both flows saturate uncapped: the committed rates
	// must land exactly on the log-weighted proportional split.
	if _, err := a.CapacityChanged("wl", 3e6); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	wh := 1 + math.Log1p(8e6)
	wl := 1 + math.Log1p(2e6)
	rates = a.Rates()
	sum := 0.0
	for id, want := range map[string]float64{
		"heavy": 3e6 * wh / (wh + wl),
		"light": 3e6 * wl / (wh + wl),
	} {
		got := rates[id]
		sum += got
		if math.Abs(got-want) > 1 {
			t.Fatalf("rate[%s] = %v, want weighted share %v", id, got, want)
		}
	}
	if math.Abs(sum-3e6) > 1 {
		t.Fatalf("weighted shares sum to %v, want full capacity 3e6", sum)
	}
	if rates["heavy"] <= rates["light"] || rates["heavy"] > 1.1*rates["light"] {
		t.Fatalf("log weighting should tilt mildly toward the heavy flow: %v vs %v",
			rates["heavy"], rates["light"])
	}
	st := a.Stats()
	if st.Sessions == 0 || st.Messages == 0 {
		t.Fatalf("logweight reported no control work: %+v", st)
	}
}

// measuredRig builds a 2-hop route whose wireless hop is the bottleneck
// and returns the admitter and its ledger.
func measuredRig(t *testing.T) (strategy.Admitter, *admission.Ledger, topology.Route) {
	t.Helper()
	b := topology.NewBackbone()
	for _, id := range []topology.NodeID{"h", "bs", "air"} {
		b.MustAddNode(topology.Node{ID: id})
	}
	b.MustAddDuplex(topology.Link{From: "h", To: "bs", Capacity: 10e6, PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: 1.6e6, Wireless: true})
	route, err := b.ShortestPath("h", "air")
	if err != nil {
		t.Fatal(err)
	}
	lg := admission.NewLedger(b)
	adm, err := strategy.NewAdmitter("measured", lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return adm, lg, route
}

func measuredReq(bmin float64) qos.Request {
	return qos.Request{
		Bandwidth: qos.Bounds{Min: bmin, Max: 2 * bmin},
		Delay:     2, Jitter: 2, Loss: 0.02,
		Traffic: qos.TrafficSpec{Sigma: bmin / 4, Rho: bmin},
	}
}

// TestMeasuredHeadroom: the measurement-based admitter books b_min flat
// and rejects once committed load would cross the 95% headroom line —
// no Table 2 delay/jitter rows at all.
func TestMeasuredHeadroom(t *testing.T) {
	adm, lg, route := measuredRig(t)
	for i, id := range []string{"c1", "c2"} {
		res, err := adm.Admit(admission.Test{ConnID: id, Req: measuredReq(600e3), Route: route, Mobility: qos.Static})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Admitted || res.Bandwidth != 600e3 {
			t.Fatalf("admit %d: %+v, want admitted at flat b_min", i, res)
		}
	}
	// 1.2e6 + 600e3 = 1.8e6 > 0.95 * 1.6e6: over the headroom line.
	res, err := adm.Admit(admission.Test{ConnID: "c3", Req: measuredReq(600e3), Route: route, Mobility: qos.Static})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != admission.ReasonBandwidth {
		t.Fatalf("third admit = %+v, want bandwidth rejection at 95%% headroom", res)
	}
	wl := lg.Link(route.Links[1].ID)
	if got := wl.SumCur(); got != 1.2e6 {
		t.Fatalf("committed load = %v, want exactly 2 x b_min", got)
	}
	if a := wl.Alloc("c3"); a != nil {
		t.Fatal("rejected connection left a booking behind")
	}
}

// TestMeasuredHandoffConsumesAdvance: handoffs and pool claims draw
// their b_min out of the advance-reserve, same as Table 2 — the rival
// changes the admit test, not the reservation bookkeeping.
func TestMeasuredHandoffConsumesAdvance(t *testing.T) {
	adm, lg, route := measuredRig(t)
	wl := route.Links[1].ID
	if err := lg.SetAdvance(wl, 400e3); err != nil {
		t.Fatal(err)
	}
	res, err := adm.Admit(admission.Test{ConnID: "ho", Req: measuredReq(600e3), Route: route,
		Kind: admission.KindHandoff, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("handoff rejected: %+v", res)
	}
	if got := lg.Link(wl).AdvanceReserved; got != 0 {
		t.Fatalf("advance reserve = %v after handoff, want fully consumed", got)
	}
	if a := lg.Link(wl).Alloc("ho"); a == nil || a.Min != 600e3 {
		t.Fatalf("handoff booking = %+v, want Min 600k", a)
	}
}
