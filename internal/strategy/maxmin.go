package strategy

import (
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/maxmin"
)

func init() {
	RegisterAllocator(DefaultAllocator, func(sim *des.Simulator, opts maxmin.ProtocolOptions) Allocator {
		return &maxminAllocator{pr: maxmin.NewProtocol(sim, opts)}
	})
}

// maxminAllocator adapts the paper's §5.3.1 distributed ADVERTISE/UPDATE
// protocol to the Allocator seam. It is a pure forwarding shim: every
// call lands on the same concrete protocol methods core used before the
// seam existed, which is what keeps default-pair traces byte-identical.
type maxminAllocator struct{ pr *maxmin.Protocol }

// Underlying exposes the wrapped protocol for callers that genuinely
// need maxmin-specific state (the chaos auditor's WaterFill oracle, the
// refined-vs-flooding ablation). Rival allocators have no equivalent.
func (a *maxminAllocator) Underlying() *maxmin.Protocol { return a.pr }

func (a *maxminAllocator) Name() string { return DefaultAllocator }

func (a *maxminAllocator) AddLink(name string, capacity float64) error {
	return a.pr.AddLink(name, capacity)
}

func (a *maxminAllocator) AddSession(s Session) error {
	return a.pr.AddConn(maxmin.Conn{ID: s.ID, Path: s.Path, Demand: s.Demand})
}

func (a *maxminAllocator) RemoveSession(id string) { a.pr.RemoveConn(id) }

func (a *maxminAllocator) Kick(id string) bool { return a.pr.Kick(id) }

func (a *maxminAllocator) CapacityChanged(link string, capacity float64) (int, error) {
	return a.pr.TriggerCapacityChange(link, capacity)
}

func (a *maxminAllocator) Rates() map[string]float64 { return a.pr.Rates() }

func (a *maxminAllocator) Bottlenecks() []LinkBottleneck {
	bs := a.pr.BottleneckSizes()
	if len(bs) == 0 {
		return nil
	}
	out := make([]LinkBottleneck, len(bs))
	for i, b := range bs {
		out[i] = LinkBottleneck{Link: b.Link, Size: b.Size}
	}
	return out
}

func (a *maxminAllocator) Stats() ControlStats {
	return ControlStats{
		Messages:     a.pr.Messages,
		Sessions:     a.pr.Sessions,
		Retransmits:  a.pr.Retransmits,
		Readvertises: a.pr.Readvertises,
	}
}

func (a *maxminAllocator) SetOnUpdate(fn func(conn string, rate float64)) { a.pr.OnUpdate = fn }

func (a *maxminAllocator) SetBus(bus *eventbus.Bus) { a.pr.Bus = bus }
