package strategy_test

import (
	"testing"

	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/raceflag"
	"armnet/internal/strategy"
)

// buildQuiescent returns each registered allocator with one link and two
// converged sessions — the steady state the capacity-sync hot path runs
// against on every wireless capacity sample.
func buildQuiescent(t testing.TB, name string) (*des.Simulator, strategy.Allocator) {
	sim := des.New()
	a, err := strategy.NewAllocator(name, sim, maxmin.ProtocolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddLink("wl", 1.6e6); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := a.AddSession(strategy.Session{ID: id, Path: []string{"wl"}, Demand: 1e6}); err != nil {
			t.Fatal(err)
		}
		a.Kick(id)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	return sim, a
}

// TestStrategyDispatchAddsNoAllocs pins the seam itself: routing the
// capacity-sync hot path through the Allocator interface must cost
// exactly the same allocations as calling the concrete protocol — the
// indirection is virtual-call-only, with no boxing or closure churn.
// (adapt.SyncLink calls CapacityChanged on every ledger resync, so an
// extra allocation here would multiply across the whole campus run.)
func TestStrategyDispatchAddsNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	_, a := buildQuiescent(t, "maxmin")
	pr := a.(interface{ Underlying() *maxmin.Protocol }).Underlying()
	direct := testing.AllocsPerRun(1000, func() {
		if _, err := pr.TriggerCapacityChange("wl", 1.6e6); err != nil {
			t.Fatal(err)
		}
	})
	dispatched := testing.AllocsPerRun(1000, func() {
		if _, err := a.CapacityChanged("wl", 1.6e6); err != nil {
			t.Fatal(err)
		}
	})
	if dispatched != direct {
		t.Fatalf("interface dispatch costs %v allocs/op vs %v direct — the seam must add zero", dispatched, direct)
	}
}

// TestStrategyQuiescentSyncAllocBudget pins every registered allocator's
// quiescent capacity-sync at the pre-seam budget (9 allocs/op: the
// target-selection scratch slices both protocols share). Growth here is
// a regression on the most frequently dispatched strategy call.
func TestStrategyQuiescentSyncAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	const budget = 9
	for _, name := range strategy.Allocators() {
		t.Run(name, func(t *testing.T) {
			_, a := buildQuiescent(t, name)
			got := testing.AllocsPerRun(1000, func() {
				if _, err := a.CapacityChanged("wl", 1.6e6); err != nil {
					t.Fatal(err)
				}
			})
			if got > budget {
				t.Fatalf("%s: quiescent CapacityChanged allocates %v/op, budget %d", name, got, budget)
			}
		})
	}
}

// BenchmarkCapacitySyncDispatch times the quiescent capacity-sync call
// through the strategy interface for each registered allocator.
func BenchmarkCapacitySyncDispatch(b *testing.B) {
	for _, name := range strategy.Allocators() {
		b.Run(name, func(b *testing.B) {
			_, a := buildQuiescent(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CapacityChanged("wl", 1.6e6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
