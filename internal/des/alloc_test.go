package des

import (
	"testing"

	"armnet/internal/raceflag"
)

// TestPostFireAllocFree pins the steady-state allocation budget of the
// handle-free scheduling hot path: once the freelist holds a recycled
// record, Post + fire must not touch the heap. This is the path every
// per-hop, per-packet, and fire-and-forget caller uses.
func TestPostFireAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	s := New()
	fn := func() {}
	// Prime: the first round allocates the record that seeds the
	// freelist; every later round must reuse it.
	s.Post(s.Now()+1, fn)
	if !s.step() {
		t.Fatal("priming step fired nothing")
	}
	got := testing.AllocsPerRun(1000, func() {
		s.Post(s.Now()+1, fn)
		s.step()
	})
	if got != 0 {
		t.Fatalf("Post+fire steady state allocates %v/op, want 0", got)
	}
}

// TestAtFireAllocBudget pins the cancelable path at exactly one
// allocation per schedule: the handle escapes to the caller, so the
// record cannot be pooled, but nothing else may allocate.
func TestAtFireAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	s := New()
	fn := func() {}
	s.At(s.Now()+1, fn)
	s.step()
	got := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+1, fn)
		s.step()
	})
	if got != 1 {
		t.Fatalf("At+fire steady state allocates %v/op, want exactly 1 (the escaping handle)", got)
	}
}
