package des

import "testing"

// BenchmarkScheduleAndFire measures the simulator's hot scheduling
// loop: the handle-free Post path every per-hop/per-packet caller uses,
// with the fired record recycled through the freelist (steady-state
// zero allocations).
func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+1, func() {})
		s.step()
	}
}

// BenchmarkScheduleAndFireHandle is the cancelable At variant: one
// event record per schedule, since a handle escapes.
func BenchmarkScheduleAndFireHandle(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+1, func() {})
		s.step()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	// Keep 1024 events pending while firing, stressing heap reordering.
	s := New()
	for i := 0; i < 1024; i++ {
		var rearm func()
		rearm = func() { s.PostAfter(float64(i%7)+1, rearm) }
		s.PostAfter(float64(i%7)+1, rearm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

func BenchmarkTicker(b *testing.B) {
	s := New()
	n := 0
	s.Every(1, func() { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}
