package des

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+1, func() {})
		s.step()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	// Keep 1024 events pending while firing, stressing heap reordering.
	s := New()
	for i := 0; i < 1024; i++ {
		var rearm func()
		rearm = func() { s.After(float64(i%7)+1, rearm) }
		s.After(float64(i%7)+1, rearm)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

func BenchmarkTicker(b *testing.B) {
	s := New()
	n := 0
	s.Every(1, func() { n++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}
