// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate on which every experiment in this repository
// runs: mobility models, traffic generators, handoff managers and the
// distributed rate-allocation protocol all schedule work as timestamped
// events on a single Simulator. Simulated time is a float64 number of
// seconds starting at zero. Events with equal timestamps fire in the order
// they were scheduled, which keeps runs reproducible across platforms.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop rather than by exhausting the event queue or reaching
// the horizon.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a unit of scheduled work. The callback runs at the event's
// timestamp with the simulator clock already advanced.
type Event struct {
	time   float64
	seq    uint64 // tiebreaker: schedule order
	index  int    // heap index, -1 when not queued
	fn     func()
	cancel bool
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or was already canceled is a no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the simulated clock and the pending event queue.
// The zero value is ready to use.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events that have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream measurement.
func (s *Simulator) At(t float64, fn func()) *Event {
	if fn == nil {
		panic("des: nil event callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: schedule at NaN")
	}
	e := &Event{time: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d float64, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Stop halts the simulation after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the earliest pending event. It reports false when the queue
// is empty. Canceled events are discarded without firing.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.time
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
// It returns ErrStopped in the latter case.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with timestamps <= horizon. The clock is left at
// the horizon if the queue still holds later events, or at the last event
// time if the queue drained. It returns ErrStopped if Stop was called.
func (s *Simulator) RunUntil(horizon float64) error {
	if horizon < s.now {
		return fmt.Errorf("des: horizon %v before now %v", horizon, s.now)
	}
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			s.now = horizon
			return nil
		}
		next := s.peek()
		if next == nil {
			s.now = horizon
			return nil
		}
		if next.time > horizon {
			s.now = horizon
			return nil
		}
		s.step()
	}
	return ErrStopped
}

// peek returns the earliest non-canceled event without removing it,
// discarding canceled events it encounters on the way.
func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Ticker invokes fn every period seconds until Cancel is called on the
// returned handle or the simulation ends.
type Ticker struct {
	sim    *Simulator
	period float64
	fn     func()
	ev     *Event
	done   bool
}

// Every starts a Ticker whose first firing is one period from now.
// It panics if period is not positive.
func (s *Simulator) Every(period float64, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.arm()
		}
	})
}

// Cancel stops the ticker. It is safe to call more than once.
func (t *Ticker) Cancel() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
