// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate on which every experiment in this repository
// runs: mobility models, traffic generators, handoff managers and the
// distributed rate-allocation protocol all schedule work as timestamped
// events on a single Simulator. Simulated time is a float64 number of
// seconds starting at zero. Events with equal timestamps fire in the order
// they were scheduled, which keeps runs reproducible across platforms.
package des

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run variants when the simulation was stopped
// explicitly via Stop rather than by exhausting the event queue or reaching
// the horizon.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a unit of scheduled work. The callback runs at the event's
// timestamp with the simulator clock already advanced.
type Event struct {
	time   float64
	seq    uint64 // tiebreaker: schedule order
	index  int    // heap index, -1 when not queued
	fn     func()
	cancel bool
	// pooled events were scheduled through Post/PostAfter: no handle
	// escaped, so the record returns to the simulator's freelist after
	// it fires.
	pooled bool
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or was already canceled is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventQueue is a hand-rolled four-ary min-heap ordered by (time, seq).
// Four children per node halves the tree depth of the binary
// container/heap it replaced, which cuts the sift compares and pointer
// moves on the fire path — the single hottest loop in the repository —
// and dropping the heap.Interface indirection lets every operation
// inline. The (time, seq) order is total, so the pop sequence (and with
// it every trace byte) is identical to the binary heap's regardless of
// internal layout.
type eventQueue []*Event

// degree is the heap's fan-out. Four is the sweet spot for pointer
// heaps: depth log₄(n) with still-cheap child scans.
const degree = 4

func (q eventQueue) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) push(e *Event) {
	e.index = len(*q)
	*q = append(*q, e)
	q.up(e.index)
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / degree
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		first := i*degree + 1
		if first >= n {
			return
		}
		min := first
		last := first + degree
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, min) {
				min = c
			}
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *Event {
	old := *q
	n := len(old)
	e := old[0]
	last := old[n-1]
	old[n-1] = nil
	old = old[:n-1]
	*q = old
	if n > 1 {
		old[0] = last
		last.index = 0
		old.down(0)
	}
	e.index = -1
	return e
}

// Simulator owns the simulated clock and the pending event queue.
// The zero value is ready to use.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
	// free recycles the records of fired Post events. Only events whose
	// handle never escaped are ever put here, so reuse can't resurrect a
	// stale Cancel.
	free []*Event
}

// New returns a Simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events that have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream measurement.
func (s *Simulator) At(t float64, fn func()) *Event {
	return s.schedule(t, fn, false)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d float64, fn func()) *Event {
	return s.schedule(s.now+d, fn, false)
}

// Post schedules fn at absolute time t like At, but returns no handle:
// the event cannot be canceled, and its record is recycled through the
// simulator's freelist after it fires. This is the zero-allocation
// scheduling path for the hot callers — per-hop control-packet
// delivery, per-packet data-plane forwarding, mobility steps — which
// never cancel individual events. Use At/After when a Cancel handle is
// actually needed.
func (s *Simulator) Post(t float64, fn func()) {
	s.schedule(t, fn, true)
}

// PostAfter schedules fn to run d seconds from now without a handle;
// it is to After what Post is to At. Negative d panics.
func (s *Simulator) PostAfter(d float64, fn func()) {
	s.schedule(s.now+d, fn, true)
}

// schedule validates, allocates (or recycles) and enqueues one event.
// Both pooled and handle-bearing events may draw from the freelist —
// every record on it is guaranteed handle-free — but only pooled ones
// return to it.
func (s *Simulator) schedule(t float64, fn func(), pooled bool) *Event {
	if fn == nil {
		panic("des: nil event callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: schedule at NaN")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*e = Event{time: t, seq: s.seq, fn: fn, index: -1, pooled: pooled}
	} else {
		e = &Event{time: t, seq: s.seq, fn: fn, index: -1, pooled: pooled}
	}
	s.seq++
	s.queue.push(e)
	return e
}

// Stop halts the simulation after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the earliest pending event. It reports false when the queue
// is empty. Canceled events are discarded without firing.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		e := s.queue.popMin()
		if e.cancel {
			// Canceled events are handle-bearing by construction
			// (pooled events expose no Cancel), so they are never
			// recycled.
			continue
		}
		s.now = e.time
		s.fired++
		fn := e.fn
		if e.pooled {
			// Recycle before firing: no handle exists, so the record
			// is free the moment it leaves the queue, and a callback
			// that immediately reschedules reuses it without touching
			// the allocator.
			e.fn = nil
			s.free = append(s.free, e)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
// It returns ErrStopped in the latter case.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with timestamps <= horizon. The clock is left at
// the horizon if the queue still holds later events, or at the last event
// time if the queue drained. It returns ErrStopped if Stop was called.
func (s *Simulator) RunUntil(horizon float64) error {
	if horizon < s.now {
		return fmt.Errorf("des: horizon %v before now %v", horizon, s.now)
	}
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			s.now = horizon
			return nil
		}
		next := s.peek()
		if next == nil {
			s.now = horizon
			return nil
		}
		if next.time > horizon {
			s.now = horizon
			return nil
		}
		s.step()
	}
	return ErrStopped
}

// peek returns the earliest non-canceled event without removing it,
// discarding canceled events it encounters on the way.
func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		s.queue.popMin()
	}
	return nil
}

// Ticker invokes fn every period seconds until Cancel is called on the
// returned handle or the simulation ends.
type Ticker struct {
	sim    *Simulator
	period float64
	fn     func()
	ev     *Event
	done   bool
	// tick is the re-arm callback, built once at construction so each
	// period schedules a fresh event but not a fresh closure.
	tick func()
}

// Every starts a Ticker whose first firing is one period from now.
// It panics if period is not positive.
func (s *Simulator) Every(period float64, fn func()) *Ticker {
	if period <= 0 {
		panic("des: non-positive ticker period")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.tick = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.period, t.tick)
}

// Cancel stops the ticker. It is safe to call more than once.
func (t *Ticker) Cancel() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
