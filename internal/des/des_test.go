package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	if err := s.Run(); err != nil {
		t.Fatalf("Run on empty simulator: %v", err)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.At(2.5, func() {
		if s.Now() != 2.5 {
			t.Errorf("Now inside event = %v, want 2.5", s.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 2.5 {
		t.Fatalf("final Now = %v, want 2.5", s.Now())
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var fired float64 = -1
	s.At(3, func() {
		s.After(2, func() { fired = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("After fired at %v, want 5", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	New().At(1, nil)
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	e.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	victim := s.At(2, func() { fired = true })
	s.At(1, func() { victim.Cancel() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event canceled at t=1 still fired at t=2")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("events after Stop: count = %d, want 3", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("Now = %v, want horizon 2.5", s.Now())
	}
	// Resume to the end.
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("after resume fired %v, want 4 events", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
}

func TestRunUntilBackwardErrors(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(1); err == nil {
		t.Fatal("RunUntil into the past did not error")
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(2, func() { fired = true })
	if err := s.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var times []float64
	var tk *Ticker
	tk = s.Every(1.5, func() {
		times = append(times, s.Now())
		if len(times) == 4 {
			tk.Cancel()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3, 4.5, 6}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired %v, want %v", times, want)
		}
	}
}

func TestTickerCancelBeforeFirstFire(t *testing.T) {
	s := New()
	fired := 0
	tk := s.Every(10, func() { fired++ })
	tk.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("canceled ticker fired")
	}
}

func TestBadTickerPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

func TestFiredAndPendingCounters(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d, want 2, 0", s.Fired(), s.Pending())
	}
}

// Property: for any set of schedule times, events fire in nondecreasing
// time order and the total count matches.
func TestQuickEventOrderInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []float64
		for _, r := range raw {
			at := float64(r) / 100
			s.At(at, func() { fired = append(fired, at) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedule/cancel operations never fires a canceled
// event and fires every non-canceled one.
func TestQuickCancelInvariant(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		total := int(n%64) + 1
		firedCount := 0
		canceled := 0
		for i := 0; i < total; i++ {
			e := s.At(rng.Float64()*100, func() { firedCount++ })
			if rng.Intn(3) == 0 {
				e.Cancel()
				canceled++
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		return firedCount == total-canceled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilStop(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++; s.Stop() })
	s.At(2, func() { fired++ })
	if err := s.RunUntil(10); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Resume past the stop.
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("after resume fired = %d", fired)
	}
}
