// Package predict implements the paper's next-cell prediction (§6): the
// three-level lookup (portable profile → cell profile with office
// occupancy rules → default), and the per-class handoff-count predictors
// for lounges (§6.2): cafeteria least-squares extrapolation and default
// one-step memory.
package predict

import (
	"fmt"

	"armnet/internal/profile"
	"armnet/internal/topology"
)

// Action describes what the advance-reservation machinery should do with
// a prediction.
type Action int

const (
	// ActionReserve means advance-reserve in Target.
	ActionReserve Action = iota
	// ActionNoReserve means the portable is expected to stay (regular
	// occupant of its current office): reserve nowhere.
	ActionNoReserve
	// ActionDefault means no useful prediction; the caller applies the
	// default (probabilistic) reservation algorithm of §6.3.
	ActionDefault
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionReserve:
		return "reserve"
	case ActionNoReserve:
		return "no-reserve"
	case ActionDefault:
		return "default"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Level identifies which prediction level produced a decision.
type Level int

const (
	// LevelNone marks ActionDefault/ActionNoReserve decisions.
	LevelNone Level = 0
	// LevelPortable is the first level: the portable's own profile.
	LevelPortable Level = 1
	// LevelCell is the second level: office-occupancy rules and the
	// cell's aggregate history.
	LevelCell Level = 2
)

// Decision is the outcome of next-cell prediction for one portable.
type Decision struct {
	Action Action
	Target topology.CellID
	Level  Level
}

// Predictor answers next-cell queries against the universe topology and
// the zone profile servers.
type Predictor struct {
	Universe *topology.Universe
	// Servers maps zone name to its profile server.
	Servers map[string]*profile.Server

	opts profile.ServerOptions
}

// New creates a predictor and one profile server per zone of the universe.
func New(u *topology.Universe, opts profile.ServerOptions) *Predictor {
	p := &Predictor{Universe: u, Servers: make(map[string]*profile.Server), opts: opts}
	for _, zone := range u.Zones() {
		p.Servers[zone] = profile.NewServer(zone, u.Zone(zone), opts)
	}
	return p
}

// CrashZone models a zone profile server failing and warm-restarting with
// total state loss: every learned portable and cell profile of the zone
// is gone, so prediction degrades to the default level until histories
// rebuild. Unknown zones report an error.
func (p *Predictor) CrashZone(zone string) error {
	if _, ok := p.Servers[zone]; !ok {
		return fmt.Errorf("predict: unknown zone %q", zone)
	}
	p.Servers[zone] = profile.NewServer(zone, p.Universe.Zone(zone), p.opts)
	return nil
}

// ServerFor returns the profile server responsible for a cell, or nil.
func (p *Predictor) ServerFor(cell topology.CellID) *profile.Server {
	c := p.Universe.Cell(cell)
	if c == nil {
		return nil
	}
	return p.Servers[c.Zone]
}

// RecordHandoff routes a handoff report to the zone servers involved, and
// migrates the portable profile when the handoff crosses a zone boundary
// (the cache handover of §3.4.3).
func (p *Predictor) RecordHandoff(h profile.Handoff) {
	from := p.Universe.Cell(h.From)
	to := p.Universe.Cell(h.To)
	if from == nil || to == nil {
		return
	}
	sFrom := p.Servers[from.Zone]
	sTo := p.Servers[to.Zone]
	if sFrom == sTo {
		if sFrom != nil {
			sFrom.RecordHandoff(h)
		}
		return
	}
	if sFrom != nil {
		sFrom.RecordHandoff(h)
		if pp, err := sFrom.ExportPortable(h.Portable); err == nil {
			sTo.ImportPortable(pp)
		}
	}
	if sTo != nil {
		sTo.RecordHandoff(h)
	}
}

// NextCell runs the three-level prediction of §6/§6.4 for a mobile
// portable with the given previous and current cells.
func (p *Predictor) NextCell(portable string, prev, cur topology.CellID) Decision {
	cell := p.Universe.Cell(cur)
	if cell == nil {
		return Decision{Action: ActionDefault}
	}
	srv := p.Servers[cell.Zone]

	// Level 1: the portable's own <prev, cur> → next triplet. Only a
	// prediction to a *neighbor* of the current cell is actionable.
	if srv != nil {
		if next, ok := srv.PredictByPortable(portable, prev, cur); ok && cell.IsNeighbor(next) {
			return Decision{Action: ActionReserve, Target: next, Level: LevelPortable}
		}
	}

	// Level 2: office-occupancy rules, then the cell's aggregate history.
	switch cell.Class {
	case topology.ClassOffice:
		// Rule 2: a regular occupant of the current office is expected
		// to stay; reserve nothing in the neighbors.
		if cell.IsOccupant(portable) {
			return Decision{Action: ActionNoReserve}
		}
		if next, ok := p.neighborOfficeOccupant(cell, portable); ok {
			return Decision{Action: ActionReserve, Target: next, Level: LevelCell}
		}
	case topology.ClassCorridor:
		if next, ok := p.neighborOfficeOccupant(cell, portable); ok {
			return Decision{Action: ActionReserve, Target: next, Level: LevelCell}
		}
	}
	if srv != nil {
		if next, ok := srv.PredictByCell(cur, prev); ok && cell.IsNeighbor(next) {
			return Decision{Action: ActionReserve, Target: next, Level: LevelCell}
		}
	}

	// Level 3: nothing useful — hand over to the default algorithm.
	return Decision{Action: ActionDefault}
}

// neighborOfficeOccupant finds a neighboring office cell of which the
// portable is a regular occupant (the office nomination rule of §6.1).
func (p *Predictor) neighborOfficeOccupant(cell *topology.Cell, portable string) (topology.CellID, bool) {
	for _, nid := range cell.Neighbors() {
		n := p.Universe.Cell(nid)
		if n != nil && n.Class == topology.ClassOffice && n.IsOccupant(portable) {
			return nid, true
		}
	}
	return "", false
}

// CafeteriaForecast extrapolates the next slot's handoff count by the
// least-squares line through the last three slot counts (§6.2.2).
//
// Note on the paper's formula: with n = a·τ + m fit over τ ∈
// {t-2, t-1, t}, least squares gives a = (n_t - n_{t-2})/2 and
// m = (n_{t-2}+n_{t-1}+n_t)/3 - a·(t-1); the paper's printed expression
// for m carries a sign typo (it is not translation-invariant). The
// prediction it feeds is translation-invariant either way:
//
//	N(t+1) = a·(t+1) + m = (4·n_t + n_{t-1} - 2·n_{t-2}) / 3,
//
// which is what we compute. Negative extrapolations clamp to zero.
func CafeteriaForecast(n2, n1, n0 int) float64 {
	v := (4*float64(n0) + float64(n1) - 2*float64(n2)) / 3
	if v < 0 {
		return 0
	}
	return v
}

// OneStepForecast is the default lounge predictor (§6.2.3): the number of
// handoffs next slot equals the number this slot.
func OneStepForecast(n0 int) float64 { return float64(n0) }

// SplitForecast distributes a predicted handoff count over the neighbors
// according to the cell profile's {j, p_j} distribution; when the profile
// is empty the count is split uniformly over the given neighbors.
func SplitForecast(total float64, probs map[topology.CellID]float64, neighbors []topology.CellID) map[topology.CellID]float64 {
	out := make(map[topology.CellID]float64, len(neighbors))
	if total <= 0 {
		return out
	}
	sum := 0.0
	for _, nid := range neighbors {
		sum += probs[nid]
	}
	if sum <= 0 {
		if len(neighbors) == 0 {
			return out
		}
		each := total / float64(len(neighbors))
		for _, nid := range neighbors {
			out[nid] = each
		}
		return out
	}
	for _, nid := range neighbors {
		if p := probs[nid]; p > 0 {
			out[nid] = total * p / sum
		}
	}
	return out
}
