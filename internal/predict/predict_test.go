package predict

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/profile"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

func figure4(t *testing.T) (*topology.Environment, *Predictor) {
	t.Helper()
	env, err := topology.BuildFigure4("prof", []string{"s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	return env, New(env.Universe, profile.ServerOptions{})
}

func TestLevel1PortableProfileWins(t *testing.T) {
	_, p := figure4(t)
	// The professor's own history says C->D->A even though the crowd
	// goes D->B.
	for i := 0; i < 5; i++ {
		p.RecordHandoff(profile.Handoff{Portable: "prof", Prev: "C", From: "D", To: "A", Time: float64(i)})
	}
	for i := 0; i < 50; i++ {
		p.RecordHandoff(profile.Handoff{Portable: fmt.Sprintf("x%d", i), Prev: "C", From: "D", To: "E", Time: float64(i)})
	}
	d := p.NextCell("prof", "C", "D")
	if d.Action != ActionReserve || d.Target != "A" || d.Level != LevelPortable {
		t.Fatalf("decision = %+v, want level-1 reserve A", d)
	}
}

func TestLevel2OfficeOccupantStays(t *testing.T) {
	_, p := figure4(t)
	// prof inside office A (regular occupant, no history): no advance
	// reservation anywhere.
	d := p.NextCell("prof", "D", "A")
	if d.Action != ActionNoReserve {
		t.Fatalf("decision = %+v, want no-reserve for occupant at home", d)
	}
}

func TestLevel2NeighborOfficeNomination(t *testing.T) {
	_, p := figure4(t)
	// prof in corridor D with no portable history: neighboring office A
	// (occupant) is nominated.
	d := p.NextCell("prof", "C", "D")
	if d.Action != ActionReserve || d.Target != "A" || d.Level != LevelCell {
		t.Fatalf("decision = %+v, want level-2 reserve A", d)
	}
	// Student in corridor E: office B is the neighboring office.
	d = p.NextCell("s1", "D", "E")
	if d.Action != ActionReserve || d.Target != "B" {
		t.Fatalf("decision = %+v, want reserve B", d)
	}
}

func TestLevel2AggregateHistory(t *testing.T) {
	_, p := figure4(t)
	// A stranger in corridor D with a crowd history toward E.
	for i := 0; i < 30; i++ {
		p.RecordHandoff(profile.Handoff{Portable: fmt.Sprintf("x%d", i), Prev: "C", From: "D", To: "E", Time: float64(i)})
	}
	d := p.NextCell("stranger", "C", "D")
	if d.Action != ActionReserve || d.Target != "E" || d.Level != LevelCell {
		t.Fatalf("decision = %+v, want level-2 reserve E", d)
	}
}

func TestLevel3Default(t *testing.T) {
	_, p := figure4(t)
	// Stranger in corridor with no history at all (and no office
	// membership): default.
	d := p.NextCell("stranger", "C", "D")
	if d.Action != ActionDefault {
		t.Fatalf("decision = %+v, want default", d)
	}
}

func TestUnknownCell(t *testing.T) {
	_, p := figure4(t)
	d := p.NextCell("prof", "C", "nowhere")
	if d.Action != ActionDefault {
		t.Fatalf("decision = %+v, want default for unknown cell", d)
	}
}

func TestPredictionMustBeNeighbor(t *testing.T) {
	_, p := figure4(t)
	// Poison the portable profile with a non-neighbor target (stale
	// history after a topology change): level 1 must be skipped.
	srv := p.ServerFor("D")
	for i := 0; i < 5; i++ {
		srv.RecordHandoff(profile.Handoff{Portable: "prof", Prev: "C", From: "D", To: "Z", Time: float64(i)})
	}
	d := p.NextCell("prof", "C", "D")
	if d.Target == "Z" {
		t.Fatalf("predicted non-neighbor: %+v", d)
	}
}

func TestCrossZoneProfileMigration(t *testing.T) {
	env, err := topology.BuildCampus()
	if err != nil {
		t.Fatal(err)
	}
	p := New(env.Universe, profile.ServerOptions{})
	// Portable crosses west -> east via cor-w2 -> cor-e1.
	p.RecordHandoff(profile.Handoff{Portable: "alice", Prev: "cor-w1", From: "cor-w2", To: "cor-e1", Time: 1})
	east := p.Servers["east"]
	if _, err := east.ExportPortable("alice"); err != nil {
		t.Fatalf("profile did not migrate to east: %v", err)
	}
}

func TestCafeteriaForecast(t *testing.T) {
	// Perfect line 2, 4, 6 -> 8.
	if got := CafeteriaForecast(2, 4, 6); math.Abs(got-8) > 1e-12 {
		t.Fatalf("forecast = %v, want 8", got)
	}
	// Flat 5, 5, 5 -> 5.
	if got := CafeteriaForecast(5, 5, 5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("forecast = %v, want 5", got)
	}
	// Declining to negative clamps at 0.
	if got := CafeteriaForecast(9, 3, 0); got != 0 {
		t.Fatalf("forecast = %v, want clamp 0", got)
	}
}

func TestOneStepForecast(t *testing.T) {
	if OneStepForecast(7) != 7 {
		t.Fatal("one-step forecast broken")
	}
}

func TestSplitForecast(t *testing.T) {
	probs := map[topology.CellID]float64{"A": 0.5, "B": 0.25, "C": 0.25}
	got := SplitForecast(8, probs, []topology.CellID{"A", "B"})
	// Renormalized over {A, B}: A=2/3, B=1/3.
	if math.Abs(got["A"]-16.0/3) > 1e-9 || math.Abs(got["B"]-8.0/3) > 1e-9 {
		t.Fatalf("split = %v", got)
	}
	// Empty profile: uniform.
	got = SplitForecast(6, nil, []topology.CellID{"A", "B", "C"})
	for _, id := range []topology.CellID{"A", "B", "C"} {
		if math.Abs(got[id]-2) > 1e-12 {
			t.Fatalf("uniform split = %v", got)
		}
	}
	if got := SplitForecast(0, probs, []topology.CellID{"A"}); len(got) != 0 {
		t.Fatalf("zero total split = %v", got)
	}
	if got := SplitForecast(5, nil, nil); len(got) != 0 {
		t.Fatalf("no neighbors split = %v", got)
	}
}

// Property: CafeteriaForecast is translation-invariant (adding a constant
// to all three counts shifts the forecast by the same constant) and exact
// on lines.
func TestQuickCafeteriaLinearExact(t *testing.T) {
	f := func(a0 int8, slope int8) bool {
		base := abs(int(a0%50)) + 60 // keep counts positive
		s := int(slope % 10)
		n2, n1, n0 := base, base+s, base+2*s
		want := float64(base + 3*s)
		got := CafeteriaForecast(n2, n1, n0)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Property: SplitForecast conserves the total when every neighbor has
// positive probability.
func TestQuickSplitConservesTotal(t *testing.T) {
	f := func(seed int64, total uint8) bool {
		rng := randx.New(seed)
		neighbors := []topology.CellID{"A", "B", "C", "D"}
		probs := map[topology.CellID]float64{}
		for _, n := range neighbors {
			probs[n] = rng.Float64() + 0.01
		}
		tt := float64(total%50) + 1
		got := SplitForecast(tt, probs, neighbors)
		sum := 0.0
		for _, v := range got {
			sum += v
		}
		return math.Abs(sum-tt) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashZoneForgetsLearnedProfiles(t *testing.T) {
	_, p := figure4(t)
	for i := 0; i < 10; i++ {
		p.RecordHandoff(profile.Handoff{Portable: "prof", Prev: "C", From: "D", To: "A", Time: float64(i)})
	}
	if d := p.NextCell("prof", "C", "D"); d.Level != LevelPortable {
		t.Fatalf("pre-crash decision = %+v, want portable-profile level", d)
	}
	zone := p.Universe.Zones()[0]
	if err := p.CrashZone(zone); err != nil {
		t.Fatal(err)
	}
	if d := p.NextCell("prof", "C", "D"); d.Level == LevelPortable {
		t.Fatal("portable profile survived the zone crash")
	}
	if err := p.CrashZone("no-such-zone"); err == nil {
		t.Fatal("CrashZone accepted an unknown zone")
	}
	// Histories rebuild after the warm restart.
	for i := 0; i < 10; i++ {
		p.RecordHandoff(profile.Handoff{Portable: "prof", Prev: "C", From: "D", To: "A", Time: float64(20 + i)})
	}
	if d := p.NextCell("prof", "C", "D"); d.Level != LevelPortable {
		t.Fatalf("post-rebuild decision = %+v, want portable-profile level", d)
	}
}
