package reserve

import (
	"fmt"

	"armnet/internal/predict"
	"armnet/internal/profile"
	"armnet/internal/topology"
)

// Meeting is one booking-calendar entry of a meeting room (§6.2.1):
// start time T_s, end time T_a, and the required resources N_m expressed
// as a number of attendees.
type Meeting struct {
	Start     float64
	End       float64
	Attendees int
}

// Validate reports whether the meeting entry is well formed.
func (m Meeting) Validate() error {
	if m.End <= m.Start {
		return fmt.Errorf("reserve: meeting ends (%v) before it starts (%v)", m.End, m.Start)
	}
	if m.Attendees <= 0 {
		return fmt.Errorf("reserve: meeting needs positive attendees, got %d", m.Attendees)
	}
	return nil
}

// MeetingConfig carries the paper's timer constants, overridable for
// sensitivity studies.
type MeetingConfig struct {
	// LeadIn is Δ_s: reservation starts this many seconds before T_s
	// (paper: 10 minutes).
	LeadIn float64
	// StartRelease is the timer started at T_s after which unused
	// arrival reservations are released (paper: 5 minutes).
	StartRelease float64
	// LeadOut is Δ_a: neighbor reservation starts this many seconds
	// before T_a (paper: 5 minutes).
	LeadOut float64
	// EndRelease is the timer started at T_a after which neighbors
	// release departure reservations (paper: 15 minutes).
	EndRelease float64
}

// DefaultMeetingConfig returns the constants used in the paper's
// simulations.
func DefaultMeetingConfig() MeetingConfig {
	return MeetingConfig{LeadIn: 600, StartRelease: 300, LeadOut: 300, EndRelease: 900}
}

// MeetingPolicy evaluates the meeting-room reservation rules for one
// meeting. The base station feeds it the arrival/departure counters it
// maintains (N_arrived, N_left); the policy answers how many attendee
// slots must be reserved in the room and in the neighborhood at time t.
type MeetingPolicy struct {
	Meeting Meeting
	Config  MeetingConfig
}

// NewMeetingPolicy validates and builds a policy.
func NewMeetingPolicy(m Meeting, cfg MeetingConfig) (*MeetingPolicy, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeadIn <= 0 || cfg.StartRelease < 0 || cfg.LeadOut <= 0 || cfg.EndRelease < 0 {
		return nil, fmt.Errorf("reserve: invalid meeting config %+v", cfg)
	}
	return &MeetingPolicy{Meeting: m, Config: cfg}, nil
}

// RoomSlots returns the number of attendee slots the room's base station
// must hold at time t, given that arrived attendees have shown up so far:
// from T_s - Δ_s the room reserves N_m - N_arrived(t); the reservation
// dies StartRelease seconds after T_s (unused slots released on timer
// expiry).
func (p *MeetingPolicy) RoomSlots(t float64, arrived int) int {
	m := p.Meeting
	if t < m.Start-p.Config.LeadIn || t >= m.Start+p.Config.StartRelease {
		return 0
	}
	slots := m.Attendees - arrived
	if slots < 0 {
		return 0
	}
	return slots
}

// NeighborSlots returns the number of attendee slots the neighboring
// cells must hold in aggregate at time t for the meeting's conclusion:
// from T_a - Δ_a the neighbors reserve for the attendees still present
// (arrived - left, capped by N_m - left per the paper); the reservation
// dies EndRelease seconds after T_a.
func (p *MeetingPolicy) NeighborSlots(t float64, arrived, left int) int {
	m := p.Meeting
	if t < m.End-p.Config.LeadOut || t >= m.End+p.Config.EndRelease {
		return 0
	}
	present := arrived - left
	cap := m.Attendees - left
	if cap < present {
		present = cap
	}
	if present < 0 {
		return 0
	}
	return present
}

// Active reports whether the policy has any effect at time t (used to
// garbage-collect finished meetings).
func (p *MeetingPolicy) Active(t float64) bool {
	return t < p.Meeting.End+p.Config.EndRelease
}

// LoungePlan is the reservation directive a lounge policy produces for
// one evaluation instant: bandwidth to advance-reserve per neighboring
// cell, and extra bandwidth to reserve in the cell itself.
type LoungePlan struct {
	// Neighbor maps each neighbor cell to the advance reservation it is
	// asked to hold, in bits/s.
	Neighbor map[topology.CellID]float64
	// Self is the additional reservation in the current cell, bits/s.
	Self float64
}

// Total returns the plan's aggregate reservation in bits/s: the self
// amount plus every neighbor hold.
func (p LoungePlan) Total() float64 {
	t := p.Self
	for _, v := range p.Neighbor {
		t += v
	}
	return t
}

// CafeteriaPlan evaluates §6.2.2 at time t for a cafeteria cell: predict
// next-slot departures by least squares over the last three slots, ask
// the neighbors to hold the split (by the cell profile's handoff
// distribution), and — when at least one neighbor is a default lounge —
// also self-reserve for the predicted arrivals, since a default neighbor
// "provides poor quality of next-cell prediction" and cannot be trusted
// to reserve here on our behalf.
func CafeteriaPlan(u *topology.Universe, cp *profile.CellProfile, t, perConnBW float64) LoungePlan {
	cell := u.Cell(cp.Cell)
	if cell == nil {
		return LoungePlan{Neighbor: map[topology.CellID]float64{}}
	}
	dep := cp.RecentDepartures(t, 3)
	nHandoff := predict.CafeteriaForecast(dep[0], dep[1], dep[2])
	probs := cp.Probabilities("")
	plan := LoungePlan{
		Neighbor: scaleSlots(predict.SplitForecast(nHandoff, probs, cell.Neighbors()), perConnBW),
	}
	if hasDefaultNeighbor(u, cell) {
		arr := cp.RecentArrivals(t, 3)
		nArrive := predict.CafeteriaForecast(arr[0], arr[1], arr[2])
		plan.Self = nArrive * perConnBW
	}
	return plan
}

// DefaultPlan evaluates §6.2.3 at time t for a default lounge: one-step-
// memory departure prediction split over the neighbors. Self-reservation
// for a default lounge with default neighbors is the job of the
// probabilistic algorithm (ProbabilisticPlan); the caller combines the
// two — this function reports whether that step applies.
func DefaultPlan(u *topology.Universe, cp *profile.CellProfile, t, perConnBW float64) (LoungePlan, bool) {
	cell := u.Cell(cp.Cell)
	if cell == nil {
		return LoungePlan{Neighbor: map[topology.CellID]float64{}}, false
	}
	n := predict.OneStepForecast(cp.DeparturesIn(cp.Slot(t)))
	probs := cp.Probabilities("")
	plan := LoungePlan{
		Neighbor: scaleSlots(predict.SplitForecast(n, probs, cell.Neighbors()), perConnBW),
	}
	return plan, hasDefaultNeighbor(u, cell)
}

func hasDefaultNeighbor(u *topology.Universe, cell *topology.Cell) bool {
	for _, nid := range cell.Neighbors() {
		if n := u.Cell(nid); n != nil && n.Class == topology.ClassLoungeDefault {
			return true
		}
	}
	return false
}

func scaleSlots(in map[topology.CellID]float64, perConnBW float64) map[topology.CellID]float64 {
	out := make(map[topology.CellID]float64, len(in))
	for k, v := range in {
		out[k] = v * perConnBW
	}
	return out
}
