package reserve

import "testing"

func BenchmarkNonBlockingProb(b *testing.B) {
	classes := paperClasses()
	for i := 0; i < b.N; i++ {
		if _, err := NonBlockingProb(classes, []int{20, 3}, []int{15, 2}, 40, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbabilisticPlan(b *testing.B) {
	classes := paperClasses()
	for i := 0; i < b.N; i++ {
		if _, err := ProbabilisticPlan(classes, []int{10, 1}, []int{10, 1}, 40, 0.05, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinomialPMFLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		binomialPMF(200, 0.37)
	}
}
