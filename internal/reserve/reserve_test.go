package reserve

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/profile"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

// paperClasses are the two connection types of the Figure 6 example:
// type 1 b=1, 1/μ=0.2, h=0.7; type 2 b=4, 1/μ=0.25, h=0.7.
func paperClasses() []ClassState {
	return []ClassState{
		{Bandwidth: 1, Mu: 1 / 0.2, Handoff: 0.7},
		{Bandwidth: 4, Mu: 1 / 0.25, Handoff: 0.7},
	}
}

func TestClassStateProbs(t *testing.T) {
	c := ClassState{Bandwidth: 1, Mu: 5, Handoff: 0.7}
	T := 0.1
	if got := c.StayProb(T); math.Abs(got-math.Exp(-0.5)) > 1e-12 {
		t.Fatalf("StayProb = %v", got)
	}
	want := (1 - math.Exp(-0.5)) * 0.7
	if got := c.MoveProb(T); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MoveProb = %v", got)
	}
	if err := (ClassState{Bandwidth: 0, Mu: 1, Handoff: 0.5}).Validate(); err == nil {
		t.Error("zero bandwidth validated")
	}
	if err := (ClassState{Bandwidth: 1, Mu: 0, Handoff: 0.5}).Validate(); err == nil {
		t.Error("zero mu validated")
	}
	if err := (ClassState{Bandwidth: 1, Mu: 1, Handoff: 1.5}).Validate(); err == nil {
		t.Error("handoff > 1 validated")
	}
}

func TestBinomialPMF(t *testing.T) {
	pmf := binomialPMF(4, 0.5)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Fatalf("pmf = %v", pmf)
		}
	}
	if pmf := binomialPMF(3, 0); pmf[0] != 1 {
		t.Fatal("p=0 pmf wrong")
	}
	if pmf := binomialPMF(3, 1); pmf[3] != 1 {
		t.Fatal("p=1 pmf wrong")
	}
	if pmf := binomialPMF(0, 0.3); pmf[0] != 1 {
		t.Fatal("n=0 pmf wrong")
	}
}

func TestNonBlockingProbEdges(t *testing.T) {
	classes := paperClasses()
	// Nothing anywhere: certainly non-blocking.
	p, err := NonBlockingProb(classes, []int{0, 0}, []int{0, 0}, 40, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("empty system P_nb = %v", p)
	}
	// Load far beyond capacity with a window too short for anyone to
	// leave: essentially blocking.
	p, err = NonBlockingProb(classes, []int{200, 0}, []int{0, 0}, 40, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Fatalf("overloaded P_nb = %v, want ~0", p)
	}
	// Errors.
	if _, err := NonBlockingProb(classes, []int{1}, []int{0, 0}, 40, 0.05); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NonBlockingProb(classes, []int{1, 1}, []int{0, 0}, 40, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NonBlockingProb(classes, []int{-1, 0}, []int{0, 0}, 40, 0.05); err == nil {
		t.Error("negative N accepted")
	}
}

func TestNonBlockingProbMonotonicity(t *testing.T) {
	classes := paperClasses()
	prev := 2.0
	for _, n1 := range []int{0, 5, 10, 20, 30, 40} {
		p, err := NonBlockingProb(classes, []int{n1, 2}, []int{10, 1}, 40, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("P_nb increased when adding load: N1=%d p=%v prev=%v", n1, p, prev)
		}
		prev = p
	}
}

func TestNonBlockingProbExactSmallCase(t *testing.T) {
	// One class, b=1, N=2 stayers with p_s, s=1 mover with p_m, cap=1:
	// blocking iff total > 1. P_nb = P(W<=1).
	c := ClassState{Bandwidth: 1, Mu: 1, Handoff: 0.5}
	T := 1.0
	ps := c.StayProb(T)
	pm := c.MoveProb(T)
	// W = j + l, j~Bin(2,ps), l~Bin(1,pm).
	pj := []float64{(1 - ps) * (1 - ps), 2 * ps * (1 - ps), ps * ps}
	pl := []float64{1 - pm, pm}
	want := 0.0
	for j := 0; j <= 2; j++ {
		for l := 0; l <= 1; l++ {
			if j+l <= 1 {
				want += pj[j] * pl[l]
			}
		}
	}
	got, err := NonBlockingProb([]ClassState{c}, []int{2}, []int{1}, 1, T)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P_nb = %v, want %v", got, want)
	}
}

func TestProbabilisticPlanPaperExample(t *testing.T) {
	classes := paperClasses()
	plan, err := ProbabilisticPlan(classes, []int{10, 1}, []int{10, 1}, 40, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NonBlocking < 0.98 {
		t.Fatalf("plan violates target: P_nb = %v", plan.NonBlocking)
	}
	if plan.MaxConns[0] < 10 || plan.MaxConns[1] < 1 {
		t.Fatalf("caps below current occupancy: %v", plan.MaxConns)
	}
	used := plan.MaxConns[0]*1 + plan.MaxConns[1]*4
	if plan.Reserved != max(0, 40-used) {
		t.Fatalf("eq.7 violated: reserved %d, used %d", plan.Reserved, used)
	}
}

func TestProbabilisticPlanTighterQoSReservesMore(t *testing.T) {
	classes := paperClasses()
	loose, err := ProbabilisticPlan(classes, []int{5, 1}, []int{10, 1}, 40, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ProbabilisticPlan(classes, []int{5, 1}, []int{10, 1}, 40, 0.1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Reserved < loose.Reserved {
		t.Fatalf("tighter P_QOS reserved less: tight=%d loose=%d", tight.Reserved, loose.Reserved)
	}
}

func TestProbabilisticPlanInfeasible(t *testing.T) {
	classes := paperClasses()
	// Stuff both cells far beyond capacity with a tiny allowed drop.
	plan, err := ProbabilisticPlan(classes, []int{60, 0}, []int{60, 0}, 40, 1.0, 1e-6)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if plan.MaxConns[0] != 60 {
		t.Fatalf("degenerate plan caps = %v", plan.MaxConns)
	}
}

func TestProbabilisticPlanValidation(t *testing.T) {
	classes := paperClasses()
	if _, err := ProbabilisticPlan(classes, []int{0, 0}, []int{0, 0}, 40, 0.05, 0); err == nil {
		t.Error("P_QOS = 0 accepted")
	}
	if _, err := ProbabilisticPlan(classes, []int{0}, []int{0, 0}, 40, 0.05, 0.01); err == nil {
		t.Error("mismatched n accepted")
	}
}

func TestMeetingPolicyRoomSlots(t *testing.T) {
	m := Meeting{Start: 3600, End: 7200, Attendees: 35}
	p, err := NewMeetingPolicy(m, DefaultMeetingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Before the lead-in window: nothing.
	if got := p.RoomSlots(2900, 0); got != 0 {
		t.Fatalf("slots before window = %d", got)
	}
	// Inside the window, nobody arrived: full N_m.
	if got := p.RoomSlots(3100, 0); got != 35 {
		t.Fatalf("slots at window start = %d", got)
	}
	// Half arrived.
	if got := p.RoomSlots(3500, 17); got != 18 {
		t.Fatalf("slots with 17 arrived = %d", got)
	}
	// After the post-start release timer: released.
	if got := p.RoomSlots(3600+300, 17); got != 0 {
		t.Fatalf("slots after release = %d", got)
	}
	// Overfull meeting never yields negative slots.
	if got := p.RoomSlots(3500, 50); got != 0 {
		t.Fatalf("slots with overflow arrivals = %d", got)
	}
}

func TestMeetingPolicyNeighborSlots(t *testing.T) {
	m := Meeting{Start: 3600, End: 7200, Attendees: 35}
	p, err := NewMeetingPolicy(m, DefaultMeetingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Before T_a - Δ_a: nothing.
	if got := p.NeighborSlots(6800, 35, 0); got != 0 {
		t.Fatalf("neighbor slots too early = %d", got)
	}
	// In the window with all 35 present.
	if got := p.NeighborSlots(7000, 35, 0); got != 35 {
		t.Fatalf("neighbor slots = %d", got)
	}
	// 20 left already.
	if got := p.NeighborSlots(7300, 35, 20); got != 15 {
		t.Fatalf("neighbor slots after departures = %d", got)
	}
	// After the end-release timer.
	if got := p.NeighborSlots(7200+900, 35, 20); got != 0 {
		t.Fatalf("neighbor slots after release = %d", got)
	}
	if !p.Active(7200) || p.Active(7200+901) {
		t.Fatal("Active window wrong")
	}
}

func TestMeetingValidation(t *testing.T) {
	if _, err := NewMeetingPolicy(Meeting{Start: 10, End: 5, Attendees: 3}, DefaultMeetingConfig()); err == nil {
		t.Error("inverted meeting accepted")
	}
	if _, err := NewMeetingPolicy(Meeting{Start: 0, End: 5, Attendees: 0}, DefaultMeetingConfig()); err == nil {
		t.Error("zero attendees accepted")
	}
	if _, err := NewMeetingPolicy(Meeting{Start: 0, End: 5, Attendees: 3}, MeetingConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func lounges(t *testing.T) (*topology.Universe, *profile.CellProfile) {
	t.Helper()
	u := topology.NewUniverse()
	u.MustAddCell(topology.Cell{ID: "cafe", Class: topology.ClassCafeteria})
	u.MustAddCell(topology.Cell{ID: "n1", Class: topology.ClassCorridor})
	u.MustAddCell(topology.Cell{ID: "n2", Class: topology.ClassLoungeDefault})
	u.MustConnect("cafe", "n1")
	u.MustConnect("cafe", "n2")
	cp := profile.NewCellProfile("cafe", 1000, 60)
	return u, cp
}

func TestCafeteriaPlan(t *testing.T) {
	u, cp := lounges(t)
	// Departure history: slots 0,1,2 with 2,4,6 departures, 3:1 toward n1.
	times := []float64{10, 20, 70, 80, 90, 100, 130, 140, 150, 160, 170, 175}
	for i, tm := range times {
		to := topology.CellID("n1")
		if i%4 == 3 {
			to = "n2"
		}
		cp.RecordDeparture(profile.Handoff{Portable: "p", Prev: "n1", From: "cafe", To: to, Time: tm})
	}
	// Arrivals ramp too.
	for _, tm := range []float64{10, 70, 75, 130, 135, 140} {
		cp.RecordArrival(profile.Handoff{Portable: "p", To: "cafe", Time: tm})
	}
	plan := CafeteriaPlan(u, cp, 170, 1000)
	// Forecast = (4*6 + 4 - 2*2)/3 = 8 handoffs; split 3:1.
	total := plan.Neighbor["n1"] + plan.Neighbor["n2"]
	if math.Abs(total-8000) > 1e-6 {
		t.Fatalf("neighbor total = %v, want 8000", total)
	}
	if plan.Neighbor["n1"] <= plan.Neighbor["n2"] {
		t.Fatalf("split ignores profile: %v", plan.Neighbor)
	}
	// Default neighbor present: self-reservation for predicted arrivals
	// = (4*3 + 2 - 2*1)/3 = 4 arrivals.
	if math.Abs(plan.Self-4000) > 1e-6 {
		t.Fatalf("self reservation = %v, want 4000", plan.Self)
	}
}

func TestCafeteriaPlanNoDefaultNeighbor(t *testing.T) {
	u := topology.NewUniverse()
	u.MustAddCell(topology.Cell{ID: "cafe", Class: topology.ClassCafeteria})
	u.MustAddCell(topology.Cell{ID: "n1", Class: topology.ClassCorridor})
	u.MustConnect("cafe", "n1")
	cp := profile.NewCellProfile("cafe", 100, 60)
	cp.RecordDeparture(profile.Handoff{From: "cafe", To: "n1", Time: 10})
	plan := CafeteriaPlan(u, cp, 10, 500)
	if plan.Self != 0 {
		t.Fatalf("self reservation without default neighbor = %v", plan.Self)
	}
}

func TestDefaultPlan(t *testing.T) {
	u, cp := lounges(t)
	// Make "cafe" act as the current cell regardless of class; the
	// default policy only reads the profile. 3 departures this slot.
	for _, tm := range []float64{130, 140, 150} {
		cp.RecordDeparture(profile.Handoff{From: "cafe", To: "n1", Time: tm})
	}
	plan, hasDefault := DefaultPlan(u, cp, 150, 1000)
	if !hasDefault {
		t.Fatal("default neighbor not detected")
	}
	if math.Abs(plan.Neighbor["n1"]-3000) > 1e-6 {
		t.Fatalf("one-step neighbor reservation = %v", plan.Neighbor)
	}
}

func TestLoungePlansUnknownCell(t *testing.T) {
	u, _ := lounges(t)
	cp := profile.NewCellProfile("ghost", 10, 60)
	if plan := CafeteriaPlan(u, cp, 0, 1); len(plan.Neighbor) != 0 || plan.Self != 0 {
		t.Fatal("plan for unknown cell not empty")
	}
	if plan, _ := DefaultPlan(u, cp, 0, 1); len(plan.Neighbor) != 0 {
		t.Fatal("default plan for unknown cell not empty")
	}
}

// Property: binomial pmf sums to 1 and every term is a probability.
func TestQuickBinomialPMFNormalized(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw % 120)
		p := float64(pRaw) / 65536
		pmf := binomialPMF(n, p)
		sum := 0.0
		for _, v := range pmf {
			if v < 0 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the plan never admits beyond what capacity alone allows and
// respects the target when feasible.
func TestQuickPlanRespectsTarget(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		classes := []ClassState{
			{Bandwidth: 1 + rng.Intn(3), Mu: 1 + rng.Float64()*5, Handoff: rng.Float64()},
			{Bandwidth: 1 + rng.Intn(5), Mu: 1 + rng.Float64()*5, Handoff: rng.Float64()},
		}
		capacity := 20 + rng.Intn(40)
		n := []int{rng.Intn(5), rng.Intn(3)}
		s := []int{rng.Intn(10), rng.Intn(5)}
		pq := 0.01 + rng.Float64()*0.2
		T := 0.01 + rng.Float64()*0.5
		plan, err := ProbabilisticPlan(classes, n, s, capacity, T, pq)
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		if plan.NonBlocking < 1-pq-1e-9 {
			return false
		}
		used := 0
		for i, c := range classes {
			if plan.MaxConns[i] < n[i] {
				return false
			}
			used += c.Bandwidth * plan.MaxConns[i]
		}
		return plan.Reserved == max(0, capacity-used)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Property: for any meeting and any counter values, RoomSlots and
// NeighborSlots are non-negative, bounded by N_m, and zero outside their
// windows.
func TestQuickMeetingPolicyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		m := Meeting{
			Start:     1000 + rng.Float64()*5000,
			Attendees: 1 + rng.Intn(100),
		}
		m.End = m.Start + 600 + rng.Float64()*5000
		p, err := NewMeetingPolicy(m, DefaultMeetingConfig())
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			tm := rng.Float64() * (m.End + 2000)
			arrived := rng.Intn(150)
			left := rng.Intn(arrived + 1)
			rs := p.RoomSlots(tm, arrived)
			ns := p.NeighborSlots(tm, arrived, left)
			if rs < 0 || rs > m.Attendees || ns < 0 || ns > m.Attendees {
				return false
			}
			if tm < m.Start-p.Config.LeadIn && rs != 0 {
				return false
			}
			if tm >= m.End+p.Config.EndRelease && ns != 0 {
				return false
			}
			if tm >= m.Start+p.Config.StartRelease && rs != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
