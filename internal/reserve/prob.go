// Package reserve implements the paper's advance resource reservation
// algorithms (§6): the probabilistic default reservation of §6.3
// (eqs. 3–7) evaluated by exact binomial convolution, the meeting-room
// booking-calendar policy of §6.2.1, the cafeteria and default lounge
// policies of §6.2.2–6.2.3, and the per-portable reservations the
// office/corridor predictions drive.
package reserve

import (
	"errors"
	"fmt"
	"math"
)

// ClassState describes one connection type in the two-cell model of
// Figure 3 (type i with bandwidth b_min,i, departure rate μ_i and handoff
// probability h).
type ClassState struct {
	// Bandwidth is b_min,i in capacity units (positive integer — the
	// paper's example uses 1 and 4 on a capacity of 40).
	Bandwidth int
	// Mu is the departure rate μ_i = 1 / mean holding time.
	Mu float64
	// Handoff is h, the probability a departing portable hands off
	// rather than terminating.
	Handoff float64
}

// Validate reports whether the class state is usable.
func (c ClassState) Validate() error {
	if c.Bandwidth <= 0 {
		return fmt.Errorf("reserve: bandwidth must be a positive unit count, got %d", c.Bandwidth)
	}
	if c.Mu <= 0 {
		return fmt.Errorf("reserve: mu must be positive, got %v", c.Mu)
	}
	if c.Handoff < 0 || c.Handoff > 1 {
		return fmt.Errorf("reserve: handoff probability out of [0,1]: %v", c.Handoff)
	}
	return nil
}

// StayProb returns p_s,i = e^{-μ_i T}: the probability a connection in
// C_q is still in C_q after the window T.
func (c ClassState) StayProb(T float64) float64 { return math.Exp(-c.Mu * T) }

// MoveProb returns p_m,i = (1 - e^{-μ_i T})·h: the probability a
// connection in the neighbor C_s hands off into C_q within T.
func (c ClassState) MoveProb(T float64) float64 {
	return (1 - math.Exp(-c.Mu*T)) * c.Handoff
}

// ErrInfeasible is returned when even the current occupancy violates the
// QoS target.
var ErrInfeasible = errors.New("reserve: current occupancy already violates P_QOS")

// binomialPMF returns the probability mass function of Binomial(n, p)
// as a slice of length n+1, computed by the stable multiplicative
// recurrence. For p > 1/2 the complementary distribution is computed and
// reflected: anchoring the recurrence at P(0) = (1-p)^n would underflow
// to zero for p near 1 (e.g. n=117, p=0.9985 gives (1-p)^n ≈ 1e-332,
// below the smallest subnormal) and poison every later term — a bug this
// package's property tests caught.
func binomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	if n == 0 {
		pmf[0] = 1
		return pmf
	}
	if p <= 0 {
		pmf[0] = 1
		return pmf
	}
	if p >= 1 {
		pmf[n] = 1
		return pmf
	}
	if p > 0.5 {
		rev := binomialPMF(n, 1-p)
		for k := 0; k <= n; k++ {
			pmf[k] = rev[n-k]
		}
		return pmf
	}
	// P(0) = (1-p)^n computed in log space; with p <= 1/2 this stays
	// above the subnormal floor for any n this package can see
	// (capacities are at most a few hundred units).
	logP0 := float64(n) * math.Log1p(-p)
	pmf[0] = math.Exp(logP0)
	ratio := p / (1 - p)
	for k := 1; k <= n; k++ {
		pmf[k] = pmf[k-1] * ratio * float64(n-k+1) / float64(k)
	}
	return pmf
}

// convolveScaled folds the distribution of b·X (X with the given pmf,
// each unit of X consuming b capacity units) into dist, where
// dist[w] = P(total consumed = w) and the last bin dist[cap+1... ] is
// collapsed into an overflow bucket at index cap+1.
func convolveScaled(dist []float64, pmf []float64, b, capacity int) []float64 {
	out := make([]float64, capacity+2) // 0..capacity plus overflow
	for w, pw := range dist {
		if pw == 0 {
			continue
		}
		for k, pk := range pmf {
			if pk == 0 {
				continue
			}
			v := w + k*b
			if w > capacity { // already overflowed
				v = capacity + 1
			} else if v > capacity {
				v = capacity + 1
			}
			out[v] += pw * pk
		}
	}
	return out
}

// NonBlockingProb evaluates eq. (5): the probability that the existing
// connections that remain in C_q (j_i ~ Bin(N_i, p_s,i)) plus the
// handoffs arriving from C_s (l_i ~ Bin(s_i, p_m,i)) fit within the cell
// capacity:
//
//	P_nb = P( Σ_i b_i·(j_i + l_i) ≤ B_c ).
//
// N[i] is the admission cap of type i in C_q; s[i] the current count of
// type i in C_s; capacity is B_c in units.
func NonBlockingProb(classes []ClassState, N, s []int, capacity int, T float64) (float64, error) {
	if len(N) != len(classes) || len(s) != len(classes) {
		return 0, fmt.Errorf("reserve: N/s length mismatch: %d classes, %d N, %d s", len(classes), len(N), len(s))
	}
	if capacity < 0 {
		return 0, fmt.Errorf("reserve: negative capacity %d", capacity)
	}
	if T <= 0 {
		return 0, fmt.Errorf("reserve: window must be positive, got %v", T)
	}
	dist := make([]float64, capacity+2)
	dist[0] = 1
	for i, c := range classes {
		if err := c.Validate(); err != nil {
			return 0, err
		}
		if N[i] < 0 || s[i] < 0 {
			return 0, fmt.Errorf("reserve: negative occupancy N=%d s=%d", N[i], s[i])
		}
		dist = convolveScaled(dist, binomialPMF(N[i], c.StayProb(T)), c.Bandwidth, capacity)
		dist = convolveScaled(dist, binomialPMF(s[i], c.MoveProb(T)), c.Bandwidth, capacity)
	}
	ok := 0.0
	for w := 0; w <= capacity; w++ {
		ok += dist[w]
	}
	if ok > 1 {
		ok = 1
	}
	return ok, nil
}

// Plan is the outcome of the probabilistic reservation computation.
type Plan struct {
	// MaxConns is N_i: the largest admissible connection count per type
	// in C_q consistent with P_QOS (includes the existing n_i).
	MaxConns []int
	// Reserved is eq. (7)'s b_resv,q = B_c - Σ b_i·N_i in units
	// (never negative).
	Reserved int
	// NonBlocking is P_nb at the chosen MaxConns.
	NonBlocking float64
}

// ProbabilisticPlan computes the §6.3 reservation: starting from the
// current occupancies n (which must stay admissible), it raises the
// admission caps N_i round-robin across types while eq. (6)
// P_nb ≥ 1 - P_QOS still holds, then reserves the remainder of the cell
// capacity for handoffs (eq. 7). s holds the neighbor-cell occupancies.
//
// If the current occupancy n already violates the target, the plan
// returns ErrInfeasible along with the degenerate plan (caps = n) so the
// caller can still apply its reservation.
func ProbabilisticPlan(classes []ClassState, n, s []int, capacity int, T, pQoS float64) (Plan, error) {
	if pQoS <= 0 || pQoS >= 1 {
		return Plan{}, fmt.Errorf("reserve: P_QOS must be in (0,1), got %v", pQoS)
	}
	if len(n) != len(classes) || len(s) != len(classes) {
		return Plan{}, fmt.Errorf("reserve: n/s length mismatch")
	}
	target := 1 - pQoS
	N := append([]int(nil), n...)
	pnb, err := NonBlockingProb(classes, N, s, capacity, T)
	if err != nil {
		return Plan{}, err
	}
	mkPlan := func(p float64) Plan {
		used := 0
		for i, c := range classes {
			used += c.Bandwidth * N[i]
		}
		resv := capacity - used
		if resv < 0 {
			resv = 0
		}
		return Plan{MaxConns: append([]int(nil), N...), Reserved: resv, NonBlocking: p}
	}
	if pnb < target {
		return mkPlan(pnb), ErrInfeasible
	}
	// Round-robin growth: bump each type in turn while feasible; a type
	// that no longer fits (bandwidth or probability) drops out.
	active := make([]bool, len(classes))
	usedUnits := 0
	for i, c := range classes {
		usedUnits += c.Bandwidth * N[i]
		active[i] = true
	}
	for {
		progressed := false
		for i, c := range classes {
			if !active[i] {
				continue
			}
			if usedUnits+c.Bandwidth > capacity {
				active[i] = false
				continue
			}
			N[i]++
			p, err := NonBlockingProb(classes, N, s, capacity, T)
			if err != nil {
				return Plan{}, err
			}
			if p < target {
				N[i]--
				active[i] = false
				continue
			}
			usedUnits += c.Bandwidth
			pnb = p
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return mkPlan(pnb), nil
}
