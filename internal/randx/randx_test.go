package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExpMean(t *testing.T) {
	r := New(1)
	const rate = 2.5
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 25, 100} {
		r := New(7)
		const n = 100000
		sum, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sq += v * v
		}
		m := sum / n
		variance := sq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.2 {
			t.Errorf("poisson(%v) var = %v", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) != 0")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(3)
	const p = 0.3
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(11)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("weight-3/weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("all-zero categorical did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestBinomialMoments(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {50, 0.1}, {500, 0.3}} {
		r := New(5)
		const trials = 50000
		sum := 0.0
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("binomial draw %d out of [0,%d]", k, tc.n)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.1 {
			t.Errorf("binomial(%d,%v) mean = %v, want %v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(1)
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestWeightedKeysDeterministic(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 2, "c": 3}
	r1, r2 := New(4), New(4)
	for i := 0; i < 50; i++ {
		if WeightedKeys(r1, m) != WeightedKeys(r2, m) {
			t.Fatal("weighted draws diverged for identical seeds")
		}
	}
}

func TestWeightedKeysProportions(t *testing.T) {
	m := map[string]float64{"x": 1, "y": 4}
	r := New(8)
	counts := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[WeightedKeys(r, m)]++
	}
	ratio := float64(counts["y"]) / float64(counts["x"])
	if math.Abs(ratio-4) > 0.3 {
		t.Fatalf("y/x ratio = %v, want ~4", ratio)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		size := int(n%32) + 1
		s := make([]int, size)
		for i := range s {
			s[i] = i
		}
		Shuffle(New(seed), s)
		seen := make([]bool, size)
		for _, v := range s {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: categorical never returns a zero-weight index.
func TestQuickCategoricalSupport(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			idx := r.Categorical(weights)
			if weights[idx] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
