// Package randx provides the deterministic random-variate helpers used by
// the traffic and mobility models: exponential, Poisson, categorical, and
// truncated-normal draws over a seeded math/rand source.
//
// Every experiment in this repository is seeded explicitly so that paper
// figures regenerate bit-identically from run to run.
package randx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Rand wraps a seeded source with the distribution helpers the simulator
// needs. It is not safe for concurrent use; the simulation is single-
// threaded by design.
type Rand struct {
	src *rand.Rand
}

// New returns a deterministic generator for the given seed.
func New(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Exp returns an exponential draw with the given rate (mean 1/rate).
// It panics if rate is not positive.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("randx: non-positive exponential rate %v", rate))
	}
	return r.src.ExpFloat64() / rate
}

// Poisson returns a Poisson draw with the given mean using inversion for
// small means and the normal approximation guarded by a floor for large
// ones. It panics if mean is negative.
func (r *Rand) Poisson(mean float64) int {
	if mean < 0 {
		panic(fmt.Sprintf("randx: negative poisson mean %v", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		// Knuth inversion.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.src.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	n := int(math.Round(r.src.NormFloat64()*math.Sqrt(mean) + mean))
	if n < 0 {
		n = 0
	}
	return n
}

// Normal returns a normal draw with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.src.NormFloat64()*stddev + mean
}

// TruncNormal returns a normal draw clamped to [lo, hi].
// It panics if lo > hi.
func (r *Rand) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("randx: truncation bounds inverted [%v, %v]", lo, hi))
	}
	v := r.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Categorical draws an index with probability proportional to weights[i].
// Zero-weight entries are never selected. It panics if weights is empty or
// if every weight is zero or negative.
func (r *Rand) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randx: categorical with no positive weight")
	}
	u := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("randx: unreachable")
}

// Binomial returns a draw from Binomial(n, p) by direct simulation for
// small n and normal approximation for large n.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic(fmt.Sprintf("randx: negative binomial n %d", n))
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.src.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(r.src.NormFloat64()*sd + mean))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Shuffle permutes s in place.
func Shuffle[T any](r *Rand, s []T) {
	r.src.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// WeightedKeys draws a key from the map with probability proportional to
// its weight, iterating keys in sorted order so the draw is deterministic
// for a fixed seed. It panics on an empty map or all-nonpositive weights.
func WeightedKeys[K interface {
	~string | ~int | ~int64
}](r *Rand, m map[K]float64) K {
	if len(m) == 0 {
		panic("randx: weighted draw from empty map")
	}
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	weights := make([]float64, len(keys))
	for i, k := range keys {
		weights[i] = m[k]
	}
	return keys[r.Categorical(weights)]
}
