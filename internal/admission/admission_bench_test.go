package admission

import (
	"fmt"
	"testing"

	"armnet/internal/qos"
	"armnet/internal/sched"
	"armnet/internal/topology"
)

func benchRig(b *testing.B) (*Controller, topology.Route) {
	b.Helper()
	bb := topology.NewBackbone()
	for _, id := range []topology.NodeID{"h", "s1", "s2", "bs", "air"} {
		bb.MustAddNode(topology.Node{ID: id})
	}
	bb.MustAddDuplex(topology.Link{From: "h", To: "s1", Capacity: 100e6, PropDelay: 1e-3})
	bb.MustAddDuplex(topology.Link{From: "s1", To: "s2", Capacity: 100e6, PropDelay: 1e-3})
	bb.MustAddDuplex(topology.Link{From: "s2", To: "bs", Capacity: 100e6, PropDelay: 1e-3})
	bb.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: 100e6, Wireless: true, LossProb: 0.005})
	r, err := bb.ShortestPath("h", "air")
	if err != nil {
		b.Fatal(err)
	}
	return NewController(NewLedger(bb)), r
}

func benchReq() qos.Request {
	return qos.Request{
		Bandwidth: qos.Bounds{Min: 64e3, Max: 256e3},
		Delay:     2, Jitter: 2, Loss: 0.02,
		Traffic: qos.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	}
}

func BenchmarkAdmitReleaseWFQ(b *testing.B) {
	ctl, route := benchRig(b)
	req := benchReq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%d", i%64)
		res, err := ctl.Admit(Test{ConnID: id, Req: req, Route: route, Mobility: qos.Mobile})
		if err != nil || !res.Admitted {
			b.Fatalf("admit failed: %v %v", err, res.Reason)
		}
		ctl.Ledger.Release(id, route)
	}
}

func BenchmarkAdmitReleaseRCSP(b *testing.B) {
	ctl, route := benchRig(b)
	req := benchReq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%d", i%64)
		res, err := ctl.Admit(Test{ConnID: id, Req: req, Route: route, Mobility: qos.Mobile, Discipline: sched.DisciplineRCSP})
		if err != nil || !res.Admitted {
			b.Fatalf("admit failed: %v %v", err, res.Reason)
		}
		ctl.Ledger.Release(id, route)
	}
}

func BenchmarkLedgerExcess(b *testing.B) {
	ctl, route := benchRig(b)
	req := benchReq()
	for i := 0; i < 64; i++ {
		if _, err := ctl.Admit(Test{ConnID: fmt.Sprintf("c%d", i), Req: req, Route: route, Mobility: qos.Mobile}); err != nil {
			b.Fatal(err)
		}
	}
	ls := ctl.Ledger.Link(route.Links[0].ID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ls.ExcessAvailable()
	}
}
