// Package admission implements the paper's Table 2: the round-trip
// admission test and resource reservation for new and handoff connections.
//
// The forward pass checks bandwidth, delay, jitter, buffer and packet-loss
// feasibility hop by hop and tentatively reserves at the greatest level of
// local support; the destination compares accumulated values against the
// end-to-end bounds; the reverse pass relaxes per-hop delays uniformly,
// reclaims over-reserved resources, and commits the final allocation
// (b_min + b_stamp for static portables, b_min for mobile ones).
//
// Per-link bookkeeping lives in Ledger/LinkState, which also tracks the
// advance reservations (b_resv,l) and the dynamically adjustable pool
// (B_dyn) that the advance-reservation algorithms of §6 manipulate.
package admission

import (
	"errors"
	"fmt"
	"sort"

	"armnet/internal/topology"
)

// Alloc is one connection's committed share of one link.
type Alloc struct {
	// Min is the connection's guaranteed bandwidth b_min,j on this link.
	Min float64
	// Cur is the currently allocated bandwidth b_j (adaptation moves it
	// within [Min, b_max]).
	Cur float64
	// Buffer is the committed buffer space in bits.
	Buffer float64
}

// LinkState is the reservation ledger of one directed link.
type LinkState struct {
	Link *topology.Link
	// Capacity is the current effective capacity C_l; it starts at the
	// topology value and tracks wireless capacity processes.
	Capacity float64
	// BufferCapacity is the node buffer space behind the link, in bits.
	BufferCapacity float64
	// AdvanceReserved is b_resv,l: bandwidth advance-reserved for
	// predicted handoffs, unavailable to new connections.
	AdvanceReserved float64
	// PoolFraction is the B_dyn fraction (paper: 5%–20%) withheld from
	// new-connection admission to absorb unforeseen events such as
	// sudden movement of static portables.
	PoolFraction float64
	// Down marks a failed link (fault injection): while set the link
	// admits nothing and advertises no excess. Capacity is kept so
	// restoration returns the link to its pre-failure state.
	Down bool

	allocs map[string]*Alloc
}

func newLinkState(l *topology.Link) *LinkState {
	return &LinkState{
		Link:     l,
		Capacity: l.Capacity,
		// Default buffer: one second's worth of line rate — generous, so
		// buffer admission only bites when configured tighter.
		BufferCapacity: l.Capacity,
		allocs:         make(map[string]*Alloc),
	}
}

// Conns returns the IDs of connections holding allocations, sorted.
func (ls *LinkState) Conns() []string {
	out := make([]string, 0, len(ls.allocs))
	for id := range ls.allocs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Alloc returns the allocation of the given connection, or nil.
func (ls *LinkState) Alloc(id string) *Alloc { return ls.allocs[id] }

// NumConns returns N_l, the number of connections on the link.
func (ls *LinkState) NumConns() int { return len(ls.allocs) }

// SumMin returns Σ b_min,i over ongoing connections. All three sums
// iterate in sorted order: float addition is not associative, so a
// map-order sum varies in the last ulp between runs, and these values
// feed the maxmin protocol's advertised rates — which are published.
func (ls *LinkState) SumMin() float64 {
	t := 0.0
	for _, id := range ls.Conns() {
		t += ls.allocs[id].Min
	}
	return t
}

// SumCur returns Σ b_i, the currently allocated bandwidth.
func (ls *LinkState) SumCur() float64 {
	t := 0.0
	for _, id := range ls.Conns() {
		t += ls.allocs[id].Cur
	}
	return t
}

// SumBuffer returns the committed buffer space.
func (ls *LinkState) SumBuffer() float64 {
	t := 0.0
	for _, id := range ls.Conns() {
		t += ls.allocs[id].Buffer
	}
	return t
}

// ExcessAvailable is the paper's b'_av,l := C_l - b_resv,l - Σ b_min,i —
// the bandwidth beyond every connection's guaranteed minimum. A failed
// link offers none.
func (ls *LinkState) ExcessAvailable() float64 {
	if ls.Down {
		return 0
	}
	return ls.Capacity - ls.AdvanceReserved - ls.SumMin()
}

// Pool returns the B_dyn pool size in bits/s.
func (ls *LinkState) Pool() float64 { return ls.PoolFraction * ls.Capacity }

// availableFor returns the bandwidth a connection of the given kind may
// still claim: new connections must not touch the advance reservation or
// the pool; handoff connections may consume the advance reservation; pool
// claimants (sudden movers) may also dip into B_dyn.
func (ls *LinkState) availableFor(kind Kind) float64 {
	if ls.Down {
		return 0
	}
	switch kind {
	case KindHandoff:
		return ls.Capacity - ls.SumMin()
	case KindPoolClaim:
		return ls.Capacity - ls.SumMin()
	default:
		return ls.Capacity - ls.AdvanceReserved - ls.Pool() - ls.SumMin()
	}
}

// Book commits an allocation for a connection on this link outright —
// the primitive a strategy Admitter uses to record a decision it reached
// by its own test. Booking the same connection twice overwrites, like
// Table 2's reverse-pass commit.
func (ls *LinkState) Book(connID string, a Alloc) {
	ls.allocs[connID] = &a
}

// Ledger tracks reservation state for every link of a backbone.
type Ledger struct {
	links map[topology.LinkID]*LinkState
}

// Errors returned by the ledger.
var (
	ErrUnknownLink = errors.New("admission: unknown link")
	ErrNoAlloc     = errors.New("admission: no allocation")
)

// NewLedger builds a ledger covering every link of the backbone.
func NewLedger(b *topology.Backbone) *Ledger {
	lg := &Ledger{links: make(map[topology.LinkID]*LinkState)}
	for _, l := range b.Links() {
		lg.links[l.ID] = newLinkState(l)
	}
	return lg
}

// Link returns the ledger state of a link, or nil.
func (lg *Ledger) Link(id topology.LinkID) *LinkState { return lg.links[id] }

// Links returns all link states sorted by link ID.
func (lg *Ledger) Links() []*LinkState {
	out := make([]*LinkState, 0, len(lg.links))
	for _, ls := range lg.links {
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link.ID < out[j].Link.ID })
	return out
}

// SetCapacity updates a link's effective capacity (wireless variation).
func (lg *Ledger) SetCapacity(id topology.LinkID, c float64) error {
	ls, ok := lg.links[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, id)
	}
	if c <= 0 {
		return fmt.Errorf("admission: capacity must be positive, got %v", c)
	}
	ls.Capacity = c
	return nil
}

// AddAdvance increases the advance reservation b_resv on a link, clamping
// at zero from below. The reservation may exceed current availability —
// the paper's meeting-room policy reserves for attendees who have not
// arrived yet — but never the link capacity.
func (lg *Ledger) AddAdvance(id topology.LinkID, delta float64) error {
	ls, ok := lg.links[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, id)
	}
	ls.AdvanceReserved += delta
	if ls.AdvanceReserved < 0 {
		ls.AdvanceReserved = 0
	}
	if ls.AdvanceReserved > ls.Capacity {
		ls.AdvanceReserved = ls.Capacity
	}
	return nil
}

// SetAdvance sets the advance reservation on a link outright.
func (lg *Ledger) SetAdvance(id topology.LinkID, v float64) error {
	ls, ok := lg.links[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, id)
	}
	if v < 0 {
		v = 0
	}
	if v > ls.Capacity {
		v = ls.Capacity
	}
	ls.AdvanceReserved = v
	return nil
}

// Release removes the named connection's allocation from every link of
// the route. Missing allocations are ignored so release is idempotent.
func (lg *Ledger) Release(connID string, route topology.Route) {
	for _, l := range route.Links {
		if ls, ok := lg.links[l.ID]; ok {
			delete(ls.allocs, connID)
		}
	}
}

// SetAllocation overwrites the current bandwidth of a connection on one
// link; the adaptation algorithm uses it to apply UPDATE messages.
func (lg *Ledger) SetAllocation(connID string, linkID topology.LinkID, cur float64) error {
	ls, ok := lg.links[linkID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	a, ok := ls.allocs[connID]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNoAlloc, connID, linkID)
	}
	if cur < a.Min {
		cur = a.Min
	}
	a.Cur = cur
	return nil
}
