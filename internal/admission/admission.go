package admission

import (
	"errors"
	"fmt"

	"armnet/internal/eventbus"
	"armnet/internal/qos"
	"armnet/internal/sched"
	"armnet/internal/topology"
)

// Kind distinguishes how a connection arrives at the admission test.
type Kind int

const (
	// KindNew is a fresh connection request; it may not consume advance
	// reservations or the B_dyn pool.
	KindNew Kind = iota
	// KindHandoff is an ongoing connection following its portable into a
	// new cell; it may consume the advance reservation b_resv,l.
	KindHandoff
	// KindPoolClaim is a handoff that was NOT predicted (e.g. sudden
	// movement of a static portable); it may dip into the B_dyn pool.
	KindPoolClaim
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNew:
		return "new"
	case KindHandoff:
		return "handoff"
	case KindPoolClaim:
		return "pool-claim"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Test bundles one admission attempt.
type Test struct {
	ConnID string
	Req    qos.Request
	Route  topology.Route
	Kind   Kind
	// Mobility selects the reverse-pass allocation rule: static
	// portables get b_min + b_stamp, mobile ones b_min (Table 2).
	Mobility qos.Mobility
	// BStamp is the stamped rate the rate-allocation protocol attached
	// to the forward pass (0 when no excess is on offer).
	BStamp float64
	// Discipline selects the buffer formula (WFQ by default).
	Discipline sched.Discipline
	// LMax is the largest packet size on the path in bits; defaults to
	// DefaultLMax when zero.
	LMax float64
}

// DefaultLMax is the assumed maximum packet size (bits) when a test does
// not specify one: 1 KB packets, typical for the paper's era.
const DefaultLMax = 8 * 1024

// HopReport records the per-link outcome of the forward pass and the
// reverse-pass relaxation for one hop.
type HopReport struct {
	Link         topology.LinkID
	HopDelay     float64 // d_{l,j}
	RelaxedDelay float64 // d'_{l,j}
	Jitter       float64 // (σ + l·L_max)/b_min at this hop
	Buffer       float64 // committed buffer after the reverse pass
	Loss         float64 // p_e,l
}

// Result is the outcome of an admission test.
type Result struct {
	Admitted bool
	// Reason explains a rejection; empty on success.
	Reason string
	// FailedLink is the link where the forward pass failed, if any.
	FailedLink topology.LinkID
	// Bandwidth is the committed b_j after the reverse pass.
	Bandwidth float64
	// DelayFloor is d_min,j, the tightest end-to-end delay the route
	// supports at b_min.
	DelayFloor float64
	// EndToEndJitter is (σ + n·L_max)/b_min.
	EndToEndJitter float64
	// EndToEndLoss is 1 - Π(1 - p_e,i).
	EndToEndLoss float64
	Hops         []HopReport
}

// Rejection reasons (stable strings, also used by stats).
const (
	ReasonBandwidth = "bandwidth"
	ReasonDelay     = "delay"
	ReasonJitter    = "jitter"
	ReasonBuffer    = "buffer"
	ReasonLoss      = "loss"
)

// ErrValidation wraps malformed test inputs.
var ErrValidation = errors.New("admission: invalid test")

// Controller runs Table 2 admission tests against a ledger.
type Controller struct {
	Ledger *Ledger
	// Bus, when non-nil, receives an AdmissionDecision event for every
	// completed Admit round trip — including renegotiations and multicast
	// legs that the aggregate counters deliberately ignore.
	Bus *eventbus.Bus
}

// NewController returns a controller over the given ledger.
func NewController(lg *Ledger) *Controller { return &Controller{Ledger: lg} }

// Admit runs the full round-trip admission test. On success the
// connection's allocation is committed to every link of the route; on
// failure no state changes.
func (c *Controller) Admit(t Test) (Result, error) {
	res, err := c.admit(t)
	if err == nil {
		eventbus.Pub(c.Bus, eventbus.AdmissionDecision{
			Conn:      t.ConnID,
			Class:     t.Kind.String(),
			Admitted:  res.Admitted,
			Reason:    res.Reason,
			Link:      string(res.FailedLink),
			Bandwidth: res.Bandwidth,
		})
	}
	return res, err
}

func (c *Controller) admit(t Test) (Result, error) {
	if err := t.Req.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrValidation, err)
	}
	if t.ConnID == "" {
		return Result{}, fmt.Errorf("%w: empty connection id", ErrValidation)
	}
	if len(t.Route.Links) == 0 {
		return Result{}, fmt.Errorf("%w: empty route", ErrValidation)
	}
	lmax := t.LMax
	if lmax <= 0 {
		lmax = DefaultLMax
	}
	bmin := t.Req.Bandwidth.Min
	sigma := t.Req.Traffic.Sigma
	n := t.Route.Hops()

	// ---- Forward pass ----
	res := Result{Hops: make([]HopReport, 0, n)}
	states := make([]*LinkState, 0, n)
	caps := make([]float64, 0, n)
	lossPerLink := make([]float64, 0, n)
	for _, link := range t.Route.Links {
		ls := c.Ledger.Link(link.ID)
		if ls == nil {
			return Result{}, fmt.Errorf("%w: %s", ErrUnknownLink, link.ID)
		}
		states = append(states, ls)
		caps = append(caps, ls.Capacity)
		lossPerLink = append(lossPerLink, link.LossProb)
	}
	// d_min,j depends only on the route's capacities, so it is known before
	// the hop-by-hop tests run. The RCSP buffer row needs it: the reverse
	// pass commits buffers against the *relaxed* upstream delay, so the
	// forward check must bound that commitment, not the unrelaxed delay.
	delayFloor := sched.EndToEndDelayFloor(sigma, lmax, bmin, caps)
	for hop, link := range t.Route.Links {
		ls := states[hop]
		l := hop + 1 // 1-based hop index of Table 2

		// Bandwidth row: b_min,j <= C_l - b_resv,l - Σ b_min,i
		// (availability depends on the connection kind).
		if bmin > ls.availableFor(t.Kind) {
			res.Reason = ReasonBandwidth
			res.FailedLink = link.ID
			return res, nil
		}
		// Jitter row at hop l.
		jit := sched.JitterAtHop(sigma, lmax, bmin, l)
		if jit > t.Req.Jitter {
			res.Reason = ReasonJitter
			res.FailedLink = link.ID
			return res, nil
		}
		// Buffer row (forward pass uses the most demanding value the
		// discipline can require; the reverse pass reclaims).
		var buf float64
		switch t.Discipline {
		case sched.DisciplineRCSP:
			d := sched.HopDelay(lmax, bmin, ls.Capacity)
			var prev float64
			if hop > 0 {
				prev = sched.HopDelay(lmax, bmin, states[hop-1].Capacity)
				// If the connection is later admitted, the commitment uses
				// the relaxed upstream delay d'_{l-1}, which exceeds
				// d_{l-1} whenever the delay slack is positive.
				if relaxed := sched.RelaxedHopDelay(prev, t.Req.Delay, delayFloor, sigma, bmin, n); relaxed > prev {
					prev = relaxed
				}
			}
			buf = sched.BufferRCSP(sigma, lmax, t.Req.Bandwidth.Max, prev, d, l)
		default:
			buf = sched.BufferWFQ(sigma, lmax, l)
		}
		if ls.SumBuffer()+buf > ls.BufferCapacity {
			res.Reason = ReasonBuffer
			res.FailedLink = link.ID
			return res, nil
		}
		res.Hops = append(res.Hops, HopReport{
			Link:     link.ID,
			HopDelay: sched.HopDelay(lmax, bmin, ls.Capacity),
			Jitter:   jit,
			Loss:     link.LossProb,
		})
	}

	// ---- Destination node tests ----
	res.DelayFloor = delayFloor
	if res.DelayFloor > t.Req.Delay {
		res.Reason = ReasonDelay
		return res, nil
	}
	res.EndToEndJitter = sched.JitterAtHop(sigma, lmax, bmin, n)
	if res.EndToEndJitter > t.Req.Jitter {
		res.Reason = ReasonJitter
		return res, nil
	}
	res.EndToEndLoss = sched.LossOnPath(lossPerLink)
	if res.EndToEndLoss > t.Req.Loss {
		res.Reason = ReasonLoss
		return res, nil
	}

	// ---- Reverse pass: relax and commit ----
	// Allocation rule of Table 2's bandwidth row.
	alloc := bmin
	if t.Mobility == qos.Static {
		alloc = t.Req.Bandwidth.Clamp(bmin + t.BStamp)
	}
	// The granted rate above b_min must also fit in each link's excess.
	for _, ls := range states {
		if extra := alloc - bmin; extra > 0 {
			avail := ls.ExcessAvailable() - (ls.SumCur() - ls.SumMin())
			if extra > avail {
				grant := avail
				if grant < 0 {
					grant = 0
				}
				alloc = bmin + grant
			}
		}
	}
	res.Bandwidth = alloc
	for hop := range states {
		l := hop + 1
		h := &res.Hops[hop]
		h.RelaxedDelay = sched.RelaxedHopDelay(h.HopDelay, t.Req.Delay, res.DelayFloor, sigma, bmin, n)
		switch t.Discipline {
		case sched.DisciplineRCSP:
			var prevRelaxed float64
			if hop > 0 {
				prevRelaxed = res.Hops[hop-1].RelaxedDelay
			}
			h.Buffer = sched.BufferRCSP(sigma, lmax, alloc, prevRelaxed, h.HopDelay, l)
		default:
			h.Buffer = sched.BufferWFQ(sigma, lmax, l)
		}
	}
	// Commit: consume advance reservation for handoffs, then record.
	for hop, ls := range states {
		if t.Kind == KindHandoff || t.Kind == KindPoolClaim {
			take := bmin
			if take > ls.AdvanceReserved {
				take = ls.AdvanceReserved
			}
			ls.AdvanceReserved -= take
		}
		ls.allocs[t.ConnID] = &Alloc{Min: bmin, Cur: alloc, Buffer: res.Hops[hop].Buffer}
	}
	res.Admitted = true
	return res, nil
}
