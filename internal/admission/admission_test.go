package admission

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/qos"
	"armnet/internal/sched"
	"armnet/internal/topology"
)

// threeHop builds host -> sw -> bs -> air with the given capacities.
func threeHop(t *testing.T, caps [3]float64) (*topology.Backbone, topology.Route) {
	t.Helper()
	b := topology.NewBackbone()
	for _, id := range []topology.NodeID{"host", "sw", "bs", "air"} {
		b.MustAddNode(topology.Node{ID: id})
	}
	b.MustAddDuplex(topology.Link{From: "host", To: "sw", Capacity: caps[0], PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "sw", To: "bs", Capacity: caps[1], PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: caps[2], Wireless: true, LossProb: 0.005})
	r, err := b.ShortestPath("host", "air")
	if err != nil {
		t.Fatal(err)
	}
	return b, r
}

func req() qos.Request {
	return qos.Request{
		Bandwidth: qos.Bounds{Min: 64e3, Max: 256e3},
		Delay:     2,
		Jitter:    2,
		Loss:      0.02,
		Traffic:   qos.TrafficSpec{Sigma: 16e3, Rho: 64e3},
	}
}

func TestAdmitHappyPath(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	res, err := ctl.Admit(Test{ConnID: "c1", Req: req(), Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("rejected: %s at %s", res.Reason, res.FailedLink)
	}
	if res.Bandwidth != 64e3 {
		t.Fatalf("mobile allocation = %v, want b_min", res.Bandwidth)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %d", len(res.Hops))
	}
	// Ledger committed on every link.
	for _, l := range route.Links {
		a := ctl.Ledger.Link(l.ID).Alloc("c1")
		if a == nil || a.Min != 64e3 {
			t.Fatalf("allocation missing on %s", l.ID)
		}
	}
	// Relaxed delays must sum to at least the floor and respect the bound.
	sum := 0.0
	for _, h := range res.Hops {
		if h.RelaxedDelay < h.HopDelay {
			t.Fatalf("relaxation tightened hop delay: %+v", h)
		}
		sum += h.RelaxedDelay
	}
	if sum < res.DelayFloor {
		t.Fatalf("relaxed sum %v below floor %v", sum, res.DelayFloor)
	}
}

func TestStaticGetsStampedRate(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	res, err := ctl.Admit(Test{
		ConnID: "c1", Req: req(), Route: route,
		Mobility: qos.Static, BStamp: 100e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	if res.Bandwidth != 164e3 {
		t.Fatalf("static allocation = %v, want b_min + b_stamp", res.Bandwidth)
	}
}

func TestStampClampedToBMax(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	res, err := ctl.Admit(Test{
		ConnID: "c1", Req: req(), Route: route,
		Mobility: qos.Static, BStamp: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth != 256e3 {
		t.Fatalf("allocation = %v, want clamp at b_max", res.Bandwidth)
	}
}

func TestBandwidthRejection(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	// Fill the wireless link with 25 connections of 64 kb/s = 1.6 Mb/s.
	for i := 0; i < 25; i++ {
		res, err := ctl.Admit(Test{ConnID: fmt.Sprintf("c%d", i), Req: req(), Route: route, Mobility: qos.Mobile})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Admitted {
			t.Fatalf("connection %d rejected early: %s", i, res.Reason)
		}
	}
	res, err := ctl.Admit(Test{ConnID: "extra", Req: req(), Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("26th connection admitted beyond capacity")
	}
	if res.Reason != ReasonBandwidth {
		t.Fatalf("reason = %s, want bandwidth", res.Reason)
	}
	if res.FailedLink != "bs->air" {
		t.Fatalf("failed link = %s, want the wireless hop", res.FailedLink)
	}
	// Rejection must not leave partial allocations.
	for _, l := range route.Links {
		if ctl.Ledger.Link(l.ID).Alloc("extra") != nil {
			t.Fatalf("partial allocation left on %s", l.ID)
		}
	}
}

func TestDelayRejection(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	r := req()
	r.Delay = 0.01 // tighter than d_min at b_min = 64 kb/s
	res, err := ctl.Admit(Test{ConnID: "c1", Req: r, Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != ReasonDelay {
		t.Fatalf("admitted=%v reason=%s, want delay rejection", res.Admitted, res.Reason)
	}
}

func TestJitterRejection(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	r := req()
	r.Jitter = 0.1 // (16e3 + 1*8192)/64e3 = 0.378 > 0.1 at the first hop
	res, err := ctl.Admit(Test{ConnID: "c1", Req: r, Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != ReasonJitter {
		t.Fatalf("admitted=%v reason=%s, want jitter rejection", res.Admitted, res.Reason)
	}
}

func TestLossRejection(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	r := req()
	r.Loss = 0.001 // wireless hop alone is 0.005
	res, err := ctl.Admit(Test{ConnID: "c1", Req: r, Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != ReasonLoss {
		t.Fatalf("admitted=%v reason=%s, want loss rejection", res.Admitted, res.Reason)
	}
}

func TestBufferRejection(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	lg := NewLedger(b)
	// Starve the buffer on the middle link.
	lg.Link(route.Links[1].ID).BufferCapacity = 1000
	ctl := NewController(lg)
	res, err := ctl.Admit(Test{ConnID: "c1", Req: req(), Route: route, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != ReasonBuffer {
		t.Fatalf("admitted=%v reason=%s, want buffer rejection", res.Admitted, res.Reason)
	}
	if res.FailedLink != route.Links[1].ID {
		t.Fatalf("failed link = %s", res.FailedLink)
	}
}

func TestAdvanceReservationGatesNewButNotHandoff(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	lg := NewLedger(b)
	wireless := route.Links[2].ID
	// Advance-reserve nearly everything on the wireless hop.
	if err := lg.SetAdvance(wireless, 1.58e6); err != nil {
		t.Fatal(err)
	}
	ctl := NewController(lg)
	res, err := ctl.Admit(Test{ConnID: "new", Req: req(), Route: route, Kind: KindNew, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("new connection admitted through the advance reservation")
	}
	res, err = ctl.Admit(Test{ConnID: "ho", Req: req(), Route: route, Kind: KindHandoff, Mobility: qos.Mobile})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("handoff rejected: %s", res.Reason)
	}
	// The handoff consumed b_min of the advance reservation.
	got := lg.Link(wireless).AdvanceReserved
	if math.Abs(got-(1.58e6-64e3)) > 1e-6 {
		t.Fatalf("advance after handoff = %v", got)
	}
}

func TestPoolGatesNewButAdmitsPoolClaim(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	lg := NewLedger(b)
	wireless := route.Links[2].ID
	lg.Link(wireless).PoolFraction = 0.99
	ctl := NewController(lg)
	res, _ := ctl.Admit(Test{ConnID: "new", Req: req(), Route: route, Kind: KindNew, Mobility: qos.Mobile})
	if res.Admitted {
		t.Fatal("new connection admitted through the pool")
	}
	res, _ = ctl.Admit(Test{ConnID: "sudden", Req: req(), Route: route, Kind: KindPoolClaim, Mobility: qos.Mobile})
	if !res.Admitted {
		t.Fatalf("pool claim rejected: %s", res.Reason)
	}
}

func TestRelease(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	if _, err := ctl.Admit(Test{ConnID: "c1", Req: req(), Route: route, Mobility: qos.Mobile}); err != nil {
		t.Fatal(err)
	}
	ctl.Ledger.Release("c1", route)
	for _, l := range route.Links {
		if ctl.Ledger.Link(l.ID).Alloc("c1") != nil {
			t.Fatalf("allocation survives release on %s", l.ID)
		}
	}
	// Idempotent.
	ctl.Ledger.Release("c1", route)
}

func TestValidationErrors(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	if _, err := ctl.Admit(Test{ConnID: "", Req: req(), Route: route}); !errors.Is(err, ErrValidation) {
		t.Fatalf("empty id error = %v", err)
	}
	if _, err := ctl.Admit(Test{ConnID: "x", Req: qos.Request{}, Route: route}); !errors.Is(err, ErrValidation) {
		t.Fatalf("bad request error = %v", err)
	}
	if _, err := ctl.Admit(Test{ConnID: "x", Req: req()}); !errors.Is(err, ErrValidation) {
		t.Fatalf("empty route error = %v", err)
	}
}

func TestSetCapacityAndAdvanceClamping(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	lg := NewLedger(b)
	id := route.Links[2].ID
	if err := lg.SetCapacity(id, 800e3); err != nil {
		t.Fatal(err)
	}
	if got := lg.Link(id).Capacity; got != 800e3 {
		t.Fatalf("capacity = %v", got)
	}
	if err := lg.SetCapacity(id, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := lg.SetCapacity("nope", 1); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("unknown link error = %v", err)
	}
	if err := lg.AddAdvance(id, 1e9); err != nil {
		t.Fatal(err)
	}
	if got := lg.Link(id).AdvanceReserved; got != 800e3 {
		t.Fatalf("advance clamped to %v, want capacity", got)
	}
	if err := lg.AddAdvance(id, -1e9); err != nil {
		t.Fatal(err)
	}
	if got := lg.Link(id).AdvanceReserved; got != 0 {
		t.Fatalf("advance floor = %v, want 0", got)
	}
}

func TestRCSPBufferCommit(t *testing.T) {
	b, route := threeHop(t, [3]float64{10e6, 10e6, 1.6e6})
	ctl := NewController(NewLedger(b))
	res, err := ctl.Admit(Test{
		ConnID: "c1", Req: req(), Route: route,
		Mobility: qos.Mobile, Discipline: sched.DisciplineRCSP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	// RCSP buffer must not grow with hop index the way WFQ's does;
	// compare hop 3 requirement against the WFQ formula.
	wfqHop3 := sched.BufferWFQ(req().Traffic.Sigma, DefaultLMax, 3)
	if res.Hops[2].Buffer >= wfqHop3+DefaultLMax*2 {
		t.Logf("rcsp hop3 buffer %v, wfq %v", res.Hops[2].Buffer, wfqHop3)
	}
	for _, h := range res.Hops {
		if h.Buffer <= 0 {
			t.Fatalf("non-positive buffer committed: %+v", h)
		}
	}
}

// Property: admitted bandwidth is always inside the requested bounds and
// the ledger never over-commits a link beyond capacity minus advance
// reservation (in terms of minimum guarantees).
func TestQuickNoOvercommit(t *testing.T) {
	f := func(seed int64, nConns uint8) bool {
		b, route := func() (*topology.Backbone, topology.Route) {
			bb := topology.NewBackbone()
			for _, id := range []topology.NodeID{"h", "s", "a"} {
				bb.MustAddNode(topology.Node{ID: id})
			}
			bb.MustAddDuplex(topology.Link{From: "h", To: "s", Capacity: 5e6})
			bb.MustAddDuplex(topology.Link{From: "s", To: "a", Capacity: 1.6e6})
			r, _ := bb.ShortestPath("h", "a")
			return bb, r
		}()
		ctl := NewController(NewLedger(b))
		total := int(nConns%40) + 1
		for i := 0; i < total; i++ {
			r := req()
			// Vary bandwidths deterministically off the seed.
			r.Bandwidth.Min = float64(16e3 + (seed+int64(i)*7919)%5*16e3)
			if r.Bandwidth.Min <= 0 {
				r.Bandwidth.Min = 16e3
			}
			r.Bandwidth.Max = r.Bandwidth.Min * 4
			r.Traffic.Rho = r.Bandwidth.Min
			res, err := ctl.Admit(Test{ConnID: fmt.Sprintf("c%d", i), Req: r, Route: route, Mobility: qos.Mobile})
			if err != nil {
				return false
			}
			if res.Admitted && (res.Bandwidth < r.Bandwidth.Min-1e-9 || res.Bandwidth > r.Bandwidth.Max+1e-9) {
				return false
			}
		}
		for _, ls := range ctl.Ledger.Links() {
			if ls.SumMin() > ls.Capacity+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: on random requests over random 1–4 hop paths, an admitted
// connection's relaxed per-hop delays always sum to at least the end-to-
// end floor and never individually fall below the raw hop delay, and the
// committed bandwidth respects the bounds.
func TestQuickRelaxationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(mod int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng % mod
			if v < 0 {
				v += mod
			}
			return v
		}
		hops := int(next(4)) + 1
		bb := topology.NewBackbone()
		prev := topology.NodeID("n0")
		bb.MustAddNode(topology.Node{ID: prev})
		var links []topology.Link
		for i := 1; i <= hops; i++ {
			id := topology.NodeID(fmt.Sprintf("n%d", i))
			bb.MustAddNode(topology.Node{ID: id})
			l := topology.Link{
				From: prev, To: id,
				Capacity:  float64(next(20)+1) * 1e6,
				PropDelay: float64(next(5)) * 1e-3,
			}
			bb.MustAddDuplex(l)
			links = append(links, l)
			prev = id
		}
		route, err := bb.ShortestPath("n0", prev)
		if err != nil {
			return false
		}
		r := qos.Request{
			Bandwidth: qos.Bounds{Min: float64(next(200)+8) * 1e3},
			Delay:     5, Jitter: 10, Loss: 0.5,
			Traffic: qos.TrafficSpec{Sigma: float64(next(64)+1) * 1e3},
		}
		r.Bandwidth.Max = r.Bandwidth.Min * float64(next(4)+1)
		r.Traffic.Rho = r.Bandwidth.Min
		ctl := NewController(NewLedger(bb))
		res, err := ctl.Admit(Test{ConnID: "x", Req: r, Route: route, Mobility: qos.Mobile})
		if err != nil {
			return false
		}
		if !res.Admitted {
			return true // rejection is fine; invariants apply to admits
		}
		if res.Bandwidth < r.Bandwidth.Min-1e-9 || res.Bandwidth > r.Bandwidth.Max+1e-9 {
			return false
		}
		sum := 0.0
		for _, h := range res.Hops {
			if h.RelaxedDelay < h.HopDelay-1e-12 {
				return false
			}
			sum += h.RelaxedDelay
		}
		return sum >= res.DelayFloor-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
