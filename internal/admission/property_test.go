package admission

import (
	"fmt"
	"testing"

	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/sched"
	"armnet/internal/topology"
)

// ledgerSnapshot captures the externally observable reservation state of
// every link, used to prove the admission test is all-or-nothing.
type ledgerSnapshot map[topology.LinkID]linkSnapshot

type linkSnapshot struct {
	sumMin, sumCur, sumBuffer, advance float64
	conns                              int
}

func snapshot(lg *Ledger) ledgerSnapshot {
	s := make(ledgerSnapshot)
	for _, ls := range lg.Links() {
		// Sum in sorted connection order: SumMin and friends iterate a map,
		// so two calls on identical state can differ in the last ulp.
		snap := linkSnapshot{advance: ls.AdvanceReserved, conns: ls.NumConns()}
		for _, id := range ls.Conns() {
			a := ls.Alloc(id)
			snap.sumMin += a.Min
			snap.sumCur += a.Cur
			snap.sumBuffer += a.Buffer
		}
		s[ls.Link.ID] = snap
	}
	return s
}

// randomRequest draws a QoS request loose enough to exercise both
// admissions and bandwidth rejections as links fill up.
func randomRequest(rng *randx.Rand) qos.Request {
	bmin := 16e3 + rng.Float64()*240e3
	return qos.Request{
		Bandwidth: qos.Bounds{Min: bmin, Max: bmin * (1 + rng.Float64()*3)},
		Delay:     2 + rng.Float64()*8,
		Jitter:    2 + rng.Float64()*8,
		Loss:      0.02 + rng.Float64()*0.05,
		Traffic:   qos.TrafficSpec{Sigma: bmin / 4, Rho: bmin},
	}
}

// buildChain constructs a linear backbone of n wired hops plus a wireless
// tail and returns the end-to-end route.
func buildChain(t *testing.T, hops int, wired, wireless float64) (*topology.Backbone, topology.Route) {
	t.Helper()
	b := topology.NewBackbone()
	prev := topology.NodeID("host")
	b.MustAddNode(topology.Node{ID: prev})
	for i := 0; i < hops; i++ {
		next := topology.NodeID(fmt.Sprintf("sw%d", i))
		b.MustAddNode(topology.Node{ID: next})
		b.MustAddDuplex(topology.Link{From: prev, To: next, Capacity: wired, PropDelay: 1e-3})
		prev = next
	}
	b.MustAddNode(topology.Node{ID: "air"})
	b.MustAddDuplex(topology.Link{From: prev, To: "air", Capacity: wireless, Wireless: true, LossProb: 0.005})
	r, err := b.ShortestPath("host", "air")
	if err != nil {
		t.Fatal(err)
	}
	return b, r
}

// TestLedgerNeverOvercommits drives random admitted connection sets
// (mixed kinds, mobilities, disciplines, occasional releases and advance
// reservations) through the controller and asserts the safety invariants
// of Table 2 after every operation: guaranteed bandwidth and committed
// buffers never exceed any link's capacity, and Cur stays within
// [Min, capacity-feasible] bounds.
func TestLedgerNeverOvercommits(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := randx.New(int64(trial + 1))
		hops := 1 + rng.Intn(4)
		wireless := 0.8e6 + rng.Float64()*1.6e6
		b, route := buildChain(t, hops, 10e6, wireless)
		lg := NewLedger(b)
		ctl := NewController(lg)
		admitted := map[string]topology.Route{}

		check := func(op string) {
			t.Helper()
			for _, ls := range lg.Links() {
				if ls.SumMin() > ls.Capacity+1e-9 {
					t.Fatalf("trial %d after %s: link %s over-committed on b_min: %v > %v",
						trial, op, ls.Link.ID, ls.SumMin(), ls.Capacity)
				}
				if ls.SumBuffer() > ls.BufferCapacity+1e-9 {
					t.Fatalf("trial %d after %s: link %s over-committed buffers: %v > %v",
						trial, op, ls.Link.ID, ls.SumBuffer(), ls.BufferCapacity)
				}
				for _, id := range ls.Conns() {
					a := ls.Alloc(id)
					if a.Cur < a.Min-1e-9 {
						t.Fatalf("trial %d after %s: %s on %s below guaranteed minimum: %v < %v",
							trial, op, id, ls.Link.ID, a.Cur, a.Min)
					}
				}
			}
		}

		for op := 0; op < 120; op++ {
			switch {
			case len(admitted) > 0 && rng.Bernoulli(0.2):
				// Release a random admitted connection (sorted draw keeps
				// the trial deterministic).
				ids := make([]string, 0, len(admitted))
				for id := range admitted {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				lg.Release(id, admitted[id])
				delete(admitted, id)
				check("release")
			case rng.Bernoulli(0.15):
				// Advance-reserve a random slice on a random link.
				links := lg.Links()
				ls := links[rng.Intn(len(links))]
				if err := lg.AddAdvance(ls.Link.ID, (rng.Float64()-0.3)*wireless/2); err != nil {
					t.Fatal(err)
				}
				check("advance")
			default:
				kind := Kind(rng.Intn(3))
				mob := qos.Mobile
				if rng.Bernoulli(0.5) {
					mob = qos.Static
				}
				disc := sched.DisciplineWFQ
				if rng.Bernoulli(0.3) {
					disc = sched.DisciplineRCSP
				}
				id := fmt.Sprintf("c%d-%d", trial, op)
				res, err := ctl.Admit(Test{
					ConnID: id, Req: randomRequest(rng), Route: route, Kind: kind,
					Mobility: mob, BStamp: rng.Float64() * 64e3, Discipline: disc,
				})
				if err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
				if res.Admitted {
					admitted[id] = route
				}
				check("admit")
			}
		}
	}
}

// TestRejectionLeavesNoTrace asserts the round-trip structure of Table 2:
// when the forward pass rejects, the reverse pass must never run — no
// relaxation appears in the result and no ledger state changes. The trial
// loads links until rejections occur, snapshotting around every attempt.
func TestRejectionLeavesNoTrace(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := randx.New(int64(1000 + trial))
		hops := 1 + rng.Intn(3)
		// A tight wireless tail forces bandwidth rejections quickly.
		b, route := buildChain(t, hops, 10e6, 0.4e6+rng.Float64()*0.4e6)
		ctl := NewController(NewLedger(b))
		rejections := 0
		for op := 0; op < 80; op++ {
			kind := Kind(rng.Intn(3))
			mob := qos.Mobile
			if rng.Bernoulli(0.5) {
				mob = qos.Static
			}
			before := snapshot(ctl.Ledger)
			id := fmt.Sprintf("r%d-%d", trial, op)
			res, err := ctl.Admit(Test{
				ConnID: id, Req: randomRequest(rng), Route: route, Kind: kind,
				Mobility: mob, BStamp: rng.Float64() * 64e3,
			})
			if err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			if res.Admitted {
				continue
			}
			rejections++
			if res.Reason == "" {
				t.Fatalf("trial %d op %d: rejection without reason", trial, op)
			}
			// Reverse pass must not have run: no committed bandwidth, no
			// relaxed delays or buffers on any inspected hop.
			if res.Bandwidth != 0 {
				t.Fatalf("trial %d op %d: rejected but bandwidth committed: %v", trial, op, res.Bandwidth)
			}
			for _, h := range res.Hops {
				if h.RelaxedDelay != 0 || h.Buffer != 0 {
					t.Fatalf("trial %d op %d: rejected but reverse pass touched hop %s: %+v",
						trial, op, h.Link, h)
				}
			}
			// And the ledger must be byte-identical to the snapshot.
			after := snapshot(ctl.Ledger)
			for linkID, want := range before {
				if got := after[linkID]; got != want {
					t.Fatalf("trial %d op %d: rejection mutated link %s: before %+v after %+v",
						trial, op, linkID, want, got)
				}
			}
			if ctl.Ledger.Link(route.Links[0].ID).Alloc(id) != nil {
				t.Fatalf("trial %d op %d: rejected connection left an allocation", trial, op)
			}
		}
		if rejections == 0 {
			t.Fatalf("trial %d: workload produced no rejections — property vacuous", trial)
		}
	}
}
