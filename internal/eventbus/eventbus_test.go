package eventbus

import (
	"bytes"
	"strings"
	"testing"
)

// fakeClock lets the tests control the stamped time directly.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestPublishStampsTimeAndSeq(t *testing.T) {
	clk := &fakeClock{}
	bus := New(clk)
	var got []Record
	bus.Subscribe(func(r Record) { got = append(got, r) })

	bus.Publish(ConnectionRequested{Portable: "p0"})
	clk.t = 2.5
	bus.Publish(ConnectionBlocked{Portable: "p0", Reason: "bandwidth"})

	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].Seq != 1 || got[0].Time != 0 {
		t.Errorf("first record stamped (%d, %g), want (1, 0)", got[0].Seq, got[0].Time)
	}
	if got[1].Seq != 2 || got[1].Time != 2.5 {
		t.Errorf("second record stamped (%d, %g), want (2, 2.5)", got[1].Seq, got[1].Time)
	}
	if _, ok := got[1].Event.(ConnectionBlocked); !ok {
		t.Errorf("second event is %T, want ConnectionBlocked", got[1].Event)
	}
	if bus.Seq() != 2 {
		t.Errorf("Seq() = %d, want 2", bus.Seq())
	}
}

func TestKindFiltering(t *testing.T) {
	bus := New(&fakeClock{})
	var holds, aborts, all int
	bus.Subscribe(func(Record) { holds++ }, KindSignalHold)
	bus.Subscribe(func(r Record) {
		switch r.Event.Kind() {
		case KindSignalHold, KindSignalAbort:
			aborts++
		}
	}, KindSignalHold, KindSignalAbort)
	bus.Subscribe(func(Record) { all++ })

	bus.Publish(SignalHold{Conn: "c", Link: "l"})
	bus.Publish(SignalAbort{Conn: "c", Reason: "timeout"})
	bus.Publish(SignalCommit{Conn: "c"})

	if holds != 1 {
		t.Errorf("hold-only subscriber saw %d events, want 1", holds)
	}
	if aborts != 2 {
		t.Errorf("hold+abort subscriber saw %d events, want 2", aborts)
	}
	if all != 3 {
		t.Errorf("catch-all subscriber saw %d events, want 3", all)
	}
}

func TestDispatchOrderIsSubscriptionOrder(t *testing.T) {
	bus := New(&fakeClock{})
	var order []string
	bus.Subscribe(func(Record) { order = append(order, "kind-a") }, KindPoolClaim)
	bus.Subscribe(func(Record) { order = append(order, "kind-b") }, KindPoolClaim)
	bus.Subscribe(func(Record) { order = append(order, "all-a") })
	bus.Subscribe(func(Record) { order = append(order, "all-b") })

	bus.Publish(PoolClaim{Portable: "p"})

	want := "kind-a,kind-b,all-a,all-b"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("dispatch order %q, want %q", got, want)
	}
}

func TestNilBusAndNoSubscribers(t *testing.T) {
	var nilBus *Bus
	nilBus.Publish(ConnectionClosed{Conn: "c"}) // must not panic
	if nilBus.Seq() != 0 {
		t.Errorf("nil bus Seq() = %d, want 0", nilBus.Seq())
	}

	bus := New(&fakeClock{})
	bus.Publish(ConnectionClosed{Conn: "c"})
	if bus.Seq() != 1 {
		t.Errorf("subscriber-less bus Seq() = %d, want 1", bus.Seq())
	}
}

func TestKindStringsAreUniqueAndNamed(t *testing.T) {
	seen := map[string]Kind{}
	for k := 0; k < kindCount; k++ {
		name := Kind(k).String()
		if name == "" || name == "unknown" {
			t.Errorf("Kind(%d) has no wire name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Kind(%d) and Kind(%d) share wire name %q", k, prev, name)
		}
		seen[name] = Kind(k)
	}
}

func TestRecorderEmitsDeterministicJSONL(t *testing.T) {
	clk := &fakeClock{}
	bus := New(clk)
	var buf bytes.Buffer
	rec := AttachRecorder(bus, &buf)

	bus.Publish(ConnectionRequested{Portable: "p0"})
	clk.t = 1.25
	bus.Publish(AdmissionDecision{Conn: "conn-0", Class: "new", Admitted: true, Bandwidth: 64000})

	want := `{"seq":1,"t":0,"type":"connection-requested","ev":{"portable":"p0"}}
{"seq":2,"t":1.25,"type":"admission-decision","ev":{"conn":"conn-0","kind":"new","admitted":true,"bw":64000}}
`
	if got := buf.String(); got != want {
		t.Errorf("trace drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if rec.Err() != nil {
		t.Errorf("recorder error: %v", rec.Err())
	}
}

// errWriter fails after the first write to exercise error latching.
type errWriter struct{ n int }

type sentinelErr struct{}

func (sentinelErr) Error() string { return "sentinel" }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, sentinelErr{}
	}
	return len(p), nil
}

func TestRecorderLatchesFirstWriteError(t *testing.T) {
	bus := New(&fakeClock{})
	w := &errWriter{}
	rec := AttachRecorder(bus, w)
	bus.Publish(ConnectionRequested{Portable: "a"})
	bus.Publish(ConnectionRequested{Portable: "b"})
	bus.Publish(ConnectionRequested{Portable: "c"})
	if rec.Err() == nil {
		t.Fatal("expected latched write error")
	}
	if w.n != 2 {
		t.Errorf("writer called %d times, want 2 (latched after first failure)", w.n)
	}
}
