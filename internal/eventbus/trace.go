package eventbus

import (
	"encoding/json"
	"io"
)

// traceLine is the JSONL envelope. Struct-based marshaling keeps the
// field order fixed, which is what makes traces byte-comparable.
type traceLine struct {
	Seq  uint64  `json:"seq"`
	Time float64 `json:"t"`
	Type string  `json:"type"`
	Ev   Event   `json:"ev"`
}

// Recorder serializes every record it observes as one JSON line:
//
//	{"seq":1,"t":0,"type":"connection-requested","ev":{"portable":"p0"}}
//
// Encoding is deterministic: the envelope and all event payloads are
// structs, so json.Marshal emits fields in declaration order, and float
// formatting uses Go's shortest-representation rule.
type Recorder struct {
	w   io.Writer
	err error
}

// AttachRecorder subscribes a new JSONL recorder for every event on the
// bus and returns it. The first write error is latched and stops further
// output; check Err after the run.
func AttachRecorder(bus *Bus, w io.Writer) *Recorder {
	r := &Recorder{w: w}
	bus.Subscribe(r.observe)
	return r
}

func (r *Recorder) observe(rec Record) {
	if r.err != nil {
		return
	}
	line, err := json.Marshal(traceLine{Seq: rec.Seq, Time: rec.Time, Type: rec.Event.Kind().String(), Ev: rec.Event})
	if err == nil {
		line = append(line, '\n')
		_, err = r.w.Write(line)
	}
	r.err = err
}

// Err reports the first error encountered while writing the trace.
func (r *Recorder) Err() error { return r.err }
