package eventbus

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceLine is the JSONL envelope. Struct-based marshaling keeps the
// field order fixed, which is what makes traces byte-comparable.
type traceLine struct {
	Seq  uint64  `json:"seq"`
	Time float64 `json:"t"`
	Type string  `json:"type"`
	Ev   Event   `json:"ev"`
}

// Recorder serializes every record it observes as one JSON line:
//
//	{"seq":1,"t":0,"type":"connection-requested","ev":{"portable":"p0"}}
//
// Encoding is deterministic: the envelope and all event payloads are
// structs, so json.Marshal emits fields in declaration order, and float
// formatting uses Go's shortest-representation rule.
//
// The recorder also audits the stream it is asked to serialize: the
// sequence numbers it observes must increase by exactly one after the
// first record, since a gap or regression means the trace on disk is not
// the stream the bus published (a second recorder, a re-attached bus, or
// records replayed out of order). Violations latch an error like write
// failures do.
type Recorder struct {
	enc     *json.Encoder
	err     error
	lastSeq uint64
	started bool
}

// AttachRecorder subscribes a new JSONL recorder for every event on the
// bus and returns it. The first write or sequence error is latched and
// stops further output; check Err after the run.
func AttachRecorder(bus *Bus, w io.Writer) *Recorder {
	r := &Recorder{enc: json.NewEncoder(w)}
	bus.Subscribe(r.observe)
	return r
}

func (r *Recorder) observe(rec Record) {
	if r.err != nil {
		return
	}
	if r.started && rec.Seq != r.lastSeq+1 {
		r.err = fmt.Errorf("eventbus: trace sequence broken: observed seq %d after %d", rec.Seq, r.lastSeq)
		return
	}
	r.started = true
	r.lastSeq = rec.Seq
	// Encoder.Encode is byte-for-byte json.Marshal plus the trailing
	// newline, but reuses its encode buffer across events instead of
	// allocating a fresh one per line.
	err := r.enc.Encode(traceLine{Seq: rec.Seq, Time: rec.Time, Type: rec.Event.Kind().String(), Ev: rec.Event})
	if err != nil {
		r.err = fmt.Errorf("eventbus: trace write: %w", err)
	}
}

// Err reports the first error encountered while writing the trace.
func (r *Recorder) Err() error { return r.err }
