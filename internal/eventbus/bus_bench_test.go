package eventbus

import (
	"io"
	"testing"
)

// The benchmarks track the cost the bus adds to every control-plane
// decision. `make bench` runs them so later PRs can watch publish
// overhead as the subscriber population grows.

func BenchmarkPublishNoSubscribers(b *testing.B) {
	bus := New(&fakeClock{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pub(bus, BandwidthChange{Conn: "conn-1", Bandwidth: 64000})
	}
}

func BenchmarkPublishOneKindSubscriber(b *testing.B) {
	bus := New(&fakeClock{})
	var n int
	bus.Subscribe(func(Record) { n++ }, KindBandwidthChange)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pub(bus, BandwidthChange{Conn: "conn-1", Bandwidth: 64000})
	}
	_ = n
}

func BenchmarkPublishFourSubscribers(b *testing.B) {
	bus := New(&fakeClock{})
	var n int
	bus.Subscribe(func(Record) { n++ }, KindBandwidthChange)
	bus.Subscribe(func(Record) { n++ }, KindBandwidthChange, KindConnectionAdmitted)
	bus.Subscribe(func(Record) { n++ })
	bus.Subscribe(func(Record) { n++ })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pub(bus, BandwidthChange{Conn: "conn-1", Bandwidth: 64000})
	}
	_ = n
}

func BenchmarkPublishWithJSONLRecorder(b *testing.B) {
	bus := New(&fakeClock{})
	AttachRecorder(bus, io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pub(bus, BandwidthChange{Conn: "conn-1", Bandwidth: 64000})
	}
}
