package eventbus

// Kind identifies the concrete type of an Event. The set is closed: the
// control plane's observable vocabulary is defined here, and subscribers
// can switch exhaustively on it.
type Kind int

const (
	// KindConnectionRequested marks the arrival of a new-connection
	// request, before any admission test runs.
	KindConnectionRequested Kind = iota
	// KindConnectionAdmitted marks a new connection entering service
	// (possibly best-effort).
	KindConnectionAdmitted
	// KindConnectionBlocked marks a new connection rejected outright.
	KindConnectionBlocked
	// KindConnectionClosed marks a voluntary teardown.
	KindConnectionClosed
	// KindAdmissionDecision is the trace-level outcome of every
	// admission.Controller.Admit call, including renegotiations and
	// per-receiver multicast legs that the aggregate counters ignore.
	KindAdmissionDecision
	// KindHandoffAttempt marks one connection starting a handoff re-test
	// in the destination cell.
	KindHandoffAttempt
	// KindHandoffOutcome resolves an attempt: carried over or dropped.
	KindHandoffOutcome
	// KindHandoffLatency reports the signaling latency charged to one
	// connection's handoff (predicted cells pay less, §6.2).
	KindHandoffLatency
	// KindPoolClaim marks an unpredicted handoff dipping into the shared
	// B_dyn pool.
	KindPoolClaim
	// KindAdvanceReservation marks b_resv,l being (re)placed in a cell
	// for a predicted portable.
	KindAdvanceReservation
	// KindPolicyReservation marks a reserve-package policy (meeting
	// schedule, lounge heuristic) holding capacity in a cell.
	KindPolicyReservation
	// KindBandwidthChange marks the rate-adaptation layer committing a
	// new allocation to a running connection.
	KindBandwidthChange
	// KindAdaptationRound marks one ADVERTISE round of the maxmin
	// protocol stamping a rate for a connection.
	KindAdaptationRound
	// KindMaxminConverged marks the maxmin protocol going quiescent: no
	// active or dirty sessions remain.
	KindMaxminConverged
	// KindCapacityChange marks a wireless channel's effective capacity
	// shifting to a new level.
	KindCapacityChange
	// KindSignalHold marks a tentative per-link hold placed by the
	// signaling plane's forward pass (§5.1).
	KindSignalHold
	// KindSignalCommit marks a signaling session converting its holds
	// into a committed connection.
	KindSignalCommit
	// KindSignalAbort marks a signaling session rolling its holds back.
	KindSignalAbort
	// KindFlowStarted marks a packet-level flow starting in the data
	// plane.
	KindFlowStarted
	// KindFlowStopped marks a data-plane flow stopping, with its final
	// packet accounting.
	KindFlowStopped
	// KindFaultMessage marks a fault-injection rule acting on one control
	// message (drop, duplicate, or delay).
	KindFaultMessage
	// KindFaultComponent marks an injected component fault or its
	// scheduled restoration (link down/up, cell outage, zone crash,
	// wireless blackout, signaling-plane crash).
	KindFaultComponent
	// KindControlRetransmit marks a control-plane sender retrying a lost
	// message after a backoff.
	KindControlRetransmit
	// KindHoldReclaimed marks a lease expiring on an orphaned tentative
	// hold or advance reservation, returning the capacity to the ledger.
	KindHoldReclaimed
	// KindReadvertise marks the periodic re-ADVERTISE sweep kicking
	// connections whose committed rate drifted from the maxmin fixpoint.
	KindReadvertise
	// KindInvariantViolation marks the fault auditor detecting a broken
	// recovery invariant.
	KindInvariantViolation
	// KindOverloadStage marks a cell's overload controller moving between
	// escalation stages (normal, degrade, shed-static, shed-mobile).
	KindOverloadStage
	// KindSetupShed marks a new-connection setup refused by the overload
	// controller before any signaling started (priority shed, token
	// bucket, or breaker fast-fail).
	KindSetupShed
	// KindDegradeCascade marks one connection forced to b_min (or
	// restored from it) by an overload degrade cascade.
	KindDegradeCascade
	// KindBreakerState marks the signaling circuit breaker changing state
	// (closed, open, half-open).
	KindBreakerState
	// KindWireDelivery marks a testnet node receiving one encoded control
	// frame off the wire (live mode or in-process loopback).
	KindWireDelivery

	kindCount int = iota
)

var kindNames = [kindCount]string{
	KindConnectionRequested: "connection-requested",
	KindConnectionAdmitted:  "connection-admitted",
	KindConnectionBlocked:   "connection-blocked",
	KindConnectionClosed:    "connection-closed",
	KindAdmissionDecision:   "admission-decision",
	KindHandoffAttempt:      "handoff-attempt",
	KindHandoffOutcome:      "handoff-outcome",
	KindHandoffLatency:      "handoff-latency",
	KindPoolClaim:           "pool-claim",
	KindAdvanceReservation:  "advance-reservation",
	KindPolicyReservation:   "policy-reservation",
	KindBandwidthChange:     "bandwidth-change",
	KindAdaptationRound:     "adaptation-round",
	KindMaxminConverged:     "maxmin-converged",
	KindCapacityChange:      "capacity-change",
	KindSignalHold:          "signal-hold",
	KindSignalCommit:        "signal-commit",
	KindSignalAbort:         "signal-abort",
	KindFlowStarted:         "flow-started",
	KindFlowStopped:         "flow-stopped",
	KindFaultMessage:        "fault-message",
	KindFaultComponent:      "fault-component",
	KindControlRetransmit:   "control-retransmit",
	KindHoldReclaimed:       "hold-reclaimed",
	KindReadvertise:         "readvertise",
	KindInvariantViolation:  "invariant-violation",
	KindOverloadStage:       "overload-stage",
	KindSetupShed:           "setup-shed",
	KindDegradeCascade:      "degrade-cascade",
	KindBreakerState:        "breaker-state",
	KindWireDelivery:        "wire-delivery",
}

// String returns the stable wire name used in JSONL traces.
func (k Kind) String() string {
	if k < 0 || int(k) >= kindCount {
		return "unknown"
	}
	return kindNames[k]
}

// Event is the sealed payload interface: exactly the types in this file
// implement it.
type Event interface {
	Kind() Kind
}

// ConnectionRequested is published when a portable asks for a new
// connection, before a route or ID exists (Conn is empty until admission
// is attempted).
type ConnectionRequested struct {
	Portable string `json:"portable"`
}

// ConnectionAdmitted is published when a new connection enters service.
// BestEffort marks connections carried without a QoS contract.
type ConnectionAdmitted struct {
	Conn       string  `json:"conn"`
	Portable   string  `json:"portable"`
	Bandwidth  float64 `json:"bw"`
	BestEffort bool    `json:"best_effort,omitempty"`
}

// ConnectionBlocked is published when a new connection is rejected.
type ConnectionBlocked struct {
	Portable string `json:"portable"`
	Reason   string `json:"reason,omitempty"`
}

// ConnectionClosed is published on voluntary teardown.
type ConnectionClosed struct {
	Conn     string `json:"conn"`
	Portable string `json:"portable"`
}

// AdmissionDecision is published by the admission controller for every
// completed Table 2 round trip (validation errors excluded).
type AdmissionDecision struct {
	Conn      string  `json:"conn"`
	Class     string  `json:"kind"` // "new", "handoff", "pool-claim"
	Admitted  bool    `json:"admitted"`
	Reason    string  `json:"reason,omitempty"`
	Link      string  `json:"link,omitempty"` // forward-pass failure site
	Bandwidth float64 `json:"bw,omitempty"`   // committed b_j on success
}

// HandoffAttempt is published once per connection re-tested in the
// destination cell of a handoff.
type HandoffAttempt struct {
	Conn      string `json:"conn"`
	Portable  string `json:"portable"`
	From      string `json:"from"`
	To        string `json:"to"`
	Predicted bool   `json:"predicted"`
}

// HandoffOutcome resolves a handoff attempt for one connection.
type HandoffOutcome struct {
	Conn     string `json:"conn"`
	Portable string `json:"portable"`
	Dropped  bool   `json:"dropped"`
}

// HandoffLatency reports the signaling latency charged to one
// connection's handoff.
type HandoffLatency struct {
	Conn      string  `json:"conn"`
	Portable  string  `json:"portable"`
	Predicted bool    `json:"predicted"`
	Latency   float64 `json:"latency"`
}

// PoolClaim is published when an unpredicted handoff claims from B_dyn.
type PoolClaim struct {
	Portable string `json:"portable"`
	From     string `json:"from"`
	To       string `json:"to"`
}

// AdvanceReservation is published when b_resv,l is placed for a portable
// predicted to enter a cell.
type AdvanceReservation struct {
	Cell     string  `json:"cell"`
	Portable string  `json:"portable"`
	Amount   float64 `json:"amount"`
}

// PolicyReservation is published when a reserve-package plan (meeting
// schedule, cafeteria/lounge heuristic) holds capacity in a cell.
type PolicyReservation struct {
	Cell   string  `json:"cell"`
	Source string  `json:"source"`
	Amount float64 `json:"amount"`
}

// BandwidthChange is published when rate adaptation commits a new
// allocation to a running connection.
type BandwidthChange struct {
	Conn      string  `json:"conn"`
	Bandwidth float64 `json:"bw"`
}

// AdaptationRound is published for each maxmin ADVERTISE round that
// stamps a rate for a connection.
type AdaptationRound struct {
	Conn  string  `json:"conn"`
	Round int     `json:"round"`
	Stamp float64 `json:"stamp"`
}

// MaxminConverged is published when the maxmin protocol goes quiescent.
// Sessions and Messages are the protocol's cumulative totals at that
// point, so the deltas between consecutive events cost one burst.
type MaxminConverged struct {
	Sessions int `json:"sessions"`
	Messages int `json:"messages"`
}

// CapacityChange is published when a wireless channel's effective
// capacity moves to a new level.
type CapacityChange struct {
	Link     string  `json:"link"`
	Capacity float64 `json:"capacity"`
}

// SignalHold is published when the signaling forward pass places a
// tentative per-link hold.
type SignalHold struct {
	Conn string `json:"conn"`
	Link string `json:"link"`
}

// SignalCommit is published when a signaling session commits, carrying
// the end-to-end setup latency.
type SignalCommit struct {
	Conn    string  `json:"conn"`
	Latency float64 `json:"latency"`
}

// SignalAbort is published when a signaling session rolls back its
// tentative holds. Hop is the 0-based index the session had reached.
type SignalAbort struct {
	Conn   string `json:"conn"`
	Reason string `json:"reason"`
	Hop    int    `json:"hop"`
}

// FlowStarted is published when a packet-level flow begins.
type FlowStarted struct {
	Conn string  `json:"conn"`
	Rate float64 `json:"rate"`
}

// FlowStopped is published when a packet-level flow ends.
type FlowStopped struct {
	Conn      string `json:"conn"`
	Sent      int    `json:"sent"`
	Delivered int    `json:"delivered"`
	Lost      int    `json:"lost"`
}

// FaultMessage is published when a fault-injection rule fires on one
// control message. Proto is "signal" or "maxmin"; Action is "drop",
// "dup", or "delay" (Delay carries the added latency).
type FaultMessage struct {
	Proto  string  `json:"proto"`
	Action string  `json:"action"`
	Conn   string  `json:"conn"`
	Hop    int     `json:"hop"`
	Delay  float64 `json:"delay,omitempty"`
}

// FaultComponent is published when a scheduled component fault (or its
// restoration) fires: "link-down"/"link-up", "cell-out"/"cell-restore",
// "zone-crash", "blackout"/"blackout-end", "signal-crash".
type FaultComponent struct {
	Action string  `json:"action"`
	Target string  `json:"target,omitempty"`
	For    float64 `json:"for,omitempty"` // scheduled outage duration
}

// ControlRetransmit is published when a control-plane sender times out
// on a lost message and retries. Proto is "signal" or "maxmin"; Attempt
// is 1-based.
type ControlRetransmit struct {
	Proto   string `json:"proto"`
	Conn    string `json:"conn"`
	Hop     int    `json:"hop"`
	Attempt int    `json:"attempt"`
}

// HoldReclaimed is published when a lease expires on state orphaned by a
// crash: a signaling plane's tentative hold or a stale advance
// reservation returns to the ledger.
type HoldReclaimed struct {
	Conn   string  `json:"conn,omitempty"`
	Link   string  `json:"link"`
	Amount float64 `json:"amount"`
	Reason string  `json:"reason"`
}

// Readvertise is published when the periodic re-ADVERTISE sweep restarts
// adaptation for connections that drifted from the maxmin fixpoint
// (typically after control-packet loss ate an UPDATE).
type Readvertise struct {
	Kicked int `json:"kicked"`
}

// InvariantViolation is published by the fault auditor when a recovery
// invariant fails to hold.
type InvariantViolation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// OverloadStage is published when a cell's overload controller changes
// escalation stage. Util is the EWMA utilization that drove the
// transition; Queue is the signaling setup-queue depth at sample time.
type OverloadStage struct {
	Cell  string  `json:"cell"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	Util  float64 `json:"util"`
	Queue int     `json:"queue,omitempty"`
}

// SetupShed is published when the overload controller refuses a new
// setup before signaling starts. Class is "new-static" or "new-mobile"
// (handoffs are never shed); Reason is "shed-static", "shed-mobile",
// "bucket", or "breaker-open".
type SetupShed struct {
	Portable string `json:"portable"`
	Cell     string `json:"cell"`
	Class    string `json:"class"`
	Reason   string `json:"reason"`
}

// DegradeCascade is published for each connection an overload degrade
// cascade forces to b_min ("degrade") or later releases ("restore").
type DegradeCascade struct {
	Conn   string `json:"conn"`
	Link   string `json:"link"`
	Action string `json:"action"`
}

// BreakerState is published when the signaling circuit breaker changes
// state. Reason explains the trigger ("failure-rate",
// "retransmit-pressure", "probe-failed", "cooldown", "probe-succeeded").
type BreakerState struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// WireDelivery is published by a testnet node for every control frame
// it receives: the node's name, the protocol the frame belongs to
// ("signal" or "maxmin"), the wire message type, and the frame size.
// Hop is the protocol's 0-based transmission index (matching the
// delivery-hook coordinate of internal/faults).
type WireDelivery struct {
	Node  string `json:"node"`
	Proto string `json:"proto"`
	Type  string `json:"msg"`
	Conn  string `json:"conn,omitempty"`
	Hop   int    `json:"hop"`
	Bytes int    `json:"bytes"`
}

func (WireDelivery) Kind() Kind { return KindWireDelivery }

func (ConnectionRequested) Kind() Kind { return KindConnectionRequested }
func (ConnectionAdmitted) Kind() Kind  { return KindConnectionAdmitted }
func (ConnectionBlocked) Kind() Kind   { return KindConnectionBlocked }
func (ConnectionClosed) Kind() Kind    { return KindConnectionClosed }
func (AdmissionDecision) Kind() Kind   { return KindAdmissionDecision }
func (HandoffAttempt) Kind() Kind      { return KindHandoffAttempt }
func (HandoffOutcome) Kind() Kind      { return KindHandoffOutcome }
func (HandoffLatency) Kind() Kind      { return KindHandoffLatency }
func (PoolClaim) Kind() Kind           { return KindPoolClaim }
func (AdvanceReservation) Kind() Kind  { return KindAdvanceReservation }
func (PolicyReservation) Kind() Kind   { return KindPolicyReservation }
func (BandwidthChange) Kind() Kind     { return KindBandwidthChange }
func (AdaptationRound) Kind() Kind     { return KindAdaptationRound }
func (MaxminConverged) Kind() Kind     { return KindMaxminConverged }
func (CapacityChange) Kind() Kind      { return KindCapacityChange }
func (SignalHold) Kind() Kind          { return KindSignalHold }
func (SignalCommit) Kind() Kind        { return KindSignalCommit }
func (SignalAbort) Kind() Kind         { return KindSignalAbort }
func (FlowStarted) Kind() Kind         { return KindFlowStarted }
func (FlowStopped) Kind() Kind         { return KindFlowStopped }
func (FaultMessage) Kind() Kind        { return KindFaultMessage }
func (FaultComponent) Kind() Kind      { return KindFaultComponent }
func (ControlRetransmit) Kind() Kind   { return KindControlRetransmit }
func (HoldReclaimed) Kind() Kind       { return KindHoldReclaimed }
func (Readvertise) Kind() Kind         { return KindReadvertise }
func (InvariantViolation) Kind() Kind  { return KindInvariantViolation }
func (OverloadStage) Kind() Kind       { return KindOverloadStage }
func (SetupShed) Kind() Kind           { return KindSetupShed }
func (DegradeCascade) Kind() Kind      { return KindDegradeCascade }
func (BreakerState) Kind() Kind        { return KindBreakerState }
