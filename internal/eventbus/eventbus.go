// Package eventbus is the control plane's typed event stream: every
// layer of the resource manager (admission, handoff, advance reservation,
// rate adaptation, signaling, wireless variation, the data plane)
// publishes its decisions as typed events onto one deterministic,
// synchronous bus, and every observer — metrics counters, bandwidth
// watchers, drop logs, experiment harnesses, JSONL trace recorders — is a
// subscriber.
//
// # Ordering and determinism
//
// The bus is carried on the discrete-event simulator's clock (any Clock
// implementation works; des.Simulator satisfies it). Publish stamps each
// event with the current simulated time and a monotonically increasing
// sequence number, then dispatches to subscribers synchronously, in
// subscription order, before returning. Because the simulation is
// single-threaded, the stream is totally ordered by (Time, Seq), and two
// runs that schedule the same simulation work observe byte-identical
// traces — the property the trace-determinism regression test pins across
// worker counts.
//
// Rules for subscribers:
//
//  1. The subscriber set must be fixed before the simulation runs;
//     subscribing mid-run is safe but makes traces incomparable between
//     runs that subscribed at different points.
//  2. Subscribers must not mutate simulation state (schedule events,
//     admit connections, reseed RNGs). They observe; publishing layers
//     act. A subscriber that feeds decisions back into the control plane
//     would make behavior depend on who is listening.
//  3. Publishing from inside a subscriber is permitted (the nested event
//     is stamped after the outer one), but the same determinism caveats
//     apply.
//
// Publishing is cheap when nobody listens: a nil bus is a no-op receiver,
// and a bus without subscribers only advances its sequence counter, so
// the emitting layers publish unconditionally.
package eventbus

// Clock supplies the simulated time events are stamped with.
// *des.Simulator satisfies it.
type Clock interface {
	Now() float64
}

// Record is one stamped occurrence on the bus: the payload plus the
// (Time, Seq) coordinates that totally order the stream.
type Record struct {
	// Seq is the 1-based publish sequence number within this bus.
	Seq uint64
	// Time is the simulated time at which the event was published.
	Time float64
	// Event is the typed payload (one of the closed set in events.go).
	Event Event
}

// Subscriber observes stamped events.
type Subscriber func(Record)

// Bus is the synchronous publish/subscribe hub. The zero value is not
// usable; construct with New.
type Bus struct {
	clock  Clock
	seq    uint64
	all    []Subscriber
	byKind [kindCount][]Subscriber
}

// New returns a bus stamping events from the given clock.
func New(clock Clock) *Bus {
	if clock == nil {
		panic("eventbus: nil clock")
	}
	return &Bus{clock: clock}
}

// Subscribe registers fn for the given kinds, or for every event when no
// kinds are given. Subscribers are invoked in subscription order;
// kind-filtered subscribers run before catch-all subscribers of the same
// event.
func (b *Bus) Subscribe(fn Subscriber, kinds ...Kind) {
	if fn == nil {
		panic("eventbus: nil subscriber")
	}
	if len(kinds) == 0 {
		b.all = append(b.all, fn)
		return
	}
	for _, k := range kinds {
		b.byKind[k] = append(b.byKind[k], fn)
	}
}

// Publish stamps ev with the clock's current time and the next sequence
// number and dispatches it synchronously. Publishing on a nil bus is a
// no-op, so emitting layers need no listener checks.
//
// Publish takes the event as an interface, which means the caller boxes
// it (one heap allocation) whether or not anyone listens. The emitting
// layers use the generic Pub instead, which defers that boxing past the
// listener check; Publish remains for subscribers-of-subscribers and
// external callers holding an already-boxed Event.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.seq++
	k := ev.Kind()
	if len(b.byKind[k]) == 0 && len(b.all) == 0 {
		return
	}
	b.dispatch(k, ev)
}

// Pub is the allocation-aware publish path: because the event arrives
// as a concrete type, the interface boxing happens inside — after the
// listener check — so publishing a kind nobody subscribed to costs zero
// allocations (the sequence number still advances, keeping the stamped
// stream identical whoever listens). With listeners present it boxes
// exactly once, like Publish always did.
func Pub[T Event](b *Bus, ev T) {
	if b == nil {
		return
	}
	b.seq++
	k := ev.Kind()
	if len(b.byKind[k]) == 0 && len(b.all) == 0 {
		return
	}
	b.dispatch(k, ev)
}

// dispatch stamps and fans out one event to its kind-filtered and
// catch-all subscribers, in subscription order.
func (b *Bus) dispatch(k Kind, ev Event) {
	rec := Record{Seq: b.seq, Time: b.clock.Now(), Event: ev}
	for _, fn := range b.byKind[k] {
		fn(rec)
	}
	for _, fn := range b.all {
		fn(rec)
	}
}

// Seq returns the number of events published so far.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	return b.seq
}
