package eventbus

import (
	"testing"

	"armnet/internal/raceflag"
)

// TestPubNoSubscribersAllocFree pins the bus's quiet-path budget: with
// nobody subscribed to the kind, Pub must not box the event — the whole
// point of taking the concrete type is that the interface conversion
// sits behind the listener check. Emitting layers publish
// unconditionally, so this path runs on every control-plane decision of
// an untraced simulation.
func TestPubNoSubscribersAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	bus := New(&stubClock{})
	got := testing.AllocsPerRun(1000, func() {
		Pub(bus, ConnectionRequested{Portable: "p0"})
	})
	if got != 0 {
		t.Fatalf("Pub with no subscribers allocates %v/op, want 0", got)
	}
}

// TestPubSubscribedBoxesOnce pins the listened-to path at exactly the
// one boxing allocation dispatch requires.
func TestPubSubscribedBoxesOnce(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	bus := New(&stubClock{})
	n := 0
	bus.Subscribe(func(Record) { n++ }, KindConnectionRequested)
	got := testing.AllocsPerRun(1000, func() {
		Pub(bus, ConnectionRequested{Portable: "p0"})
	})
	if got != 1 {
		t.Fatalf("Pub with a subscriber allocates %v/op, want exactly 1 (interface boxing)", got)
	}
	if n == 0 {
		t.Fatal("subscriber never ran")
	}
}
