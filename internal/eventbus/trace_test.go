package eventbus

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type stubClock struct{ now float64 }

func (c *stubClock) Now() float64 { return c.now }

type failingWriter struct{ allow int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, errors.New("no space")
	}
	w.allow--
	return len(p), nil
}

func TestRecorderLatchesWriteError(t *testing.T) {
	bus := New(&stubClock{})
	r := AttachRecorder(bus, &failingWriter{allow: 1})
	bus.Publish(ConnectionRequested{Portable: "p0"})
	if r.Err() != nil {
		t.Fatalf("first write errored: %v", r.Err())
	}
	bus.Publish(ConnectionRequested{Portable: "p1"})
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "trace write") {
		t.Fatalf("Err = %v, want wrapped trace write error", err)
	}
	bus.Publish(ConnectionRequested{Portable: "p2"})
	if r.Err() != err {
		t.Fatalf("latched error changed: %v", r.Err())
	}
}

// TestRecorderSeqMonotonicity is the regression test for the recorder's
// stream audit: observed sequence numbers must advance by exactly one.
// The recorder is fed crafted Records directly, since a healthy bus can
// never produce the corruption being tested.
func TestRecorderSeqMonotonicity(t *testing.T) {
	ev := ConnectionRequested{Portable: "p0"}
	cases := []struct {
		name string
		seqs []uint64
		ok   bool
	}{
		{"contiguous", []uint64{1, 2, 3}, true},
		{"late attach", []uint64{7, 8, 9}, true},
		{"gap", []uint64{1, 2, 4}, false},
		{"regression", []uint64{5, 6, 3}, false},
		{"duplicate", []uint64{2, 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			r := &Recorder{enc: json.NewEncoder(&buf)}
			for _, seq := range tc.seqs {
				r.observe(Record{Seq: seq, Time: 1, Event: ev})
			}
			err := r.Err()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok {
				if err == nil || !strings.Contains(err.Error(), "sequence broken") {
					t.Fatalf("Err = %v, want sequence-broken error", err)
				}
				// The offending record must not have been written.
				if got := strings.Count(buf.String(), "\n"); got != len(tc.seqs)-1 {
					t.Fatalf("wrote %d lines for %d records with a broken tail", got, len(tc.seqs))
				}
			}
		})
	}
}

func TestRecorderOutputShape(t *testing.T) {
	clk := &stubClock{now: 2.5}
	bus := New(clk)
	var buf bytes.Buffer
	r := AttachRecorder(bus, &buf)
	bus.Publish(ConnectionRequested{Portable: "p0"})
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	want := `{"seq":1,"t":2.5,"type":"connection-requested","ev":{"portable":"p0"}}` + "\n"
	if buf.String() != want {
		t.Fatalf("trace line = %q, want %q", buf.String(), want)
	}
}
