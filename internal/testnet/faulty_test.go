package testnet

import (
	"bytes"
	"strings"
	"testing"

	"armnet/internal/netfaults"
)

func mustPlan(t *testing.T, spec string) *netfaults.Plan {
	t.Helper()
	p, err := netfaults.ParsePlanString(spec)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return p
}

// TestNetfaultsEmptyPlanZeroCost pins the zero-cost contract from the
// acceptance criteria: wrapping the loopback fabric in the fault layer
// with an empty plan must be behaviour-preserving — the controller and
// node traces stay byte-identical to the unwrapped run and the frame
// accounting does not move.
func TestNetfaultsEmptyPlanZeroCost(t *testing.T) {
	plain := mustRun(t, Config{Mode: ModeLoopback})
	wrapped := mustRun(t, Config{Mode: ModeLoopback, Faults: &netfaults.Plan{}})

	if len(wrapped.Violations) > 0 {
		t.Fatalf("wrapped violations: %v", wrapped.Violations)
	}
	if d := DiffTraces(plain.ControllerTrace, wrapped.ControllerTrace); d != "" {
		t.Fatalf("empty-plan wrapper perturbed the controller trace:\n%s", d)
	}
	for name, ta := range plain.NodeTraces {
		if !bytes.Equal(ta, wrapped.NodeTraces[name]) {
			t.Fatalf("empty-plan wrapper perturbed node %s trace:\n%s",
				name, DiffTraces(ta, wrapped.NodeTraces[name]))
		}
	}
	if plain.FramesSent != wrapped.FramesSent || wrapped.FrameDrops != 0 {
		t.Fatalf("frame accounting moved: %d/%d vs %d/%d",
			plain.FramesSent, plain.FrameDrops, wrapped.FramesSent, wrapped.FrameDrops)
	}
	fs := wrapped.Faults
	if fs == nil {
		t.Fatal("fault stats missing on wrapped run")
	}
	if fs.Drops+fs.Dups+fs.Delays+fs.Reorders+fs.PartitionDrops != 0 {
		t.Fatalf("empty plan fired: %+v", fs)
	}
}

// TestFaultyLoopbackDeterministic pins deterministic chaos: the same
// (plan, seed) pair replays byte-identical traces, and the protocols'
// own retransmission plus the readvertise repair loop absorb the losses
// — the final audit stays clean.
func TestFaultyLoopbackDeterministic(t *testing.T) {
	cfg := Config{
		Mode:        ModeLoopback,
		Faults:      mustPlan(t, "drop any 0.15\ndup maxmin 0.1\nreorder maxmin 0.2 0.004\n"),
		FaultSeed:   7,
		Readvertise: 0.5,
		Horizon:     4,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if len(a.Violations) > 0 {
		t.Fatalf("violations under chaos: %v", a.Violations)
	}
	if d := DiffTraces(a.ControllerTrace, b.ControllerTrace); d != "" {
		t.Fatalf("chaos not deterministic:\n%s", d)
	}
	for name, ta := range a.NodeTraces {
		if !bytes.Equal(ta, b.NodeTraces[name]) {
			t.Fatalf("node %s trace not deterministic under chaos", name)
		}
	}
	if a.Faults.Drops == 0 || a.Faults.Dups == 0 || a.Faults.Reorders == 0 {
		t.Fatalf("injector idle: %+v", a.Faults)
	}
	// A different seed must take a different path through the run.
	cfg.FaultSeed = 8
	c := mustRun(t, cfg)
	if a.Faults.Drops == c.Faults.Drops && a.Faults.Reorders == c.Faults.Reorders &&
		bytes.Equal(a.ControllerTrace, c.ControllerTrace) {
		t.Fatal("different fault seeds replayed the identical run (suspicious)")
	}
}

// TestSignalTotalLoss is the retry-exhaustion regression from the issue:
// under 100% signaling loss every setup burns its retry budget, gives
// up, and releases its holds — the auditor must find zero leaked
// reservations and the run must not wedge.
func TestSignalTotalLoss(t *testing.T) {
	res := mustRun(t, Config{
		Mode:      ModeLoopback,
		Faults:    mustPlan(t, "drop signal 1\n"),
		FaultSeed: 1,
		Horizon:   5,
		// Nothing ever commits, so the script's handoffs and closes hit
		// unknown connections — exactly what Lenient is for.
		Lenient: true,
	})
	if len(res.Violations) > 0 {
		t.Fatalf("violations after total loss: %v", res.Violations)
	}
	if res.Commits != 0 {
		t.Fatalf("committed %d setups through a dead wire", res.Commits)
	}
	if res.Aborted == 0 || res.Rollbacks == 0 {
		t.Fatalf("no give-up path taken: aborted=%d rollbacks=%d", res.Aborted, res.Rollbacks)
	}
	if len(res.Live) != 0 {
		t.Fatalf("live conns survived total loss: %v", res.Live)
	}
	if res.Faults.Drops == 0 {
		t.Fatal("injector recorded no drops")
	}
	// Retry exhaustion must show in the trace as retransmit attempts.
	if !strings.Contains(string(res.ControllerTrace), `"control-retransmit"`) {
		t.Error("controller trace has no retransmit records")
	}
}

// TestCrashRestartRecovery exercises a crash that recovers faster than
// the lease miss budget: the east agent loses its volatile mirror, the
// restart triggers the re-LISTEN handshake (hello + resync), and the
// connection it serves survives without any reclamation.
func TestCrashRestartRecovery(t *testing.T) {
	res := mustRun(t, Config{
		Mode:      ModeLoopback,
		Faults:    mustPlan(t, "at 1.6 crash east for 0.3\n"),
		FaultSeed: 3,
		Lease:     LeaseConfig{Period: 0.25, MissBudget: 2},
		Horizon:   4,
	})
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	fs := res.Faults
	if fs.Crashes != 1 || fs.Restarts != 1 {
		t.Fatalf("lifecycle counters: %+v", fs)
	}
	if fs.PartitionDrops == 0 {
		t.Error("no frames were eaten while the agent was down")
	}
	if fs.LeaseReclaims != 0 {
		t.Errorf("fast restart still reclaimed %d conns", fs.LeaseReclaims)
	}
	east := string(res.NodeTraces["east"])
	if !strings.Contains(east, `"msg":"resync"`) {
		t.Error("east never received the resync handshake")
	}
	if !strings.Contains(east, `"msg":"lease-renew"`) {
		t.Error("east never received a lease renewal")
	}
	// dave:0 is homed on an east cell after its handoff; surviving the
	// crash intact is the point of the resync.
	found := false
	for _, conn := range res.Live {
		found = found || conn == "dave:0"
	}
	if !found {
		t.Errorf("dave:0 did not survive the fast restart: live=%v", res.Live)
	}
}

// TestPartitionLeaseReclaim exercises the slow path: a partition longer
// than the miss budget kills the agent's lease, the controller reclaims
// the reservations routed through it (trace-visible as hold-reclaimed
// events with the wire-lease reason), and the audit still balances —
// reclaimed bandwidth went back to the ledger, not into a leak.
func TestPartitionLeaseReclaim(t *testing.T) {
	res := mustRun(t, Config{
		Mode:      ModeLoopback,
		Faults:    mustPlan(t, "at 1.6 partition east for 1.5\n"),
		FaultSeed: 3,
		Lease:     LeaseConfig{Period: 0.25, MissBudget: 2},
		Horizon:   4.5,
		Lenient:   true,
	})
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	fs := res.Faults
	if fs.LeaseReclaims == 0 {
		t.Fatal("lease rounds reclaimed nothing through a dead agent")
	}
	if fs.Crashes != 0 || fs.Restarts != 0 {
		t.Errorf("partition ran the crash lifecycle: %+v", fs)
	}
	ctrace := string(res.ControllerTrace)
	if !strings.Contains(ctrace, `"hold-reclaimed"`) || !strings.Contains(ctrace, `"wire-lease"`) {
		t.Error("controller trace missing the wire-lease reclamation")
	}
	// The reclaimed connection must be gone from the final live set.
	for _, conn := range res.Live {
		if conn == "dave:0" {
			t.Error("dave:0 survived a lease reclamation")
		}
	}
}

// TestLeaseQuietWire pins that the lease machinery on a healthy run is
// invisible to the audit: renewals flow, nothing is reclaimed, and the
// scenario outcome matches the lease-free run.
func TestLeaseQuietWire(t *testing.T) {
	plain := mustRun(t, Config{Mode: ModeLoopback})
	leased := mustRun(t, Config{
		Mode:  ModeLoopback,
		Lease: LeaseConfig{Period: 0.5},
	})
	if len(leased.Violations) > 0 {
		t.Fatalf("violations: %v", leased.Violations)
	}
	if plain.Commits != leased.Commits || plain.Aborted != leased.Aborted {
		t.Fatalf("lease rounds changed the outcome: %d/%d vs %d/%d",
			plain.Commits, plain.Aborted, leased.Commits, leased.Aborted)
	}
	if !equalStrings(plain.Live, leased.Live) {
		t.Fatalf("live sets diverged: %v vs %v", plain.Live, leased.Live)
	}
	merged := strings.Join(MergeTraces(leased.NodeTraces), "\n")
	if !strings.Contains(merged, `"msg":"lease-renew"`) {
		t.Error("no renewal frames reached the nodes")
	}
	if strings.Contains(merged, `"msg":"resync"`) {
		t.Error("healthy run triggered a resync")
	}
}
