package testnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"armnet/internal/wire"
)

// hardenedNode binds one UDP node server and returns a client socket
// aimed at it plus a collector that shuts the server down and returns
// the node for counter inspection.
func hardenedNode(t *testing.T) (*net.UDPConn, func() *Node) {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("cannot bind UDP on loopback: %v", err)
	}
	nodeCh := make(chan *Node, 1)
	go func() {
		defer pc.Close()
		n, err := ServeNodeUDP("core", pc)
		if err != nil {
			t.Errorf("node: %v", err)
		}
		nodeCh <- n
	}()
	client, err := net.DialUDP("udp", nil, pc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("dial node: %v", err)
	}
	return client, func() *Node {
		sendAcked(t, client, 99, wire.Shutdown{})
		client.Close()
		select {
		case n := <-nodeCh:
			return n
		case <-time.After(5 * time.Second):
			t.Fatal("server never exited after shutdown")
			return nil
		}
	}
}

// sendAcked sends one frame and requires the node to ack it with the
// matching sequence number.
func sendAcked(t *testing.T, client *net.UDPConn, seq uint32, m wire.Message) {
	t.Helper()
	frame, err := wire.AppendFrame(nil, seq, m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := client.Write(frame); err != nil {
		t.Fatalf("send: %v", err)
	}
	buf := make([]byte, wire.MaxFrame)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	sz, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no ack for %s frame: %v", m.WireType(), err)
	}
	am, _, err := wire.Decode(buf[:sz])
	if err != nil {
		t.Fatalf("bad ack: %v", err)
	}
	ack, ok := am.(wire.Ack)
	if !ok || ack.AckSeq != seq {
		t.Fatalf("ack = %#v, want AckSeq %d", am, seq)
	}
}

// sendHostile sends one raw datagram and requires silence: a hostile
// datagram must not be acked — the sender sees it exactly like wire
// loss — and must not kill the serve loop.
func sendHostile(t *testing.T, client *net.UDPConn, payload []byte, what string) {
	t.Helper()
	if _, err := client.Write(payload); err != nil {
		t.Fatalf("send %s: %v", what, err)
	}
	buf := make([]byte, wire.MaxFrame)
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if sz, err := client.Read(buf); err == nil {
		t.Fatalf("%s datagram was acked (%d bytes back), want silence", what, sz)
	}
}

// TestUDPHostileDatagrams is the receive-path hardening check: an
// oversized datagram, a truncated frame, and pure garbage are each
// dropped and counted — never acked, never a panic — and the node
// keeps serving valid traffic afterwards.
func TestUDPHostileDatagrams(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	client, collect := hardenedNode(t)

	// A legal frame first, proving the path works before the abuse.
	sendAcked(t, client, 1, wire.Hello{})

	// Oversized: larger than any legal frame (a typical MTU-sized blast);
	// dropped before decoding even starts.
	sendHostile(t, client, make([]byte, 1500), "oversized")

	// Truncated: the first half of a well-formed commit frame. Decode
	// must reject it totally rather than read past the buffer.
	whole, err := wire.AppendFrame(nil, 2, wire.SignalCommit{Conn: "alice:0", Hop: 1, Bandwidth: 256e3})
	if err != nil {
		t.Fatal(err)
	}
	sendHostile(t, client, whole[:len(whole)/2], "truncated")

	// Garbage: in-bounds length, nonsense bytes.
	junk := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 8)
	sendHostile(t, client, junk, "garbage")

	// An empty datagram is the degenerate truncation.
	sendHostile(t, client, nil, "empty")

	// The loop survived: valid traffic still flows and lands in state.
	sendAcked(t, client, 3, wire.SignalCommit{Conn: "alice:0", Hop: 1, Bandwidth: 256e3})

	n := collect()
	if n.Oversized != 1 {
		t.Errorf("Oversized = %d, want 1", n.Oversized)
	}
	if n.Malformed != 3 {
		t.Errorf("Malformed = %d, want 3 (truncated, garbage, empty)", n.Malformed)
	}
	// Hello + commit + shutdown processed; hostile datagrams excluded.
	if n.Received != 3 {
		t.Errorf("Received = %d, want 3", n.Received)
	}
	if got := n.Mirror(); len(got) != 1 || got[0] != "alice:0=256000" {
		t.Errorf("mirror = %v, want [alice:0=256000]", got)
	}
}

// TestUDPOversizedBoundary pins the exact cap: a datagram of exactly
// MaxFrame bytes reaches the decoder (counted malformed here, since the
// padding breaks the frame), one byte more is dropped as oversized.
func TestUDPOversizedBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	client, collect := hardenedNode(t)

	atCap := make([]byte, wire.MaxFrame)
	sendHostile(t, client, atCap, "at-cap")
	overCap := make([]byte, wire.MaxFrame+1)
	sendHostile(t, client, overCap, "over-cap")

	n := collect()
	if n.Oversized != 1 {
		t.Errorf("Oversized = %d, want 1 (only the over-cap datagram)", n.Oversized)
	}
	if n.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1 (the at-cap datagram reached Decode)", n.Malformed)
	}
}
