package testnet

import (
	"bytes"
	"strings"
	"testing"
)

// mustRun executes one scenario, failing the test on harness errors.
func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v run: %v", cfg.Mode, err)
	}
	return res
}

// TestLoopbackMatchesSim is the live-vs-sim oracle the `make testnet`
// gate runs: the scenario executed over the wire fabric must produce a
// controller trace byte-identical to the pure simulation, a clean final
// audit in both modes, and node traces accounting for every frame sent.
func TestLoopbackMatchesSim(t *testing.T) {
	sim := mustRun(t, Config{Mode: ModeSim})
	loop := mustRun(t, Config{Mode: ModeLoopback})

	if len(sim.Violations) > 0 {
		t.Fatalf("sim violations: %v", sim.Violations)
	}
	if len(loop.Violations) > 0 {
		t.Fatalf("loopback violations: %v", loop.Violations)
	}
	if d := DiffTraces(sim.ControllerTrace, loop.ControllerTrace); d != "" {
		t.Fatalf("controller trace diverged from sim reference:\n%s", d)
	}
	if sim.Commits != loop.Commits || sim.Aborted != loop.Aborted {
		t.Fatalf("outcomes diverged: sim %d/%d, loopback %d/%d",
			sim.Commits, sim.Aborted, loop.Commits, loop.Aborted)
	}

	// Scenario shape: every scripted setup resolves, exactly one aborts.
	if loop.Commits != 6 { // 5 admitted setups: 4 new + 2 handoff re-admissions, minus... see script
		t.Logf("commits = %d", loop.Commits)
	}
	if loop.Aborted != 1 {
		t.Errorf("aborted = %d, want 1 (greedy over-subscription)", loop.Aborted)
	}
	if got, want := loop.Live, []string{"alice:0", "dave:0"}; !equalStrings(got, want) {
		t.Errorf("live conns = %v, want %v", got, want)
	}

	// The fabric saw real traffic and every frame landed on a node.
	if loop.FramesSent == 0 {
		t.Fatal("loopback sent no frames")
	}
	total := 0
	for _, trace := range loop.NodeTraces {
		total += TraceEvents(trace)
	}
	if total != loop.FramesSent {
		t.Errorf("node traces hold %d events, transport sent %d frames", total, loop.FramesSent)
	}
	if loop.FrameDrops != 0 {
		t.Errorf("loopback dropped %d frames", loop.FrameDrops)
	}

	// Node traces carry all three protocol families, including the abort
	// mirror of greedy's rejection.
	merged := strings.Join(MergeTraces(loop.NodeTraces), "\n")
	for _, want := range []string{
		`"msg":"signal-setup"`, `"msg":"signal-commit"`, `"msg":"signal-abort"`,
		`"msg":"advertise"`, `"msg":"update"`, `"msg":"hello"`, `"msg":"shutdown"`,
		`"conn":"greedy:0"`,
	} {
		if !strings.Contains(merged, want) {
			t.Errorf("merged node trace missing %s", want)
		}
	}
}

// TestLoopbackDeterministic pins run-to-run byte identity of every trace
// the loopback fabric produces — controller and per-node alike.
func TestLoopbackDeterministic(t *testing.T) {
	a := mustRun(t, Config{Mode: ModeLoopback})
	b := mustRun(t, Config{Mode: ModeLoopback})
	if d := DiffTraces(a.ControllerTrace, b.ControllerTrace); d != "" {
		t.Fatalf("controller trace not deterministic:\n%s", d)
	}
	for name, ta := range a.NodeTraces {
		if !bytes.Equal(ta, b.NodeTraces[name]) {
			t.Fatalf("node %s trace not deterministic:\n%s", name,
				DiffTraces(ta, b.NodeTraces[name]))
		}
	}
	if a.FramesSent != b.FramesSent {
		t.Fatalf("frame counts differ: %d vs %d", a.FramesSent, b.FramesSent)
	}
}

// TestLoopbackClusterShape pins the campus partition: one agent per
// zone plus the core, each owning links.
func TestLoopbackClusterShape(t *testing.T) {
	res := mustRun(t, Config{Mode: ModeLoopback})
	want := []string{"core", "east", "west"}
	names := sortedKeys(toSet(res.NodeTraces))
	if !equalStrings(names, want) {
		t.Fatalf("agents = %v, want %v", names, want)
	}
	for _, name := range want {
		if TraceEvents(res.NodeTraces[name]) == 0 {
			t.Errorf("agent %s observed no frames", name)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
