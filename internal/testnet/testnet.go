// Package testnet runs the signal and maxmin control protocols over a
// real message fabric — in-process loopback or UDP sockets — and checks
// the live runs against the discrete-event simulation as a correctness
// oracle.
//
// # Architecture
//
// The protocol state machines are untouched: one controller owns the
// signaling plane, the maxmin protocol, and the admission ledger, exactly
// as a simulation harness would. What changes is the plumbing around
// them:
//
//   - Time comes from an injectable clock (internal/clock): the simulator
//     for ModeSim and ModeLoopback, wall time for ModeUDP.
//   - Every control-packet hop crosses the same delivery-hook seams
//     internal/faults uses (signal.Options.Deliver,
//     maxmin.ProtocolOptions.Deliver). The testnet transport encodes each
//     hop as an internal/wire frame and delivers it to the node agent
//     owning the hop's link; the node decodes it, records a WireDelivery
//     event on its own bus, and acks.
//   - Node agents partition the campus backbone by zone: one agent per
//     zone plus one for the core. They mirror delivery — protocol state
//     stays in the controller — which is why hop-level frames carry
//     addressing (conn, hop) but not protocol internals like stamped
//     rates.
//
// # Oracle
//
// ModeSim runs the scenario with nil delivery hooks: the pure simulation
// reference. ModeLoopback runs the identical scenario with the wire
// transport in place; because the loopback fabric delivers synchronously
// with zero added delay, the controller's event trace must be
// byte-identical to the reference, and the node traces must be identical
// run to run. ModeUDP runs on wall clocks and real sockets; its node
// traces match the loopback ones after normalization (timestamps zeroed,
// per-node frame multisets compared — real scheduling may interleave
// concurrent protocol sessions differently than the simulator did, but
// it must deliver exactly the same frames). See diff.go for the mapping.
package testnet

// Mode selects the fabric and clock a scenario runs on.
type Mode int

const (
	// ModeSim is the pure simulation: simulator clock, no transport. The
	// reference every live run is diffed against.
	ModeSim Mode = iota
	// ModeLoopback is the live wire path on the simulator clock: every
	// hop is encoded, delivered to an in-process node, decoded, and
	// acked — no sockets, fully deterministic. The CI gate.
	ModeLoopback
	// ModeUDP is the fully live path: wall clock, UDP datagrams to node
	// processes (or in-process node servers), ack-or-retransmit.
	ModeUDP
)

func (m Mode) String() string {
	switch m {
	case ModeSim:
		return "sim"
	case ModeLoopback:
		return "loopback"
	case ModeUDP:
		return "udp"
	}
	return "unknown"
}
