package testnet

import (
	"bytes"
	"flag"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"armnet/internal/clock"
	"armnet/internal/obs/live"
)

var updateLive = flag.Bool("update-live", false, "rewrite the live-obs snapshot golden")

// liveObsConfig is the armed scenario the golden pins: loopback fabric
// with lease renewal and a deterministic fault plan, so every live
// instrument family (frames, acks, retransmits, give-ups, lease
// traffic, verdicts) fires.
func liveObsConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Mode:        ModeLoopback,
		Faults:      mustPlan(t, "drop any 0.15\ndup maxmin 0.1\nreorder maxmin 0.2 0.004\n"),
		FaultSeed:   7,
		Readvertise: 0.5,
		Lease:       LeaseConfig{Period: 0.5},
		Horizon:     4,
	}
}

// TestLiveObsZeroCost pins the acceptance criterion: arming the live
// observability layer must not perturb the run. The controller and
// node traces of the armed run are byte-identical to the disarmed one,
// and frame accounting does not move — the recorder observes the wire,
// it never touches it.
func TestLiveObsZeroCost(t *testing.T) {
	cfg := liveObsConfig(t)
	plain := mustRun(t, cfg)

	armed := cfg
	armed.Obs = live.NewController(nil)
	withObs := mustRun(t, armed)

	if len(withObs.Violations) > 0 {
		t.Fatalf("armed violations: %v", withObs.Violations)
	}
	if d := DiffTraces(plain.ControllerTrace, withObs.ControllerTrace); d != "" {
		t.Fatalf("armed recorder perturbed the controller trace:\n%s", d)
	}
	for name, ta := range plain.NodeTraces {
		if !bytes.Equal(ta, withObs.NodeTraces[name]) {
			t.Fatalf("armed recorder perturbed node %s trace:\n%s",
				name, DiffTraces(ta, withObs.NodeTraces[name]))
		}
	}
	if plain.FramesSent != withObs.FramesSent || plain.FrameDrops != withObs.FrameDrops {
		t.Fatalf("frame accounting moved: %d/%d vs %d/%d",
			plain.FramesSent, plain.FrameDrops, withObs.FramesSent, withObs.FrameDrops)
	}
	if plain.LiveSnapshot != nil || plain.LiveSpans != nil {
		t.Fatal("disarmed run produced live observability output")
	}
	if withObs.LiveSnapshot == nil {
		t.Fatal("armed run produced no snapshot")
	}
}

// TestLiveObsSnapshotGolden pins the armed loopback run's merged
// cluster snapshot and wire spans byte-for-byte, like the sim layer's
// obssnapshot.golden: one deterministic export covering every live
// instrument family. Regenerate with -update-live after intentional
// metric changes.
func TestLiveObsSnapshotGolden(t *testing.T) {
	cfg := liveObsConfig(t)
	cfg.Obs = live.NewController(nil)
	res := mustRun(t, cfg)
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}

	snap := res.LiveSnapshot
	if snap == nil {
		t.Fatal("no live snapshot")
	}
	// Every instrument family the scenario is built to exercise must be
	// non-zero before the bytes are even compared, so a refactor that
	// silently unhooks a seam cannot hide behind a regenerated golden.
	for _, name := range []string{
		"armnet_wire_frames_tx_total",
		"armnet_wire_frames_rx_total",
		"armnet_wire_bytes_tx_total",
		"armnet_wire_acks_total",
		"armnet_wire_retransmits_total",
		"armnet_wire_lease_renews_total",
		"armnet_wire_fault_verdicts_total",
	} {
		if snap.CounterTotal(name) == 0 {
			t.Errorf("instrument family %s never fired", name)
		}
	}
	if len(res.LiveSpans) == 0 {
		t.Error("no wire spans exported")
	}

	got := append(snap.JSON(), res.LiveSpans...)
	golden := filepath.Join("testdata", "livesnapshot.golden")
	if *updateLive {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden (regenerate with -update-live): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("live snapshot drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	// Determinism independent of the golden file: a second armed run
	// exports identical bytes.
	cfg2 := liveObsConfig(t)
	cfg2.Obs = live.NewController(nil)
	res2 := mustRun(t, cfg2)
	again := append(res2.LiveSnapshot.JSON(), res2.LiveSpans...)
	if !bytes.Equal(got, again) {
		t.Fatal("armed loopback snapshot not deterministic across runs")
	}
}

// TestLiveObsUDP exercises the armed recorder over real sockets: an
// in-process UDP cluster with per-node recorders, checking tx/rx
// accounting agrees across the wire. Skipped under -short alongside the
// other socket tests.
func TestLiveObsUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scenario (a few seconds)")
	}
	names := []string{"core", "east", "west"}
	peers := make(map[string]string, len(names))
	recs := make([]*live.NodeRecorder, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Skipf("cannot bind UDP on loopback: %v", err)
		}
		peers[name] = pc.LocalAddr().String()
		rec := live.NewNodeRecorder(name)
		recs[i] = rec
		n := NewNode(name, clock.NewWall())
		n.SetObs(rec)
		wg.Add(1)
		go func(n *Node, pc *net.UDPConn) {
			defer wg.Done()
			defer pc.Close()
			if err := n.ServeUDP(pc); err != nil {
				t.Errorf("node %s: %v", n.Name, err)
			}
		}(n, pc)
	}

	ctl := live.NewController(nil)
	res, err := Run(Config{Mode: ModeUDP, Peers: peers, Horizon: 2.5, Obs: ctl})
	if err != nil {
		t.Fatalf("udp run: %v", err)
	}
	wg.Wait() // servers exit on the controller's Shutdown frames
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	snap := res.LiveSnapshot
	if snap == nil {
		t.Fatal("no live snapshot")
	}
	// The run-end snapshot is taken before the shutdown frames go out,
	// the same instant FramesSent/FrameDrops are read — the accounting
	// must agree exactly.
	tx := snap.CounterTotal("armnet_wire_frames_tx_total")
	if int(tx) != res.FramesSent+res.FrameDrops {
		t.Errorf("frames_tx %v != sent %d + drops %d", tx, res.FramesSent, res.FrameDrops)
	}
	// The post-shutdown cluster merge folds in the node-side recorders:
	// every acked frame was necessarily received (the node may have
	// received more — frames whose acks were lost, plus the shutdowns).
	clusterSnap, err := live.ClusterSnapshot(ctl, recs)
	if err != nil {
		t.Fatal(err)
	}
	rx := clusterSnap.CounterTotal("armnet_wire_frames_rx_total")
	if acks := clusterSnap.CounterTotal("armnet_wire_acks_total"); rx < acks {
		t.Errorf("cluster rx %v < acked sends %v", rx, acks)
	}
}
