package testnet

import (
	"testing"

	"armnet/internal/des"
	"armnet/internal/wire"
)

// BenchmarkLoopbackRoundTrip measures one full fabric round trip: encode
// a hop frame, deliver it to a node (decode + trace record + ack build),
// and verify the ack — the per-hop cost the loopback testnet adds on top
// of the simulated protocols.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	sim := des.New()
	n := NewNode("bench", sim)
	buf := make([]byte, 0, wire.MaxFrame)
	msg := wire.SignalSetup{Conn: "portable-17:2", Hop: 3, Bandwidth: 256e3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.AppendFrame(buf[:0], uint32(i+1), msg)
		if err != nil {
			b.Fatal(err)
		}
		ack, _, err := n.HandleFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		am, _, err := wire.Decode(ack)
		if err != nil {
			b.Fatal(err)
		}
		if a, ok := am.(wire.Ack); !ok || a.AckSeq != uint32(i+1) {
			b.Fatalf("bad ack %v", am)
		}
		if n.buf.Len() > 1<<20 {
			n.buf.Reset() // cap trace growth; the recorder keeps writing
		}
	}
}

// BenchmarkLoopbackScenario runs the whole scripted campus scenario over
// the loopback fabric — the end-to-end number the bench trajectory
// tracks for the testnet area.
func BenchmarkLoopbackScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Mode: ModeLoopback})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
	}
}
