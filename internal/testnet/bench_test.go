package testnet

import (
	"testing"

	"armnet/internal/des"
	"armnet/internal/netfaults"
	"armnet/internal/wire"
)

// BenchmarkLoopbackRoundTrip measures one full fabric round trip: encode
// a hop frame, deliver it to a node (decode + trace record + ack build),
// and verify the ack — the per-hop cost the loopback testnet adds on top
// of the simulated protocols.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	sim := des.New()
	n := NewNode("bench", sim)
	buf := make([]byte, 0, wire.MaxFrame)
	msg := wire.SignalSetup{Conn: "portable-17:2", Hop: 3, Bandwidth: 256e3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.AppendFrame(buf[:0], uint32(i+1), msg)
		if err != nil {
			b.Fatal(err)
		}
		ack, _, err := n.HandleFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		am, _, err := wire.Decode(ack)
		if err != nil {
			b.Fatal(err)
		}
		if a, ok := am.(wire.Ack); !ok || a.AckSeq != uint32(i+1) {
			b.Fatalf("bad ack %v", am)
		}
		if n.buf.Len() > 1<<20 {
			n.buf.Reset() // cap trace growth; the recorder keeps writing
		}
	}
}

// BenchmarkLoopbackScenario runs the whole scripted campus scenario over
// the loopback fabric — the end-to-end number the bench trajectory
// tracks for the testnet area.
func BenchmarkLoopbackScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Mode: ModeLoopback})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
	}
}

// BenchmarkNetfaultsVerdictEmpty is the zero-cost contract in numbers:
// the per-frame injector check on an empty plan — what every live frame
// pays when the chaos layer is armed but idle. It must stay allocation-
// free and a few nanoseconds, or wrapping the transport is no longer
// behaviour-preserving in spirit.
func BenchmarkNetfaultsVerdictEmpty(b *testing.B) {
	inj := netfaults.NewInjector(&netfaults.Plan{}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := inj.Frame("signal", "ap-off-1"); v.Drop || v.Dup {
			b.Fatal("empty plan produced a fault")
		}
	}
}

// BenchmarkNetfaultsVerdict measures the per-frame verdict on an active
// plan with one rule per fault family — the injection hot path a soak
// run exercises on every delivered frame.
func BenchmarkNetfaultsVerdict(b *testing.B) {
	plan, err := netfaults.ParsePlanString(
		"drop signal 0.1\ndup maxmin 0.1\ndelay any 0.2 0.002\nreorder maxmin 0.15 0.004\n")
	if err != nil {
		b.Fatal(err)
	}
	inj := netfaults.NewInjector(plan, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inj.Frame("maxmin", "ap-off-1")
	}
}

// BenchmarkFaultyLoopbackScenario is the end-to-end cost of the chaos
// layer at rest: the full scripted scenario with the fault layer wired
// in but the plan empty. Compare against BenchmarkLoopbackScenario —
// the gap is the price of the wrapping itself.
func BenchmarkFaultyLoopbackScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Mode: ModeLoopback, Faults: &netfaults.Plan{}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
	}
}
