package testnet

import (
	"net"
	"sync"
	"testing"
)

// startNodes binds one UDP server per cluster agent on loopback
// addresses, returning the peer map and a collector that shuts the
// servers down and yields their traces.
func startNodes(t *testing.T, names []string) (map[string]string, func() map[string][]byte) {
	t.Helper()
	peers := make(map[string]string, len(names))
	nodes := make(map[string]*Node, len(names))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Skipf("cannot bind UDP on loopback: %v", err)
		}
		peers[name] = pc.LocalAddr().String()
		wg.Add(1)
		go func(name string, pc *net.UDPConn) {
			defer wg.Done()
			defer pc.Close()
			n, err := ServeNodeUDP(name, pc)
			if err != nil {
				t.Errorf("node %s: %v", name, err)
			}
			mu.Lock()
			nodes[name] = n
			mu.Unlock()
		}(name, pc)
	}
	return peers, func() map[string][]byte {
		wg.Wait() // servers exit on the controller's Shutdown frames
		out := make(map[string][]byte, len(nodes))
		for name, n := range nodes {
			trace, err := n.Trace()
			if err != nil {
				t.Fatalf("node %s trace: %v", name, err)
			}
			out[name] = trace
		}
		return out
	}
}

// TestUDPCluster runs the scripted scenario over real UDP sockets
// against three in-process node servers, each on its own wall clock —
// the acceptance check for the live path: the cluster completes the
// scenario with a clean final audit (zero leaked holds), and, absent
// retransmissions, delivers exactly the frames the deterministic
// loopback reference delivered.
func TestUDPCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scenario (a few seconds)")
	}
	ref := mustRun(t, Config{Mode: ModeLoopback})

	peers, collect := startNodes(t, []string{"core", "east", "west"})
	res, err := Run(Config{Mode: ModeUDP, Peers: peers, Horizon: 2.2})
	if err != nil {
		t.Fatalf("udp run: %v", err)
	}
	traces := collect()

	if len(res.Violations) > 0 {
		t.Fatalf("udp violations: %v", res.Violations)
	}
	if res.Commits != ref.Commits || res.Aborted != ref.Aborted {
		t.Fatalf("outcomes diverged: udp %d/%d, loopback %d/%d",
			res.Commits, res.Aborted, ref.Commits, ref.Aborted)
	}
	if !equalStrings(res.Live, ref.Live) {
		t.Fatalf("live conns = %v, want %v", res.Live, ref.Live)
	}
	for id, want := range ref.Rates {
		got := res.Rates[id]
		if d := got - want; d > 1e-6 || d < -1e-6 {
			t.Errorf("rate %s = %v, loopback reference %v", id, got, want)
		}
	}

	// The strict frame comparison assumes lossless delivery; a dropped
	// datagram triggers protocol retransmission, which legitimately adds
	// frames. Localhost UDP is effectively lossless, so this branch runs
	// in practice — but a loaded CI machine must not flake.
	if res.FrameDrops > 0 {
		t.Logf("skipping frame diff: %d drops triggered retransmission", res.FrameDrops)
		return
	}
	if diffs := DiffNodeFrames(traces, ref.NodeTraces); len(diffs) > 0 {
		t.Errorf("udp frame multisets diverge from loopback reference: %v", diffs)
	}
}
