package testnet

import (
	"armnet/internal/eventbus"
	"armnet/internal/wire"
)

// LeaseConfig arms hold-lease renewal over the wire. Every Period the
// controller sends each agent a LeaseRenew frame per live connection
// routed over the agent's links (a bare heartbeat when none is); an
// agent that misses MissBudget consecutive rounds is declared dead and
// its connections' reservations are reclaimed — released back to the
// ledger instead of leaking behind a crashed or partitioned node. A
// dead agent that acks again is resynced (re-LISTEN state transfer)
// before it is trusted.
type LeaseConfig struct {
	// Period is the renewal interval in scenario seconds; ≤0 disables
	// the lease machinery entirely.
	Period float64
	// MissBudget is how many consecutive failed rounds kill an agent
	// (≤0 → DefaultMissBudget).
	MissBudget int
}

// DefaultMissBudget is the consecutive-miss threshold when LeaseConfig
// leaves it zero.
const DefaultMissBudget = 3

// ttl returns the lease duration granted per renewal: the full miss
// budget's worth of periods, so node-side decay and controller-side
// death detection agree on the horizon.
func (c LeaseConfig) ttl() float64 { return c.Period * float64(c.missBudget()) }

func (c LeaseConfig) missBudget() int {
	if c.MissBudget <= 0 {
		return DefaultMissBudget
	}
	return c.MissBudget
}

// leaseManager runs the renewal rounds on the scenario clock. Agents
// are visited in the cluster's deterministic order and connections in
// sorted order, so the frame stream — and therefore the traces — are
// reproducible.
type leaseManager struct {
	cfg LeaseConfig
	r   *runner
	// miss counts consecutive failed rounds per agent; dead marks agents
	// past the budget whose reservations were reclaimed.
	miss map[string]int
	dead map[string]bool
	// Reclaims counts connections torn down by lease expiry.
	Reclaims int
}

func newLeaseManager(cfg LeaseConfig, r *runner) *leaseManager {
	return &leaseManager{
		cfg: cfg, r: r,
		miss: make(map[string]int),
		dead: make(map[string]bool),
	}
}

// tick runs one renewal round over every agent.
func (lm *leaseManager) tick() {
	ttl := lm.cfg.ttl()
	for _, agent := range lm.r.cluster.Names {
		conns := lm.r.connsVia(agent)
		ok := true
		if len(conns) == 0 {
			ok = lm.renew(agent, wire.LeaseRenew{TTL: ttl})
		} else {
			for _, conn := range conns {
				renew := wire.LeaseRenew{
					Conn: conn, Bandwidth: lm.r.routing.Reserve(conn), TTL: ttl,
				}
				if !lm.renew(agent, renew) {
					ok = false
					break
				}
			}
		}
		if ok {
			lm.miss[agent] = 0
			if lm.dead[agent] {
				delete(lm.dead, agent)
				lm.r.resyncAgent(agent, ttl)
			}
			continue
		}
		lm.miss[agent]++
		if lm.miss[agent] >= lm.cfg.missBudget() && !lm.dead[agent] {
			lm.dead[agent] = true
			lm.reclaim(agent)
		}
	}
}

// renew sends one renewal frame and records its round trip with the
// live observability layer (the RTT is zero in sim time on loopback —
// synchronous delivery — and the real ack wait on UDP).
func (lm *leaseManager) renew(agent string, m wire.LeaseRenew) bool {
	if lm.r.cfg.Obs == nil {
		return lm.r.tr.Control(agent, m)
	}
	start := lm.r.clk.Now()
	ok := lm.r.tr.Control(agent, m)
	lm.r.cfg.Obs.LeaseRenew(agent, start, lm.r.clk.Now(), ok)
	return ok
}

// reclaim releases every live reservation routed over a dead agent's
// links: the ledger gets the bandwidth back, the rate protocol drops
// the connection, and a HoldReclaimed event records each reclamation in
// the controller trace.
func (lm *leaseManager) reclaim(agent string) {
	conns := lm.r.connsVia(agent)
	for _, conn := range conns {
		route := lm.r.live[conn]
		lm.r.cfg.Obs.LeaseReclaim(conn)
		eventbus.Pub(lm.r.bus, eventbus.HoldReclaimed{
			Conn: conn, Link: "node:" + agent,
			Amount: lm.r.routing.Reserve(conn), Reason: "wire-lease",
		})
		lm.r.lg.Release(conn, route)
		lm.r.proto.RemoveConn(conn)
		delete(lm.r.live, conn)
		lm.Reclaims++
	}
	if len(conns) > 0 {
		lm.r.proto.KickAll()
	}
}
