package testnet

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sort"
	"time"

	"armnet/internal/admission"
	"armnet/internal/clock"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/faults"
	"armnet/internal/maxmin"
	"armnet/internal/netfaults"
	"armnet/internal/obs"
	"armnet/internal/obs/live"
	"armnet/internal/qos"
	"armnet/internal/signal"
	"armnet/internal/topology"
	"armnet/internal/wire"
)

// Config parameterizes a scenario run.
type Config struct {
	Mode Mode
	// Script is the timed step list (nil → CampusScript).
	Script []Step
	// Horizon is the settle time before the final audit (≤0 →
	// DefaultHorizon). In ModeUDP this is wall-clock seconds.
	Horizon float64
	// Peers maps agent name → "host:port" (ModeUDP only).
	Peers map[string]string
	// AckTimeout bounds the per-frame ack wait (ModeUDP only; ≤0 →
	// DefaultAckTimeout).
	AckTimeout time.Duration
	// Faults, when non-nil, interposes the netfaults chaos layer between
	// the protocols and the transport (live modes only; ModeSim has no
	// wire to break). An empty plan still wraps — proving the wrapped
	// empty path behaviour-identical is itself a test target.
	Faults *netfaults.Plan
	// FaultSeed salts the injector's RNG.
	FaultSeed int64
	// Lease arms wire hold-lease renewal (see LeaseConfig).
	Lease LeaseConfig
	// Readvertise, when positive, arms the maxmin periodic repair sweep
	// — required for convergence when fault injection can eat UPDATE
	// frames.
	Readvertise float64
	// Lenient makes handoff/close of an unknown connection a counted
	// no-op instead of a harness error. Fault plans legitimately create
	// such races: a lease reclaim can tear a connection down before the
	// script's own close reaches it.
	Lenient bool
	// Obs, when non-nil, arms the live observability layer: the recorder
	// is fed from the transport/lease/fault hook seams and can be scraped
	// concurrently by a telemetry server while the run is in flight. Nil
	// costs one pointer check per hook site (pinned zero-perturbation by
	// TestLiveObsZeroCost).
	Obs *live.Controller
	// hooks are timed callbacks with access to the runner — the soak
	// harness uses them for epoch plan swaps, scripted node faults, and
	// mid-run audits. Same-time hooks fire in slice order, after any
	// script step sharing the instant.
	hooks []soakHook
}

// soakHook is one timed runner callback (see Config.hooks).
type soakHook struct {
	at float64
	fn func(*runner)
}

// Result reports one scenario run.
type Result struct {
	Mode Mode
	// ControllerTrace is the controller bus JSONL — the live-vs-sim diff
	// target.
	ControllerTrace []byte
	// NodeTraces holds each in-process agent's JSONL trace (nil for
	// ModeSim; nil for ModeUDP, where node processes own their traces).
	NodeTraces map[string][]byte
	// FramesSent counts payload frames the transport delivered;
	// FrameDrops counts unacked sends.
	FramesSent, FrameDrops int
	// Commits and Aborted count scenario setups by outcome; Sessions and
	// Rollbacks mirror the plane's counters.
	Commits, Aborted, Sessions, Rollbacks int
	// Rates is the final committed maxmin allocation.
	Rates map[string]float64
	// Live lists connections still admitted at the end, sorted.
	Live []string
	// Violations aggregates auditor findings and harness faults; empty on
	// a clean run.
	Violations []string
	// Faults reports the chaos layer's counters (nil when no fault layer
	// was configured).
	Faults *FaultStats
	// SkippedOps counts script operations ignored under Lenient.
	SkippedOps int
	// LiveSnapshot is the merged cluster view (controller + in-process
	// node recorders) when Config.Obs was armed; nil otherwise.
	LiveSnapshot *obs.Snapshot
	// LiveSpans is the wire-span JSONL when Config.Obs was armed.
	LiveSpans []byte
}

// FaultStats aggregates what the chaos layer actually did to a run.
type FaultStats struct {
	// Drops/Dups/Delays/Reorders count injector rule firings.
	Drops, Dups, Delays, Reorders int
	// PartitionDrops counts frames eaten by down agents; Crashes and
	// Restarts count node lifecycle transitions.
	PartitionDrops, Crashes, Restarts int
	// LeaseReclaims counts connections reclaimed by lease expiry.
	LeaseReclaims int
}

// runner owns one scenario's control plane.
type runner struct {
	cfg     Config
	env     *topology.Environment
	cluster *Cluster
	routing *Routing
	clk     clock.Clock
	lg      *admission.Ledger
	plane   *signal.Plane
	proto   *maxmin.Protocol
	tr      transport
	faulty  *faultyTransport
	lease   *leaseManager
	bus     *eventbus.Bus
	nodes   map[string]*Node
	nodeObs []*live.NodeRecorder

	live    map[string]topology.Route
	mmLinks map[topology.LinkID]bool
	commits int
	aborted int
	skipped int
	errs    []string
}

func (r *runner) failf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// Run executes the scenario in the configured mode and returns its
// result. ModeSim and ModeLoopback are deterministic; ModeUDP blocks for
// the wall-clock horizon.
func Run(cfg Config) (*Result, error) {
	if cfg.Script == nil {
		cfg.Script = CampusScript()
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	env, err := topology.BuildCampus()
	if err != nil {
		return nil, err
	}

	var sim *des.Simulator
	var wall *clock.Wall
	var clk clock.Clock
	if cfg.Mode == ModeUDP {
		wall = clock.NewWall()
		clk = wall
	} else {
		sim = des.New()
		clk = clock.Sim(sim)
	}

	cfg.Obs.SetNow(clk.Now)
	r := &runner{
		cfg: cfg, env: env, clk: clk,
		cluster: NewCluster(env),
		routing: NewRouting(),
		live:    make(map[string]topology.Route),
		mmLinks: make(map[topology.LinkID]bool),
	}

	switch cfg.Mode {
	case ModeLoopback:
		r.nodes = make(map[string]*Node, len(r.cluster.Names))
		for _, name := range r.cluster.Names {
			n := NewNode(name, clk)
			if cfg.Obs != nil {
				nr := live.NewNodeRecorder(name)
				n.SetObs(nr)
				r.nodeObs = append(r.nodeObs, nr)
			}
			r.nodes[name] = n
		}
		lt := newLoopback(r.cluster, r.routing, r.nodes)
		lt.obs = cfg.Obs
		r.tr = lt
	case ModeUDP:
		tr, err := dialUDP(r.cluster, r.routing, cfg.Peers, cfg.AckTimeout)
		if err != nil {
			return nil, err
		}
		tr.obs = cfg.Obs
		r.tr = tr
	}

	if cfg.Faults != nil && r.tr != nil {
		r.faulty = newFaulty(r.tr, cfg.Faults, cfg.FaultSeed, clk, r.routing, r.cluster, r.nodes)
		r.faulty.obs = cfg.Obs
		r.tr = r.faulty
		armNodeFaults(clk, r.faulty, cfg.Faults.Nodes)
	}

	bus := eventbus.New(clk)
	r.bus = bus
	var trace bytes.Buffer
	rec := eventbus.AttachRecorder(bus, &trace)
	cfg.Obs.Attach(bus)

	r.lg = admission.NewLedger(env.Backbone)
	ctl := admission.NewController(r.lg)
	ctl.Bus = bus

	sigOpts := signal.Options{Bus: bus}
	mmOpts := maxmin.ProtocolOptions{Refined: true, ReadvertisePeriod: cfg.Readvertise}
	if r.tr != nil {
		sigOpts.Deliver = r.tr.SignalDeliver
		mmOpts.Deliver = r.tr.MaxminDeliver
		// Rollback sweeps release holds locally in the plane; mirror them
		// to the fabric so node agents observe aborts too.
		bus.Subscribe(func(rec eventbus.Record) {
			ev := rec.Event.(eventbus.SignalAbort)
			r.tr.Abort(ev.Conn, ev.Hop, ev.Reason)
		}, eventbus.KindSignalAbort)
	}
	r.plane = signal.NewPlaneOn(clk, ctl, r.lg, sigOpts)
	r.proto = maxmin.NewProtocolOn(clk, mmOpts)
	r.proto.Bus = bus

	// Lease TTL doubles as the resync grant after a crash restart; with
	// the lease machinery off, grant the whole horizon so a resynced
	// mirror never decays mid-run.
	resyncTTL := cfg.Horizon
	if cfg.Lease.Period > 0 {
		resyncTTL = cfg.Lease.ttl()
		r.lease = newLeaseManager(cfg.Lease, r)
		clk.Every(cfg.Lease.Period, r.lease.tick)
	}
	if r.faulty != nil {
		r.faulty.onRestart = func(agent string) { r.resyncAgent(agent, resyncTTL) }
	}

	if r.tr != nil {
		if err := r.tr.Hello(); err != nil {
			return nil, err
		}
	}

	for _, st := range cfg.Script {
		st := st
		clk.PostAfter(st.At, func() { r.exec(st) })
	}
	for _, h := range cfg.hooks {
		h := h
		clk.PostAfter(h.at, func() { h.fn(r) })
	}

	if cfg.Mode == ModeUDP {
		done := make(chan struct{})
		clk.After(cfg.Horizon, func() { close(done) })
		select {
		case <-done:
		case <-time.After(time.Duration((cfg.Horizon + 30) * float64(time.Second))):
			return nil, fmt.Errorf("testnet: wall-clock horizon never fired")
		}
		var res *Result
		wall.Run(func() { res = r.collect(rec, &trace) })
		r.tr.Shutdown()
		return res, nil
	}

	if err := sim.RunUntil(cfg.Horizon); err != nil {
		return nil, err
	}
	res := r.collect(rec, &trace)
	if r.tr != nil {
		r.tr.Shutdown()
		res.FramesSent = r.tr.Sent() // include the shutdown frames
		res.NodeTraces = make(map[string][]byte, len(r.nodes))
		for name, n := range r.nodes {
			nt, err := n.Trace()
			if err != nil {
				return nil, fmt.Errorf("testnet: %s trace: %w", name, err)
			}
			res.NodeTraces[name] = nt
		}
	}
	return res, nil
}

// exec runs one scenario step (on the scenario clock, so under the wall
// lock in live mode).
func (r *runner) exec(st Step) {
	switch st.Op {
	case OpSetup:
		r.setup(st, admission.KindNew)
	case OpHandoff:
		r.handoff(st)
	case OpClose:
		r.close(st.Conn)
	case OpCapacity:
		r.capacity(st)
	default:
		r.failf("unknown op %d", st.Op)
	}
}

func (r *runner) setup(st Step, kind admission.Kind) {
	if len(r.env.Hosts) == 0 {
		r.failf("no wired hosts")
		return
	}
	host := r.env.Hosts[st.Host%len(r.env.Hosts)]
	route, err := r.env.Backbone.ShortestPath(host, topology.AirNode(st.Cell))
	if err != nil {
		r.failf("route %s→%s: %v", host, st.Cell, err)
		return
	}
	r.routing.Register(st.Conn, route, st.Min)
	test := admission.Test{
		ConnID: st.Conn,
		Req: qos.Request{
			Bandwidth: qos.Bounds{Min: st.Min, Max: st.Max},
			Delay:     5, Jitter: 5, Loss: 0.05,
			Traffic: qos.TrafficSpec{Sigma: 16e3, Rho: st.Min},
		},
		Route: route, Kind: kind, Mobility: qos.Mobile,
	}
	r.plane.Setup(test, func(res signal.Result) {
		if res.Err != nil {
			r.aborted++
			return
		}
		r.live[st.Conn] = route
		r.commits++
		r.joinMaxmin(st.Conn, route, st.Max-st.Min)
	})
}

// joinMaxmin registers a committed connection's excess demand with the
// rate protocol and kicks an adaptation session. The scenario treats the
// full link capacity as the shareable pool (no adaptation manager sits
// between the ledger and the protocol here); the water-filling oracle in
// the final audit uses the same capacities, so the convergence check is
// self-consistent.
func (r *runner) joinMaxmin(conn string, route topology.Route, demand float64) {
	if demand <= 0 {
		return
	}
	path := make([]string, 0, len(route.Links))
	for _, l := range route.Links {
		path = append(path, string(l.ID))
		if !r.mmLinks[l.ID] {
			r.mmLinks[l.ID] = true
			ls := r.lg.Link(l.ID)
			cap := l.Capacity
			if ls != nil {
				cap = ls.Capacity
			}
			if err := r.proto.AddLink(string(l.ID), cap); err != nil {
				r.failf("maxmin link %s: %v", l.ID, err)
				return
			}
		}
	}
	if err := r.proto.AddConn(maxmin.Conn{ID: conn, Path: path, Demand: demand}); err != nil {
		r.failf("maxmin conn %s: %v", conn, err)
		return
	}
	r.proto.Kick(conn)
}

// handoff re-homes a live connection: break-before-make, releasing the
// old path before the handoff admission test runs on the new one.
func (r *runner) handoff(st Step) {
	route, ok := r.live[st.Conn]
	if !ok {
		if r.cfg.Lenient {
			r.skipped++
			return
		}
		r.failf("handoff of unknown conn %s", st.Conn)
		return
	}
	r.cfg.Obs.HandoffBreak(st.Conn, string(route.Dest()), string(topology.AirNode(st.Cell)))
	r.lg.Release(st.Conn, route)
	r.proto.RemoveConn(st.Conn)
	delete(r.live, st.Conn)
	r.proto.KickAll()
	r.setup(st, admission.KindHandoff)
}

func (r *runner) close(conn string) {
	route, ok := r.live[conn]
	if !ok {
		if r.cfg.Lenient {
			r.skipped++
			return
		}
		r.failf("close of unknown conn %s", conn)
		return
	}
	r.lg.Release(conn, route)
	r.proto.RemoveConn(conn)
	delete(r.live, conn)
	r.proto.KickAll()
}

// capacity drops (or raises) a cell's wireless capacity in the ledger
// and tells the rate protocol, which re-advertises affected connections.
func (r *runner) capacity(st Step) {
	cell := r.env.Universe.Cell(st.Cell)
	if cell == nil {
		r.failf("capacity change for unknown cell %s", st.Cell)
		return
	}
	id := topology.LinkID(string(cell.BaseStation) + "->" + string(topology.AirNode(st.Cell)))
	if err := r.lg.SetCapacity(id, st.Capacity); err != nil {
		r.failf("set capacity %s: %v", id, err)
		return
	}
	if r.mmLinks[id] {
		if _, err := r.proto.TriggerCapacityChange(string(id), st.Capacity); err != nil {
			r.failf("trigger capacity %s: %v", id, err)
		}
	}
}

// collect runs the final audit and assembles the result.
func (r *runner) collect(rec *eventbus.Recorder, trace *bytes.Buffer) *Result {
	aud := faults.Auditor{
		Ledger:       r.lg,
		PendingHolds: r.plane.PendingTotal,
		LiveConns:    r.liveConns,
		ConvergenceGap: func() float64 {
			return convergenceGap(r.proto)
		},
		GapTol: 1e-6,
	}
	viol := append([]string(nil), aud.CheckFinal()...)
	viol = append(viol, r.errs...)
	if r.tr != nil {
		viol = append(viol, r.tr.Errs()...)
		if r.routing.Unrouted > 0 {
			viol = append(viol, fmt.Sprintf("unrouted-hops: %d", r.routing.Unrouted))
		}
	}
	if err := rec.Err(); err != nil {
		viol = append(viol, fmt.Sprintf("controller-trace: %v", err))
	}
	res := &Result{
		Mode:            r.cfg.Mode,
		ControllerTrace: append([]byte(nil), trace.Bytes()...),
		Commits:         r.commits,
		Aborted:         r.aborted,
		Sessions:        r.plane.Sessions,
		Rollbacks:       r.plane.Rollbacks,
		Rates:           r.proto.Rates(),
		Live:            r.liveConns(),
		Violations:      viol,
	}
	if r.tr != nil {
		res.FramesSent = r.tr.Sent()
		res.FrameDrops = r.tr.Drops()
	}
	res.SkippedOps = r.skipped
	if r.cfg.Obs != nil {
		r.cfg.Obs.Finish(r.clk.Now())
		snap, err := live.ClusterSnapshot(r.cfg.Obs, r.nodeObs)
		if err != nil {
			viol = append(viol, fmt.Sprintf("live-obs: %v", err))
			res.Violations = viol
		}
		res.LiveSnapshot = snap
		res.LiveSpans = r.cfg.Obs.SpansJSONL()
	}
	if r.faulty != nil {
		fs := &FaultStats{
			PartitionDrops: r.faulty.PartitionDrops,
			Crashes:        r.faulty.Crashes,
			Restarts:       r.faulty.Restarts,
		}
		fs.Drops, fs.Dups, fs.Delays, fs.Reorders = r.faulty.Stats()
		if r.lease != nil {
			fs.LeaseReclaims = r.lease.Reclaims
		}
		res.Faults = fs
	}
	return res
}

func (r *runner) liveConns() []string {
	out := make([]string, 0, len(r.live))
	for id := range r.live {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// connsVia lists the live connections with at least one route link owned
// by the agent, sorted for deterministic frame order.
func (r *runner) connsVia(agent string) []string {
	var out []string
	for conn, route := range r.live {
		for _, l := range route.Links {
			if r.cluster.Assign(l.ID) == agent {
				out = append(out, conn)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// resyncAgent runs the controller side of the re-LISTEN handshake with
// an agent that restarted or healed: re-hello, then replay every live
// reservation crossing its links as Resync frames.
func (r *runner) resyncAgent(agent string, ttl float64) {
	r.cfg.Obs.Resync(agent)
	r.tr.Control(agent, wire.Hello{Node: agent})
	for _, conn := range r.connsVia(agent) {
		r.tr.Control(agent, wire.Resync{
			Conn: conn, Bandwidth: r.routing.Reserve(conn), TTL: ttl,
		})
	}
}

// armNodeFaults schedules a plan's partition/crash events on the
// scenario clock.
func armNodeFaults(clk clock.Clock, ft *faultyTransport, faults []netfaults.NodeFault) {
	for _, nf := range faults {
		nf := nf
		switch nf.Action {
		case "partition":
			clk.PostAfter(nf.At, func() { ft.Partition(nf.Node) })
			clk.PostAfter(nf.At+nf.For, func() { ft.Heal(nf.Node) })
		case "crash":
			clk.PostAfter(nf.At, func() { ft.Crash(nf.Node) })
			if nf.For > 0 {
				clk.PostAfter(nf.At+nf.For, func() { ft.Restart(nf.Node) })
			}
		}
	}
}

// convergenceGap measures the protocol's final distance from the
// centralized water-filling oracle on its own problem instance.
func convergenceGap(pr *maxmin.Protocol) float64 {
	p := pr.Problem()
	if len(p.Conns) == 0 {
		return 0
	}
	oracle, err := maxmin.WaterFill(p)
	if err != nil {
		return math.Inf(1)
	}
	rates := pr.Rates()
	gap := 0.0
	for id, want := range oracle {
		if d := math.Abs(rates[id] - want); d > gap {
			gap = d
		}
	}
	return gap
}

// ServeNodeUDP is the node-process entry: bind, serve until Shutdown,
// return the trace. Exported for cmd/armnode and the in-process UDP
// test.
func ServeNodeUDP(name string, pc *net.UDPConn) (*Node, error) {
	n := NewNode(name, clock.NewWall())
	if err := n.ServeUDP(pc); err != nil {
		return n, err
	}
	return n, nil
}
