package testnet

import (
	"armnet/internal/clock"
	"armnet/internal/netfaults"
	"armnet/internal/obs/live"
	"armnet/internal/wire"
)

// faultyTransport is the chaos layer: it wraps a real transport
// (loopback or UDP alike) and applies a netfaults plan at the frame
// boundary — per-link drop/dup/delay/reorder verdicts plus node
// partitions and crashes — while the protocol code and the inner fabric
// stay untouched. An empty injector makes every method a straight
// delegation with no random draws, so wrapping with an empty plan is
// behaviour-preserving (the zero-cost contract the loopback gate pins).
//
// Partition and crash state lives here, not in the plan: the harness
// arms NodeFault entries on the scenario clock and calls
// Partition/Heal/Crash/Restart at the scripted instants.
type faultyTransport struct {
	inner   transport
	inj     *netfaults.Injector
	clk     clock.Clock
	routing *Routing
	cluster *Cluster
	// nodes lets a crash wipe the in-process agent's volatile state
	// (nil under UDP, where the node process owns its own lifecycle).
	nodes map[string]*Node
	// down marks agents currently unreachable (partitioned or crashed);
	// frames to them vanish without an ack.
	down map[string]bool
	// onRestart, when set, runs after a crashed agent comes back — the
	// controller's re-LISTEN handshake (hello + state resync).
	onRestart func(agent string)
	// obs, when armed, counts every verdict by family; nil costs one
	// pointer check per firing (not per frame — clean frames skip it).
	obs *live.Controller

	// PartitionDrops counts frames eaten by down agents; Crashes and
	// Restarts count node lifecycle transitions the layer executed.
	PartitionDrops, Crashes, Restarts int
	// acc accumulates injector counters across SetPlan swaps, so epoch
	// rotation does not lose the earlier epochs' firings.
	acc [4]int
}

func newFaulty(inner transport, plan *netfaults.Plan, seed int64, clk clock.Clock, routing *Routing, cluster *Cluster, nodes map[string]*Node) *faultyTransport {
	return &faultyTransport{
		inner: inner, inj: netfaults.NewInjector(plan, seed),
		clk: clk, routing: routing, cluster: cluster, nodes: nodes,
		down: make(map[string]bool),
	}
}

// SetPlan swaps the active fault plan (soak epochs rotate plans); nil
// disables injection while keeping partition/crash state. The outgoing
// injector's counters are folded into the running totals.
func (t *faultyTransport) SetPlan(plan *netfaults.Plan, seed int64) {
	if in := t.inj; in != nil {
		t.acc[0] += in.Drops
		t.acc[1] += in.Dups
		t.acc[2] += in.Delays
		t.acc[3] += in.Reorders
	}
	if plan == nil {
		t.inj = nil
		return
	}
	t.inj = netfaults.NewInjector(plan, seed)
}

// Stats returns the cumulative injector firings — across every plan the
// layer has run, including the live one.
func (t *faultyTransport) Stats() (drops, dups, delays, reorders int) {
	drops, dups, delays, reorders = t.acc[0], t.acc[1], t.acc[2], t.acc[3]
	if in := t.inj; in != nil {
		drops += in.Drops
		dups += in.Dups
		delays += in.Delays
		reorders += in.Reorders
	}
	return
}

// Partition makes an agent unreachable without losing its state.
func (t *faultyTransport) Partition(agent string) { t.down[agent] = true }

// Heal restores reachability after a partition.
func (t *faultyTransport) Heal(agent string) { delete(t.down, agent) }

// Crash takes an agent down and wipes its volatile state.
func (t *faultyTransport) Crash(agent string) {
	t.down[agent] = true
	t.Crashes++
	t.obs.Verdict("crash")
	if n := t.nodes[agent]; n != nil {
		n.Restart() // state is lost at the crash; the process slot stays
	}
}

// Restart brings a crashed agent back and runs the controller-side
// re-LISTEN handshake.
func (t *faultyTransport) Restart(agent string) {
	delete(t.down, agent)
	t.Restarts++
	t.obs.Verdict("restart")
	if t.onRestart != nil {
		t.onRestart(agent)
	}
}

// Down reports whether an agent is currently unreachable.
func (t *faultyTransport) Down(agent string) bool { return t.down[agent] }

// deliver applies the fault pipeline to one hop-addressed frame: the
// partition check first (a down agent eats the frame), then the
// injector verdict — drop wins outright; a reorder detaches the frame
// onto the clock so later frames overtake it; dup and delay compose
// with normal delivery.
func (t *faultyTransport) deliver(proto, link, agent string, fwd func() (bool, float64)) (bool, float64) {
	if t.down[agent] {
		t.PartitionDrops++
		t.obs.Verdict("partition")
		return true, 0
	}
	v := t.inj.Frame(proto, link)
	if v.Drop {
		t.obs.Verdict("drop")
		return true, 0
	}
	if v.Delay > 0 {
		t.obs.Verdict("delay")
	}
	if v.Reorder > 0 {
		t.obs.Verdict("reorder")
		t.clk.PostAfter(v.Reorder, func() {
			if t.down[agent] {
				t.PartitionDrops++
				t.obs.Verdict("partition")
				return
			}
			fwd()
		})
		return false, v.Delay
	}
	drop, delay := fwd()
	if v.Dup && !drop {
		t.obs.Verdict("dup")
		fwd()
	}
	return drop, delay + v.Delay
}

func (t *faultyTransport) SignalDeliver(conn string, hop int) (bool, float64) {
	link, ok := t.routing.PeekSignal(conn, hop)
	if !ok {
		// Unroutable: let the inner transport resolve (and count) it.
		return t.inner.SignalDeliver(conn, hop)
	}
	return t.deliver("signal", string(link), t.cluster.Assign(link), func() (bool, float64) {
		return t.inner.SignalDeliver(conn, hop)
	})
}

func (t *faultyTransport) MaxminDeliver(conn string, hop int, update bool) (bool, float64) {
	link, ok := t.routing.PeekMaxmin(conn, hop, update)
	if !ok {
		return t.inner.MaxminDeliver(conn, hop, update)
	}
	return t.deliver("maxmin", string(link), t.cluster.Assign(link), func() (bool, float64) {
		return t.inner.MaxminDeliver(conn, hop, update)
	})
}

func (t *faultyTransport) Abort(conn string, hop int, reason string) {
	// Abort mirroring is void (rollback already happened controller-side)
	// so only the loss faults apply: a down agent or a drop verdict eats
	// the frame, everything else delivers.
	link, ok := t.routing.PeekSignal(conn, hop)
	if ok {
		agent := t.cluster.Assign(link)
		if t.down[agent] {
			t.PartitionDrops++
			t.obs.Verdict("partition")
			return
		}
		if t.inj.Frame("signal", string(link)).Drop {
			t.obs.Verdict("drop")
			return
		}
	}
	t.inner.Abort(conn, hop, reason)
}

// Control frames (lease renewals, resync, re-hello) are exempt from the
// probabilistic rules — they are the recovery channel the faults are
// supposed to exercise — but a down agent still eats them: that is
// exactly how the controller detects death.
func (t *faultyTransport) Control(agent string, m wire.Message) bool {
	if t.down[agent] {
		t.PartitionDrops++
		t.obs.Verdict("partition")
		return false
	}
	return t.inner.Control(agent, m)
}

func (t *faultyTransport) Hello() error   { return t.inner.Hello() }
func (t *faultyTransport) Shutdown()      { t.inner.Shutdown() }
func (t *faultyTransport) Sent() int      { return t.inner.Sent() }
func (t *faultyTransport) Drops() int     { return t.inner.Drops() }
func (t *faultyTransport) Errs() []string { return t.inner.Errs() }
