package testnet

import (
	"bytes"
	"fmt"
	"net"
	"sort"

	"armnet/internal/eventbus"
	"armnet/internal/obs/live"
	"armnet/internal/wire"
)

// Node is one testnet agent: it decodes every frame addressed to it,
// records a WireDelivery event on its own bus (serialized to a JSONL
// trace), and acks. Protocol state lives in the controller; the node
// mirrors delivery, which is exactly what the live-vs-sim diff needs.
//
// A node is single-threaded: the loopback fabric calls HandleFrame
// synchronously, and ServeUDP runs one read loop.
type Node struct {
	Name string
	// Received counts non-ack frames processed; Malformed counts frames
	// Decode rejected; Oversized counts datagrams larger than a legal
	// frame, dropped before decoding; Restarts counts crash recoveries.
	Received, Malformed, Oversized, Restarts int

	clk    eventbus.Clock
	bus    *eventbus.Bus
	rec    *eventbus.Recorder
	buf    bytes.Buffer
	ackSeq uint32
	ackBuf []byte

	// mirror is the node's copy of committed reservations crossing its
	// links (conn → bandwidth), maintained from commit/abort/resync
	// frames; lease holds the expiry instant of each mirrored entry in
	// the node's own clock coordinates. Entries whose lease lapses are
	// pruned silently — map iteration feeds no events, so pruning order
	// cannot leak into the trace.
	mirror map[string]float64
	lease  map[string]float64

	// obs, when armed via SetObs, records receive-side wire instruments;
	// nil costs one pointer check per frame.
	obs *live.NodeRecorder
}

// SetObs arms the node's live observability recorder (nil disarms). Set
// it before serving; the recorder itself is safe for concurrent scrape.
func (n *Node) SetObs(rec *live.NodeRecorder) { n.obs = rec }

// NewNode builds a node stamping its trace from the given clock — the
// shared simulator clock in loopback mode, the node's own wall clock in
// a live process.
func NewNode(name string, clk eventbus.Clock) *Node {
	n := &Node{
		Name:   name,
		clk:    clk,
		ackBuf: make([]byte, 0, wire.MaxFrame),
		mirror: make(map[string]float64),
		lease:  make(map[string]float64),
	}
	n.bus = eventbus.New(clk)
	n.rec = eventbus.AttachRecorder(n.bus, &n.buf)
	return n
}

// HandleFrame processes one datagram: decode, record, ack. The returned
// ack frame shares the node's buffer and is valid until the next call;
// shutdown reports whether the frame asked the node to exit.
func (n *Node) HandleFrame(frame []byte) (ack []byte, shutdown bool, err error) {
	m, seq, err := wire.Decode(frame)
	if err != nil {
		n.Malformed++
		n.obs.Malformed()
		return nil, false, err
	}
	n.obs.FrameRx(m.WireType(), len(frame))
	if _, isAck := m.(wire.Ack); !isAck {
		n.Received++
		proto, conn, hop := classify(m)
		eventbus.Pub(n.bus, eventbus.WireDelivery{
			Node: n.Name, Proto: proto, Type: m.WireType().String(),
			Conn: conn, Hop: hop, Bytes: len(frame),
		})
	}
	n.applyState(m)
	n.ackSeq++
	ack, err = wire.AppendFrame(n.ackBuf[:0], n.ackSeq, wire.Ack{AckSeq: seq})
	if err != nil {
		return nil, false, err
	}
	n.ackBuf = ack[:0]
	_, shutdown = m.(wire.Shutdown)
	return ack, shutdown, nil
}

// applyState folds a frame into the node's reservation mirror. Commit
// installs, abort removes, resync reinstalls after a restart, and a
// renewal pushes the lease deadline out. Expired leases are pruned
// first, so a connection whose controller vanished decays on its own.
func (n *Node) applyState(m wire.Message) {
	now := n.clk.Now()
	for conn, until := range n.lease {
		if until < now {
			delete(n.lease, conn)
			delete(n.mirror, conn)
		}
	}
	switch v := m.(type) {
	case wire.SignalCommit:
		n.mirror[v.Conn] = v.Bandwidth
	case wire.SignalAbort:
		delete(n.mirror, v.Conn)
		delete(n.lease, v.Conn)
	case wire.Resync:
		n.mirror[v.Conn] = v.Bandwidth
		n.lease[v.Conn] = now + v.TTL
	case wire.LeaseRenew:
		if v.Conn == "" {
			return // bare heartbeat
		}
		n.mirror[v.Conn] = v.Bandwidth
		n.lease[v.Conn] = now + v.TTL
	}
}

// Restart models a crash recovery: volatile reservation state is lost,
// counters and the trace buffer survive (they belong to the harness,
// not the node's RAM).
func (n *Node) Restart() {
	n.Restarts++
	n.obs.Restart()
	n.mirror = make(map[string]float64)
	n.lease = make(map[string]float64)
}

// Mirror returns the node's reservation mirror as sorted "conn=bw"
// strings — a deterministic snapshot for tests and audits.
func (n *Node) Mirror() []string {
	out := make([]string, 0, len(n.mirror))
	for conn, bw := range n.mirror {
		out = append(out, fmt.Sprintf("%s=%g", conn, bw))
	}
	sort.Strings(out)
	return out
}

// Trace returns the node's JSONL event trace, failing if the recorder
// latched a write or sequence error.
func (n *Node) Trace() ([]byte, error) {
	if err := n.rec.Err(); err != nil {
		return nil, err
	}
	return n.buf.Bytes(), nil
}

// ServeUDP answers frames on the socket until a Shutdown frame arrives
// or the socket fails. Hostile datagrams never stop the loop: oversized
// ones (larger than any legal frame) are counted and dropped before
// decoding, and malformed ones are counted and dropped by HandleFrame.
// Neither is acked, so a sender sees them exactly like wire loss.
func (n *Node) ServeUDP(pc *net.UDPConn) error {
	buf := make([]byte, wire.MaxFrame+1)
	for {
		sz, addr, err := pc.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		if sz > wire.MaxFrame {
			n.Oversized++
			n.obs.Oversized()
			continue
		}
		ack, shutdown, err := n.HandleFrame(buf[:sz])
		if err != nil {
			continue
		}
		if _, err := pc.WriteToUDP(ack, addr); err != nil {
			return fmt.Errorf("testnet: %s ack: %w", n.Name, err)
		}
		if shutdown {
			return nil
		}
	}
}

// classify maps a wire message to the protocol family and addressing the
// WireDelivery event records.
func classify(m wire.Message) (proto, conn string, hop int) {
	switch v := m.(type) {
	case wire.SignalSetup:
		return "signal", v.Conn, int(v.Hop)
	case wire.SignalCommit:
		return "signal", v.Conn, int(v.Hop)
	case wire.SignalAbort:
		return "signal", v.Conn, int(v.Hop)
	case wire.Advertise:
		return "maxmin", v.Conn, int(v.Hop)
	case wire.Update:
		return "maxmin", v.Conn, int(v.Hop)
	case wire.LeaseRenew:
		return "lease", v.Conn, 0
	case wire.Resync:
		return "lease", v.Conn, 0
	case wire.Hello:
		return "ctl", "", 0
	default:
		return "ctl", "", 0
	}
}
