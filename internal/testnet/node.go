package testnet

import (
	"bytes"
	"fmt"
	"net"

	"armnet/internal/eventbus"
	"armnet/internal/wire"
)

// Node is one testnet agent: it decodes every frame addressed to it,
// records a WireDelivery event on its own bus (serialized to a JSONL
// trace), and acks. Protocol state lives in the controller; the node
// mirrors delivery, which is exactly what the live-vs-sim diff needs.
//
// A node is single-threaded: the loopback fabric calls HandleFrame
// synchronously, and ServeUDP runs one read loop.
type Node struct {
	Name string
	// Received counts non-ack frames processed; Malformed counts frames
	// Decode rejected.
	Received, Malformed int

	bus    *eventbus.Bus
	rec    *eventbus.Recorder
	buf    bytes.Buffer
	ackSeq uint32
	ackBuf []byte
}

// NewNode builds a node stamping its trace from the given clock — the
// shared simulator clock in loopback mode, the node's own wall clock in
// a live process.
func NewNode(name string, clk eventbus.Clock) *Node {
	n := &Node{Name: name, ackBuf: make([]byte, 0, wire.MaxFrame)}
	n.bus = eventbus.New(clk)
	n.rec = eventbus.AttachRecorder(n.bus, &n.buf)
	return n
}

// HandleFrame processes one datagram: decode, record, ack. The returned
// ack frame shares the node's buffer and is valid until the next call;
// shutdown reports whether the frame asked the node to exit.
func (n *Node) HandleFrame(frame []byte) (ack []byte, shutdown bool, err error) {
	m, seq, err := wire.Decode(frame)
	if err != nil {
		n.Malformed++
		return nil, false, err
	}
	if _, isAck := m.(wire.Ack); !isAck {
		n.Received++
		proto, conn, hop := classify(m)
		eventbus.Pub(n.bus, eventbus.WireDelivery{
			Node: n.Name, Proto: proto, Type: m.WireType().String(),
			Conn: conn, Hop: hop, Bytes: len(frame),
		})
	}
	n.ackSeq++
	ack, err = wire.AppendFrame(n.ackBuf[:0], n.ackSeq, wire.Ack{AckSeq: seq})
	if err != nil {
		return nil, false, err
	}
	n.ackBuf = ack[:0]
	_, shutdown = m.(wire.Shutdown)
	return ack, shutdown, nil
}

// Trace returns the node's JSONL event trace, failing if the recorder
// latched a write or sequence error.
func (n *Node) Trace() ([]byte, error) {
	if err := n.rec.Err(); err != nil {
		return nil, err
	}
	return n.buf.Bytes(), nil
}

// ServeUDP answers frames on the socket until a Shutdown frame arrives
// or the socket fails. Malformed datagrams are counted and dropped.
func (n *Node) ServeUDP(pc *net.UDPConn) error {
	buf := make([]byte, wire.MaxFrame+1)
	for {
		sz, addr, err := pc.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		ack, shutdown, err := n.HandleFrame(buf[:sz])
		if err != nil {
			continue
		}
		if _, err := pc.WriteToUDP(ack, addr); err != nil {
			return fmt.Errorf("testnet: %s ack: %w", n.Name, err)
		}
		if shutdown {
			return nil
		}
	}
}

// classify maps a wire message to the protocol family and addressing the
// WireDelivery event records.
func classify(m wire.Message) (proto, conn string, hop int) {
	switch v := m.(type) {
	case wire.SignalSetup:
		return "signal", v.Conn, int(v.Hop)
	case wire.SignalCommit:
		return "signal", v.Conn, int(v.Hop)
	case wire.SignalAbort:
		return "signal", v.Conn, int(v.Hop)
	case wire.Advertise:
		return "maxmin", v.Conn, int(v.Hop)
	case wire.Update:
		return "maxmin", v.Conn, int(v.Hop)
	case wire.Hello:
		return "ctl", "", 0
	default:
		return "ctl", "", 0
	}
}
