package testnet

import "armnet/internal/topology"

// Op enumerates scenario step kinds.
type Op int

const (
	// OpSetup admits a new connection from a wired host to a cell.
	OpSetup Op = iota
	// OpHandoff moves a live connection to a new cell: release the old
	// path, then re-admit on the new one with the handoff test.
	OpHandoff
	// OpClose releases a live connection.
	OpClose
	// OpCapacity changes a cell's wireless capacity (ledger + maxmin).
	OpCapacity
)

// Step is one timed scenario action.
type Step struct {
	// At is the step's offset from scenario start in seconds.
	At float64
	Op Op
	// Conn names the connection (setup/handoff/close).
	Conn string
	// Cell is the target cell (setup/handoff destination, capacity site).
	Cell topology.CellID
	// Host indexes the wired correspondent host (modulo available hosts).
	Host int
	// Min and Max are the requested bandwidth bounds (setup/handoff).
	Min, Max float64
	// Capacity is the new wireless capacity (OpCapacity).
	Capacity float64
}

// CampusScript is the canonical scenario every mode runs: five setups
// (one over-subscribed, exercising the end-to-end abort path), two
// handoffs, a wireless capacity drop, and two closes, on the BuildCampus
// topology. Steps are spaced far enough apart that no two signaling
// sessions overlap, keeping the wall-clock run's interleaving close to
// the simulator's.
func CampusScript() []Step {
	return []Step{
		{At: 0.05, Op: OpSetup, Conn: "alice:0", Cell: "off-1", Host: 0, Min: 256e3, Max: 1.2e6},
		{At: 0.15, Op: OpSetup, Conn: "bob:0", Cell: "off-2", Host: 0, Min: 256e3, Max: 1.0e6},
		{At: 0.25, Op: OpSetup, Conn: "carol:0", Cell: "off-2", Host: 1, Min: 200e3, Max: 800e3},
		{At: 0.35, Op: OpSetup, Conn: "dave:0", Cell: "off-3", Host: 1, Min: 300e3, Max: 1.4e6},
		// greedy asks for more than the 1.6 Mb/s air interface: the
		// forward pass rejects at the wireless hop and the rollback sweep
		// exercises the abort path end to end.
		{At: 0.45, Op: OpSetup, Conn: "greedy:0", Cell: "lounge", Host: 0, Min: 2e6, Max: 2e6},
		{At: 0.60, Op: OpHandoff, Conn: "alice:0", Cell: "cor-w1", Host: 0, Min: 256e3, Max: 1.2e6},
		{At: 0.80, Op: OpCapacity, Cell: "off-2", Capacity: 1.2e6},
		{At: 1.00, Op: OpClose, Conn: "bob:0"},
		{At: 1.20, Op: OpHandoff, Conn: "dave:0", Cell: "cor-e1", Host: 1, Min: 300e3, Max: 1.4e6},
		{At: 1.40, Op: OpClose, Conn: "carol:0"},
	}
}

// DefaultHorizon leaves the protocols ample settle time after the last
// scripted step before the final audit.
const DefaultHorizon = 3.0
