package testnet

import (
	"fmt"
	"net"
	"time"

	"armnet/internal/obs/live"
	"armnet/internal/topology"
	"armnet/internal/wire"
)

// transport is the delivery fabric behind the protocol hook seams. Both
// implementations translate (conn, hop) coordinates into one wire frame
// addressed to the agent owning the hop's link; they differ only in how
// the frame travels.
//
// Hop-level frames carry addressing (conn, hop, the reserve bandwidth
// the routing registry knows), not protocol internals: stamped rates
// live inside the controller's state machines, which the hook seam
// deliberately hides.
type transport interface {
	// SignalDeliver implements signal.Deliver.
	SignalDeliver(conn string, hop int) (drop bool, delay float64)
	// MaxminDeliver implements maxmin.Deliver.
	MaxminDeliver(conn string, hop int, update bool) (drop bool, delay float64)
	// Abort mirrors a rollback sweep to the fabric (driven off the
	// controller's SignalAbort events, since rollbacks release state
	// locally rather than crossing the delivery seam).
	Abort(conn string, hop int, reason string)
	// Control sends one out-of-band controller frame (lease renewals,
	// resync state transfer, re-hello) to a named agent and reports
	// whether it was acked. Control frames bypass the routing registry —
	// they are addressed to an agent, not a hop.
	Control(agent string, m wire.Message) bool
	// Hello announces the controller to every agent; Shutdown asks the
	// agents to exit after acking.
	Hello() error
	Shutdown()
	// Sent counts payload frames delivered; Drops counts frames that
	// timed out unacked (always zero on loopback).
	Sent() int
	Drops() int
	// Errs reports fabric-level faults (unroutable hops, bad acks).
	Errs() []string
}

// signalFrame builds the frame for one signal-plane hop.
func signalFrame(r *Routing, conn string, hop int) (wire.Message, topology.LinkID, bool) {
	link, commit, ok := r.SignalHop(conn, hop)
	if !ok {
		return nil, "", false
	}
	bw := r.Reserve(conn)
	if commit {
		return wire.SignalCommit{Conn: conn, Hop: uint16(hop), Bandwidth: bw}, link, true
	}
	return wire.SignalSetup{Conn: conn, Hop: uint16(hop), Bandwidth: bw}, link, true
}

// maxminFrame builds the frame for one maxmin hop.
func maxminFrame(r *Routing, conn string, hop int, update bool) (wire.Message, topology.LinkID, bool) {
	link, ok := r.MaxminHop(conn, hop, update)
	if !ok {
		return nil, "", false
	}
	if update {
		return wire.Update{Conn: conn, Hop: uint16(hop)}, link, true
	}
	return wire.Advertise{Conn: conn, Hop: uint16(hop)}, link, true
}

// abortFrame builds the frame for a rollback sweep: it travels toward
// the source, addressed to the agent owning the failed hop's link (the
// last link actually reached when the failure was past the route).
func abortFrame(r *Routing, conn string, hop int, reason string) (wire.Message, topology.LinkID, bool) {
	links := r.signal[conn]
	if len(links) == 0 {
		return nil, "", false
	}
	i := hop
	if i >= len(links) {
		i = len(links) - 1
	}
	if i < 0 {
		i = 0
	}
	return wire.SignalAbort{Conn: conn, Hop: uint16(hop), Reason: reason}, links[i], true
}

// loopbackTransport delivers frames by calling the in-process node
// agents directly: synchronous, zero added delay, no sockets. Running on
// the simulator clock it is fully deterministic, which makes it the CI
// fabric.
type loopbackTransport struct {
	cluster *Cluster
	routing *Routing
	nodes   map[string]*Node
	seq     uint32
	buf     []byte
	sent    int
	errs    []string
	// obs, when armed, records every frame handed to an agent; nil costs
	// one pointer check per send.
	obs *live.Controller
}

func newLoopback(cluster *Cluster, routing *Routing, nodes map[string]*Node) *loopbackTransport {
	return &loopbackTransport{
		cluster: cluster, routing: routing, nodes: nodes,
		buf: make([]byte, 0, wire.MaxFrame),
	}
}

func (t *loopbackTransport) failf(format string, args ...any) {
	t.errs = append(t.errs, fmt.Sprintf(format, args...))
}

// send delivers one frame synchronously and reports whether the node
// acked it — always true on the healthy loopback path; failures are
// also latched as fabric errors.
func (t *loopbackTransport) send(agent string, m wire.Message) bool {
	acked, size := t.exchange(agent, m)
	t.obs.FrameTx(agent, m, size, acked)
	return acked
}

// exchange is the delivery body: encode, hand to the agent, verify the
// ack. Split from send so the observability hook sees every outcome.
func (t *loopbackTransport) exchange(agent string, m wire.Message) (bool, int) {
	n := t.nodes[agent]
	if n == nil {
		t.failf("no node agent %q", agent)
		return false, 0
	}
	t.seq++
	frame, err := wire.AppendFrame(t.buf[:0], t.seq, m)
	if err != nil {
		t.failf("encode %T: %v", m, err)
		return false, 0
	}
	size := len(frame)
	t.buf = frame[:0]
	ack, _, err := n.HandleFrame(frame)
	if err != nil {
		t.failf("%s rejected %T: %v", agent, m, err)
		return false, size
	}
	am, _, err := wire.Decode(ack)
	if err != nil {
		t.failf("%s ack undecodable: %v", agent, err)
		return false, size
	}
	if a, ok := am.(wire.Ack); !ok || a.AckSeq != t.seq {
		t.failf("%s acked %v, want %d", agent, am, t.seq)
		return false, size
	}
	t.sent++
	return true, size
}

func (t *loopbackTransport) Control(agent string, m wire.Message) bool {
	return t.send(agent, m)
}

func (t *loopbackTransport) SignalDeliver(conn string, hop int) (bool, float64) {
	if m, link, ok := signalFrame(t.routing, conn, hop); ok {
		t.send(t.cluster.Assign(link), m)
	}
	return false, 0
}

func (t *loopbackTransport) MaxminDeliver(conn string, hop int, update bool) (bool, float64) {
	if m, link, ok := maxminFrame(t.routing, conn, hop, update); ok {
		t.send(t.cluster.Assign(link), m)
	}
	return false, 0
}

func (t *loopbackTransport) Abort(conn string, hop int, reason string) {
	if m, link, ok := abortFrame(t.routing, conn, hop, reason); ok {
		t.send(t.cluster.Assign(link), m)
	}
}

func (t *loopbackTransport) Hello() error {
	for _, name := range t.cluster.Names {
		t.send(name, wire.Hello{Node: name})
	}
	return nil
}

func (t *loopbackTransport) Shutdown() {
	for _, name := range t.cluster.Names {
		t.send(name, wire.Shutdown{})
	}
}

func (t *loopbackTransport) Sent() int      { return t.sent }
func (t *loopbackTransport) Drops() int     { return 0 }
func (t *loopbackTransport) Errs() []string { return t.errs }

// udpTransport delivers frames as UDP datagrams and blocks for the ack;
// an unacked frame counts as dropped, which hands loss recovery to the
// protocols' own retransmission machinery — the same path the fault
// injector exercises in simulation.
type udpTransport struct {
	cluster *Cluster
	routing *Routing
	pc      *net.UDPConn
	peers   map[string]*net.UDPAddr
	timeout time.Duration
	seq     uint32
	sbuf    []byte
	rbuf    []byte
	sent    int
	drops   int
	errs    []string
	// obs, when armed, records every frame handed to an agent; nil costs
	// one pointer check per send.
	obs *live.Controller
}

// DefaultAckTimeout bounds the wait for a node ack; localhost round
// trips are microseconds, so this only matters under real loss.
const DefaultAckTimeout = 250 * time.Millisecond

// dialUDP opens the controller socket and resolves one peer address per
// agent. peers maps agent name → "host:port"; every cluster agent must
// be present.
func dialUDP(cluster *Cluster, routing *Routing, peers map[string]string, timeout time.Duration) (*udpTransport, error) {
	if timeout <= 0 {
		timeout = DefaultAckTimeout
	}
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("testnet: controller socket: %w", err)
	}
	t := &udpTransport{
		cluster: cluster, routing: routing, pc: pc,
		peers:   make(map[string]*net.UDPAddr, len(peers)),
		timeout: timeout,
		sbuf:    make([]byte, 0, wire.MaxFrame),
		rbuf:    make([]byte, wire.MaxFrame+1),
	}
	for _, name := range cluster.Names {
		addr, ok := peers[name]
		if !ok {
			pc.Close()
			return nil, fmt.Errorf("testnet: no address for agent %q", name)
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("testnet: agent %q: %w", name, err)
		}
		t.peers[name] = ua
	}
	return t, nil
}

func (t *udpTransport) failf(format string, args ...any) {
	t.errs = append(t.errs, fmt.Sprintf(format, args...))
}

// send transmits one frame and waits for its ack; false means the ack
// never arrived within the timeout.
func (t *udpTransport) send(agent string, m wire.Message) bool {
	acked, size := t.exchange(agent, m)
	t.obs.FrameTx(agent, m, size, acked)
	return acked
}

// exchange is the delivery body: encode, transmit, block for the ack.
// Split from send so the observability hook sees every outcome.
func (t *udpTransport) exchange(agent string, m wire.Message) (bool, int) {
	addr := t.peers[agent]
	if addr == nil {
		t.failf("no node agent %q", agent)
		return false, 0
	}
	t.seq++
	frame, err := wire.AppendFrame(t.sbuf[:0], t.seq, m)
	if err != nil {
		t.failf("encode %T: %v", m, err)
		return false, 0
	}
	size := len(frame)
	t.sbuf = frame[:0]
	if _, err := t.pc.WriteToUDP(frame, addr); err != nil {
		t.failf("send to %s: %v", agent, err)
		t.drops++
		return false, size
	}
	deadline := time.Now().Add(t.timeout)
	for {
		if err := t.pc.SetReadDeadline(deadline); err != nil {
			t.failf("deadline: %v", err)
			t.drops++
			return false, size
		}
		sz, _, err := t.pc.ReadFromUDP(t.rbuf)
		if err != nil {
			t.drops++
			return false, size
		}
		am, _, err := wire.Decode(t.rbuf[:sz])
		if err != nil {
			continue // garbage datagram
		}
		a, ok := am.(wire.Ack)
		if !ok {
			continue
		}
		if a.AckSeq == t.seq {
			t.sent++
			return true, size
		}
		// A stale ack from an earlier timed-out frame: keep reading.
	}
}

func (t *udpTransport) Control(agent string, m wire.Message) bool {
	return t.send(agent, m)
}

func (t *udpTransport) SignalDeliver(conn string, hop int) (bool, float64) {
	m, link, ok := signalFrame(t.routing, conn, hop)
	if !ok {
		return false, 0
	}
	return !t.send(t.cluster.Assign(link), m), 0
}

func (t *udpTransport) MaxminDeliver(conn string, hop int, update bool) (bool, float64) {
	m, link, ok := maxminFrame(t.routing, conn, hop, update)
	if !ok {
		return false, 0
	}
	return !t.send(t.cluster.Assign(link), m), 0
}

func (t *udpTransport) Abort(conn string, hop int, reason string) {
	if m, link, ok := abortFrame(t.routing, conn, hop, reason); ok {
		t.send(t.cluster.Assign(link), m)
	}
}

// Hello announces the controller to every agent, retrying while node
// processes come up.
func (t *udpTransport) Hello() error {
	const attempts = 40
	for _, name := range t.cluster.Names {
		ok := false
		for i := 0; i < attempts && !ok; i++ {
			ok = t.send(name, wire.Hello{Node: name})
		}
		if !ok {
			return fmt.Errorf("testnet: agent %q never acked hello", name)
		}
	}
	return nil
}

func (t *udpTransport) Shutdown() {
	for _, name := range t.cluster.Names {
		for i := 0; i < 3; i++ {
			if t.send(name, wire.Shutdown{}) {
				break
			}
		}
	}
	t.pc.Close()
}

func (t *udpTransport) Sent() int      { return t.sent }
func (t *udpTransport) Drops() int     { return t.drops }
func (t *udpTransport) Errs() []string { return t.errs }
