package testnet

import (
	"armnet/internal/topology"
)

// Routing maps the opaque (conn, hop) coordinates the delivery-hook
// seams expose back to concrete links, so the transport can address the
// node agent owning each hop. It mirrors the protocols' own hop
// conventions exactly:
//
//   - signal: forward hops 0..n-1 cross route link i; the commit
//     confirmation's reverse hops n..2n-1 cross link 2n-1-hop.
//   - maxmin ADVERTISE: a two-pass out-and-back sweep over the
//     deduplicated path of length m — hop < m crosses path[hop], hop in
//     m..2m-1 crosses path[2m-1-hop].
//   - maxmin UPDATE: one forward pass, hop i crosses path[i].
type Routing struct {
	signal  map[string][]topology.LinkID
	path    map[string][]topology.LinkID
	reserve map[string]float64
	// Unrouted counts hook invocations for connections or hops with no
	// registered mapping — always zero in a healthy run.
	Unrouted int
}

// NewRouting returns an empty registry.
func NewRouting() *Routing {
	return &Routing{
		signal:  make(map[string][]topology.LinkID),
		path:    make(map[string][]topology.LinkID),
		reserve: make(map[string]float64),
	}
}

// Register records a connection's route before its setup session starts
// (the forward pass consults it from hop 0). Re-registering — a handoff
// to a new route — replaces the mapping.
func (r *Routing) Register(conn string, route topology.Route, reserve float64) {
	links := make([]topology.LinkID, len(route.Links))
	for i, l := range route.Links {
		links[i] = l.ID
	}
	r.signal[conn] = links
	// The maxmin path mirrors Protocol.AddConn's dedup (uniqueLinks).
	seen := make(map[topology.LinkID]bool, len(links))
	path := make([]topology.LinkID, 0, len(links))
	for _, l := range links {
		if !seen[l] {
			seen[l] = true
			path = append(path, l)
		}
	}
	r.path[conn] = path
	r.reserve[conn] = reserve
}

// Reserve returns the connection's registered b_min (zero if unknown).
func (r *Routing) Reserve(conn string) float64 { return r.reserve[conn] }

// SignalHop resolves a signal-plane hop: the link it crosses and whether
// it is a reverse-pass commit confirmation hop.
func (r *Routing) SignalHop(conn string, hop int) (link topology.LinkID, commit bool, ok bool) {
	links := r.signal[conn]
	n := len(links)
	switch {
	case hop >= 0 && hop < n:
		return links[hop], false, true
	case hop >= n && hop < 2*n:
		return links[2*n-1-hop], true, true
	}
	r.Unrouted++
	return "", false, false
}

// PeekSignal resolves a signal hop's link without touching the Unrouted
// counter — for observers (the fault layer) sitting in front of a
// transport that will resolve, and count, the same hop itself.
func (r *Routing) PeekSignal(conn string, hop int) (topology.LinkID, bool) {
	links := r.signal[conn]
	n := len(links)
	switch {
	case hop >= 0 && hop < n:
		return links[hop], true
	case hop >= n && hop < 2*n:
		return links[2*n-1-hop], true
	}
	return "", false
}

// PeekMaxmin is PeekSignal for maxmin hops.
func (r *Routing) PeekMaxmin(conn string, hop int, update bool) (topology.LinkID, bool) {
	path := r.path[conn]
	m := len(path)
	if update {
		if hop >= 0 && hop < m {
			return path[hop], true
		}
		return "", false
	}
	switch {
	case hop >= 0 && hop < m:
		return path[hop], true
	case hop >= m && hop < 2*m:
		return path[2*m-1-hop], true
	}
	return "", false
}

// MaxminHop resolves a maxmin hop for an UPDATE (update=true, forward
// pass) or an ADVERTISE sweep (out-and-back).
func (r *Routing) MaxminHop(conn string, hop int, update bool) (topology.LinkID, bool) {
	path := r.path[conn]
	m := len(path)
	if update {
		if hop >= 0 && hop < m {
			return path[hop], true
		}
		r.Unrouted++
		return "", false
	}
	switch {
	case hop >= 0 && hop < m:
		return path[hop], true
	case hop >= m && hop < 2*m:
		return path[2*m-1-hop], true
	}
	r.Unrouted++
	return "", false
}
