package testnet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Trace comparison for the live-vs-sim oracle. The timestamp mapping is
// documented here once:
//
//   - Loopback vs sim (the CI gate): both run on the simulator clock, so
//     the controller traces must be BYTE-IDENTICAL — same events, same
//     order, same timestamps. DiffTraces does a strict line diff.
//   - UDP vs loopback: node timestamps come from each process's wall
//     clock, so envelope "t" (and with it any cross-node interleaving)
//     is not comparable; and real scheduling may interleave concurrent
//     protocol sessions differently than the simulator's deterministic
//     order. What must survive the transport swap is the frame CONTENT:
//     after stripping the (seq, t) envelope, each node's sorted line
//     multiset must match. DiffNodeFrames implements that.

// DiffTraces compares two JSONL traces line by line and describes the
// first divergence ("" when identical).
func DiffTraces(a, b []byte) string {
	la, lb := traceLines(a), traceLines(b)
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
		}
	}
	if len(la) != len(lb) {
		return fmt.Sprintf("length: a has %d lines, b has %d", len(la), len(lb))
	}
	return ""
}

// NormalizeLine strips the per-run envelope (seq, t) from one trace
// line, keeping the event content that must survive a transport swap.
func NormalizeLine(line string) string {
	var env struct {
		Type string          `json:"type"`
		Ev   json.RawMessage `json:"ev"`
	}
	if err := json.Unmarshal([]byte(line), &env); err != nil {
		return line
	}
	return fmt.Sprintf(`{"type":%q,"ev":%s}`, env.Type, env.Ev)
}

// DiffNodeFrames compares per-node frame multisets after normalization:
// the relaxed equivalence between a wall-clock run and the deterministic
// loopback reference. It returns one message per disagreeing node.
func DiffNodeFrames(a, b map[string][]byte) []string {
	names := map[string]bool{}
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	var out []string
	for _, n := range sortedKeys(names) {
		la, lb := normalizedSorted(a[n]), normalizedSorted(b[n])
		if len(la) != len(lb) {
			out = append(out, fmt.Sprintf("%s: %d frames vs %d", n, len(la), len(lb)))
			continue
		}
		for i := range la {
			if la[i] != lb[i] {
				out = append(out, fmt.Sprintf("%s: frame multiset differs at %q vs %q", n, la[i], lb[i]))
				break
			}
		}
	}
	return out
}

// MergeTraces interleaves per-node traces into one human-readable
// stream ordered by (t, node, seq), each line prefixed with its node.
func MergeTraces(traces map[string][]byte) []string {
	type entry struct {
		Seq  uint64  `json:"seq"`
		Time float64 `json:"t"`
		node string
		line string
	}
	var all []entry
	for _, node := range sortedKeys(toSet(traces)) {
		for _, line := range traceLines(traces[node]) {
			e := entry{node: node, line: line}
			_ = json.Unmarshal([]byte(line), &e)
			all = append(all, e)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Time != all[j].Time {
			return all[i].Time < all[j].Time
		}
		if all[i].node != all[j].node {
			return all[i].node < all[j].node
		}
		return all[i].Seq < all[j].Seq
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.node + " " + e.line
	}
	return out
}

// TraceEvents counts the lines in a JSONL trace.
func TraceEvents(trace []byte) int { return len(traceLines(trace)) }

func traceLines(trace []byte) []string {
	s := strings.TrimRight(string(trace), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func normalizedSorted(trace []byte) []string {
	lines := traceLines(trace)
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = NormalizeLine(l)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func toSet(m map[string][]byte) map[string]bool {
	set := make(map[string]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return set
}
