package testnet

import (
	"sort"

	"armnet/internal/topology"
)

// Cluster partitions a backbone's links among node agents: one agent per
// zone (owning the zone switch's subtree — base stations and air
// interfaces) plus a core agent for everything else (core↔zone trunks,
// wired hosts).
type Cluster struct {
	// Names lists the agents in deterministic order, core first.
	Names []string
	owner map[topology.LinkID]string
}

// CoreAgent owns every link not claimed by a zone.
const CoreAgent = "core"

// NewCluster derives the agent partition from the environment.
func NewCluster(env *topology.Environment) *Cluster {
	c := &Cluster{owner: make(map[topology.LinkID]string)}
	zones := append([]string(nil), env.Universe.Zones()...)
	sort.Strings(zones)
	zoneOf := make(map[topology.NodeID]string)
	for _, zone := range zones {
		zoneOf[topology.NodeID("sw-"+zone)] = zone
		for _, cid := range env.Universe.Zone(zone) {
			zoneOf[env.Universe.Cell(cid).BaseStation] = zone
			zoneOf[topology.AirNode(cid)] = zone
		}
	}
	for _, l := range env.Backbone.Links() {
		// A link belongs to the deeper endpoint's zone: the trunk
		// core↔sw-west touches sw-west, so west owns it; purely central
		// links (core↔host) fall to the core agent.
		owner := CoreAgent
		if z, ok := zoneOf[l.To]; ok {
			owner = z
		} else if z, ok := zoneOf[l.From]; ok {
			owner = z
		}
		c.owner[l.ID] = owner
	}
	names := map[string]bool{CoreAgent: true}
	for _, o := range c.owner {
		names[o] = true
	}
	c.Names = append(c.Names, CoreAgent)
	rest := make([]string, 0, len(names))
	for n := range names {
		if n != CoreAgent {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	c.Names = append(c.Names, rest...)
	return c
}

// Assign returns the agent owning a link (core for unknown links, so a
// misrouted frame still lands somewhere observable).
func (c *Cluster) Assign(link topology.LinkID) string {
	if o, ok := c.owner[link]; ok {
		return o
	}
	return CoreAgent
}
