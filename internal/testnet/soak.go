package testnet

import (
	"encoding/json"
	"fmt"
	"io"

	"armnet/internal/faults"
	"armnet/internal/netfaults"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

// SoakConfig parameterizes a soak run: a generated setup/handoff/close
// workload executed for Epochs scripted epochs on the loopback fabric,
// each epoch under a rotating netfaults plan, each epoch boundary
// audited with the same oracle the final audit uses. Sim-clock seconds
// are free, so a multi-minute scenario soaks in well under a second of
// wall time — short soaks are CI material.
type SoakConfig struct {
	// Epochs is the scripted epoch count (≤0 → DefaultSoakEpochs).
	Epochs int
	// EpochLen is one epoch in scenario seconds (≤0 → DefaultEpochLen).
	// The last soakHealWindow seconds of every epoch run fault-free so
	// retries drain, leases recover, and the rate protocol re-converges
	// before the epoch audit.
	EpochLen float64
	// Seed drives both the workload generator and the per-epoch fault
	// injectors (epoch e salts with Seed+e).
	Seed int64
	// Plans rotate across epochs: epoch e runs Plans[e%len(Plans)] (nil
	// → DefaultSoakPlans). Node faults are epoch-relative; a crash that
	// never heals on its own (for-less) is force-restarted at the heal
	// window so every epoch ends whole.
	Plans []*netfaults.Plan
	// Lease configures wire hold-lease renewal (zero → Period 0.5s,
	// default miss budget).
	Lease LeaseConfig
	// Readvertise is the maxmin repair period (≤0 → 0.75s).
	Readvertise float64
	// Out, when non-nil, receives the JSONL epoch reports as they are
	// produced.
	Out io.Writer
}

// Soak defaults.
const (
	DefaultSoakEpochs = 6
	DefaultEpochLen   = 10.0
	// soakHealWindow is the fault-free tail of every epoch: longer than
	// the worst-case signaling session deadline plus a full lease
	// detection-and-recovery cycle, so the epoch audit sees a settled
	// system.
	soakHealWindow = 4.0
)

// EpochReport is one audited epoch boundary. Counters are cumulative
// since run start, so reports are monotone and a diff of two
// consecutive lines gives the per-epoch deltas.
type EpochReport struct {
	Epoch          int      `json:"epoch"`
	Time           float64  `json:"time"`
	Plan           int      `json:"plan"`
	Commits        int      `json:"commits"`
	Aborted        int      `json:"aborted"`
	Live           int      `json:"live"`
	Drops          int      `json:"drops"`
	Dups           int      `json:"dups"`
	Delays         int      `json:"delays"`
	Reorders       int      `json:"reorders"`
	PartitionDrops int      `json:"partition_drops"`
	Crashes        int      `json:"crashes"`
	Restarts       int      `json:"restarts"`
	Reclaims       int      `json:"reclaims"`
	PendingHolds   float64  `json:"pending_holds"`
	Gap            float64  `json:"gap"`
	Violations     []string `json:"violations"`
}

// SoakResult is the full soak outcome.
type SoakResult struct {
	// Reports holds one audited entry per epoch, in order.
	Reports []EpochReport
	// ReportJSONL is the serialized report stream — the byte-identical
	// determinism target.
	ReportJSONL []byte
	// Run is the underlying scenario result (final audit included).
	Run *Result
	// Violations aggregates every epoch's findings plus the final
	// audit's; empty on a clean soak.
	Violations []string
}

// DefaultSoakPlans is the rotation the `make soak` gate runs: epoch 0
// is loss and reordering, epoch 1 adds signaling loss, a maxmin delay
// and an east partition, epoch 2 duplicates frames and crash-restarts
// west — together covering every fault family in the grammar.
func DefaultSoakPlans() []*netfaults.Plan {
	specs := []string{
		"drop any 0.15\nreorder any 0.2 0.004\n",
		"drop signal 0.25\ndelay maxmin 0.3 0.002\nat 1 partition east for 2\n",
		"dup any 0.1\nat 0.8 crash west for 2.2\n",
	}
	plans := make([]*netfaults.Plan, len(specs))
	for i, spec := range specs {
		p, err := netfaults.ParsePlanString(spec)
		if err != nil {
			panic("testnet: default soak plan " + err.Error())
		}
		plans[i] = p
	}
	return plans
}

// RunSoak executes the soak scenario. Identical configs produce
// byte-identical ReportJSONL — the soak is one deterministic loopback
// run under the simulator clock.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = DefaultSoakEpochs
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = DefaultEpochLen
	}
	if cfg.EpochLen <= soakHealWindow {
		return nil, fmt.Errorf("testnet: epoch %.3gs not longer than the %.3gs heal window", cfg.EpochLen, soakHealWindow)
	}
	if len(cfg.Plans) == 0 {
		cfg.Plans = DefaultSoakPlans()
	}
	if cfg.Lease.Period <= 0 {
		cfg.Lease.Period = 0.5
	}
	if cfg.Readvertise <= 0 {
		cfg.Readvertise = 0.75
	}

	active := cfg.EpochLen - soakHealWindow
	res := &SoakResult{}
	var hooks []soakHook
	for e := 0; e < cfg.Epochs; e++ {
		e := e
		base := float64(e) * cfg.EpochLen
		pidx := e % len(cfg.Plans)
		plan := cfg.Plans[pidx]
		seed := cfg.Seed + int64(e)

		// Rules run only inside the active window; the heal window is
		// injection-free.
		hooks = append(hooks,
			soakHook{at: base, fn: func(r *runner) { r.faulty.SetPlan(plan, seed) }},
			soakHook{at: base + active, fn: func(r *runner) { r.faulty.SetPlan(nil, 0) }},
		)
		// Node faults are epoch-relative and clamped into the active
		// window so every agent is back before the audit.
		for _, nf := range plan.Nodes {
			nf := nf
			start := base + clampF(nf.At, 0, active-0.5)
			end := base + active
			if nf.For > 0 {
				end = base + clampF(nf.At+nf.For, 0, active)
			}
			switch nf.Action {
			case "partition":
				hooks = append(hooks,
					soakHook{at: start, fn: func(r *runner) { r.faulty.Partition(nf.Node) }},
					soakHook{at: end, fn: func(r *runner) { r.faulty.Heal(nf.Node) }},
				)
			case "crash":
				hooks = append(hooks,
					soakHook{at: start, fn: func(r *runner) { r.faulty.Crash(nf.Node) }},
					soakHook{at: end, fn: func(r *runner) { r.faulty.Restart(nf.Node) }},
				)
			}
		}
		hooks = append(hooks, soakHook{
			at: base + cfg.EpochLen,
			fn: func(r *runner) { res.Reports = append(res.Reports, epochAudit(r, e, pidx)) },
		})
	}

	run, err := Run(Config{
		Mode:        ModeLoopback,
		Script:      soakScript(randx.New(cfg.Seed), cfg.Epochs, cfg.EpochLen, active),
		Horizon:     float64(cfg.Epochs)*cfg.EpochLen + 1,
		Faults:      &netfaults.Plan{}, // hooks swap the live plan per epoch
		FaultSeed:   cfg.Seed,
		Lease:       cfg.Lease,
		Readvertise: cfg.Readvertise,
		Lenient:     true,
		hooks:       hooks,
	})
	if err != nil {
		return nil, err
	}
	res.Run = run

	for _, rep := range res.Reports {
		res.Violations = append(res.Violations, rep.Violations...)
	}
	res.Violations = append(res.Violations, run.Violations...)
	for _, rep := range res.Reports {
		line, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		res.ReportJSONL = append(res.ReportJSONL, line...)
		res.ReportJSONL = append(res.ReportJSONL, '\n')
	}
	if cfg.Out != nil {
		if _, err := cfg.Out.Write(res.ReportJSONL); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// epochAudit runs the full fault oracle mid-run: zero pending holds,
// ledger conservation, live-set consistency, and WaterFill convergence
// — the same checks the final audit applies, here applied after every
// healed epoch.
func epochAudit(r *runner, epoch, plan int) EpochReport {
	aud := faults.Auditor{
		Ledger:       r.lg,
		PendingHolds: r.plane.PendingTotal,
		LiveConns:    r.liveConns,
		ConvergenceGap: func() float64 {
			return convergenceGap(r.proto)
		},
		GapTol: 1e-6,
	}
	viol := aud.CheckFinal()
	if viol == nil {
		viol = []string{}
	}
	rep := EpochReport{
		Epoch:        epoch,
		Time:         r.clk.Now(),
		Plan:         plan,
		Commits:      r.commits,
		Aborted:      r.aborted,
		Live:         len(r.live),
		PendingHolds: r.plane.PendingTotal(),
		Gap:          convergenceGap(r.proto),
		Violations:   viol,
	}
	if r.faulty != nil {
		rep.PartitionDrops = r.faulty.PartitionDrops
		rep.Crashes = r.faulty.Crashes
		rep.Restarts = r.faulty.Restarts
		rep.Drops, rep.Dups, rep.Delays, rep.Reorders = r.faulty.Stats()
	}
	if r.lease != nil {
		rep.Reclaims = r.lease.Reclaims
	}
	return rep
}

// soakScript generates the epoch workload: 3–5 setups early in each
// epoch's active window, one handoff and up to two closes later in it.
// Everything derives from the seeded generator, so the script — like
// the faults — replays exactly.
func soakScript(rng *randx.Rand, epochs int, epochLen, active float64) []Step {
	cells := []topology.CellID{
		"off-1", "off-2", "off-3", "cor-w1", "cor-w2", "cor-e1", "meet", "cafe", "lounge",
	}
	var steps []Step
	var pool []string
	for e := 0; e < epochs; e++ {
		base := float64(e) * epochLen
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			conn := fmt.Sprintf("e%ds%d:0", e, i)
			min := 100e3 + float64(rng.Intn(4))*50e3
			steps = append(steps, Step{
				At:   base + 0.1 + rng.Float64()*active*0.5,
				Op:   OpSetup,
				Conn: conn,
				Cell: cells[rng.Intn(len(cells))],
				Host: rng.Intn(2),
				Min:  min,
				Max:  min + float64(1+rng.Intn(5))*200e3,
			})
			pool = append(pool, conn)
		}
		if len(pool) > 0 {
			steps = append(steps, Step{
				At:   base + active*0.5 + rng.Float64()*active*0.3,
				Op:   OpHandoff,
				Conn: pool[rng.Intn(len(pool))],
				Cell: cells[rng.Intn(len(cells))],
				Host: rng.Intn(2),
				Min:  150e3,
				Max:  600e3,
			})
		}
		for k := 0; k < 2 && len(pool) > 0; k++ {
			i := rng.Intn(len(pool))
			conn := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			steps = append(steps, Step{
				At:   base + active*0.6 + rng.Float64()*active*0.35,
				Op:   OpClose,
				Conn: conn,
			})
		}
	}
	return steps
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
