package testnet

import (
	"encoding/json"
	"fmt"
	"io"

	"armnet/internal/faults"
	"armnet/internal/netfaults"
	"armnet/internal/obs"
	"armnet/internal/obs/live"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

// SoakConfig parameterizes a soak run: a generated setup/handoff/close
// workload executed for Epochs scripted epochs on the loopback fabric,
// each epoch under a rotating netfaults plan, each epoch boundary
// audited with the same oracle the final audit uses. Sim-clock seconds
// are free, so a multi-minute scenario soaks in well under a second of
// wall time — short soaks are CI material.
type SoakConfig struct {
	// Epochs is the scripted epoch count (≤0 → DefaultSoakEpochs).
	Epochs int
	// EpochLen is one epoch in scenario seconds (≤0 → DefaultEpochLen).
	// The last soakHealWindow seconds of every epoch run fault-free so
	// retries drain, leases recover, and the rate protocol re-converges
	// before the epoch audit.
	EpochLen float64
	// Seed drives both the workload generator and the per-epoch fault
	// injectors (epoch e salts with Seed+e).
	Seed int64
	// Plans rotate across epochs: epoch e runs Plans[e%len(Plans)] (nil
	// → DefaultSoakPlans). Node faults are epoch-relative; a crash that
	// never heals on its own (for-less) is force-restarted at the heal
	// window so every epoch ends whole.
	Plans []*netfaults.Plan
	// Lease configures wire hold-lease renewal (zero → Period 0.5s,
	// default miss budget).
	Lease LeaseConfig
	// Readvertise is the maxmin repair period (≤0 → 0.75s).
	Readvertise float64
	// Out, when non-nil, receives the JSONL epoch reports as they are
	// produced.
	Out io.Writer
	// Obs, when non-nil, is the live observability recorder to feed (a
	// telemetry server can scrape it mid-soak). RunSoak always arms one —
	// epoch reports carry per-epoch wire deltas either way — so leaving
	// this nil only means nobody scrapes it live.
	Obs *live.Controller
}

// Soak defaults.
const (
	DefaultSoakEpochs = 6
	DefaultEpochLen   = 10.0
	// soakHealWindow is the fault-free tail of every epoch: longer than
	// the worst-case signaling session deadline plus a full lease
	// detection-and-recovery cycle, so the epoch audit sees a settled
	// system.
	soakHealWindow = 4.0
)

// SoakSchema versions the epoch-report line format. Downstream scrapers
// key on it; bump it whenever a field is added, removed, or changes
// meaning. Struct marshaling fixes the field order, so lines with the
// same schema are positionally stable.
const SoakSchema = 1

// EpochReport is one audited epoch boundary. Counters are cumulative
// since run start, so reports are monotone and a diff of two
// consecutive lines gives the per-epoch deltas; the Wire block is the
// exception — it is already the per-epoch delta of the live wire
// snapshot, quantifying what that epoch's fault plan did to the wire.
type EpochReport struct {
	Schema         int        `json:"schema"`
	Epoch          int        `json:"epoch"`
	Time           float64    `json:"time"`
	Plan           int        `json:"plan"`
	Commits        int        `json:"commits"`
	Aborted        int        `json:"aborted"`
	Live           int        `json:"live"`
	Drops          int        `json:"drops"`
	Dups           int        `json:"dups"`
	Delays         int        `json:"delays"`
	Reorders       int        `json:"reorders"`
	PartitionDrops int        `json:"partition_drops"`
	Crashes        int        `json:"crashes"`
	Restarts       int        `json:"restarts"`
	Reclaims       int        `json:"reclaims"`
	PendingHolds   float64    `json:"pending_holds"`
	Gap            float64    `json:"gap"`
	Wire           *WireDelta `json:"wire,omitempty"`
	Violations     []string   `json:"violations"`
}

// WireDelta is one epoch's worth of live wire activity: the difference
// between consecutive epoch-boundary cluster snapshots. Fixed fields
// (not a map) keep the JSON ordering stable under SoakSchema.
type WireDelta struct {
	FramesTx    int `json:"frames_tx"`
	FramesRx    int `json:"frames_rx"`
	BytesTx     int `json:"bytes_tx"`
	Acks        int `json:"acks"`
	Unacked     int `json:"unacked"`
	Retransmits int `json:"retransmits"`
	Giveups     int `json:"giveups"`
	LeaseRenews int `json:"lease_renews"`
	LeaseMisses int `json:"lease_misses"`
	Resyncs     int `json:"resyncs"`
	Malformed   int `json:"malformed"`
	// Verdicts split the fault layer's firings by family.
	VerdictDrop      int `json:"verdict_drop"`
	VerdictDup       int `json:"verdict_dup"`
	VerdictDelay     int `json:"verdict_delay"`
	VerdictReorder   int `json:"verdict_reorder"`
	VerdictPartition int `json:"verdict_partition"`
	VerdictCrash     int `json:"verdict_crash"`
	VerdictRestart   int `json:"verdict_restart"`
}

// SoakResult is the full soak outcome.
type SoakResult struct {
	// Reports holds one audited entry per epoch, in order.
	Reports []EpochReport
	// ReportJSONL is the serialized report stream — the byte-identical
	// determinism target.
	ReportJSONL []byte
	// Run is the underlying scenario result (final audit included).
	Run *Result
	// Violations aggregates every epoch's findings plus the final
	// audit's; empty on a clean soak.
	Violations []string
}

// DefaultSoakPlans is the rotation the `make soak` gate runs: epoch 0
// is loss and reordering, epoch 1 adds signaling loss, a maxmin delay
// and an east partition, epoch 2 duplicates frames and crash-restarts
// west — together covering every fault family in the grammar.
func DefaultSoakPlans() []*netfaults.Plan {
	specs := []string{
		"drop any 0.15\nreorder any 0.2 0.004\n",
		"drop signal 0.25\ndelay maxmin 0.3 0.002\nat 1 partition east for 2\n",
		"dup any 0.1\nat 0.8 crash west for 2.2\n",
	}
	plans := make([]*netfaults.Plan, len(specs))
	for i, spec := range specs {
		p, err := netfaults.ParsePlanString(spec)
		if err != nil {
			panic("testnet: default soak plan " + err.Error())
		}
		plans[i] = p
	}
	return plans
}

// RunSoak executes the soak scenario. Identical configs produce
// byte-identical ReportJSONL — the soak is one deterministic loopback
// run under the simulator clock.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = DefaultSoakEpochs
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = DefaultEpochLen
	}
	if cfg.EpochLen <= soakHealWindow {
		return nil, fmt.Errorf("testnet: epoch %.3gs not longer than the %.3gs heal window", cfg.EpochLen, soakHealWindow)
	}
	if len(cfg.Plans) == 0 {
		cfg.Plans = DefaultSoakPlans()
	}
	if cfg.Lease.Period <= 0 {
		cfg.Lease.Period = 0.5
	}
	if cfg.Readvertise <= 0 {
		cfg.Readvertise = 0.75
	}

	// The live wire recorder is always armed: epoch reports quantify each
	// plan's wire impact whether or not anyone scrapes it.
	if cfg.Obs == nil {
		cfg.Obs = live.NewController(nil)
	}

	active := cfg.EpochLen - soakHealWindow
	res := &SoakResult{}
	var hooks []soakHook
	var prevSnap *obs.Snapshot
	for e := 0; e < cfg.Epochs; e++ {
		e := e
		base := float64(e) * cfg.EpochLen
		pidx := e % len(cfg.Plans)
		plan := cfg.Plans[pidx]
		seed := cfg.Seed + int64(e)

		// Rules run only inside the active window; the heal window is
		// injection-free.
		hooks = append(hooks,
			soakHook{at: base, fn: func(r *runner) { r.faulty.SetPlan(plan, seed) }},
			soakHook{at: base + active, fn: func(r *runner) { r.faulty.SetPlan(nil, 0) }},
		)
		// Node faults are epoch-relative and clamped into the active
		// window so every agent is back before the audit.
		for _, nf := range plan.Nodes {
			nf := nf
			start := base + clampF(nf.At, 0, active-0.5)
			end := base + active
			if nf.For > 0 {
				end = base + clampF(nf.At+nf.For, 0, active)
			}
			switch nf.Action {
			case "partition":
				hooks = append(hooks,
					soakHook{at: start, fn: func(r *runner) { r.faulty.Partition(nf.Node) }},
					soakHook{at: end, fn: func(r *runner) { r.faulty.Heal(nf.Node) }},
				)
			case "crash":
				hooks = append(hooks,
					soakHook{at: start, fn: func(r *runner) { r.faulty.Crash(nf.Node) }},
					soakHook{at: end, fn: func(r *runner) { r.faulty.Restart(nf.Node) }},
				)
			}
		}
		hooks = append(hooks, soakHook{
			at: base + cfg.EpochLen,
			fn: func(r *runner) {
				rep, cur := epochAudit(r, e, pidx, prevSnap)
				prevSnap = cur
				res.Reports = append(res.Reports, rep)
			},
		})
	}

	run, err := Run(Config{
		Mode:        ModeLoopback,
		Script:      soakScript(randx.New(cfg.Seed), cfg.Epochs, cfg.EpochLen, active),
		Horizon:     float64(cfg.Epochs)*cfg.EpochLen + 1,
		Faults:      &netfaults.Plan{}, // hooks swap the live plan per epoch
		FaultSeed:   cfg.Seed,
		Lease:       cfg.Lease,
		Readvertise: cfg.Readvertise,
		Lenient:     true,
		Obs:         cfg.Obs,
		hooks:       hooks,
	})
	if err != nil {
		return nil, err
	}
	res.Run = run

	for _, rep := range res.Reports {
		res.Violations = append(res.Violations, rep.Violations...)
	}
	res.Violations = append(res.Violations, run.Violations...)
	for _, rep := range res.Reports {
		line, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		res.ReportJSONL = append(res.ReportJSONL, line...)
		res.ReportJSONL = append(res.ReportJSONL, '\n')
	}
	if cfg.Out != nil {
		if _, err := cfg.Out.Write(res.ReportJSONL); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// epochAudit runs the full fault oracle mid-run: zero pending holds,
// ledger conservation, live-set consistency, and WaterFill convergence
// — the same checks the final audit applies, here applied after every
// healed epoch. prev is the previous boundary's cluster snapshot (nil
// at epoch 0); the current one is returned for the next boundary so the
// Wire block always carries a true per-epoch delta.
func epochAudit(r *runner, epoch, plan int, prev *obs.Snapshot) (EpochReport, *obs.Snapshot) {
	aud := faults.Auditor{
		Ledger:       r.lg,
		PendingHolds: r.plane.PendingTotal,
		LiveConns:    r.liveConns,
		ConvergenceGap: func() float64 {
			return convergenceGap(r.proto)
		},
		GapTol: 1e-6,
	}
	viol := aud.CheckFinal()
	if viol == nil {
		viol = []string{}
	}
	rep := EpochReport{
		Schema:       SoakSchema,
		Epoch:        epoch,
		Time:         r.clk.Now(),
		Plan:         plan,
		Commits:      r.commits,
		Aborted:      r.aborted,
		Live:         len(r.live),
		PendingHolds: r.plane.PendingTotal(),
		Gap:          convergenceGap(r.proto),
		Violations:   viol,
	}
	if r.faulty != nil {
		rep.PartitionDrops = r.faulty.PartitionDrops
		rep.Crashes = r.faulty.Crashes
		rep.Restarts = r.faulty.Restarts
		rep.Drops, rep.Dups, rep.Delays, rep.Reorders = r.faulty.Stats()
	}
	if r.lease != nil {
		rep.Reclaims = r.lease.Reclaims
	}
	var cur *obs.Snapshot
	if r.cfg.Obs != nil {
		if snap, err := live.ClusterSnapshot(r.cfg.Obs, r.nodeObs); err == nil {
			cur = snap
			rep.Wire = wireDelta(cur, prev)
		}
	}
	return rep, cur
}

// wireDelta subtracts two epoch-boundary cluster snapshots into the
// fixed-field per-epoch block.
func wireDelta(cur, prev *obs.Snapshot) *WireDelta {
	d := func(name string) int {
		v := cur.CounterTotal(name)
		if prev != nil {
			v -= prev.CounterTotal(name)
		}
		return int(v)
	}
	verdict := func(family string) int {
		v := counterLabeled(cur, "armnet_wire_fault_verdicts_total", "family", family)
		if prev != nil {
			v -= counterLabeled(prev, "armnet_wire_fault_verdicts_total", "family", family)
		}
		return int(v)
	}
	return &WireDelta{
		FramesTx:         d("armnet_wire_frames_tx_total"),
		FramesRx:         d("armnet_wire_frames_rx_total"),
		BytesTx:          d("armnet_wire_bytes_tx_total"),
		Acks:             d("armnet_wire_acks_total"),
		Unacked:          d("armnet_wire_unacked_total"),
		Retransmits:      d("armnet_wire_retransmits_total"),
		Giveups:          d("armnet_wire_giveups_total"),
		LeaseRenews:      d("armnet_wire_lease_renews_total"),
		LeaseMisses:      d("armnet_wire_lease_misses_total"),
		Resyncs:          d("armnet_wire_resyncs_total"),
		Malformed:        d("armnet_wire_malformed_total"),
		VerdictDrop:      verdict("drop"),
		VerdictDup:       verdict("dup"),
		VerdictDelay:     verdict("delay"),
		VerdictReorder:   verdict("reorder"),
		VerdictPartition: verdict("partition"),
		VerdictCrash:     verdict("crash"),
		VerdictRestart:   verdict("restart"),
	}
}

// counterLabeled sums the counter series matching (name, one label).
func counterLabeled(s *obs.Snapshot, name, key, val string) float64 {
	total := 0.0
	for _, c := range s.Counters {
		if c.Name == name && c.Labels[key] == val {
			total += c.Value
		}
	}
	return total
}

// soakScript generates the epoch workload: 3–5 setups early in each
// epoch's active window, one handoff and up to two closes later in it.
// Everything derives from the seeded generator, so the script — like
// the faults — replays exactly.
func soakScript(rng *randx.Rand, epochs int, epochLen, active float64) []Step {
	cells := []topology.CellID{
		"off-1", "off-2", "off-3", "cor-w1", "cor-w2", "cor-e1", "meet", "cafe", "lounge",
	}
	var steps []Step
	var pool []string
	for e := 0; e < epochs; e++ {
		base := float64(e) * epochLen
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			conn := fmt.Sprintf("e%ds%d:0", e, i)
			min := 100e3 + float64(rng.Intn(4))*50e3
			steps = append(steps, Step{
				At:   base + 0.1 + rng.Float64()*active*0.5,
				Op:   OpSetup,
				Conn: conn,
				Cell: cells[rng.Intn(len(cells))],
				Host: rng.Intn(2),
				Min:  min,
				Max:  min + float64(1+rng.Intn(5))*200e3,
			})
			pool = append(pool, conn)
		}
		if len(pool) > 0 {
			steps = append(steps, Step{
				At:   base + active*0.5 + rng.Float64()*active*0.3,
				Op:   OpHandoff,
				Conn: pool[rng.Intn(len(pool))],
				Cell: cells[rng.Intn(len(cells))],
				Host: rng.Intn(2),
				Min:  150e3,
				Max:  600e3,
			})
		}
		for k := 0; k < 2 && len(pool) > 0; k++ {
			i := rng.Intn(len(pool))
			conn := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			steps = append(steps, Step{
				At:   base + active*0.6 + rng.Float64()*active*0.35,
				Op:   OpClose,
				Conn: conn,
			})
		}
	}
	return steps
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
