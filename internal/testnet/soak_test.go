package testnet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateSoak = flag.Bool("update-soak", false, "rewrite the soak golden report")

// soakGateConfig is the short deterministic soak the `make soak` gate
// runs: three epochs cover the full default plan rotation — loss +
// reorder, partition, crash/restart — in a fraction of a second of
// wall time.
func soakGateConfig() SoakConfig {
	return SoakConfig{Epochs: 3, Seed: 42}
}

// TestSoakGolden pins the soak report byte-for-byte: the same seed must
// reproduce the identical JSONL on every machine, and the audited
// epochs must all be violation-free with every fault family exercised.
func TestSoakGolden(t *testing.T) {
	res, err := RunSoak(soakGateConfig())
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("soak violations: %v", res.Violations)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("audited %d epochs, want 3", len(res.Reports))
	}
	for _, rep := range res.Reports {
		if len(rep.Violations) > 0 {
			t.Errorf("epoch %d violations: %v", rep.Epoch, rep.Violations)
		}
		if rep.PendingHolds != 0 {
			t.Errorf("epoch %d leaked %g of pending holds", rep.Epoch, rep.PendingHolds)
		}
	}
	// The acceptance plan must actually combine loss, reordering, a
	// partition, and one crash/restart cycle.
	last := res.Reports[len(res.Reports)-1]
	if last.Drops == 0 || last.Reorders == 0 || last.PartitionDrops == 0 {
		t.Errorf("fault families idle: %+v", last)
	}
	if last.Crashes != 1 || last.Restarts != 1 {
		t.Errorf("crash lifecycle ran %d/%d times, want 1/1", last.Crashes, last.Restarts)
	}
	if last.Commits == 0 {
		t.Error("workload committed nothing")
	}

	golden := filepath.Join("testdata", "soak_golden.jsonl")
	if *updateSoak {
		if err := os.WriteFile(golden, res.ReportJSONL, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden (regenerate with -update-soak): %v", err)
	}
	if !bytes.Equal(res.ReportJSONL, want) {
		t.Fatalf("soak report drifted from golden:\n got: %s\nwant: %s", res.ReportJSONL, want)
	}
}

// TestSoakDeterministic pins run-to-run identity independent of the
// golden file, plus seed sensitivity.
func TestSoakDeterministic(t *testing.T) {
	a, err := RunSoak(soakGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(soakGateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.ReportJSONL, b.ReportJSONL) {
		t.Fatalf("soak not deterministic:\n%s\nvs\n%s", a.ReportJSONL, b.ReportJSONL)
	}
	if !bytes.Equal(a.Run.ControllerTrace, b.Run.ControllerTrace) {
		t.Fatal("controller traces diverged across identical soaks")
	}
	cfg := soakGateConfig()
	cfg.Seed = 43
	c, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.ReportJSONL, c.ReportJSONL) {
		t.Fatal("different seeds produced the identical soak (suspicious)")
	}
}

// TestSoakRejectsShortEpoch pins the config guard: an epoch must leave
// room for the heal window.
func TestSoakRejectsShortEpoch(t *testing.T) {
	if _, err := RunSoak(SoakConfig{EpochLen: 3}); err == nil {
		t.Fatal("short epoch accepted")
	}
}
