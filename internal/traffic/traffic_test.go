package traffic

import (
	"math"
	"testing"

	"armnet/internal/des"
	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

func TestRequestIsValid(t *testing.T) {
	for _, c := range append(PaperMix(), Figure6Classes()...) {
		r := Request(c)
		if err := r.Validate(); err != nil {
			t.Errorf("class %s produces invalid request: %v", c.Name, err)
		}
		if r.Bandwidth != c.Bandwidth {
			t.Errorf("class %s bandwidth mangled", c.Name)
		}
	}
}

func TestPaperMixShape(t *testing.T) {
	mix := PaperMix()
	if mix[0].Bandwidth.Min != 16e3 || mix[1].Bandwidth.Min != 64e3 {
		t.Fatalf("mix = %+v", mix)
	}
	w := PaperMixWeights()
	if w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("weights = %v", w)
	}
}

func TestFigure6Classes(t *testing.T) {
	cs := Figure6Classes()
	if cs[0].ArrivalRate != 30 || cs[0].Bandwidth.Min != 1 || math.Abs(cs[0].Mu()-5) > 1e-12 {
		t.Fatalf("type1 = %+v", cs[0])
	}
	if cs[1].ArrivalRate != 1 || cs[1].Bandwidth.Min != 4 || math.Abs(cs[1].Mu()-4) > 1e-12 {
		t.Fatalf("type2 = %+v", cs[1])
	}
}

func TestGeneratorValidation(t *testing.T) {
	sim := des.New()
	rng := randx.New(1)
	cb := func(Arrival) {}
	if _, err := NewGenerator(nil, rng, Figure6Classes(), cb); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewGenerator(sim, rng, nil, cb); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := NewGenerator(sim, rng, Figure6Classes(), nil); err == nil {
		t.Error("nil callback accepted")
	}
	bad := []qos.Class{{Name: "x", Bandwidth: qos.Bounds{}, MeanHolding: 1}}
	if _, err := NewGenerator(sim, rng, bad, cb); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestGeneratorRates(t *testing.T) {
	sim := des.New()
	rng := randx.New(42)
	counts := map[string]int{}
	holdings := map[string]float64{}
	gen, err := NewGenerator(sim, rng, Figure6Classes(), func(a Arrival) {
		counts[a.Class.Name]++
		holdings[a.Class.Name] += a.Holding
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start([]topology.CellID{"Cq"})
	const horizon = 200.0
	if err := sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	// Expected: 30/s * 200 = 6000 type1, 1/s * 200 = 200 type2.
	if got := float64(counts["type1"]); math.Abs(got-6000) > 300 {
		t.Fatalf("type1 arrivals = %v, want ~6000", got)
	}
	if got := float64(counts["type2"]); math.Abs(got-200) > 50 {
		t.Fatalf("type2 arrivals = %v, want ~200", got)
	}
	// Holding means match 1/μ.
	if got := holdings["type1"] / float64(counts["type1"]); math.Abs(got-0.2) > 0.02 {
		t.Fatalf("type1 mean holding = %v, want 0.2", got)
	}
	if got := holdings["type2"] / float64(counts["type2"]); math.Abs(got-0.25) > 0.05 {
		t.Fatalf("type2 mean holding = %v, want 0.25", got)
	}
}

func TestGeneratorStop(t *testing.T) {
	sim := des.New()
	rng := randx.New(1)
	n := 0
	gen, err := NewGenerator(sim, rng, Figure6Classes(), func(Arrival) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	gen.Start([]topology.CellID{"Cq"})
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	gen.Stop()
	before := n
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if n != before {
		t.Fatalf("arrivals continued after Stop: %d -> %d", before, n)
	}
}

func TestGeneratorSkipsZeroRate(t *testing.T) {
	sim := des.New()
	rng := randx.New(1)
	classes := []qos.Class{{Name: "idle", Bandwidth: qos.Fixed(1), MeanHolding: 1, ArrivalRate: 0}}
	gen, err := NewGenerator(sim, rng, classes, func(Arrival) { t.Error("arrival from zero-rate class") })
	if err != nil {
		t.Fatal(err)
	}
	gen.Start([]topology.CellID{"Cq"})
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
}
