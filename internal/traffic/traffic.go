// Package traffic generates connection workloads: Poisson new-connection
// arrivals per cell and class, exponentially distributed holding times,
// and the conversion from a workload class to the QoS request its
// connections carry (paper §3.2's application model).
package traffic

import (
	"fmt"

	"armnet/internal/des"
	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/topology"
)

// Request builds the admission-control QoS request for a class: the
// class's bandwidth bounds, a (σ, ρ) envelope with ρ = b_min and a small
// burst, and era-appropriate delay/jitter/loss targets that do not bind
// unless the caller tightens them.
func Request(c qos.Class) qos.Request {
	return qos.Request{
		Bandwidth: c.Bandwidth,
		Delay:     5,
		Jitter:    5,
		Loss:      0.05,
		Traffic:   qos.TrafficSpec{Sigma: c.Bandwidth.Min / 4, Rho: c.Bandwidth.Min},
	}
}

// PaperMix returns the §7.1 simulation workload: each user opens one
// connection of either 16 kb/s (75%) or 64 kb/s (25%) on a 1.6 Mb/s cell.
func PaperMix() []qos.Class {
	return []qos.Class{
		{Name: "16k", Bandwidth: qos.Fixed(16e3), MeanHolding: 3600, HandoffProb: 1},
		{Name: "64k", Bandwidth: qos.Fixed(64e3), MeanHolding: 3600, HandoffProb: 1},
	}
}

// PaperMixWeights returns the draw weights matching PaperMix.
func PaperMixWeights() []float64 { return []float64{0.75, 0.25} }

// Figure6Classes returns the two connection types of the §7.2 example in
// capacity units (cell capacity 40): type 1 b=1 λ=30 1/μ=0.2 h=0.7,
// type 2 b=4 λ=1 1/μ=0.25 h=0.7.
func Figure6Classes() []qos.Class {
	return []qos.Class{
		{Name: "type1", Bandwidth: qos.Fixed(1), MeanHolding: 0.2, ArrivalRate: 30, HandoffProb: 0.7},
		{Name: "type2", Bandwidth: qos.Fixed(4), MeanHolding: 0.25, ArrivalRate: 1, HandoffProb: 0.7},
	}
}

// Arrival describes one generated connection request.
type Arrival struct {
	Cell  topology.CellID
	Class qos.Class
	// ClassIndex is the class's position in the generator's class list.
	ClassIndex int
	// Holding is the drawn exponential holding time.
	Holding float64
}

// Generator drives Poisson arrival processes on a simulator.
type Generator struct {
	Sim     *des.Simulator
	Rng     *randx.Rand
	Classes []qos.Class
	// OnArrival receives each generated request.
	OnArrival func(Arrival)

	stopped bool
}

// NewGenerator validates the classes and returns a generator.
func NewGenerator(sim *des.Simulator, rng *randx.Rand, classes []qos.Class, onArrival func(Arrival)) (*Generator, error) {
	if sim == nil || rng == nil {
		return nil, fmt.Errorf("traffic: nil simulator or rng")
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("traffic: no classes")
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if onArrival == nil {
		return nil, fmt.Errorf("traffic: nil arrival callback")
	}
	return &Generator{Sim: sim, Rng: rng, Classes: classes, OnArrival: onArrival}, nil
}

// Start launches one Poisson process per (cell, class) with the class's
// arrival rate. Classes with zero rate are skipped.
func (g *Generator) Start(cells []topology.CellID) {
	for _, cell := range cells {
		for i, c := range g.Classes {
			if c.ArrivalRate <= 0 {
				continue
			}
			g.scheduleNext(cell, i)
		}
	}
}

// Stop halts further arrivals (already scheduled ones may still fire once).
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) scheduleNext(cell topology.CellID, classIdx int) {
	c := g.Classes[classIdx]
	g.Sim.PostAfter(g.Rng.Exp(c.ArrivalRate), func() {
		if g.stopped {
			return
		}
		g.OnArrival(Arrival{
			Cell:       cell,
			Class:      c,
			ClassIndex: classIdx,
			Holding:    g.Rng.Exp(c.Mu()),
		})
		g.scheduleNext(cell, classIdx)
	})
}
