package faults

import (
	"fmt"

	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/randx"
)

// Driver executes component faults against the integrated system. The
// integration layer (core.Manager) implements it; keeping it an
// interface here lets faults stay ignorant of every protocol package.
type Driver interface {
	// FailLink marks a backbone link down, terminating connections
	// routed over it.
	FailLink(link string) error
	// RestoreLink brings a failed link back and re-advertises its
	// excess capacity.
	RestoreLink(link string) error
	// FailCell takes a cell's air interface out of service.
	FailCell(cell string) error
	// RestoreCell returns a failed cell to service.
	RestoreCell(cell string) error
	// CrashZone crashes a zone's profile server with state loss; the
	// server warm-restarts empty.
	CrashZone(zone string) error
	// Blackout forces a cell's wireless channel to its worst level for
	// the given duration.
	Blackout(cell string, duration float64) error
	// CrashSignaling crashes the signaling plane, abandoning in-flight
	// setup sessions without releasing their tentative holds.
	CrashSignaling() error
}

// seedSalt decorrelates the injector's RNG from the run's other streams
// (manager, mobility) derived from the same master seed.
const seedSalt = 0x6661756c7473 // "faults"

// Injector executes a Plan: its Deliver* methods satisfy the delivery
// hooks of internal/signal and internal/maxmin structurally, and Arm
// schedules the plan's timed component faults on the simulator. All
// randomness comes from one seed-derived RNG, and the simulation is
// single-threaded, so identical (plan, seed) pairs inject identically.
// An empty plan draws nothing and perturbs nothing.
type Injector struct {
	plan *Plan
	rng  *randx.Rand
	bus  *eventbus.Bus

	// Drops, Dups, Delays count message-rule firings; Components counts
	// timed faults executed (restorations included).
	Drops, Dups, Delays, Components int
	// Errors collects driver failures (unknown targets, etc.); the
	// schedule keeps running.
	Errors []string
}

// NewInjector builds an injector for the plan. A nil bus is allowed
// (faults fire silently); a nil or empty plan yields an injector whose
// hooks never draw.
func NewInjector(plan *Plan, seed int64, bus *eventbus.Bus) *Injector {
	return &Injector{plan: plan, rng: randx.New(seed ^ seedSalt), bus: bus}
}

// DeliverSignal is the signal.Options.Deliver hook: it decides the fate
// of one setup-protocol control message.
func (in *Injector) DeliverSignal(conn string, hop int) (drop bool, delay float64) {
	return in.deliver("signal", conn, hop)
}

// DeliverMaxmin is the maxmin.ProtocolOptions.Deliver hook: it decides
// the fate of one ADVERTISE (update=false) or UPDATE (update=true)
// packet hop.
func (in *Injector) DeliverMaxmin(conn string, hop int, update bool) (drop bool, delay float64) {
	return in.deliver("maxmin", conn, hop)
}

// deliver evaluates the message rules in plan order. A drop rule that
// fires wins immediately; dup and delay rules compose (dup is counted
// and published — the protocols' handlers are idempotent, so a duplicate
// has no state effect; delays accumulate).
func (in *Injector) deliver(proto, conn string, hop int) (bool, float64) {
	if in == nil || in.plan == nil {
		return false, 0
	}
	delay := 0.0
	for _, r := range in.plan.Messages {
		if r.Proto != "any" && r.Proto != proto {
			continue
		}
		if !in.rng.Bernoulli(r.Prob) {
			continue
		}
		switch r.Action {
		case "drop":
			in.Drops++
			eventbus.Pub(in.bus, eventbus.FaultMessage{Proto: proto, Action: "drop", Conn: conn, Hop: hop})
			return true, delay
		case "dup":
			in.Dups++
			eventbus.Pub(in.bus, eventbus.FaultMessage{Proto: proto, Action: "dup", Conn: conn, Hop: hop})
		case "delay":
			in.Delays++
			delay += r.Delay
			eventbus.Pub(in.bus, eventbus.FaultMessage{Proto: proto, Action: "delay", Conn: conn, Hop: hop, Delay: r.Delay})
		}
	}
	return false, delay
}

// Arm schedules every timed fault of the plan on the simulator. Faults
// with a duration also schedule their restoration. Call once, before the
// simulation runs.
func (in *Injector) Arm(sim *des.Simulator, d Driver) {
	if in == nil || in.plan == nil || d == nil {
		return
	}
	for _, f := range in.plan.Timed {
		f := f
		sim.Post(f.At, func() { in.apply(f, d) })
		if f.For > 0 && f.Action != "blackout" {
			restore := TimedFault{At: f.At + f.For, Action: restoreAction(f.Action), Target: f.Target}
			sim.Post(restore.At, func() { in.apply(restore, d) })
		}
	}
}

func restoreAction(action string) string {
	switch action {
	case "link-down":
		return "link-up"
	case "cell-out":
		return "cell-restore"
	default:
		return action
	}
}

// apply publishes the fault event and executes it through the driver.
func (in *Injector) apply(f TimedFault, d Driver) {
	in.Components++
	eventbus.Pub(in.bus, eventbus.FaultComponent{Action: f.Action, Target: f.Target, For: f.For})
	var err error
	switch f.Action {
	case "link-down":
		err = d.FailLink(f.Target)
	case "link-up":
		err = d.RestoreLink(f.Target)
	case "cell-out":
		err = d.FailCell(f.Target)
	case "cell-restore":
		err = d.RestoreCell(f.Target)
	case "crash-zone":
		err = d.CrashZone(f.Target)
	case "blackout":
		err = d.Blackout(f.Target, f.For)
	case "crash-signaling":
		err = d.CrashSignaling()
	default:
		err = fmt.Errorf("faults: unknown action %q", f.Action)
	}
	if err != nil {
		in.Errors = append(in.Errors, fmt.Sprintf("t=%g %s %s: %v", f.At, f.Action, f.Target, err))
	}
}
