package faults

import (
	"errors"
	"strings"
	"testing"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/topology"
)

const samplePlan = `
# chaos: 10% control loss, slow maxmin, mid-run outages
drop signal 0.1
drop maxmin 0.1
delay maxmin 0.05 0.005
dup any 0.02
at 100 link-down bb:r1-r2 for 50
at 300 cell-out off-1
at 350 cell-restore off-1
at 400 crash-zone z1
at 500 blackout caf-1 for 30
at 600 crash-signaling
`

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(strings.NewReader(samplePlan))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(p.Messages) != 4 {
		t.Fatalf("got %d message rules, want 4", len(p.Messages))
	}
	if len(p.Timed) != 6 {
		t.Fatalf("got %d timed faults, want 6", len(p.Timed))
	}
	if r := p.Messages[2]; r.Action != "delay" || r.Proto != "maxmin" || r.Prob != 0.05 || r.Delay != 0.005 {
		t.Fatalf("bad delay rule: %+v", r)
	}
	if f := p.Timed[0]; f.Action != "link-down" || f.Target != "bb:r1-r2" || f.For != 50 {
		t.Fatalf("bad timed fault: %+v", f)
	}
	if p.Empty() {
		t.Fatal("plan should not be empty")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan(strings.NewReader(samplePlan))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	again, err := ParsePlan(strings.NewReader(p.String()))
	if err != nil {
		t.Fatalf("re-parse of String(): %v\n%s", err, p.String())
	}
	if got, want := again.String(), p.String(); got != want {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", got, want)
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"drop signal 1.5",          // prob out of range
		"drop tcp 0.1",             // unknown proto
		"delay signal 0.1",         // missing delay value
		"at -5 crash-signaling",    // negative time
		"at 10 blackout caf-1",     // blackout without duration
		"at 10 link-down",          // missing target
		"at 10 explode everything", // unknown action
		"frobnicate 1 2 3",         // unknown directive
		"drop signal NaN",          // non-finite
		"at 10 link-up l for 5",    // `for` on a restore
	}
	for _, in := range bad {
		if _, err := ParsePlan(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", in)
		}
	}
}

func TestEmptyPlanDrawsNothing(t *testing.T) {
	in := NewInjector(&Plan{}, 1, nil)
	for i := 0; i < 100; i++ {
		if drop, delay := in.DeliverSignal("c", i); drop || delay != 0 {
			t.Fatal("empty plan must not perturb delivery")
		}
	}
	if in.Drops+in.Dups+in.Delays != 0 {
		t.Fatal("empty plan must not count faults")
	}
	var nilInj *Injector
	if drop, _ := nilInj.DeliverSignal("c", 0); drop {
		t.Fatal("nil injector must deliver")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan, err := ParsePlan(strings.NewReader("drop any 0.3\ndelay any 0.2 0.01"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		in := NewInjector(plan, 42, nil)
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			drop, _ := in.DeliverMaxmin("c", i, i%5 == 0)
			out = append(out, drop)
		}
		return out
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical runs", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("drop rule should fire sometimes, got %d/%d", drops, len(a))
	}
}

// recordingDriver logs component-fault calls in order.
type recordingDriver struct {
	calls []string
}

func (d *recordingDriver) FailLink(l string) error    { d.calls = append(d.calls, "fail-link "+l); return nil }
func (d *recordingDriver) RestoreLink(l string) error { d.calls = append(d.calls, "restore-link "+l); return nil }
func (d *recordingDriver) FailCell(c string) error    { d.calls = append(d.calls, "fail-cell "+c); return nil }
func (d *recordingDriver) RestoreCell(c string) error { d.calls = append(d.calls, "restore-cell "+c); return nil }
func (d *recordingDriver) CrashZone(z string) error   { d.calls = append(d.calls, "crash-zone "+z); return nil }
func (d *recordingDriver) Blackout(c string, dur float64) error {
	d.calls = append(d.calls, "blackout "+c)
	return nil
}
func (d *recordingDriver) CrashSignaling() error { d.calls = append(d.calls, "crash-signaling"); return nil }

func TestArmSchedulesTimedFaults(t *testing.T) {
	plan, err := ParsePlan(strings.NewReader(
		"at 10 link-down l1 for 5\nat 20 crash-zone z\nat 30 crash-signaling"))
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	bus := eventbus.New(sim)
	var events []string
	bus.Subscribe(func(r eventbus.Record) {
		ev := r.Event.(eventbus.FaultComponent)
		events = append(events, ev.Action)
	}, eventbus.KindFaultComponent)
	d := &recordingDriver{}
	in := NewInjector(plan, 1, bus)
	in.Arm(sim, d)
	if err := sim.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"fail-link l1", "restore-link l1", "crash-zone z", "crash-signaling"}
	if len(d.calls) != len(want) {
		t.Fatalf("driver calls %v, want %v", d.calls, want)
	}
	for i := range want {
		if d.calls[i] != want[i] {
			t.Fatalf("driver calls %v, want %v", d.calls, want)
		}
	}
	wantEv := []string{"link-down", "link-up", "crash-zone", "crash-signaling"}
	if len(events) != len(wantEv) {
		t.Fatalf("events %v, want %v", events, wantEv)
	}
	if in.Components != 4 {
		t.Fatalf("Components = %d, want 4", in.Components)
	}
}

func TestArmRecordsDriverErrors(t *testing.T) {
	plan, _ := ParsePlan(strings.NewReader("at 1 crash-zone nowhere"))
	sim := des.New()
	in := NewInjector(plan, 1, nil)
	in.Arm(sim, failingDriver{})
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(in.Errors) != 1 || !strings.Contains(in.Errors[0], "crash-zone nowhere") {
		t.Fatalf("Errors = %v, want one crash-zone failure", in.Errors)
	}
}

type failingDriver struct{}

func (failingDriver) FailLink(string) error          { return errBoom }
func (failingDriver) RestoreLink(string) error       { return errBoom }
func (failingDriver) FailCell(string) error          { return errBoom }
func (failingDriver) RestoreCell(string) error       { return errBoom }
func (failingDriver) CrashZone(string) error         { return errBoom }
func (failingDriver) Blackout(string, float64) error { return errBoom }
func (failingDriver) CrashSignaling() error          { return errBoom }

var errBoom = errors.New("boom")

func auditLedger(t *testing.T) *admission.Ledger {
	t.Helper()
	b := topology.NewBackbone()
	if _, err := b.AddNode(topology.Node{ID: "a", Kind: topology.KindSwitch}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNode(topology.Node{ID: "b", Kind: topology.KindSwitch}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddLink(topology.Link{From: "a", To: "b", Capacity: 1e6, PropDelay: 1e-3}); err != nil {
		t.Fatal(err)
	}
	return admission.NewLedger(b)
}

func TestAuditorCleanRun(t *testing.T) {
	lg := auditLedger(t)
	a := &Auditor{
		Ledger:         lg,
		PendingHolds:   func() float64 { return 0 },
		LiveConns:      func() []string { return nil },
		ConvergenceGap: func() float64 { return 0 },
	}
	if v := a.CheckFinal(); len(v) != 0 {
		t.Fatalf("clean ledger reported violations: %v", v)
	}
}

func TestAuditorDetectsViolations(t *testing.T) {
	lg := auditLedger(t)
	a := &Auditor{
		Ledger:         lg,
		PendingHolds:   func() float64 { return 64e3 }, // leaked hold
		LiveConns:      func() []string { return nil },
		ConvergenceGap: func() float64 { return 1.0 }, // diverged
	}
	v := a.CheckFinal()
	if len(v) != 2 {
		t.Fatalf("violations = %v, want leaked-holds and maxmin-divergence", v)
	}
	if !strings.Contains(v[0], "leaked-holds") || !strings.Contains(v[1], "maxmin-divergence") {
		t.Fatalf("unexpected violations %v", v)
	}
}
