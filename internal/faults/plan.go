// Package faults is the deterministic fault-injection subsystem: a Plan
// of composable rules — probabilistic control-message faults and timed
// component faults — is parsed from a small text spec and executed on the
// simulator clock by an Injector whose every draw comes from a
// seed-derived RNG. The package deliberately knows nothing about the
// protocol packages it perturbs: internal/signal and internal/maxmin
// expose plain delivery-hook function types that the Injector's methods
// satisfy structurally, and component faults act through the Driver
// interface the integration layer implements. An Auditor checks the
// recovery invariants (no leaked holds, ledger conservation, maxmin
// re-convergence) after chaos runs.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MsgRule is one probabilistic control-message fault: with probability
// Prob, the rule acts on each delivered message of the matching protocol.
type MsgRule struct {
	// Proto selects the protocol: "signal", "maxmin", or "any".
	Proto string
	// Action is "drop", "dup", or "delay".
	Action string
	// Prob is the per-message firing probability in [0,1].
	Prob float64
	// Delay is the added latency in seconds (delay rules only).
	Delay float64
}

// TimedFault is one scheduled component fault.
type TimedFault struct {
	// At is the simulated time the fault fires.
	At float64
	// Action is one of "link-down", "link-up", "cell-out",
	// "cell-restore", "crash-zone", "blackout", "crash-signaling".
	Action string
	// Target names the link, cell, or zone (empty for crash-signaling).
	Target string
	// For, when positive, schedules the matching restoration at At+For
	// (link-down→link-up, cell-out→cell-restore; blackout requires it).
	For float64
}

// Plan is a composed fault schedule. The zero value (and a nil *Plan)
// injects nothing.
type Plan struct {
	Messages []MsgRule
	Timed    []TimedFault
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Messages) == 0 && len(p.Timed) == 0)
}

// String renders the plan back in the ParsePlan grammar, one rule per
// line, timed faults sorted by time.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range p.Messages {
		switch r.Action {
		case "delay":
			fmt.Fprintf(&b, "delay %s %g %g\n", r.Proto, r.Prob, r.Delay)
		default:
			fmt.Fprintf(&b, "%s %s %g\n", r.Action, r.Proto, r.Prob)
		}
	}
	timed := append([]TimedFault(nil), p.Timed...)
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].At < timed[j].At })
	for _, f := range timed {
		fmt.Fprintf(&b, "at %g %s", f.At, f.Action)
		if f.Target != "" {
			fmt.Fprintf(&b, " %s", f.Target)
		}
		if f.For > 0 {
			fmt.Fprintf(&b, " for %g", f.For)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParsePlan reads the line-oriented plan grammar:
//
//	# comments and blank lines are ignored
//	drop  <proto> <prob>             # proto: signal | maxmin | any
//	dup   <proto> <prob>
//	delay <proto> <prob> <seconds>
//	at <time> link-down <link> [for <duration>]
//	at <time> link-up <link>
//	at <time> cell-out <cell> [for <duration>]
//	at <time> cell-restore <cell>
//	at <time> crash-zone <zone>
//	at <time> blackout <cell> for <duration>
//	at <time> crash-signaling
//
// Probabilities must lie in [0,1]; times and durations must be finite and
// non-negative. Errors carry the 1-based line number.
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "drop", "dup", "delay":
			err = p.parseMsgRule(fields)
		case "at":
			err = p.parseTimed(fields)
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return p, nil
}

func (p *Plan) parseMsgRule(fields []string) error {
	action := fields[0]
	want := 3
	if action == "delay" {
		want = 4
	}
	if len(fields) != want {
		return fmt.Errorf("%s needs %d arguments, got %d", action, want-1, len(fields)-1)
	}
	proto := fields[1]
	switch proto {
	case "signal", "maxmin", "any":
	default:
		return fmt.Errorf("unknown protocol %q (want signal, maxmin, or any)", proto)
	}
	prob, err := parseFinite(fields[2])
	if err != nil {
		return fmt.Errorf("bad probability %q: %w", fields[2], err)
	}
	if prob < 0 || prob > 1 {
		return fmt.Errorf("probability %v outside [0,1]", prob)
	}
	rule := MsgRule{Proto: proto, Action: action, Prob: prob}
	if action == "delay" {
		d, err := parseFinite(fields[3])
		if err != nil {
			return fmt.Errorf("bad delay %q: %w", fields[3], err)
		}
		if d < 0 {
			return fmt.Errorf("delay %v must be non-negative", d)
		}
		rule.Delay = d
	}
	p.Messages = append(p.Messages, rule)
	return nil
}

func (p *Plan) parseTimed(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("at needs a time and an action")
	}
	at, err := parseFinite(fields[1])
	if err != nil {
		return fmt.Errorf("bad time %q: %w", fields[1], err)
	}
	if at < 0 {
		return fmt.Errorf("time %v must be non-negative", at)
	}
	f := TimedFault{At: at, Action: fields[2]}
	rest := fields[3:]
	needTarget := true
	allowFor := false
	switch f.Action {
	case "link-down", "cell-out":
		allowFor = true
	case "blackout":
		allowFor = true
	case "link-up", "cell-restore", "crash-zone":
	case "crash-signaling":
		needTarget = false
	default:
		return fmt.Errorf("unknown fault action %q", f.Action)
	}
	if needTarget {
		if len(rest) == 0 {
			return fmt.Errorf("%s needs a target", f.Action)
		}
		f.Target = rest[0]
		rest = rest[1:]
	}
	if len(rest) > 0 {
		if !allowFor || len(rest) != 2 || rest[0] != "for" {
			return fmt.Errorf("trailing arguments %v", rest)
		}
		dur, err := parseFinite(rest[1])
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", rest[1], err)
		}
		if dur <= 0 {
			return fmt.Errorf("duration %v must be positive", dur)
		}
		f.For = dur
	}
	if f.Action == "blackout" && f.For <= 0 {
		return fmt.Errorf("blackout needs `for <duration>`")
	}
	p.Timed = append(p.Timed, f)
	return nil
}

// parseFinite parses a float64 and rejects NaN and ±Inf (the simulator
// clock cannot absorb them).
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v != v || v > 1e300 || v < -1e300 {
		return 0, fmt.Errorf("value %v is not finite", v)
	}
	return v, nil
}
