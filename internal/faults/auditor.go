package faults

import (
	"fmt"
	"strings"

	"armnet/internal/admission"
	"armnet/internal/eventbus"
)

// Auditor checks the recovery invariants of a chaos run. The ledger is
// inspected directly; everything protocol-specific arrives through
// closures the harness wires up, so the package stays decoupled from
// core/signal/maxmin.
//
// Invariant classes:
//
//   - Ledger conservation (checked continuously after every component
//     fault, and at the end): allocations satisfy Cur ≥ Min ≥ 0 with
//     non-negative buffers, advance reservations stay within
//     [0, Capacity], and pool fractions stay within [0,1]. Note that
//     ΣMin ≤ Capacity is deliberately *not* asserted: a wireless
//     capacity drop legitimately strands committed minima above the new
//     effective capacity until adaptation catches up.
//   - No leaked holds (end only): once the plane has drained, no
//     tentative signaling holds remain — crashes may orphan holds, but
//     leases must have reclaimed them.
//   - No orphaned allocations (end only): every ledger allocation
//     belongs to a live connection (multicast legs "<conn>@mc:<dst>"
//     map to their owning connection).
//   - Re-convergence (end only): the maxmin allocation's distance from
//     the centralized water-filling oracle is within GapTol.
type Auditor struct {
	// Ledger is the admission ledger under audit.
	Ledger *admission.Ledger
	// PendingHolds returns the total tentative signaling holds (bits/s);
	// nil skips the leaked-holds check.
	PendingHolds func() float64
	// LiveConns returns the IDs of live connections; nil skips the
	// orphaned-allocation check.
	LiveConns func() []string
	// ConvergenceGap returns the max |protocol − oracle| rate gap; nil
	// skips the re-convergence check.
	ConvergenceGap func() float64
	// GapTol bounds the acceptable convergence gap (default 1e-6).
	GapTol float64
	// Bus, when non-nil, receives an InvariantViolation per failure.
	Bus *eventbus.Bus

	// Violations accumulates every failure seen, in detection order.
	Violations []string
}

// Watch subscribes the auditor to the bus so ledger conservation is
// re-checked immediately after every component fault and restoration.
func (a *Auditor) Watch(bus *eventbus.Bus) {
	a.Bus = bus
	bus.Subscribe(func(eventbus.Record) { a.CheckConservation() },
		eventbus.KindFaultComponent)
}

func (a *Auditor) report(invariant, detail string) {
	a.Violations = append(a.Violations, invariant+": "+detail)
	eventbus.Pub(a.Bus, eventbus.InvariantViolation{Invariant: invariant, Detail: detail})
}

// CheckConservation verifies the per-link ledger invariants. It returns
// the number of new violations.
func (a *Auditor) CheckConservation() int {
	if a.Ledger == nil {
		return 0
	}
	before := len(a.Violations)
	const eps = 1e-9
	for _, ls := range a.Ledger.Links() {
		link := string(ls.Link.ID)
		if ls.AdvanceReserved < -eps || ls.AdvanceReserved > ls.Capacity+eps {
			a.report("advance-bounds", fmt.Sprintf("%s: b_resv=%g outside [0, %g]", link, ls.AdvanceReserved, ls.Capacity))
		}
		if ls.PoolFraction < -eps || ls.PoolFraction > 1+eps {
			a.report("pool-bounds", fmt.Sprintf("%s: pool fraction %g outside [0,1]", link, ls.PoolFraction))
		}
		for _, id := range ls.Conns() {
			al := ls.Alloc(id)
			if al.Min < -eps || al.Cur < al.Min-eps || al.Buffer < -eps {
				a.report("alloc-order", fmt.Sprintf("%s/%s: min=%g cur=%g buffer=%g", link, id, al.Min, al.Cur, al.Buffer))
			}
		}
	}
	return len(a.Violations) - before
}

// CheckFinal runs every invariant after the run has drained: conservation,
// leaked holds, orphaned allocations, and maxmin re-convergence. It
// returns all violations accumulated so far.
func (a *Auditor) CheckFinal() []string {
	a.CheckConservation()
	const eps = 1e-9
	if a.PendingHolds != nil {
		if held := a.PendingHolds(); held > eps {
			a.report("leaked-holds", fmt.Sprintf("tentative holds remain: %g bits/s", held))
		}
	}
	if a.LiveConns != nil && a.Ledger != nil {
		live := make(map[string]bool)
		for _, id := range a.LiveConns() {
			live[id] = true
		}
		for _, ls := range a.Ledger.Links() {
			for _, id := range ls.Conns() {
				owner := id
				if i := strings.Index(owner, "@"); i >= 0 {
					owner = owner[:i]
				}
				if !live[owner] {
					a.report("orphaned-alloc", fmt.Sprintf("%s holds allocation for dead %s", ls.Link.ID, id))
				}
			}
		}
	}
	if a.ConvergenceGap != nil {
		tol := a.GapTol
		if tol <= 0 {
			tol = 1e-6
		}
		if gap := a.ConvergenceGap(); gap > tol {
			a.report("maxmin-divergence", fmt.Sprintf("gap %g exceeds %g", gap, tol))
		}
	}
	return a.Violations
}
