package faults

import (
	"strings"
	"testing"
)

// FuzzParsePlan feeds arbitrary text to the plan parser. Invariants: the
// parser never panics, and any plan it accepts survives a String() →
// ParsePlan round trip to the identical rendering (the grammar is
// self-describing).
func FuzzParsePlan(f *testing.F) {
	f.Add(samplePlan)
	f.Add("drop signal 0.1")
	f.Add("dup any 1")
	f.Add("delay maxmin 0.5 0.002")
	f.Add("at 0 crash-signaling")
	f.Add("at 100 link-down bb:r1-r2 for 50")
	f.Add("at 1e3 blackout caf-1 for 2.5")
	f.Add("# only a comment\n\n")
	f.Add("drop signal 2")
	f.Add("at 10 blackout c")
	f.Add("delay any 0.1 -1")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePlan(strings.NewReader(input))
		if err != nil {
			return
		}
		rendered := p.String()
		again, err := ParsePlan(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("accepted plan failed to re-parse: %v\nrendered:\n%s", err, rendered)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("round trip drifted:\n%q\nvs\n%q", got, rendered)
		}
	})
}
