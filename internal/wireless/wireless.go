// Package wireless models the error-prone, time-varying wireless medium
// that motivates the paper's loose QoS bounds (§2.1): a Gilbert–Elliott
// two-state burst-error channel and a capacity process that modulates the
// effective throughput of a cell's air interface.
package wireless

import (
	"fmt"

	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/randx"
)

// GilbertElliott is the classic two-state Markov burst-error channel.
// In the Good state packets are lost with probability LossGood; in the Bad
// state with LossBad. State dwell times are exponential.
type GilbertElliott struct {
	// GoodToBad and BadToGood are transition rates (1/s).
	GoodToBad, BadToGood float64
	// LossGood and LossBad are per-packet loss probabilities per state.
	LossGood, LossBad float64

	bad       bool
	lastShift float64
	rng       *randx.Rand
}

// NewGilbertElliott returns a channel starting in the Good state.
func NewGilbertElliott(goodToBad, badToGood, lossGood, lossBad float64, rng *randx.Rand) (*GilbertElliott, error) {
	if goodToBad <= 0 || badToGood <= 0 {
		return nil, fmt.Errorf("wireless: transition rates must be positive, got %v, %v", goodToBad, badToGood)
	}
	if lossGood < 0 || lossGood > 1 || lossBad < 0 || lossBad > 1 {
		return nil, fmt.Errorf("wireless: loss probabilities must be in [0,1], got %v, %v", lossGood, lossBad)
	}
	return &GilbertElliott{
		GoodToBad: goodToBad,
		BadToGood: badToGood,
		LossGood:  lossGood,
		LossBad:   lossBad,
		rng:       rng,
	}, nil
}

// Bad reports whether the channel is currently in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Attach schedules the state process on the simulator, invoking onShift
// (which may be nil) after every state change.
func (g *GilbertElliott) Attach(sim *des.Simulator, onShift func(bad bool)) {
	var schedule func()
	schedule = func() {
		rate := g.GoodToBad
		if g.bad {
			rate = g.BadToGood
		}
		sim.PostAfter(g.rng.Exp(rate), func() {
			g.bad = !g.bad
			g.lastShift = sim.Now()
			if onShift != nil {
				onShift(g.bad)
			}
			schedule()
		})
	}
	schedule()
}

// Lose draws whether a packet transmitted now is lost.
func (g *GilbertElliott) Lose() bool {
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return g.rng.Bernoulli(p)
}

// SteadyLoss returns the long-run average packet loss probability — the
// p_e,l value the admission test plugs into Table 2's loss row.
func (g *GilbertElliott) SteadyLoss() float64 {
	// Stationary probability of Bad = rateGB / (rateGB + rateBG).
	pBad := g.GoodToBad / (g.GoodToBad + g.BadToGood)
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// CapacityProcess modulates a cell's effective wireless capacity between a
// set of discrete levels with exponential dwell times — the "time-varying
// effective capacity of the wireless link" that triggers network-initiated
// adaptation (§2.1, §5.3).
type CapacityProcess struct {
	// Levels are the available capacities in bits/s; Level 0 is nominal.
	Levels []float64
	// DwellMean is the mean time spent at a level before re-drawing.
	DwellMean float64
	// Weights bias the level draw; nil means uniform.
	Weights []float64

	level int
	rng   *randx.Rand
	bus   *eventbus.Bus
	link  string

	onChange      func(capacity float64)
	blackoutUntil float64
	preBlackout   int
}

// PublishTo routes every capacity change through the given event bus as a
// CapacityChange tagged with the link name. Call before Attach; a nil bus
// disables publishing.
func (c *CapacityProcess) PublishTo(bus *eventbus.Bus, link string) {
	c.bus = bus
	c.link = link
}

// NewCapacityProcess validates and returns a capacity process at level 0.
func NewCapacityProcess(levels []float64, dwellMean float64, weights []float64, rng *randx.Rand) (*CapacityProcess, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("wireless: capacity process needs at least one level")
	}
	for i, l := range levels {
		if l <= 0 {
			return nil, fmt.Errorf("wireless: level %d capacity %v must be positive", i, l)
		}
	}
	if dwellMean <= 0 {
		return nil, fmt.Errorf("wireless: dwell mean must be positive, got %v", dwellMean)
	}
	if weights != nil && len(weights) != len(levels) {
		return nil, fmt.Errorf("wireless: %d weights for %d levels", len(weights), len(levels))
	}
	return &CapacityProcess{Levels: levels, DwellMean: dwellMean, Weights: weights, rng: rng}, nil
}

// Capacity returns the current effective capacity.
func (c *CapacityProcess) Capacity() float64 { return c.Levels[c.level] }

// Attach schedules the level process, invoking onChange (which may be nil)
// whenever the effective capacity actually changes.
func (c *CapacityProcess) Attach(sim *des.Simulator, onChange func(capacity float64)) {
	c.onChange = onChange
	if len(c.Levels) == 1 {
		return // nothing to modulate
	}
	var schedule func()
	schedule = func() {
		sim.PostAfter(c.rng.Exp(1/c.DwellMean), func() {
			if sim.Now() < c.blackoutUntil {
				schedule() // level pinned during a blackout
				return
			}
			c.setLevel(c.draw())
			schedule()
		})
	}
	schedule()
}

// setLevel moves to a level, publishing and notifying only on actual
// capacity changes.
func (c *CapacityProcess) setLevel(next int) {
	if next == c.level {
		return
	}
	c.level = next
	eventbus.Pub(c.bus, eventbus.CapacityChange{Link: c.link, Capacity: c.Capacity()})
	if c.onChange != nil {
		c.onChange(c.Capacity())
	}
}

// Blackout forces the process to its worst level for duration seconds —
// the fault-injection model of a deep fade or a jammer. Scheduled dwell
// redraws are suppressed while the blackout lasts; afterwards the
// pre-blackout level is restored and the dwell process resumes.
// Overlapping blackouts extend each other. With a single configured
// level there is nothing worse to fall to, so the call is a no-op.
func (c *CapacityProcess) Blackout(sim *des.Simulator, duration float64) {
	if duration <= 0 || len(c.Levels) == 1 {
		return
	}
	now := sim.Now()
	if now >= c.blackoutUntil {
		c.preBlackout = c.level
	}
	if until := now + duration; until > c.blackoutUntil {
		c.blackoutUntil = until
	}
	c.setLevel(c.worstLevel())
	sim.PostAfter(duration, func() {
		if sim.Now() < c.blackoutUntil {
			return // a later blackout extended this one
		}
		c.setLevel(c.preBlackout)
	})
}

func (c *CapacityProcess) worstLevel() int {
	w := 0
	for i, l := range c.Levels {
		if l < c.Levels[w] {
			w = i
		}
	}
	return w
}

func (c *CapacityProcess) draw() int {
	if c.Weights != nil {
		return c.rng.Categorical(c.Weights)
	}
	return c.rng.Intn(len(c.Levels))
}
