package wireless

import (
	"math"
	"testing"

	"armnet/internal/des"
	"armnet/internal/randx"
)

func TestGilbertElliottValidation(t *testing.T) {
	rng := randx.New(1)
	if _, err := NewGilbertElliott(0, 1, 0, 0.5, rng); err == nil {
		t.Error("zero transition rate accepted")
	}
	if _, err := NewGilbertElliott(1, 1, -0.1, 0.5, rng); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := NewGilbertElliott(1, 1, 0, 1.5, rng); err == nil {
		t.Error("loss > 1 accepted")
	}
	if _, err := NewGilbertElliott(1, 2, 0.001, 0.3, rng); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
}

func TestSteadyLoss(t *testing.T) {
	rng := randx.New(1)
	g, err := NewGilbertElliott(1, 3, 0, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// pBad = 1/(1+3) = 0.25 -> loss = 0.25*0.4 = 0.1
	if got := g.SteadyLoss(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("SteadyLoss = %v, want 0.1", got)
	}
}

func TestChannelStateProcess(t *testing.T) {
	rng := randx.New(42)
	g, err := NewGilbertElliott(2, 6, 0.001, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	shifts := 0
	var badTime, lastT float64
	var wasBad bool
	g.Attach(sim, func(bad bool) {
		if wasBad {
			badTime += sim.Now() - lastT
		}
		wasBad = bad
		lastT = sim.Now()
		shifts++
	})
	if err := sim.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	if wasBad {
		badTime += sim.Now() - lastT
	}
	if shifts < 100 {
		t.Fatalf("only %d state shifts in 2000 s", shifts)
	}
	frac := badTime / sim.Now()
	want := 2.0 / (2 + 6)
	if math.Abs(frac-want) > 0.05 {
		t.Fatalf("bad-state fraction = %v, want ~%v", frac, want)
	}
}

func TestLossDependsOnState(t *testing.T) {
	rng := randx.New(7)
	g, err := NewGilbertElliott(1, 1, 0, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Good state, LossGood = 0 -> never lose.
	for i := 0; i < 100; i++ {
		if g.Lose() {
			t.Fatal("lost packet in perfect Good state")
		}
	}
	g.bad = true
	for i := 0; i < 100; i++ {
		if !g.Lose() {
			t.Fatal("kept packet in hopeless Bad state")
		}
	}
}

func TestEmpiricalLossMatchesSteady(t *testing.T) {
	rng := randx.New(11)
	g, err := NewGilbertElliott(5, 15, 0.01, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	g.Attach(sim, nil)
	lost, total := 0, 0
	sim.Every(0.01, func() {
		total++
		if g.Lose() {
			lost++
		}
		if total >= 200000 {
			sim.Stop()
		}
	})
	_ = sim.Run()
	got := float64(lost) / float64(total)
	want := g.SteadyLoss()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical loss %v, steady-state %v", got, want)
	}
}

func TestCapacityProcessValidation(t *testing.T) {
	rng := randx.New(1)
	if _, err := NewCapacityProcess(nil, 1, nil, rng); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewCapacityProcess([]float64{1e6, 0}, 1, nil, rng); err == nil {
		t.Error("zero level accepted")
	}
	if _, err := NewCapacityProcess([]float64{1e6}, 0, nil, rng); err == nil {
		t.Error("zero dwell accepted")
	}
	if _, err := NewCapacityProcess([]float64{1e6, 2e6}, 1, []float64{1}, rng); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestCapacityProcessVisitsLevels(t *testing.T) {
	rng := randx.New(3)
	levels := []float64{1.6e6, 800e3, 400e3}
	cp, err := NewCapacityProcess(levels, 1, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Capacity() != 1.6e6 {
		t.Fatalf("initial capacity = %v", cp.Capacity())
	}
	sim := des.New()
	seen := map[float64]bool{}
	cp.Attach(sim, func(c float64) { seen[c] = true })
	if err := sim.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	for _, l := range levels {
		if !seen[l] && l != cp.Capacity() && l != 1.6e6 {
			t.Errorf("level %v never visited", l)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("capacity changes = %d levels, want >= 2", len(seen))
	}
}

func TestSingleLevelProcessIsStatic(t *testing.T) {
	rng := randx.New(3)
	cp, err := NewCapacityProcess([]float64{1e6}, 1, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	cp.Attach(sim, func(float64) { t.Error("single-level process changed") })
	if err := sim.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if sim.Fired() != 0 {
		t.Fatal("single-level process scheduled events")
	}
}

func TestBlackoutForcesWorstLevelAndRestores(t *testing.T) {
	rng := randx.New(3)
	proc, err := NewCapacityProcess([]float64{1.6e6, 800e3, 200e3}, 1000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	var changes []float64
	proc.Attach(sim, func(c float64) { changes = append(changes, c) })
	sim.At(1, func() { proc.Blackout(sim, 5) })
	if err := sim.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if got := proc.Capacity(); got != 200e3 {
		t.Fatalf("capacity during blackout = %v, want worst level 200e3", got)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := proc.Capacity(); got != 1.6e6 {
		t.Fatalf("capacity after blackout = %v, want restored 1.6e6", got)
	}
	if len(changes) != 2 || changes[0] != 200e3 || changes[1] != 1.6e6 {
		t.Fatalf("onChange sequence = %v, want [200e3 1.6e6]", changes)
	}
}

func TestOverlappingBlackoutsExtend(t *testing.T) {
	rng := randx.New(3)
	proc, err := NewCapacityProcess([]float64{1e6, 100e3}, 1000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	proc.Attach(sim, nil)
	sim.At(1, func() { proc.Blackout(sim, 4) })
	sim.At(3, func() { proc.Blackout(sim, 6) }) // extends to t=9
	if err := sim.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if got := proc.Capacity(); got != 100e3 {
		t.Fatalf("capacity = %v, first blackout's expiry ended the extended one", got)
	}
	if err := sim.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if got := proc.Capacity(); got != 1e6 {
		t.Fatalf("capacity = %v after extended blackout, want 1e6", got)
	}
}
