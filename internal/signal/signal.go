// Package signal models the paper's connection-setup signaling (§5.1) as
// actual control messages on the simulator: the forward pass travels the
// route hop by hop placing *tentative* holds, the destination evaluates
// the end-to-end tests, and the reverse pass commits the reservation (or
// a rollback sweep releases the holds). Concurrent setups therefore race
// realistically: two requests for the last slice of a link cannot both
// win, and abandoned sessions time out and clean up.
//
// The atomic admission logic itself stays in internal/admission; this
// package adds the latency, concurrency and failure semantics around it.
package signal

import (
	"errors"
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/topology"
)

// Errors reported to completion callbacks.
var (
	// ErrHopRejected is returned when a forward-pass hop lacks capacity
	// (including capacity tentatively held by concurrent setups).
	ErrHopRejected = errors.New("signal: rejected at hop")
	// ErrEndToEnd is returned when the destination's Table 2 evaluation
	// fails.
	ErrEndToEnd = errors.New("signal: end-to-end test failed")
	// ErrTimeout is returned when the session exceeded its deadline.
	ErrTimeout = errors.New("signal: setup timed out")
)

// Options tunes the signaling plane.
type Options struct {
	// HopProcessing is the per-switch control processing time (default
	// 200 µs).
	HopProcessing float64
	// Timeout aborts sessions that have not completed (default 2 s).
	Timeout float64
	// Bus, when non-nil, receives SignalHold / SignalCommit / SignalAbort
	// events as sessions place tentative holds and resolve.
	Bus *eventbus.Bus
}

func (o Options) withDefaults() Options {
	if o.HopProcessing <= 0 {
		o.HopProcessing = 200e-6
	}
	if o.Timeout <= 0 {
		o.Timeout = 2
	}
	return o
}

// Result reports a finished setup session.
type Result struct {
	// Admission is the final outcome (zero value when the session never
	// reached the atomic commit).
	Admission admission.Result
	// Latency is the elapsed setup time in simulated seconds.
	Latency float64
	// Err classifies failures (nil on success).
	Err error
	// FailedHop is the 1-based hop index of a forward-pass rejection.
	FailedHop int
}

// Plane runs setup sessions against one admission controller.
type Plane struct {
	Sim  *des.Simulator
	Ctl  *admission.Controller
	opts Options
	// pending holds tentative bandwidth per link from in-flight
	// sessions, visible to competing forward passes.
	pending map[topology.LinkID]float64
	// Sessions counts sessions started; Commits counts successes.
	Sessions, Commits, Rollbacks int
}

// NewPlane builds a signaling plane.
func NewPlane(sim *des.Simulator, ctl *admission.Controller, opts Options) *Plane {
	return &Plane{
		Sim:     sim,
		Ctl:     ctl,
		opts:    opts.withDefaults(),
		pending: make(map[topology.LinkID]float64),
	}
}

// Pending returns the tentative holds on a link (for tests/diagnostics).
func (p *Plane) Pending(id topology.LinkID) float64 { return p.pending[id] }

// Setup starts a signaling session for the given admission test and
// invokes done when it completes (success or failure). The callback runs
// at the simulated completion time.
func (p *Plane) Setup(t admission.Test, done func(Result)) {
	p.Sessions++
	start := p.Sim.Now()
	s := &session{plane: p, test: t, done: done, start: start}
	deadline := p.Sim.After(p.opts.Timeout, func() {
		if s.finished {
			return
		}
		s.rollback(len(s.held), "timeout")
		s.finish(Result{Err: ErrTimeout, Latency: p.Sim.Now() - start})
	})
	s.deadline = deadline
	s.forward(0)
}

type session struct {
	plane    *Plane
	test     admission.Test
	done     func(Result)
	start    float64
	held     []topology.LinkID // links with tentative holds, in order
	finished bool
	deadline *des.Event
}

func (s *session) finish(r Result) {
	if s.finished {
		return
	}
	s.finished = true
	if s.deadline != nil {
		s.deadline.Cancel()
	}
	if s.done != nil {
		s.done(r)
	}
}

// hopDelay is the one-way control latency across one link.
func (s *session) hopDelay(l *topology.Link) float64 {
	return l.PropDelay + s.plane.opts.HopProcessing
}

// forward advances the setup packet to hop i (0-based); it performs the
// bandwidth availability check against committed + pending holds, places
// this session's tentative hold, and proceeds.
func (s *session) forward(i int) {
	if s.finished {
		return
	}
	if i == len(s.test.Route.Links) {
		s.atDestination()
		return
	}
	link := s.test.Route.Links[i]
	s.plane.Sim.After(s.hopDelay(link), func() {
		if s.finished {
			return
		}
		ls := s.plane.Ctl.Ledger.Link(link.ID)
		if ls == nil {
			s.rollback(i, "unknown-link")
			s.finish(Result{Err: fmt.Errorf("%w %d: unknown link %s", ErrHopRejected, i+1, link.ID), FailedHop: i + 1, Latency: s.plane.Sim.Now() - s.start})
			return
		}
		need := s.test.Req.Bandwidth.Min
		avail := ls.Capacity - ls.AdvanceReserved - ls.Pool() - ls.SumMin() - s.plane.pending[link.ID]
		if need > avail {
			s.rollback(i, "hop-rejected")
			s.finish(Result{Err: fmt.Errorf("%w %d (%s)", ErrHopRejected, i+1, link.ID), FailedHop: i + 1, Latency: s.plane.Sim.Now() - s.start})
			return
		}
		s.plane.pending[link.ID] += need
		s.held = append(s.held, link.ID)
		s.plane.opts.Bus.Publish(eventbus.SignalHold{Conn: s.test.ConnID, Link: string(link.ID)})
		s.forward(i + 1)
	})
}

// atDestination runs the atomic end-to-end admission (the Table 2
// destination tests plus the commit) and starts the reverse pass.
func (s *session) atDestination() {
	// Release our own tentative holds first: the atomic Admit must see
	// the ledger without them (they exist to serialize against
	// *concurrent* sessions, which still hold theirs).
	s.releaseHolds()
	res, err := s.plane.Ctl.Admit(s.test)
	if err != nil {
		s.finish(Result{Err: err, Latency: s.plane.Sim.Now() - s.start})
		return
	}
	if !res.Admitted {
		s.plane.Rollbacks++
		s.plane.opts.Bus.Publish(eventbus.SignalAbort{
			Conn: s.test.ConnID, Reason: "end-to-end:" + res.Reason,
			Hop: len(s.test.Route.Links),
		})
		s.finish(Result{
			Admission: res,
			Err:       fmt.Errorf("%w: %s at %s", ErrEndToEnd, res.Reason, res.FailedLink),
			Latency:   s.plane.Sim.Now() - s.start,
		})
		return
	}
	// Reverse pass back to the source: the reservation is committed; the
	// session completes when the confirmation reaches the source.
	total := 0.0
	for _, l := range s.test.Route.Links {
		total += s.hopDelay(l)
	}
	s.plane.Sim.After(total, func() {
		s.plane.Commits++
		latency := s.plane.Sim.Now() - s.start
		s.plane.opts.Bus.Publish(eventbus.SignalCommit{Conn: s.test.ConnID, Latency: latency})
		s.finish(Result{Admission: res, Latency: latency})
	})
}

// releaseHolds removes this session's tentative holds.
func (s *session) releaseHolds() {
	for _, id := range s.held {
		s.plane.pending[id] -= s.test.Req.Bandwidth.Min
		if s.plane.pending[id] <= 1e-12 {
			delete(s.plane.pending, id)
		}
	}
	s.held = nil
}

// rollback releases holds after a failure at hop i; the release messages
// travel back toward the source (latency is charged to the session's
// reported Latency implicitly, since holds release immediately in state
// but the session has already failed).
func (s *session) rollback(i int, reason string) {
	s.plane.Rollbacks++
	s.plane.opts.Bus.Publish(eventbus.SignalAbort{Conn: s.test.ConnID, Reason: reason, Hop: i})
	s.releaseHolds()
}
