// Package signal models the paper's connection-setup signaling (§5.1) as
// actual control messages on the simulator: the forward pass travels the
// route hop by hop placing *tentative* holds, the destination evaluates
// the end-to-end tests, and the reverse pass commits the reservation (or
// a rollback sweep releases the holds). Concurrent setups therefore race
// realistically: two requests for the last slice of a link cannot both
// win, and abandoned sessions time out and clean up.
//
// The plane is hardened against a lossy control plane: an optional
// delivery hook (wired to the fault injector) may drop or delay any hop,
// lost messages are retransmitted with exponential backoff up to a retry
// budget, and a crash of the plane orphans the in-flight tentative holds
// — which the lease reaper reclaims when HoldLease is configured.
//
// The atomic admission logic itself stays in internal/admission; this
// package adds the latency, concurrency and failure semantics around it.
package signal

import (
	"errors"
	"fmt"
	"sort"

	"armnet/internal/admission"
	"armnet/internal/clock"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/topology"
)

// Errors reported to completion callbacks.
var (
	// ErrHopRejected is returned when a forward-pass hop lacks capacity
	// (including capacity tentatively held by concurrent setups).
	ErrHopRejected = errors.New("signal: rejected at hop")
	// ErrEndToEnd is returned when the destination's Table 2 evaluation
	// fails.
	ErrEndToEnd = errors.New("signal: end-to-end test failed")
	// ErrTimeout is returned when the session exceeded its deadline.
	ErrTimeout = errors.New("signal: setup timed out")
	// ErrLost is returned when a control message stayed lost after the
	// full retransmission budget.
	ErrLost = errors.New("signal: control message lost")
	// ErrLinkDown is returned when the forward pass reaches a failed
	// link.
	ErrLinkDown = errors.New("signal: link down")
)

// Deliver decides the fate of one setup control message about to cross
// hop (0-based; forward hops are 0..n-1, the commit confirmation's
// reverse hops are n..2n-1). It may drop the message or add latency.
// A nil hook delivers everything untouched and costs nothing.
type Deliver func(conn string, hop int) (drop bool, delay float64)

// Options tunes the signaling plane.
type Options struct {
	// HopProcessing is the per-switch control processing time (default
	// 200 µs).
	HopProcessing float64
	// Timeout aborts sessions that have not completed. Zero scales the
	// deadline with the route: PerHopTimeout × hops, floored at 2 s (the
	// historical flat default, so short routes keep their behavior).
	Timeout float64
	// PerHopTimeout is the per-hop deadline budget used when Timeout is
	// zero (default 0.5 s).
	PerHopTimeout float64
	// MaxRetries bounds retransmissions per lost message (default 3;
	// negative disables retransmission).
	MaxRetries int
	// RetryBase is the first retransmission backoff; it doubles per
	// attempt (default 50 ms).
	RetryBase float64
	// HoldLease, when positive, arms a reaper that reclaims tentative
	// holds orphaned by a plane crash once they are older than the
	// lease. Zero (the default) means crashes leak holds forever.
	HoldLease float64
	// Deliver, when non-nil, filters every control message (fault
	// injection).
	Deliver Deliver
	// Bus, when non-nil, receives SignalHold / SignalCommit / SignalAbort
	// events as sessions place tentative holds and resolve, plus
	// ControlRetransmit and HoldReclaimed under faults.
	Bus *eventbus.Bus
}

func (o Options) withDefaults() Options {
	if o.HopProcessing <= 0 {
		o.HopProcessing = 200e-6
	}
	if o.PerHopTimeout <= 0 {
		o.PerHopTimeout = 0.5
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 0.05
	}
	return o
}

// minTimeout is the historical flat session deadline; hop-scaled
// deadlines never drop below it.
const minTimeout = 2.0

// Result reports a finished setup session.
type Result struct {
	// Admission is the final outcome (zero value when the session never
	// reached the atomic commit).
	Admission admission.Result
	// Latency is the elapsed setup time in simulated seconds.
	Latency float64
	// Err classifies failures (nil on success).
	Err error
	// FailedHop is the 1-based hop index of a forward-pass rejection.
	FailedHop int
}

// orphan is hold state abandoned by a crash, awaiting lease expiry:
// either one tentative per-link hold, or (route != nil) a committed
// reservation whose confirmation never reached the source.
type orphan struct {
	conn   string
	at     float64
	link   topology.LinkID
	amount float64
	route  *topology.Route
}

// Admitter is the admission seam the plane drives its atomic end-to-end
// test through. It is satisfied by *admission.Controller (the paper's
// Table 2) and by any registered strategy admitter.
type Admitter interface {
	Admit(admission.Test) (admission.Result, error)
}

// Plane runs setup sessions against one admission strategy and its
// shared ledger. All timer work — session deadlines, retransmission
// backoffs, the hold-lease reaper — goes through an injectable Clock,
// so the same state machine runs on the simulator and on wall time.
type Plane struct {
	clk clock.Clock
	Adm Admitter
	// Ledger is the reservation ledger the plane's tentative holds and
	// teardown paths operate on — the same ledger the admitter books
	// into.
	Ledger *admission.Ledger
	opts   Options
	// pending holds tentative bandwidth per link from in-flight
	// sessions, visible to competing forward passes.
	pending map[topology.LinkID]float64
	// Sessions counts sessions started; Commits counts successes.
	Sessions, Commits, Rollbacks int
	// Retransmits counts control messages resent after loss; Reclaimed
	// counts orphans returned to the ledger by the lease reaper.
	Retransmits, Reclaimed int

	live        []*session
	orphans     []orphan
	reaperArmed bool
}

// NewPlane builds a signaling plane over an admission strategy and the
// ledger it books into, running on the simulator's clock.
func NewPlane(sim *des.Simulator, adm Admitter, lg *admission.Ledger, opts Options) *Plane {
	return NewPlaneOn(clock.Sim(sim), adm, lg, opts)
}

// NewPlaneOn is NewPlane with an explicit time source — the live-mode
// constructor (pass a *clock.Wall to run setups on real time).
func NewPlaneOn(clk clock.Clock, adm Admitter, lg *admission.Ledger, opts Options) *Plane {
	return &Plane{
		clk:     clk,
		Adm:     adm,
		Ledger:  lg,
		opts:    opts.withDefaults(),
		pending: make(map[topology.LinkID]float64),
	}
}

// Pending returns the tentative holds on a link (for tests/diagnostics).
func (p *Plane) Pending(id topology.LinkID) float64 { return p.pending[id] }

// PendingTotal returns the sum of all tentative holds — zero once every
// session has drained and every orphan was reclaimed. Summed in sorted
// order so the value is identical run to run (float addition is not
// associative; auditors embed this in reports).
func (p *Plane) PendingTotal() float64 {
	ids := make([]topology.LinkID, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t := 0.0
	for _, id := range ids {
		t += p.pending[id]
	}
	return t
}

// InFlight returns the number of setup sessions still in progress — the
// setup-queue depth the overload controller samples for escalation.
func (p *Plane) InFlight() int {
	n := 0
	for _, s := range p.live {
		if !s.finished {
			n++
		}
	}
	return n
}

// deadlineFor computes the session deadline: the explicit Timeout, or
// the per-hop budget scaled by route length, never below the historical
// 2 s floor.
func (p *Plane) deadlineFor(route topology.Route) float64 {
	if p.opts.Timeout > 0 {
		return p.opts.Timeout
	}
	d := p.opts.PerHopTimeout * float64(len(route.Links))
	if d < minTimeout {
		d = minTimeout
	}
	return d
}

// Setup starts a signaling session for the given admission test and
// invokes done when it completes (success or failure). The callback runs
// at the simulated completion time.
func (p *Plane) Setup(t admission.Test, done func(Result)) {
	p.Sessions++
	start := p.clk.Now()
	s := &session{plane: p, test: t, done: done, start: start}
	deadline := p.clk.After(p.deadlineFor(t.Route), func() {
		if s.finished {
			return
		}
		if s.committed {
			// The reservation committed but the confirmation never made
			// it back: the source gives up, so the destination tears the
			// reservation down (holds were already converted).
			p.Rollbacks++
			eventbus.Pub(p.opts.Bus, eventbus.SignalAbort{Conn: t.ConnID, Reason: "timeout-after-commit", Hop: len(t.Route.Links)})
			p.Ledger.Release(t.ConnID, t.Route)
			s.finish(Result{Err: ErrTimeout, Latency: p.clk.Now() - start})
			return
		}
		s.rollback(len(s.held), "timeout")
		s.finish(Result{Err: ErrTimeout, Latency: p.clk.Now() - start})
	})
	s.deadline = deadline
	p.track(s)
	s.forward(0, 0)
}

// track registers a live session for crash handling, compacting the
// finished ones opportunistically.
func (p *Plane) track(s *session) {
	if len(p.live) >= 16 {
		kept := p.live[:0]
		for _, old := range p.live {
			if !old.finished {
				kept = append(kept, old)
			}
		}
		p.live = kept
	}
	p.live = append(p.live, s)
}

// Crash abandons every in-flight session with state loss: completion
// callbacks never fire, deadlines are disarmed, and tentative holds stay
// in the pending table as orphans. With HoldLease configured the reaper
// reclaims them after the lease; without it they leak — exactly the
// failure mode the fault auditor exists to catch. It returns the number
// of sessions lost.
func (p *Plane) Crash() int {
	n := 0
	for _, s := range p.live {
		if s.finished {
			continue
		}
		n++
		s.finished = true
		if s.deadline != nil {
			s.deadline.Cancel()
		}
		now := p.clk.Now()
		if s.committed {
			route := s.test.Route
			p.orphans = append(p.orphans, orphan{conn: s.test.ConnID, at: now, route: &route})
		}
		for _, id := range s.held {
			p.orphans = append(p.orphans, orphan{
				conn: s.test.ConnID, at: now,
				link: id, amount: s.test.Req.Bandwidth.Min,
			})
		}
		s.held = nil
	}
	p.live = nil
	p.armReaper()
	return n
}

// armReaper starts the periodic lease sweep (idempotent; only after the
// first crash, so fault-free runs schedule nothing extra).
func (p *Plane) armReaper() {
	if p.reaperArmed || p.opts.HoldLease <= 0 {
		return
	}
	p.reaperArmed = true
	p.clk.Every(p.opts.HoldLease, p.reap)
}

// reap reclaims orphans older than the lease.
func (p *Plane) reap() {
	now := p.clk.Now()
	kept := p.orphans[:0]
	for _, o := range p.orphans {
		if now-o.at < p.opts.HoldLease {
			kept = append(kept, o)
			continue
		}
		p.Reclaimed++
		if o.route != nil {
			for _, l := range o.route.Links {
				if ls := p.Ledger.Link(l.ID); ls != nil {
					if a := ls.Alloc(o.conn); a != nil {
						eventbus.Pub(p.opts.Bus, eventbus.HoldReclaimed{
							Conn: o.conn, Link: string(l.ID), Amount: a.Min,
							Reason: "commit-lease",
						})
					}
				}
			}
			p.Ledger.Release(o.conn, *o.route)
			continue
		}
		p.pending[o.link] -= o.amount
		if p.pending[o.link] <= 1e-12 {
			delete(p.pending, o.link)
		}
		eventbus.Pub(p.opts.Bus, eventbus.HoldReclaimed{
			Conn: o.conn, Link: string(o.link), Amount: o.amount,
			Reason: "hold-lease",
		})
	}
	p.orphans = kept
}

type session struct {
	plane     *Plane
	test      admission.Test
	done      func(Result)
	start     float64
	held      []topology.LinkID // links with tentative holds, in order
	finished  bool
	committed bool
	deadline  clock.Timer
}

func (s *session) finish(r Result) {
	if s.finished {
		return
	}
	s.finished = true
	if s.deadline != nil {
		s.deadline.Cancel()
	}
	if s.done != nil {
		s.done(r)
	}
}

// hopDelay is the one-way control latency across one link.
func (s *session) hopDelay(l *topology.Link) float64 {
	return l.PropDelay + s.plane.opts.HopProcessing
}

// retry schedules a retransmission of a lost message with exponential
// backoff, or fails the session when the budget is spent. resend runs
// with the next attempt number.
func (s *session) retry(hop, attempt int, resend func(attempt int)) bool {
	p := s.plane
	if attempt >= p.opts.MaxRetries {
		return false
	}
	p.Retransmits++
	eventbus.Pub(p.opts.Bus, eventbus.ControlRetransmit{
		Proto: "signal", Conn: s.test.ConnID, Hop: hop, Attempt: attempt + 1,
	})
	backoff := p.opts.RetryBase * float64(int(1)<<attempt)
	p.clk.PostAfter(backoff, func() { resend(attempt + 1) })
	return true
}

// forward advances the setup packet to hop i (0-based); it performs the
// bandwidth availability check against committed + pending holds, places
// this session's tentative hold, and proceeds. attempt counts
// retransmissions of this hop's message.
func (s *session) forward(i, attempt int) {
	if s.finished {
		return
	}
	if i == len(s.test.Route.Links) {
		s.atDestination()
		return
	}
	link := s.test.Route.Links[i]
	delay := s.hopDelay(link)
	if d := s.plane.opts.Deliver; d != nil {
		drop, extra := d(s.test.ConnID, i)
		if drop {
			if !s.retry(i, attempt, func(a int) { s.forward(i, a) }) {
				s.rollback(i, "lost")
				s.finish(Result{Err: fmt.Errorf("%w at hop %d", ErrLost, i+1), FailedHop: i + 1, Latency: s.plane.clk.Now() - s.start})
			}
			return
		}
		delay += extra
	}
	s.plane.clk.PostAfter(delay, func() {
		if s.finished {
			return
		}
		ls := s.plane.Ledger.Link(link.ID)
		if ls == nil {
			s.rollback(i, "unknown-link")
			s.finish(Result{Err: fmt.Errorf("%w %d: unknown link %s", ErrHopRejected, i+1, link.ID), FailedHop: i + 1, Latency: s.plane.clk.Now() - s.start})
			return
		}
		if ls.Down {
			s.rollback(i, "link-down")
			s.finish(Result{Err: fmt.Errorf("%w: %s", ErrLinkDown, link.ID), FailedHop: i + 1, Latency: s.plane.clk.Now() - s.start})
			return
		}
		need := s.test.Req.Bandwidth.Min
		avail := ls.Capacity - ls.AdvanceReserved - ls.Pool() - ls.SumMin() - s.plane.pending[link.ID]
		if need > avail {
			s.rollback(i, "hop-rejected")
			s.finish(Result{Err: fmt.Errorf("%w %d (%s)", ErrHopRejected, i+1, link.ID), FailedHop: i + 1, Latency: s.plane.clk.Now() - s.start})
			return
		}
		s.plane.pending[link.ID] += need
		s.held = append(s.held, link.ID)
		eventbus.Pub(s.plane.opts.Bus, eventbus.SignalHold{Conn: s.test.ConnID, Link: string(link.ID)})
		s.forward(i+1, 0)
	})
}

// atDestination runs the atomic end-to-end admission (the Table 2
// destination tests plus the commit) and starts the reverse pass.
func (s *session) atDestination() {
	// Release our own tentative holds first: the atomic Admit must see
	// the ledger without them (they exist to serialize against
	// *concurrent* sessions, which still hold theirs).
	s.releaseHolds()
	res, err := s.plane.Adm.Admit(s.test)
	if err != nil {
		s.finish(Result{Err: err, Latency: s.plane.clk.Now() - s.start})
		return
	}
	if !res.Admitted {
		s.plane.Rollbacks++
		eventbus.Pub(s.plane.opts.Bus, eventbus.SignalAbort{
			Conn: s.test.ConnID, Reason: "end-to-end:" + res.Reason,
			Hop: len(s.test.Route.Links),
		})
		s.finish(Result{
			Admission: res,
			Err:       fmt.Errorf("%w: %s at %s", ErrEndToEnd, res.Reason, res.FailedLink),
			Latency:   s.plane.clk.Now() - s.start,
		})
		return
	}
	// Reverse pass back to the source: the reservation is committed; the
	// session completes when the confirmation reaches the source.
	s.committed = true
	s.sendConfirm(res, 0)
}

// sendConfirm carries the commit confirmation back to the source across
// the reverse hops (indices n..2n-1 for the delivery hook). A lost
// confirmation is retransmitted by the destination; when the budget runs
// out the destination tears the committed reservation down so nothing
// leaks.
func (s *session) sendConfirm(res admission.Result, attempt int) {
	if s.finished {
		return
	}
	n := len(s.test.Route.Links)
	total := 0.0
	for _, l := range s.test.Route.Links {
		total += s.hopDelay(l)
	}
	if d := s.plane.opts.Deliver; d != nil {
		for j := 0; j < n; j++ {
			drop, extra := d(s.test.ConnID, n+j)
			if drop {
				if !s.retry(n+j, attempt, func(a int) { s.sendConfirm(res, a) }) {
					s.plane.Rollbacks++
					eventbus.Pub(s.plane.opts.Bus, eventbus.SignalAbort{Conn: s.test.ConnID, Reason: "commit-lost", Hop: n + j})
					s.plane.Ledger.Release(s.test.ConnID, s.test.Route)
					s.finish(Result{Err: fmt.Errorf("%w: commit confirmation", ErrLost), Latency: s.plane.clk.Now() - s.start})
				}
				return
			}
			total += extra
		}
	}
	s.plane.clk.PostAfter(total, func() {
		if s.finished {
			return
		}
		s.plane.Commits++
		latency := s.plane.clk.Now() - s.start
		eventbus.Pub(s.plane.opts.Bus, eventbus.SignalCommit{Conn: s.test.ConnID, Latency: latency})
		s.finish(Result{Admission: res, Latency: latency})
	})
}

// releaseHolds removes this session's tentative holds.
func (s *session) releaseHolds() {
	for _, id := range s.held {
		s.plane.pending[id] -= s.test.Req.Bandwidth.Min
		if s.plane.pending[id] <= 1e-12 {
			delete(s.plane.pending, id)
		}
	}
	s.held = nil
}

// rollback releases holds after a failure at hop i; the release messages
// travel back toward the source (latency is charged to the session's
// reported Latency implicitly, since holds release immediately in state
// but the session has already failed).
func (s *session) rollback(i int, reason string) {
	s.plane.Rollbacks++
	eventbus.Pub(s.plane.opts.Bus, eventbus.SignalAbort{Conn: s.test.ConnID, Reason: reason, Hop: i})
	s.releaseHolds()
}
