package signal

import (
	"errors"
	"fmt"
	"testing"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

func rig(t *testing.T) (*des.Simulator, *Plane, topology.Route) {
	t.Helper()
	b := topology.NewBackbone()
	for _, id := range []topology.NodeID{"h", "s1", "s2", "air"} {
		b.MustAddNode(topology.Node{ID: id})
	}
	b.MustAddDuplex(topology.Link{From: "h", To: "s1", Capacity: 10e6, PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "s1", To: "s2", Capacity: 10e6, PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "s2", To: "air", Capacity: 1.6e6, Wireless: true})
	route, err := b.ShortestPath("h", "air")
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	lg := admission.NewLedger(b)
	return sim, NewPlane(sim, admission.NewController(lg), lg, Options{}), route
}

func req(min float64) qos.Request {
	return qos.Request{
		Bandwidth: qos.Bounds{Min: min, Max: min * 2},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: qos.TrafficSpec{Sigma: min / 4, Rho: min},
	}
}

func TestSetupSucceedsWithRoundTripLatency(t *testing.T) {
	sim, p, route := rig(t)
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if got.Err != nil {
		t.Fatalf("setup failed: %v", got.Err)
	}
	if !got.Admission.Admitted {
		t.Fatal("not admitted")
	}
	// Round trip = 2 × Σ (prop + processing): two wired hops at 1.2 ms
	// and the wireless hop at 0.2 ms (no propagation delay configured).
	want := 2 * (2*(1e-3+200e-6) + 200e-6)
	if diff := got.Latency - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("latency = %v, want %v", got.Latency, want)
	}
	if p.Commits != 1 || p.Sessions != 1 {
		t.Fatalf("counters: %d sessions %d commits", p.Sessions, p.Commits)
	}
	// No stale pending holds.
	for _, l := range route.Links {
		if p.Pending(l.ID) != 0 {
			t.Fatalf("stale pending on %s", l.ID)
		}
	}
}

func TestConcurrentSetupsRaceForLastSlice(t *testing.T) {
	sim, p, route := rig(t)
	// Wireless hop 1.6 Mb/s: two concurrent 1 Mb/s setups cannot both
	// win, even though each alone would pass the atomic test at launch
	// time.
	results := map[string]Result{}
	for _, id := range []string{"a", "b"} {
		id := id
		p.Setup(admission.Test{ConnID: id, Req: req(1e6), Route: route, Mobility: qos.Mobile},
			func(r Result) { results[id] = r })
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for id, r := range results {
		if r.Err == nil {
			okCount++
		} else if !errors.Is(r.Err, ErrHopRejected) {
			t.Fatalf("%s failed with %v, want hop rejection", id, r.Err)
		}
	}
	if okCount != 1 {
		t.Fatalf("winners = %d, want exactly 1", okCount)
	}
	for _, l := range route.Links {
		if p.Pending(l.ID) != 0 {
			t.Fatalf("stale pending on %s", l.ID)
		}
	}
}

func TestSequentialSetupsFillTheLink(t *testing.T) {
	sim, p, route := rig(t)
	ok := 0
	for i := 0; i < 30; i++ {
		i := i
		// Stagger so each completes before the next starts.
		sim.At(float64(i)*0.1, func() {
			p.Setup(admission.Test{ConnID: fmt.Sprintf("c%d", i), Req: req(100e3), Route: route, Mobility: qos.Mobile},
				func(r Result) {
					if r.Err == nil {
						ok++
					}
				})
		})
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// 1.6 Mb/s / 100 kb/s = 16 connections fit.
	if ok != 16 {
		t.Fatalf("admitted %d, want 16", ok)
	}
}

func TestEndToEndRejectionRollsBack(t *testing.T) {
	sim, p, route := rig(t)
	r := req(64e3)
	r.Delay = 1e-4 // impossible bound -> destination test fails
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: r, Route: route, Mobility: qos.Mobile}, func(res Result) { got = res })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrEndToEnd) {
		t.Fatalf("err = %v, want end-to-end failure", got.Err)
	}
	for _, l := range route.Links {
		if p.Pending(l.ID) != 0 {
			t.Fatalf("stale pending on %s", l.ID)
		}
		if p.Ledger.Link(l.ID).Alloc("c1") != nil {
			t.Fatalf("allocation committed despite rejection")
		}
	}
	if p.Rollbacks == 0 {
		t.Fatal("no rollback counted")
	}
}

func TestForwardPassSeesCommittedLoad(t *testing.T) {
	sim, p, route := rig(t)
	// Pre-commit 1.55 Mb/s directly through the controller.
	res, err := p.Adm.Admit(admission.Test{ConnID: "big", Req: req(1.55e6), Route: route, Mobility: qos.Mobile})
	if err != nil || !res.Admitted {
		t.Fatalf("precommit failed: %v %v", err, res.Reason)
	}
	var got Result
	p.Setup(admission.Test{ConnID: "late", Req: req(100e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrHopRejected) {
		t.Fatalf("err = %v, want hop rejection", got.Err)
	}
	if got.FailedHop != 3 {
		t.Fatalf("failed hop = %d, want the wireless hop (3)", got.FailedHop)
	}
}

func TestTimeoutAbortsSession(t *testing.T) {
	sim, p, route := rig(t)
	// A plane with an absurdly short timeout: the forward pass cannot
	// complete in time.
	p.opts.Timeout = 1e-4
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", got.Err)
	}
	for _, l := range route.Links {
		if p.Pending(l.ID) != 0 {
			t.Fatalf("stale pending after timeout on %s", l.ID)
		}
	}
}

func TestTimeoutScalesWithHopCount(t *testing.T) {
	_, p, route := rig(t)
	// Default per-hop budget (0.5 s) over 3 hops stays at the 2 s floor.
	if d := p.deadlineFor(route); d != 2 {
		t.Fatalf("3-hop deadline = %v, want floor 2", d)
	}
	// A larger per-hop budget scales past the floor.
	p.opts.PerHopTimeout = 1.5
	if d := p.deadlineFor(route); d != 4.5 {
		t.Fatalf("scaled deadline = %v, want 4.5", d)
	}
	// An explicit timeout always wins.
	p.opts.Timeout = 7
	if d := p.deadlineFor(route); d != 7 {
		t.Fatalf("explicit deadline = %v, want 7", d)
	}
}

func TestLostForwardMessageIsRetransmitted(t *testing.T) {
	sim, p, route := rig(t)
	dropped := false
	p.opts.Deliver = func(conn string, hop int) (bool, float64) {
		if hop == 1 && !dropped {
			dropped = true
			return true, 0
		}
		return false, 0
	}
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if got.Err != nil {
		t.Fatalf("setup failed despite retransmission: %v", got.Err)
	}
	if p.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", p.Retransmits)
	}
	// One backoff period (50 ms) dominates the clean round trip.
	if got.Latency < 0.05 {
		t.Fatalf("latency %v does not include the retransmission backoff", got.Latency)
	}
	if p.PendingTotal() != 0 {
		t.Fatal("stale pending holds after recovery")
	}
}

func TestRetryBudgetExhaustionAbortsSetup(t *testing.T) {
	sim, p, route := rig(t)
	drops := 0
	p.opts.Deliver = func(conn string, hop int) (bool, float64) {
		if hop == 1 {
			drops++
			return true, 0
		}
		return false, 0
	}
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", got.Err)
	}
	// Original + MaxRetries (3) transmissions, all dropped.
	if drops != 4 || p.Retransmits != 3 {
		t.Fatalf("drops = %d retransmits = %d, want 4 and 3", drops, p.Retransmits)
	}
	if got.FailedHop != 2 {
		t.Fatalf("failed hop = %d, want 2", got.FailedHop)
	}
	if p.PendingTotal() != 0 {
		t.Fatal("tentative holds leaked after abort")
	}
}

func TestLostCommitConfirmationReleasesReservation(t *testing.T) {
	sim, p, route := rig(t)
	p.opts.Deliver = func(conn string, hop int) (bool, float64) {
		return hop >= len(route.Links), 0 // lose every reverse-pass message
	}
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", got.Err)
	}
	// The reservation committed at the destination must have been torn
	// down when the confirmation could not be delivered.
	for _, l := range route.Links {
		if p.Ledger.Link(l.ID).Alloc("c1") != nil {
			t.Fatalf("reservation leaked on %s", l.ID)
		}
	}
	if p.PendingTotal() != 0 {
		t.Fatal("tentative holds leaked")
	}
}

func TestCrashOrphansHoldsAndLeaseReclaims(t *testing.T) {
	sim, p, route := rig(t)
	p.opts.HoldLease = 0.5
	called := false
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(Result) { called = true })
	// Crash mid-forward: hops complete at 1.2 ms and 2.4 ms, so at 2.5 ms
	// the session holds tentative bandwidth on the first two links.
	var lost int
	sim.At(2.5e-3, func() { lost = p.Crash() })
	if err := sim.RunUntil(0.01); err != nil {
		t.Fatal(err)
	}
	if lost != 1 {
		t.Fatalf("Crash() = %d sessions, want 1", lost)
	}
	if called {
		t.Fatal("completion callback ran despite crash")
	}
	if got, want := p.PendingTotal(), 2*64e3; got != want {
		t.Fatalf("orphaned holds = %v, want %v", got, want)
	}
	// The lease reaper reclaims the orphans once they age past the lease.
	if err := sim.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if p.PendingTotal() != 0 {
		t.Fatalf("holds not reclaimed: %v", p.PendingTotal())
	}
	if p.Reclaimed != 2 {
		t.Fatalf("Reclaimed = %d, want 2", p.Reclaimed)
	}
}

func TestCrashWithoutLeaseLeaksForever(t *testing.T) {
	sim, p, route := rig(t)
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(Result) {})
	sim.At(2.5e-3, func() { p.Crash() })
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if p.PendingTotal() == 0 {
		t.Fatal("holds should leak without a lease — the auditor's job is to catch this")
	}
}

func TestCrashAfterCommitReclaimsViaLease(t *testing.T) {
	sim, p, route := rig(t)
	p.opts.HoldLease = 0.5
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(Result) {})
	// The destination commits at 2.6 ms; the confirmation lands at 5.2 ms.
	// Crash in between: the committed reservation is orphaned.
	sim.At(4e-3, func() { p.Crash() })
	if err := sim.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	for _, l := range route.Links {
		if p.Ledger.Link(l.ID).Alloc("c1") != nil {
			t.Fatalf("committed reservation not reclaimed on %s", l.ID)
		}
	}
	if p.Reclaimed != 1 {
		t.Fatalf("Reclaimed = %d, want 1 (the route orphan)", p.Reclaimed)
	}
}

func TestDownLinkRejectsForwardPass(t *testing.T) {
	sim, p, route := rig(t)
	p.Ledger.Link(route.Links[1].ID).Down = true
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}, func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", got.Err)
	}
	if got.FailedHop != 2 {
		t.Fatalf("failed hop = %d, want 2", got.FailedHop)
	}
	if p.PendingTotal() != 0 {
		t.Fatal("holds leaked after link-down rejection")
	}
}
