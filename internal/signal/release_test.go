package signal

import (
	"errors"
	"testing"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

// releaseRig is rig plus a bus wired to count every committed-reservation
// release the plane performs (the aborts that call Ledger.Release on a
// committed route).
func releaseRig(t *testing.T, opts Options) (*des.Simulator, *Plane, topology.Route, *int) {
	t.Helper()
	b := topology.NewBackbone()
	for _, id := range []topology.NodeID{"h", "s1", "air"} {
		b.MustAddNode(topology.Node{ID: id})
	}
	b.MustAddDuplex(topology.Link{From: "h", To: "s1", Capacity: 10e6, PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "s1", To: "air", Capacity: 1.6e6, Wireless: true})
	route, err := b.ShortestPath("h", "air")
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	bus := eventbus.New(sim)
	releases := 0
	bus.Subscribe(func(r eventbus.Record) {
		ev := r.Event.(eventbus.SignalAbort)
		if ev.Reason == "commit-lost" || ev.Reason == "timeout-after-commit" {
			releases++
		}
	}, eventbus.KindSignalAbort)
	opts.Bus = bus
	lg := admission.NewLedger(b)
	return sim, NewPlane(sim, admission.NewController(lg), lg, opts), route, &releases
}

// TestCommitLossReleasesExactlyOnce: the commit confirmation is lost for
// good, so the destination tears the committed reservation down — and
// the session deadline, still armed at that point, must NOT release it a
// second time. A reservation admitted under the same ID afterwards has
// to survive, which is what double release would silently destroy.
func TestCommitLossReleasesExactlyOnce(t *testing.T) {
	n := 2 // route hops
	sim, p, route, releases := releaseRig(t, Options{
		MaxRetries: 1,
		RetryBase:  0.01,
		Timeout:    5,
		Deliver: func(conn string, hop int) (bool, float64) {
			return hop >= n, 0 // forward passes, every confirmation lost
		},
	})
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile},
		func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", got.Err)
	}
	if *releases != 1 {
		t.Fatalf("committed reservation released %d times, want exactly 1", *releases)
	}
	if a := p.Ledger.Link(route.Links[0].ID).Alloc("c1"); a != nil {
		t.Fatal("reservation survived the commit-loss teardown")
	}
	// Re-admit under the same ID, then run past the original deadline: a
	// stale timer releasing again would destroy this reservation.
	if res, err := p.Adm.Admit(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}); err != nil || !res.Admitted {
		t.Fatalf("re-admission failed: %+v %v", res, err)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if *releases != 1 {
		t.Fatalf("stale release fired after the session finished (%d total)", *releases)
	}
	if a := p.Ledger.Link(route.Links[0].ID).Alloc("c1"); a == nil {
		t.Fatal("re-admitted reservation was destroyed by a stale release")
	}
}

// TestPostCommitTimeoutReleasesExactlyOnce: the confirmation is merely
// delayed past the session deadline. The timeout tears the committed
// reservation down once; the late confirmation arriving afterwards must
// neither complete the session nor touch the ledger again.
func TestPostCommitTimeoutReleasesExactlyOnce(t *testing.T) {
	n := 2
	sim, p, route, releases := releaseRig(t, Options{
		Timeout: 0.5,
		Deliver: func(conn string, hop int) (bool, float64) {
			if hop >= n {
				return false, 2.0 // delivered, but far past the deadline
			}
			return false, 0
		},
	})
	var got Result
	p.Setup(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile},
		func(r Result) { got = r })
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if *releases != 1 {
		t.Fatalf("committed reservation released %d times, want exactly 1", *releases)
	}
	if res, err := p.Adm.Admit(admission.Test{ConnID: "c1", Req: req(64e3), Route: route, Mobility: qos.Mobile}); err != nil || !res.Admitted {
		t.Fatalf("re-admission failed: %+v %v", res, err)
	}
	// The delayed confirmation lands around t≈4; it must be inert.
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if p.Commits != 0 {
		t.Fatalf("late confirmation completed a timed-out session (%d commits)", p.Commits)
	}
	if *releases != 1 {
		t.Fatalf("late confirmation caused another release (%d total)", *releases)
	}
	if a := p.Ledger.Link(route.Links[0].ID).Alloc("c1"); a == nil {
		t.Fatal("re-admitted reservation was destroyed by the late confirmation path")
	}
}
