package maxmin

import (
	"testing"

	"armnet/internal/des"
	"armnet/internal/randx"
)

func benchProblem(nLinks, nConns int) Problem {
	rng := randx.New(1)
	return randomProblem(rng, nLinks, nConns)
}

func BenchmarkWaterFillSmall(b *testing.B) {
	p := benchProblem(4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WaterFill(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaterFillLarge(b *testing.B) {
	rng := randx.New(2)
	p := Problem{Capacity: map[string]float64{}}
	links := make([]string, 32)
	for i := range links {
		links[i] = string(rune('a'+i/26)) + string(rune('a'+i%26))
		p.Capacity[links[i]] = 5 + rng.Float64()*20
	}
	for i := 0; i < 200; i++ {
		pathLen := 1 + rng.Intn(6)
		perm := rng.Perm(32)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		p.Conns = append(p.Conns, Conn{ID: string(rune('A'+i%26)) + string(rune('0'+i/26)), Path: path, Demand: Inf})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WaterFill(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncSolver(b *testing.B) {
	p := benchProblem(4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SyncSolver{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvertisedRate(b *testing.B) {
	recorded := make([]float64, 64)
	rng := randx.New(3)
	for i := range recorded {
		recorded[i] = rng.Float64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdvertisedRate(100, recorded)
	}
}

func BenchmarkProtocolSession(b *testing.B) {
	p := benchProblem(3, 6)
	for i := 0; i < b.N; i++ {
		sim := des.New()
		pr := NewProtocol(sim, ProtocolOptions{Refined: true})
		for _, l := range p.sortedLinks() {
			_ = pr.AddLink(l, p.Capacity[l])
		}
		for _, c := range p.Conns {
			_ = pr.AddConn(c)
		}
		pr.KickAll()
		if err := sim.RunUntil(500); err != nil {
			b.Fatal(err)
		}
	}
}
