package maxmin

import (
	"fmt"
	"testing"

	"armnet/internal/des"
	"armnet/internal/randx"
)

// fuzzProblem generates a random feasible allocation instance: every link
// capacity is positive, every path references registered links, and
// demands are either finite or unbounded — the same instance family the
// Theorem 1 study samples.
func fuzzProblem(rng *randx.Rand, nLinks, nConns int) Problem {
	p := Problem{Capacity: map[string]float64{}}
	links := make([]string, nLinks)
	for i := range links {
		links[i] = fmt.Sprintf("l%d", i)
		p.Capacity[links[i]] = 0.5 + rng.Float64()*25
	}
	for i := 0; i < nConns; i++ {
		pathLen := 1 + rng.Intn(nLinks)
		perm := rng.Perm(nLinks)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		demand := Inf
		if rng.Bernoulli(0.4) {
			demand = rng.Float64() * 12
		}
		p.Conns = append(p.Conns, Conn{ID: fmt.Sprintf("c%d", i), Path: path, Demand: demand})
	}
	return p
}

// FuzzMaxminConvergence is the empirical Theorem 1 check as a native fuzz
// target: for random feasible instances the event-driven ADVERTISE/UPDATE
// protocol must quiesce in finitely many steps and settle on exactly the
// centralized water-filling allocation, which in turn must satisfy the
// maxmin optimality oracle. The synchronous round-abstracted solver is
// cross-checked against the paper's four-round-trip bound on the same
// instance.
func FuzzMaxminConvergence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), true, true)
	f.Add(int64(2), uint8(1), uint8(1), false, false)
	f.Add(int64(3), uint8(6), uint8(8), true, false)
	f.Add(int64(4), uint8(4), uint8(6), false, true)
	f.Add(int64(-77), uint8(2), uint8(5), true, true)
	f.Add(int64(123456789), uint8(5), uint8(7), false, false)

	f.Fuzz(func(t *testing.T, seed int64, nl, nc uint8, refined, perturb bool) {
		nLinks := 1 + int(nl%6)
		nConns := 1 + int(nc%8)
		rng := randx.New(seed)
		p := fuzzProblem(rng, nLinks, nConns)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid instance: %v", err)
		}

		simulator := des.New()
		pr := NewProtocol(simulator, ProtocolOptions{Refined: refined})
		for _, l := range p.sortedLinks() {
			if err := pr.AddLink(l, p.Capacity[l]); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range p.Conns {
			if err := pr.AddConn(c); err != nil {
				t.Fatal(err)
			}
		}
		pr.KickAll()
		// Theorem 1 promises convergence in finitely many steps; a horizon
		// far beyond any observed settling time turns non-termination into
		// a test failure instead of a hang.
		const horizon = 1e6
		if err := simulator.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		if n := simulator.Pending(); n != 0 {
			t.Fatalf("protocol did not quiesce: %d events still pending at horizon", n)
		}
		if perturb {
			links := p.sortedLinks()
			pick := links[rng.Intn(len(links))]
			newCap := p.Capacity[pick] * (0.25 + rng.Float64()*1.5)
			p.Capacity[pick] = newCap
			if _, err := pr.TriggerCapacityChange(pick, newCap); err != nil {
				t.Fatal(err)
			}
			if err := simulator.RunUntil(2 * horizon); err != nil {
				t.Fatal(err)
			}
			if n := simulator.Pending(); n != 0 {
				t.Fatalf("protocol did not re-quiesce after perturbation: %d events pending", n)
			}
		}

		ref, err := WaterFill(pr.Problem())
		if err != nil {
			t.Fatal(err)
		}
		rates := pr.Rates()
		if diff := ref.MaxDiff(rates); diff > 1e-6 {
			t.Fatalf("event-driven rates deviate from water-filling by %v\nprotocol: %v\noracle:   %v\nproblem:  %+v",
				diff, rates, ref, pr.Problem())
		}
		// The settled allocation must itself satisfy the maxmin optimality
		// definition, not merely match the reference implementation.
		if err := pr.Problem().IsMaxMin(rates, 1e-6); err != nil {
			t.Fatalf("settled rates fail the maxmin oracle: %v", err)
		}

		// Step bound: the synchronous skeleton of the protocol must reach
		// the same fixpoint within its default bound of 4·conns+8 rounds
		// (the paper's four-round-trip argument).
		sres, err := SyncSolver{}.Solve(pr.Problem())
		if err != nil {
			t.Fatal(err)
		}
		if !sres.Converged {
			t.Fatalf("sync solver exceeded the step bound (%d rounds)", sres.Rounds)
		}
		if diff := ref.MaxDiff(sres.Allocation); diff > 1e-6 {
			t.Fatalf("sync solver fixpoint deviates from water-filling by %v", diff)
		}
	})
}
