package maxmin

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/des"
	"armnet/internal/randx"
)

// buildProtocol loads a Problem into a fresh Protocol.
func buildProtocol(t testing.TB, sim *des.Simulator, p Problem, opts ProtocolOptions) *Protocol {
	t.Helper()
	pr := NewProtocol(sim, opts)
	for _, l := range p.sortedLinks() {
		if err := pr.AddLink(l, p.Capacity[l]); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p.Conns {
		if err := pr.AddConn(c); err != nil {
			t.Fatal(err)
		}
	}
	return pr
}

func tandemProblem() Problem {
	return Problem{
		Capacity: map[string]float64{"L1": 10, "L2": 4, "L3": 8},
		Conns: []Conn{
			{ID: "long", Path: []string{"L1", "L2", "L3"}, Demand: Inf},
			{ID: "x", Path: []string{"L1"}, Demand: Inf},
			{ID: "y", Path: []string{"L2"}, Demand: Inf},
			{ID: "z", Path: []string{"L3"}, Demand: Inf},
		},
	}
}

func TestProtocolConvergesToMaxMin(t *testing.T) {
	p := tandemProblem()
	ref, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true})
	pr.KickAll()
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if sim.Pending() > 0 {
		t.Fatalf("protocol did not quiesce: %d pending events", sim.Pending())
	}
	got := pr.Rates()
	if d := ref.MaxDiff(got); d > 1e-6 {
		t.Fatalf("diff %v: protocol %v vs ref %v", d, got, ref)
	}
	if err := p.IsMaxMin(got, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolCapacityDecreaseReconverges(t *testing.T) {
	p := tandemProblem()
	sim := des.New()
	pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true})
	pr.KickAll()
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	// Shrink L1 from 10 to 5: x should drop from 8 toward 3.
	if _, err := pr.TriggerCapacityChange("L1", 5); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	p2 := pr.Problem()
	ref, err := WaterFill(p2)
	if err != nil {
		t.Fatal(err)
	}
	got := pr.Rates()
	if d := ref.MaxDiff(got); d > 1e-6 {
		t.Fatalf("after shrink diff %v: %v vs %v", d, got, ref)
	}
}

func TestProtocolCapacityIncreaseRespectsDelta(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L": 10},
		Conns: []Conn{
			{ID: "a", Path: []string{"L"}, Demand: Inf},
			{ID: "b", Path: []string{"L"}, Demand: Inf},
		},
	}
	sim := des.New()
	pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true, Delta: 1.0})
	pr.KickAll()
	if err := sim.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	// Increase below delta: no sessions.
	started, err := pr.TriggerCapacityChange("L", 10.5)
	if err != nil {
		t.Fatal(err)
	}
	if started != 0 {
		t.Fatalf("sub-delta increase started %d sessions", started)
	}
	// Increase above delta: sessions for the bottleneck set.
	started, err = pr.TriggerCapacityChange("L", 14)
	if err != nil {
		t.Fatal(err)
	}
	if started == 0 {
		t.Fatal("above-delta increase started no sessions")
	}
	if err := sim.RunUntil(90); err != nil {
		t.Fatal(err)
	}
	got := pr.Rates()
	for _, id := range []string{"a", "b"} {
		if math.Abs(got[id]-7) > 1e-6 {
			t.Fatalf("rate[%s] = %v, want 7", id, got[id])
		}
	}
}

func TestProtocolRemoveConnFreesShare(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L": 12},
		Conns: []Conn{
			{ID: "a", Path: []string{"L"}, Demand: Inf},
			{ID: "b", Path: []string{"L"}, Demand: Inf},
			{ID: "c", Path: []string{"L"}, Demand: Inf},
		},
	}
	sim := des.New()
	pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true})
	pr.KickAll()
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	pr.RemoveConn("c")
	pr.KickAll()
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	got := pr.Rates()
	if len(got) != 2 {
		t.Fatalf("rates = %v", got)
	}
	for _, id := range []string{"a", "b"} {
		if math.Abs(got[id]-6) > 1e-6 {
			t.Fatalf("rate[%s] = %v, want 6", id, got[id])
		}
	}
}

func TestRefinementReducesMessages(t *testing.T) {
	// A star of connections sharing one roomy hub link, each bottlenecked
	// at its own leaf; a capacity change on one leaf should not flood
	// everyone under the refinement (with hub capacity 20 the hub share
	// would tie the leaves and every connection would legitimately sit
	// in M(hub), so the hub must be clearly uncongested here).
	p := Problem{
		Capacity: map[string]float64{"hub": 40, "leaf0": 5, "leaf1": 5, "leaf2": 5, "leaf3": 5},
		Conns: []Conn{
			{ID: "c0", Path: []string{"leaf0", "hub"}, Demand: Inf},
			{ID: "c1", Path: []string{"leaf1", "hub"}, Demand: Inf},
			{ID: "c2", Path: []string{"leaf2", "hub"}, Demand: Inf},
			{ID: "c3", Path: []string{"leaf3", "hub"}, Demand: Inf},
		},
	}
	run := func(refined bool) int {
		sim := des.New()
		pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: refined})
		pr.KickAll()
		if err := sim.RunUntil(100); err != nil {
			t.Fatal(err)
		}
		before := pr.Messages
		if _, err := pr.TriggerCapacityChange("leaf0", 4); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunUntil(300); err != nil {
			t.Fatal(err)
		}
		// Sanity: still maxmin.
		ref, err := WaterFill(pr.Problem())
		if err != nil {
			t.Fatal(err)
		}
		if d := ref.MaxDiff(pr.Rates()); d > 1e-6 {
			t.Fatalf("refined=%v diverged by %v: %v vs %v", refined, d, pr.Rates(), ref)
		}
		return pr.Messages - before
	}
	naive := run(false)
	refined := run(true)
	if refined >= naive {
		t.Fatalf("refinement did not reduce messages: refined=%d naive=%d", refined, naive)
	}
}

func TestProtocolValidation(t *testing.T) {
	sim := des.New()
	pr := NewProtocol(sim, ProtocolOptions{})
	if err := pr.AddLink("l", 5); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddLink("l", 5); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := pr.AddLink("neg", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := pr.AddConn(Conn{ID: "c", Path: []string{"ghost"}}); err == nil {
		t.Fatal("unknown link in path accepted")
	}
	if err := pr.AddConn(Conn{ID: "c", Path: nil}); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := pr.AddConn(Conn{ID: "c", Path: []string{"l"}, Demand: Inf}); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddConn(Conn{ID: "c", Path: []string{"l"}, Demand: Inf}); err == nil {
		t.Fatal("duplicate conn accepted")
	}
	if _, err := pr.TriggerCapacityChange("ghost", 1); err == nil {
		t.Fatal("trigger on unknown link accepted")
	}
	if _, err := pr.TriggerCapacityChange("l", -1); err == nil {
		t.Fatal("trigger with negative capacity accepted")
	}
	// Removing an unknown connection is a no-op.
	pr.RemoveConn("nobody")
}

// Property (Theorem 1): on random instances the event-driven protocol
// quiesces and its committed rates satisfy the maxmin criterion.
func TestQuickProtocolConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		p := randomProblem(rng, 1+rng.Intn(3), 1+rng.Intn(5))
		sim := des.New()
		pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true})
		pr.KickAll()
		if err := sim.RunUntil(500); err != nil {
			return false
		}
		if sim.Pending() > 0 {
			t.Logf("seed %d: %d events still pending", seed, sim.Pending())
			return false
		}
		ref, err := WaterFill(p)
		if err != nil {
			return false
		}
		got := pr.Rates()
		if d := ref.MaxDiff(got); d > 1e-6 {
			t.Logf("seed %d: diff %v\nproto %v\nref   %v", seed, d, got, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolSurvivesChurn(t *testing.T) {
	// Add and remove connections while adaptation sessions are in
	// flight; after the churn stops, the protocol must still converge to
	// the maxmin allocation of whatever survived.
	rng := randx.New(21)
	sim := des.New()
	pr := NewProtocol(sim, ProtocolOptions{Refined: true})
	links := []string{"l0", "l1", "l2"}
	for _, l := range links {
		if err := pr.AddLink(l, 5+rng.Float64()*15); err != nil {
			t.Fatal(err)
		}
	}
	alive := map[string]bool{}
	next := 0
	addConn := func() {
		id := fmt.Sprintf("c%d", next)
		next++
		pathLen := 1 + rng.Intn(3)
		perm := rng.Perm(3)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		demand := Inf
		if rng.Bernoulli(0.3) {
			demand = rng.Float64() * 8
		}
		if err := pr.AddConn(Conn{ID: id, Path: path, Demand: demand}); err != nil {
			t.Fatal(err)
		}
		alive[id] = true
		pr.Kick(id)
	}
	removeRandom := func() {
		for id := range alive {
			pr.RemoveConn(id)
			delete(alive, id)
			return
		}
	}
	for i := 0; i < 5; i++ {
		addConn()
	}
	// Churn storm: every 50 ms add or remove, mid-session.
	for i := 0; i < 40; i++ {
		at := float64(i) * 0.05
		sim.At(at, func() {
			if rng.Bernoulli(0.5) {
				addConn()
			} else {
				removeRandom()
			}
		})
	}
	// Let the storm pass, then re-kick survivors and settle.
	sim.At(3, func() { pr.KickAll() })
	if err := sim.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if sim.Pending() != 0 {
		t.Fatalf("%d events still pending after churn", sim.Pending())
	}
	p := pr.Problem()
	if len(p.Conns) == 0 {
		t.Skip("churn removed everything")
	}
	ref, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxDiff(pr.Rates()); d > 1e-6 {
		t.Fatalf("post-churn diff %v: %v vs %v", d, pr.Rates(), ref)
	}
}

func TestProtocolStaleBottleneckRegression(t *testing.T) {
	// Regression for a convergence bug caught by randomized testing
	// (quick seed 3289174893179753661): c2 settles at a stale rate while
	// c1/c3/c4 still hold inflated rates on the shared link l2; when they
	// later commit lower, c2 was neither in M(l2) nor above the
	// advertised rate, so the upgrade cascade skipped it and it converged
	// below its maxmin share. The fix re-advertises connections drawing
	// below the advertised rate as well.
	p := Problem{
		Capacity: map[string]float64{
			"l0": 3.8811227816673837,
			"l1": 4.750707888567126,
			"l2": 11.59232024500574,
		},
		Conns: []Conn{
			{ID: "c0", Path: []string{"l0"}, Demand: 9.254032920565056},
			{ID: "c1", Path: []string{"l2", "l1", "l0"}, Demand: Inf},
			{ID: "c2", Path: []string{"l2"}, Demand: 8.05973438529872},
			{ID: "c3", Path: []string{"l2", "l1", "l0"}, Demand: Inf},
			{ID: "c4", Path: []string{"l2", "l1"}, Demand: 0.814453733675058},
		},
	}
	sim := des.New()
	pr := buildProtocol(t, sim, p, ProtocolOptions{Refined: true})
	pr.KickAll()
	if err := sim.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	ref, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.MaxDiff(pr.Rates()); d > 1e-6 {
		t.Fatalf("stale-bottleneck regression: diff %v\nproto %v\nref   %v", d, pr.Rates(), ref)
	}
}
