package maxmin

import (
	"math"
	"sort"
)

// WaterFill computes the maxmin-fair allocation by the classic iterative
// bottleneck algorithm: in each round, find the link (or demand) with the
// smallest fair share among unfrozen connections, freeze every unfrozen
// connection through it at that share, remove the consumed capacity, and
// repeat. Runs in O(rounds · links · conns); rounds <= conns.
//
// The returned allocation is the paper's optimality target (§5.2): fair —
// all connections constrained by a bottleneck get an equal share of it —
// and efficient — every bottleneck is used to capacity.
func WaterFill(p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	alloc := make(Allocation, len(p.Conns))
	frozen := make(map[string]bool, len(p.Conns))
	remaining := make(map[string]float64, len(p.Capacity))
	for l, c := range p.Capacity {
		remaining[l] = c
	}
	// Index connections per link once.
	onLink := map[string][]int{}
	for i, c := range p.Conns {
		seen := map[string]bool{}
		for _, l := range c.Path {
			if !seen[l] { // a loopy path counts a link once for sharing
				seen[l] = true
				onLink[l] = append(onLink[l], i)
			}
		}
	}
	links := p.sortedLinks()

	for {
		// Count unfrozen connections per link and find the tightest
		// fair-share level.
		level := math.Inf(1)
		for _, l := range links {
			n := 0
			for _, ci := range onLink[l] {
				if !frozen[p.Conns[ci].ID] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := remaining[l] / float64(n)
			if share < level {
				level = share
			}
		}
		// Demands act as private links.
		demandBound := false
		for _, c := range p.Conns {
			if !frozen[c.ID] && c.Demand < level {
				level = c.Demand
				demandBound = true
			}
		}
		if math.IsInf(level, 1) {
			break // nothing unfrozen anywhere
		}
		if level < 0 {
			level = 0
		}

		// Freeze: first connections capped by demand at this level, then
		// connections on saturated links.
		progress := false
		if demandBound {
			for _, c := range p.Conns {
				if frozen[c.ID] || c.Demand > level {
					continue
				}
				alloc[c.ID] = c.Demand
				frozen[c.ID] = true
				progress = true
				for _, l := range uniqueLinks(c.Path) {
					remaining[l] -= c.Demand
					if remaining[l] < 0 {
						remaining[l] = 0
					}
				}
			}
		}
		for _, l := range links {
			n := 0
			for _, ci := range onLink[l] {
				if !frozen[p.Conns[ci].ID] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if remaining[l]/float64(n) > level+1e-15*(1+level) {
				continue // not the bottleneck this round
			}
			for _, ci := range onLink[l] {
				c := p.Conns[ci]
				if frozen[c.ID] {
					continue
				}
				alloc[c.ID] = level
				frozen[c.ID] = true
				progress = true
				for _, pl := range uniqueLinks(c.Path) {
					remaining[pl] -= level
					if remaining[pl] < 0 {
						remaining[pl] = 0
					}
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at the level.
			for _, c := range p.Conns {
				if !frozen[c.ID] {
					alloc[c.ID] = level
					frozen[c.ID] = true
				}
			}
			break
		}
		allDone := true
		for _, c := range p.Conns {
			if !frozen[c.ID] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	for _, c := range p.Conns {
		if _, ok := alloc[c.ID]; !ok {
			alloc[c.ID] = 0
		}
	}
	return alloc, nil
}

func uniqueLinks(path []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(path))
	for _, l := range path {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// FairShare computes the advertised rate μ_l of §5.3.1 for one link:
// given the link's excess capacity, the recorded rate of every connection
// on the link, and the restricted set R (connections bottlenecked
// elsewhere, consuming their recorded rates), it evaluates
//
//	μ_l = b'_av                              if N_l = 0
//	μ_l = b'_av - b'_R + max_{i∈R} b'_R,i    if N_l = N_R
//	μ_l = (b'_av - b'_R) / (N_l - N_R)       otherwise
//
// restricted is indexed like recorded.
func FairShare(capacity float64, recorded []float64, restricted []bool) float64 {
	n := len(recorded)
	if n == 0 {
		return capacity
	}
	sumR, maxR := 0.0, 0.0
	nR := 0
	for i, r := range recorded {
		if restricted[i] {
			nR++
			sumR += r
			if r > maxR {
				maxR = r
			}
		}
	}
	if nR == n {
		return capacity - sumR + maxR
	}
	return (capacity - sumR) / float64(n-nR)
}

// AdvertisedRate computes the link's consistent advertised rate by the
// restricted-set iteration the paper describes: start with every
// connection unrestricted, compute μ, mark connections with recorded rate
// below μ as restricted, and recompute. The paper notes one recalculation
// suffices after unmarking; we iterate to the fixpoint (at most n rounds)
// for robustness and assert convergence in tests.
func AdvertisedRate(capacity float64, recorded []float64) float64 {
	n := len(recorded)
	if n == 0 {
		return capacity
	}
	restricted := make([]bool, n)
	mu := FairShare(capacity, recorded, restricted)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, r := range recorded {
			want := r < mu
			if restricted[i] != want {
				restricted[i] = want
				changed = true
			}
		}
		if !changed {
			break
		}
		mu = FairShare(capacity, recorded, restricted)
	}
	if mu < 0 {
		mu = 0
	}
	return mu
}

// sortedIDs returns the connection IDs of an allocation in stable order;
// exported tests use it for deterministic reporting.
func sortedIDs(a Allocation) []string {
	out := make([]string, 0, len(a))
	for id := range a {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
