package maxmin

import (
	"math"
	"sort"
	"sync"
)

// wfScratch holds WaterFill's working state, pooled so repeated solves
// (oracle checks in chaos audits, sync-solver rounds, arena sweeps)
// reuse one set of index-based slices instead of rebuilding maps per
// call. Every field is fully (re)initialized from the Problem at the
// top of WaterFill, so pooling cannot leak state between solves and the
// result stays bit-identical to the map-based implementation it
// replaced: iteration orders (sorted links, connection slice order) and
// the float operation sequence are unchanged.
type wfScratch struct {
	links   []string       // sorted link names
	linkIdx map[string]int // link name → index in links
	// remaining is the unconsumed capacity per link index.
	remaining []float64
	// frozen marks settled connections by index in Problem.Conns.
	frozen []bool
	// connFlat/connOff flatten each connection's unique link indices
	// (first-appearance order, as uniqueLinks produced).
	connFlat []int32
	connOff  []int
	// onFlat/onOff flatten each link's connection indices (ascending).
	onFlat []int32
	onOff  []int
	// counters reused while building onFlat; stamp dedups a loopy path
	// (stamp[li] == conn index when already counted for that conn).
	fill  []int
	stamp []int
}

var wfPool = sync.Pool{New: func() any { return new(wfScratch) }}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// WaterFill computes the maxmin-fair allocation by the classic iterative
// bottleneck algorithm: in each round, find the link (or demand) with the
// smallest fair share among unfrozen connections, freeze every unfrozen
// connection through it at that share, remove the consumed capacity, and
// repeat. Runs in O(rounds · links · conns); rounds <= conns.
//
// The returned allocation is the paper's optimality target (§5.2): fair —
// all connections constrained by a bottleneck get an equal share of it —
// and efficient — every bottleneck is used to capacity.
func WaterFill(p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nL, nC := len(p.Capacity), len(p.Conns)
	alloc := make(Allocation, nC)
	sc := wfPool.Get().(*wfScratch)
	defer wfPool.Put(sc)

	// Sorted link names and their indices.
	sc.links = sc.links[:0]
	for l := range p.Capacity {
		sc.links = append(sc.links, l)
	}
	sort.Strings(sc.links)
	links := sc.links
	if sc.linkIdx == nil {
		sc.linkIdx = make(map[string]int, nL)
	} else {
		clear(sc.linkIdx)
	}
	for i, l := range links {
		sc.linkIdx[l] = i
	}

	// Remaining capacity per link index.
	if cap(sc.remaining) < nL {
		sc.remaining = make([]float64, nL)
	}
	remaining := sc.remaining[:nL]
	for i, l := range links {
		remaining[i] = p.Capacity[l]
	}

	// Frozen flags per connection index.
	if cap(sc.frozen) < nC {
		sc.frozen = make([]bool, nC)
	}
	frozen := sc.frozen[:nC]
	for i := range frozen {
		frozen[i] = false
	}

	// Flatten each connection's unique link indices (a loopy path
	// counts a link once for sharing), preserving first-appearance
	// order — the subtraction order of the old uniqueLinks helper.
	sc.stamp = growInts(sc.stamp, nL)
	for i := range sc.stamp {
		sc.stamp[i] = -1
	}
	sc.connOff = growInts(sc.connOff, nC+1)
	sc.connFlat = sc.connFlat[:0]
	for ci := range p.Conns {
		sc.connOff[ci] = len(sc.connFlat)
		for _, l := range p.Conns[ci].Path {
			li := sc.linkIdx[l]
			if sc.stamp[li] != ci {
				sc.stamp[li] = ci
				sc.connFlat = append(sc.connFlat, int32(li))
			}
		}
	}
	sc.connOff[nC] = len(sc.connFlat)
	connLinks := func(ci int) []int32 { return sc.connFlat[sc.connOff[ci]:sc.connOff[ci+1]] }

	// Invert into each link's connection indices, ascending (the same
	// order per-link appends over the conn slice used to produce).
	sc.fill = growInts(sc.fill, nL+1)
	onCnt := sc.fill // reused as counts first, then as fill cursors
	for i := range onCnt[:nL] {
		onCnt[i] = 0
	}
	for ci := range p.Conns {
		for _, li := range connLinks(ci) {
			onCnt[li]++
		}
	}
	sc.onOff = growInts(sc.onOff, nL+1)
	off := 0
	for li := 0; li < nL; li++ {
		sc.onOff[li] = off
		off += onCnt[li]
		onCnt[li] = sc.onOff[li]
	}
	sc.onOff[nL] = off
	if cap(sc.onFlat) < off {
		sc.onFlat = make([]int32, off)
	}
	sc.onFlat = sc.onFlat[:off]
	for ci := range p.Conns {
		for _, li := range connLinks(ci) {
			sc.onFlat[onCnt[li]] = int32(ci)
			onCnt[li]++
		}
	}
	onLink := func(li int) []int32 { return sc.onFlat[sc.onOff[li]:sc.onOff[li+1]] }

	for {
		// Count unfrozen connections per link and find the tightest
		// fair-share level.
		level := math.Inf(1)
		for li := range links {
			n := 0
			for _, ci := range onLink(li) {
				if !frozen[ci] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := remaining[li] / float64(n)
			if share < level {
				level = share
			}
		}
		// Demands act as private links.
		demandBound := false
		for ci := range p.Conns {
			if !frozen[ci] && p.Conns[ci].Demand < level {
				level = p.Conns[ci].Demand
				demandBound = true
			}
		}
		if math.IsInf(level, 1) {
			break // nothing unfrozen anywhere
		}
		if level < 0 {
			level = 0
		}

		// Freeze: first connections capped by demand at this level, then
		// connections on saturated links.
		progress := false
		if demandBound {
			for ci := range p.Conns {
				c := &p.Conns[ci]
				if frozen[ci] || c.Demand > level {
					continue
				}
				alloc[c.ID] = c.Demand
				frozen[ci] = true
				progress = true
				for _, li := range connLinks(ci) {
					remaining[li] -= c.Demand
					if remaining[li] < 0 {
						remaining[li] = 0
					}
				}
			}
		}
		for li := range links {
			n := 0
			for _, ci := range onLink(li) {
				if !frozen[ci] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if remaining[li]/float64(n) > level+1e-15*(1+level) {
				continue // not the bottleneck this round
			}
			for _, ci := range onLink(li) {
				if frozen[ci] {
					continue
				}
				alloc[p.Conns[ci].ID] = level
				frozen[ci] = true
				progress = true
				for _, pl := range connLinks(int(ci)) {
					remaining[pl] -= level
					if remaining[pl] < 0 {
						remaining[pl] = 0
					}
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at the level.
			for ci := range p.Conns {
				if !frozen[ci] {
					alloc[p.Conns[ci].ID] = level
					frozen[ci] = true
				}
			}
			break
		}
		allDone := true
		for ci := range p.Conns {
			if !frozen[ci] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	for ci := range p.Conns {
		if _, ok := alloc[p.Conns[ci].ID]; !ok {
			alloc[p.Conns[ci].ID] = 0
		}
	}
	return alloc, nil
}

// uniqueLinks returns the path's links in first-appearance order, each
// once. The protocol and sync-solver paths still use it; WaterFill
// flattens the same ordering into its pooled scratch instead.
func uniqueLinks(path []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(path))
	for _, l := range path {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// FairShare computes the advertised rate μ_l of §5.3.1 for one link:
// given the link's excess capacity, the recorded rate of every connection
// on the link, and the restricted set R (connections bottlenecked
// elsewhere, consuming their recorded rates), it evaluates
//
//	μ_l = b'_av                              if N_l = 0
//	μ_l = b'_av - b'_R + max_{i∈R} b'_R,i    if N_l = N_R
//	μ_l = (b'_av - b'_R) / (N_l - N_R)       otherwise
//
// restricted is indexed like recorded.
func FairShare(capacity float64, recorded []float64, restricted []bool) float64 {
	n := len(recorded)
	if n == 0 {
		return capacity
	}
	sumR, maxR := 0.0, 0.0
	nR := 0
	for i, r := range recorded {
		if restricted[i] {
			nR++
			sumR += r
			if r > maxR {
				maxR = r
			}
		}
	}
	if nR == n {
		return capacity - sumR + maxR
	}
	return (capacity - sumR) / float64(n-nR)
}

// AdvertisedRate computes the link's consistent advertised rate by the
// restricted-set iteration the paper describes: start with every
// connection unrestricted, compute μ, mark connections with recorded rate
// below μ as restricted, and recompute. The paper notes one recalculation
// suffices after unmarking; we iterate to the fixpoint (at most n rounds)
// for robustness and assert convergence in tests.
func AdvertisedRate(capacity float64, recorded []float64) float64 {
	n := len(recorded)
	if n == 0 {
		return capacity
	}
	// The restricted set lives on the stack for realistic link loads
	// (protocol switches advertise to tens of connections, not
	// thousands), making the per-ADVERTISE hot path allocation-free.
	var buf [64]bool
	var restricted []bool
	if n <= len(buf) {
		restricted = buf[:n]
	} else {
		restricted = make([]bool, n)
	}
	mu := FairShare(capacity, recorded, restricted)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, r := range recorded {
			want := r < mu
			if restricted[i] != want {
				restricted[i] = want
				changed = true
			}
		}
		if !changed {
			break
		}
		mu = FairShare(capacity, recorded, restricted)
	}
	if mu < 0 {
		mu = 0
	}
	return mu
}

// sortedIDs returns the connection IDs of an allocation in stable order;
// exported tests use it for deterministic reporting.
func sortedIDs(a Allocation) []string {
	out := make([]string, 0, len(a))
	for id := range a {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
