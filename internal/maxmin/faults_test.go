package maxmin

import (
	"testing"
	"testing/quick"

	"armnet/internal/des"
	"armnet/internal/randx"
)

// lossyHook drops each control-packet hop independently with probability
// p from a seeded RNG.
func lossyHook(seed int64, p float64) Deliver {
	rng := randx.New(seed)
	return func(conn string, hop int, update bool) (bool, float64) {
		return rng.Bernoulli(p), 0
	}
}

// TestProtocolConvergesUnderControlLoss is the recovery property the
// fault subsystem leans on: with 10% control-packet loss, bounded
// retransmission plus the periodic re-ADVERTISE repair loop still drive
// the protocol to the centralized water-filling allocation.
func TestProtocolConvergesUnderControlLoss(t *testing.T) {
	p := tandemProblem()
	ref, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		sim := des.New()
		pr := buildProtocol(t, sim, p, ProtocolOptions{
			Refined:           true,
			Deliver:           lossyHook(seed, 0.10),
			ReadvertisePeriod: 5,
		})
		pr.KickAll()
		if err := sim.RunUntil(600); err != nil {
			t.Fatal(err)
		}
		got := pr.Rates()
		if d := ref.MaxDiff(got); d > 1e-6 {
			t.Fatalf("seed %d: diff %v after loss: protocol %v vs ref %v (retransmits %d, readvertises %d)",
				seed, d, got, ref, pr.Retransmits, pr.Readvertises)
		}
	}
}

// TestQuickProtocolConvergesUnderLoss extends the clean-run quick check:
// random problems, seeded 10% loss, repair loop on.
func TestQuickProtocolConvergesUnderLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		p := randomProblem(rng, 1+rng.Intn(3), 1+rng.Intn(4))
		ref, err := WaterFill(p)
		if err != nil {
			return true // degenerate instance
		}
		sim := des.New()
		pr := buildProtocol(t, sim, p, ProtocolOptions{
			Refined:           true,
			Deliver:           lossyHook(seed + 1, 0.10),
			ReadvertisePeriod: 5,
		})
		pr.KickAll()
		if err := sim.RunUntil(900); err != nil {
			t.Fatal(err)
		}
		if d := ref.MaxDiff(pr.Rates()); d > 1e-6 {
			t.Logf("seed %d: diff %v, got %v want %v", seed, d, pr.Rates(), ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateLossIsRetransmitted drops one UPDATE hop exactly once and
// expects the retransmission to commit the rate anyway.
func TestUpdateLossIsRetransmitted(t *testing.T) {
	sim := des.New()
	dropped := false
	pr := buildProtocol(t, sim, Problem{
		Capacity: map[string]float64{"L": 10},
		Conns:    []Conn{{ID: "c", Path: []string{"L"}, Demand: Inf}},
	}, ProtocolOptions{
		Refined: true,
		Deliver: func(conn string, hop int, update bool) (bool, float64) {
			if update && !dropped {
				dropped = true
				return true, 0
			}
			return false, 0
		},
	})
	pr.Kick("c")
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := pr.Rates()["c"]; got != 10 {
		t.Fatalf("rate = %v, want 10", got)
	}
	if pr.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", pr.Retransmits)
	}
}

// TestExhaustedRetriesAreRepairedByReadvertise loses an entire UPDATE
// retry budget (session abandoned, source never learns its rate) and
// expects the periodic re-ADVERTISE loop to detect the drift and repair
// it.
func TestExhaustedRetriesAreRepairedByReadvertise(t *testing.T) {
	sim := des.New()
	drops := 0
	pr := buildProtocol(t, sim, Problem{
		Capacity: map[string]float64{"L": 10},
		Conns:    []Conn{{ID: "c", Path: []string{"L"}, Demand: Inf}},
	}, ProtocolOptions{
		Refined:           true,
		ReadvertisePeriod: 1,
		Deliver: func(conn string, hop int, update bool) (bool, float64) {
			if update && drops < 4 {
				drops++
				return true, 0
			}
			return false, 0
		},
	})
	pr.Kick("c")
	if err := sim.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	if got := pr.Rates()["c"]; got != 0 {
		t.Fatalf("rate = %v before repair, want 0 (budget exhausted)", got)
	}
	if pr.Retransmits != 3 {
		t.Fatalf("Retransmits = %d, want 3 (full budget)", pr.Retransmits)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := pr.Rates()["c"]; got != 10 {
		t.Fatalf("rate = %v after repair, want 10", got)
	}
	if pr.Readvertises == 0 {
		t.Fatal("repair loop never kicked")
	}
}
