// Package maxmin implements the paper's bandwidth conflict-resolution and
// adaptation machinery (§5.2–5.3): the maxmin-fair allocation of excess
// bandwidth among connections, computed three ways that must agree —
//
//   - WaterFill: the centralized textbook algorithm, used as ground truth;
//   - SyncSolver: the distributed advertised-rate iteration of [8]
//     executed in synchronous rounds;
//   - Protocol: the full event-driven ADVERTISE/UPDATE message protocol,
//     including the paper's M(l) refinement that floods control packets
//     only along bottleneck sets.
//
// Throughout the package "capacity" means a link's *excess* capacity
// b'_av,l = C_l - b_resv,l - Σ b_min,i, and a connection's "rate" is the
// excess beyond its guaranteed b_min, capped by its demand b_max - b_min.
package maxmin

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Inf is the demand of a connection that can absorb any bandwidth.
var Inf = math.Inf(1)

// Conn is one connection competing for excess bandwidth.
type Conn struct {
	ID string
	// Path is the ordered list of links the connection traverses.
	Path []string
	// Demand caps the rate (b_max - b_min); use Inf for unbounded.
	Demand float64
}

// Problem is a maxmin allocation instance.
type Problem struct {
	// Capacity maps each link to its excess capacity b'_av,l >= 0.
	Capacity map[string]float64
	Conns    []Conn
}

// Validation errors.
var (
	ErrEmptyPath     = errors.New("maxmin: connection with empty path")
	ErrUnknownLink   = errors.New("maxmin: path references unknown link")
	ErrBadCapacity   = errors.New("maxmin: negative link capacity")
	ErrBadDemand     = errors.New("maxmin: negative demand")
	ErrDuplicateConn = errors.New("maxmin: duplicate connection id")
)

// Validate checks the instance for structural errors.
func (p Problem) Validate() error {
	for l, c := range p.Capacity {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("%w: link %s = %v", ErrBadCapacity, l, c)
		}
	}
	seen := make(map[string]bool, len(p.Conns))
	for _, c := range p.Conns {
		if seen[c.ID] {
			return fmt.Errorf("%w: %s", ErrDuplicateConn, c.ID)
		}
		seen[c.ID] = true
		if len(c.Path) == 0 {
			return fmt.Errorf("%w: %s", ErrEmptyPath, c.ID)
		}
		if c.Demand < 0 || math.IsNaN(c.Demand) {
			return fmt.Errorf("%w: %s demand %v", ErrBadDemand, c.ID, c.Demand)
		}
		for _, l := range c.Path {
			if _, ok := p.Capacity[l]; !ok {
				return fmt.Errorf("%w: %s uses %s", ErrUnknownLink, c.ID, l)
			}
		}
	}
	return nil
}

// Allocation maps connection IDs to their maxmin rates.
type Allocation map[string]float64

// MaxDiff returns the largest absolute rate difference between two
// allocations over the union of their keys.
func (a Allocation) MaxDiff(b Allocation) float64 {
	worst := 0.0
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		d := math.Abs(a[k] - b[k])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// IsMaxMin verifies the maxmin optimality criterion directly from its
// definition (within tolerance eps): the allocation is feasible, and every
// connection is either at its demand or has a bottleneck link — a link
// that is saturated and on which the connection's rate is at least that of
// every other connection crossing the link. This is the package's
// ground-truth oracle for property tests.
func (p Problem) IsMaxMin(a Allocation, eps float64) error {
	load := make(map[string]float64, len(p.Capacity))
	for _, c := range p.Conns {
		r, ok := a[c.ID]
		if !ok {
			return fmt.Errorf("maxmin: connection %s missing from allocation", c.ID)
		}
		if r < -eps {
			return fmt.Errorf("maxmin: connection %s has negative rate %v", c.ID, r)
		}
		if r > c.Demand+eps {
			return fmt.Errorf("maxmin: connection %s exceeds demand: %v > %v", c.ID, r, c.Demand)
		}
		for _, l := range c.Path {
			load[l] += r
		}
	}
	for l, used := range load {
		if used > p.Capacity[l]+eps {
			return fmt.Errorf("maxmin: link %s overloaded: %v > %v", l, used, p.Capacity[l])
		}
	}
	for _, c := range p.Conns {
		r := a[c.ID]
		if r >= c.Demand-eps {
			continue // satisfied
		}
		bottleneck := false
		for _, l := range c.Path {
			if load[l] < p.Capacity[l]-eps {
				continue // link has slack
			}
			// Saturated link: is c among its top-rate connections?
			top := true
			for _, o := range p.Conns {
				if o.ID == c.ID {
					continue
				}
				onLink := false
				for _, ol := range o.Path {
					if ol == l {
						onLink = true
						break
					}
				}
				if onLink && a[o.ID] > r+eps {
					top = false
					break
				}
			}
			if top {
				bottleneck = true
				break
			}
		}
		if !bottleneck {
			return fmt.Errorf("maxmin: connection %s (rate %v) is unsatisfied with no bottleneck link", c.ID, r)
		}
	}
	return nil
}

// sortedLinks returns the problem's link names in stable order.
func (p Problem) sortedLinks() []string {
	out := make([]string, 0, len(p.Capacity))
	for l := range p.Capacity {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
