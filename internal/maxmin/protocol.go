package maxmin

import (
	"fmt"
	"math"

	"armnet/internal/clock"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/sortx"
)

// Deliver decides the fate of one control-packet hop: conn is the
// connection whose session the packet belongs to, hop is the 0-based
// transmission index within the sweep, and update distinguishes UPDATE
// commits from ADVERTISE rounds. A nil hook delivers everything
// untouched and costs nothing.
type Deliver func(conn string, hop int, update bool) (drop bool, delay float64)

// ProtocolOptions tunes the event-driven ADVERTISE/UPDATE protocol.
type ProtocolOptions struct {
	// Refined enables the paper's M(l) refinement: on new bandwidth a
	// switch initiates ADVERTISE packets only for connections that
	// consider the link a bottleneck; on reduced bandwidth only for
	// connections whose recorded rate exceeds the advertised rate.
	// When false the switch floods every connection on the link (the
	// baseline of [8]).
	Refined bool
	// HopDelay is the one-hop control-packet latency in seconds.
	HopDelay float64
	// RoundTrips is the number of ADVERTISE round trips per adaptation
	// session; the paper (citing [8]) requires four for convergence.
	RoundTrips int
	// Delta is the paper's δ: capacity increases smaller than Delta do
	// not trigger adaptation (eqn. 2), bounding steady-state drift.
	Delta float64
	// Deliver, when non-nil, filters every control-packet hop (fault
	// injection).
	Deliver Deliver
	// MaxRetries bounds retransmissions of a lost ADVERTISE sweep or
	// UPDATE (default 3; negative disables retransmission). An exhausted
	// budget abandons the session — the re-ADVERTISE loop repairs the
	// resulting partial state.
	MaxRetries int
	// RetryBase is the first retransmission backoff; it doubles per
	// attempt (default 20 × HopDelay).
	RetryBase float64
	// ReadvertisePeriod, when positive, arms a periodic repair loop that
	// kicks connections whose committed rate drifted from their current
	// fair offer — the recovery path for sessions lost to control-plane
	// faults. Zero (the default) disables it.
	ReadvertisePeriod float64
}

func (o ProtocolOptions) withDefaults() ProtocolOptions {
	if o.HopDelay <= 0 {
		o.HopDelay = 1e-3
	}
	if o.RoundTrips <= 0 {
		o.RoundTrips = 4
	}
	if o.Delta < 0 {
		o.Delta = 0
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 20 * o.HopDelay
	}
	return o
}

// linkState is the per-link protocol state a switch maintains.
type linkState struct {
	name     string
	capacity float64
	// recorded is the last seen stamped rate per connection (§5.3.1).
	recorded map[string]float64
	// mSet is M(l): connections that consider this link a bottleneck.
	mSet map[string]bool
}

func (ls *linkState) connIDs() []string {
	return sortx.Keys(ls.recorded)
}

// advertised computes μ_l from the current recorded rates.
func (ls *linkState) advertised() float64 {
	recorded := make([]float64, 0, len(ls.recorded))
	for _, id := range ls.connIDs() {
		recorded = append(recorded, ls.recorded[id])
	}
	return AdvertisedRate(ls.capacity, recorded)
}

// advertisedFor computes the stamped rate the switch would offer
// connection c "under the assumption that this switch is a bottleneck for
// this connection": c is forced unrestricted in the restricted-set
// iteration.
func (ls *linkState) advertisedFor(c string) float64 {
	ids := ls.connIDs()
	recorded := make([]float64, len(ids))
	var forced = -1
	for i, id := range ids {
		recorded[i] = ls.recorded[id]
		if id == c {
			forced = i
		}
	}
	n := len(recorded)
	if n == 0 {
		return ls.capacity
	}
	restricted := make([]bool, n)
	mu := FairShare(ls.capacity, recorded, restricted)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, r := range recorded {
			want := r < mu && i != forced
			if restricted[i] != want {
				restricted[i] = want
				changed = true
			}
		}
		if !changed {
			break
		}
		mu = FairShare(ls.capacity, recorded, restricted)
	}
	if mu < 0 {
		mu = 0
	}
	return mu
}

// Protocol is the event-driven distributed rate allocator. Connections
// register with their link paths; TriggerCapacityChange models a switch
// detecting changed excess bandwidth and starts adaptation sessions whose
// ADVERTISE packets travel hop by hop on the simulator. After the
// configured round trips the initiator issues an UPDATE that commits the
// new rate at every hop and fires OnUpdate.
type Protocol struct {
	clk  clock.Clock
	Opts ProtocolOptions
	// OnUpdate, when non-nil, observes every committed rate change.
	OnUpdate func(conn string, rate float64)
	// Bus, when non-nil, receives an AdaptationRound event per ADVERTISE
	// round trip and a MaxminConverged event whenever the protocol goes
	// quiescent (no active or pending sessions).
	Bus *eventbus.Bus

	links map[string]*linkState
	conns map[string]*protoConn
	// Messages counts ADVERTISE and UPDATE hops traversed — the metric
	// for the flooding-vs-refined ablation.
	Messages int
	// Sessions counts adaptation sessions started.
	Sessions int
	// Retransmits counts sweeps resent after a control-packet loss;
	// Readvertises counts connections kicked by the periodic repair
	// loop.
	Retransmits, Readvertises int

	active map[string]bool // per-connection session in flight
	dirty  map[string]bool // session requested while one was active
}

type protoConn struct {
	id     string
	path   []string
	demand float64
	rate   float64
}

// NewProtocol builds a protocol instance over the simulator. A positive
// ReadvertisePeriod arms the periodic repair ticker immediately.
func NewProtocol(sim *des.Simulator, opts ProtocolOptions) *Protocol {
	return NewProtocolOn(clock.Sim(sim), opts)
}

// NewProtocolOn is NewProtocol with an explicit time source — the
// live-mode constructor. All protocol timers (sweep travel, retransmit
// backoff, the re-ADVERTISE repair ticker) run on the given clock.
func NewProtocolOn(clk clock.Clock, opts ProtocolOptions) *Protocol {
	pr := &Protocol{
		clk:    clk,
		Opts:   opts.withDefaults(),
		links:  make(map[string]*linkState),
		conns:  make(map[string]*protoConn),
		active: make(map[string]bool),
		dirty:  make(map[string]bool),
	}
	if pr.Opts.ReadvertisePeriod > 0 {
		clk.Every(pr.Opts.ReadvertisePeriod, pr.readvertise)
	}
	return pr
}

// readvertise kicks every quiescent connection whose committed rate
// deviates from its current fair offer min(demand, min_l μ_l(conn)) by
// more than δ. At the true maxmin fixpoint no connection deviates, so a
// converged protocol schedules nothing.
func (pr *Protocol) readvertise() {
	tol := pr.Opts.Delta
	if tol <= 0 {
		tol = 1e-9
	}
	ids := sortx.Keys(pr.conns)
	kicked := 0
	for _, id := range ids {
		if pr.active[id] {
			continue
		}
		pc := pr.conns[id]
		offer := pc.demand
		for _, l := range pc.path {
			if mu := pr.links[l].advertisedFor(id); mu < offer {
				offer = mu
			}
		}
		drift := math.Abs(offer-pc.rate) > tol
		// A lost sweep can also strand a *stale* recorded rate on an
		// upstream link — a state that looks locally fair (the offer
		// matches the committed rate) yet blocks neighbors from their
		// maxmin share. Recorded-vs-committed disagreement exposes it.
		for _, l := range pc.path {
			if drift {
				break
			}
			drift = math.Abs(pr.links[l].recorded[id]-pc.rate) > tol
		}
		if drift && pr.startSession(id) {
			kicked++
		}
	}
	if kicked > 0 {
		pr.Readvertises += kicked
		eventbus.Pub(pr.Bus, eventbus.Readvertise{Kicked: kicked})
	}
}

// retryControl schedules a retransmission of a lost control sweep with
// exponential backoff; it reports false when the budget is exhausted.
func (pr *Protocol) retryControl(id string, hop, attempt int, resend func(attempt int)) bool {
	if attempt >= pr.Opts.MaxRetries {
		return false
	}
	pr.Retransmits++
	eventbus.Pub(pr.Bus, eventbus.ControlRetransmit{Proto: "maxmin", Conn: id, Hop: hop, Attempt: attempt + 1})
	backoff := pr.Opts.RetryBase * float64(int(1)<<attempt)
	pr.clk.PostAfter(backoff, func() { resend(attempt + 1) })
	return true
}

// AddLink registers a link with its excess capacity.
func (pr *Protocol) AddLink(name string, capacity float64) error {
	if _, ok := pr.links[name]; ok {
		return fmt.Errorf("maxmin: duplicate link %s", name)
	}
	if capacity < 0 {
		return fmt.Errorf("%w: %s = %v", ErrBadCapacity, name, capacity)
	}
	pr.links[name] = &linkState{
		name:     name,
		capacity: capacity,
		recorded: make(map[string]float64),
		mSet:     make(map[string]bool),
	}
	return nil
}

// AddConn registers a connection; its initial rate is zero until an
// adaptation session runs.
func (pr *Protocol) AddConn(c Conn) error {
	if _, ok := pr.conns[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateConn, c.ID)
	}
	if len(c.Path) == 0 {
		return fmt.Errorf("%w: %s", ErrEmptyPath, c.ID)
	}
	for _, l := range c.Path {
		if _, ok := pr.links[l]; !ok {
			return fmt.Errorf("%w: %s uses %s", ErrUnknownLink, c.ID, l)
		}
	}
	demand := c.Demand
	if demand < 0 {
		return fmt.Errorf("%w: %s", ErrBadDemand, c.ID)
	}
	pc := &protoConn{id: c.ID, path: uniqueLinks(c.Path), demand: demand}
	pr.conns[c.ID] = pc
	for _, l := range pc.path {
		pr.links[l].recorded[c.ID] = 0
	}
	return nil
}

// RemoveConn drops a connection and frees its recorded rates.
func (pr *Protocol) RemoveConn(id string) {
	pc, ok := pr.conns[id]
	if !ok {
		return
	}
	for _, l := range pc.path {
		delete(pr.links[l].recorded, id)
		delete(pr.links[l].mSet, id)
	}
	delete(pr.conns, id)
	delete(pr.active, id)
	delete(pr.dirty, id)
}

// Rates returns the current committed allocation.
func (pr *Protocol) Rates() Allocation {
	out := make(Allocation, len(pr.conns))
	for id, c := range pr.conns {
		out[id] = c.rate
	}
	return out
}

// Problem exports the current instance for comparison with WaterFill.
func (pr *Protocol) Problem() Problem {
	p := Problem{Capacity: make(map[string]float64, len(pr.links))}
	for name, ls := range pr.links {
		p.Capacity[name] = ls.capacity
	}
	for _, id := range sortx.Keys(pr.conns) {
		c := pr.conns[id]
		p.Conns = append(p.Conns, Conn{ID: id, Path: append([]string(nil), c.path...), Demand: c.demand})
	}
	return p
}

// LinkBottleneck reports the size of one link's bottleneck set M(l).
type LinkBottleneck struct {
	Link string
	Size int
}

// BottleneckSizes exports the current per-link |M(l)| under the refined
// protocol, sorted by link ID; links whose bottleneck set is empty are
// skipped. This is a read-only observability tap — it never mutates
// protocol state.
func (pr *Protocol) BottleneckSizes() []LinkBottleneck {
	var out []LinkBottleneck
	for _, name := range sortx.Keys(pr.links) {
		if n := len(pr.links[name].mSet); n > 0 {
			out = append(out, LinkBottleneck{Link: name, Size: n})
		}
	}
	return out
}

// TriggerCapacityChange models the switch owning the link detecting a new
// excess capacity (eqn. 2): decreases always trigger; increases trigger
// only when they exceed δ and, under the refinement, only for connections
// in M(l). Returns the number of sessions started.
func (pr *Protocol) TriggerCapacityChange(link string, capacity float64) (int, error) {
	ls, ok := pr.links[link]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownLink, link)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("%w: %s = %v", ErrBadCapacity, link, capacity)
	}
	old := ls.capacity
	increase := capacity > old
	if increase && capacity-old <= pr.Opts.Delta {
		return 0, nil // below the adaptation threshold
	}
	ls.capacity = capacity
	adv := ls.advertised()
	var targets []string
	for _, id := range ls.connIDs() {
		if !pr.Opts.Refined {
			targets = append(targets, id)
			continue
		}
		if increase {
			// New bandwidth helps only connections bottlenecked here
			// (M(l) is refreshed on every UPDATE, so it is current).
			if ls.mSet[id] {
				targets = append(targets, id)
			}
		} else {
			// Reduced bandwidth hurts connections drawing more than the
			// new advertised rate.
			if ls.recorded[id] > adv {
				targets = append(targets, id)
			}
		}
	}
	started := 0
	for _, id := range targets {
		if pr.startSession(id) {
			started++
		}
	}
	return started, nil
}

// KickAll starts a session for every registered connection — used after
// connection setup/teardown, where the paper treats admission as carrying
// the stamped rate in its forward pass.
func (pr *Protocol) KickAll() {
	for _, id := range sortx.Keys(pr.conns) {
		pr.startSession(id)
	}
}

// Kick starts an adaptation session for a single connection — the entry
// point for connection setup, where the paper's admission forward pass
// carries the stamped rate.
func (pr *Protocol) Kick(id string) bool { return pr.startSession(id) }

// startSession begins the four-round-trip adaptation for one connection.
// Overlapping requests coalesce: a second request during an active
// session marks the connection dirty and reruns once.
func (pr *Protocol) startSession(id string) bool {
	if _, ok := pr.conns[id]; !ok {
		return false
	}
	if pr.active[id] {
		pr.dirty[id] = true
		return false
	}
	pr.active[id] = true
	pr.Sessions++
	pr.runRound(id, 1, math.Inf(1))
	return true
}

// runRound performs one ADVERTISE round trip: the packet sweeps the whole
// path (out and back), clamping its stamped rate at every hop; prevStamp
// carries the previous round's result so the UPDATE can take the minimum
// of the two latest stamped rates as the paper prescribes.
func (pr *Protocol) runRound(id string, round int, prevStamp float64) {
	pr.runRoundAttempt(id, round, prevStamp, 0)
}

// runRoundAttempt is runRound with a retransmission count: a sweep lost
// to the delivery hook leaves the hops it did reach updated (partial
// state, exactly like a real lost packet) and is resent after backoff;
// an exhausted budget abandons the session.
func (pr *Protocol) runRoundAttempt(id string, round int, prevStamp float64, attempt int) {
	pc, ok := pr.conns[id]
	if !ok {
		pr.finishSession(id)
		pr.maybeConverged()
		return
	}
	stamp := pc.demand
	travel := 0.0
	hop := 0
	// Clamp at every hop in both directions; because clamping is
	// idempotent per link we evaluate each link twice like the real
	// packet would, letting later links see earlier updates.
	for pass := 0; pass < 2; pass++ {
		order := pc.path
		if pass == 1 {
			order = reversed(pc.path)
		}
		for _, lname := range order {
			pr.Messages++
			travel += pr.Opts.HopDelay
			if d := pr.Opts.Deliver; d != nil {
				drop, extra := d(id, hop, false)
				if drop {
					if !pr.retryControl(id, hop, attempt, func(a int) { pr.runRoundAttempt(id, round, prevStamp, a) }) {
						pr.finishSession(id)
						pr.maybeConverged()
					}
					return
				}
				travel += extra
			}
			hop++
			ls := pr.links[lname]
			in := stamp
			mu := ls.advertisedFor(id)
			if mu < stamp {
				stamp = mu
			}
			ls.recorded[id] = stamp
			// Maintain M(l) per the paper's rule.
			muAll := ls.advertised()
			if muAll < in {
				ls.mSet[id] = true
			} else if muAll > in {
				delete(ls.mSet, id)
			}
		}
	}
	final := stamp
	eventbus.Pub(pr.Bus, eventbus.AdaptationRound{Conn: id, Round: round, Stamp: final})
	pr.clk.PostAfter(travel, func() {
		if round < pr.Opts.RoundTrips {
			pr.runRound(id, round+1, final)
			return
		}
		rate := final
		if prevStamp < rate {
			rate = prevStamp
		}
		pr.sendUpdate(id, rate)
	})
}

// sendUpdate commits the rate along the path and finishes the session.
func (pr *Protocol) sendUpdate(id string, rate float64) {
	pr.sendUpdateAttempt(id, rate, 0)
}

// sendUpdateAttempt is sendUpdate with a retransmission count. An UPDATE
// lost mid-path leaves the hops it reached committed (partial state) and
// is resent after backoff — recommitting is idempotent; an exhausted
// budget abandons the session with the source never learning the rate,
// which the re-ADVERTISE loop later repairs.
func (pr *Protocol) sendUpdateAttempt(id string, rate float64, attempt int) {
	pc, ok := pr.conns[id]
	if !ok {
		pr.finishSession(id)
		pr.maybeConverged()
		return
	}
	travel := 0.0
	// The UPDATE commits the recorded rate at every hop and refreshes
	// M(l) membership: on the way out it collects each link's fresh
	// offer μ_l = advertisedFor(conn); on the way back it marks exactly
	// the links attaining the path minimum as the connection's
	// bottlenecks (§5.2's definition). Membership computed mid-session
	// goes stale once neighbors re-settle; without this refresh a later
	// upgrade cascade can skip a connection that is in fact bottlenecked
	// here and strand it below its maxmin share (see the
	// stale-bottleneck regression test).
	mus := make([]float64, len(pc.path))
	minMu := math.Inf(1)
	for i, lname := range pc.path {
		pr.Messages++
		travel += pr.Opts.HopDelay
		if d := pr.Opts.Deliver; d != nil {
			drop, extra := d(id, i, true)
			if drop {
				if !pr.retryControl(id, i, attempt, func(a int) { pr.sendUpdateAttempt(id, rate, a) }) {
					pr.finishSession(id)
					pr.maybeConverged()
				}
				return
			}
			travel += extra
		}
		ls := pr.links[lname]
		ls.recorded[id] = rate
		mus[i] = ls.advertisedFor(id)
		if mus[i] < minMu {
			minMu = mus[i]
		}
	}
	for i, lname := range pc.path {
		ls := pr.links[lname]
		if mus[i] <= minMu+1e-9*(1+minMu) {
			ls.mSet[id] = true
		} else {
			delete(ls.mSet, id)
		}
	}
	pr.clk.PostAfter(travel, func() {
		changed := math.Abs(pc.rate-rate) > 1e-9*(1+math.Abs(rate))
		pc.rate = rate
		if changed && pr.OnUpdate != nil {
			pr.OnUpdate(id, rate)
		}
		pr.finishSession(id)
		if changed {
			// A committed change can shift fair shares for neighbors;
			// re-advertise to connections sharing a bottleneck, per the
			// cascade rule of §5.3.1.
			pr.cascade(id)
		}
		pr.maybeConverged()
	})
}

func (pr *Protocol) finishSession(id string) {
	delete(pr.active, id)
	if pr.dirty[id] {
		delete(pr.dirty, id)
		pr.startSession(id)
	}
}

// maybeConverged publishes MaxminConverged when no sessions remain in
// flight. Called after every point where a session can end (including the
// post-cascade commit path, so a cascade that restarts sessions
// suppresses the event).
func (pr *Protocol) maybeConverged() {
	if len(pr.active) == 0 && len(pr.dirty) == 0 && pr.Sessions > 0 {
		eventbus.Pub(pr.Bus, eventbus.MaxminConverged{Sessions: pr.Sessions, Messages: pr.Messages})
	}
}

// cascade re-advertises connections that share a link with id and whose
// recorded rate now deviates from the link's advertised rate by more than
// δ (refined mode), or every sharing connection (naive mode).
func (pr *Protocol) cascade(id string) {
	pc, ok := pr.conns[id]
	if !ok {
		return
	}
	tol := pr.Opts.Delta
	if tol <= 0 {
		tol = 1e-9
	}
	targets := map[string]bool{}
	for _, lname := range pc.path {
		ls := pr.links[lname]
		adv := ls.advertised()
		for _, other := range ls.connIDs() {
			if other == id {
				continue
			}
			if !pr.Opts.Refined {
				targets[other] = true
				continue
			}
			// Paper's rule: on upgrades re-advertise the bottleneck set
			// M(l); on downgrades the connections drawing above the new
			// advertised rate. M(l) is kept fresh at every UPDATE (see
			// sendUpdate), which is what makes relying on it sound here —
			// a connection that settled while its neighbors still held
			// inflated rates is bottlenecked at this link and therefore
			// *in* M(l), so it gets re-advertised when they release.
			if ls.mSet[other] || ls.recorded[other] > adv+tol {
				targets[other] = true
			}
		}
	}
	for _, t := range sortx.Keys(targets) {
		pr.startSession(t)
	}
}

func reversed(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
