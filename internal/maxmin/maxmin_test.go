package maxmin

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"armnet/internal/randx"
)

func TestWaterFillSingleLink(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"l": 9},
		Conns: []Conn{
			{ID: "a", Path: []string{"l"}, Demand: Inf},
			{ID: "b", Path: []string{"l"}, Demand: Inf},
			{ID: "c", Path: []string{"l"}, Demand: Inf},
		},
	}
	a, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if math.Abs(a[id]-3) > 1e-9 {
			t.Fatalf("rate[%s] = %v, want 3", id, a[id])
		}
	}
	if err := p.IsMaxMin(a, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestWaterFillDemandCap(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"l": 9},
		Conns: []Conn{
			{ID: "small", Path: []string{"l"}, Demand: 1},
			{ID: "big", Path: []string{"l"}, Demand: Inf},
		},
	}
	a, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a["small"]-1) > 1e-9 || math.Abs(a["big"]-8) > 1e-9 {
		t.Fatalf("alloc = %v, want small=1 big=8", a)
	}
	if err := p.IsMaxMin(a, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestWaterFillClassicTandem(t *testing.T) {
	// The textbook example: three links, a long connection plus locals.
	// L1 cap 10, L2 cap 4, L3 cap 8; conn long on all three, x on L1,
	// y on L2, z on L3. Maxmin: long=2 (L2 bottleneck with y), y=2,
	// x=8, z=6.
	p := Problem{
		Capacity: map[string]float64{"L1": 10, "L2": 4, "L3": 8},
		Conns: []Conn{
			{ID: "long", Path: []string{"L1", "L2", "L3"}, Demand: Inf},
			{ID: "x", Path: []string{"L1"}, Demand: Inf},
			{ID: "y", Path: []string{"L2"}, Demand: Inf},
			{ID: "z", Path: []string{"L3"}, Demand: Inf},
		},
	}
	a, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"long": 2, "x": 8, "y": 2, "z": 6}
	for id, w := range want {
		if math.Abs(a[id]-w) > 1e-9 {
			t.Fatalf("rate[%s] = %v, want %v (full %v)", id, a[id], w, a)
		}
	}
	if err := p.IsMaxMin(a, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestWaterFillZeroCapacity(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"l": 0},
		Conns:    []Conn{{ID: "a", Path: []string{"l"}, Demand: Inf}},
	}
	a, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if a["a"] != 0 {
		t.Fatalf("rate on dead link = %v", a["a"])
	}
}

func TestValidation(t *testing.T) {
	bad := []Problem{
		{Capacity: map[string]float64{"l": -1}, Conns: []Conn{{ID: "a", Path: []string{"l"}}}},
		{Capacity: map[string]float64{"l": 1}, Conns: []Conn{{ID: "a", Path: nil}}},
		{Capacity: map[string]float64{"l": 1}, Conns: []Conn{{ID: "a", Path: []string{"ghost"}}}},
		{Capacity: map[string]float64{"l": 1}, Conns: []Conn{{ID: "a", Path: []string{"l"}, Demand: -1}}},
		{Capacity: map[string]float64{"l": 1}, Conns: []Conn{
			{ID: "a", Path: []string{"l"}, Demand: 1}, {ID: "a", Path: []string{"l"}, Demand: 1}}},
	}
	for i, p := range bad {
		if _, err := WaterFill(p); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestFairShareCases(t *testing.T) {
	// N = 0.
	if got := FairShare(10, nil, nil); got != 10 {
		t.Fatalf("empty link share = %v", got)
	}
	// All restricted: cap - sum + max.
	got := FairShare(10, []float64{2, 3}, []bool{true, true})
	if math.Abs(got-(10-5+3)) > 1e-12 {
		t.Fatalf("all-restricted share = %v, want 8", got)
	}
	// Mixed: (cap - restricted)/(free).
	got = FairShare(10, []float64{2, 0, 0}, []bool{true, false, false})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("mixed share = %v, want 4", got)
	}
}

func TestAdvertisedRateFixpoint(t *testing.T) {
	// cap 10, recorded [10, 4]: b restricted at 4, a unrestricted -> 6.
	got := AdvertisedRate(10, []float64{10, 4})
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("advertised = %v, want 6", got)
	}
	// All zero recorded: everyone restricted below the level; the rate
	// must offer the full capacity to a riser.
	got = AdvertisedRate(10, []float64{0, 0})
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("advertised = %v, want 10", got)
	}
	if got := AdvertisedRate(5, nil); got != 5 {
		t.Fatalf("empty advertised = %v", got)
	}
}

func TestSyncMatchesWaterFillTandem(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L1": 10, "L2": 4, "L3": 8},
		Conns: []Conn{
			{ID: "long", Path: []string{"L1", "L2", "L3"}, Demand: Inf},
			{ID: "x", Path: []string{"L1"}, Demand: Inf},
			{ID: "y", Path: []string{"L2"}, Demand: Inf},
			{ID: "z", Path: []string{"L3"}, Demand: Inf},
		},
	}
	ref, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SyncSolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sync did not converge in %d rounds", res.Rounds)
	}
	if d := ref.MaxDiff(res.Allocation); d > 1e-6 {
		t.Fatalf("sync vs waterfill diff %v: %v vs %v", d, res.Allocation, ref)
	}
}

func TestSyncResumeAfterCapacityChange(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L": 10},
		Conns: []Conn{
			{ID: "a", Path: []string{"L"}, Demand: Inf},
			{ID: "b", Path: []string{"L"}, Demand: Inf},
		},
	}
	res1, err := SyncSolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Capacity["L"] = 6
	res2, err := SyncSolver{}.Resume(p, res1.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("resume did not converge")
	}
	for _, id := range []string{"a", "b"} {
		if math.Abs(res2.Allocation[id]-3) > 1e-6 {
			t.Fatalf("after shrink rate[%s] = %v, want 3", id, res2.Allocation[id])
		}
	}
}

func randomProblem(rng *randx.Rand, nLinks, nConns int) Problem {
	p := Problem{Capacity: map[string]float64{}}
	links := make([]string, nLinks)
	for i := range links {
		links[i] = fmt.Sprintf("l%d", i)
		p.Capacity[links[i]] = 1 + rng.Float64()*20
	}
	for i := 0; i < nConns; i++ {
		pathLen := 1 + rng.Intn(nLinks)
		perm := rng.Perm(nLinks)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		demand := Inf
		if rng.Bernoulli(0.4) {
			demand = rng.Float64() * 10
		}
		p.Conns = append(p.Conns, Conn{ID: fmt.Sprintf("c%d", i), Path: path, Demand: demand})
	}
	return p
}

// Property: WaterFill always satisfies the maxmin oracle.
func TestQuickWaterFillIsMaxMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		p := randomProblem(rng, 1+rng.Intn(5), 1+rng.Intn(8))
		a, err := WaterFill(p)
		if err != nil {
			return false
		}
		if err := p.IsMaxMin(a, 1e-6); err != nil {
			t.Logf("seed %d: %v (alloc %v)", seed, err, a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the synchronous distributed iteration converges to the
// centralized solution on random instances (Theorem 1's claim for the
// round-abstracted protocol).
func TestQuickSyncMatchesWaterFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		p := randomProblem(rng, 1+rng.Intn(4), 1+rng.Intn(6))
		ref, err := WaterFill(p)
		if err != nil {
			return false
		}
		res, err := SyncSolver{MaxRounds: 400, Eps: 1e-10}.Solve(p)
		if err != nil {
			return false
		}
		if !res.Converged {
			t.Logf("seed %d: no convergence", seed)
			return false
		}
		if d := ref.MaxDiff(res.Allocation); d > 1e-6 {
			t.Logf("seed %d: diff %v\nsync %v\nref  %v", seed, d, res.Allocation, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBottlenecks(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L1": 10, "L2": 4},
		Conns: []Conn{
			{ID: "ab", Path: []string{"L1", "L2"}, Demand: Inf},
			{ID: "a", Path: []string{"L1"}, Demand: Inf},
		},
	}
	alloc, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	// ab limited by L2 (4 shared alone) -> ab = 4, a = 6.
	bns, err := Bottlenecks(p, alloc)
	if err != nil {
		t.Fatal(err)
	}
	// At the maxmin point ab's available excess is its own rate on both
	// links (L1: 10-6=4, L2: 4), so per the paper's min-along-path
	// definition both are connection bottlenecks; L2 must be among them.
	hasL2 := false
	for _, l := range bns["ab"] {
		if l == "L2" {
			hasL2 = true
		}
	}
	if !hasL2 {
		t.Fatalf("ab bottleneck = %v, want to contain L2", bns["ab"])
	}
	if len(bns["a"]) != 1 || bns["a"][0] != "L1" {
		t.Fatalf("a bottleneck = %v, want [L1]", bns["a"])
	}
}

func TestBottlenecksSatisfiedConnection(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L": 10},
		Conns:    []Conn{{ID: "a", Path: []string{"L"}, Demand: 2}},
	}
	alloc, _ := WaterFill(p)
	bns, err := Bottlenecks(p, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if bns["a"] != nil {
		t.Fatalf("satisfied connection has bottlenecks %v", bns["a"])
	}
}

func TestNetworkBottleneck(t *testing.T) {
	p := Problem{
		Capacity: map[string]float64{"L1": 10, "L2": 4},
		Conns: []Conn{
			{ID: "ab", Path: []string{"L1", "L2"}, Demand: Inf},
			{ID: "a", Path: []string{"L1"}, Demand: Inf},
		},
	}
	// Shares: L1 10/2 = 5, L2 4/1 = 4 -> L2.
	got, err := NetworkBottleneck(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "L2" {
		t.Fatalf("network bottleneck = %v, want [L2]", got)
	}
}
