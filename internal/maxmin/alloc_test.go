package maxmin

import (
	"testing"

	"armnet/internal/raceflag"
)

// TestAdvertisedRateAllocFree pins the per-ADVERTISE hot path at zero
// allocations for realistic link loads: up to 64 connections the
// restricted set lives in a stack array, so the protocol's periodic
// advertisement sweep never touches the heap.
func TestAdvertisedRateAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	recorded := make([]float64, 64)
	for i := range recorded {
		recorded[i] = float64(i%7) + 1
	}
	got := testing.AllocsPerRun(1000, func() {
		AdvertisedRate(100, recorded)
	})
	if got != 0 {
		t.Fatalf("AdvertisedRate(64 conns) allocates %v/op, want 0", got)
	}
}
