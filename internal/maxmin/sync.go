package maxmin

import (
	"fmt"
	"math"
)

// SyncResult reports a synchronous distributed solve.
type SyncResult struct {
	Allocation Allocation
	// Rounds is the number of synchronous exchange rounds needed to
	// reach the fixpoint.
	Rounds int
	// Converged is false when the round limit was hit first.
	Converged bool
}

// SyncSolver runs the distributed advertised-rate algorithm of [8] in
// synchronous rounds: every link computes its advertised rate μ_l from the
// recorded rates of its connections, every connection adopts the minimum
// advertised rate along its path (capped by demand), and the links record
// the new rates. The fixpoint of this iteration is exactly the maxmin
// allocation; property tests check it against WaterFill.
//
// This is the message-free skeleton of the ADVERTISE/UPDATE protocol —
// useful both as a fast solver and as the reference the event-driven
// Protocol must match.
type SyncSolver struct {
	// Eps is the convergence tolerance on rate changes per round.
	Eps float64
	// MaxRounds caps the iteration (default 4 × connections + 8,
	// generous over the paper's four-round-trip bound).
	MaxRounds int
}

// Solve runs the iteration from all-zero recorded rates.
func (s SyncSolver) Solve(p Problem) (SyncResult, error) {
	return s.Resume(p, nil)
}

// Resume runs the iteration starting from a previous allocation — the
// event-driven use case where capacities changed and rates must re-settle
// (Theorem 1's period of instability followed by stability).
func (s SyncSolver) Resume(p Problem, prev Allocation) (SyncResult, error) {
	if err := p.Validate(); err != nil {
		return SyncResult{}, err
	}
	eps := s.Eps
	if eps <= 0 {
		eps = 1e-9
	}
	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4*len(p.Conns) + 8
	}

	rate := make(Allocation, len(p.Conns))
	for _, c := range p.Conns {
		if prev != nil {
			rate[c.ID] = prev[c.ID]
		} else {
			rate[c.ID] = 0
		}
	}
	links := p.sortedLinks()
	onLink := map[string][]int{}
	for i, c := range p.Conns {
		for _, l := range uniqueLinks(c.Path) {
			onLink[l] = append(onLink[l], i)
		}
	}

	for round := 1; round <= maxRounds; round++ {
		// Phase 1: every link advertises.
		adv := make(map[string]float64, len(links))
		for _, l := range links {
			conns := onLink[l]
			recorded := make([]float64, len(conns))
			for i, ci := range conns {
				recorded[i] = rate[p.Conns[ci].ID]
			}
			adv[l] = AdvertisedRate(p.Capacity[l], recorded)
		}
		// Phase 2: every connection adopts the path minimum.
		worst := 0.0
		for _, c := range p.Conns {
			r := c.Demand
			for _, l := range c.Path {
				if adv[l] < r {
					r = adv[l]
				}
			}
			if r < 0 {
				r = 0
			}
			if d := math.Abs(r - rate[c.ID]); d > worst {
				worst = d
			}
			rate[c.ID] = r
		}
		if worst <= eps {
			return SyncResult{Allocation: rate, Rounds: round, Converged: true}, nil
		}
	}
	return SyncResult{Allocation: rate, Rounds: maxRounds, Converged: false}, nil
}

// Bottlenecks classifies each connection's bottleneck links under an
// allocation: link l is a connection bottleneck for unsatisfied connection
// j when b'_(av,j),l is minimal along j's path (§5.2). The result maps
// connection IDs to their bottleneck links; satisfied connections map to
// nil. It is used to maintain the M(l) sets of the refined protocol.
func Bottlenecks(p Problem, a Allocation) (map[string][]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Available to j on l: capacity - Σ other rates = capacity - load + r_j.
	load := map[string]float64{}
	for _, c := range p.Conns {
		for _, l := range uniqueLinks(c.Path) {
			load[l] += a[c.ID]
		}
	}
	out := make(map[string][]string, len(p.Conns))
	for _, c := range p.Conns {
		r := a[c.ID]
		if r >= c.Demand-1e-12 {
			out[c.ID] = nil // satisfied
			continue
		}
		best := math.Inf(1)
		for _, l := range uniqueLinks(c.Path) {
			availJ := p.Capacity[l] - load[l] + r
			if availJ < best-1e-12 {
				best = availJ
			}
		}
		var bns []string
		for _, l := range uniqueLinks(c.Path) {
			availJ := p.Capacity[l] - load[l] + r
			if availJ <= best+1e-12 {
				bns = append(bns, l)
			}
		}
		out[c.ID] = bns
	}
	return out, nil
}

// NetworkBottleneck evaluates eqn. (1): it returns the links whose
// per-connection share of excess capacity b'_av,l / N_l is minimal, i.e.
// the network bottlenecks when all connections have infinite demand.
func NetworkBottleneck(p Problem) ([]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	count := map[string]int{}
	for _, c := range p.Conns {
		for _, l := range uniqueLinks(c.Path) {
			count[l]++
		}
	}
	best := math.Inf(1)
	for _, l := range p.sortedLinks() {
		if count[l] == 0 {
			continue
		}
		share := p.Capacity[l] / float64(count[l])
		if share < best {
			best = share
		}
	}
	var out []string
	for _, l := range p.sortedLinks() {
		if count[l] == 0 {
			continue
		}
		if p.Capacity[l]/float64(count[l]) <= best+1e-12 {
			out = append(out, l)
		}
	}
	if out == nil {
		return nil, fmt.Errorf("maxmin: no loaded links")
	}
	return out, nil
}
