package adapt

import (
	"math"
	"testing"

	"armnet/internal/qos"
)

func TestDegradeCapsAtMinAndFreesExcess(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}, {"b", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("a"); got <= 100e3 {
		t.Fatalf("precondition: a did not adapt above b_min (%v)", got)
	}
	if !mgr.Degrade("a") {
		t.Fatal("Degrade refused an adaptable static connection")
	}
	if got, _ := mgr.Allocation("a"); got != 100e3 {
		t.Fatalf("degraded allocation = %v, want b_min", got)
	}
	if !mgr.Degraded("a") || mgr.Degradable("a") {
		t.Fatal("degraded flag inconsistent")
	}
	// The freed bandwidth must NOT be gobbled by the survivor: the
	// protocol advertises excess from reserved minima, so the survivor
	// keeps its converged share and the reclaimed rate stays free for
	// the admissions the cascade was run for.
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("b"); math.Abs(got-800e3) > 1e3 {
		t.Fatalf("survivor allocation = %v, want its converged 800k share", got)
	}
	// The cap sticks even while neighbors keep adapting: any UPDATE
	// still in flight for a must not re-raise it.
	if got, _ := mgr.Allocation("a"); got != 100e3 {
		t.Fatalf("degraded allocation drifted to %v", got)
	}
}

func TestDegradeRefusals(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"s", qos.Static}, {"m", qos.Mobile}})
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if mgr.Degrade("ghost") {
		t.Fatal("Degrade accepted an unknown connection")
	}
	if mgr.Degrade("m") {
		t.Fatal("Degrade accepted a mobile connection")
	}
	if mgr.Degradable("m") {
		t.Fatal("mobile connection reported degradable")
	}
	if !mgr.Degrade("s") {
		t.Fatal("first Degrade refused")
	}
	if mgr.Degrade("s") {
		t.Fatal("second Degrade reported a fresh cap")
	}
}

func TestRestoreRejoinsAdaptation(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}})
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if !mgr.Degrade("a") {
		t.Fatal("Degrade refused")
	}
	if mgr.Restore("ghost") {
		t.Fatal("Restore accepted an unknown connection")
	}
	if mgr.Restore("a") != true || mgr.Degraded("a") {
		t.Fatal("Restore did not lift the cap")
	}
	if mgr.Restore("a") {
		t.Fatal("second Restore reported a lifted cap")
	}
	if err := sim.RunUntil(240); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("a"); got <= 100e3 {
		t.Fatalf("restored connection stuck at %v, want re-growth", got)
	}
}

func TestMobilityFlipClearsDegradeCap(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}})
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if !mgr.Degrade("a") {
		t.Fatal("Degrade refused")
	}
	// Mobile connections sit at b_min anyway; the cap must not survive
	// the round trip back to static and silently pin the connection.
	if err := mgr.SetMobility("a", qos.Mobile); err != nil {
		t.Fatal(err)
	}
	if mgr.Degraded("a") {
		t.Fatal("degrade cap survived the flip to mobile")
	}
	if err := mgr.SetMobility("a", qos.Static); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(240); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("a"); got <= 100e3 {
		t.Fatalf("allocation after flip cycle = %v, want growth", got)
	}
}

// TestMobilityFlipRacesCapacityChange pins the stale-UPDATE guard: a
// capacity change starts adaptation sessions; mid-flight, the connection
// flips to mobile (allocation forced to b_min and the session removed).
// The in-flight UPDATE committing later must not re-raise the allocation.
func TestMobilityFlipRacesCapacityChange(t *testing.T) {
	sim, _, mgr, route := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}, {"b", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	// Kick sessions via a capacity drop, then flip before they settle:
	// the protocol's messages for "a" are now stale.
	if err := mgr.CapacityChanged(route.Links[1].ID, 800e3); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetMobility("a", qos.Mobile); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("a"); got != 100e3 {
		t.Fatalf("mobile allocation = %v, want b_min: a stale UPDATE re-raised it", got)
	}
	// The survivor absorbs the whole remaining excess (800k - 2×100k
	// minima = 600k excess, capped by its own demand headroom 900k).
	if got, _ := mgr.Allocation("b"); math.Abs(got-700e3) > 1e3 {
		t.Fatalf("survivor allocation = %v, want 700k", got)
	}
}

func TestPoolFractionClampBoundaries(t *testing.T) {
	const cap = 1.6e6
	cases := []struct {
		name            string
		alloc, min, max float64
		want            float64
	}{
		// Exactly at the 5% floor and the 20% ceiling: no clamping.
		{"at floor", 0.05 * cap, 0.05, 0.20, 0.05},
		{"at ceiling", 0.20 * cap, 0.05, 0.20, 0.20},
		// One part in a million inside the band stays untouched.
		{"just above floor", 0.05 * cap * (1 + 1e-6), 0.05, 0.20, 0.05 * (1 + 1e-6)},
		{"just below ceiling", 0.20 * cap * (1 - 1e-6), 0.05, 0.20, 0.20 * (1 - 1e-6)},
		// Outside the band clamps.
		{"below floor", 0.05 * cap * (1 - 1e-6), 0.05, 0.20, 0.05},
		{"above ceiling", 0.20 * cap * (1 + 1e-6), 0.05, 0.20, 0.20},
		{"zero alloc", 0, 0.05, 0.20, 0.05},
		{"full capacity", cap, 0.05, 0.20, 0.20},
		// Degenerate bands.
		{"negative floor treated as zero", -1, -0.1, 0.20, 0},
		{"ceiling below floor collapses", 0.5 * cap, 0.10, 0.05, 0.10},
		{"zero capacity yields floor", 1, 0.05, 0.20, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			capacity := cap
			if tc.name == "zero capacity yields floor" {
				capacity = 0
			}
			got := PoolFraction(tc.alloc, capacity, tc.min, tc.max)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("PoolFraction(%g, %g, %g, %g) = %v, want %v",
					tc.alloc, capacity, tc.min, tc.max, got, tc.want)
			}
		})
	}
}
