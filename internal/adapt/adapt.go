// Package adapt implements the paper's resource adaptation layer (§5.3):
// it connects a rate-allocation strategy (the distributed maxmin protocol
// by default) to the admission ledger, enforcing the two policy rules the
// paper sets —
//
//  1. only connections of *static* portables are adapted (for a
//     frequently handing-off mobile the signaling overhead would swamp
//     the benefit), and
//  2. adaptation triggers follow eq. (2): any capacity decrease, or an
//     increase above the threshold δ when some connection is bottlenecked
//     on the link.
//
// The package also implements the B_dyn pool rule of §5.3: each cell's
// dynamically adjustable pool must be able to absorb at least one
// maximum-allocation static connection from its neighboring cells,
// clamped to the paper's 5%–20% band.
//
// The layer is allocator-agnostic: it talks to the strategy.Allocator
// seam, so swapping the paper's protocol for a rival (ERICA fair-share)
// changes nothing here.
package adapt

import (
	"errors"
	"fmt"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/qos"
	"armnet/internal/strategy"
	"armnet/internal/topology"
)

// ErrUnknownConn is returned when operating on an unregistered connection.
var ErrUnknownConn = errors.New("adapt: unknown connection")

// connInfo tracks one adaptable connection.
type connInfo struct {
	route    topology.Route
	bounds   qos.Bounds
	mobility qos.Mobility
	// degraded caps the connection at b_min: it is out of the allocation
	// protocol until Restore lifts the cap (overload degrade cascades).
	degraded bool
}

// Manager owns the adaptation state.
type Manager struct {
	Sim    *des.Simulator
	Ledger *admission.Ledger
	// Alloc is the rate-allocation strategy behind the seam (the paper's
	// maxmin ADVERTISE/UPDATE protocol by default).
	Alloc strategy.Allocator

	conns map[string]*connInfo
	// OnRate observes committed rate changes (for tests and metrics).
	OnRate func(connID string, bandwidth float64)
}

// NewManager builds the adaptation layer over an existing ledger with
// the default maxmin allocator. opts configures the underlying
// ADVERTISE/UPDATE protocol.
func NewManager(sim *des.Simulator, lg *admission.Ledger, opts maxmin.ProtocolOptions) (*Manager, error) {
	if sim == nil || lg == nil {
		return nil, fmt.Errorf("adapt: nil simulator or ledger")
	}
	alloc, err := strategy.NewAllocator(strategy.DefaultAllocator, sim, opts)
	if err != nil {
		return nil, err
	}
	return NewManagerWith(sim, lg, alloc)
}

// NewManagerWith builds the adaptation layer over an already-constructed
// allocator: every ledger link is registered with its current excess
// capacity, and the allocator's committed updates flow back into the
// ledger.
func NewManagerWith(sim *des.Simulator, lg *admission.Ledger, alloc strategy.Allocator) (*Manager, error) {
	if sim == nil || lg == nil || alloc == nil {
		return nil, fmt.Errorf("adapt: nil simulator, ledger, or allocator")
	}
	m := &Manager{
		Sim:    sim,
		Ledger: lg,
		Alloc:  alloc,
		conns:  make(map[string]*connInfo),
	}
	for _, ls := range lg.Links() {
		if err := m.Alloc.AddLink(string(ls.Link.ID), clampNonNeg(ls.ExcessAvailable())); err != nil {
			return nil, err
		}
	}
	m.Alloc.SetOnUpdate(m.applyUpdate)
	return m, nil
}

// Maxmin returns the underlying maxmin protocol when the seated
// allocator is the paper's default, and nil for rival strategies —
// callers needing maxmin-specific state (the chaos auditor's WaterFill
// oracle) must tolerate the nil.
func (m *Manager) Maxmin() *maxmin.Protocol {
	if u, ok := m.Alloc.(interface{ Underlying() *maxmin.Protocol }); ok {
		return u.Underlying()
	}
	return nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Register tracks a connection after admission. Static connections join
// the rate-allocation protocol with demand b_max - b_min; mobile ones are
// held at b_min and only tracked for mobility flips. Registration also
// resyncs the excess capacity of the route's links.
func (m *Manager) Register(connID string, route topology.Route, bounds qos.Bounds, mob qos.Mobility) error {
	if _, ok := m.conns[connID]; ok {
		return fmt.Errorf("adapt: duplicate connection %s", connID)
	}
	if err := bounds.Validate(); err != nil {
		return err
	}
	ci := &connInfo{route: route, bounds: bounds, mobility: mob}
	m.conns[connID] = ci
	if mob == qos.Static {
		if err := m.addToProtocol(connID, ci); err != nil {
			delete(m.conns, connID)
			return err
		}
	}
	m.SyncRoute(route)
	if mob == qos.Static {
		m.Alloc.Kick(connID)
	}
	return nil
}

func (m *Manager) addToProtocol(connID string, ci *connInfo) error {
	path := make([]string, 0, len(ci.route.Links))
	for _, l := range ci.route.Links {
		path = append(path, string(l.ID))
	}
	return m.Alloc.AddSession(strategy.Session{ID: connID, Path: path, Demand: ci.bounds.Width()})
}

// Unregister drops a connection (after release from the ledger) and
// resyncs its links so freed excess is re-advertised.
func (m *Manager) Unregister(connID string) {
	ci, ok := m.conns[connID]
	if !ok {
		return
	}
	m.Alloc.RemoveSession(connID)
	delete(m.conns, connID)
	m.SyncRoute(ci.route)
}

// SetMobility flips a connection between static and mobile. Mobile
// connections fall back to b_min immediately (the paper keeps mobile
// portables at their pre-negotiated minimum).
func (m *Manager) SetMobility(connID string, mob qos.Mobility) error {
	ci, ok := m.conns[connID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConn, connID)
	}
	if ci.mobility == mob {
		return nil
	}
	ci.mobility = mob
	if mob == qos.Mobile {
		// A mobile connection is pinned at b_min anyway; the degrade cap
		// is moot and must not survive a later flip back to static.
		ci.degraded = false
		m.Alloc.RemoveSession(connID)
		for _, l := range ci.route.Links {
			if err := m.Ledger.SetAllocation(connID, l.ID, ci.bounds.Min); err != nil {
				return err
			}
		}
		if m.OnRate != nil {
			m.OnRate(connID, ci.bounds.Min)
		}
		m.SyncRoute(ci.route)
		return nil
	}
	if err := m.addToProtocol(connID, ci); err != nil {
		return err
	}
	m.SyncRoute(ci.route)
	m.Alloc.Kick(connID)
	return nil
}

// Degrade caps an adaptable static connection at its guaranteed minimum:
// it leaves the allocation protocol, its allocation drops to b_min on
// every link of its route, and the freed excess is re-advertised to the
// remaining sessions. It reports whether the connection was newly
// degraded; unknown, mobile, already-degraded, and zero-width
// connections are left alone.
func (m *Manager) Degrade(connID string) bool {
	ci, ok := m.conns[connID]
	if !ok || ci.mobility != qos.Static || ci.degraded || ci.bounds.Width() == 0 {
		return false
	}
	ci.degraded = true
	m.Alloc.RemoveSession(connID)
	for _, l := range ci.route.Links {
		// The allocation may race a release; ignore missing allocations.
		_ = m.Ledger.SetAllocation(connID, l.ID, ci.bounds.Min)
	}
	if m.OnRate != nil {
		m.OnRate(connID, ci.bounds.Min)
	}
	m.SyncRoute(ci.route)
	return true
}

// Restore lifts a degrade cap: the connection rejoins the allocation
// protocol and competes for excess again. It reports whether a cap was
// actually lifted.
func (m *Manager) Restore(connID string) bool {
	ci, ok := m.conns[connID]
	if !ok || !ci.degraded {
		return false
	}
	ci.degraded = false
	if ci.mobility != qos.Static {
		return true
	}
	if err := m.addToProtocol(connID, ci); err != nil {
		ci.degraded = true
		return false
	}
	m.SyncRoute(ci.route)
	m.Alloc.Kick(connID)
	return true
}

// Degraded reports whether the connection is currently degrade-capped.
func (m *Manager) Degraded(connID string) bool {
	ci, ok := m.conns[connID]
	return ok && ci.degraded
}

// Degradable reports whether a degrade cascade could still reclaim
// bandwidth from the connection: a registered static connection with
// adaptable width that is not already capped.
func (m *Manager) Degradable(connID string) bool {
	ci, ok := m.conns[connID]
	return ok && ci.mobility == qos.Static && !ci.degraded && ci.bounds.Width() > 0
}

// SyncLink recomputes a link's excess capacity b'_av,l from the ledger
// and pushes it into the protocol, which applies the eq. (2) trigger
// rules (decreases always adapt; increases only above δ and only for the
// link's bottleneck set).
func (m *Manager) SyncLink(id topology.LinkID) error {
	ls := m.Ledger.Link(id)
	if ls == nil {
		return fmt.Errorf("adapt: unknown link %s", id)
	}
	_, err := m.Alloc.CapacityChanged(string(id), clampNonNeg(ls.ExcessAvailable()))
	return err
}

// SyncRoute syncs every link of a route.
func (m *Manager) SyncRoute(r topology.Route) {
	for _, l := range r.Links {
		// Links are known by construction; ignore the impossible error.
		_ = m.SyncLink(l.ID)
	}
}

// CapacityChanged is the wireless-variation entry point: the ledger is
// updated to the new raw capacity and the protocol is triggered with the
// resulting excess.
func (m *Manager) CapacityChanged(id topology.LinkID, capacity float64) error {
	if err := m.Ledger.SetCapacity(id, capacity); err != nil {
		return err
	}
	return m.SyncLink(id)
}

// applyUpdate commits a protocol UPDATE: allocation = b_min + rate on
// every link of the connection's route.
func (m *Manager) applyUpdate(connID string, rate float64) {
	ci, ok := m.conns[connID]
	if !ok {
		return
	}
	// An UPDATE already in flight when Degrade removed the session must
	// not re-raise the allocation above the cap.
	if ci.degraded {
		return
	}
	bw := ci.bounds.Clamp(ci.bounds.Min + rate)
	for _, l := range ci.route.Links {
		// The allocation may race a release; ignore missing allocations.
		_ = m.Ledger.SetAllocation(connID, l.ID, bw)
	}
	if m.OnRate != nil {
		m.OnRate(connID, bw)
	}
}

// Allocation returns the connection's current bandwidth (b_min plus its
// adapted excess), or an error for unknown connections.
func (m *Manager) Allocation(connID string) (float64, error) {
	ci, ok := m.conns[connID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownConn, connID)
	}
	if len(ci.route.Links) == 0 {
		return ci.bounds.Min, nil
	}
	a := m.Ledger.Link(ci.route.Links[0].ID).Alloc(connID)
	if a == nil {
		return ci.bounds.Min, nil
	}
	return a.Cur, nil
}

// PoolFraction computes the B_dyn fraction for a cell (§5.3): the pool
// must absorb at least one maximum-allocation connection from a static
// portable residing in the neighboring cells, clamped to [minFrac,
// maxFrac] (the paper's 5%–20%). neighborMaxAlloc is the largest current
// allocation of any static connection in the neighborhood.
func PoolFraction(neighborMaxAlloc, capacity, minFrac, maxFrac float64) float64 {
	if capacity <= 0 {
		return minFrac
	}
	if minFrac < 0 {
		minFrac = 0
	}
	if maxFrac < minFrac {
		maxFrac = minFrac
	}
	f := neighborMaxAlloc / capacity
	if f < minFrac {
		return minFrac
	}
	if f > maxFrac {
		return maxFrac
	}
	return f
}
