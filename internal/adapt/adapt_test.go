package adapt

import (
	"math"
	"testing"

	"armnet/internal/admission"
	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/qos"
	"armnet/internal/topology"
)

// rig builds a 2-hop backbone (host -> bs -> air) with a 1.6 Mb/s
// wireless hop, admits the given connections, and returns the pieces.
func rig(t *testing.T, conns []struct {
	id  string
	mob qos.Mobility
}) (*des.Simulator, *admission.Controller, *Manager, topology.Route) {
	t.Helper()
	b := topology.NewBackbone()
	for _, id := range []topology.NodeID{"host", "bs", "air"} {
		b.MustAddNode(topology.Node{ID: id})
	}
	b.MustAddDuplex(topology.Link{From: "host", To: "bs", Capacity: 10e6, PropDelay: 1e-3})
	b.MustAddDuplex(topology.Link{From: "bs", To: "air", Capacity: 1.6e6, Wireless: true})
	route, err := b.ShortestPath("host", "air")
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	lg := admission.NewLedger(b)
	ctl := admission.NewController(lg)
	mgr, err := NewManager(sim, lg, maxmin.ProtocolOptions{Refined: true})
	if err != nil {
		t.Fatal(err)
	}
	req := qos.Request{
		Bandwidth: qos.Bounds{Min: 100e3, Max: 1e6},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: qos.TrafficSpec{Sigma: 10e3, Rho: 100e3},
	}
	for _, c := range conns {
		res, err := ctl.Admit(admission.Test{ConnID: c.id, Req: req, Route: route, Mobility: c.mob})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Admitted {
			t.Fatalf("%s rejected: %s", c.id, res.Reason)
		}
		if err := mgr.Register(c.id, route, req.Bandwidth, c.mob); err != nil {
			t.Fatal(err)
		}
	}
	return sim, ctl, mgr, route
}

func TestStaticConnectionsShareExcessFairly(t *testing.T) {
	sim, ctl, mgr, route := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}, {"b", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	// Wireless excess = 1.6e6 - 2*100e3 = 1.4e6; fair split 700k each;
	// demand cap = 900k each, so rate 700k -> allocation 800k.
	for _, id := range []string{"a", "b"} {
		got, err := mgr.Allocation(id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-800e3) > 1e3 {
			t.Fatalf("allocation[%s] = %v, want ~800k", id, got)
		}
	}
	// Ledger reflects the adapted allocations on the wireless hop.
	wl := ctl.Ledger.Link(route.Links[1].ID)
	if sum := wl.SumCur(); math.Abs(sum-1.6e6) > 2e3 {
		t.Fatalf("wireless allocated sum = %v, want full capacity", sum)
	}
}

func TestMobileConnectionsStayAtMin(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"m", qos.Mobile}, {"s", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	mob, err := mgr.Allocation("m")
	if err != nil {
		t.Fatal(err)
	}
	if mob != 100e3 {
		t.Fatalf("mobile allocation = %v, want b_min", mob)
	}
	// The static one takes the whole excess (capped by demand).
	st, err := mgr.Allocation("s")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st-1e6) > 1e3 { // min 100k + demand-capped 900k excess
		t.Fatalf("static allocation = %v, want 1e6 (demand cap)", st)
	}
}

func TestMobilityFlipDropsToMin(t *testing.T) {
	sim, _, mgr, _ := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"s", qos.Static}})
	if err := sim.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("s"); got <= 100e3 {
		t.Fatalf("static allocation did not grow: %v", got)
	}
	if err := mgr.SetMobility("s", qos.Mobile); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("s"); got != 100e3 {
		t.Fatalf("after flip allocation = %v, want b_min", got)
	}
	// Flip back: re-adapts.
	if err := mgr.SetMobility("s", qos.Static); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(180); err != nil {
		t.Fatal(err)
	}
	if got, _ := mgr.Allocation("s"); got <= 100e3 {
		t.Fatalf("after flip back allocation = %v, want growth", got)
	}
	if err := mgr.SetMobility("ghost", qos.Static); err == nil {
		t.Fatal("unknown connection accepted")
	}
}

func TestCapacityDecreaseSqueezesAllocations(t *testing.T) {
	sim, _, mgr, route := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}, {"b", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	// Wireless capacity halves: 800k total, excess 600k, 300k each.
	if err := mgr.CapacityChanged(route.Links[1].ID, 800e3); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		got, _ := mgr.Allocation(id)
		if math.Abs(got-400e3) > 1e3 {
			t.Fatalf("allocation[%s] after shrink = %v, want 400k", id, got)
		}
	}
}

func TestUnregisterFreesExcess(t *testing.T) {
	sim, ctl, mgr, route := rig(t, []struct {
		id  string
		mob qos.Mobility
	}{{"a", qos.Static}, {"b", qos.Static}})
	if err := sim.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	ctl.Ledger.Release("a", route)
	mgr.Unregister("a")
	if err := sim.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	got, _ := mgr.Allocation("b")
	if math.Abs(got-1e6) > 1e3 { // demand cap b_max
		t.Fatalf("survivor allocation = %v, want demand cap 1e6", got)
	}
	// Unregistering twice is harmless.
	mgr.Unregister("a")
}

func TestRegisterValidation(t *testing.T) {
	_, _, mgr, route := rig(t, nil)
	if err := mgr.Register("x", route, qos.Bounds{}, qos.Static); err == nil {
		t.Fatal("invalid bounds accepted")
	}
	if err := mgr.Register("x", route, qos.Bounds{Min: 1, Max: 2}, qos.Static); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("x", route, qos.Bounds{Min: 1, Max: 2}, qos.Static); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := mgr.Allocation("nobody"); err == nil {
		t.Fatal("unknown allocation lookup succeeded")
	}
}

func TestPoolFraction(t *testing.T) {
	// Neighbor's biggest static allocation 200k on 1.6M -> 12.5%.
	if got := PoolFraction(200e3, 1.6e6, 0.05, 0.20); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("pool fraction = %v", got)
	}
	// Tiny neighbor load clamps to the 5% floor.
	if got := PoolFraction(10e3, 1.6e6, 0.05, 0.20); got != 0.05 {
		t.Fatalf("pool floor = %v", got)
	}
	// Huge neighbor load clamps to the 20% ceiling.
	if got := PoolFraction(1e6, 1.6e6, 0.05, 0.20); got != 0.20 {
		t.Fatalf("pool ceiling = %v", got)
	}
	if got := PoolFraction(1, 0, 0.05, 0.20); got != 0.05 {
		t.Fatalf("zero capacity pool = %v", got)
	}
}
