package obs

import (
	"testing"

	"armnet/internal/eventbus"
)

// BenchmarkObserverHotPath measures the per-event cost of the observer's
// catch-all subscriber over a representative event mix — the marginal
// price of running a simulation with obs enabled.
func BenchmarkObserverHotPath(b *testing.B) {
	clk := &fakeClock{}
	bus := eventbus.New(clk)
	New(bus, Sources{
		CellUtilization: func() []CellUtil {
			return []CellUtil{{Cell: "cellA", Util: 0.3}, {Cell: "cellB", Util: 0.7}}
		},
	}, Options{})
	events := []eventbus.Event{
		eventbus.ConnectionRequested{Portable: "p0"},
		eventbus.SignalHold{Conn: "c0", Link: "l0"},
		eventbus.SignalCommit{Conn: "c0", Latency: 0.01},
		eventbus.ConnectionAdmitted{Conn: "c0", Portable: "p0", Bandwidth: 2},
		eventbus.AdaptationRound{Conn: "c0", Round: 1, Stamp: 1.5},
		eventbus.BandwidthChange{Conn: "c0", Bandwidth: 1.5},
		eventbus.MaxminConverged{Sessions: 1, Messages: 8},
		eventbus.HandoffAttempt{Conn: "c0", Portable: "p0", From: "cellA", To: "cellB", Predicted: true},
		eventbus.HandoffLatency{Conn: "c0", Portable: "p0", Predicted: true, Latency: 0.004},
		eventbus.HandoffOutcome{Conn: "c0", Portable: "p0"},
		eventbus.ConnectionClosed{Conn: "c0", Portable: "p0"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.now = float64(i)
		for _, ev := range events {
			bus.Publish(ev)
		}
	}
}

// BenchmarkSnapshotRender measures a full Prometheus render of a
// realistically sized registry — the per-scrape cost of the live
// telemetry endpoint.
func BenchmarkSnapshotRender(b *testing.B) {
	clk := &fakeClock{}
	bus := eventbus.New(clk)
	o := New(bus, Sources{}, Options{})
	for i := 0; i < 200; i++ {
		clk.now = float64(i)
		driveLifecycle(clk, bus)
	}
	o.Finish(1000)
	snap := o.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := snap.Prometheus(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
