package obs

import (
	"math"
	"testing"
)

// FuzzHistogramMerge checks the merge contract on arbitrary bucket
// shapes: matching bounds merge additively (counts, sum, total), any
// bound disagreement is rejected, and the receiver is untouched on
// rejection paths that fail before mutation.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 3, 1, 2, 3, 5, 7}, false)
	f.Add([]byte{2, 1, 2, 3, 1, 2, 3}, true)
	f.Add([]byte{0}, false)
	f.Fuzz(func(t *testing.T, data []byte, perturb bool) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		build := func(n int) HistSeries {
			h := HistSeries{Name: "h", Bounds: make([]float64, n), Counts: make([]uint64, n+1)}
			edge := 0.0
			for i := range h.Bounds {
				edge += float64(next()%16) + 1 // strictly ascending
				h.Bounds[i] = edge
			}
			for i := range h.Counts {
				c := uint64(next())
				h.Counts[i] = c
				h.Count += c
				h.Sum += float64(c) * float64(i)
			}
			return h
		}
		n := int(next() % 8)
		a := build(n)
		b := build(n)
		if perturb && n > 0 {
			b.Bounds[int(next())%n] += 0.5
		}
		boundsMatch := len(a.Bounds) == len(b.Bounds)
		for i := range a.Bounds {
			if a.Bounds[i] != b.Bounds[i] {
				boundsMatch = false
			}
		}

		beforeCount, beforeSum := a.Count, a.Sum
		beforeCounts := append([]uint64(nil), a.Counts...)
		err := mergeHist(&a, b)
		if boundsMatch {
			if err != nil {
				t.Fatalf("matching bounds rejected: %v", err)
			}
			if a.Count != beforeCount+b.Count {
				t.Fatalf("count %d != %d + %d", a.Count, beforeCount, b.Count)
			}
			if math.Abs(a.Sum-(beforeSum+b.Sum)) > 1e-9 {
				t.Fatalf("sum %v != %v + %v", a.Sum, beforeSum, b.Sum)
			}
			var total uint64
			for i := range a.Counts {
				if a.Counts[i] != beforeCounts[i]+b.Counts[i] {
					t.Fatalf("bucket %d not additive", i)
				}
				total += a.Counts[i]
			}
			if total != a.Count {
				t.Fatalf("bucket total %d != count %d", total, a.Count)
			}
		} else if err == nil {
			t.Fatalf("mismatched bounds accepted: %v vs %v", a.Bounds, b.Bounds)
		}
	})
}
