package obs

import (
	"strings"

	"armnet/internal/sortx"
)

// The instrument model is deliberately small and allocation-conscious:
// three kinds (counter, gauge, fixed-bucket histogram), each identified
// by a name plus an optional label set. Hot-path callers hold instrument
// pointers; the registry's map lookup happens once per (name, labels)
// pair. Everything is sim-time and single-threaded — the observer runs
// inside the deterministic event loop, so there are no atomics and no
// wall-clock reads anywhere.

// seriesKey renders the canonical identity of a series: the name alone,
// or name{k1="v1",k2="v2"} with keys sorted. The rendered key doubles as
// the Prometheus sample line prefix and as the deterministic sort key of
// every export.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range sortx.Keys(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotone sum. Exported so sibling observability layers
// (internal/obs/live) can build on the same instrument model and share
// the Snapshot/Merge/Prometheus machinery.
type Counter struct {
	name   string
	labels map[string]string
	v      float64
}

// Add increases the counter by d.
func (c *Counter) Add(d float64) { c.v += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Gauge is a point-in-time value.
type Gauge struct {
	name   string
	labels map[string]string
	v      float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is a fixed-boundary histogram: bounds are upper bucket edges
// in ascending order, counts has len(bounds)+1 entries (the last is the
// overflow bucket). Fixed boundaries are what make cross-replication
// merges well-defined.
type Histogram struct {
	name   string
	labels map[string]string
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Registry owns every instrument of one observer. Lookups create on
// first use, so only series that actually fired appear in snapshots
// (with the fixed core set pre-registered by the observer so the
// snapshot shape is stable across runs of the same scenario family).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Counter returns (creating on first use) the counter for (name, labels).
func (r *Registry) Counter(name string, labels map[string]string) *Counter {
	k := seriesKey(name, labels)
	c := r.counters[k]
	if c == nil {
		c = &Counter{name: name, labels: copyLabels(labels)}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels map[string]string) *Gauge {
	k := seriesKey(name, labels)
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{name: name, labels: copyLabels(labels)}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the fixed-bucket histogram
// for (name, labels). Callers must pass identical bounds on every lookup
// of the same series.
func (r *Registry) Histogram(name string, labels map[string]string, bounds []float64) *Histogram {
	k := seriesKey(name, labels)
	h := r.hists[k]
	if h == nil {
		h = &Histogram{
			name:   name,
			labels: copyLabels(labels),
			bounds: bounds,
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}
