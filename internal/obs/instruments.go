package obs

import (
	"strings"

	"armnet/internal/sortx"
)

// The instrument model is deliberately small and allocation-conscious:
// three kinds (counter, gauge, fixed-bucket histogram), each identified
// by a name plus an optional label set. Hot-path callers hold instrument
// pointers; the registry's map lookup happens once per (name, labels)
// pair. Everything is sim-time and single-threaded — the observer runs
// inside the deterministic event loop, so there are no atomics and no
// wall-clock reads anywhere.

// seriesKey renders the canonical identity of a series: the name alone,
// or name{k1="v1",k2="v2"} with keys sorted. The rendered key doubles as
// the Prometheus sample line prefix and as the deterministic sort key of
// every export.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range sortx.Keys(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

type counter struct {
	name   string
	labels map[string]string
	v      float64
}

func (c *counter) add(d float64) { c.v += d }
func (c *counter) inc()          { c.v++ }

type gauge struct {
	name   string
	labels map[string]string
	v      float64
}

func (g *gauge) set(v float64) { g.v = v }

// histogram is a fixed-boundary histogram: bounds are upper bucket edges
// in ascending order, counts has len(bounds)+1 entries (the last is the
// overflow bucket). Fixed boundaries are what make cross-replication
// merges well-defined.
type histogram struct {
	name   string
	labels map[string]string
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// registry owns every instrument of one observer. Lookups create on
// first use, so only series that actually fired appear in snapshots
// (with the fixed core set pre-registered by the observer so the
// snapshot shape is stable across runs of the same scenario family).
type registry struct {
	counters map[string]*counter
	gauges   map[string]*gauge
	hists    map[string]*histogram
}

func newRegistry() *registry {
	return &registry{
		counters: make(map[string]*counter),
		gauges:   make(map[string]*gauge),
		hists:    make(map[string]*histogram),
	}
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

func (r *registry) counter(name string, labels map[string]string) *counter {
	k := seriesKey(name, labels)
	c := r.counters[k]
	if c == nil {
		c = &counter{name: name, labels: copyLabels(labels)}
		r.counters[k] = c
	}
	return c
}

func (r *registry) gauge(name string, labels map[string]string) *gauge {
	k := seriesKey(name, labels)
	g := r.gauges[k]
	if g == nil {
		g = &gauge{name: name, labels: copyLabels(labels)}
		r.gauges[k] = g
	}
	return g
}

func (r *registry) histogram(name string, labels map[string]string, bounds []float64) *histogram {
	k := seriesKey(name, labels)
	h := r.hists[k]
	if h == nil {
		h = &histogram{
			name:   name,
			labels: copyLabels(labels),
			bounds: bounds,
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}
