// Package obs is the deterministic observability layer: a pure
// event-bus subscriber that reconstructs per-connection lifecycle spans
// and maintains sim-time instruments (counters, gauges, fixed-bucket
// histograms) for the quantities the paper reports — setup latency,
// handoff interruption time, maxmin convergence cost, per-cell committed
// utilization, overload stage dwell, and three-level predictor hit rate.
//
// Two properties are load-bearing and pinned by tests:
//
//   - Zero cost when disabled. With core.Config.Obs nil nothing here is
//     constructed, no subscription exists, and event traces are
//     byte-identical to a build without the package.
//   - Zero perturbation when enabled. The observer never publishes
//     events, never schedules simulator work, and never touches an RNG,
//     so enabling it leaves the event trace byte-identical too; all its
//     clocks are the simulated times stamped on the records it observes.
//
// Snapshots are deterministic: merged in replication order they are
// byte-identical at any worker count (see Snapshot.Merge).
package obs

import (
	"io"

	"armnet/internal/eventbus"
	"armnet/internal/sortx"
	"armnet/internal/stats"
)

// Options configures an Observer. The zero value is valid: spans are
// still reconstructed (and counted in armnet_spans_total), just not
// exported.
type Options struct {
	// Spans, when non-nil, receives one JSON line per closed span.
	Spans io.Writer `json:"-"`
}

// CellUtil is one cell's committed downlink utilization at sample time:
// (sum of committed minima + advance reservations) / capacity.
type CellUtil struct {
	Cell string
	Util float64
}

// LinkBottleneck is the size of one link's bottleneck set M(l).
type LinkBottleneck struct {
	Link string
	Size int
}

// Sources are the pull-side taps the observer samples on relevant
// events; the core wires them to the ledger and the maxmin protocol.
// Both funcs must return deterministically ordered slices. Nil funcs
// disable the corresponding instruments.
type Sources struct {
	// CellUtilization returns every cell's committed utilization, sorted
	// by cell ID.
	CellUtilization func() []CellUtil
	// Bottlenecks returns the current maxmin bottleneck set sizes, sorted
	// by link ID.
	Bottlenecks func() []LinkBottleneck
	// OverloadArmed reports whether the overload subsystem is active, so
	// Finish can attribute full "normal" dwell to cells that never
	// transitioned.
	OverloadArmed bool
}

// Histogram bucket bounds (upper edges, seconds or dimensionless).
// Fixed bounds are the cross-replication merge contract; changing them
// invalidates checked-in snapshot goldens.
var (
	setupLatencyBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	interruptionBounds = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	maxminRoundBounds  = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	maxminPacketBounds = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
)

type stageState struct {
	stage string
	since float64
}

// Observer is one replication's observability state. It is
// single-threaded (it runs inside the deterministic event loop) and is
// attached with New before the simulation starts.
type Observer struct {
	reg   *Registry
	spans *spanBuilder
	src   Sources

	// Hot-path cached instruments.
	requests     *Counter
	admitted     *Counter
	attempts     *Counter
	predicted    *Counter
	dropped      *Counter
	adaptUpdates *Counter
	convergences *Counter
	setupHist    *Histogram
	interruptOn  *Histogram // predicted="true"
	interruptOff *Histogram // predicted="false"
	roundsHist   *Histogram
	packetsHist  *Histogram
	events       map[eventbus.Kind]*Counter

	util  map[string]*stats.TimeWeighted
	dwell map[string]*stageState

	lastSessions int
	lastMessages int
	burstRounds  int

	finished bool
}

// New builds an observer over the bus. It registers exactly one
// catch-all subscriber and pre-registers the core instrument set so the
// snapshot shape is stable even for quiet runs.
func New(bus *eventbus.Bus, src Sources, opts Options) *Observer {
	reg := NewRegistry()
	o := &Observer{
		reg:    reg,
		src:    src,
		events: make(map[eventbus.Kind]*Counter),
		util:   make(map[string]*stats.TimeWeighted),
		dwell:  make(map[string]*stageState),

		requests:     reg.Counter("armnet_connection_requests_total", nil),
		admitted:     reg.Counter("armnet_connections_admitted_total", nil),
		attempts:     reg.Counter("armnet_handoff_attempts_total", nil),
		predicted:    reg.Counter("armnet_handoffs_predicted_total", nil),
		dropped:      reg.Counter("armnet_handoffs_dropped_total", nil),
		adaptUpdates: reg.Counter("armnet_adaptation_updates_total", nil),
		convergences: reg.Counter("armnet_maxmin_convergences_total", nil),
		setupHist:    reg.Histogram("armnet_setup_latency_seconds", nil, setupLatencyBounds),
		interruptOn: reg.Histogram("armnet_handoff_interruption_seconds",
			map[string]string{"predicted": "true"}, interruptionBounds),
		interruptOff: reg.Histogram("armnet_handoff_interruption_seconds",
			map[string]string{"predicted": "false"}, interruptionBounds),
		roundsHist:  reg.Histogram("armnet_maxmin_rounds_to_converge", nil, maxminRoundBounds),
		packetsHist: reg.Histogram("armnet_maxmin_control_packets", nil, maxminPacketBounds),
	}
	o.spans = newSpanBuilder(opts.Spans, func(name string) {
		o.reg.Counter("armnet_spans_total", map[string]string{"name": name}).Inc()
	})
	o.sampleUtil(0)
	bus.Subscribe(o.observe)
	return o
}

// observe folds one bus record into the instruments and span state.
func (o *Observer) observe(r eventbus.Record) {
	k := r.Event.Kind()
	ec := o.events[k]
	if ec == nil {
		ec = o.reg.Counter("armnet_events_total", map[string]string{"kind": k.String()})
		o.events[k] = ec
	}
	ec.Inc()

	o.spans.observe(r)

	t := r.Time
	switch ev := r.Event.(type) {
	case eventbus.ConnectionRequested:
		o.requests.Inc()
	case eventbus.ConnectionAdmitted:
		o.admitted.Inc()
		o.sampleUtil(t)
	case eventbus.ConnectionBlocked:
		reason := ev.Reason
		if reason == "" {
			reason = "unspecified"
		}
		o.reg.Counter("armnet_connections_blocked_total", map[string]string{"reason": reason}).Inc()
	case eventbus.ConnectionClosed:
		o.sampleUtil(t)
	case eventbus.HandoffAttempt:
		o.attempts.Inc()
		if ev.Predicted {
			o.predicted.Inc()
		}
	case eventbus.HandoffOutcome:
		if ev.Dropped {
			o.dropped.Inc()
		}
		o.sampleUtil(t)
	case eventbus.HandoffLatency:
		if ev.Predicted {
			o.interruptOn.Observe(ev.Latency)
		} else {
			o.interruptOff.Observe(ev.Latency)
		}
	case eventbus.SignalCommit:
		o.setupHist.Observe(ev.Latency)
	case eventbus.BandwidthChange:
		o.adaptUpdates.Inc()
	case eventbus.AdaptationRound:
		if ev.Round > o.burstRounds {
			o.burstRounds = ev.Round
		}
	case eventbus.MaxminConverged:
		o.finishBurst(ev)
	case eventbus.AdvanceReservation, eventbus.PolicyReservation,
		eventbus.HoldReclaimed, eventbus.CapacityChange:
		o.sampleUtil(t)
	case eventbus.DegradeCascade:
		o.sampleUtil(t)
	case eventbus.OverloadStage:
		o.stageChange(ev, t)
	case eventbus.SetupShed:
		o.reg.Counter("armnet_setup_sheds_total", map[string]string{"reason": ev.Reason}).Inc()
	case eventbus.BreakerState:
		o.reg.Counter("armnet_breaker_transitions_total", map[string]string{"to": ev.To}).Inc()
	}
}

// finishBurst closes one maxmin adaptation burst: the deltas of the
// protocol's cumulative session/message totals since the previous
// quiescent point are this burst's cost.
func (o *Observer) finishBurst(ev eventbus.MaxminConverged) {
	msgs := ev.Messages - o.lastMessages
	if msgs > 0 || o.burstRounds > 0 {
		o.convergences.Inc()
		o.roundsHist.Observe(float64(o.burstRounds))
		o.packetsHist.Observe(float64(msgs))
	}
	o.lastSessions = ev.Sessions
	o.lastMessages = ev.Messages
	o.burstRounds = 0
	if o.src.Bottlenecks != nil {
		for _, lb := range o.src.Bottlenecks() {
			o.reg.Gauge("armnet_maxmin_bottleneck_set_size",
				map[string]string{"link": lb.Link}).Set(float64(lb.Size))
		}
	}
}

// stageChange charges the dwell of the stage being left and opens the
// new one. Cells are tracked from their first transition; Finish settles
// the rest.
func (o *Observer) stageChange(ev eventbus.OverloadStage, t float64) {
	st := o.dwell[ev.Cell]
	if st == nil {
		st = &stageState{stage: ev.From}
		o.dwell[ev.Cell] = st
	}
	o.reg.Counter("armnet_overload_stage_dwell_seconds",
		map[string]string{"cell": ev.Cell, "stage": st.stage}).Add(t - st.since)
	o.reg.Counter("armnet_overload_transitions_total",
		map[string]string{"cell": ev.Cell, "to": ev.To}).Inc()
	st.stage = ev.To
	st.since = t
}

// sampleUtil feeds the per-cell committed-utilization integrators at
// simulated time t.
func (o *Observer) sampleUtil(t float64) {
	if o.src.CellUtilization == nil {
		return
	}
	for _, cu := range o.src.CellUtilization() {
		tw := o.util[cu.Cell]
		if tw == nil {
			tw = &stats.TimeWeighted{}
			o.util[cu.Cell] = tw
		}
		tw.Set(t, cu.Util)
	}
}

// RecordPrediction resolves one movement prediction at handoff time.
// Level is the predictor level that produced it ("portable", "cell",
// "default"), class the zone class of the cell it was made in. Called
// directly by the core (not through the bus) so that enabling
// observability never changes the event stream.
func (o *Observer) RecordPrediction(level, class string, hit bool) {
	labels := map[string]string{"level": level, "class": class}
	o.reg.Counter("armnet_predictions_total", labels).Inc()
	if hit {
		o.reg.Counter("armnet_prediction_hits_total", labels).Inc()
	}
}

// Finish settles end-of-run state at simulated time end: open spans
// close with status "open", current overload stages are charged their
// final dwell (cells that never transitioned get the whole run as
// "normal" when overload is armed), and per-cell mean utilization gauges
// are computed. Idempotent; call before Snapshot.
func (o *Observer) Finish(end float64) {
	if o.finished {
		return
	}
	o.finished = true
	o.spans.finish(end)
	o.sampleUtil(end)
	for _, cell := range sortx.Keys(o.dwell) {
		st := o.dwell[cell]
		o.reg.Counter("armnet_overload_stage_dwell_seconds",
			map[string]string{"cell": cell, "stage": st.stage}).Add(end - st.since)
	}
	if o.src.OverloadArmed && o.src.CellUtilization != nil {
		for _, cu := range o.src.CellUtilization() {
			if o.dwell[cu.Cell] == nil {
				o.reg.Counter("armnet_overload_stage_dwell_seconds",
					map[string]string{"cell": cu.Cell, "stage": "normal"}).Add(end)
			}
		}
	}
	for _, cell := range sortx.Keys(o.util) {
		o.reg.Gauge("armnet_cell_utilization_mean",
			map[string]string{"cell": cell}).Set(o.util[cell].Mean(end))
	}
}

// Snapshot exports the current instrument state. Typically called after
// Finish; safe at any time.
func (o *Observer) Snapshot() *Snapshot { return o.reg.Snapshot() }

// SpanErr reports the first span-export write error, if any.
func (o *Observer) SpanErr() error { return o.spans.Err() }
