package live

import (
	"testing"

	"armnet/internal/raceflag"
	"armnet/internal/wire"
)

// The hot-path contract: a disarmed (nil) recorder costs one nil check
// per hook and never allocates, so live runs without -telemetry pay
// nothing for the instrumentation seams.

func BenchmarkLiveFrameTxDisabled(b *testing.B) {
	var c *Controller
	m := wire.Message(wire.Update{Conn: "conn-1", Hop: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.FrameTx("east", m, 24, true)
	}
}

func BenchmarkLiveFrameTxEnabled(b *testing.B) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	m := wire.Message(wire.Update{Conn: "conn-1", Hop: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.FrameTx("east", m, 24, true)
	}
}

func BenchmarkLiveFrameRxEnabled(b *testing.B) {
	n := NewNodeRecorder("east")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.FrameRx(wire.TUpdate, 24)
	}
}

func BenchmarkLiveSnapshot(b *testing.B) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	for _, agent := range []string{"core", "east", "west"} {
		c.FrameTx(agent, wire.Message(wire.Hello{Node: agent}), 12, true)
		c.LeaseRenew(agent, 0, 0.001, true)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Snapshot()
	}
}

// TestDisabledPathZeroAlloc pins the nil-recorder hooks at zero
// allocations (the race detector's instrumentation breaks the count, so
// the pin is skipped there — the benchmark above still records it).
func TestDisabledPathZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	var c *Controller
	var n *NodeRecorder
	m := wire.Message(wire.Update{Conn: "conn-1", Hop: 2})
	got := testing.AllocsPerRun(1000, func() {
		c.FrameTx("east", m, 24, true)
		c.Verdict("drop")
		c.LeaseRenew("east", 0, 1, true)
		c.HandoffBreak("conn-1", "a", "b")
		n.FrameRx(wire.TUpdate, 24)
		n.Malformed()
	})
	if got != 0 {
		t.Fatalf("disabled live hooks allocate %v per run, want 0", got)
	}
}
