// Package live is the wall-clock observability layer for the live
// control plane: per-node wire instruments and causal frame spans for
// the testnet's transport, lease, and fault machinery.
//
// The sim-side observer (internal/obs) subscribes to the event bus and
// measures the control plane's *decisions*; this package measures the
// *wire* — frames by kind and byte count, acks and losses, retransmits,
// lease traffic, fault verdicts, malformed input — from hook seams in
// internal/testnet, the same injection style internal/faults uses. The
// protocol packages stay untouched and the wire format is unchanged:
// spans are correlated purely from frame identities (conn, hop, commit
// flag) that already cross the wire.
//
// # Zero cost when disarmed
//
// Every hook is a method on a possibly-nil *Controller or *NodeRecorder
// and returns immediately on nil, so a run without observability pays
// one nil check per hook site: no allocations, no time reads, no trace
// perturbation. TestLiveObsZeroCost in internal/testnet pins the
// controller and node traces byte-identical with the layer disarmed,
// and the armed loopback run is pinned deterministic by golden.
//
// # Concurrency
//
// Unlike the sim observer (single-threaded inside the event loop), live
// recorders are scraped by a telemetry HTTP server while the run
// mutates them, so every method takes an internal mutex. Hook sites are
// hot but the critical sections are counter bumps; contention is the
// scrape, which is rare.
package live

import (
	"sync"

	"armnet/internal/eventbus"
	"armnet/internal/obs"
	"armnet/internal/wire"
)

// Histogram bucket bounds (upper edges, seconds). Fixed bounds are the
// merge contract, exactly as in the sim observer. Loopback round trips
// land in the first bucket (synchronous delivery takes zero sim time);
// the finer low edges exist for real UDP runs.
var wireRTTBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// Controller is the controller-process recorder: it counts every frame
// the transport sends, the lease manager's renewals, the fault layer's
// verdicts, and correlates cross-node spans from frame identities. A
// nil *Controller is a valid disarmed recorder — every method no-ops.
type Controller struct {
	mu  sync.Mutex
	reg *obs.Registry
	now func() float64
	sp  *correlator
}

// NewController returns an armed recorder reading time from now (the
// run's clock: sim seconds on loopback, wall seconds on UDP). A nil now
// stamps zero until SetNow injects a clock — the testnet run does this
// at wiring time, so callers that construct the recorder before the run
// exists (armnode's telemetry path) just pass nil.
func NewController(now func() float64) *Controller {
	if now == nil {
		now = func() float64 { return 0 }
	}
	c := &Controller{reg: obs.NewRegistry(), now: now}
	c.sp = newCorrelator(now,
		c.reg.Histogram("armnet_wire_setup_rtt_seconds", nil, wireRTTBounds),
		c.reg.Histogram("armnet_wire_handoff_break_seconds", nil, wireRTTBounds),
		c.reg.Histogram("armnet_wire_lease_rtt_seconds", nil, wireRTTBounds),
	)
	return c
}

// SetNow replaces the recorder's time source; the testnet run injects
// its own clock (sim seconds on loopback, wall seconds on UDP) at
// wiring time so spans share the run's coordinates.
func (c *Controller) SetNow(now func() float64) {
	if c == nil || now == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
	c.sp.now = now
}

// FrameTx records one payload frame handed to an agent: kind and byte
// counters, the ack/loss outcome, and the span correlator's view of the
// frame identity. Called from both transports' send paths.
func (c *Controller) FrameTx(agent string, m wire.Message, size int, acked bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kind := m.WireType().String()
	c.reg.Counter("armnet_wire_frames_tx_total", map[string]string{"kind": kind, "node": agent}).Inc()
	c.reg.Counter("armnet_wire_bytes_tx_total", map[string]string{"node": agent}).Add(float64(size))
	if acked {
		c.reg.Counter("armnet_wire_acks_total", map[string]string{"node": agent}).Inc()
	} else {
		c.reg.Counter("armnet_wire_unacked_total", map[string]string{"node": agent}).Inc()
	}
	c.sp.observeTx(m)
}

// Verdict records one fault-layer action by family: drop, dup, delay,
// reorder, partition, crash, restart.
func (c *Controller) Verdict(family string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("armnet_wire_fault_verdicts_total", map[string]string{"family": family}).Inc()
}

// LeaseRenew records one lease renewal round trip to an agent: the
// renewal counter, the RTT histogram, and a closed wire-lease span.
func (c *Controller) LeaseRenew(agent string, start, end float64, acked bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("armnet_wire_lease_renews_total", map[string]string{"node": agent}).Inc()
	if !acked {
		c.reg.Counter("armnet_wire_lease_misses_total", map[string]string{"node": agent}).Inc()
	}
	c.sp.leaseSpan(agent, start, end, acked)
}

// LeaseReclaim records one connection torn down by lease expiry.
func (c *Controller) LeaseReclaim(conn string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("armnet_wire_lease_reclaims_total", nil).Inc()
	c.sp.abort(conn, "lease-reclaimed")
}

// Resync records one controller-side resync handshake with a restarted
// or healed agent.
func (c *Controller) Resync(agent string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Counter("armnet_wire_resyncs_total", map[string]string{"node": agent}).Inc()
}

// HandoffBreak marks the break-before-make instant of a handoff: the
// old path is released and the wire-handoff span opens; it closes when
// the replacement setup's last commit frame goes out.
func (c *Controller) HandoffBreak(conn, from, to string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sp.handoffBreak(conn, from, to)
}

// Attach subscribes bus-carried controller events — retransmits by
// protocol and setup give-ups by reason. Subscribers only read, so the
// bus trace is unchanged (the zero-perturbation contract the sim
// observer already pins).
func (c *Controller) Attach(bus *eventbus.Bus) {
	if c == nil || bus == nil {
		return
	}
	bus.Subscribe(func(rec eventbus.Record) {
		ev := rec.Event.(eventbus.ControlRetransmit)
		c.mu.Lock()
		c.reg.Counter("armnet_wire_retransmits_total", map[string]string{"proto": ev.Proto}).Inc()
		c.mu.Unlock()
	}, eventbus.KindControlRetransmit)
	bus.Subscribe(func(rec eventbus.Record) {
		ev := rec.Event.(eventbus.SignalAbort)
		c.mu.Lock()
		c.reg.Counter("armnet_wire_giveups_total", map[string]string{"reason": ev.Reason}).Inc()
		c.sp.abort(ev.Conn, ev.Reason)
		c.mu.Unlock()
	}, eventbus.KindSignalAbort)
}

// Finish closes every still-open span at the given time, in sorted
// connection order (deterministic output). Idempotent.
func (c *Controller) Finish(end float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sp.finish(end)
}

// Snapshot exports the controller registry's current state. Safe to
// call concurrently with the run (the telemetry scrape path).
func (c *Controller) Snapshot() *obs.Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Snapshot()
}

// Spans returns a copy of the closed wire spans in closure order.
func (c *Controller) Spans() []obs.Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Span(nil), c.sp.closed...)
}

// SpansJSONL renders the closed spans one JSON object per line, the
// same shape as sim span exports.
func (c *Controller) SpansJSONL() []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sp.jsonl()
}

// NodeRecorder is the node-agent recorder: receive-side counters for
// one agent, labeled with its name so cluster merges stay per-node. A
// nil *NodeRecorder is a valid disarmed recorder.
type NodeRecorder struct {
	mu   sync.Mutex
	reg  *obs.Registry
	node string
}

// NewNodeRecorder returns an armed recorder for the named agent.
func NewNodeRecorder(node string) *NodeRecorder {
	return &NodeRecorder{reg: obs.NewRegistry(), node: node}
}

// FrameRx records one decoded frame of the given kind and encoded size.
func (n *NodeRecorder) FrameRx(t wire.Type, size int) {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.Counter("armnet_wire_frames_rx_total", map[string]string{"kind": t.String(), "node": n.node}).Inc()
	n.reg.Counter("armnet_wire_bytes_rx_total", map[string]string{"node": n.node}).Add(float64(size))
}

// Malformed records one undecodable frame.
func (n *NodeRecorder) Malformed() {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.Counter("armnet_wire_malformed_total", map[string]string{"node": n.node}).Inc()
}

// Oversized records one datagram exceeding wire.MaxFrame.
func (n *NodeRecorder) Oversized() {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.Counter("armnet_wire_oversized_total", map[string]string{"node": n.node}).Inc()
}

// Restart records one crash-restart lifecycle transition.
func (n *NodeRecorder) Restart() {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.Counter("armnet_wire_node_restarts_total", map[string]string{"node": n.node}).Inc()
}

// Snapshot exports the node registry's current state.
func (n *NodeRecorder) Snapshot() *obs.Snapshot {
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reg.Snapshot()
}

// ClusterSnapshot merges the controller snapshot with every node
// snapshot, in slice order, into one cluster view (nil recorders are
// skipped). Node series carry {node} labels, so nothing collides.
func ClusterSnapshot(ctrl *Controller, nodes []*NodeRecorder) (*obs.Snapshot, error) {
	snaps := make([]*obs.Snapshot, 0, len(nodes)+1)
	snaps = append(snaps, ctrl.Snapshot())
	for _, n := range nodes {
		snaps = append(snaps, n.Snapshot())
	}
	merged, err := obs.MergeAll(snaps)
	if err != nil {
		return nil, err
	}
	if merged != nil {
		// The cluster view is one logical export, not an averaged
		// replication set: every counter is already a disjoint series.
		merged.Runs = 1
	}
	return merged, nil
}
