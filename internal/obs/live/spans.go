package live

import (
	"encoding/json"
	"fmt"

	"armnet/internal/obs"
	"armnet/internal/sortx"
	"armnet/internal/wire"
)

// correlator reconstructs cross-node spans from frame identities alone.
// Signal setup frames carry (conn, hop); the forward pass uses hops
// 0..n-1 and the commit pass retraces them as n..2n-1, so the span of a
// setup round trip is first-setup-tx → commit-tx at hop 2n-1, with n
// derived from the highest forward hop observed — no wire change, no
// controller-internal state. Handoff spans open at the runner's
// break-before-make instant and close when the replacement setup's last
// commit goes out; lease spans are single renewal round trips.
//
// Callers hold the owning Controller's mutex; the correlator itself is
// not concurrency-safe.
type correlator struct {
	now      func() float64
	setups   map[string]*setupState
	handoffs map[string]*obs.Span
	next     map[string]int
	closed   []obs.Span

	setupHist   *obs.Histogram
	handoffHist *obs.Histogram
	leaseHist   *obs.Histogram
}

// setupState is one open wire-setup span plus the highest forward hop
// seen, from which the closing commit hop (2*maxHop+1) is derived.
type setupState struct {
	span   *obs.Span
	maxHop int
}

func newCorrelator(now func() float64, setup, handoff, lease *obs.Histogram) *correlator {
	return &correlator{
		now:         now,
		setups:      make(map[string]*setupState),
		handoffs:    make(map[string]*obs.Span),
		next:        make(map[string]int),
		setupHist:   setup,
		handoffHist: handoff,
		leaseHist:   lease,
	}
}

// span opens a new wire span for the given identity. IDs take the form
// "conn#wN" — the "w" marks the wire namespace so live spans never
// collide with the sim observer's "conn#N" lifecycle spans.
func (co *correlator) span(conn, name string, start float64) *obs.Span {
	n := co.next[conn]
	co.next[conn] = n + 1
	return &obs.Span{
		ID:    fmt.Sprintf("%s#w%d", conn, n),
		Conn:  conn,
		Name:  name,
		Start: start,
	}
}

// emit closes a span and records its duration in the histogram.
func (co *correlator) emit(s *obs.Span, end float64, status string, h *obs.Histogram) {
	s.End = end
	s.Status = status
	if s.Attrs != nil {
		s.Attrs.Latency = end - s.Start
		if *s.Attrs == (obs.SpanAttrs{}) {
			s.Attrs = nil
		}
	}
	if h != nil {
		h.Observe(end - s.Start)
	}
	co.closed = append(co.closed, *s)
}

// observeTx folds one transmitted frame into the span state.
func (co *correlator) observeTx(m wire.Message) {
	switch f := m.(type) {
	case wire.SignalSetup:
		st := co.setups[f.Conn]
		if st == nil {
			st = &setupState{span: co.span(f.Conn, "wire-setup", co.now())}
			st.span.Attrs = &obs.SpanAttrs{}
			co.setups[f.Conn] = st
		}
		if int(f.Hop) > st.maxHop {
			st.maxHop = int(f.Hop)
		}
	case wire.SignalCommit:
		st := co.setups[f.Conn]
		if st == nil {
			return
		}
		if int(f.Hop) == 2*st.maxHop+1 {
			co.emit(st.span, co.now(), "committed", co.setupHist)
			delete(co.setups, f.Conn)
			if h := co.handoffs[f.Conn]; h != nil {
				co.emit(h, co.now(), "ok", co.handoffHist)
				delete(co.handoffs, f.Conn)
			}
		}
	case wire.SignalAbort:
		co.abort(f.Conn, f.Reason)
	}
}

// abort closes any open setup and handoff spans for the connection.
func (co *correlator) abort(conn, reason string) {
	if st := co.setups[conn]; st != nil {
		st.span.Attrs.Reason = reason
		co.emit(st.span, co.now(), "aborted", co.setupHist)
		delete(co.setups, conn)
	}
	if h := co.handoffs[conn]; h != nil {
		if h.Attrs == nil {
			h.Attrs = &obs.SpanAttrs{}
		}
		h.Attrs.Reason = reason
		co.emit(h, co.now(), "dropped", co.handoffHist)
		delete(co.handoffs, conn)
	}
}

// handoffBreak opens the break-before-make span (closing any stale
// predecessor as "open" first).
func (co *correlator) handoffBreak(conn, from, to string) {
	if h := co.handoffs[conn]; h != nil {
		co.emit(h, co.now(), "open", co.handoffHist)
	}
	s := co.span(conn, "wire-handoff", co.now())
	s.Attrs = &obs.SpanAttrs{From: from, To: to}
	co.handoffs[conn] = s
}

// leaseSpan records one renewal round trip as an already-closed span.
func (co *correlator) leaseSpan(agent string, start, end float64, acked bool) {
	s := co.span(agent, "wire-lease", start)
	status := "ok"
	if !acked {
		status = "lost"
	}
	s.Attrs = &obs.SpanAttrs{}
	co.emit(s, end, status, co.leaseHist)
}

// finish closes every still-open span in sorted identity order, so the
// trailing output is deterministic. Idempotent.
func (co *correlator) finish(end float64) {
	for _, conn := range sortx.Keys(co.setups) {
		st := co.setups[conn]
		co.emit(st.span, end, "open", co.setupHist)
	}
	co.setups = make(map[string]*setupState)
	for _, conn := range sortx.Keys(co.handoffs) {
		co.emit(co.handoffs[conn], end, "open", co.handoffHist)
	}
	co.handoffs = make(map[string]*obs.Span)
}

// jsonl renders the closed spans one JSON object per line.
func (co *correlator) jsonl() []byte {
	var out []byte
	for i := range co.closed {
		line, err := json.Marshal(&co.closed[i])
		if err != nil {
			// Span contains only plain data types; Marshal cannot fail.
			panic(err)
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}
