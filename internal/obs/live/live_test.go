package live

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"armnet/internal/eventbus"
	"armnet/internal/obs"
	"armnet/internal/wire"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct{ t float64 }

func (f *fakeClock) Now() float64 { return f.t }

// TestNilRecordersNoOp proves the disarmed layer is inert: every hook on
// a nil recorder returns without touching anything.
func TestNilRecordersNoOp(t *testing.T) {
	var c *Controller
	c.FrameTx("core", wire.Hello{Node: "core"}, 10, true)
	c.Verdict("drop")
	c.LeaseRenew("core", 0, 1, true)
	c.LeaseReclaim("conn-1")
	c.Resync("core")
	c.HandoffBreak("conn-1", "c1", "c2")
	c.Attach(nil)
	c.Finish(1)
	if c.Snapshot() != nil || c.Spans() != nil || c.SpansJSONL() != nil {
		t.Fatal("nil controller leaked state")
	}
	var n *NodeRecorder
	n.FrameRx(wire.THello, 10)
	n.Malformed()
	n.Oversized()
	n.Restart()
	if n.Snapshot() != nil {
		t.Fatal("nil node recorder leaked state")
	}
}

// TestFrameCounters checks the tx/rx counter families and labels.
func TestFrameCounters(t *testing.T) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	c.FrameTx("east", wire.Hello{Node: "east"}, 12, true)
	c.FrameTx("east", wire.Hello{Node: "east"}, 12, false)
	c.FrameTx("west", wire.Update{Conn: "conn-1"}, 20, true)
	c.Verdict("drop")
	c.Verdict("drop")
	c.Resync("east")

	s := c.Snapshot()
	want := map[string]float64{
		"armnet_wire_frames_tx_total":      3,
		"armnet_wire_bytes_tx_total":       44,
		"armnet_wire_acks_total":           2,
		"armnet_wire_unacked_total":        1,
		"armnet_wire_fault_verdicts_total": 2,
		"armnet_wire_resyncs_total":        1,
	}
	for name, v := range want {
		if got := s.CounterTotal(name); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	prom := string(s.Prometheus())
	for _, line := range []string{
		`armnet_wire_frames_tx_total{kind="hello",node="east"} 2`,
		`armnet_wire_frames_tx_total{kind="update",node="west"} 1`,
		`armnet_wire_fault_verdicts_total{family="drop"} 2`,
	} {
		if !strings.Contains(prom, line) {
			t.Errorf("prometheus output missing %q:\n%s", line, prom)
		}
	}

	n := NewNodeRecorder("east")
	n.FrameRx(wire.THello, 12)
	n.FrameRx(wire.TUpdate, 20)
	n.Malformed()
	n.Oversized()
	n.Restart()
	ns := n.Snapshot()
	for name, v := range map[string]float64{
		"armnet_wire_frames_rx_total":     2,
		"armnet_wire_bytes_rx_total":      32,
		"armnet_wire_malformed_total":     1,
		"armnet_wire_oversized_total":     1,
		"armnet_wire_node_restarts_total": 1,
	} {
		if got := ns.CounterTotal(name); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

// TestSetupSpanCorrelation drives a 2-hop setup through its forward and
// commit passes and checks the round-trip span.
func TestSetupSpanCorrelation(t *testing.T) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	clk.t = 1.0
	c.FrameTx("core", wire.SignalSetup{Conn: "conn-1", Hop: 0}, 30, true)
	clk.t = 1.1
	c.FrameTx("east", wire.SignalSetup{Conn: "conn-1", Hop: 1}, 30, true)
	clk.t = 1.2
	c.FrameTx("east", wire.SignalCommit{Conn: "conn-1", Hop: 2}, 30, true)
	if got := c.Spans(); len(got) != 0 {
		t.Fatalf("span closed early: %+v", got)
	}
	clk.t = 1.5
	c.FrameTx("core", wire.SignalCommit{Conn: "conn-1", Hop: 3}, 30, true)

	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "wire-setup" || s.Status != "committed" || s.Conn != "conn-1" {
		t.Fatalf("bad span %+v", s)
	}
	if s.Start != 1.0 || s.End != 1.5 {
		t.Fatalf("span [%v,%v], want [1,1.5]", s.Start, s.End)
	}
	if s.Attrs == nil || s.Attrs.Latency != 0.5 {
		t.Fatalf("bad latency attrs %+v", s.Attrs)
	}
	if got := c.Snapshot().CounterTotal("armnet_wire_setup_rtt_seconds"); got != 0 {
		// RTTs live in the histogram, not a counter.
		t.Fatalf("unexpected counter %v", got)
	}
	var hist obs.HistSeries
	for _, h := range c.Snapshot().Histograms {
		if h.Name == "armnet_wire_setup_rtt_seconds" {
			hist = h
		}
	}
	if hist.Count != 1 || hist.Sum != 0.5 {
		t.Fatalf("setup rtt histogram count=%d sum=%v, want 1/0.5", hist.Count, hist.Sum)
	}
}

// TestHandoffSpan opens a break-before-make span and closes it on the
// replacement setup's final commit.
func TestHandoffSpan(t *testing.T) {
	clk := &fakeClock{t: 2.0}
	c := NewController(clk.Now)
	c.HandoffBreak("conn-1", "cell-a", "cell-b")
	clk.t = 2.1
	c.FrameTx("core", wire.SignalSetup{Conn: "conn-1", Hop: 0}, 30, true)
	clk.t = 2.4
	c.FrameTx("core", wire.SignalCommit{Conn: "conn-1", Hop: 1}, 30, true)

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want setup+handoff", len(spans))
	}
	var ho *obs.Span
	for i := range spans {
		if spans[i].Name == "wire-handoff" {
			ho = &spans[i]
		}
	}
	if ho == nil || ho.Status != "ok" || ho.Start != 2.0 || ho.End != 2.4 {
		t.Fatalf("bad handoff span %+v", ho)
	}
	if ho.Attrs == nil || ho.Attrs.From != "cell-a" || ho.Attrs.To != "cell-b" {
		t.Fatalf("bad handoff attrs %+v", ho.Attrs)
	}
}

// TestAbortClosesSpans checks that an abort frame closes both open span
// kinds with the carried reason.
func TestAbortClosesSpans(t *testing.T) {
	clk := &fakeClock{t: 3.0}
	c := NewController(clk.Now)
	c.HandoffBreak("conn-2", "cell-a", "cell-b")
	c.FrameTx("core", wire.SignalSetup{Conn: "conn-2", Hop: 0}, 30, true)
	clk.t = 3.2
	c.FrameTx("core", wire.SignalAbort{Conn: "conn-2", Hop: 0, Reason: "timeout"}, 30, true)

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		switch s.Name {
		case "wire-setup":
			if s.Status != "aborted" || s.Attrs.Reason != "timeout" {
				t.Fatalf("bad setup span %+v", s)
			}
		case "wire-handoff":
			if s.Status != "dropped" || s.Attrs.Reason != "timeout" {
				t.Fatalf("bad handoff span %+v", s)
			}
		default:
			t.Fatalf("unexpected span %+v", s)
		}
	}
}

// TestLeaseSpanAndBus exercises the lease hooks and the bus-fed
// retransmit/give-up counters.
func TestLeaseSpanAndBus(t *testing.T) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	c.LeaseRenew("east", 4.0, 4.01, true)
	c.LeaseRenew("west", 5.0, 5.25, false)
	c.LeaseReclaim("conn-9")

	bus := eventbus.New(clk)
	c.Attach(bus)
	eventbus.Pub(bus, eventbus.ControlRetransmit{Proto: "signal", Conn: "conn-1", Hop: 0, Attempt: 1})
	eventbus.Pub(bus, eventbus.ControlRetransmit{Proto: "maxmin", Conn: "conn-2", Hop: 1, Attempt: 2})
	eventbus.Pub(bus, eventbus.SignalAbort{Conn: "conn-3", Reason: "timeout", Hop: 1})

	s := c.Snapshot()
	for name, v := range map[string]float64{
		"armnet_wire_lease_renews_total":   2,
		"armnet_wire_lease_misses_total":   1,
		"armnet_wire_lease_reclaims_total": 1,
		"armnet_wire_retransmits_total":    2,
		"armnet_wire_giveups_total":        1,
	} {
		if got := s.CounterTotal(name); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d lease spans, want 2", len(spans))
	}
	if spans[0].Status != "ok" || spans[1].Status != "lost" {
		t.Fatalf("lease statuses %q/%q", spans[0].Status, spans[1].Status)
	}
}

// TestFinishDeterministic proves trailing open spans close in sorted
// order and the JSONL rendering is valid line-delimited JSON.
func TestFinishDeterministic(t *testing.T) {
	clk := &fakeClock{t: 1.0}
	c := NewController(clk.Now)
	c.FrameTx("core", wire.SignalSetup{Conn: "conn-b", Hop: 0}, 30, true)
	c.FrameTx("core", wire.SignalSetup{Conn: "conn-a", Hop: 0}, 30, true)
	c.Finish(9.0)
	c.Finish(9.0) // idempotent

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Conn != "conn-a" || spans[1].Conn != "conn-b" {
		t.Fatalf("finish order %q,%q not sorted", spans[0].Conn, spans[1].Conn)
	}
	for _, s := range spans {
		if s.Status != "open" || s.End != 9.0 {
			t.Fatalf("bad trailing span %+v", s)
		}
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(c.SpansJSONL(), []byte("\n")), []byte("\n")) {
		var s obs.Span
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
	}
}

// TestClusterSnapshotMerge merges controller and node views and checks
// per-node series survive with their labels.
func TestClusterSnapshotMerge(t *testing.T) {
	clk := &fakeClock{}
	c := NewController(clk.Now)
	c.FrameTx("east", wire.Hello{Node: "east"}, 12, true)
	ne := NewNodeRecorder("east")
	ne.FrameRx(wire.THello, 12)
	nw := NewNodeRecorder("west")
	nw.Malformed()

	merged, err := ClusterSnapshot(c, []*NodeRecorder{ne, nw})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Runs != 1 {
		t.Fatalf("merged runs = %d, want 1", merged.Runs)
	}
	prom := string(merged.Prometheus())
	for _, line := range []string{
		`armnet_wire_frames_tx_total{kind="hello",node="east"} 1`,
		`armnet_wire_frames_rx_total{kind="hello",node="east"} 1`,
		`armnet_wire_malformed_total{node="west"} 1`,
	} {
		if !strings.Contains(prom, line) {
			t.Errorf("cluster view missing %q:\n%s", line, prom)
		}
	}
	// Nil members are skipped, not fatal.
	if _, err := ClusterSnapshot(nil, []*NodeRecorder{nil}); err != nil {
		t.Fatal(err)
	}
}
