package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"armnet/internal/eventbus"
)

func collectSpans(t *testing.T, buf *bytes.Buffer) []Span {
	t.Helper()
	var out []Span
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		out = append(out, s)
	}
	return out
}

func TestSpanBuilderFinishClosesOpenSorted(t *testing.T) {
	var buf bytes.Buffer
	sb := newSpanBuilder(&buf, func(string) {})
	// Two connections left open; finish must close them in sorted order.
	sb.observe(eventbus.Record{Time: 1, Event: eventbus.ConnectionAdmitted{Conn: "c9", Portable: "p0"}})
	sb.observe(eventbus.Record{Time: 2, Event: eventbus.ConnectionAdmitted{Conn: "c1", Portable: "p1"}})
	sb.observe(eventbus.Record{Time: 3, Event: eventbus.HandoffAttempt{Conn: "c1", From: "a", To: "b"}})
	sb.finish(10)

	spans := collectSpans(t, &buf)
	var roots []Span
	for _, s := range spans {
		if s.Name == "lifecycle" {
			roots = append(roots, s)
		}
	}
	if len(roots) != 2 || roots[0].Conn != "c1" || roots[1].Conn != "c9" {
		t.Fatalf("roots = %+v, want c1 then c9", roots)
	}
	for _, s := range roots {
		if s.Status != "open" || s.End != 10 {
			t.Errorf("root %s = status %q end %v", s.ID, s.Status, s.End)
		}
	}
	// c1's unresolved handoff closed before its root, status open.
	var sawHandoff bool
	for _, s := range spans {
		if s.Conn == "c1" && s.Name == "handoff" {
			sawHandoff = true
			if s.Status != "open" || s.Parent != "c1#0" {
				t.Errorf("handoff span = %+v", s)
			}
		}
	}
	if !sawHandoff {
		t.Error("unresolved handoff span not exported")
	}
}

func TestSpanBuilderDegradeInterval(t *testing.T) {
	var buf bytes.Buffer
	sb := newSpanBuilder(&buf, func(string) {})
	sb.observe(eventbus.Record{Time: 0, Event: eventbus.ConnectionAdmitted{Conn: "c0"}})
	sb.observe(eventbus.Record{Time: 5, Event: eventbus.DegradeCascade{Conn: "c0", Link: "l0", Action: "degrade"}})
	// A second degrade while already degraded must not open a new span.
	sb.observe(eventbus.Record{Time: 6, Event: eventbus.DegradeCascade{Conn: "c0", Link: "l0", Action: "degrade"}})
	sb.observe(eventbus.Record{Time: 9, Event: eventbus.DegradeCascade{Conn: "c0", Link: "l0", Action: "restore"}})
	sb.observe(eventbus.Record{Time: 12, Event: eventbus.ConnectionClosed{Conn: "c0"}})

	var degrades []Span
	for _, s := range collectSpans(t, &buf) {
		if s.Name == "degrade" {
			degrades = append(degrades, s)
		}
	}
	if len(degrades) != 1 {
		t.Fatalf("degrade spans = %d, want 1", len(degrades))
	}
	d := degrades[0]
	if d.Start != 5 || d.End != 9 || d.Status != "restored" || d.Attrs == nil || d.Attrs.Link != "l0" {
		t.Errorf("degrade span = %+v", d)
	}
}

func TestSpanBuilderCountsWithoutWriter(t *testing.T) {
	counts := map[string]int{}
	sb := newSpanBuilder(nil, func(name string) { counts[name]++ })
	sb.observe(eventbus.Record{Time: 0, Event: eventbus.ConnectionAdmitted{Conn: "c0"}})
	sb.observe(eventbus.Record{Time: 1, Event: eventbus.ConnectionClosed{Conn: "c0"}})
	if counts["lifecycle"] != 1 || counts["setup"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestSpanBuilderLatchesWriteError(t *testing.T) {
	sb := newSpanBuilder(&failWriter{after: 1}, func(string) {})
	sb.observe(eventbus.Record{Time: 0, Event: eventbus.ConnectionAdmitted{Conn: "c0"}})
	sb.observe(eventbus.Record{Time: 1, Event: eventbus.ConnectionClosed{Conn: "c0"}})
	err := sb.Err()
	if err == nil || !strings.Contains(err.Error(), "span export") {
		t.Fatalf("Err = %v, want latched span export error", err)
	}
	// Further closes are no-ops on the writer but must not panic.
	sb.observe(eventbus.Record{Time: 2, Event: eventbus.ConnectionAdmitted{Conn: "c1"}})
	sb.finish(3)
	if sb.Err() != err {
		t.Fatalf("latched error changed: %v", sb.Err())
	}
}
