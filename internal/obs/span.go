package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"armnet/internal/eventbus"
	"armnet/internal/sortx"
)

// Span is one reconstructed interval of a connection's lifecycle. IDs
// are stable and causal: the root lifecycle span of conn-7 is "conn-7#0",
// and every child (setup, each handoff, each degrade interval) takes the
// next per-connection ordinal in creation order, with Parent naming the
// root. Times are simulated seconds.
type Span struct {
	ID     string     `json:"id"`
	Parent string     `json:"parent,omitempty"`
	Conn   string     `json:"conn"`
	Name   string     `json:"name"`
	Start  float64    `json:"start"`
	End    float64    `json:"end"`
	Status string     `json:"status"`
	Attrs  *SpanAttrs `json:"attrs,omitempty"`
}

// SpanAttrs carries the span's event-derived annotations; zero-valued
// fields are omitted from the JSONL encoding.
type SpanAttrs struct {
	Portable   string  `json:"portable,omitempty"`
	From       string  `json:"from,omitempty"`
	To         string  `json:"to,omitempty"`
	Link       string  `json:"link,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	Predicted  bool    `json:"predicted,omitempty"`
	BestEffort bool    `json:"best_effort,omitempty"`
	Holds      int     `json:"holds,omitempty"`
	Updates    int     `json:"updates,omitempty"`
	Latency    float64 `json:"latency,omitempty"`
	LastBW     float64 `json:"last_bw,omitempty"`
}

// connSpans is the open span state of one connection.
type connSpans struct {
	root    *Span
	setup   *Span
	handoff *Span
	degrade *Span
	next    int // next child ordinal
}

// spanBuilder reconstructs lifecycle spans from the event stream. Spans
// are exported (and counted) when they close; whatever is still open at
// Finish closes with status "open" in sorted connection order, so the
// JSONL output is deterministic end to end.
type spanBuilder struct {
	w     io.Writer // nil = build and count, don't export
	err   error
	open  map[string]*connSpans
	count func(name string) // spans_total hook
}

func newSpanBuilder(w io.Writer, count func(name string)) *spanBuilder {
	return &spanBuilder{w: w, open: make(map[string]*connSpans), count: count}
}

// Err reports the first span-export write error.
func (sb *spanBuilder) Err() error { return sb.err }

func (sb *spanBuilder) state(conn string, t float64) *connSpans {
	cs := sb.open[conn]
	if cs == nil {
		cs = &connSpans{
			root: &Span{ID: conn + "#0", Conn: conn, Name: "lifecycle", Start: t, Attrs: &SpanAttrs{}},
			next: 1,
		}
		sb.open[conn] = cs
	}
	return cs
}

func (cs *connSpans) child(conn, name string, t float64) *Span {
	s := &Span{
		ID:     fmt.Sprintf("%s#%d", conn, cs.next),
		Parent: cs.root.ID,
		Conn:   conn,
		Name:   name,
		Start:  t,
	}
	cs.next++
	return s
}

func (sb *spanBuilder) emit(s *Span, t float64, status string) {
	s.End = t
	s.Status = status
	if s.Attrs != nil && *s.Attrs == (SpanAttrs{}) {
		s.Attrs = nil
	}
	sb.count(s.Name)
	if sb.w == nil || sb.err != nil {
		return
	}
	line, err := json.Marshal(s)
	if err == nil {
		line = append(line, '\n')
		_, err = sb.w.Write(line)
	}
	if err != nil {
		sb.err = fmt.Errorf("obs: span export: %w", err)
	}
}

// close finishes a connection: open children first, then the root.
func (sb *spanBuilder) close(conn string, t float64, status string) {
	cs := sb.open[conn]
	if cs == nil {
		return
	}
	for _, child := range []**Span{&cs.setup, &cs.handoff, &cs.degrade} {
		if *child != nil {
			sb.emit(*child, t, "open")
			*child = nil
		}
	}
	sb.emit(cs.root, t, status)
	delete(sb.open, conn)
}

// observe folds one event into the span state.
func (sb *spanBuilder) observe(r eventbus.Record) {
	t := r.Time
	switch ev := r.Event.(type) {
	case eventbus.SignalHold:
		cs := sb.state(ev.Conn, t)
		if cs.setup == nil {
			cs.setup = cs.child(ev.Conn, "setup", t)
			cs.setup.Attrs = &SpanAttrs{}
		}
		cs.setup.Attrs.Holds++
	case eventbus.SignalCommit:
		cs := sb.state(ev.Conn, t)
		if cs.setup == nil {
			cs.setup = cs.child(ev.Conn, "setup", t)
			cs.setup.Attrs = &SpanAttrs{}
		}
		cs.setup.Attrs.Latency = ev.Latency
		sb.emit(cs.setup, t, "committed")
		cs.setup = nil
	case eventbus.SignalAbort:
		if cs := sb.open[ev.Conn]; cs != nil {
			if cs.setup != nil {
				cs.setup.Attrs.Reason = ev.Reason
				sb.emit(cs.setup, t, "aborted")
				cs.setup = nil
			}
			sb.close(ev.Conn, t, "aborted")
		}
	case eventbus.ConnectionAdmitted:
		cs := sb.state(ev.Conn, t)
		cs.root.Attrs.Portable = ev.Portable
		cs.root.Attrs.BestEffort = ev.BestEffort
		if cs.setup == nil && cs.next == 1 {
			// Instantaneous admission with no prior signaling: a
			// zero-length setup span keeps the lifecycle shape uniform
			// with the signaled path.
			setup := cs.child(ev.Conn, "setup", t)
			sb.emit(setup, t, "committed")
		}
	case eventbus.HandoffAttempt:
		cs := sb.state(ev.Conn, t)
		if cs.handoff != nil {
			sb.emit(cs.handoff, t, "open")
		}
		cs.handoff = cs.child(ev.Conn, "handoff", t)
		cs.handoff.Attrs = &SpanAttrs{From: ev.From, To: ev.To, Predicted: ev.Predicted}
	case eventbus.HandoffLatency:
		if cs := sb.open[ev.Conn]; cs != nil && cs.handoff != nil {
			cs.handoff.Attrs.Latency = ev.Latency
		}
	case eventbus.HandoffOutcome:
		cs := sb.open[ev.Conn]
		if cs == nil {
			return
		}
		if cs.handoff != nil {
			status := "ok"
			if ev.Dropped {
				status = "dropped"
			}
			sb.emit(cs.handoff, t, status)
			cs.handoff = nil
		}
		if ev.Dropped {
			sb.close(ev.Conn, t, "dropped")
		}
	case eventbus.DegradeCascade:
		cs := sb.open[ev.Conn]
		if cs == nil {
			return
		}
		switch ev.Action {
		case "degrade":
			if cs.degrade == nil {
				cs.degrade = cs.child(ev.Conn, "degrade", t)
				cs.degrade.Attrs = &SpanAttrs{Link: ev.Link}
			}
		case "restore":
			if cs.degrade != nil {
				sb.emit(cs.degrade, t, "restored")
				cs.degrade = nil
			}
		}
	case eventbus.BandwidthChange:
		if cs := sb.open[ev.Conn]; cs != nil {
			cs.root.Attrs.Updates++
			cs.root.Attrs.LastBW = ev.Bandwidth
		}
	case eventbus.ConnectionClosed:
		sb.close(ev.Conn, t, "closed")
	}
}

// finish closes every still-open connection at the end of the run.
func (sb *spanBuilder) finish(end float64) {
	for _, conn := range sortx.Keys(sb.open) {
		sb.close(conn, end, "open")
	}
}
