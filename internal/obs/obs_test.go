package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"armnet/internal/eventbus"
)

type fakeClock struct{ now float64 }

func (c *fakeClock) Now() float64 { return c.now }

// driveLifecycle publishes a small but representative event sequence:
// one signaled setup that commits, one that aborts, a predicted and an
// unpredicted handoff (the latter dropped), rate adaptation, and a
// maxmin burst.
func driveLifecycle(clk *fakeClock, bus *eventbus.Bus) {
	clk.now = 1
	bus.Publish(eventbus.ConnectionRequested{Portable: "p0"})
	bus.Publish(eventbus.SignalHold{Conn: "c0", Link: "l0"})
	bus.Publish(eventbus.SignalHold{Conn: "c0", Link: "l1"})
	clk.now = 1.02
	bus.Publish(eventbus.SignalCommit{Conn: "c0", Latency: 0.02})
	bus.Publish(eventbus.ConnectionAdmitted{Conn: "c0", Portable: "p0", Bandwidth: 2})

	clk.now = 2
	bus.Publish(eventbus.ConnectionRequested{Portable: "p1"})
	bus.Publish(eventbus.SignalHold{Conn: "c1", Link: "l0"})
	clk.now = 2.01
	bus.Publish(eventbus.SignalAbort{Conn: "c1", Reason: "insufficient", Hop: 1})
	bus.Publish(eventbus.ConnectionBlocked{Portable: "p1", Reason: "insufficient"})

	clk.now = 3
	bus.Publish(eventbus.AdaptationRound{Conn: "c0", Round: 1, Stamp: 1.5})
	bus.Publish(eventbus.AdaptationRound{Conn: "c0", Round: 2, Stamp: 1.75})
	bus.Publish(eventbus.BandwidthChange{Conn: "c0", Bandwidth: 1.75})
	bus.Publish(eventbus.MaxminConverged{Sessions: 1, Messages: 12})

	clk.now = 4
	bus.Publish(eventbus.HandoffAttempt{Conn: "c0", Portable: "p0", From: "cellA", To: "cellB", Predicted: true})
	bus.Publish(eventbus.HandoffLatency{Conn: "c0", Portable: "p0", Predicted: true, Latency: 0.004})
	bus.Publish(eventbus.HandoffOutcome{Conn: "c0", Portable: "p0"})

	clk.now = 5
	bus.Publish(eventbus.HandoffAttempt{Conn: "c0", Portable: "p0", From: "cellB", To: "cellC", Predicted: false})
	bus.Publish(eventbus.HandoffLatency{Conn: "c0", Portable: "p0", Predicted: false, Latency: 0.04})
	bus.Publish(eventbus.HandoffOutcome{Conn: "c0", Portable: "p0", Dropped: true})
}

func TestObserverLifecycle(t *testing.T) {
	clk := &fakeClock{}
	bus := eventbus.New(clk)
	var spans bytes.Buffer
	utils := []CellUtil{{Cell: "cellA", Util: 0.25}}
	o := New(bus, Sources{
		CellUtilization: func() []CellUtil { return utils },
		Bottlenecks:     func() []LinkBottleneck { return []LinkBottleneck{{Link: "l0", Size: 2}} },
	}, Options{Spans: &spans})

	driveLifecycle(clk, bus)
	o.RecordPrediction("portable", "office", true)
	o.RecordPrediction("cell", "corridor", false)
	o.Finish(10)
	if err := o.SpanErr(); err != nil {
		t.Fatalf("SpanErr: %v", err)
	}
	snap := o.Snapshot()

	wantCounters := map[string]float64{
		"armnet_connection_requests_total":                              2,
		"armnet_connections_admitted_total":                             1,
		`armnet_connections_blocked_total{reason="insufficient"}`:       1,
		"armnet_handoff_attempts_total":                                 2,
		"armnet_handoffs_predicted_total":                               1,
		"armnet_handoffs_dropped_total":                                 1,
		"armnet_adaptation_updates_total":                               1,
		"armnet_maxmin_convergences_total":                              1,
		`armnet_predictions_total{class="office",level="portable"}`:     1,
		`armnet_predictions_total{class="corridor",level="cell"}`:       1,
		`armnet_prediction_hits_total{class="office",level="portable"}`: 1,
	}
	got := map[string]float64{}
	for _, c := range snap.Counters {
		got[seriesKey(c.Name, c.Labels)] = c.Value
	}
	for k, want := range wantCounters {
		if got[k] != want {
			t.Errorf("counter %s = %v, want %v", k, got[k], want)
		}
	}
	if v, ok := got[`armnet_prediction_hits_total{class="corridor",level="cell"}`]; ok {
		t.Errorf("missed prediction recorded a hit (%v)", v)
	}

	hists := map[string]HistSeries{}
	for _, h := range snap.Histograms {
		hists[seriesKey(h.Name, h.Labels)] = h
	}
	if h := hists["armnet_setup_latency_seconds"]; h.Count != 1 || h.Sum != 0.02 {
		t.Errorf("setup latency hist = count %d sum %v", h.Count, h.Sum)
	}
	if h := hists[`armnet_handoff_interruption_seconds{predicted="true"}`]; h.Count != 1 || h.Sum != 0.004 {
		t.Errorf("predicted interruption hist = count %d sum %v", h.Count, h.Sum)
	}
	if h := hists[`armnet_handoff_interruption_seconds{predicted="false"}`]; h.Count != 1 || h.Sum != 0.04 {
		t.Errorf("unpredicted interruption hist = count %d sum %v", h.Count, h.Sum)
	}
	if h := hists["armnet_maxmin_rounds_to_converge"]; h.Count != 1 || h.Sum != 2 {
		t.Errorf("rounds hist = count %d sum %v (want one burst of 2 rounds)", h.Count, h.Sum)
	}
	if h := hists["armnet_maxmin_control_packets"]; h.Count != 1 || h.Sum != 12 {
		t.Errorf("packets hist = count %d sum %v", h.Count, h.Sum)
	}

	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[seriesKey(g.Name, g.Labels)] = g.Value
	}
	if gauges[`armnet_maxmin_bottleneck_set_size{link="l0"}`] != 2 {
		t.Errorf("bottleneck gauge = %v", gauges[`armnet_maxmin_bottleneck_set_size{link="l0"}`])
	}
	// Utilization was a constant 0.25 from t=0 on, so the mean is exact.
	if gauges[`armnet_cell_utilization_mean{cell="cellA"}`] != 0.25 {
		t.Errorf("utilization mean = %v", gauges[`armnet_cell_utilization_mean{cell="cellA"}`])
	}

	// Span export: every line parses; c0's root is dropped, c1's aborted.
	status := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(spans.String()), "\n") {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		status[s.ID] = s.Status
		if s.Parent != "" && s.Parent != s.Conn+"#0" {
			t.Errorf("span %s parent = %q", s.ID, s.Parent)
		}
	}
	for id, want := range map[string]string{
		"c0#0": "dropped", "c0#1": "committed", "c0#2": "ok", "c0#3": "dropped",
		"c1#0": "aborted", "c1#1": "aborted",
	} {
		if status[id] != want {
			t.Errorf("span %s status = %q, want %q", id, status[id], want)
		}
	}
}

// TestObserverZeroPerturbation pins the other half of the zero-cost
// contract: attaching an observer publishes nothing, so the bus sequence
// is exactly the driven event count.
func TestObserverZeroPerturbation(t *testing.T) {
	clk := &fakeClock{}
	ref := eventbus.New(clk)
	driveLifecycle(clk, ref)

	clk2 := &fakeClock{}
	bus := eventbus.New(clk2)
	o := New(bus, Sources{}, Options{})
	driveLifecycle(clk2, bus)
	o.Finish(10)

	if bus.Seq() != ref.Seq() {
		t.Fatalf("observer perturbed the stream: seq %d vs %d", bus.Seq(), ref.Seq())
	}
}

func TestObserverDwellAccounting(t *testing.T) {
	clk := &fakeClock{}
	bus := eventbus.New(clk)
	utils := []CellUtil{{Cell: "cellA", Util: 0}, {Cell: "cellB", Util: 0}}
	o := New(bus, Sources{
		CellUtilization: func() []CellUtil { return utils },
		OverloadArmed:   true,
	}, Options{})

	clk.now = 10
	bus.Publish(eventbus.OverloadStage{Cell: "cellA", From: "normal", To: "degrade", Util: 0.9})
	clk.now = 30
	bus.Publish(eventbus.OverloadStage{Cell: "cellA", From: "degrade", To: "normal", Util: 0.5})
	o.Finish(100)

	dwell := map[string]float64{}
	for _, c := range o.Snapshot().Counters {
		if c.Name == "armnet_overload_stage_dwell_seconds" {
			dwell[c.Labels["cell"]+"/"+c.Labels["stage"]] = c.Value
		}
	}
	if dwell["cellA/normal"] != 80 { // 10 before degrade + 70 after restore
		t.Errorf("cellA normal dwell = %v, want 80", dwell["cellA/normal"])
	}
	if dwell["cellA/degrade"] != 20 {
		t.Errorf("cellA degrade dwell = %v, want 20", dwell["cellA/degrade"])
	}
	if dwell["cellB/normal"] != 100 { // never transitioned, overload armed
		t.Errorf("cellB normal dwell = %v, want 100", dwell["cellB/normal"])
	}
}

// TestObserverDeterministicExports pins byte-identical renderings for
// identical event sequences.
func TestObserverDeterministicExports(t *testing.T) {
	render := func() ([]byte, []byte, []byte) {
		clk := &fakeClock{}
		bus := eventbus.New(clk)
		var spans bytes.Buffer
		o := New(bus, Sources{
			CellUtilization: func() []CellUtil { return []CellUtil{{Cell: "cellA", Util: 0.5}} },
		}, Options{Spans: &spans})
		driveLifecycle(clk, bus)
		o.Finish(10)
		snap := o.Snapshot()
		return snap.Prometheus(), snap.JSON(), spans.Bytes()
	}
	p1, j1, s1 := render()
	p2, j2, s2 := render()
	if !bytes.Equal(p1, p2) {
		t.Errorf("Prometheus rendering differs between identical runs")
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSON rendering differs between identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Errorf("span export differs between identical runs")
	}
}

func TestFinishIdempotent(t *testing.T) {
	clk := &fakeClock{}
	bus := eventbus.New(clk)
	o := New(bus, Sources{
		CellUtilization: func() []CellUtil { return []CellUtil{{Cell: "cellA", Util: 1}} },
		OverloadArmed:   true,
	}, Options{})
	o.Finish(50)
	first := o.Snapshot().Prometheus()
	o.Finish(75)
	if second := o.Snapshot().Prometheus(); !bytes.Equal(first, second) {
		t.Fatalf("second Finish changed the snapshot:\n%s\nvs\n%s", first, second)
	}
}
