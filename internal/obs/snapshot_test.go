package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func snapWith(runs int, counters, gauges map[string]float64) *Snapshot {
	s := &Snapshot{Runs: runs}
	for name, v := range counters {
		s.Counters = append(s.Counters, Series{Name: name, Value: v})
	}
	for name, v := range gauges {
		s.Gauges = append(s.Gauges, Series{Name: name, Value: v})
	}
	s.sort()
	return s
}

func TestMergeCountersAndGauges(t *testing.T) {
	a := snapWith(1, map[string]float64{"c": 3}, map[string]float64{"g": 10, "only_a": 4})
	b := snapWith(1, map[string]float64{"c": 5, "only_b": 2}, map[string]float64{"g": 20})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Runs != 2 {
		t.Errorf("Runs = %d", a.Runs)
	}
	got := map[string]float64{}
	for _, c := range a.Counters {
		got[c.Name] = c.Value
	}
	if got["c"] != 8 || got["only_b"] != 2 {
		t.Errorf("counters = %v", got)
	}
	for _, g := range a.Gauges {
		got[g.Name] = g.Value
	}
	// Gauges average over Runs; a series missing on one side counts as 0
	// there.
	if got["g"] != 15 {
		t.Errorf("gauge g = %v, want 15", got["g"])
	}
	if got["only_a"] != 2 {
		t.Errorf("gauge only_a = %v, want 2", got["only_a"])
	}
}

func TestMergeAllThreeWayGaugeAverage(t *testing.T) {
	snaps := []*Snapshot{
		snapWith(1, nil, map[string]float64{"g": 3}),
		nil, // skipped replication
		snapWith(1, nil, map[string]float64{"g": 6}),
		snapWith(1, nil, map[string]float64{"g": 9}),
	}
	out, err := MergeAll(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs != 3 {
		t.Errorf("Runs = %d", out.Runs)
	}
	if v := out.Gauges[0].Value; math.Abs(v-6) > 1e-12 {
		t.Errorf("gauge = %v, want 6", v)
	}
	// MergeAll deep-copies: the first input must be untouched.
	if snaps[0].Gauges[0].Value != 3 || snaps[0].Runs != 1 {
		t.Errorf("MergeAll mutated its first input: %+v", snaps[0])
	}
}

func TestMergeHistogramsAndBoundMismatch(t *testing.T) {
	h := func(bounds []float64, counts []uint64, sum float64, n uint64) *Snapshot {
		return &Snapshot{Runs: 1, Histograms: []HistSeries{{
			Name: "h", Bounds: bounds, Counts: counts, Sum: sum, Count: n,
		}}}
	}
	a := h([]float64{1, 2}, []uint64{1, 0, 2}, 7, 3)
	if err := a.Merge(h([]float64{1, 2}, []uint64{0, 4, 1}, 9, 5)); err != nil {
		t.Fatal(err)
	}
	got := a.Histograms[0]
	if got.Count != 8 || got.Sum != 16 {
		t.Errorf("merged hist count=%d sum=%v", got.Count, got.Sum)
	}
	for i, want := range []uint64{1, 4, 3} {
		if got.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, got.Counts[i], want)
		}
	}
	if err := a.Merge(h([]float64{1, 3}, []uint64{0, 0, 0}, 0, 0)); err == nil {
		t.Error("bound mismatch not rejected")
	}
	if err := a.Merge(h([]float64{1}, []uint64{0, 0}, 0, 0)); err == nil {
		t.Error("bound count mismatch not rejected")
	}
}

func TestPrometheusRendering(t *testing.T) {
	s := &Snapshot{
		Runs:     1,
		Counters: []Series{{Name: "armnet_x_total", Labels: map[string]string{"k": "v"}, Value: 3}},
		Histograms: []HistSeries{{
			Name: "armnet_lat", Bounds: []float64{0.1, 0.5}, Counts: []uint64{2, 1, 1}, Sum: 0.9, Count: 4,
		}},
	}
	out := string(s.Prometheus())
	for _, want := range []string{
		"# TYPE armnet_x_total counter\n",
		`armnet_x_total{k="v"} 3` + "\n",
		"# TYPE armnet_lat histogram\n",
		`armnet_lat_bucket{le="0.1"} 2` + "\n",
		`armnet_lat_bucket{le="0.5"} 3` + "\n",
		`armnet_lat_bucket{le="+Inf"} 4` + "\n",
		"armnet_lat_sum 0.9\n",
		"armnet_lat_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTripsStably(t *testing.T) {
	s := snapWith(1, map[string]float64{"c": 1}, map[string]float64{"g": 0.125})
	if !bytes.Equal(s.JSON(), s.JSON()) {
		t.Fatal("JSON rendering unstable")
	}
	if !bytes.HasSuffix(s.JSON(), []byte("\n")) {
		t.Fatal("JSON missing trailing newline")
	}
}

func TestQuantile(t *testing.T) {
	h := HistSeries{Bounds: []float64{1, 2, 4}, Counts: []uint64{2, 2, 0, 0}, Count: 4}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("p100 = %v, want 2", got)
	}
	over := HistSeries{Bounds: []float64{1}, Counts: []uint64{0, 3}, Count: 3}
	if got := over.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want last bound", got)
	}
	if got := (HistSeries{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestSummary(t *testing.T) {
	s := snapWith(1, map[string]float64{
		"armnet_connection_requests_total":  100,
		"armnet_connections_admitted_total": 90,
		"armnet_connections_blocked_total":  10,
		"armnet_handoff_attempts_total":     40,
		"armnet_handoffs_dropped_total":     2,
		"armnet_handoffs_predicted_total":   30,
		"armnet_adaptation_updates_total":   180,
	}, nil)
	sum := s.Summary()
	if sum.BlockRate != 0.1 {
		t.Errorf("BlockRate = %v", sum.BlockRate)
	}
	if sum.DropRate != 0.05 {
		t.Errorf("DropRate = %v", sum.DropRate)
	}
	if sum.Availability != 0.75 {
		t.Errorf("Availability = %v", sum.Availability)
	}
	if sum.MeanAdaptation != 2 {
		t.Errorf("MeanAdaptation = %v", sum.MeanAdaptation)
	}
	// Empty snapshot: no division by zero.
	zero := (&Snapshot{}).Summary()
	if zero.BlockRate != 0 || zero.DropRate != 0 || zero.MeanAdaptation != 0 {
		t.Errorf("zero summary = %+v", zero)
	}
}
