package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"armnet/internal/sortx"
)

// Series is one exported counter or gauge sample.
type Series struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistSeries is one exported fixed-bucket histogram. Bounds are the
// upper bucket edges; Counts has len(Bounds)+1 entries, the last being
// the overflow (+Inf) bucket, so the implicit +Inf edge never has to be
// JSON-encoded.
type HistSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Bounds []float64         `json:"bounds"`
	Counts []uint64          `json:"counts"`
	Sum    float64           `json:"sum"`
	Count  uint64            `json:"count"`
}

// Snapshot is a deterministic point-in-time export of every instrument:
// series are sorted by (name, labels), floats render with Go's shortest
// representation, and all payloads are structs — so both renderings are
// byte-comparable across runs and worker counts. Runs counts how many
// replications were merged into it (1 for a fresh snapshot); Merge uses
// it to average gauges.
type Snapshot struct {
	Runs       int          `json:"runs"`
	Counters   []Series     `json:"counters"`
	Gauges     []Series     `json:"gauges"`
	Histograms []HistSeries `json:"histograms"`
}

// snapshot exports the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Runs: 1}
	for _, k := range sortx.Keys(r.counters) {
		c := r.counters[k]
		s.Counters = append(s.Counters, Series{Name: c.name, Labels: copyLabels(c.labels), Value: c.v})
	}
	for _, k := range sortx.Keys(r.gauges) {
		g := r.gauges[k]
		s.Gauges = append(s.Gauges, Series{Name: g.name, Labels: copyLabels(g.labels), Value: g.v})
	}
	for _, k := range sortx.Keys(r.hists) {
		h := r.hists[k]
		s.Histograms = append(s.Histograms, HistSeries{
			Name:   h.name,
			Labels: copyLabels(h.labels),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		})
	}
	return s
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLine renders one sample line: key (name or name{labels}) value.
func promLine(b *strings.Builder, key string, v float64) {
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	b.WriteByte('\n')
}

// promKey renders a sample key with an extra label appended (for
// histogram le labels).
func promKey(name string, labels map[string]string, extraK, extraV string) string {
	merged := copyLabels(labels)
	if merged == nil {
		merged = map[string]string{}
	}
	merged[extraK] = extraV
	return seriesKey(name, merged)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: series order is the
// snapshot's sorted order and floats use the shortest representation.
func (s *Snapshot) Prometheus() []byte {
	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range s.Counters {
		writeType(c.Name, "counter")
		promLine(&b, seriesKey(c.Name, c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		writeType(g.Name, "gauge")
		promLine(&b, seriesKey(g.Name, g.Labels), g.Value)
	}
	for _, h := range s.Histograms {
		writeType(h.Name, "histogram")
		cum := uint64(0)
		for i, ub := range h.Bounds {
			cum += h.Counts[i]
			promLine(&b, promKey(h.Name+"_bucket", h.Labels, "le", fmtFloat(ub)), float64(cum))
		}
		promLine(&b, promKey(h.Name+"_bucket", h.Labels, "le", "+Inf"), float64(h.Count))
		promLine(&b, seriesKey(h.Name+"_sum", h.Labels), h.Sum)
		promLine(&b, seriesKey(h.Name+"_count", h.Labels), float64(h.Count))
	}
	return []byte(b.String())
}

// JSON renders the snapshot as indented JSON with a trailing newline.
// Struct marshaling fixes the field order and Go sorts map keys, so the
// bytes are deterministic.
func (s *Snapshot) JSON() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only plain data types; Marshal cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// mergeHist folds b into a. The bucket boundaries must match exactly —
// fixed bounds are the merge contract.
func mergeHist(a *HistSeries, b HistSeries) error {
	if len(a.Bounds) != len(b.Bounds) {
		return fmt.Errorf("obs: histogram %s: bound count mismatch (%d vs %d)",
			seriesKey(a.Name, a.Labels), len(a.Bounds), len(b.Bounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return fmt.Errorf("obs: histogram %s: bound %d mismatch (%v vs %v)",
				seriesKey(a.Name, a.Labels), i, a.Bounds[i], b.Bounds[i])
		}
	}
	for i := range a.Counts {
		a.Counts[i] += b.Counts[i]
	}
	a.Sum += b.Sum
	a.Count += b.Count
	return nil
}

// Merge folds another snapshot into this one: counters and histogram
// buckets sum, gauges average weighted by each side's Runs (a series
// missing on one side contributes zero with that side's weight). Always
// merge in replication order — float sums are order-sensitive, and the
// in-order fold is what keeps merged snapshots identical at any worker
// count.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	sr, or := float64(s.Runs), float64(o.Runs)
	total := sr + or

	ctrs := map[string]int{}
	for i, c := range s.Counters {
		ctrs[seriesKey(c.Name, c.Labels)] = i
	}
	for _, c := range o.Counters {
		if i, ok := ctrs[seriesKey(c.Name, c.Labels)]; ok {
			s.Counters[i].Value += c.Value
		} else {
			s.Counters = append(s.Counters, c)
		}
	}

	gs := map[string]int{}
	for i, g := range s.Gauges {
		gs[seriesKey(g.Name, g.Labels)] = i
		s.Gauges[i].Value = g.Value * sr / total
	}
	for _, g := range o.Gauges {
		if i, ok := gs[seriesKey(g.Name, g.Labels)]; ok {
			s.Gauges[i].Value += g.Value * or / total
		} else {
			g.Value = g.Value * or / total
			s.Gauges = append(s.Gauges, g)
		}
	}

	hs := map[string]int{}
	for i, h := range s.Histograms {
		hs[seriesKey(h.Name, h.Labels)] = i
	}
	for _, h := range o.Histograms {
		if i, ok := hs[seriesKey(h.Name, h.Labels)]; ok {
			if err := mergeHist(&s.Histograms[i], h); err != nil {
				return err
			}
		} else {
			h.Bounds = append([]float64(nil), h.Bounds...)
			h.Counts = append([]uint64(nil), h.Counts...)
			s.Histograms = append(s.Histograms, h)
		}
	}

	s.Runs += o.Runs
	s.sort()
	return nil
}

func (s *Snapshot) sort() {
	byKey := func(sl []Series) func(i, j int) bool {
		return func(i, j int) bool {
			return seriesKey(sl[i].Name, sl[i].Labels) < seriesKey(sl[j].Name, sl[j].Labels)
		}
	}
	sortSlice(s.Counters, byKey(s.Counters))
	sortSlice(s.Gauges, byKey(s.Gauges))
	sortSlice(s.Histograms, func(i, j int) bool {
		return seriesKey(s.Histograms[i].Name, s.Histograms[i].Labels) <
			seriesKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// sortSlice is a tiny insertion sort — export slices are short and this
// avoids importing sort for a []T with a closure comparator twice.
func sortSlice[T any](sl []T, less func(i, j int) bool) {
	for i := 1; i < len(sl); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			sl[j], sl[j-1] = sl[j-1], sl[j]
		}
	}
}

// MergeAll folds the snapshots in slice order (replication order) into a
// fresh snapshot; nil entries are skipped. Returns nil when nothing
// merged.
func MergeAll(snaps []*Snapshot) (*Snapshot, error) {
	var out *Snapshot
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		if out == nil {
			// Deep-copy through the JSON rendering's value semantics.
			cp := *sn
			cp.Counters = append([]Series(nil), sn.Counters...)
			cp.Gauges = append([]Series(nil), sn.Gauges...)
			cp.Histograms = make([]HistSeries, len(sn.Histograms))
			for i, h := range sn.Histograms {
				h.Bounds = append([]float64(nil), h.Bounds...)
				h.Counts = append([]uint64(nil), h.Counts...)
				cp.Histograms[i] = h
			}
			out = &cp
			continue
		}
		if err := out.Merge(sn); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CounterTotal sums every counter series with the given name across its
// label variants (e.g. armnet_wire_frames_tx_total over all frame
// kinds). Zero when no series with that name exists.
func (s *Snapshot) CounterTotal(name string) float64 { return s.counterValue(name) }

// counterValue sums every counter series with the given name.
func (s *Snapshot) counterValue(name string) float64 {
	total := 0.0
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// histMerged returns the bucket-wise sum of every histogram series with
// the given name (e.g. both predicted and unpredicted interruption
// series), or false when none exists.
func (s *Snapshot) histMerged(name string) (HistSeries, bool) {
	var out HistSeries
	found := false
	for _, h := range s.Histograms {
		if h.Name != name {
			continue
		}
		if !found {
			out = h
			out.Bounds = append([]float64(nil), h.Bounds...)
			out.Counts = append([]uint64(nil), h.Counts...)
			out.Labels = nil
			found = true
			continue
		}
		_ = mergeHist(&out, h)
	}
	return out, found
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts
// with linear interpolation inside the winning bucket; samples in the
// overflow bucket report the last bound. Zero when empty.
func (h HistSeries) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := q * float64(h.Count)
	cum := uint64(0)
	for i, ub := range h.Bounds {
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		next := cum + h.Counts[i]
		if float64(next) >= target {
			if h.Counts[i] == 0 {
				return ub
			}
			frac := (target - float64(cum)) / float64(h.Counts[i])
			return lo + frac*(ub-lo)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Summary is the paper-§7-style digest of a snapshot: distribution-level
// outcomes of the run (or of the merged replications).
type Summary struct {
	// Requests/Admitted/Blocked are new-connection counts.
	Requests, Admitted, Blocked float64
	// Handoffs is attempted per-connection handoffs; Dropped the failures;
	// Predicted those arriving to a waiting advance reservation.
	Handoffs, Dropped, Predicted float64
	// BlockRate is Blocked/Requests; DropRate is Dropped/Handoffs.
	BlockRate, DropRate float64
	// Availability is the fraction of handoffs that found bandwidth
	// already reserved in the target cell (Predicted/Handoffs) — the
	// paper's "bandwidth availability on handoff".
	Availability float64
	// MeanAdaptation is committed rate changes per admitted connection.
	MeanAdaptation float64
	// Setup latency quantiles in seconds (zero when no signaled setups).
	SetupP50, SetupP99 float64
	// Handoff interruption quantiles in seconds, over all handoffs.
	InterruptP50, InterruptP99 float64
}

// Summary digests the snapshot's counters and histograms.
func (s *Snapshot) Summary() Summary {
	sum := Summary{
		Requests:  s.counterValue("armnet_connection_requests_total"),
		Admitted:  s.counterValue("armnet_connections_admitted_total"),
		Blocked:   s.counterValue("armnet_connections_blocked_total"),
		Handoffs:  s.counterValue("armnet_handoff_attempts_total"),
		Dropped:   s.counterValue("armnet_handoffs_dropped_total"),
		Predicted: s.counterValue("armnet_handoffs_predicted_total"),
	}
	if sum.Requests > 0 {
		sum.BlockRate = sum.Blocked / sum.Requests
	}
	if sum.Handoffs > 0 {
		sum.DropRate = sum.Dropped / sum.Handoffs
		sum.Availability = sum.Predicted / sum.Handoffs
	}
	if sum.Admitted > 0 {
		sum.MeanAdaptation = s.counterValue("armnet_adaptation_updates_total") / sum.Admitted
	}
	if h, ok := s.histMerged("armnet_setup_latency_seconds"); ok && h.Count > 0 {
		sum.SetupP50, sum.SetupP99 = h.Quantile(0.50), h.Quantile(0.99)
	}
	if h, ok := s.histMerged("armnet_handoff_interruption_seconds"); ok && h.Count > 0 {
		sum.InterruptP50, sum.InterruptP99 = h.Quantile(0.50), h.Quantile(0.99)
	}
	return sum
}
