package sim

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateOverload = flag.Bool("update-overload", false, "rewrite the overload trace golden from current output")

// overloadGoldenCfg is the pinned seed-1 load ramp under the reference
// policy: 40 portables arriving over 240 s, two signaled connections
// each, sized so the campus capacity region is exceeded mid-ramp.
var overloadGoldenCfg = OverloadConfig{Seed: 1, Policy: "default"}

// TestOverloadRampAudited is the headline robustness claim: under a
// load ramp that exceeds the capacity region, the staged response runs
// (degrade cascades fire, setups are shed) and the audited invariant
// holds — no handoff is dropped while a degradable connection still
// holds more than b_min on the contended link.
func TestOverloadRampAudited(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res, err := RunOverload(OverloadConfig{Seed: seed, Policy: "default"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: invariant violations:\n%s", seed, strings.Join(res.Violations, "\n"))
		}
		if res.DegradeCascades == 0 {
			t.Fatalf("seed %d: no degrade cascades fired", seed)
		}
		if res.Sheds == 0 {
			t.Fatalf("seed %d: no setups were shed", seed)
		}
		if res.PeakStage == "normal" {
			t.Fatalf("seed %d: no cell ever left the normal stage", seed)
		}
		if res.Handoffs == 0 {
			t.Fatalf("seed %d: workload produced no handoffs", seed)
		}
	}
}

// TestOverloadBreakerLifecycle pins the circuit breaker's behavior at
// seed 1: it must trip on the setup-failure rate, half-open after the
// cooldown, and eventually close on a successful probe — and the whole
// transition path must be reproducible run to run.
func TestOverloadBreakerLifecycle(t *testing.T) {
	res, err := RunOverload(overloadGoldenCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BreakerTrips == 0 {
		t.Fatal("breaker never tripped")
	}
	if res.BreakerFastFails == 0 {
		t.Fatal("open breaker never fast-failed a setup")
	}
	path := strings.Join(res.BreakerPath, " ")
	for _, want := range []string{"closed>open", "open>half-open", "half-open>closed"} {
		if !strings.Contains(path, want) {
			t.Fatalf("breaker path missing %q: %s", want, path)
		}
	}
	again, err := RunOverload(overloadGoldenCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.BreakerPath, res.BreakerPath) {
		t.Fatalf("breaker path not deterministic:\nfirst  %v\nsecond %v", res.BreakerPath, again.BreakerPath)
	}
}

// TestOverloadNilPolicyZeroCost: with no policy the subsystem must not
// exist — no overload events of any kind, zero overload counters, and a
// byte-identical trace run to run. (That the nil policy also leaves
// pre-existing scenarios untouched is pinned by the campus and chaos
// trace goldens, which run without one.)
func TestOverloadNilPolicyZeroCost(t *testing.T) {
	cfg := OverloadConfig{Seed: 1} // Policy empty: disabled
	res, trace, err := RunOverloadTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"overload-stage", "setup-shed", "degrade-cascade", "breaker-state"} {
		if bytes.Contains(trace, []byte(`"type":"`+kind+`"`)) {
			t.Fatalf("nil policy emitted %s events", kind)
		}
	}
	if res.Sheds != 0 || res.DegradeCascades != 0 || res.BreakerTrips != 0 || res.BreakerFastFails != 0 {
		t.Fatalf("nil policy moved overload counters: %+v", res)
	}
	if res.StageChanges != 0 || len(res.BreakerPath) != 0 {
		t.Fatalf("nil policy produced stage/breaker transitions: %+v", res)
	}
	_, trace2, err := RunOverloadTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace, trace2) {
		t.Fatal("nil-policy trace not byte-identical across runs")
	}
}

// TestOverloadComposesWithFaults runs chaos and overload together: a
// lossy control plane plus a mid-ramp cell outage, with both auditors
// armed. Both subsystems must fire and both invariant sets must hold.
func TestOverloadComposesWithFaults(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Seed:     1,
		Policy:   "default",
		LossRate: 0.1,
		Plan:     "at 150 cell-out off-2 for 60",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.FaultsInjected == 0 {
		t.Fatal("the fault plan never fired")
	}
	if res.Retransmits == 0 {
		t.Fatal("10% loss produced no retransmissions")
	}
	if res.BreakerTrips == 0 && res.Sheds == 0 && res.DegradeCascades == 0 {
		t.Fatal("overload control never acted")
	}
}

// TestOverloadSweepDeterministicAcrossWorkers: the replicated sweep
// must produce identical results — breaker paths, violations, counters,
// everything — at any worker count.
func TestOverloadSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := OverloadConfig{Seed: 1, Policy: "default", LossRate: 0.05}
	serial, _, err := RunOverloadSweep(context.Background(), cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, st, err := RunOverloadSweep(context.Background(), cfg, 4, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Failed != 0 {
			t.Fatalf("workers=%d: unexpected stats %+v", workers, st)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: sweep diverged from serial\ngot  %+v\nwant %+v", workers, got, serial)
		}
	}
}

// overloadTraceHead returns the first n lines of the pinned scenario's
// trace, after re-checking that the scenario still exercises the whole
// subsystem.
func overloadTraceHead(t *testing.T, n int) []byte {
	t.Helper()
	res, trace, err := RunOverloadTrace(overloadGoldenCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("pinned scenario no longer audit-clean: %v", res.Violations)
	}
	for _, kind := range []string{"overload-stage", "setup-shed", "degrade-cascade", "breaker-state"} {
		if !bytes.Contains(trace, []byte(`"type":"`+kind+`"`)) {
			t.Fatalf("trace records no %s events", kind)
		}
	}
	lines := bytes.SplitAfter(trace, []byte("\n"))
	if len(lines) < n {
		t.Fatalf("trace has only %d lines, want at least %d", len(lines), n)
	}
	return bytes.Join(lines[:n], nil)
}

// TestOverloadTraceGolden pins the head of the seed-1 overload event
// stream. Any byte of drift means detector sampling, stage transitions,
// shedding, or breaker scheduling changed. Refresh intentionally with
// `go test ./internal/sim -run TestOverloadTraceGolden -update-overload`.
func TestOverloadTraceGolden(t *testing.T) {
	got := overloadTraceHead(t, 80)
	golden := filepath.Join("testdata", "overloadtrace.golden")
	if *updateOverload {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("overload trace drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
