package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"armnet/internal/runner"
)

// TestCampusTraceDeterminismAcrossWorkers is the event-stream replication
// regression test: the full JSONL trace of each reservation mode must be
// byte-identical whether the modes run serially or fanned across a worker
// pool. Any divergence means an event was published from a scheduling- or
// map-order-dependent code path.
func TestCampusTraceDeterminismAcrossWorkers(t *testing.T) {
	serial := make([][]byte, len(campusModes))
	for i, mode := range campusModes {
		c := detCampusCfg
		c.Mode = mode
		_, trace, err := RunCampusTrace(c)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(trace) == 0 {
			t.Fatalf("mode %v: empty trace", mode)
		}
		if !strings.HasPrefix(string(trace), `{"seq":1,`) {
			t.Fatalf("mode %v: trace does not start at seq 1: %.80s", mode, trace)
		}
		serial[i] = trace
	}
	for _, workers := range []int{1, 2, 8} {
		got, st, err := runner.Map(context.Background(), workers, len(campusModes),
			func(_ context.Context, i int) ([]byte, error) {
				c := detCampusCfg
				c.Mode = campusModes[i]
				_, trace, err := RunCampusTrace(c)
				return trace, err
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Failed != 0 {
			t.Fatalf("workers=%d: unexpected stats %+v", workers, st)
		}
		for i := range campusModes {
			if !bytes.Equal(got[i], serial[i]) {
				t.Fatalf("workers=%d mode %v: trace diverged from serial (%d vs %d bytes)",
					workers, campusModes[i], len(got[i]), len(serial[i]))
			}
		}
	}
}

// TestCampusTraceConsistentWithResult checks that the trace and the
// summary come from one stream: replaying the recorded events must
// reproduce the counters behind the returned CampusResult.
func TestCampusTraceConsistentWithResult(t *testing.T) {
	res, trace, err := RunCampusTrace(detCampusCfg)
	if err != nil {
		t.Fatal(err)
	}
	var requested, blocked, attempted int64
	for _, line := range bytes.Split(bytes.TrimSpace(trace), []byte("\n")) {
		switch {
		case bytes.Contains(line, []byte(`"type":"connection-requested"`)):
			requested++
		case bytes.Contains(line, []byte(`"type":"connection-blocked"`)):
			blocked++
		case bytes.Contains(line, []byte(`"type":"handoff-attempt"`)):
			attempted++
		}
	}
	if requested == 0 || attempted == 0 {
		t.Fatalf("trace missing core events: requested=%d attempted=%d", requested, attempted)
	}
	if got := ratio(blocked, requested); got != res.BlockRate {
		t.Fatalf("BlockRate mismatch: trace %v result %v", got, res.BlockRate)
	}
	if res.Handoffs != attempted {
		t.Fatalf("Handoffs mismatch: trace %d result %d", attempted, res.Handoffs)
	}
}
