package sim

import (
	"fmt"
	"strings"

	"armnet/internal/mobility"
	"armnet/internal/randx"
)

// Figure2Config drives the lounge handoff-activity illustration.
type Figure2Config struct {
	// Seed drives the run's randomness; every value is valid and
	// distinct, including 0.
	Seed int64
	// Students and WalkBys parameterize the underlying meeting scenario.
	Students, WalkBys int
	// SlotMinutes is the histogram bin width (default 5).
	SlotMinutes int
}

// Figure2Result is the activity histogram of a lounge over the scenario.
type Figure2Result struct {
	SlotMinutes int
	// Activity is handoffs into+out of the lounge per slot.
	Activity []int
}

// RunFigure2 reproduces the paper's Figure 2 sketch — the spiky handoff
// activity profile of a lounge (meeting room) over time — from the
// simulated classroom scenario.
func RunFigure2(cfg Figure2Config) (Figure2Result, error) {
	if cfg.Students <= 0 {
		cfg.Students = 40
	}
	if cfg.WalkBys < 0 {
		cfg.WalkBys = 0
	}
	if cfg.SlotMinutes <= 0 {
		cfg.SlotMinutes = 5
	}
	mcfg := mobility.MeetingClassConfig{
		Students: cfg.Students,
		Start:    3600,
		End:      3600 + 50*60,
		WalkBys:  cfg.WalkBys,
	}
	mcfg.Horizon = mcfg.End + 1800
	tr, err := mobility.MeetingClass(mcfg, randx.New(cfg.Seed))
	if err != nil {
		return Figure2Result{}, err
	}
	slot := float64(cfg.SlotMinutes) * 60
	return Figure2Result{
		SlotMinutes: cfg.SlotMinutes,
		Activity:    mobility.HandoffSeries(tr, "M", mobility.Touch, slot, mcfg.Horizon),
	}, nil
}

// String renders the histogram as an ASCII sketch like the paper's
// figure.
func (r Figure2Result) String() string {
	var b strings.Builder
	max := 1
	for _, v := range r.Activity {
		if v > max {
			max = v
		}
	}
	for i, v := range r.Activity {
		bar := strings.Repeat("#", v*50/max)
		fmt.Fprintf(&b, "%4d min |%-50s| %d\n", i*r.SlotMinutes, bar, v)
	}
	return b.String()
}
