package sim

import "testing"

func TestTthSensitivity(t *testing.T) {
	points, err := RunTthSensitivity(CampusConfig{Seed: 5, Portables: 16, Duration: 1200, Dwell: 120}, []float64{30, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	// With dwell 120 s, a 30 s threshold flips portables static between
	// moves, clearing their advance reservations — so their next handoff
	// is unpredicted (a pool claim). A 600 s threshold keeps them mobile
	// and reserved, so more handoffs ride the predicted fast path.
	if large.PredictedShare <= small.PredictedShare {
		t.Fatalf("predicted share did not grow with T_th: %v (600s) vs %v (30s)",
			large.PredictedShare, small.PredictedShare)
	}
	if small.PoolClaims <= large.PoolClaims {
		t.Fatalf("pool claims did not shrink with T_th: %d (30s) vs %d (600s)",
			small.PoolClaims, large.PoolClaims)
	}
	for _, p := range points {
		if p.Handoffs == 0 {
			t.Fatalf("T_th %v: no handoffs", p.Tth)
		}
	}
}

func TestGridScale(t *testing.T) {
	r, err := RunGrid(GridConfig{Seed: 2, Rows: 4, Cols: 6, Portables: 80, Duration: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells != 48 {
		t.Fatalf("cells = %d", r.Cells)
	}
	if r.Handoffs < 400 {
		t.Fatalf("handoffs = %d, want a busy building", r.Handoffs)
	}
	if r.Events < 1000 {
		t.Fatalf("events = %d", r.Events)
	}
	// A lightly loaded big building should lose essentially nothing.
	if r.DropRate > 0.05 {
		t.Fatalf("drop rate %v at light load", r.DropRate)
	}
	// Office occupants returning home make some handoffs predictable.
	if r.PredictedShare == 0 {
		t.Fatal("no predicted handoffs in an office building")
	}
}

func TestBoundsLooseBeatsRigidUnderFades(t *testing.T) {
	loose, rigid, err := RunBounds(BoundsConfig{Seed: 6, Users: 4, Duration: 1800})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone fits at b_min under loose bounds.
	if loose.Admitted != 4 {
		t.Fatalf("loose admitted %d/4", loose.Admitted)
	}
	// Loose bounds never overcommit for long: the adaptation protocol
	// squeezes after every fade (allow in-flight settling slack).
	if loose.OvercommitFraction > 0.1 {
		t.Fatalf("loose overcommitted %.0f%% of the time", loose.OvercommitFraction*100)
	}
	// Rigid reservations cannot be squeezed: deep fades leave the link
	// overcommitted far longer.
	if rigid.OvercommitFraction <= loose.OvercommitFraction {
		t.Fatalf("rigid (%.3f) not worse than loose (%.3f)",
			rigid.OvercommitFraction, loose.OvercommitFraction)
	}
	// And loose bounds harvest more of the varying capacity.
	if loose.MeanUtilization <= rigid.MeanUtilization {
		t.Fatalf("loose utilization %.3f not above rigid %.3f",
			loose.MeanUtilization, rigid.MeanUtilization)
	}
}

func TestCorridorLinearPrediction(t *testing.T) {
	res, err := RunCorridor(9, 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transits < 300 {
		t.Fatalf("transits = %d", res.Transits)
	}
	// §6.1: knowing the previous cell, the next cell of a corridor is
	// predicted "easily" — demand near-perfect accuracy.
	if acc := res.Accuracy(); acc < 0.95 {
		t.Fatalf("corridor accuracy = %v, want >= 0.95", acc)
	}
}

func TestCampusRunsAreDeterministic(t *testing.T) {
	a, err := RunCampus(CampusConfig{Seed: 17, Portables: 14, Duration: 900})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampus(CampusConfig{Seed: 17, Portables: 14, Duration: 900})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := RunCampus(CampusConfig{Seed: 18, Portables: 14, Duration: 900})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical runs")
	}
}
