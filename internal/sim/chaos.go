package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"armnet/internal/core"
	"armnet/internal/des"
	"armnet/internal/eventbus"
	"armnet/internal/faults"
	"armnet/internal/maxmin"
	"armnet/internal/mobility"
	"armnet/internal/qos"
	"armnet/internal/randx"
	"armnet/internal/runner"
	"armnet/internal/signal"
	"armnet/internal/topology"
)

// ChaosConfig drives the chaos scenario: the campus workload with every
// connection opened through the signaling plane, a fault plan injecting
// control-message loss and component crashes, and the recovery
// invariants audited when the run drains.
type ChaosConfig struct {
	// Seed drives the run's randomness; every value is valid and
	// distinct, including the zero-value 0.
	Seed int64
	// Portables is the population size (default 16).
	Portables int
	// Duration is the simulated workload time in seconds (default 600).
	Duration float64
	// Settle is the drain horizon after the workload stops — leases
	// expire and re-ADVERTISE repairs drift before the audit (default 60).
	Settle float64
	// Dwell is the mean cell dwell time (default 120 s).
	Dwell float64
	// LossRate, when positive, adds a `drop any LossRate` rule — the
	// quick way to make every control protocol lossy.
	LossRate float64
	// Plan is a fault-plan spec in the faults.ParsePlan grammar,
	// composed with the LossRate rule. Empty is valid.
	Plan string
	// Mode selects the advance-reservation strategy.
	Mode core.ReservationMode
	// BMin/BMax are the per-connection bandwidth bounds (defaults
	// 32k/128k).
	BMin, BMax float64
	// HoldLease bounds how long a crash-orphaned signaling hold may
	// outlive its session (default 10 s).
	HoldLease float64
	// ReadvertisePeriod is the maxmin re-ADVERTISE interval that repairs
	// allocations corrupted by exhausted retries (default 5 s).
	ReadvertisePeriod float64
	// GapTol bounds the audited maxmin-vs-oracle convergence gap in
	// bits/s (default 1e-6).
	GapTol float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Portables <= 0 {
		c.Portables = 16
	}
	if c.Duration <= 0 {
		c.Duration = 600
	}
	if c.Settle <= 0 {
		c.Settle = 60
	}
	if c.Dwell <= 0 {
		c.Dwell = 120
	}
	if c.BMin <= 0 {
		c.BMin = 32e3
	}
	if c.BMax <= 0 {
		c.BMax = 128e3
	}
	if c.HoldLease <= 0 {
		c.HoldLease = 10
	}
	if c.ReadvertisePeriod <= 0 {
		c.ReadvertisePeriod = 5
	}
	return c
}

// plan composes the explicit spec with the LossRate shorthand.
func (c ChaosConfig) plan() (*faults.Plan, error) {
	p, err := faults.ParsePlan(strings.NewReader(c.Plan))
	if err != nil {
		return nil, err
	}
	if c.LossRate > 0 {
		if c.LossRate > 1 {
			return nil, fmt.Errorf("sim: loss rate %v outside [0,1]", c.LossRate)
		}
		p.Messages = append(p.Messages, faults.MsgRule{Proto: "any", Action: "drop", Prob: c.LossRate})
	}
	return p, nil
}

// ChaosResult is one audited chaos run.
type ChaosResult struct {
	CampusResult
	// FaultsInjected counts message faults fired plus component faults
	// executed (restorations included).
	FaultsInjected int64
	// Retransmits counts control messages resent after a loss.
	Retransmits int64
	// ReclaimedHolds counts crash-orphaned reservations reclaimed by
	// lease expiry.
	ReclaimedHolds int64
	// ReadvertiseKicks counts connections kicked by the periodic
	// re-ADVERTISE drift check.
	ReadvertiseKicks int64
	// ConvergenceGap is the final max |protocol − water-filling oracle|
	// rate distance in bits/s.
	ConvergenceGap float64
	// Violations lists every recovery-invariant failure the auditor saw
	// (empty on a clean run).
	Violations []string
	// Events is the total discrete events executed.
	Events uint64
}

// RunChaos executes one audited chaos scenario.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	return runChaos(cfg, nil)
}

// RunChaosTrace is RunChaos with the full JSONL event trace — faults,
// retransmissions, reclamations, and invariant violations included. The
// trace is byte-identical for a given config at any worker count.
func RunChaosTrace(cfg ChaosConfig) (ChaosResult, []byte, error) {
	var buf bytes.Buffer
	res, err := runChaos(cfg, &buf)
	return res, buf.Bytes(), err
}

// RunChaosSweep runs `replications` independent chaos trials under
// runner.Seeds-derived seeds (replication 0 keeps cfg.Seed) fanned over a
// worker pool. Results arrive in replication order at any worker count.
func RunChaosSweep(ctx context.Context, cfg ChaosConfig, replications, workers int) ([]ChaosResult, runner.Stats, error) {
	if replications <= 0 {
		replications = 1
	}
	seeds := runner.Seeds(cfg.Seed, replications)
	return runner.Map(ctx, workers, replications, func(_ context.Context, i int) (ChaosResult, error) {
		c := cfg
		c.Seed = seeds[i]
		return RunChaos(c)
	})
}

// newChaosAuditor wires the fault-recovery auditor (conservation,
// leaked holds, orphaned allocs, maxmin re-convergence) to a manager's
// bus — shared by the chaos and overload harnesses.
func newChaosAuditor(mgr *core.Manager, gapTol float64) *faults.Auditor {
	gap := func() float64 {
		// Rival allocators have no WaterFill oracle: the maxmin
		// re-convergence audit only applies to the paper's protocol.
		if mgr.Adpt == nil || mgr.Adpt.Maxmin() == nil {
			return 0
		}
		pr := mgr.Adpt.Maxmin()
		oracle, err := maxmin.WaterFill(pr.Problem())
		if err != nil {
			return math.Inf(1)
		}
		return oracle.MaxDiff(pr.Rates())
	}
	aud := &faults.Auditor{
		Ledger:         mgr.Ledger(),
		PendingHolds:   mgr.SignalPlane().PendingTotal,
		LiveConns:      mgr.ConnIDs,
		ConvergenceGap: gap,
		GapTol:         gapTol,
	}
	aud.Watch(mgr.Bus)
	return aud
}

func runChaos(cfg ChaosConfig, traceW io.Writer) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	plan, err := cfg.plan()
	if err != nil {
		return ChaosResult{}, err
	}
	env, err := topology.BuildCampus()
	if err != nil {
		return ChaosResult{}, err
	}
	simulator := des.New()
	mgr, err := core.NewManager(simulator, env, core.Config{
		Seed:   cfg.Seed,
		Mode:   cfg.Mode,
		Faults: plan,
		Signal: signal.Options{HoldLease: cfg.HoldLease},
		Proto:  maxmin.ProtocolOptions{ReadvertisePeriod: cfg.ReadvertisePeriod},
	})
	if err != nil {
		return ChaosResult{}, err
	}
	col := newCampusCollector(mgr.Bus)
	aud := newChaosAuditor(mgr, cfg.GapTol)
	var rec *eventbus.Recorder
	if traceW != nil {
		rec = eventbus.AttachRecorder(mgr.Bus, traceW)
	}
	names := make([]string, cfg.Portables)
	for i := range names {
		names[i] = fmt.Sprintf("p%02d", i)
	}
	walk, err := mobility.RandomWalk(env.Universe, names, cfg.Dwell, cfg.Duration, randx.New(cfg.Seed+1))
	if err != nil {
		return ChaosResult{}, err
	}
	req := qos.Request{
		Bandwidth: qos.Bounds{Min: cfg.BMin, Max: cfg.BMax},
		Delay:     5, Jitter: 5, Loss: 0.05,
		Traffic: qos.TrafficSpec{Sigma: cfg.BMin / 4, Rho: cfg.BMin},
	}
	walk.Schedule(simulator, func(mv mobility.Move) {
		if mv.From == "" {
			if err := mgr.PlacePortable(mv.Portable, mv.To); err == nil {
				// Through the signaling plane: setups race the fault plan
				// hop by hop and surface loss, retransmission, and crashes.
				_ = mgr.OpenConnectionAsync(mv.Portable, req, func(string, error) {})
			}
			return
		}
		_ = mgr.HandoffPortable(mv.Portable, mv.To)
	})
	if err := simulator.RunUntil(cfg.Duration + cfg.Settle); err != nil {
		return ChaosResult{}, err
	}
	violations := aud.CheckFinal()
	if rec != nil && rec.Err() != nil {
		return ChaosResult{}, rec.Err()
	}
	ctr := mgr.Met.Counter
	return ChaosResult{
		CampusResult:     col.result(cfg.Mode),
		FaultsInjected:   ctr.Get(core.CtrFaultsInjected),
		Retransmits:      ctr.Get(core.CtrRetransmits),
		ReclaimedHolds:   ctr.Get(core.CtrReclaimedHolds),
		ReadvertiseKicks: ctr.Get(core.CtrReadvertises),
		ConvergenceGap:   aud.ConvergenceGap(),
		Violations:       violations,
		Events:           simulator.Fired(),
	}, nil
}
