package sim

import (
	"fmt"

	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/randx"
)

// Theorem1Config drives the convergence study of the event-driven
// adaptation algorithm.
type Theorem1Config struct {
	Seed int64
	// Instances is the number of random problem instances (default 20).
	Instances int
	// MaxLinks and MaxConns bound instance size (defaults 4 and 6).
	MaxLinks, MaxConns int
	// Refined selects the M(l) refinement.
	Refined bool
	// Perturb additionally changes one link's capacity after initial
	// convergence and re-measures (the Theorem's instability→stability
	// transition).
	Perturb bool
}

func (c Theorem1Config) withDefaults() Theorem1Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Instances <= 0 {
		c.Instances = 20
	}
	if c.MaxLinks <= 0 {
		c.MaxLinks = 4
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 6
	}
	return c
}

// Theorem1Result aggregates the convergence study.
type Theorem1Result struct {
	Refined bool
	// Instances actually run.
	Instances int
	// Converged counts instances whose final rates satisfied the maxmin
	// oracle within tolerance.
	Converged int
	// TotalMessages is the control-message hop count across instances.
	TotalMessages int
	// TotalSessions counts adaptation sessions.
	TotalSessions int
	// MaxSyncRounds is the worst synchronous-round count observed by
	// the round-abstracted solver on the same instances.
	MaxSyncRounds int
	// WorstDiff is the largest rate deviation from the centralized
	// solution across instances.
	WorstDiff float64
}

// RunTheorem1 generates random allocation problems, runs the event-driven
// protocol to quiescence on each, and verifies the resulting rates
// against the centralized water-filling solution — the empirical check of
// Theorem 1. With Perturb it also exercises the steady-state→perturbed→
// steady-state transition the theorem bounds.
func RunTheorem1(cfg Theorem1Config) (Theorem1Result, error) {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	res := Theorem1Result{Refined: cfg.Refined, Instances: cfg.Instances}
	for i := 0; i < cfg.Instances; i++ {
		p := randomMaxminProblem(rng, 1+rng.Intn(cfg.MaxLinks), 1+rng.Intn(cfg.MaxConns))
		simulator := des.New()
		pr := maxmin.NewProtocol(simulator, maxmin.ProtocolOptions{Refined: cfg.Refined})
		for l, c := range p.Capacity {
			if err := pr.AddLink(l, c); err != nil {
				return res, err
			}
		}
		for _, c := range p.Conns {
			if err := pr.AddConn(c); err != nil {
				return res, err
			}
		}
		pr.KickAll()
		if err := simulator.RunUntil(500); err != nil {
			return res, err
		}
		if cfg.Perturb {
			links := sortedKeys(p.Capacity)
			pick := links[rng.Intn(len(links))]
			newCap := p.Capacity[pick] * (0.5 + rng.Float64())
			p.Capacity[pick] = newCap
			if _, err := pr.TriggerCapacityChange(pick, newCap); err != nil {
				return res, err
			}
			if err := simulator.RunUntil(1500); err != nil {
				return res, err
			}
		}
		ref, err := maxmin.WaterFill(pr.Problem())
		if err != nil {
			return res, err
		}
		diff := ref.MaxDiff(pr.Rates())
		if diff > res.WorstDiff {
			res.WorstDiff = diff
		}
		if diff <= 1e-6 {
			res.Converged++
		}
		res.TotalMessages += pr.Messages
		res.TotalSessions += pr.Sessions

		sres, err := maxmin.SyncSolver{MaxRounds: 500}.Solve(pr.Problem())
		if err != nil {
			return res, err
		}
		if sres.Rounds > res.MaxSyncRounds {
			res.MaxSyncRounds = sres.Rounds
		}
	}
	return res, nil
}

// String renders the study summary.
func (r Theorem1Result) String() string {
	return fmt.Sprintf("refined=%v instances=%d converged=%d messages=%d sessions=%d maxSyncRounds=%d worstDiff=%.2e",
		r.Refined, r.Instances, r.Converged, r.TotalMessages, r.TotalSessions, r.MaxSyncRounds, r.WorstDiff)
}

func randomMaxminProblem(rng *randx.Rand, nLinks, nConns int) maxmin.Problem {
	p := maxmin.Problem{Capacity: map[string]float64{}}
	links := make([]string, nLinks)
	for i := range links {
		links[i] = fmt.Sprintf("l%d", i)
		p.Capacity[links[i]] = 1 + rng.Float64()*20
	}
	for i := 0; i < nConns; i++ {
		pathLen := 1 + rng.Intn(nLinks)
		perm := rng.Perm(nLinks)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		demand := maxmin.Inf
		if rng.Bernoulli(0.3) {
			demand = rng.Float64() * 10
		}
		p.Conns = append(p.Conns, maxmin.Conn{ID: fmt.Sprintf("c%d", i), Path: path, Demand: demand})
	}
	return p
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
