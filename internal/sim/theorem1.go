package sim

import (
	"context"
	"fmt"

	"armnet/internal/des"
	"armnet/internal/maxmin"
	"armnet/internal/randx"
	"armnet/internal/runner"
	"armnet/internal/sortx"
)

// Theorem1Config drives the convergence study of the event-driven
// adaptation algorithm.
type Theorem1Config struct {
	// Seed drives the run's randomness; every value is valid and
	// distinct, including 0.
	Seed int64
	// Instances is the number of random problem instances (default 20).
	Instances int
	// MaxLinks and MaxConns bound instance size (defaults 4 and 6).
	MaxLinks, MaxConns int
	// Refined selects the M(l) refinement.
	Refined bool
	// Perturb additionally changes one link's capacity after initial
	// convergence and re-measures (the Theorem's instability→stability
	// transition).
	Perturb bool
}

func (c Theorem1Config) withDefaults() Theorem1Config {
	if c.Instances <= 0 {
		c.Instances = 20
	}
	if c.MaxLinks <= 0 {
		c.MaxLinks = 4
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 6
	}
	return c
}

// Theorem1Result aggregates the convergence study.
type Theorem1Result struct {
	Refined bool
	// Instances actually run.
	Instances int
	// Converged counts instances whose final rates satisfied the maxmin
	// oracle within tolerance.
	Converged int
	// TotalMessages is the control-message hop count across instances.
	TotalMessages int
	// TotalSessions counts adaptation sessions.
	TotalSessions int
	// MaxSyncRounds is the worst synchronous-round count observed by
	// the round-abstracted solver on the same instances.
	MaxSyncRounds int
	// WorstDiff is the largest rate deviation from the centralized
	// solution across instances.
	WorstDiff float64
}

// theorem1Trial is the outcome of one independent problem instance.
type theorem1Trial struct {
	converged  bool
	diff       float64
	messages   int
	sessions   int
	syncRounds int
}

// RunTheorem1 generates random allocation problems, runs the event-driven
// protocol to quiescence on each, and verifies the resulting rates
// against the centralized water-filling solution — the empirical check of
// Theorem 1. With Perturb it also exercises the steady-state→perturbed→
// steady-state transition the theorem bounds.
func RunTheorem1(cfg Theorem1Config) (Theorem1Result, error) {
	r, _, err := RunTheorem1Parallel(context.Background(), cfg, 1)
	return r, err
}

// RunTheorem1Parallel fans the problem instances across a worker pool.
// Each instance derives its own RNG from (cfg.Seed, instance index) via
// runner.SplitSeed and builds a private simulator and protocol, so the
// aggregated result is bit-identical at any worker count.
func RunTheorem1Parallel(ctx context.Context, cfg Theorem1Config, workers int) (Theorem1Result, runner.Stats, error) {
	cfg = cfg.withDefaults()
	res := Theorem1Result{Refined: cfg.Refined, Instances: cfg.Instances}
	trials, st, err := runner.Map(ctx, workers, cfg.Instances, func(_ context.Context, i int) (theorem1Trial, error) {
		return runTheorem1Instance(cfg, runner.SplitSeed(cfg.Seed, i))
	})
	if err != nil {
		return res, st, err
	}
	for _, tr := range trials {
		if tr.converged {
			res.Converged++
		}
		if tr.diff > res.WorstDiff {
			res.WorstDiff = tr.diff
		}
		res.TotalMessages += tr.messages
		res.TotalSessions += tr.sessions
		if tr.syncRounds > res.MaxSyncRounds {
			res.MaxSyncRounds = tr.syncRounds
		}
	}
	return res, st, nil
}

// runTheorem1Instance runs one self-contained convergence trial: generate
// a random instance from the trial seed, drive the event-driven protocol
// to quiescence (optionally through a capacity perturbation), and compare
// the settled rates against the water-filling oracle.
func runTheorem1Instance(cfg Theorem1Config, seed int64) (theorem1Trial, error) {
	rng := randx.New(seed)
	p := randomMaxminProblem(rng, 1+rng.Intn(cfg.MaxLinks), 1+rng.Intn(cfg.MaxConns))
	simulator := des.New()
	pr := maxmin.NewProtocol(simulator, maxmin.ProtocolOptions{Refined: cfg.Refined})
	for _, l := range sortx.Keys(p.Capacity) {
		if err := pr.AddLink(l, p.Capacity[l]); err != nil {
			return theorem1Trial{}, err
		}
	}
	for _, c := range p.Conns {
		if err := pr.AddConn(c); err != nil {
			return theorem1Trial{}, err
		}
	}
	pr.KickAll()
	if err := simulator.RunUntil(500); err != nil {
		return theorem1Trial{}, err
	}
	if cfg.Perturb {
		links := sortx.Keys(p.Capacity)
		pick := links[rng.Intn(len(links))]
		newCap := p.Capacity[pick] * (0.5 + rng.Float64())
		p.Capacity[pick] = newCap
		if _, err := pr.TriggerCapacityChange(pick, newCap); err != nil {
			return theorem1Trial{}, err
		}
		if err := simulator.RunUntil(1500); err != nil {
			return theorem1Trial{}, err
		}
	}
	ref, err := maxmin.WaterFill(pr.Problem())
	if err != nil {
		return theorem1Trial{}, err
	}
	tr := theorem1Trial{
		diff:     ref.MaxDiff(pr.Rates()),
		messages: pr.Messages,
		sessions: pr.Sessions,
	}
	tr.converged = tr.diff <= 1e-6

	sres, err := maxmin.SyncSolver{MaxRounds: 500}.Solve(pr.Problem())
	if err != nil {
		return theorem1Trial{}, err
	}
	tr.syncRounds = sres.Rounds
	return tr, nil
}

// String renders the study summary.
func (r Theorem1Result) String() string {
	return fmt.Sprintf("refined=%v instances=%d converged=%d messages=%d sessions=%d maxSyncRounds=%d worstDiff=%.2e",
		r.Refined, r.Instances, r.Converged, r.TotalMessages, r.TotalSessions, r.MaxSyncRounds, r.WorstDiff)
}

func randomMaxminProblem(rng *randx.Rand, nLinks, nConns int) maxmin.Problem {
	p := maxmin.Problem{Capacity: map[string]float64{}}
	links := make([]string, nLinks)
	for i := range links {
		links[i] = fmt.Sprintf("l%d", i)
		p.Capacity[links[i]] = 1 + rng.Float64()*20
	}
	for i := 0; i < nConns; i++ {
		pathLen := 1 + rng.Intn(nLinks)
		perm := rng.Perm(nLinks)[:pathLen]
		path := make([]string, pathLen)
		for j, k := range perm {
			path[j] = links[k]
		}
		demand := maxmin.Inf
		if rng.Bernoulli(0.3) {
			demand = rng.Float64() * 10
		}
		p.Conns = append(p.Conns, maxmin.Conn{ID: fmt.Sprintf("c%d", i), Path: path, Demand: demand})
	}
	return p
}
