package sim

import (
	"fmt"
	"strings"

	"armnet/internal/mobility"
	"armnet/internal/profile"
	"armnet/internal/randx"
	"armnet/internal/reserve"
	"armnet/internal/topology"
)

// Fig5Algorithm selects the advance-reservation algorithm compared in
// §7.1's meeting-room experiment.
type Fig5Algorithm int

const (
	// AlgBruteForce reserves each mobile's bandwidth in every neighbor
	// of its current cell.
	AlgBruteForce Fig5Algorithm = iota
	// AlgAggregation reserves in the single next cell predicted by the
	// current cell's aggregate handoff history.
	AlgAggregation
	// AlgMeetingRoom is the paper's §6.2.1 calendar-driven policy.
	AlgMeetingRoom
)

// String implements fmt.Stringer.
func (a Fig5Algorithm) String() string {
	switch a {
	case AlgBruteForce:
		return "brute-force"
	case AlgAggregation:
		return "aggregation"
	case AlgMeetingRoom:
		return "meeting-room"
	default:
		return fmt.Sprintf("Fig5Algorithm(%d)", int(a))
	}
}

// Figure5Config drives one run of the classroom scenario.
type Figure5Config struct {
	// Seed drives the run's randomness; every value is valid and
	// distinct, including 0.
	Seed int64
	// Students is the class size (35 lecture / 55 laboratory).
	Students int
	// WalkBys is the corridor through-traffic volume.
	WalkBys int
	// Capacity is the cell throughput (paper: 1.6 Mb/s).
	Capacity float64
	// Algorithm selects the reservation strategy.
	Algorithm Fig5Algorithm
	// TrainRounds pre-trains the aggregation algorithm's cell profiles
	// with this many prior identical classes (default 3) — it needs
	// history to aggregate, exactly as the paper's base stations would.
	TrainRounds int
	// Tth is the static/mobile threshold (§3.4.2, default 300 s): a
	// portable that has not moved for Tth seconds is static and holds no
	// advance reservations.
	Tth float64
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.Capacity <= 0 {
		c.Capacity = 1.6e6
	}
	if c.TrainRounds <= 0 {
		c.TrainRounds = 3
	}
	if c.Tth <= 0 {
		c.Tth = 300
	}
	return c
}

// Figure5Result reports one run.
type Figure5Result struct {
	Algorithm Fig5Algorithm
	Students  int
	// OfferedLoad is Σ b_i of the class over the cell capacity (the
	// paper reports 59% for 35 students and 94% for 55).
	OfferedLoad float64
	// Drops is the number of connections dropped at handoff.
	Drops int
	// HandoffAttempts and HandoffDenied give the raw counts.
	HandoffAttempts int
	// Series are the Figure 5 curves (per-minute handoff counts):
	// (a) into the room, (b) activity outside at the start,
	// (c) out of the room, (d) activity outside at the end.
	IntoRoom, OutsideStart, OutOfRoom, OutsideEnd []int
}

// fig5Cell is the cell-capacity bookkeeping of the §7.1 simulation.
type fig5Cell struct {
	cap float64
	// active maps portable → connection bandwidth currently served here.
	active map[string]float64
	// resv maps portable → bandwidth advance-reserved here for it.
	resv map[string]float64
	// pool is the aggregate (meeting-policy) reservation in bits/s.
	pool float64
}

func (c *fig5Cell) used() float64 {
	t := 0.0
	for _, b := range c.active {
		t += b
	}
	return t
}

// reservedOthers sums the advance reservations held here for portables
// other than the given one; only *mobile* portables' reservations count
// (§3.4.2: a static portable holds no advance reservations).
func (c *fig5Cell) reservedOthers(portable string, mobile func(string) bool) float64 {
	t := 0.0
	for p, b := range c.resv {
		if p != portable && mobile(p) {
			t += b
		}
	}
	return t
}

// admitHandoff decides whether the portable's connection of bandwidth b
// fits this cell. The portable's own reservation and — for expected
// meeting attendees — the policy pool do not count against it.
func (c *fig5Cell) admitHandoff(portable string, b float64, expected bool, mobile func(string) bool) bool {
	avail := c.cap - c.used() - c.reservedOthers(portable, mobile)
	if !expected {
		avail -= c.pool
	}
	return b <= avail+1e-9
}

// RunFigure5 simulates the classroom scenario under one reservation
// algorithm and returns the drop count and the Figure 5 handoff curves.
func RunFigure5(cfg Figure5Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	env, err := topology.BuildMeetingWing(cfg.Capacity)
	if err != nil {
		return Figure5Result{}, err
	}
	mcfg := mobility.MeetingClassConfig{
		Students: cfg.Students,
		Start:    3600,
		End:      3600 + 50*60,
		WalkBys:  cfg.WalkBys,
		// Corridor traffic peaks at class change (Figure 5 b/d): other
		// classes let out at the same time.
		WalkByPeak: true,
	}
	mcfg.Horizon = mcfg.End + 1800
	trace, err := mobility.MeetingClass(mcfg, rng)
	if err != nil {
		return Figure5Result{}, err
	}

	// Per-portable connection bandwidth: 16 kb/s (75%) or 64 kb/s (25%).
	bw := map[string]float64{}
	classLoad := 0.0
	for _, mv := range trace.Moves {
		if _, ok := bw[mv.Portable]; ok {
			continue
		}
		b := 16e3
		if rng.Bernoulli(0.25) {
			b = 64e3
		}
		bw[mv.Portable] = b
		if strings.HasPrefix(mv.Portable, "stu-") {
			classLoad += b
		}
	}

	cells := map[topology.CellID]*fig5Cell{}
	for _, c := range env.Universe.Cells() {
		cells[c.ID] = &fig5Cell{cap: cfg.Capacity, active: map[string]float64{}, resv: map[string]float64{}}
	}

	// Aggregation training: cell profiles from prior identical classes.
	profiles := map[topology.CellID]*profile.CellProfile{}
	for _, c := range env.Universe.Cells() {
		profiles[c.ID] = profile.NewCellProfile(c.ID, 100000, 60)
	}
	if cfg.Algorithm == AlgAggregation {
		for round := 0; round < cfg.TrainRounds; round++ {
			tr, err := mobility.MeetingClass(mcfg, randx.New(cfg.Seed+int64(round)+100))
			if err != nil {
				return Figure5Result{}, err
			}
			prev := map[string]topology.CellID{}
			for _, mv := range tr.Moves {
				if mv.From != "" {
					profiles[mv.From].RecordDeparture(profile.Handoff{
						Portable: mv.Portable, Prev: prev[mv.Portable],
						From: mv.From, To: mv.To, Time: mv.Time,
					})
				}
				prev[mv.Portable] = mv.From
			}
		}
	}

	// Meeting policy for the meeting-room algorithm.
	var policy *reserve.MeetingPolicy
	arrived := map[string]bool{}
	left := map[string]bool{}
	if cfg.Algorithm == AlgMeetingRoom {
		policy, err = reserve.NewMeetingPolicy(
			reserve.Meeting{Start: mcfg.Start, End: mcfg.End, Attendees: cfg.Students},
			reserve.DefaultMeetingConfig())
		if err != nil {
			return Figure5Result{}, err
		}
	}

	// refreshPortableResv re-places the per-portable reservations after
	// the portable moved to cell `at`.
	clearResv := func(p string) {
		for _, c := range cells {
			delete(c.resv, p)
		}
	}
	refreshPortableResv := func(p string, at topology.CellID, prev topology.CellID) {
		clearResv(p)
		b := bw[p]
		if b == 0 {
			return
		}
		switch cfg.Algorithm {
		case AlgBruteForce:
			for _, nid := range env.Universe.Cell(at).Neighbors() {
				cells[nid].resv[p] = b
			}
		case AlgAggregation:
			if next, ok := profiles[at].Predict(prev); ok {
				if env.Universe.Cell(at).IsNeighbor(next) {
					cells[next].resv[p] = b
				}
			}
		case AlgMeetingRoom:
			// Only the calendar drives reservations.
		}
	}
	// applyMeetingPool refreshes the room pool and the neighbor pools.
	roomNeighbors := env.Universe.Cell("M").Neighbors()
	applyMeetingPool := func(now float64) {
		if policy == nil {
			return
		}
		perUser := classLoad / float64(cfg.Students) // expected per-attendee bandwidth
		cells["M"].pool = float64(policy.RoomSlots(now, len(arrived))) * perUser
		// Departure reservation splits over the room's neighbors per its
		// cell profile ("according to its cell profile"); with no history
		// the split is uniform.
		total := float64(policy.NeighborSlots(now, len(arrived), len(left))) * perUser
		for _, nid := range roomNeighbors {
			cells[nid].pool = total / float64(len(roomNeighbors))
		}
	}

	res := Figure5Result{
		Algorithm:   cfg.Algorithm,
		Students:    cfg.Students,
		OfferedLoad: classLoad / cfg.Capacity,
	}
	// Portables leave the system after their final move: walk-bys exit
	// the wing, students head back to their offices. Track each
	// portable's last move index so its connection and reservations are
	// torn down instead of pooling forever in the exit cell.
	lastMove := map[string]int{}
	for i, mv := range trace.Moves {
		lastMove[mv.Portable] = i
	}
	dropped := map[string]bool{}
	prevCell := map[string]topology.CellID{}
	// Static/mobile test: a portable whose last move is older than Tth
	// is static; its advance reservations are ignored (cleared).
	lastMoveTime := map[string]float64{}
	now := 0.0
	mobile := func(p string) bool { return now-lastMoveTime[p] < cfg.Tth }
	for i, mv := range trace.Moves {
		now = mv.Time
		applyMeetingPool(now)
		p := mv.Portable
		if mv.From == "" {
			// Placement: open the connection in the entry cell. Entry
			// cells are lightly loaded; a placement that does not fit is
			// counted as a drop too (it never happens at paper loads).
			c := cells[mv.To]
			lastMoveTime[p] = now
			if bw[p] <= c.cap-c.used()-c.reservedOthers(p, mobile)-c.pool {
				c.active[p] = bw[p]
			} else {
				dropped[p] = true
				res.Drops++
			}
			refreshPortableResv(p, mv.To, "")
			prevCell[p] = ""
			if lastMove[p] == i {
				for _, c := range cells {
					delete(c.active, p)
				}
				clearResv(p)
			}
			continue
		}
		// Meeting counters.
		if policy != nil {
			if mv.To == "M" && now >= mcfg.Start-policy.Config.LeadIn && now < mcfg.End {
				arrived[p] = true
			}
			if mv.From == "M" && arrived[p] && now >= mcfg.End-policy.Config.LeadOut {
				left[p] = true
			}
			applyMeetingPool(now)
		}
		lastMoveTime[p] = now
		if !dropped[p] {
			res.HandoffAttempts++
			from, to := cells[mv.From], cells[mv.To]
			// Expected movers may consume the policy pool: attendees
			// entering the room around the start, and attendees leaving
			// into the corridor around the conclusion.
			expected := policy != nil && strings.HasPrefix(p, "stu-") &&
				((mv.To == "M" && now >= mcfg.Start-policy.Config.LeadIn) ||
					(mv.From == "M" && now >= mcfg.End-policy.Config.LeadOut))
			if to.admitHandoff(p, bw[p], expected, mobile) {
				delete(from.active, p)
				to.active[p] = bw[p]
			} else {
				delete(from.active, p)
				dropped[p] = true
				res.Drops++
			}
		}
		refreshPortableResv(p, mv.To, prevCell[p])
		prevCell[p] = mv.From
		if lastMove[p] == i {
			// Final move: the portable exits the system.
			for _, c := range cells {
				delete(c.active, p)
			}
			clearResv(p)
		}
	}

	// Figure 5 curves.
	slot := 60.0
	res.IntoRoom = mobility.HandoffSeries(trace, "M", mobility.In, slot, mcfg.Horizon)
	res.OutOfRoom = mobility.HandoffSeries(trace, "M", mobility.Out, slot, mcfg.Horizon)
	outside := mobility.HandoffSeries(trace, "corr1", mobility.Touch, slot, mcfg.Horizon)
	res.OutsideStart = windowSlice(outside, int(mcfg.Start/slot)-10, int(mcfg.Start/slot)+10)
	res.OutsideEnd = windowSlice(outside, int(mcfg.End/slot)-10, int(mcfg.End/slot)+10)
	return res, nil
}

func windowSlice(s []int, lo, hi int) []int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if lo >= hi {
		return nil
	}
	return append([]int(nil), s[lo:hi]...)
}

// RunFigure5Comparison runs the three algorithms on the two class sizes
// of §7.1 and returns results in the paper's order.
func RunFigure5Comparison(seed int64, walkBys int) ([]Figure5Result, error) {
	if walkBys == 0 {
		walkBys = 400
	}
	var out []Figure5Result
	for _, students := range []int{35, 55} {
		for _, alg := range []Fig5Algorithm{AlgBruteForce, AlgAggregation, AlgMeetingRoom} {
			r, err := RunFigure5(Figure5Config{
				Seed:      seed,
				Students:  students,
				WalkBys:   walkBys,
				Algorithm: alg,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
