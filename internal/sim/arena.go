package sim

import (
	"bytes"
	"context"
	"fmt"

	"armnet/internal/core"
	"armnet/internal/obs"
	"armnet/internal/runner"
	"armnet/internal/strategy"
)

// StrategyPair names one allocator/admitter combination competing in the
// arena. Empty names select the paper defaults.
type StrategyPair struct {
	Allocator string
	Admitter  string
}

// Label renders the pair as "allocator+admitter" with defaults resolved.
func (p StrategyPair) Label() string {
	a, d := p.Allocator, p.Admitter
	if a == "" {
		a = strategy.DefaultAllocator
	}
	if d == "" {
		d = strategy.DefaultAdmitter
	}
	return a + "+" + d
}

// DefaultArenaPairs is the fixed head-to-head roster: the paper's own
// pair, each rival swapped in alone, and both rivals together.
func DefaultArenaPairs() []StrategyPair {
	return []StrategyPair{
		{Allocator: "maxmin", Admitter: "table2"},
		{Allocator: "erica", Admitter: "table2"},
		{Allocator: "logweight", Admitter: "table2"},
		{Allocator: "maxmin", Admitter: "measured"},
		{Allocator: "erica", Admitter: "measured"},
	}
}

// ArenaConfig drives the head-to-head strategy comparison: every
// registered pair runs the *identical* campus workload — same seed, same
// mobility trace, same QoS demands (the workload RNGs never see the
// strategy choice) — so outcome differences are attributable to the
// strategies alone.
type ArenaConfig struct {
	// Seed drives every trial; all pairs share it.
	Seed int64
	// Portables / Duration / Dwell / Mode / BMin / BMax / Tth mirror
	// CampusConfig.
	Portables int
	Duration  float64
	Dwell     float64
	Mode      core.ReservationMode
	BMin      float64
	BMax      float64
	Tth       float64
	// Pairs is the roster; nil selects DefaultArenaPairs.
	Pairs []StrategyPair
}

// ArenaEntry is one strategy pair's outcome over the shared workload.
type ArenaEntry struct {
	Pair StrategyPair
	CampusResult
	// Summary digests the pair's obs instruments (setup latency,
	// handoff interruption, adaptation intensity).
	Summary obs.Summary
	// Control is the allocator's control-plane work — the overhead side
	// of the comparison.
	Control strategy.ControlStats
	// Utilization is the mean committed downlink utilization at the end
	// of the run.
	Utilization float64
}

// RunArena runs every pair sequentially and returns entries in roster
// order.
func RunArena(cfg ArenaConfig) ([]ArenaEntry, error) {
	out, _, err := RunArenaSweep(context.Background(), cfg, 1)
	return out, err
}

// RunArenaSweep fans the roster over a worker pool. Each trial is fully
// self-contained (own simulator, environment, RNGs), so entries are
// identical at any worker count and arrive in roster order.
func RunArenaSweep(ctx context.Context, cfg ArenaConfig, workers int) ([]ArenaEntry, runner.Stats, error) {
	pairs := cfg.Pairs
	if len(pairs) == 0 {
		pairs = DefaultArenaPairs()
	}
	return runner.Map(ctx, workers, len(pairs), func(_ context.Context, i int) (ArenaEntry, error) {
		c := CampusConfig{
			Seed: cfg.Seed, Portables: cfg.Portables, Duration: cfg.Duration,
			Dwell: cfg.Dwell, Mode: cfg.Mode, BMin: cfg.BMin, BMax: cfg.BMax,
			Tth: cfg.Tth,
			Allocator: pairs[i].Allocator, Admitter: pairs[i].Admitter,
			Obs: true,
		}
		res, snap, probe, err := runCampus(c, nil)
		if err != nil {
			return ArenaEntry{}, fmt.Errorf("arena %s: %w", pairs[i].Label(), err)
		}
		e := ArenaEntry{
			Pair:         pairs[i],
			CampusResult: res,
			Control:      probe.control,
			Utilization:  probe.util,
		}
		if snap != nil {
			e.Summary = snap.Summary()
		}
		return e, nil
	})
}

// RenderArena renders the comparative snapshot as a stable text table —
// one row per pair, fixed column order, %.6g floats — suitable for
// golden pinning.
func RenderArena(cfg ArenaConfig, entries []ArenaEntry) []byte {
	var b bytes.Buffer
	cc := CampusConfig{
		Seed: cfg.Seed, Portables: cfg.Portables, Duration: cfg.Duration,
		Dwell: cfg.Dwell, BMin: cfg.BMin, BMax: cfg.BMax,
	}.withDefaults()
	fmt.Fprintf(&b, "arena seed=%d portables=%d duration=%gs dwell=%gs mode=%s bmin=%g bmax=%g pairs=%d\n",
		cfg.Seed, cc.Portables, cc.Duration, cc.Dwell, cfg.Mode, cc.BMin, cc.BMax, len(entries))
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s %10s %10s %9s %9s %9s %7s\n",
		"pair", "util", "drop", "block", "availability",
		"interr-p50", "interr-p99", "adapt/conn", "sessions", "messages", "retrans")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-16s %9.6f %9.6f %9.6f %12.6f %10.6f %10.6f %10.4f %9d %9d %7d\n",
			e.Pair.Label(), e.Utilization, e.DropRate, e.BlockRate,
			e.Summary.Availability, e.Summary.InterruptP50, e.Summary.InterruptP99,
			e.Summary.MeanAdaptation, e.Control.Sessions, e.Control.Messages,
			e.Control.Retransmits)
	}
	return b.Bytes()
}
